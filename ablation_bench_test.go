// Ablation benchmarks for the design choices DESIGN.md section 6 calls
// out: each sub-benchmark regenerates the key pipeline under one
// setting so `-bench Ablation` prints the comparison directly.
package qkd

import (
	"fmt"
	"testing"

	"qkd/internal/cascade"
	"qkd/internal/core"
	"qkd/internal/entropy"
	"qkd/internal/photonics"
	"qkd/internal/qframe"
	"qkd/internal/rng"
	"qkd/internal/sifting"
)

// BenchmarkAblation_Corrector compares the three error-correction
// protocols at the bench operating point; keybits/frame is the figure
// of merit (the protocols trade disclosure for yield).
func BenchmarkAblation_Corrector(b *testing.B) {
	for _, k := range []core.CorrectorKind{core.CorrectorBBN, core.CorrectorClassic, core.CorrectorBlockParity} {
		b.Run(k.String(), func(b *testing.B) {
			s := core.NewSession(fastParams(), core.Config{BatchBits: 4096, Corrector: k}, 10000, 1)
			for i := 0; i < b.N; i++ {
				if err := s.RunFrames(1); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(s.Alice.Metrics().DistilledBits)/float64(b.N), "keybits/frame")
		})
	}
}

// BenchmarkAblation_Defense compares Bennett vs Slutsky yields.
func BenchmarkAblation_Defense(b *testing.B) {
	for _, d := range []entropy.Defense{entropy.Bennett, entropy.Slutsky} {
		b.Run(d.String(), func(b *testing.B) {
			s := core.NewSession(fastParams(), core.Config{BatchBits: 4096, Defense: d}, 10000, 1)
			for i := 0; i < b.N; i++ {
				if err := s.RunFrames(1); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(s.Alice.Metrics().DistilledBits)/float64(b.N), "keybits/frame")
		})
	}
}

// BenchmarkAblation_DoubleClicks compares the double-click policies on
// a bright (mu=1) link where double clicks actually occur.
func BenchmarkAblation_DoubleClicks(b *testing.B) {
	for _, pol := range []photonics.DoubleClickPolicy{photonics.DiscardDoubleClicks, photonics.RandomizeDoubleClicks} {
		name := "discard"
		if pol == photonics.RandomizeDoubleClicks {
			name = "randomize"
		}
		b.Run(name, func(b *testing.B) {
			p := fastParams()
			p.MeanPhotons = 1.0
			p.DoubleClicks = pol
			link := photonics.NewLink(p, 1)
			sifted, errors := 0, 0
			for i := 0; i < b.N; i++ {
				tx, rx := link.TransmitFrame(uint64(i), 10000)
				s, e := photonics.MeasuredQBER(tx, rx)
				sifted += s
				errors += e
			}
			if sifted > 0 {
				b.ReportMetric(float64(sifted)/float64(b.N), "sifted/frame")
				b.ReportMetric(100*float64(errors)/float64(sifted), "QBER%")
			}
		})
	}
}

// BenchmarkAblation_Subsets sweeps the BBN variant's subset count (the
// paper uses 64) at a fixed 5 % error burden.
func BenchmarkAblation_Subsets(b *testing.B) {
	for _, subsets := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("subsets=%d", subsets), func(b *testing.B) {
			gen := rng.NewSplitMix64(1)
			disclosed := 0
			for i := 0; i < b.N; i++ {
				ref := gen.Bits(4096)
				noisy := ref.Clone()
				for j := 0; j < 4096/20; j++ {
					noisy.Flip(gen.Intn(4096))
				}
				p := cascade.NewBBN(uint64(i))
				p.Subsets = subsets
				res, _, err := cascade.Run(p, ref, noisy)
				if err != nil {
					b.Fatal(err)
				}
				disclosed += res.Disclosed
			}
			b.ReportMetric(float64(disclosed)/float64(b.N), "disclosed/batch")
		})
	}
}

// BenchmarkAblation_SiftEncoding compares the RLE sift encoding against
// the naive record list at a realistic detection density.
func BenchmarkAblation_SiftEncoding(b *testing.B) {
	link := photonics.NewLink(photonics.DefaultParams(), 1)
	_, rx := link.TransmitFrame(0, 100000)
	b.Run("rle", func(b *testing.B) {
		m := siftFor(rx)
		var size int
		for i := 0; i < b.N; i++ {
			size = len(m.Encode())
		}
		b.ReportMetric(float64(size), "bytes")
	})
	b.Run("naive", func(b *testing.B) {
		m := siftFor(rx)
		var size int
		for i := 0; i < b.N; i++ {
			size = len(m.EncodeNaive())
		}
		b.ReportMetric(float64(size), "bytes")
	})
}

// siftFor builds the sift message for a received frame (helper).
func siftFor(rx *qframe.RxFrame) *sifting.SiftMessage { return sifting.BuildSift(rx) }
