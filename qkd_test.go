package qkd

import (
	"testing"
)

// The facade tests exercise the public API end to end, exactly as the
// README documents it — they are the contract a downstream user relies
// on.

func TestFacadeQuickstart(t *testing.T) {
	session := NewSession(fastParams(), Config{BatchBits: 2048}, 10000, 42)
	if err := session.RunUntilDistilled(1024, 120); err != nil {
		t.Fatal(err)
	}
	alice, err := session.Alice.Pool().TryConsume(1024)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := session.Bob.Pool().TryConsume(1024)
	if err != nil {
		t.Fatal(err)
	}
	if !alice.Equal(bob) {
		t.Fatal("facade session produced differing keys")
	}
}

func TestFacadeDefaultOperatingPoint(t *testing.T) {
	p := DefaultLinkParams()
	if p.MeanPhotons != 0.1 || p.FiberKm != 10 || p.PulseRateHz != 1e6 {
		t.Errorf("default params drifted from the paper: %+v", p)
	}
	q := p.ExpectedQBER()
	if q < 0.06 || q > 0.08 {
		t.Errorf("default predicted QBER %.3f outside the paper's 6-8%% band", q)
	}
}

func TestFacadeAttacks(t *testing.T) {
	s := NewSession(fastParams(), Config{BatchBits: 2048}, 10000, 7)
	s.Link.SetTap(NewInterceptResend(1.0, 9))
	if err := s.RunFrames(10); err != nil {
		t.Fatal(err)
	}
	if s.Alice.Metrics().DistilledBits != 0 {
		t.Error("facade attack path failed to suppress key")
	}
}

func TestFacadeVPN(t *testing.T) {
	n, err := NewVPN(VPNConfig{
		Photonics: fastParams(),
		QKD:       Config{BatchBits: 2048},
		Suite:     SuiteAES128CTR,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.DistillKeys(2048, 120); err != nil {
		t.Fatal(err)
	}
	if err := n.Establish(); err != nil {
		t.Fatal(err)
	}
	got, err := n.Send(HostA, HostB, 1, []byte("facade"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "facade" {
		t.Fatalf("payload %q", got)
	}
}

func TestFacadeRelayAndOptical(t *testing.T) {
	mesh := NewRelayFullMesh(1, 4096, "a", "b", "c")
	mesh.Tick()
	d, err := mesh.TransportKey("a", "c", 256)
	if err != nil {
		t.Fatal(err)
	}
	if d.Key.Len() != 256 {
		t.Errorf("key length %d", d.Key.Len())
	}

	fab := NewOpticalMesh()
	fab.AddEndpoint("x")
	fab.AddEndpoint("y")
	fab.AddSwitch("s", 1)
	fab.Connect("x", "s", 1)
	fab.Connect("s", "y", 1)
	p, err := fab.Establish("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops() != 1 || p.SwitchDB != 1 {
		t.Errorf("path %v, %v dB", p.Nodes, p.SwitchDB)
	}
}

func TestFacadeCascadeConstructors(t *testing.T) {
	if NewBBNCascade(1).Name() == "" || NewClassicCascade(0.05, 1).Name() == "" {
		t.Error("corrector constructors broken")
	}
}
