// Command qkdlint is the repo's custom static-analysis suite: five
// analyzers encoding the stack's standing invariants (reservation
// lifecycle, pad hygiene, wrapped-sentinel matching, atomic access
// discipline, deterministic-replay purity).
//
// Two modes share one binary:
//
//	go vet -vettool=$(pwd)/qkdlint ./...   # full vet pipeline, test files included
//	qkdlint ./...                          # standalone, non-test sources
//
// Vettool mode is auto-detected from cmd/go's calling convention
// (-V=full / -flags handshakes, or a single *.cfg argument). Analyzer
// selection works like the x/tools multichecker: pass -reservepair,
// -detrand, ... to run a subset; with no analyzer flags, all run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"qkd/internal/lint"
	"qkd/internal/lint/driver"
	"qkd/internal/lint/unit"
)

func main() {
	args := os.Args[1:]
	if n := len(args); n > 0 {
		last := args[n-1]
		if strings.HasPrefix(args[0], "-V") || args[0] == "-flags" || strings.HasSuffix(last, ".cfg") {
			unit.Main(lint.All()) // never returns
		}
	}

	analyzers := lint.All()
	fs := flag.NewFlagSet("qkdlint", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: qkdlint [-reservepair] [-padreuse] [-sentinelcmp] [-atomicfield] [-detrand] [packages]")
		fs.PrintDefaults()
	}
	selected := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		selected[a.Name] = fs.Bool(a.Name, false, a.Doc)
	}
	fs.Parse(args)

	n, err := driver.Run(fs.Args(), unit.Enabled(analyzers, selected), os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qkdlint:", err)
		os.Exit(1)
	}
	if n > 0 {
		os.Exit(2)
	}
}
