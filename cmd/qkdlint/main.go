// Command qkdlint is the repo's custom static-analysis suite: seven
// analyzers encoding the stack's standing invariants (reservation
// lifecycle, pad hygiene, wrapped-sentinel matching, atomic access
// discipline, deterministic-replay purity, key-material taint flow,
// lock-acquisition order).
//
// Two modes share one binary:
//
//	go vet -vettool=$(pwd)/qkdlint ./...   # full vet pipeline, test files included
//	qkdlint ./...                          # standalone, non-test sources
//
// Vettool mode is auto-detected from cmd/go's calling convention
// (-V=full / -flags handshakes, or a single *.cfg argument). Analyzer
// selection works like the x/tools multichecker: pass -keytaint,
// -detrand, ... to run a subset; with no analyzer flags, all run.
//
// Standalone exit codes: 0 clean, 1 findings, 2 driver error — so CI
// can distinguish "code has issues" from "the linter itself broke".
// (Vettool mode keeps the vet protocol: findings exit 2.) -json emits
// findings as a JSON array of {file,line,col,analyzer,message,path}
// objects on stdout instead of the human-readable text on stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"qkd/internal/lint"
	"qkd/internal/lint/driver"
	"qkd/internal/lint/unit"
)

func main() {
	args := os.Args[1:]
	if n := len(args); n > 0 {
		last := args[n-1]
		if strings.HasPrefix(args[0], "-V") || args[0] == "-flags" || strings.HasSuffix(last, ".cfg") {
			unit.Main(lint.All()) // never returns
		}
	}

	analyzers := lint.All()
	fs := flag.NewFlagSet("qkdlint", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: qkdlint [-json] [-jobs n] [-reservepair] [-padreuse] [-sentinelcmp] [-atomicfield] [-detrand] [-keytaint] [-lockorder] [packages]")
		fs.PrintDefaults()
	}
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	jobs := fs.Int("jobs", 0, "max packages checked in parallel (0 = GOMAXPROCS)")
	selected := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		selected[a.Name] = fs.Bool(a.Name, false, a.Doc)
	}
	fs.Parse(args)

	var w io.Writer = os.Stderr
	if *jsonOut {
		w = os.Stdout
	}
	n, err := driver.Run(fs.Args(), unit.Enabled(analyzers, selected), w, driver.Options{JSON: *jsonOut, Jobs: *jobs})
	if err != nil {
		fmt.Fprintln(os.Stderr, "qkdlint:", err)
		os.Exit(2)
	}
	if n > 0 {
		os.Exit(1)
	}
}
