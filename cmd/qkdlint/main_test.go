package main_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// buildTool compiles qkdlint into a temp dir and returns the binary path.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "qkdlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building qkdlint: %v\n%s", err, out)
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestVettoolHandshake checks the two queries cmd/go makes before
// trusting a vettool: the -V=full version line (whose shape buildid's
// toolID parses) and the -flags JSON flag inventory.
func TestVettoolHandshake(t *testing.T) {
	bin := buildTool(t)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	versionRE := regexp.MustCompile(`^qkdlint version devel buildID=[0-9a-f]+\n$`)
	if !versionRE.Match(out) {
		t.Errorf("-V=full output %q does not match %v", out, versionRE)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	var defs []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(out, &defs); err != nil {
		t.Fatalf("-flags output is not a JSON flag list: %v\n%s", err, out)
	}
	want := map[string]bool{"reservepair": true, "padreuse": true, "sentinelcmp": true, "atomicfield": true, "detrand": true, "keytaint": true, "lockorder": true}
	for _, d := range defs {
		if !want[d.Name] {
			t.Errorf("unexpected flag %q", d.Name)
		}
		delete(want, d.Name)
		if !d.Bool {
			t.Errorf("flag %q must be boolean for go vet to accept it", d.Name)
		}
	}
	for name := range want {
		t.Errorf("missing flag for analyzer %q", name)
	}
}

// TestVetCleanOnRepo is the CI gate in miniature: the full analyzer
// suite, driven by go vet through the real vettool protocol, must run
// clean over every package in the module (test files included).
func TestVetCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("vets the whole module; skipped in -short")
	}
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=qkdlint ./... reported findings or failed: %v\n%s", err, out)
	}
}

// TestStandaloneExitCodes pins the standalone exit-code contract on a
// scratch module: 0 clean, 1 findings, 2 driver error. CI scripting
// keys off the distinction, so 0-with-findings is never acceptable.
// Also checks the -json finding shape.
func TestStandaloneExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a scratch module; skipped in -short")
	}
	bin := buildTool(t)
	dir := t.TempDir()
	writeFile := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("go.mod", "module scratch\n\ngo 1.24\n")
	writeFile("clean.go", "package scratch\n\nfunc Add(a, b int) int { return a + b }\n")

	run := func(args ...string) (string, string, int) {
		t.Helper()
		cmd := exec.Command(bin, args...)
		cmd.Dir = dir
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		err := cmd.Run()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("running qkdlint %v: %v", args, err)
		}
		return stdout.String(), stderr.String(), code
	}

	if stdout, stderr, code := run("./..."); code != 0 || stdout != "" || strings.TrimSpace(stderr) != "" {
		t.Fatalf("clean module: want exit 0 and no output, got %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}

	writeFile("held.go", `package scratch

import "sync"

var mu sync.Mutex

func Send(ch chan int) {
	mu.Lock()
	ch <- 1
	mu.Unlock()
}
`)
	if _, stderr, code := run("./..."); code != 1 || !strings.Contains(stderr, "held across channel send") {
		t.Fatalf("finding: want exit 1 with a diagnostic on stderr, got %d\n%s", code, stderr)
	}

	stdout, _, code := run("-json", "./...")
	if code != 1 {
		t.Fatalf("-json finding: want exit 1, got %d\n%s", code, stdout)
	}
	var diags []struct {
		File     string   `json:"file"`
		Line     int      `json:"line"`
		Col      int      `json:"col"`
		Analyzer string   `json:"analyzer"`
		Message  string   `json:"message"`
		Path     []string `json:"path"`
	}
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout)
	}
	if len(diags) != 1 || diags[0].Analyzer != "lockorder" || diags[0].Line == 0 ||
		!strings.HasSuffix(diags[0].File, "held.go") || !strings.Contains(diags[0].Message, "held across channel send") {
		t.Fatalf("unexpected -json diagnostics: %+v", diags)
	}

	if _, stderr, code := run("./does-not-exist"); code != 2 || !strings.Contains(stderr, "qkdlint:") {
		t.Fatalf("driver error: want exit 2 with an error on stderr, got %d\n%s", code, stderr)
	}
}

// TestStandaloneCleanOnRepo exercises the go-list-driven driver mode.
func TestStandaloneCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("lints the whole module; skipped in -short")
	}
	bin := buildTool(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = moduleRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("qkdlint ./... : %v\n%s", err, out)
	}
	if s := strings.TrimSpace(string(out)); s != "" {
		t.Errorf("expected no output on a clean tree, got:\n%s", s)
	}
}
