package main_test

import (
	"encoding/json"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// buildTool compiles qkdlint into a temp dir and returns the binary path.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "qkdlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building qkdlint: %v\n%s", err, out)
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestVettoolHandshake checks the two queries cmd/go makes before
// trusting a vettool: the -V=full version line (whose shape buildid's
// toolID parses) and the -flags JSON flag inventory.
func TestVettoolHandshake(t *testing.T) {
	bin := buildTool(t)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	versionRE := regexp.MustCompile(`^qkdlint version devel buildID=[0-9a-f]+\n$`)
	if !versionRE.Match(out) {
		t.Errorf("-V=full output %q does not match %v", out, versionRE)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	var defs []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(out, &defs); err != nil {
		t.Fatalf("-flags output is not a JSON flag list: %v\n%s", err, out)
	}
	want := map[string]bool{"reservepair": true, "padreuse": true, "sentinelcmp": true, "atomicfield": true, "detrand": true}
	for _, d := range defs {
		if !want[d.Name] {
			t.Errorf("unexpected flag %q", d.Name)
		}
		delete(want, d.Name)
		if !d.Bool {
			t.Errorf("flag %q must be boolean for go vet to accept it", d.Name)
		}
	}
	for name := range want {
		t.Errorf("missing flag for analyzer %q", name)
	}
}

// TestVetCleanOnRepo is the CI gate in miniature: the full analyzer
// suite, driven by go vet through the real vettool protocol, must run
// clean over every package in the module (test files included).
func TestVetCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("vets the whole module; skipped in -short")
	}
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=qkdlint ./... reported findings or failed: %v\n%s", err, out)
	}
}

// TestStandaloneCleanOnRepo exercises the go-list-driven driver mode.
func TestStandaloneCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("lints the whole module; skipped in -short")
	}
	bin := buildTool(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = moduleRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("qkdlint ./... : %v\n%s", err, out)
	}
	if s := strings.TrimSpace(string(out)); s != "" {
		t.Errorf("expected no output on a clean tree, got:\n%s", s)
	}
}
