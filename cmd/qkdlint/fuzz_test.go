package main_test

import (
	"encoding/json"
	"testing"

	"qkd/internal/lint/unit"
)

// FuzzVetCfg throws arbitrary bytes at the vet.cfg parser. The parser
// sits on the go vet wire protocol, so it must reject garbage with an
// error — never panic — and an accepted config must survive a
// marshal/parse round trip without drifting.
func FuzzVetCfg(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"ID":"qkd/internal/kms","Compiler":"gc","Dir":"/tmp","ImportPath":"qkd/internal/kms","GoFiles":["kms.go"],"ImportMap":{"fmt":"fmt"},"PackageFile":{"fmt":"/tmp/fmt.a"},"PackageVetx":{"qkd/internal/keypool":"/tmp/keypool.vetx"},"VetxOnly":true,"VetxOutput":"/tmp/out.vetx","GoVersion":"go1.24"}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"GoFiles":"not-a-list"}`))
	f.Add([]byte(`{"Standard":{"unsafe":true},"SucceedOnTypecheckFailure":true}`))
	f.Add([]byte(`{"ID":"x","ID":"y"}`))
	f.Add([]byte("\x00\xff"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := unit.ParseConfig(data)
		if err != nil {
			return
		}
		if cfg == nil {
			t.Fatal("nil config with nil error")
		}
		out, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("re-marshal of accepted config failed: %v", err)
		}
		cfg2, err := unit.ParseConfig(out)
		if err != nil {
			t.Fatalf("re-parse of re-marshaled config failed: %v\n%s", err, out)
		}
		if cfg.ID != cfg2.ID || cfg.ImportPath != cfg2.ImportPath || cfg.VetxOnly != cfg2.VetxOnly ||
			cfg.VetxOutput != cfg2.VetxOutput || len(cfg.GoFiles) != len(cfg2.GoFiles) ||
			len(cfg.PackageVetx) != len(cfg2.PackageVetx) {
			t.Fatalf("round-trip drift:\n%+v\nvs\n%+v", cfg, cfg2)
		}
	})
}
