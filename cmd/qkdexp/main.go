// Command qkdexp regenerates the paper's evaluation: every table,
// figure and quantitative claim indexed in DESIGN.md (E1-E12), plus
// the reproduction's scaling experiments (E13: key delivery service, E14: disjoint-path striping),
// printed as formatted reports.
//
// Usage:
//
//	qkdexp                 # run everything
//	qkdexp -exp e4,e8      # selected experiments
//	qkdexp -quick          # reduced Monte Carlo sizes
//	qkdexp -seed 7
//
// E15 soaks the concurrent multi-tunnel dataplane (mixed suites,
// rollovers under load, Eve replay storm). E16 scales it to a
// 100k-tunnel gateway fabric through the batched dataplane and a
// synchronized rollover storm. E17 is the chaos soak: a trace-shaped
// workload crossed with a seeded fault schedule (fiber cuts, Eve
// storm, relay compromise, KDS overload pulse, gateway crash-restart),
// gated on end-to-end SLOs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"qkd/internal/experiments"
)

var registry = map[string]func(uint64, bool) (*experiments.Report, error){
	"e1":  experiments.E1EndToEnd,
	"e2":  experiments.E2RateVsDistance,
	"e3":  experiments.E3SiftRatio,
	"e4":  experiments.E4Cascade,
	"e5":  experiments.E5Defense,
	"e6":  experiments.E6PrivacyAmp,
	"e7":  experiments.E7Eve,
	"e8":  experiments.E8IKE,
	"e9":  experiments.E9RelayMesh,
	"e10": experiments.E10Switches,
	"e11": experiments.E11Auth,
	"e12": experiments.E12Transcript,
	"e13": experiments.E13KDS,
	"e14": experiments.E14Striping,
	"e15": experiments.E15Dataplane,
	"e16": experiments.E16Fabric,
	"e17": experiments.E17ChaosSoak,
	"e18": experiments.E18FlowControl,
}

var order = []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15", "e16", "e17", "e18"}

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids (e1..e18) or 'all'")
	quick := flag.Bool("quick", false, "reduced Monte Carlo sizes")
	seed := flag.Uint64("seed", 2003, "simulation seed")
	flag.Parse()

	ids := order
	if *exp != "all" {
		ids = strings.Split(strings.ToLower(*exp), ",")
	}
	failed := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		run, ok := registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (want e1..e18)\n", id)
			os.Exit(2)
		}
		report, err := run(*seed, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", strings.ToUpper(id), err)
			failed++
			continue
		}
		fmt.Println(report)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
