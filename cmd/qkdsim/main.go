// Command qkdsim runs a single simulated QKD link end to end and
// prints the protocol pipeline's stage accounting — the tool for
// exploring how distance, source brightness, detector noise, error
// correctors, defense functions, and eavesdropping attacks move the
// distilled-key rate.
//
// Examples:
//
//	qkdsim -km 10 -frames 50
//	qkdsim -km 25 -mu 0.1 -corrector classic -defense slutsky
//	qkdsim -attack intercept -attack-prob 1.0
//	qkdsim -attack beamsplit -mu 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"qkd/internal/core"
	"qkd/internal/entropy"
	"qkd/internal/eve"
	"qkd/internal/photonics"
)

func main() {
	km := flag.Float64("km", 10, "fiber length (km)")
	mu := flag.Float64("mu", 0.1, "mean photon number per pulse")
	eta := flag.Float64("eta", 0.1, "detector efficiency")
	dark := flag.Float64("dark", 1e-4, "dark count probability per gate")
	visibility := flag.Float64("visibility", 0.93, "interferometer visibility")
	frames := flag.Int("frames", 50, "frames to transmit")
	slots := flag.Int("slots", 100000, "pulses per frame")
	batch := flag.Int("batch", 4096, "sifted bits per distillation batch")
	corrector := flag.String("corrector", "classic", "error corrector: bbn | classic | parity")
	defense := flag.String("defense", "bennett", "defense function: bennett | slutsky")
	attack := flag.String("attack", "none", "eavesdropping: none | intercept | beamsplit | cut")
	attackProb := flag.Float64("attack-prob", 1.0, "intercept-resend attack fraction")
	seed := flag.Uint64("seed", 2003, "simulation seed")
	flag.Parse()

	params := photonics.DefaultParams()
	params.FiberKm = *km
	params.MeanPhotons = *mu
	params.DetectorEff = *eta
	params.DarkCountProb = *dark
	params.Visibility = *visibility
	if err := params.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := core.Config{BatchBits: *batch}
	switch *corrector {
	case "bbn":
		cfg.Corrector = core.CorrectorBBN
	case "classic":
		cfg.Corrector = core.CorrectorClassic
	case "parity":
		cfg.Corrector = core.CorrectorBlockParity
	default:
		fmt.Fprintf(os.Stderr, "unknown corrector %q\n", *corrector)
		os.Exit(2)
	}
	switch *defense {
	case "bennett":
		cfg.Defense = entropy.Bennett
	case "slutsky":
		cfg.Defense = entropy.Slutsky
	default:
		fmt.Fprintf(os.Stderr, "unknown defense %q\n", *defense)
		os.Exit(2)
	}

	session := core.NewSession(params, cfg, *slots, *seed)
	switch *attack {
	case "none":
	case "intercept":
		session.Link.SetTap(eve.NewInterceptResend(*attackProb, *seed+1))
	case "beamsplit":
		session.Link.SetTap(eve.NewBeamsplit())
	case "cut":
		session.Link.Cut()
	default:
		fmt.Fprintf(os.Stderr, "unknown attack %q\n", *attack)
		os.Exit(2)
	}

	fmt.Printf("link: %.0f km, mu=%.2f, eta=%.2f, dark=%.0e, V=%.2f -> predicted QBER %.1f%%, click %.2e/pulse\n",
		*km, *mu, *eta, *dark, *visibility,
		100*params.ExpectedQBER(), params.ExpectedClickProb())
	fmt.Printf("pipeline: %s corrector, %s defense, %d-bit batches, attack=%s\n\n",
		*corrector, *defense, *batch, *attack)

	if err := session.RunFrames(*frames); err != nil {
		fmt.Fprintf(os.Stderr, "pipeline error: %v\n", err)
		os.Exit(1)
	}

	am := session.Alice.Metrics()
	seconds := float64(*frames) * float64(*slots) / params.PulseRateHz
	fmt.Println("stage accounting (Alice engine):")
	fmt.Printf("  pulses transmitted   %12d   (%.2f s of wall-clock at %.0f MHz)\n",
		am.PulsesSent, seconds, params.PulseRateHz/1e6)
	fmt.Printf("  sifted bits          %12d   (%.1f bit/s)\n",
		am.SiftedBits, float64(am.SiftedBits)/seconds)
	fmt.Printf("  errors corrected     %12d   (measured QBER %.2f%%)\n",
		am.ErrorsCorrected, 100*am.LastQBER)
	fmt.Printf("  parity disclosed     %12d\n", am.ParityDisclosed)
	fmt.Printf("  batches distilled    %12d   (aborted %d)\n",
		am.BatchesDistilled, am.BatchesAborted)
	fmt.Printf("  distilled key        %12d   (%.1f bit/s)\n",
		am.DistilledBits, float64(am.DistilledBits)/seconds)

	// Verify both reservoirs agree (the whole point).
	n := session.Alice.Pool().Available()
	if n != session.Bob.Pool().Available() {
		fmt.Println("\nWARNING: reservoirs hold different amounts")
		os.Exit(1)
	}
	if n > 0 {
		a, _ := session.Alice.Pool().TryConsume(n)
		b, _ := session.Bob.Pool().TryConsume(n)
		if !a.Equal(b) {
			fmt.Printf("\nWARNING: distilled keys differ in %d bits\n", a.HammingDistance(b))
			os.Exit(1)
		}
		fmt.Printf("\n%d distilled bits verified identical at both ends\n", n)
	} else {
		fmt.Println("\nno distilled key (link too lossy, too noisy, or under attack)")
	}
}
