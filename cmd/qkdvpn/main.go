// Command qkdvpn brings up the complete Fig. 2 system — two enclaves,
// two gateways, IKE with Qblock KEYMAT, one quantum link — and pushes
// user traffic through the tunnel, printing the racoon-style IKE
// transcript (the shape of the paper's Fig. 12).
//
// Examples:
//
//	qkdvpn                       # AES tunnel with QKD reseeding
//	qkdvpn -suite otp            # one-time-pad tunnel
//	qkdvpn -life-bytes 2000      # aggressive rollover
//	qkdvpn -kds                  # key delivery via the per-site KDS
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"qkd/internal/core"
	"qkd/internal/ipsec"
	"qkd/internal/kms"
	"qkd/internal/photonics"
	"qkd/internal/vpn"
)

func main() {
	suite := flag.String("suite", "aes", "tunnel cipher: aes | 3des | otp")
	lifeBytes := flag.Uint64("life-bytes", 0, "SA byte lifetime (0 = unbounded)")
	lifeSecs := flag.Int("life-seconds", 0, "SA time lifetime (0 = unbounded)")
	packets := flag.Int("packets", 20, "user packets to send")
	km := flag.Float64("km", 0, "quantum link fiber length")
	seed := flag.Uint64("seed", 2003, "simulation seed")
	useKDS := flag.Bool("kds", false, "route key delivery through the per-site KDS and report its scheduler status")
	flag.Parse()

	var cs ipsec.CipherSuite
	switch *suite {
	case "aes":
		cs = ipsec.SuiteAES128CTR
	case "3des":
		cs = ipsec.Suite3DESCBC
	case "otp":
		cs = ipsec.SuiteOTP
	default:
		fmt.Fprintf(os.Stderr, "unknown suite %q\n", *suite)
		os.Exit(2)
	}

	params := photonics.DefaultParams()
	params.FiberKm = *km
	if *km == 0 {
		// Short bench so the demo distills in moments.
		params.SystemLossDB = 0
		params.DetectorEff = 1
		params.DarkCountProb = 1e-5
		params.Visibility = 0.96
	}

	n, err := vpn.New(vpn.Config{
		Photonics: params,
		QKD:       core.Config{BatchBits: 2048},
		Suite:     cs,
		Life: ipsec.Lifetime{
			Bytes:    *lifeBytes,
			Duration: time.Duration(*lifeSecs) * time.Second,
		},
		OTPBits:     16384,
		KDS:         *useKDS,
		FlowControl: *useKDS,
		Seed:        *seed,
		IKELogA:     prefixWriter("alice-gw racoon: "),
		IKELogB:     prefixWriter("bob-gw   racoon: "),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer n.Close()

	fmt.Println("distilling initial key material over the quantum link...")
	need := 3 * 16384
	if cs != ipsec.SuiteOTP {
		need = 4096
	}
	if err := n.DistillKeys(need, 2000); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	am := n.Session.Alice.Metrics()
	fmt.Printf("distilled %d bits (QBER %.1f%%)\n\n", am.DistilledBits, 100*am.LastQBER)

	if err := n.Establish(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println()

	for i := 1; i <= *packets; i++ {
		msg := fmt.Sprintf("user packet %d through the quantum-keyed tunnel", i)
		got, err := n.SendWithRollover(vpn.HostA, vpn.HostB, uint32(i), []byte(msg))
		if err != nil {
			fmt.Fprintf(os.Stderr, "packet %d: %v\n", i, err)
			os.Exit(1)
		}
		if i == 1 || i == *packets {
			fmt.Printf("delivered %q\n", got)
		}
	}
	st := n.Stats()
	delivered, dropped := st.Delivered, st.Dropped
	fmt.Printf("\n%d packets delivered, %d dropped; tunnel operational over quantum-distilled keys\n",
		delivered, dropped)
	if *useKDS {
		printKDSStatus(n.A.KDS)
	}
}

// printKDSStatus reports the key delivery service's congestion signal
// and per-class scheduler outcomes — the operator's view of whether the
// key budget is keeping up with the tunnel's appetite.
func printKDSStatus(svc *kms.Service) {
	ks := svc.Stats()
	fmt.Printf("kds: pressure %.2f, %d bits deposited, %d bits claimed\n",
		ks.Pressure, ks.DepositedBits, ks.ClaimedBits)
	for c := kms.Class(0); c < kms.NumClasses; c++ {
		fmt.Printf("kds: class %-5s granted %d (%d bits), shed %d, degraded %d, expired %d\n",
			c, ks.Granted[c], ks.GrantedBits[c], ks.Shed[c], ks.Degraded[c], ks.Expired[c])
	}
}

// prefixWriter prints each log line with a prefix, mimicking syslog.
type prefixWriter string

func (p prefixWriter) Write(b []byte) (int, error) {
	fmt.Printf("%s%s", string(p), b)
	return len(b), nil
}
