// Meshnet example: the Section 8 network architectures.
//
// Part 1 runs a trusted-relay key-transport mesh through a barrage of
// fiber cuts and eavesdropping alarms, showing deliveries re-routing
// and the trust cost (which relays saw each key).
//
// Part 2 builds an untrusted photonic-switch fabric and runs real
// end-to-end QKD over composite light paths, showing reach shrinking
// with every switch's insertion loss — the opposite trade.
//
//	go run ./examples/meshnet
package main

import (
	"fmt"
	"log"

	"qkd"
	"qkd/internal/core"
)

func main() {
	fmt.Println("=== part 1: trusted-relay key transport network ===")
	sites := []string{"bbn", "harvard", "bu", "cambridge", "boston"}
	mesh := qkd.NewRelayFullMesh(7, 8192, sites...)
	fmt.Printf("full mesh: %d sites, %d QKD links\n", len(sites), mesh.LinkCount())

	events := map[int]func(){
		3: func() { mesh.Cut("bbn", "boston"); fmt.Println("  !! fiber cut: bbn-boston") },
		6: func() {
			mesh.Eavesdrop("bbn", "cambridge")
			fmt.Println("  !! QBER alarm (Eve): bbn-cambridge abandoned, pairwise key destroyed")
		},
		9: func() { mesh.Cut("bbn", "harvard"); fmt.Println("  !! fiber cut: bbn-harvard") },
	}
	for i := 1; i <= 12; i++ {
		mesh.Tick()
		if ev := events[i]; ev != nil {
			ev()
		}
		d, err := mesh.TransportKey("bbn", "boston", 1024)
		if err != nil {
			fmt.Printf("  delivery %2d: FAILED (%v)\n", i, err)
			continue
		}
		fmt.Printf("  delivery %2d: path %v, relays trusted with the key: %v\n", i, d.Path, d.Exposed)
	}
	st := mesh.Stats()
	fmt.Printf("delivered %d keys through 3 link failures; %d failed\n\n",
		st.KeysDelivered, st.DeliveryFailed)

	fmt.Println("=== part 2: untrusted photonic-switch network ===")
	fabric := qkd.NewOpticalMesh()
	fabric.AddEndpoint("alice")
	for i := 0; i < 4; i++ {
		fabric.AddSwitch(fmt.Sprintf("mems%d", i), 1.0) // 1 dB insertion loss each
		fabric.AddEndpoint(fmt.Sprintf("bob%d", i))
	}
	fabric.Connect("alice", "mems0", 2)
	for i := 0; i < 4; i++ {
		fabric.Connect(fmt.Sprintf("mems%d", i), fmt.Sprintf("bob%d", i), 2)
		if i < 3 {
			fabric.Connect(fmt.Sprintf("mems%d", i), fmt.Sprintf("mems%d", i+1), 2)
		}
	}

	base := qkd.DefaultLinkParams()
	base.FiberKm = 0
	base.SystemLossDB = 0
	base.DetectorEff = 1
	base.DarkCountProb = 1e-5
	base.Visibility = 0.96

	fmt.Println("end-to-end QKD over all-optical paths (no relay ever sees the key):")
	for i := 0; i < 4; i++ {
		path, err := fabric.Establish("alice", fmt.Sprintf("bob%d", i))
		if err != nil {
			log.Fatal(err)
		}
		res, err := path.RunQKD(base, core.Config{BatchBits: 2048}, 40, 10000, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d switch(es), %.0f km, %.0f dB switch loss: %6d key bits (%.5f per pulse)\n",
			path.Hops(), path.FiberKm, path.SwitchDB, res.DistilledBits, res.SecretPerPulse)
		path.Release()
	}
	fmt.Println("shape: each switch costs ~1 dB -> rate falls ~20% per hop; trust cost stays zero")
}
