// Eavesdropper example: Section 6's Eve against the running system.
//
// Three attacks on the quantum channel, and what the protocol suite
// does about each:
//
//   - intercept-resend: Eve measures pulses and regenerates them. Her
//     wrong-basis guesses randomize Bob's results, driving QBER to ~25%
//     — every distillation batch aborts and she gets nothing.
//
//   - beamsplitting: Eve siphons one photon from each multi-photon
//     pulse and measures it after basis revelation. No errors appear,
//     but privacy amplification has already charged the multi-photon
//     budget, so her knowledge of the final key stays negligible.
//
//   - fiber cut: the bluntest denial of service; key flow stops, which
//     is the robustness argument for the meshes in examples/meshnet.
//
//     go run ./examples/eavesdropper
package main

import (
	"fmt"
	"log"

	"qkd"
)

func params() qkd.LinkParams {
	p := qkd.DefaultLinkParams()
	p.FiberKm = 0
	p.SystemLossDB = 0
	p.DetectorEff = 1
	p.DarkCountProb = 1e-5
	p.Visibility = 0.96
	return p
}

func main() {
	fmt.Println("=== attack 1: intercept-resend ===")
	for _, prob := range []float64{0, 0.5, 1.0} {
		s := qkd.NewSession(params(), qkd.Config{BatchBits: 2048}, 10000, 7)
		if prob > 0 {
			s.Link.SetTap(qkd.NewInterceptResend(prob, 99))
		}
		if err := s.RunFrames(25); err != nil {
			log.Fatal(err)
		}
		m := s.Alice.Metrics()
		fmt.Printf("  attack %3.0f%%: QBER %5.1f%%, %d batches distilled, %d aborted, %d key bits\n",
			100*prob, 100*m.LastQBER, m.BatchesDistilled, m.BatchesAborted, m.DistilledBits)
	}

	fmt.Println("\n=== attack 2: beamsplitting (photon-number splitting) ===")
	for _, mu := range []float64{0.1, 0.5} {
		p := params()
		p.MeanPhotons = mu
		s := qkd.NewSession(p, qkd.Config{BatchBits: 2048}, 10000, 7)
		tap := qkd.NewBeamsplit()
		s.Link.SetTap(tap)
		if err := s.RunFrames(25); err != nil {
			log.Fatal(err)
		}
		m := s.Alice.Metrics()
		fmt.Printf("  mu=%.1f: QBER %5.1f%% (no disturbance!), stolen pulses this frame: %d,\n",
			mu, 100*m.LastQBER, tap.StolenCount())
		fmt.Printf("          yield %d bits — shrunk by the multi-photon charge before Eve sees any of it\n",
			m.DistilledBits)
	}

	fmt.Println("\n=== attack 3: fiber cut ===")
	s := qkd.NewSession(params(), qkd.Config{BatchBits: 2048}, 10000, 7)
	if err := s.RunFrames(10); err != nil {
		log.Fatal(err)
	}
	before := s.Alice.Metrics().DistilledBits
	s.Link.Cut()
	if err := s.RunFrames(10); err != nil {
		log.Fatal(err)
	}
	after := s.Alice.Metrics().DistilledBits
	fmt.Printf("  key distilled before cut: %d bits; during cut: %d bits\n", before, after-before)
	fmt.Println("  (a point-to-point link has no answer to this — see examples/meshnet)")
}
