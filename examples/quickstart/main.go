// Quickstart: distill shared secret key over a simulated quantum link.
//
// This is the minimal use of the library: build a link at the paper's
// operating point, pump pulses through the full QKD protocol pipeline
// (sifting -> Cascade error correction -> entropy estimation -> privacy
// amplification), and withdraw identical secret bits at both ends.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"qkd"
)

func main() {
	// The paper's link: 1 MHz pulses, mean photon number 0.1, 10 km of
	// fiber, 6-8 % QBER. Classic Cascade recovers more key than the
	// subset variant at this error rate.
	params := qkd.DefaultLinkParams()
	cfg := qkd.Config{
		BatchBits: 4096,
		Corrector: qkd.CorrectorClassic,
		Defense:   qkd.DefenseBennett,
	}
	session := qkd.NewSession(params, cfg, 100000, 2003)

	fmt.Println("distilling 1024 bits of shared secret key at the 10 km operating point...")
	if err := session.RunUntilDistilled(1024, 2000); err != nil {
		log.Fatal(err)
	}

	alice, err := session.Alice.Pool().TryConsume(1024)
	if err != nil {
		log.Fatal(err)
	}
	bob, err := session.Bob.Pool().TryConsume(1024)
	if err != nil {
		log.Fatal(err)
	}

	m := session.Alice.Metrics()
	fmt.Printf("pulses transmitted: %d (%.1f s at 1 MHz)\n",
		m.PulsesSent, float64(m.PulsesSent)/params.PulseRateHz)
	fmt.Printf("sifted bits:        %d\n", m.SiftedBits)
	fmt.Printf("measured QBER:      %.1f%% (paper: 6-8%%)\n", 100*m.LastQBER)
	fmt.Printf("distilled key:      %d bits\n", m.DistilledBits)
	fmt.Printf("keys identical:     %v\n", alice.Equal(bob))
	fmt.Printf("alice's first 64:   %s\n", alice.Slice(0, 64))
	fmt.Printf("bob's   first 64:   %s\n", bob.Slice(0, 64))
}
