// VPN example: the paper's headline system (Fig. 2) — a Virtual
// Private Network between two enclaves whose IPsec keys are continually
// reseeded from quantum key distribution, with one tunnel running AES
// and a second scenario running pure one-time-pad.
//
//	go run ./examples/vpn
package main

import (
	"fmt"
	"log"

	"qkd"
)

func run(name string, suite int, life qkd.SALifetime) {
	var cs = qkd.SuiteAES128CTR
	switch suite {
	case 1:
		cs = qkd.SuiteOTP
	case 2:
		cs = qkd.Suite3DESCBC
	}
	// A short, efficient bench link so the demo is instant; swap in
	// qkd.DefaultLinkParams() for the 10 km operating point.
	params := qkd.DefaultLinkParams()
	params.FiberKm = 0
	params.SystemLossDB = 0
	params.DetectorEff = 1
	params.DarkCountProb = 1e-5
	params.Visibility = 0.96

	n, err := qkd.NewVPN(qkd.VPNConfig{
		Photonics: params,
		QKD:       qkd.Config{BatchBits: 2048},
		Suite:     cs,
		Life:      life,
		OTPBits:   16384,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer n.Close()

	need := 4096
	if cs == qkd.SuiteOTP {
		need = 3 * 16384
	}
	if err := n.DistillKeys(need, 2000); err != nil {
		log.Fatal(err)
	}
	if err := n.Establish(); err != nil {
		log.Fatal(err)
	}

	sent, rolled := 0, 0
	for i := 1; i <= 50; i++ {
		payload := fmt.Sprintf("%s packet %d", name, i)
		_, err := n.SendWithRollover(qkd.HostA, qkd.HostB, uint32(i), []byte(payload))
		if err != nil {
			// Key-starved rollover: distill enough for a full
			// renegotiation (OTP needs two pads) and retry once.
			if derr := n.DistillKeys(need, 2000); derr != nil {
				log.Fatalf("%s packet %d: %v", name, i, err)
			}
			if _, err = n.SendWithRollover(qkd.HostA, qkd.HostB, uint32(i), []byte(payload)); err != nil {
				log.Fatalf("%s packet %d: %v", name, i, err)
			}
			rolled++
		}
		sent++
	}
	st := n.A.IKE.Stats()
	fmt.Printf("%-22s  %d packets, %d SA negotiations, %d QKD bits folded into keys\n",
		name, sent, st.Phase2Initiated, st.QbitsConsumed)
}

func main() {
	fmt.Println("QKD-keyed VPN scenarios (Fig. 2 architecture):")
	run("aes128 + qkd reseed", 0, qkd.SALifetime{})
	run("aes128, 1KB rollover", 0, qkd.SALifetime{Bytes: 1024})
	run("one-time pad", 1, qkd.SALifetime{})
}
