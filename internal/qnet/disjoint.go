package qnet

import (
	"fmt"
	"math"
	"sort"
)

// Route is one loop-free path through the unified topology.
type Route struct {
	// Nodes is the site sequence, endpoints included. Interior switches
	// of an untrusted light path are collapsed into their edge and do
	// not appear — they never hold key.
	Nodes []string
	hops  []*Edge
}

// Hops returns the number of edges traversed.
func (r Route) Hops() int { return len(r.hops) }

// kDisjointPaths computes k pairwise vertex-disjoint src->dst paths of
// minimum total weight over the given edges — Bhandari's algorithm
// with node splitting. Every node v becomes v_in -> v_out joined by a
// zero-weight arc, so interior-node capacity is 1 and the successive
// shortest paths are vertex-disjoint, not merely edge-disjoint (two
// stripes through one relay would hand that relay two shares). Each
// round runs Bellman-Ford (reversed arcs carry negative weight), then
// reverses the path's arcs in the residual graph; overlapping arcs
// cancel, and the surviving arc set decomposes into the k paths.
//
// Parallel edges between the same pair of sites (a trusted relay link
// and an untrusted light path, say) are distinct arcs and may carry
// distinct paths.
func kDisjointPaths(edges []*Edge, weight func(*Edge) float64, src, dst string, k int) ([]Route, error) {
	if k < 1 {
		return nil, fmt.Errorf("qnet: need k >= 1, got %d", k)
	}
	// Deterministic node numbering: sorted names. v_in = 2i, v_out = 2i+1.
	nameSet := map[string]bool{src: true, dst: true}
	for _, e := range edges {
		nameSet[e.A] = true
		nameSet[e.B] = true
	}
	names := make([]string, 0, len(nameSet))
	for v := range nameSet {
		names = append(names, v)
	}
	sort.Strings(names)
	id := make(map[string]int, len(names))
	for i, v := range names {
		id[v] = i
	}
	in := func(v string) int { return 2 * id[v] }
	out := func(v string) int { return 2*id[v] + 1 }
	numV := 2 * len(names)

	type arc struct {
		from, to int
		w        float64
		e        *Edge // nil for node-split arcs
		active   bool
		inSol    bool
		rev      *arc // residual counterpart (orig on reverse arcs)
		isRev    bool
	}
	var arcs []*arc
	add := func(from, to int, w float64, e *Edge) *arc {
		fwd := &arc{from: from, to: to, w: w, e: e, active: true}
		bwd := &arc{from: to, to: from, w: -w, e: e, isRev: true, rev: fwd}
		fwd.rev = bwd
		arcs = append(arcs, fwd, bwd)
		return fwd
	}
	for _, v := range names {
		add(in(v), out(v), 0, nil)
	}
	for _, e := range edges {
		w := weight(e)
		add(out(e.A), in(e.B), w, e)
		add(out(e.B), in(e.A), w, e)
	}

	source, target := out(src), in(dst)
	dist := make([]float64, numV)
	prev := make([]*arc, numV)
	for round := 0; round < k; round++ {
		for i := range dist {
			dist[i] = math.Inf(1)
			prev[i] = nil
		}
		dist[source] = 0
		for iter := 0; iter < numV; iter++ {
			changed := false
			for _, a := range arcs {
				if !a.active || math.IsInf(dist[a.from], 1) {
					continue
				}
				if d := dist[a.from] + a.w; d < dist[a.to]-1e-12 {
					dist[a.to] = d
					prev[a.to] = a
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		if prev[target] == nil && target != source {
			return nil, fmt.Errorf("%w: found %d of %d between %s and %s",
				ErrDisjoint, round, k, src, dst)
		}
		// Reverse the path's arcs in the residual graph.
		for a := prev[target]; a != nil; a = prev[a.from] {
			a.active = false
			a.rev.active = true
			if a.isRev {
				a.rev.inSol = false // canceled an earlier path's arc
			} else {
				a.inSol = true
			}
		}
	}

	// Decompose the solution arcs into k paths. Vertex splitting means
	// every interior node has exactly one solution arc in and out, so
	// the walk is forced; ties at src_out are broken by arc creation
	// order (node split arcs first, then edges in registration order),
	// which is deterministic.
	outArcs := make(map[int][]*arc)
	for _, a := range arcs {
		if !a.isRev && a.inSol {
			outArcs[a.from] = append(outArcs[a.from], a)
		}
	}
	routes := make([]Route, 0, k)
	for p := 0; p < k; p++ {
		r := Route{Nodes: []string{src}}
		cur := source
		for cur != target {
			next := outArcs[cur]
			if len(next) == 0 {
				return nil, fmt.Errorf("qnet: internal: path decomposition stuck at %s", names[cur/2])
			}
			a := next[0]
			outArcs[cur] = next[1:]
			if a.e != nil {
				r.hops = append(r.hops, a.e)
				r.Nodes = append(r.Nodes, names[a.to/2])
			}
			cur = a.to
		}
		routes = append(routes, r)
	}
	return routes, nil
}
