package qnet

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"qkd/internal/keypool"
	"qkd/internal/kms"
	"qkd/internal/optical"
	"qkd/internal/photonics"
	"qkd/internal/relay"
)

// stripeNet builds gwA -r{i}- gwB with `relays` parallel 2-hop paths
// and registers it, charged with `ticks` rounds of key.
func stripeNet(t testing.TB, relays, rate, ticks int) (*Network, *relay.Network) {
	if h, ok := t.(*testing.T); ok {
		h.Helper()
	}
	rn := relay.NewNetwork(7)
	rn.AddNode("gwA")
	rn.AddNode("gwB")
	for i := 0; i < relays; i++ {
		r := fmt.Sprintf("r%d", i)
		rn.AddNode(r)
		if _, err := rn.AddLink("gwA", r, rate); err != nil {
			t.Fatal(err)
		}
		if _, err := rn.AddLink(r, "gwB", rate); err != nil {
			t.Fatal(err)
		}
	}
	n := NewNetwork(Config{Seed: 11})
	if got := n.RegisterRelay(rn); got != 2*relays {
		t.Fatalf("registered %d edges, want %d", got, 2*relays)
	}
	for i := 0; i < ticks; i++ {
		n.Tick()
	}
	return n, rn
}

// cutFirstHop cuts the first trusted hop of the given route in rn.
func cutFirstHop(t *testing.T, rn *relay.Network, route []string) (a, b string) {
	t.Helper()
	a, b = route[0], route[1]
	if err := rn.Cut(a, b); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestStripedTransportDelivers(t *testing.T) {
	n, _ := stripeNet(t, 3, 8192, 2)
	tr, err := n.NewTransport("gwA", "gwB", 1024, 3, TransportOpts{ChunkBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(16); err != nil {
		t.Fatal(err)
	}
	d, err := tr.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if d.Key.Len() != 1024 || d.Stripes != 3 || len(d.Routes) != 3 {
		t.Fatalf("delivery %d bits, %d stripes, %d routes", d.Key.Len(), d.Stripes, len(d.Routes))
	}
	// Every interior relay saw exactly one full share stream — zero
	// information — and can reconstruct no key bits.
	for node, bits := range d.ShareBitsSeen {
		if bits != 1024 {
			t.Errorf("%s saw %d share bits, want 1024", node, bits)
		}
	}
	if len(d.ShareBitsSeen) != 3 {
		t.Errorf("exposure map %v, want the 3 stripe relays", d.ShareBitsSeen)
	}
	for node, bits := range d.KeyBitsExposed {
		if bits != 0 {
			t.Errorf("%s can reconstruct %d key bits, want 0", node, bits)
		}
	}
	if st := n.Stats(); st.Transports != 1 || st.BitsDelivered != 1024 {
		t.Errorf("stats %+v", st)
	}
}

func TestSinglePathExposesWholeKey(t *testing.T) {
	n, _ := stripeNet(t, 1, 8192, 1)
	tr, err := n.NewTransport("gwA", "gwB", 512, 1, TransportOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(4); err != nil {
		t.Fatal(err)
	}
	d, err := tr.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := d.KeyBitsExposed["r0"]; got != 512 {
		t.Errorf("k=1 relay reconstructs %d key bits, want the whole 512", got)
	}
}

func TestTransportConsumesPerHopPads(t *testing.T) {
	n, rn := stripeNet(t, 2, 8192, 1)
	before := map[string]int{}
	for _, l := range rn.Links() {
		before[l.A+"|"+l.B] = l.KeyAvailable()
	}
	tr, err := n.NewTransport("gwA", "gwB", 1024, 2, TransportOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(4); err != nil {
		t.Fatal(err)
	}
	// Every hop of both 2-hop stripes consumed exactly 1024 bits.
	for _, l := range rn.Links() {
		if got := before[l.A+"|"+l.B] - l.KeyAvailable(); got != 1024 {
			t.Errorf("link %s-%s consumed %d, want 1024", l.A, l.B, got)
		}
	}
}

func TestFailoverOnMidTransportCut(t *testing.T) {
	n, rn := stripeNet(t, 3, 1<<15, 2) // 2 active stripes + 1 spare
	tr, err := n.NewTransport("gwA", "gwB", 2048, 2, TransportOpts{ChunkBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(); err != nil {
		t.Fatal(err)
	}
	// Kill the first stripe's first hop mid-transport.
	victim := tr.Routes()[0]
	cutFirstHop(t, rn, victim)
	if err := tr.Run(16); err != nil {
		t.Fatal(err)
	}
	d, err := tr.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if d.Reroutes != 1 {
		t.Errorf("reroutes = %d, want 1", d.Reroutes)
	}
	// The replacement is still vertex-disjoint from the surviving stripe.
	interior := map[string]bool{}
	for _, r := range d.Routes {
		for _, v := range r[1 : len(r)-1] {
			if interior[v] {
				t.Errorf("routes share relay %s after failover", v)
			}
			interior[v] = true
		}
	}
	if st := n.Stats(); st.Failovers != 1 {
		t.Errorf("Failovers = %d", st.Failovers)
	}
}

func TestQBERSpikeDemotesAndReroutes(t *testing.T) {
	n, _ := stripeNet(t, 2, 1<<15, 2)
	tr, err := n.NewTransport("gwA", "gwB", 2048, 1, TransportOpts{ChunkBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(); err != nil {
		t.Fatal(err)
	}
	// Feed the active route's first edge a QBER spike: the link stays
	// up and stocked, but the monitor must demote it past the
	// threshold and the transport must walk away from it.
	route := tr.Routes()[0]
	var victim *Edge
	for _, e := range n.Edges() {
		if (e.A == route[0] && e.B == route[1]) || (e.A == route[1] && e.B == route[0]) {
			victim = e
		}
	}
	for i := 0; i < 8; i++ {
		victim.ObserveQBER(0.25)
	}
	if !victim.Demoted() {
		t.Fatal("edge not demoted after sustained QBER spike")
	}
	if err := tr.Run(16); err != nil {
		t.Fatal(err)
	}
	d, err := tr.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if d.Reroutes != 1 {
		t.Errorf("reroutes = %d, want 1", d.Reroutes)
	}
	for _, hopA := range d.Routes[0] {
		if hopA == route[1] {
			t.Errorf("final route %v still uses the demoted relay %s", d.Routes[0], route[1])
		}
	}
	if st := n.Stats(); st.Demotions != 1 {
		t.Errorf("Demotions = %d", st.Demotions)
	}
}

func TestFailedTransportLeavesPoolsUntouched(t *testing.T) {
	n, rn := stripeNet(t, 2, 8192, 1)
	snapshot := func() map[string]int {
		out := map[string]int{}
		for _, l := range rn.Links() {
			out[l.A+"|"+l.B] = l.KeyAvailable()
		}
		return out
	}
	before := snapshot()
	// More stripes than disjoint paths: fails before reserving.
	if _, err := n.NewTransport("gwA", "gwB", 512, 3, TransportOpts{}); !errors.Is(err, ErrDisjoint) {
		t.Fatalf("err = %v, want ErrDisjoint", err)
	}
	// A blocked waiter makes one pool's reservation fail *after* other
	// hops reserved: everything must be refunded.
	l := rn.Link("gwA", "r1")
	waiterErr := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		close(started)
		_, err := l.Pool().Consume(1<<20, 500*time.Millisecond)
		waiterErr <- err
	}()
	<-started
	time.Sleep(10 * time.Millisecond) // let the waiter enqueue
	if _, err := n.NewTransport("gwA", "gwB", 512, 2, TransportOpts{}); err == nil {
		t.Fatal("transport succeeded past a blocked pool")
	}
	if err := <-waiterErr; !errors.Is(err, keypool.ErrTimeout) {
		t.Fatalf("waiter: %v", err)
	}
	after := snapshot()
	for k, v := range before {
		if after[k] != v {
			t.Errorf("pool %s: %d -> %d across failed transports", k, v, after[k])
		}
	}
	if st := n.Stats(); st.TransportsFailed != 2 {
		t.Errorf("TransportsFailed = %d, want 2", st.TransportsFailed)
	}
}

func TestCustodyFeedsAcrossFailover(t *testing.T) {
	n, rn := stripeNet(t, 3, 1<<15, 2)
	kdsA, kdsB := kms.New(kms.Config{}), kms.New(kms.Config{})
	defer kdsA.Close()
	defer kdsB.Close()
	feedA, err := kdsA.AttachSource("qnet")
	if err != nil {
		t.Fatal(err)
	}
	feedB, _ := kdsB.AttachSource("qnet")

	tr, err := n.NewTransport("gwA", "gwB", 2048, 2, TransportOpts{
		ChunkBits: 256, FeedA: feedA, FeedB: feedB,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A consumer on each side wants the whole key; it must block
	// through the failover and then receive bits identical to the
	// peer's — never an error, never a gap.
	poolA, poolB := kdsA.PoolView(kms.ClassOTP), kdsB.PoolView(kms.ClassOTP)
	doneA, doneB := make(chan error, 1), make(chan error, 1)
	go func() {
		bits, err := poolA.Consume(2048, 10*time.Second)
		if err == nil && !bits.Equal(tr.key) {
			err = errors.New("side A key mismatch")
		}
		doneA <- err
	}()
	go func() {
		bits, err := poolB.Consume(2048, 10*time.Second)
		if err == nil && !bits.Equal(tr.key) {
			err = errors.New("side B key mismatch")
		}
		doneB <- err
	}()

	if _, err := tr.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(); err != nil {
		t.Fatal(err)
	}
	cutFirstHop(t, rn, tr.Routes()[0])
	if err := tr.Run(16); err != nil {
		t.Fatal(err)
	}
	if err := <-doneA; err != nil {
		t.Errorf("consumer A: %v", err)
	}
	if err := <-doneB; err != nil {
		t.Errorf("consumer B: %v", err)
	}
	// The failover window buffered deposits in custody and flushed
	// them all: nothing lost.
	fs := feedA.Stats()
	if fs.BufferedBits == 0 {
		t.Error("failover buffered nothing in custody")
	}
	if fs.BufferedBits != fs.FlushedBits {
		t.Errorf("custody lost bits: %d buffered, %d flushed", fs.BufferedBits, fs.FlushedBits)
	}
	if fs.DepositedBits != 2048 {
		t.Errorf("feed saw %d bits, want 2048", fs.DepositedBits)
	}
}

func TestSelfTransport(t *testing.T) {
	n, _ := stripeNet(t, 1, 1024, 1)
	tr, err := n.NewTransport("gwA", "gwA", 256, 3, TransportOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Done() {
		t.Fatal("self-transport not immediately done")
	}
	d, err := tr.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if d.Key.Len() != 256 || len(d.ShareBitsSeen) != 0 {
		t.Errorf("self delivery: %d bits, exposure %v", d.Key.Len(), d.ShareBitsSeen)
	}
}

func TestLightPathEdge(t *testing.T) {
	// A light path through two switches joins the unified graph as one
	// untrusted edge: interior switches never appear in routes or
	// exposure, and the edge distills key each Tick.
	mesh := optical.NewMesh()
	mesh.AddEndpoint("gwA")
	mesh.AddEndpoint("gwB")
	mesh.AddSwitch("s1", 0.5)
	mesh.AddSwitch("s2", 0.5)
	mesh.Connect("gwA", "s1", 5)
	mesh.Connect("s1", "s2", 5)
	mesh.Connect("s2", "gwB", 5)

	rn := relay.NewNetwork(3)
	rn.AddNode("gwA")
	rn.AddNode("gwB")
	rn.AddNode("r0")
	rn.AddLink("gwA", "r0", 1<<14)
	rn.AddLink("r0", "gwB", 1<<14)

	n := NewNetwork(Config{Seed: 5})
	n.RegisterRelay(rn)
	e, err := n.RegisterLightPath(mesh, "gwA", "gwB", photonics.DefaultParams(), 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != Untrusted {
		t.Fatalf("kind %v", e.Kind)
	}
	if e.rate <= 0 {
		t.Fatalf("light path distills %d bits/tick", e.rate)
	}
	for e.Available() < 512 {
		n.Tick()
	}
	// k=2: one stripe over the relay, one over the light path.
	tr, err := n.NewTransport("gwA", "gwB", 512, 2, TransportOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(4); err != nil {
		t.Fatal(err)
	}
	d, err := tr.Finish()
	if err != nil {
		t.Fatal(err)
	}
	direct := false
	for _, r := range d.Routes {
		if len(r) == 2 {
			direct = true
		}
		for _, v := range r {
			if v == "s1" || v == "s2" {
				t.Errorf("switch leaked into route %v", r)
			}
		}
	}
	if !direct {
		t.Errorf("no stripe took the light path: %v", d.Routes)
	}
	if bits := d.ShareBitsSeen["r0"]; bits != 512 {
		t.Errorf("relay saw %d share bits", bits)
	}
	if d.KeyBitsExposed["r0"] != 0 {
		t.Error("relay can reconstruct key despite striping")
	}
}

// ---------------------------------------------------------------------
// Benchmarks: bench.sh qnet group -> BENCH_qnet.json
// ---------------------------------------------------------------------

func benchStripe(b *testing.B, k int) {
	n, _ := stripeNet(b, 4, 1<<20, 1)
	const nbits = 256
	b.SetBytes(nbits / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%512 == 0 {
			b.StopTimer()
			n.Tick()
			b.StartTimer()
		}
		tr, err := n.NewTransport("gwA", "gwB", nbits, k, TransportOpts{})
		if err != nil {
			b.Fatal(err)
		}
		if err := tr.Run(2); err != nil {
			b.Fatal(err)
		}
		if _, err := tr.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQnet_Stripe1Path(b *testing.B) { benchStripe(b, 1) }
func BenchmarkQnet_Stripe2Path(b *testing.B) { benchStripe(b, 2) }
func BenchmarkQnet_Stripe3Path(b *testing.B) { benchStripe(b, 3) }

func TestFailoverAvoidsSitesHoldingOtherShares(t *testing.T) {
	// Security accounting regression: the failover ban must cover sites
	// with *historical* exposure to another share, not just the other
	// stripes' current interiors — a site holding two different shares
	// of the same chunk range could reconstruct key bits.
	n, rn := stripeNet(t, 3, 1<<15, 2)
	tr, err := n.NewTransport("gwA", "gwB", 2048, 2, TransportOpts{ChunkBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(); err != nil {
		t.Fatal(err)
	}
	// The spare relay is the only one not carrying a stripe.
	used := map[string]bool{}
	for _, r := range tr.Routes() {
		used[r[1]] = true
	}
	var spare string
	for i := 0; i < 3; i++ {
		if r := fmt.Sprintf("r%d", i); !used[r] {
			spare = r
		}
	}
	// Pretend the spare relay once carried stripe 1's share (a route
	// that has since failed over): stripe 0's failover must not route
	// through it even though no current stripe uses it.
	tr.expose(spare, 1, 0)
	cutFirstHop(t, rn, tr.Routes()[0])
	if err := tr.Run(16); err == nil {
		d, ferr := tr.Finish()
		if ferr != nil {
			t.Fatal(ferr)
		}
		for _, r := range d.Routes {
			for _, v := range r[1 : len(r)-1] {
				if v == spare {
					t.Fatalf("failover routed share 0 through %s, which held share 1", v)
				}
			}
		}
		for node, bits := range d.KeyBitsExposed {
			if bits != 0 {
				t.Errorf("%s can reconstruct %d key bits", node, bits)
			}
		}
	} else {
		// With the spare banned there is no replacement path: aborting
		// is the correct, conservative outcome.
		if !errors.Is(err, ErrFailed) {
			t.Fatalf("err = %v, want ErrFailed", err)
		}
	}
}

func TestAbortRefundsReservationsAndFlushesFeeds(t *testing.T) {
	n, rn := stripeNet(t, 2, 8192, 1)
	kds := kms.New(kms.Config{})
	defer kds.Close()
	feed, err := kds.AttachSource("qnet")
	if err != nil {
		t.Fatal(err)
	}
	before := map[string]int{}
	for _, l := range rn.Links() {
		before[l.A+"|"+l.B] = l.KeyAvailable()
	}
	tr, err := n.NewTransport("gwA", "gwB", 2048, 2, TransportOpts{ChunkBits: 256, FeedA: feed})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(); err != nil { // one chunk delivered per stripe
		t.Fatal(err)
	}
	feed.SetUp(false) // simulate an in-flight custody window
	tr.custody = true
	tr.Abort()
	// Only the delivered chunk's pads are gone; the rest refunded.
	for _, l := range rn.Links() {
		if got := before[l.A+"|"+l.B] - l.KeyAvailable(); got != 256 {
			t.Errorf("link %s-%s net consumption %d after abort, want 256", l.A, l.B, got)
		}
	}
	if !feed.Up() {
		t.Error("abort left the custody feed down")
	}
	if _, err := tr.Step(); !errors.Is(err, ErrFailed) {
		t.Errorf("step after abort: %v, want ErrFailed", err)
	}
	tr.Abort() // idempotent
	if st := n.Stats(); st.TransportsFailed != 1 {
		t.Errorf("TransportsFailed = %d, want 1", st.TransportsFailed)
	}
}

func TestParkedStripeResumesAfterRestore(t *testing.T) {
	// Repeated-cut robustness: with no disjoint spare, a dead stripe
	// parks inside the stall budget instead of aborting — and when the
	// fiber is repaired mid-transport, the stripe resumes at its frozen
	// cursor and the transport completes.
	n, rn := stripeNet(t, 2, 1<<15, 2) // k=2 over exactly 2 relays: no spare
	tr, err := n.NewTransport("gwA", "gwB", 2048, 2, TransportOpts{ChunkBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(); err != nil {
		t.Fatal(err)
	}
	a, b := cutFirstHop(t, rn, tr.Routes()[0])
	// Three rounds with the link down: failover has nowhere to go, the
	// stripe parks, delivery stalls — but nothing aborts.
	deliveredBefore := tr.DeliveredBits()
	for i := 0; i < 3; i++ {
		if _, err := tr.Step(); err != nil {
			t.Fatalf("step %d during outage: %v (want parked, not aborted)", i, err)
		}
	}
	if tr.Done() {
		t.Fatal("transport finished with a stripe down — reconstruction needs all k shares")
	}
	if tr.DeliveredBits() != deliveredBefore {
		t.Errorf("delivered advanced %d -> %d bits during the outage",
			deliveredBefore, tr.DeliveredBits())
	}
	// Fiber repaired; the fresh pool starts empty, so recharge it.
	if err := rn.Restore(a, b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		n.Tick()
	}
	if err := tr.Run(16); err != nil {
		t.Fatalf("post-restore run: %v", err)
	}
	d, err := tr.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if d.Key.Len() != 2048 {
		t.Errorf("delivered %d bits, want 2048", d.Key.Len())
	}
	if d.Reroutes != 1 {
		t.Errorf("reroutes = %d, want 1 (resume re-reserves on the repaired span)", d.Reroutes)
	}
	for node, bits := range d.KeyBitsExposed {
		if bits != 0 {
			t.Errorf("%s can reconstruct %d key bits, want 0", node, bits)
		}
	}
}

func TestStallBudgetExhaustionAbortsAndRefunds(t *testing.T) {
	n, rn := stripeNet(t, 2, 1<<15, 2)
	before := map[string]int{}
	for _, l := range rn.Links() {
		before[l.A+"|"+l.B] = l.KeyAvailable()
	}
	tr, err := n.NewTransport("gwA", "gwB", 2048, 2, TransportOpts{ChunkBits: 256, StallBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(); err != nil {
		t.Fatal(err)
	}
	victim := tr.Routes()[0][1] // the relay whose uplink dies
	cutFirstHop(t, rn, tr.Routes()[0])
	// Rounds 1-2 park; round 3 exceeds the budget and aborts.
	for i := 0; i < 2; i++ {
		if _, err := tr.Step(); err != nil {
			t.Fatalf("step %d within stall budget: %v", i, err)
		}
	}
	if _, err := tr.Step(); !errors.Is(err, ErrFailed) {
		t.Fatalf("step past stall budget: %v, want ErrFailed", err)
	}
	// Undrawn pads were refunded on every surviving pool: the healthy
	// stripe's hops net out to the 3 chunks actually sent; the parked
	// stripe's still-up downlink nets out to its 1 pre-cut chunk.
	for _, l := range rn.Links() {
		if l.State() != relay.LinkUp {
			continue // the cut link's pool died with the fiber
		}
		want := 3 * 256
		if l.A == victim || l.B == victim {
			want = 256
		}
		if got := before[l.A+"|"+l.B] - l.KeyAvailable(); got != want {
			t.Errorf("link %s-%s net consumption %d after abort, want %d",
				l.A, l.B, got, want)
		}
	}
}

func TestDemandTransportSizesFromRegisteredDemand(t *testing.T) {
	n, _ := stripeNet(t, 2, 1<<16, 2)
	svc := kms.New(kms.Config{})
	defer svc.Close()

	// No registered demand: the floor applies.
	tr, err := n.NewDemandTransport("gwA", "gwB", svc, 2, TransportOpts{MinDemandBits: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(16); err != nil {
		t.Fatal(err)
	}
	d, err := tr.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if d.Key.Len() != 1024 {
		t.Fatalf("idle-demand transport delivered %d bits, want floor 1024", d.Key.Len())
	}

	// Registered demand sizes the transport (rounded up to chunks).
	svc.RegisterDemand("otp/a", kms.ClassOTP, 3000)
	svc.RegisterDemand("auth/pad", kms.ClassAuth, 500)
	tr, err = n.NewDemandTransport("gwA", "gwB", svc, 2, TransportOpts{MinDemandBits: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(32); err != nil {
		t.Fatal(err)
	}
	d, err = tr.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// 3500 bits of demand, chunk = 3500/8 floored to 437 -> 64-bit floor
	// doesn't bind; rounded up to a whole number of chunks >= 3500.
	if d.Key.Len() < 3500 {
		t.Fatalf("demand transport delivered %d bits, want >= registered 3500", d.Key.Len())
	}

	// The ceiling clamps a demand spike.
	svc.RegisterDemand("otp/a", kms.ClassOTP, 1<<30)
	tr, err = n.NewDemandTransport("gwA", "gwB", svc, 2, TransportOpts{MinDemandBits: 1024, MaxDemandBits: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(16); err != nil {
		t.Fatal(err)
	}
	d, err = tr.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if d.Key.Len() != 4096 {
		t.Fatalf("clamped transport delivered %d bits, want ceiling 4096", d.Key.Len())
	}
}
