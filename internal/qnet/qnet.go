// Package qnet unifies the paper's Section 8 network architectures
// into one QKD network layer. The real DARPA network was to be a *mix*:
// trusted relays where reach demands them, untrusted photonic switches
// where trust demands them — yet a relay mesh alone exposes the whole
// end-to-end key inside every intermediate relay, and a switch fabric
// alone cannot out-reach its insertion loss. qnet registers both — every
// `relay.Network` link and whole `optical.Mesh` light paths — as edges
// of one annotated topology graph and adds what neither island has:
//
//   - k vertex-disjoint routing (Bhandari's successive shortest paths
//     with node splitting), so an end-to-end key can be XOR-striped
//     into k shares, one per disjoint path. Every share alone is
//     uniform noise: a compromise of the relays on any k-1 paths
//     reveals nothing, and no single relay ever holds the key;
//
//   - a per-edge health monitor blending the QKD loss signal (an EWMA
//     of observed QBER, demoting an edge past the threshold where
//     eavesdropping is indistinguishable from noise) with a congestion
//     signal (pairwise-pad depletion) into the routing weight — the
//     loss/congestion blend Elastic-TCP applies to its window, applied
//     to route choice;
//
//   - disruption-tolerant transport: a striped transport pre-reserves
//     pairwise pads on every hop of every stripe before consuming any
//     (the all-or-nothing discipline that fixes the relay pad-burn
//     leak), delivers in chunks, and when a mid-transport cut or QBER
//     alarm kills a stripe, fails over to a fresh disjoint path and
//     resumes where it stopped. Delivered key drains through
//     `kms.Feed` custody, so KDS consumers observe a delay, never the
//     switch.
package qnet

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"qkd/internal/bitarray"
	"qkd/internal/keypool"
	"qkd/internal/optical"
	"qkd/internal/photonics"
	"qkd/internal/relay"
	"qkd/internal/rng"
)

// Errors.
var (
	ErrUnknownNode = errors.New("qnet: unknown node")
	ErrDisjoint    = errors.New("qnet: cannot find the requested vertex-disjoint paths")
	ErrIncomplete  = errors.New("qnet: transport has undelivered chunks")
	ErrFailed      = errors.New("qnet: transport failed")
)

// EdgeKind distinguishes the two Section 8 architectures an edge may
// come from.
type EdgeKind int

const (
	// Trusted is a point-to-point trusted-relay QKD link: pairwise key
	// exists at both endpoints, and anything relayed through an
	// endpoint is in the clear there.
	Trusted EdgeKind = iota
	// Untrusted is an all-optical light path through photonic switches:
	// the interior switches never see key material, at the price of
	// their accumulated insertion loss.
	Untrusted
)

func (k EdgeKind) String() string {
	switch k {
	case Trusted:
		return "trusted"
	case Untrusted:
		return "untrusted"
	}
	return fmt.Sprintf("EdgeKind(%d)", int(k))
}

// Config tunes a Network.
type Config struct {
	// QBERThreshold demotes an edge whose QBER estimate exceeds it
	// (default 0.11 — past ~11% error correction cannot outpace the
	// information an eavesdropper may hold). A demoted edge re-promotes
	// only when the estimate decays below half the threshold.
	QBERThreshold float64
	// EWMAWeight is the per-observation blend weight of the QBER
	// estimator (default 0.3).
	EWMAWeight float64
	// QBERWeight scales the health (loss) signal's contribution to an
	// edge's routing weight (default 4).
	QBERWeight float64
	// CongestionWeight scales the pad-depletion signal's contribution
	// (default 1).
	CongestionWeight float64
	// TrustedQBER is the synthetic per-tick QBER observation of a
	// healthy trusted link (default 0.02; jittered ±50%).
	TrustedQBER float64
	// Seed drives key generation and jitter.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.QBERThreshold <= 0 {
		c.QBERThreshold = 0.11
	}
	if c.EWMAWeight <= 0 || c.EWMAWeight > 1 {
		c.EWMAWeight = 0.3
	}
	if c.QBERWeight <= 0 {
		c.QBERWeight = 4
	}
	if c.CongestionWeight <= 0 {
		c.CongestionWeight = 1
	}
	if c.TrustedQBER <= 0 {
		c.TrustedQBER = 0.02
	}
	return c
}

// Edge is one edge of the unified topology: a trusted relay link or an
// untrusted light path, with a health monitor on top.
type Edge struct {
	A, B string
	Kind EdgeKind

	net  *Network
	link *relay.Link   // Trusted
	lp   *optical.Path // Untrusted

	pool *keypool.Reservoir // Untrusted: the light path's pairwise pool
	rate int                // Untrusted: distilled bits per Tick

	baseQBER float64

	mu      sync.Mutex
	ewma    float64
	primed  bool
	demoted bool
}

// Name returns the canonical "a|b" edge name plus kind.
func (e *Edge) Name() string {
	a, b := e.A, e.B
	if a > b {
		a, b = b, a
	}
	return a + "|" + b + "(" + e.Kind.String() + ")"
}

// Pool returns the edge's pairwise-key reservoir. Trusted edges
// re-fetch from the live link (a Restore installs a fresh pool).
func (e *Edge) Pool() *keypool.Reservoir {
	if e.Kind == Trusted {
		return e.link.Pool()
	}
	return e.pool
}

// Available returns the pairwise key on hand.
func (e *Edge) Available() int { return e.Pool().Available() }

// Up reports whether the underlying medium is passing key: a trusted
// link must be in LinkUp; a light path is always up (cutting its fiber
// is modeled on the mesh it was established over).
func (e *Edge) Up() bool {
	if e.Kind == Trusted {
		return e.link.State() == relay.LinkUp
	}
	return true
}

// QBER returns the current QBER estimate.
func (e *Edge) QBER() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ewma
}

// Demoted reports whether the health monitor has taken the edge out of
// routing.
func (e *Edge) Demoted() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.demoted
}

// Usable reports whether the edge can carry nbits of transport now.
func (e *Edge) Usable(nbits int) bool {
	return e.Up() && !e.Demoted() && e.Available() >= nbits
}

// ObserveQBER feeds one QBER measurement (a distillation batch's error
// estimate) into the edge's EWMA. Crossing the threshold demotes the
// edge; a demoted edge re-promotes when the estimate decays below half
// the threshold while the medium is up — hysteresis, so an edge
// hovering at the line does not flap.
func (e *Edge) ObserveQBER(q float64) {
	up := e.Up()
	e.mu.Lock()
	if !e.primed {
		e.primed = true
		e.ewma = q
	} else {
		e.ewma += e.net.cfg.EWMAWeight * (q - e.ewma)
	}
	demote := !e.demoted && e.ewma > e.net.cfg.QBERThreshold
	if demote {
		e.demoted = true
	} else if e.demoted && up && e.ewma < e.net.cfg.QBERThreshold/2 {
		e.demoted = false
	}
	e.mu.Unlock()
	if demote {
		e.net.noteDemotion()
	}
}

// weight is the edge's routing cost: one hop, plus the health signal
// (QBER as a fraction of the demotion threshold), plus a congestion
// signal that grows as the pad pool drops below 4x the transport size —
// the loss/congestion blend steering route choice toward clean,
// well-stocked edges.
func (e *Edge) weight(nbits int) float64 {
	w := 1.0 + e.net.cfg.QBERWeight*(e.QBER()/e.net.cfg.QBERThreshold)
	if nbits > 0 {
		if want := 4 * nbits; e.Available() < want {
			w += e.net.cfg.CongestionWeight * (1 - float64(e.Available())/float64(want))
		}
	}
	return w
}

// Network is the unified topology.
type Network struct {
	cfg Config

	mu     sync.Mutex
	nodes  map[string]bool
	edges  []*Edge
	relays []*relay.Network
	rand   *rng.SplitMix64
	stats  Stats
}

// Stats counts network activity.
type Stats struct {
	Transports       uint64 // striped transports completed
	TransportsFailed uint64 // transports that could not start or aborted
	BitsDelivered    uint64 // end-to-end key bits delivered
	Failovers        uint64 // stripes re-routed mid-transport
	Demotions        uint64 // health-monitor edge demotions
}

// NewNetwork returns an empty unified topology.
func NewNetwork(cfg Config) *Network {
	cfg = cfg.withDefaults()
	return &Network{
		cfg:   cfg,
		nodes: make(map[string]bool),
		rand:  rng.NewSplitMix64(cfg.Seed ^ 0x9e3779b97f4a7c15),
	}
}

// RegisterRelay adds every link of a trusted-relay mesh as a Trusted
// edge (nodes are created as needed) and takes over ticking it. The
// edges stay live: Cut/Eavesdrop/Restore on the relay network are
// observed by the health monitor on the next Tick.
func (n *Network) RegisterRelay(rn *relay.Network) int {
	links := rn.Links()
	n.mu.Lock()
	defer n.mu.Unlock()
	n.relays = append(n.relays, rn)
	for _, l := range links {
		n.nodes[l.A] = true
		n.nodes[l.B] = true
		n.edges = append(n.edges, &Edge{
			A: l.A, B: l.B, Kind: Trusted,
			net: n, link: l, baseQBER: n.cfg.TrustedQBER,
		})
	}
	return len(links)
}

// RegisterLightPath establishes an all-optical path between two
// endpoints of a switch fabric and adds it as a single Untrusted edge.
// The interior switches collapse into the edge — they never hold key —
// and the edge's pairwise pool replenishes each Tick at the rate the
// path's analytic click probability and QBER support: roughly
// clickProb * pulses * sift/2 * (1 - 2*h2(qber)) distilled bits,
// the standard back-of-envelope for BB84 throughput after error
// correction and privacy amplification.
func (n *Network) RegisterLightPath(mesh *optical.Mesh, src, dst string, base photonics.Params, pulsesPerTick int) (*Edge, error) {
	p, err := mesh.Establish(src, dst)
	if err != nil {
		return nil, fmt.Errorf("qnet: light path %s-%s: %w", src, dst, err)
	}
	qber := p.ExpectedQBER(base)
	frac := 0.5 * (1 - 2*h2(qber)) // sift half, distill the rest
	if frac < 0 {
		frac = 0
	}
	rate := int(p.ExpectedClickProb(base) * float64(pulsesPerTick) * frac)
	e := &Edge{
		A: src, B: dst, Kind: Untrusted,
		net: n, lp: p, pool: keypool.New(), rate: rate, baseQBER: qber,
	}
	n.mu.Lock()
	n.nodes[src] = true
	n.nodes[dst] = true
	n.edges = append(n.edges, e)
	n.mu.Unlock()
	return e, nil
}

// Edges returns a snapshot of all registered edges, sorted by name.
func (n *Network) Edges() []*Edge {
	n.mu.Lock()
	out := append([]*Edge(nil), n.edges...)
	n.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Stats returns a snapshot.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

func (n *Network) noteDemotion() {
	n.mu.Lock()
	n.stats.Demotions++
	n.mu.Unlock()
}

func (n *Network) noteFailover() {
	n.mu.Lock()
	n.stats.Failovers++
	n.mu.Unlock()
}

// Tick advances the whole network one step: every registered relay
// mesh runs its QKD processes, every light path distills its per-tick
// key, and the health monitor ingests one QBER observation per edge —
// healthy trusted links report their baseline (jittered), eavesdropped
// links report the alarm-level error rate of an intercepted channel,
// and light paths report their analytic QBER.
func (n *Network) Tick() {
	n.mu.Lock()
	relays := append([]*relay.Network(nil), n.relays...)
	edges := append([]*Edge(nil), n.edges...)
	n.mu.Unlock()
	for _, rn := range relays {
		rn.Tick()
	}
	for _, e := range edges {
		switch e.Kind {
		case Untrusted:
			if e.rate > 0 {
				e.pool.Deposit(n.randBits(e.rate))
			}
			e.ObserveQBER(e.baseQBER)
		case Trusted:
			switch e.link.State() {
			case relay.LinkUp:
				e.ObserveQBER(e.baseQBER * (0.75 + 0.5*n.randFloat()))
			case relay.LinkEavesdropped:
				// The QBER alarm: an intercept-resend attacker pushes
				// the error rate toward 25%; report it well past any
				// threshold so the monitor demotes on the next
				// estimate.
				e.ObserveQBER(0.25)
			case relay.LinkCut:
				// Outage, not errors: no QBER signal flows. Up()
				// already excludes the edge from routing.
			}
		}
	}
}

func (n *Network) randBits(bits int) *bitarray.BitArray {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rand.Bits(bits)
}

func (n *Network) randFloat() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rand.Float64()
}

// usableEdges snapshots the edges that can carry nbits, excluding any
// incident to a banned node.
func (n *Network) usableEdges(nbits int, banned map[string]bool) []*Edge {
	n.mu.Lock()
	edges := append([]*Edge(nil), n.edges...)
	n.mu.Unlock()
	out := edges[:0]
	for _, e := range edges {
		if banned[e.A] || banned[e.B] {
			continue
		}
		if e.Usable(nbits) {
			out = append(out, e)
		}
	}
	return out
}

// DisjointPaths computes k vertex-disjoint paths between src and dst
// over edges that are up, healthy, and hold at least nbits of pairwise
// key, weighted by the blended health/congestion cost.
func (n *Network) DisjointPaths(src, dst string, k, nbits int) ([]Route, error) {
	n.mu.Lock()
	known := n.nodes[src] && n.nodes[dst]
	n.mu.Unlock()
	if !known {
		return nil, fmt.Errorf("%w: %s or %s", ErrUnknownNode, src, dst)
	}
	edges := n.usableEdges(nbits, nil)
	return kDisjointPaths(edges, func(e *Edge) float64 { return e.weight(nbits) }, src, dst, k)
}

// h2 is the binary entropy function.
func h2(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}
