package qnet

import (
	"errors"
	"fmt"

	"qkd/internal/bitarray"
	"qkd/internal/keypool"
	"qkd/internal/kms"
)

// TransportOpts tunes a striped transport.
type TransportOpts struct {
	// ChunkBits is the delivery granularity (default: the whole key in
	// one chunk). The key length must be a multiple of it.
	ChunkBits int
	// FeedA / FeedB, when set, receive every delivered chunk — the two
	// mirrored endpoints' KDS custody feeds. During a failover the
	// feeds are taken down, so chunks reconstructed while a stripe
	// catches up buffer in custody and flush atomically once the
	// transport is whole again: consumers observe a delay, never the
	// switch.
	FeedA, FeedB *kms.Feed
	// StallBudget is how many consecutive rounds a stripe may sit
	// parked — cut, with no disjoint replacement path available —
	// before the transport aborts (default 8; negative aborts on the
	// first failed failover). Under repeated cuts the would-be spare is
	// often itself the cut span, and a span repair mid-transport is the
	// DTN regime the custody feeds exist for: parking waits the outage
	// out with every reservation held and the cursor frozen, instead of
	// burning the whole transport.
	StallBudget int
	// MinDemandBits / MaxDemandBits bound a demand-sized transport
	// (NewDemandTransport): the floor keeps a quiet service trickling
	// fresh key, the ceiling keeps a registered demand spike from
	// reserving more pad than the relay mesh should commit to one
	// transport. Defaults 1024 / 1 << 20.
	MinDemandBits int
	MaxDemandBits int
}

// DemandSource reports the windowed demand flow controllers have
// registered with a key delivery service; *kms.Service implements it.
type DemandSource interface {
	RegisteredDemand(c kms.Class) int
}

// NewDemandTransport begins a striped transport sized by the registered
// windowed demand at the destination's delivery service instead of a
// caller-fixed nbits: the closed-loop replacement for pumping a
// constant-size key regardless of need. The demand total (all classes)
// is clamped to [MinDemandBits, MaxDemandBits], and the chunk size
// defaults to 1/8 of the transport (64-bit floor) so delivery is
// incremental rather than all-at-the-end.
func (n *Network) NewDemandTransport(src, dst string, ds DemandSource, k int, opts TransportOpts) (*Transport, error) {
	minBits, maxBits := opts.MinDemandBits, opts.MaxDemandBits
	if minBits <= 0 {
		minBits = 1024
	}
	if maxBits <= 0 {
		maxBits = 1 << 20
	}
	nbits := ds.RegisteredDemand(-1)
	if nbits < minBits {
		nbits = minBits
	}
	if nbits > maxBits {
		nbits = maxBits
	}
	if opts.ChunkBits <= 0 {
		opts.ChunkBits = nbits / 8
		if opts.ChunkBits < 64 {
			opts.ChunkBits = 64
		}
	}
	// Round up to whole chunks: demand is a target, not an exact size.
	if rem := nbits % opts.ChunkBits; rem != 0 {
		nbits += opts.ChunkBits - rem
	}
	return n.NewTransport(src, dst, nbits, k, opts)
}

// stripe is one share's path state.
type stripe struct {
	route  Route
	resvs  []*keypool.Reservation // per hop, covering the undelivered remainder
	cursor int                    // chunks sent down this stripe
}

// interval is a half-open chunk-index range [from, to).
type interval struct{ from, to int }

// Transport is an in-flight striped key delivery. The end-to-end key is
// generated at src and split into k XOR shares — shares 1..k-1 uniform
// random, share k their XOR with the key — so every share alone, and
// every union of k-1 shares, is statistically independent of the key.
// Share i travels hop-by-hop (one-time-pad per hop) down vertex-disjoint
// path i. Before the first chunk moves, pads for the *whole* transport
// are reserved on every hop of every stripe; a transport that cannot
// start leaves every pool exactly as it found it.
type Transport struct {
	net               *Network
	src, dst          string
	k, nbits          int
	chunkBits, chunks int

	key     *bitarray.BitArray
	shares  []*bitarray.BitArray
	stripes []*stripe

	delivered int // chunks reconstructed at dst and deposited
	reroutes  int
	custody   bool
	feedA     *kms.Feed
	feedB     *kms.Feed

	// Stall bookkeeping for failovers that found no replacement path:
	// consecutive stalled rounds, bounded by the budget.
	stallBudget int
	stalls      int

	// exposure records, per site, which chunk ranges of which share it
	// held in the clear while relaying.
	exposure map[string]map[int][]interval

	failed error
}

// NewTransport begins a k-stripe transport of an nbits end-to-end key
// from src to dst. It computes k vertex-disjoint paths over healthy,
// sufficiently stocked edges and pre-reserves nbits of pairwise pad on
// every hop of every stripe; on any failure everything reserved so far
// is refunded and the error returned — no pool is drained by a
// transport that never delivers.
func (n *Network) NewTransport(src, dst string, nbits, k int, opts TransportOpts) (*Transport, error) {
	n.mu.Lock()
	known := n.nodes[src] && n.nodes[dst]
	n.mu.Unlock()
	if !known {
		return nil, fmt.Errorf("%w: %s or %s", ErrUnknownNode, src, dst)
	}
	if nbits <= 0 {
		return nil, fmt.Errorf("qnet: non-positive key size %d", nbits)
	}
	if opts.ChunkBits <= 0 {
		opts.ChunkBits = nbits
	}
	if nbits%opts.ChunkBits != 0 {
		return nil, fmt.Errorf("qnet: key size %d is not a multiple of chunk size %d", nbits, opts.ChunkBits)
	}
	if opts.StallBudget == 0 {
		opts.StallBudget = 8
	} else if opts.StallBudget < 0 {
		opts.StallBudget = 0
	}
	t := &Transport{
		net: n, src: src, dst: dst, k: k, nbits: nbits,
		chunkBits: opts.ChunkBits, chunks: nbits / opts.ChunkBits,
		feedA: opts.FeedA, feedB: opts.FeedB,
		stallBudget: opts.StallBudget,
		exposure:    make(map[string]map[int][]interval),
	}
	t.key = n.randBits(nbits)
	if src == dst {
		// Self-transport: the key never leaves src; deliver it whole.
		t.delivered = t.chunks
		t.depositChunk(t.key.Clone())
		n.mu.Lock()
		n.stats.Transports++
		n.mu.Unlock()
		return t, nil
	}
	routes, err := n.DisjointPaths(src, dst, k, nbits)
	if err != nil {
		n.mu.Lock()
		n.stats.TransportsFailed++
		n.mu.Unlock()
		return nil, err
	}
	// XOR share split: k-1 uniform shares plus the correcting share.
	t.shares = make([]*bitarray.BitArray, k)
	last := t.key.Clone()
	for i := 0; i < k-1; i++ {
		t.shares[i] = n.randBits(nbits)
		last.Xor(t.shares[i])
	}
	t.shares[k-1] = last

	for _, r := range routes {
		resvs, err := reserveRoute(r, nbits)
		if err != nil {
			for _, s := range t.stripes {
				releaseAll(s.resvs)
			}
			n.mu.Lock()
			n.stats.TransportsFailed++
			n.mu.Unlock()
			return nil, err
		}
		t.stripes = append(t.stripes, &stripe{route: r, resvs: resvs})
	}
	return t, nil
}

// reserveRoute sets nbits aside on every hop, all-or-nothing.
func reserveRoute(r Route, nbits int) ([]*keypool.Reservation, error) {
	resvs := make([]*keypool.Reservation, 0, len(r.hops))
	for _, e := range r.hops {
		rv, err := e.Pool().Reserve(nbits)
		if err != nil {
			releaseAll(resvs)
			return nil, fmt.Errorf("qnet: reserving %d bits on %s: %w", nbits, e.Name(), err)
		}
		resvs = append(resvs, rv)
	}
	return resvs, nil
}

func releaseAll(resvs []*keypool.Reservation) {
	for _, rv := range resvs {
		rv.Release()
	}
}

// Routes returns the current node sequence of every stripe.
func (t *Transport) Routes() [][]string {
	out := make([][]string, len(t.stripes))
	for i, s := range t.stripes {
		out[i] = append([]string(nil), s.route.Nodes...)
	}
	return out
}

// DeliveredBits returns the end-to-end key bits reconstructed at dst.
func (t *Transport) DeliveredBits() int { return t.delivered * t.chunkBits }

// Done reports whether the whole key has been delivered.
func (t *Transport) Done() bool { return t.delivered == t.chunks }

// Reroutes returns the number of stripe failovers so far.
func (t *Transport) Reroutes() int { return t.reroutes }

// Step advances the transport one round: every dead stripe fails over
// to a fresh disjoint path, every live stripe moves one chunk of its
// share, and every chunk whose k shares have all arrived is
// reconstructed at dst and deposited into the custody feeds. It returns
// the number of chunks delivered this round. A stripe that dies with no
// replacement path available parks — reservations held, cursor frozen —
// and retries next round, so a span repaired mid-outage lets the
// transport complete; only a stall outlasting the budget aborts and
// refunds every undrawn pad.
func (t *Transport) Step() (int, error) {
	if t.failed != nil {
		return 0, t.failed
	}
	if t.Done() {
		return 0, nil
	}
	stalled := false
	// Failover pass: the health monitor's view decides before any pad
	// is drawn this round.
	for i, s := range t.stripes {
		if s.cursor >= t.chunks {
			continue
		}
		if !stripeHealthy(s) {
			if err := t.failover(i); err != nil {
				if aerr := t.parkStripe(err); aerr != nil {
					return 0, aerr
				}
				stalled = true
			}
		}
	}
	// Advance pass. Stripes still unhealthy after the failover pass are
	// parked this round and skipped.
	for i, s := range t.stripes {
		if s.cursor >= t.chunks || !stripeHealthy(s) {
			continue
		}
		if err := t.sendChunk(i, s); err != nil {
			// The pad vanished between the health check and the draw
			// (teardown race): fail the stripe over and resend.
			if ferr := t.failover(i); ferr != nil {
				if aerr := t.parkStripe(ferr); aerr != nil {
					return 0, aerr
				}
				stalled = true
				continue
			}
			if err := t.sendChunk(i, t.stripes[i]); err != nil {
				return 0, t.abort(err)
			}
		}
	}
	if !stalled {
		t.stalls = 0
	}
	// Reconstruction pass: a chunk is whole once every stripe's cursor
	// has passed it.
	minCur, maxCur := t.chunks, 0
	for _, s := range t.stripes {
		if s.cursor < minCur {
			minCur = s.cursor
		}
		if s.cursor > maxCur {
			maxCur = s.cursor
		}
	}
	before := t.delivered
	for t.delivered < minCur {
		c := t.delivered
		from, to := c*t.chunkBits, (c+1)*t.chunkBits
		rec := t.shares[0].Slice(from, to)
		for i := 1; i < t.k; i++ {
			rec.Xor(t.shares[i].Slice(from, to))
		}
		if !rec.Equal(t.key.Slice(from, to)) {
			return t.delivered - before, t.abort(fmt.Errorf("qnet: chunk %d reconstruction mismatch", c))
		}
		t.depositChunk(rec)
		t.delivered++
	}
	if t.custody && minCur == maxCur {
		// The re-routed stripe caught up: the transport is whole again,
		// custody flushes everything buffered during the switch.
		t.setFeeds(true)
		t.custody = false
	}
	if t.Done() {
		t.net.mu.Lock()
		t.net.stats.Transports++
		t.net.mu.Unlock()
	}
	return t.delivered - before, nil
}

// Run steps the transport to completion within maxSteps. It does not
// tick the network — pads for the whole transport were reserved
// upfront, so no replenishment is needed unless a failover must
// re-reserve on a depleted spare path; the caller owns time and may
// interleave Tick with Step for that. A transport abandoned after
// ErrIncomplete should be Abort()ed so its reservations refund.
func (t *Transport) Run(maxSteps int) error {
	for i := 0; i < maxSteps && !t.Done(); i++ {
		if _, err := t.Step(); err != nil {
			return err
		}
	}
	if !t.Done() {
		return ErrIncomplete
	}
	return nil
}

// Abort cancels an unfinished transport: every stripe's undrawn pad
// reservation is refunded to its pool and the custody feeds come back
// up so already-delivered chunks flush to consumers. Aborting a
// completed or already-failed transport is a no-op.
func (t *Transport) Abort() {
	if t.failed != nil || t.Done() {
		return
	}
	t.abort(errors.New("aborted by caller"))
}

// stripeHealthy reports whether every hop is up and undemoted.
func stripeHealthy(s *stripe) bool {
	for _, e := range s.route.hops {
		if !e.Up() || e.Demoted() {
			return false
		}
	}
	return true
}

// sendChunk moves stripe i's next share chunk hop-by-hop: encrypted
// with the hop pad on the wire, decrypted at the far node — in the
// clear inside every interior site, which is recorded as exposure.
func (t *Transport) sendChunk(i int, s *stripe) error {
	c := s.cursor
	from, to := c*t.chunkBits, (c+1)*t.chunkBits
	share := t.shares[i].Slice(from, to)
	current := share.Clone()
	for h, e := range s.route.hops {
		pad, err := s.resvs[h].Consume(t.chunkBits)
		if err != nil {
			return fmt.Errorf("qnet: pad on %s vanished: %w", e.Name(), err)
		}
		onWire := current.Clone()
		onWire.Xor(pad) // encrypt entering the hop
		current = onWire
		current.Xor(pad) // decrypt at the far node
		if h+1 < len(s.route.hops) {
			t.expose(s.route.Nodes[h+1], i, c)
		}
	}
	if !current.Equal(share) {
		return fmt.Errorf("qnet: stripe %d corrupted in transit", i)
	}
	s.cursor++
	return nil
}

// expose records that node held chunk c of share i in the clear.
func (t *Transport) expose(node string, i, c int) {
	per := t.exposure[node]
	if per == nil {
		per = make(map[int][]interval)
		t.exposure[node] = per
	}
	ivs := per[i]
	if n := len(ivs); n > 0 && ivs[n-1].to == c {
		ivs[n-1].to = c + 1
	} else {
		ivs = append(ivs, interval{c, c + 1})
	}
	per[i] = ivs
}

// parkStripe accounts one round of a stripe that could not fail over —
// no disjoint spare, or the spare is pad-starved. Within the budget it
// returns nil and the transport stalls in place; past it, the transport
// aborts with the underlying cause.
func (t *Transport) parkStripe(cause error) error {
	t.stalls++
	if t.stalls > t.stallBudget {
		return t.abort(fmt.Errorf("stripe stalled %d rounds: %v", t.stalls, cause))
	}
	return nil
}

// failover replaces a dead stripe: a fresh path vertex-disjoint from
// every *other* live stripe is computed over the surviving healthy
// edges, the remainder of the share is re-reserved on it, the dead
// stripe's undrawn pads are refunded, and the stripe resumes at the
// chunk where it died. On failure the dead stripe keeps its
// reservations — a parked stripe that outlives the outage resumes on
// its original spans. The custody feeds go down for the duration of a
// successful switch — chunks the transport completes while the stripe
// catches up buffer at the feed and flush intact when the transport is
// whole.
func (t *Transport) failover(i int) error {
	s := t.stripes[i]
	banned := make(map[string]bool)
	for j, o := range t.stripes {
		if j == i {
			continue
		}
		for _, v := range o.route.Nodes[1 : len(o.route.Nodes)-1] {
			banned[v] = true
		}
	}
	// A site that ever held a *different* share — even on a route long
	// since failed over — must never carry this one: two shares of the
	// same chunk at one site is exactly what reconstruction needs, and
	// the other stripes' current interiors do not cover history.
	for node, per := range t.exposure {
		for j := range per {
			if j != i {
				banned[node] = true
			}
		}
	}
	remBits := (t.chunks - s.cursor) * t.chunkBits
	routes, err := kDisjointPaths(t.net.usableEdges(remBits, banned),
		func(e *Edge) float64 { return e.weight(remBits) }, t.src, t.dst, 1)
	if err != nil {
		return err
	}
	resvs, err := reserveRoute(routes[0], remBits)
	if err != nil {
		return err
	}
	// Only now that the replacement is fully reserved does the dead
	// stripe let go of its spans.
	releaseAll(s.resvs)
	t.net.noteFailover()
	t.reroutes++
	if !t.custody {
		t.setFeeds(false)
		t.custody = true
	}
	t.stripes[i] = &stripe{route: routes[0], resvs: resvs, cursor: s.cursor}
	return nil
}

// abort fails the transport: every stripe's undrawn pads are refunded
// and anything already delivered stays delivered (the feeds flush so
// consumers keep the custody bits).
func (t *Transport) abort(err error) error {
	for _, s := range t.stripes {
		releaseAll(s.resvs)
	}
	if t.custody {
		t.setFeeds(true)
		t.custody = false
	}
	t.failed = fmt.Errorf("%w: %v", ErrFailed, err)
	t.net.mu.Lock()
	t.net.stats.TransportsFailed++
	t.net.mu.Unlock()
	return t.failed
}

func (t *Transport) setFeeds(up bool) {
	if t.feedA != nil {
		t.feedA.SetUp(up)
	}
	if t.feedB != nil {
		t.feedB.SetUp(up)
	}
}

func (t *Transport) depositChunk(chunk *bitarray.BitArray) {
	t.net.mu.Lock()
	t.net.stats.BitsDelivered += uint64(chunk.Len())
	t.net.mu.Unlock()
	if t.feedA != nil {
		t.feedA.Deposit(chunk.Clone())
	}
	if t.feedB != nil {
		t.feedB.Deposit(chunk)
	}
}

// Delivery is the outcome of a completed striped transport.
type Delivery struct {
	// Key is the delivered end-to-end key, bit-exact at both endpoints.
	Key *bitarray.BitArray
	// Stripes is the share count k.
	Stripes int
	// Routes is each stripe's final path.
	Routes [][]string
	// Reroutes counts mid-transport failovers.
	Reroutes int
	// ShareBitsSeen is, per intermediate site, the share bits it held
	// in the clear. Each share alone is uniform noise: these bits carry
	// zero information about Key unless the same site saw all k shares
	// of the same range.
	ShareBitsSeen map[string]int
	// KeyBitsExposed is, per intermediate site, the end-to-end key bits
	// it could reconstruct — nonzero only where it held every one of
	// the k shares over the same chunk range. With k >= 2 disjoint
	// stripes this is 0 for every site; with k = 1 the interior relays
	// hold the whole key, the trusted-relay trust cost.
	KeyBitsExposed map[string]int
}

// Finish completes the transport and returns its Delivery and
// trust-exposure accounting.
func (t *Transport) Finish() (*Delivery, error) {
	if t.failed != nil {
		return nil, t.failed
	}
	if !t.Done() {
		return nil, ErrIncomplete
	}
	d := &Delivery{
		Key:            t.key,
		Stripes:        t.k,
		Routes:         t.Routes(),
		Reroutes:       t.reroutes,
		ShareBitsSeen:  make(map[string]int),
		KeyBitsExposed: make(map[string]int),
	}
	for node, per := range t.exposure {
		total := 0
		for _, ivs := range per {
			for _, iv := range ivs {
				total += (iv.to - iv.from) * t.chunkBits
			}
		}
		d.ShareBitsSeen[node] = total
		d.KeyBitsExposed[node] = t.reconstructible(per) * t.chunkBits
	}
	return d, nil
}

// reconstructible returns the chunks of the key a site holding these
// share intervals could reconstruct: the intersection over all k
// shares of the ranges it saw.
func (t *Transport) reconstructible(per map[int][]interval) int {
	if len(per) < t.k {
		return 0
	}
	acc := append([]interval(nil), per[0]...)
	for i := 1; i < t.k && len(acc) > 0; i++ {
		acc = intersect(acc, per[i])
	}
	total := 0
	for _, iv := range acc {
		total += iv.to - iv.from
	}
	return total
}

// intersect computes the intersection of two sorted interval lists.
func intersect(a, b []interval) []interval {
	var out []interval
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo, hi := max(a[i].from, b[j].from), min(a[i].to, b[j].to)
		if lo < hi {
			out = append(out, interval{lo, hi})
		}
		if a[i].to < b[j].to {
			i++
		} else {
			j++
		}
	}
	return out
}
