package qnet

import (
	"errors"
	"testing"
)

// bareEdges builds unregistered edges for pure algorithm tests.
func bareEdges(pairs [][2]string) []*Edge {
	out := make([]*Edge, len(pairs))
	for i, p := range pairs {
		out[i] = &Edge{A: p[0], B: p[1]}
	}
	return out
}

func unit(*Edge) float64 { return 1 }

// interiors collects each route's interior nodes and fails on overlap.
func assertVertexDisjoint(t *testing.T, routes []Route) {
	t.Helper()
	seen := map[string]int{}
	for i, r := range routes {
		for _, v := range r.Nodes[1 : len(r.Nodes)-1] {
			if j, dup := seen[v]; dup {
				t.Errorf("routes %d and %d share interior node %s", j, i, v)
			}
			seen[v] = i
		}
	}
}

func TestDisjointParallelPaths(t *testing.T) {
	// gwA -r{0,1,2}- gwB: three clean 2-hop paths.
	edges := bareEdges([][2]string{
		{"gwA", "r0"}, {"r0", "gwB"},
		{"gwA", "r1"}, {"r1", "gwB"},
		{"gwA", "r2"}, {"r2", "gwB"},
	})
	routes, err := kDisjointPaths(edges, unit, "gwA", "gwB", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 3 {
		t.Fatalf("got %d routes", len(routes))
	}
	for _, r := range routes {
		if len(r.Nodes) != 3 || r.Nodes[0] != "gwA" || r.Nodes[2] != "gwB" {
			t.Errorf("route %v", r.Nodes)
		}
	}
	assertVertexDisjoint(t, routes)
}

func TestDisjointTrapGraph(t *testing.T) {
	// The classic Bhandari trap: the single shortest path S-1-2-T uses
	// both interior nodes, so a greedy second shortest has nowhere to
	// go. The optimal disjoint pair is S-1-T and S-2-T, which only the
	// reversal step finds.
	edges := bareEdges([][2]string{
		{"S", "1"}, {"1", "2"}, {"2", "T"}, {"S", "2"}, {"1", "T"},
	})
	w := map[string]float64{
		"S|1": 1, "1|2": 1, "2|T": 1, "S|2": 3, "1|T": 3,
	}
	weight := func(e *Edge) float64 {
		a, b := e.A, e.B
		if a > b {
			a, b = b, a
		}
		return w[a+"|"+b]
	}
	routes, err := kDisjointPaths(edges, weight, "S", "T", 2)
	if err != nil {
		t.Fatal(err)
	}
	assertVertexDisjoint(t, routes)
	for _, r := range routes {
		if len(r.Nodes) != 3 {
			t.Errorf("trap not untangled: route %v", r.Nodes)
		}
	}
}

func TestDisjointSharedRelayRejected(t *testing.T) {
	// Both 2-hop paths run through the same relay: no vertex-disjoint
	// pair exists even though two edge-disjoint paths do.
	edges := bareEdges([][2]string{
		{"S", "m"}, {"m", "T"},
		{"S", "m2"}, {"m2", "m"}, // second approach still funnels via m? no: S-m2-m-T
	})
	if _, err := kDisjointPaths(edges, unit, "S", "T", 2); !errors.Is(err, ErrDisjoint) {
		t.Fatalf("err = %v, want ErrDisjoint", err)
	}
}

func TestDisjointParallelEdges(t *testing.T) {
	// Two parallel direct edges (a trusted link and a light path, say)
	// are distinct and may carry one stripe each.
	edges := []*Edge{
		{A: "S", B: "T", Kind: Trusted},
		{A: "S", B: "T", Kind: Untrusted},
	}
	routes, err := kDisjointPaths(edges, unit, "S", "T", 2)
	if err != nil {
		t.Fatal(err)
	}
	if routes[0].hops[0] == routes[1].hops[0] {
		t.Error("both routes took the same parallel edge")
	}
}

func TestDisjointCountExceedsCapacity(t *testing.T) {
	edges := bareEdges([][2]string{
		{"S", "a"}, {"a", "T"}, {"S", "b"}, {"b", "T"},
	})
	if _, err := kDisjointPaths(edges, unit, "S", "T", 3); !errors.Is(err, ErrDisjoint) {
		t.Fatalf("err = %v, want ErrDisjoint", err)
	}
}
