package photonics

import (
	"math"
	"testing"

	"qkd/internal/qframe"
	"qkd/internal/rng"
)

// idealParams returns a lossless, noiseless link for deterministic
// correctness checks: every pulse has at least one photon (mu large),
// perfect detectors, no dark counts, perfect visibility.
func idealParams() Params {
	p := DefaultParams()
	p.MeanPhotons = 20 // effectively always >= 1 photon
	p.FiberKm = 0
	p.SystemLossDB = 0
	p.DetectorEff = 1
	p.DarkCountProb = 0
	p.Visibility = 1
	p.DoubleClicks = DiscardDoubleClicks
	return p
}

func TestValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	cases := []func(*Params){
		func(p *Params) { p.PulseRateHz = 0 },
		func(p *Params) { p.MeanPhotons = -1 },
		func(p *Params) { p.FiberKm = -1 },
		func(p *Params) { p.DetectorEff = 1.5 },
		func(p *Params) { p.DarkCountProb = -0.1 },
		func(p *Params) { p.Visibility = 2 },
	}
	for i, mutate := range cases {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestNewLinkPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p := DefaultParams()
	p.DetectorEff = -1
	NewLink(p, 1)
}

func TestChannelTransmission(t *testing.T) {
	p := DefaultParams()
	p.FiberKm = 10
	p.AttenDBPerKm = 0.2
	p.SystemLossDB = 0
	// 2 dB -> 10^-0.2 ~ 0.631
	if got := p.ChannelTransmission(); math.Abs(got-0.631) > 0.001 {
		t.Errorf("ChannelTransmission = %v, want ~0.631", got)
	}
}

func TestMultiPhotonProb(t *testing.T) {
	p := DefaultParams()
	p.MeanPhotons = 0.1
	// P[k>=2] = 1 - e^-0.1 (1 + 0.1) ~ 0.00467
	if got := p.MultiPhotonProb(); math.Abs(got-0.00467) > 0.0002 {
		t.Errorf("MultiPhotonProb = %v, want ~0.00467", got)
	}
}

func TestIdealLinkNoErrors(t *testing.T) {
	l := NewLink(idealParams(), 42)
	tx, rx := l.TransmitFrame(0, 2000)
	sifted, errors := MeasuredQBER(tx, rx)
	if errors != 0 {
		t.Errorf("ideal link produced %d errors in %d sifted bits", errors, sifted)
	}
	if sifted < 500 {
		t.Errorf("ideal link produced too few sifted bits: %d", sifted)
	}
}

func TestMatchedBasisValuesAgree(t *testing.T) {
	// On an ideal link every matched-basis single click must carry
	// Alice's value.
	l := NewLink(idealParams(), 7)
	tx, rx := l.TransmitFrame(0, 500)
	for _, d := range rx.Detections {
		v, ok := d.Value()
		if !ok {
			continue
		}
		a := tx.Pulses[d.Slot]
		if a.Basis == d.Basis && a.Value != v {
			t.Fatalf("slot %d: matched basis but value %d != %d", d.Slot, v, a.Value)
		}
	}
}

func TestMismatchedBasisRandom(t *testing.T) {
	// With mismatched bases Bob's value should agree with Alice's about
	// half the time. Use a low mean photon number so pulses are single
	// photons: at high mu a mismatched basis splits photons across both
	// detectors and the resulting double clicks are discarded.
	p := idealParams()
	p.MeanPhotons = 0.2
	l := NewLink(p, 9)
	agree, total := 0, 0
	for f := 0; f < 20; f++ {
		tx, rx := l.TransmitFrame(uint64(f), 1000)
		for _, d := range rx.Detections {
			v, ok := d.Value()
			if !ok {
				continue
			}
			a := tx.Pulses[d.Slot]
			if a.Basis != d.Basis {
				total++
				if a.Value == v {
					agree++
				}
			}
		}
	}
	frac := float64(agree) / float64(total)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("mismatched-basis agreement = %v (n=%d), want ~0.5", frac, total)
	}
}

func TestDefaultOperatingPointQBER(t *testing.T) {
	// The paper reports 6-8 % QBER at its operating point. Our default
	// parameters are tuned to land in that band.
	l := NewLink(DefaultParams(), 1)
	sifted, errors := 0, 0
	for f := 0; f < 100; f++ {
		tx, rx := l.TransmitFrame(uint64(f), 10000)
		s, e := MeasuredQBER(tx, rx)
		sifted += s
		errors += e
	}
	if sifted < 1000 {
		t.Fatalf("too few sifted bits to measure QBER: %d", sifted)
	}
	qber := float64(errors) / float64(sifted)
	if qber < 0.04 || qber > 0.10 {
		t.Errorf("QBER = %.3f, want in [0.04, 0.10] (paper: 6-8%%)", qber)
	}
	// And the analytic prediction should be close to the Monte Carlo.
	pred := DefaultParams().ExpectedQBER()
	if math.Abs(qber-pred) > 0.02 {
		t.Errorf("measured QBER %.3f far from predicted %.3f", qber, pred)
	}
}

func TestSiftedFractionMatchesPrediction(t *testing.T) {
	p := DefaultParams()
	l := NewLink(p, 3)
	sifted := 0
	pulses := 0
	for f := 0; f < 50; f++ {
		tx, rx := l.TransmitFrame(uint64(f), 10000)
		s, _ := MeasuredQBER(tx, rx)
		sifted += s
		pulses += len(tx.Pulses)
	}
	got := float64(sifted) / float64(pulses)
	want := p.ExpectedSiftedFraction()
	if math.Abs(got-want) > 0.3*want {
		t.Errorf("sifted fraction %v, predicted %v", got, want)
	}
}

func TestCutLinkDeliversNothing(t *testing.T) {
	p := DefaultParams()
	p.DarkCountProb = 0 // so any click must be signal
	l := NewLink(p, 5)
	l.Cut()
	if !l.IsCut() {
		t.Fatal("IsCut false after Cut")
	}
	_, rx := l.TransmitFrame(0, 5000)
	if len(rx.Detections) != 0 {
		t.Errorf("cut link delivered %d detections", len(rx.Detections))
	}
	l.Restore()
	_, rx = l.TransmitFrame(1, 5000)
	if len(rx.Detections) == 0 {
		t.Error("restored link delivered nothing")
	}
}

func TestDarkCountsOnly(t *testing.T) {
	// Zero photons: every click is a dark count, QBER ~ 50 %.
	p := DefaultParams()
	p.MeanPhotons = 0
	p.DarkCountProb = 0.01
	l := NewLink(p, 11)
	sifted, errors := 0, 0
	for f := 0; f < 100; f++ {
		tx, rx := l.TransmitFrame(uint64(f), 2000)
		s, e := MeasuredQBER(tx, rx)
		sifted += s
		errors += e
	}
	if sifted == 0 {
		t.Fatal("no dark-count clicks at all")
	}
	qber := float64(errors) / float64(sifted)
	if qber < 0.4 || qber > 0.6 {
		t.Errorf("dark-only QBER = %v, want ~0.5", qber)
	}
}

func TestDoubleClickPolicies(t *testing.T) {
	// With huge mu, no loss and mismatched-basis randomization, double
	// clicks are common. Discard policy must surface them as
	// DoubleClick; randomize policy must never emit DoubleClick.
	p := idealParams()
	p.MeanPhotons = 20
	l := NewLink(p, 13)
	_, rx := l.TransmitFrame(0, 2000)
	sawDouble := false
	for _, d := range rx.Detections {
		if d.Result == qframe.DoubleClick {
			sawDouble = true
		}
	}
	if !sawDouble {
		t.Error("discard policy: expected DoubleClick records at mu=20")
	}

	p.DoubleClicks = RandomizeDoubleClicks
	l = NewLink(p, 13)
	_, rx = l.TransmitFrame(0, 2000)
	for _, d := range rx.Detections {
		if d.Result == qframe.DoubleClick {
			t.Fatal("randomize policy emitted a DoubleClick")
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	l := NewLink(DefaultParams(), 17)
	l.TransmitFrame(0, 10000)
	st := l.Stats()
	if st.Pulses != 10000 {
		t.Errorf("Pulses = %d", st.Pulses)
	}
	if st.PhotonsSent == 0 {
		t.Error("no photons sent")
	}
	if st.MultiPhoton == 0 {
		t.Error("expected some multi-photon pulses at mu=0.1 over 10k pulses")
	}
	if st.Arrived == 0 || st.Arrived > st.PhotonsSent {
		t.Errorf("Arrived = %d of %d", st.Arrived, st.PhotonsSent)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a := NewLink(DefaultParams(), 99)
	b := NewLink(DefaultParams(), 99)
	txA, rxA := a.TransmitFrame(0, 3000)
	txB, rxB := b.TransmitFrame(0, 3000)
	if len(txA.Pulses) != len(txB.Pulses) || len(rxA.Detections) != len(rxB.Detections) {
		t.Fatal("same seed, different outcomes")
	}
	for i := range rxA.Detections {
		if rxA.Detections[i] != rxB.Detections[i] {
			t.Fatal("same seed, different detections")
		}
	}
}

func TestDeadTimeReducesRate(t *testing.T) {
	p := DefaultParams()
	p.DarkCountProb = 0.01
	base := NewLink(p, 23)
	_, rx1 := base.TransmitFrame(0, 20000)

	p.DeadGates = 20
	deadened := NewLink(p, 23)
	_, rx2 := deadened.TransmitFrame(0, 20000)

	if len(rx2.Detections) >= len(rx1.Detections) {
		t.Errorf("dead time did not reduce clicks: %d vs %d",
			len(rx2.Detections), len(rx1.Detections))
	}
}

// A recording tap used to verify the Tap hook fires per pulse.
type countingTap struct{ pulses, photons int }

func (c *countingTap) Name() string { return "counter" }
func (c *countingTap) Intercept(p *Pulse, _ *rng.SplitMix64) {
	c.pulses++
	c.photons += p.Photons
}

func TestTapSeesEveryPulse(t *testing.T) {
	l := NewLink(DefaultParams(), 29)
	tap := &countingTap{}
	l.SetTap(tap)
	l.TransmitFrame(0, 5000)
	if tap.pulses != 5000 {
		t.Errorf("tap saw %d pulses, want 5000", tap.pulses)
	}
	l.SetTap(nil)
	l.TransmitFrame(1, 1000)
	if tap.pulses != 5000 {
		t.Error("tap still installed after SetTap(nil)")
	}
}

// A photon-stealing tap: removing all photons must kill signal clicks.
type blackHoleTap struct{}

func (blackHoleTap) Name() string                          { return "blackhole" }
func (blackHoleTap) Intercept(p *Pulse, _ *rng.SplitMix64) { p.Photons = 0 }

func TestTapCanSuppressSignal(t *testing.T) {
	p := DefaultParams()
	p.DarkCountProb = 0
	l := NewLink(p, 31)
	l.SetTap(blackHoleTap{})
	_, rx := l.TransmitFrame(0, 20000)
	if len(rx.Detections) != 0 {
		t.Errorf("black hole tap let %d detections through", len(rx.Detections))
	}
}

func BenchmarkTransmitFrame10k(b *testing.B) {
	l := NewLink(DefaultParams(), 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.TransmitFrame(uint64(i), 10000)
	}
}
