package photonics

import (
	"math"
	"testing"

	"qkd/internal/rng"
)

// idealParams returns a lossless, noiseless link for deterministic
// correctness checks: every pulse has at least one photon (mu large),
// perfect detectors, no dark counts, perfect visibility.
func idealParams() Params {
	p := DefaultParams()
	p.MeanPhotons = 20 // effectively always >= 1 photon
	p.FiberKm = 0
	p.SystemLossDB = 0
	p.DetectorEff = 1
	p.DarkCountProb = 0
	p.Visibility = 1
	p.DoubleClicks = DiscardDoubleClicks
	return p
}

func TestValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	cases := []func(*Params){
		func(p *Params) { p.PulseRateHz = 0 },
		func(p *Params) { p.MeanPhotons = -1 },
		func(p *Params) { p.FiberKm = -1 },
		func(p *Params) { p.DetectorEff = 1.5 },
		func(p *Params) { p.DarkCountProb = -0.1 },
		func(p *Params) { p.Visibility = 2 },
	}
	for i, mutate := range cases {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestNewLinkPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p := DefaultParams()
	p.DetectorEff = -1
	NewLink(p, 1)
}

func TestChannelTransmission(t *testing.T) {
	p := DefaultParams()
	p.FiberKm = 10
	p.AttenDBPerKm = 0.2
	p.SystemLossDB = 0
	// 2 dB -> 10^-0.2 ~ 0.631
	if got := p.ChannelTransmission(); math.Abs(got-0.631) > 0.001 {
		t.Errorf("ChannelTransmission = %v, want ~0.631", got)
	}
}

func TestMultiPhotonProb(t *testing.T) {
	p := DefaultParams()
	p.MeanPhotons = 0.1
	// P[k>=2] = 1 - e^-0.1 (1 + 0.1) ~ 0.00467
	if got := p.MultiPhotonProb(); math.Abs(got-0.00467) > 0.0002 {
		t.Errorf("MultiPhotonProb = %v, want ~0.00467", got)
	}
}

func TestIdealLinkNoErrors(t *testing.T) {
	l := NewLink(idealParams(), 42)
	tx, rx := l.TransmitFrame(0, 2000)
	sifted, errors := MeasuredQBER(tx, rx)
	if errors != 0 {
		t.Errorf("ideal link produced %d errors in %d sifted bits", errors, sifted)
	}
	if sifted < 500 {
		t.Errorf("ideal link produced too few sifted bits: %d", sifted)
	}
}

func TestMatchedBasisValuesAgree(t *testing.T) {
	// On an ideal link every matched-basis single click must carry
	// Alice's value — on both engines.
	for _, eng := range []TransmitEngine{Exact(), Batched()} {
		l := NewLink(idealParams(), 7)
		l.SetEngine(eng)
		tx, rx := l.TransmitFrame(0, 500)
		for i := 0; i < rx.Count(); i++ {
			d := rx.At(i)
			v, ok := d.Value()
			if !ok {
				continue
			}
			a := tx.Symbol(int(d.Slot))
			if a.Basis == d.Basis && a.Value != v {
				t.Fatalf("%s: slot %d: matched basis but value %d != %d",
					eng.Name(), d.Slot, v, a.Value)
			}
		}
	}
}

func TestMismatchedBasisRandom(t *testing.T) {
	// With mismatched bases Bob's value should agree with Alice's about
	// half the time. Use a low mean photon number so pulses are single
	// photons: at high mu a mismatched basis splits photons across both
	// detectors and the resulting double clicks are discarded.
	p := idealParams()
	p.MeanPhotons = 0.2
	l := NewLink(p, 9)
	agree, total := 0, 0
	for f := 0; f < 20; f++ {
		tx, rx := l.TransmitFrame(uint64(f), 1000)
		for i := 0; i < rx.Count(); i++ {
			d := rx.At(i)
			v, ok := d.Value()
			if !ok {
				continue
			}
			a := tx.Symbol(int(d.Slot))
			if a.Basis != d.Basis {
				total++
				if a.Value == v {
					agree++
				}
			}
		}
	}
	frac := float64(agree) / float64(total)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("mismatched-basis agreement = %v (n=%d), want ~0.5", frac, total)
	}
}

func TestDefaultOperatingPointQBER(t *testing.T) {
	// The paper reports 6-8 % QBER at its operating point. Our default
	// parameters are tuned to land in that band.
	l := NewLink(DefaultParams(), 1)
	sifted, errors := 0, 0
	for f := 0; f < 100; f++ {
		tx, rx := l.TransmitFrame(uint64(f), 10000)
		s, e := MeasuredQBER(tx, rx)
		sifted += s
		errors += e
	}
	if sifted < 1000 {
		t.Fatalf("too few sifted bits to measure QBER: %d", sifted)
	}
	qber := float64(errors) / float64(sifted)
	if qber < 0.04 || qber > 0.10 {
		t.Errorf("QBER = %.3f, want in [0.04, 0.10] (paper: 6-8%%)", qber)
	}
	// And the analytic prediction should be close to the Monte Carlo.
	pred := DefaultParams().ExpectedQBER()
	if math.Abs(qber-pred) > 0.02 {
		t.Errorf("measured QBER %.3f far from predicted %.3f", qber, pred)
	}
}

func TestSiftedFractionMatchesPrediction(t *testing.T) {
	p := DefaultParams()
	l := NewLink(p, 3)
	sifted := 0
	pulses := 0
	for f := 0; f < 50; f++ {
		tx, rx := l.TransmitFrame(uint64(f), 10000)
		s, _ := MeasuredQBER(tx, rx)
		sifted += s
		pulses += tx.Len()
	}
	got := float64(sifted) / float64(pulses)
	want := p.ExpectedSiftedFraction()
	if math.Abs(got-want) > 0.3*want {
		t.Errorf("sifted fraction %v, predicted %v", got, want)
	}
}

func TestCutLinkDeliversNothing(t *testing.T) {
	p := DefaultParams()
	p.DarkCountProb = 0 // so any click must be signal
	l := NewLink(p, 5)
	l.Cut()
	if !l.IsCut() {
		t.Fatal("IsCut false after Cut")
	}
	_, rx := l.TransmitFrame(0, 5000)
	if rx.Count() != 0 {
		t.Errorf("cut link delivered %d detections", rx.Count())
	}
	l.Restore()
	_, rx = l.TransmitFrame(1, 5000)
	if rx.Count() == 0 {
		t.Error("restored link delivered nothing")
	}
}

func TestDarkCountsOnly(t *testing.T) {
	// Zero photons: every click is a dark count, QBER ~ 50 %.
	p := DefaultParams()
	p.MeanPhotons = 0
	p.DarkCountProb = 0.01
	l := NewLink(p, 11)
	sifted, errors := 0, 0
	for f := 0; f < 100; f++ {
		tx, rx := l.TransmitFrame(uint64(f), 2000)
		s, e := MeasuredQBER(tx, rx)
		sifted += s
		errors += e
	}
	if sifted == 0 {
		t.Fatal("no dark-count clicks at all")
	}
	qber := float64(errors) / float64(sifted)
	if qber < 0.4 || qber > 0.6 {
		t.Errorf("dark-only QBER = %v, want ~0.5", qber)
	}
}

func TestDoubleClickPolicies(t *testing.T) {
	// With huge mu, no loss and mismatched-basis randomization, double
	// clicks are common. Discard policy must surface them as
	// DoubleClick; randomize policy must never emit DoubleClick.
	p := idealParams()
	p.MeanPhotons = 20
	l := NewLink(p, 13)
	_, rx := l.TransmitFrame(0, 2000)
	if rx.DoubleClickCount() == 0 {
		t.Error("discard policy: expected DoubleClick records at mu=20")
	}

	p.DoubleClicks = RandomizeDoubleClicks
	l = NewLink(p, 13)
	_, rx = l.TransmitFrame(0, 2000)
	if rx.DoubleClickCount() != 0 {
		t.Fatal("randomize policy emitted a DoubleClick")
	}
}

func TestStatsAccumulate(t *testing.T) {
	l := NewLink(DefaultParams(), 17)
	l.TransmitFrame(0, 10000)
	st := l.Stats()
	if st.Pulses != 10000 {
		t.Errorf("Pulses = %d", st.Pulses)
	}
	if st.PhotonsSent == 0 {
		t.Error("no photons sent")
	}
	if st.MultiPhoton == 0 {
		t.Error("expected some multi-photon pulses at mu=0.1 over 10k pulses")
	}
	if st.Arrived == 0 || st.Arrived > st.PhotonsSent {
		t.Errorf("Arrived = %d of %d", st.Arrived, st.PhotonsSent)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	// Both engines must be reproducible from the seed alone.
	for _, eng := range []TransmitEngine{Exact(), Batched()} {
		a := NewLink(DefaultParams(), 99)
		b := NewLink(DefaultParams(), 99)
		a.SetEngine(eng)
		b.SetEngine(eng)
		txA, rxA := a.TransmitFrame(0, 3000)
		txB, rxB := b.TransmitFrame(0, 3000)
		if txA.Len() != txB.Len() || rxA.Count() != rxB.Count() {
			t.Fatalf("%s: same seed, different outcomes", eng.Name())
		}
		for i := 0; i < txA.Len(); i++ {
			if txA.Symbol(i) != txB.Symbol(i) {
				t.Fatalf("%s: same seed, different modulation", eng.Name())
			}
		}
		for i := 0; i < rxA.Count(); i++ {
			if rxA.At(i) != rxB.At(i) {
				t.Fatalf("%s: same seed, different detections", eng.Name())
			}
		}
	}
}

func TestEngineSelection(t *testing.T) {
	p := DefaultParams()
	l := NewLink(p, 1)
	if got := l.Engine().Name(); got != "batched" {
		t.Errorf("honest link engine = %s, want batched", got)
	}
	l.SetTap(blackHoleTap{})
	if got := l.Engine().Name(); got != "exact" {
		t.Errorf("tapped link engine = %s, want exact", got)
	}
	l.SetTap(nil)
	l.Cut()
	if got := l.Engine().Name(); got != "exact" {
		t.Errorf("cut link engine = %s, want exact", got)
	}
	l.Restore()
	if got := l.Engine().Name(); got != "batched" {
		t.Errorf("restored link engine = %s, want batched", got)
	}
	p.DeadGates = 5
	dead := NewLink(p, 1)
	if got := dead.Engine().Name(); got != "exact" {
		t.Errorf("dead-time link engine = %s, want exact", got)
	}
	dead.SetEngine(Batched())
	if got := dead.Engine().Name(); got != "batched" {
		t.Errorf("pinned engine = %s, want batched", got)
	}
}

func TestDeadTimeReducesRate(t *testing.T) {
	p := DefaultParams()
	p.DarkCountProb = 0.01
	base := NewLink(p, 23)
	_, rx1 := base.TransmitFrame(0, 20000)

	p.DeadGates = 20
	deadened := NewLink(p, 23)
	_, rx2 := deadened.TransmitFrame(0, 20000)

	if rx2.Count() >= rx1.Count() {
		t.Errorf("dead time did not reduce clicks: %d vs %d",
			rx2.Count(), rx1.Count())
	}
}

// A recording tap used to verify the Tap hook fires per pulse.
type countingTap struct{ pulses, photons int }

func (c *countingTap) Name() string { return "counter" }
func (c *countingTap) Intercept(p *Pulse, _ *rng.SplitMix64) {
	c.pulses++
	c.photons += p.Photons
}

func TestTapSeesEveryPulse(t *testing.T) {
	l := NewLink(DefaultParams(), 29)
	tap := &countingTap{}
	l.SetTap(tap)
	l.TransmitFrame(0, 5000)
	if tap.pulses != 5000 {
		t.Errorf("tap saw %d pulses, want 5000", tap.pulses)
	}
	l.SetTap(nil)
	l.TransmitFrame(1, 1000)
	if tap.pulses != 5000 {
		t.Error("tap still installed after SetTap(nil)")
	}
}

// A photon-stealing tap: removing all photons must kill signal clicks.
type blackHoleTap struct{}

func (blackHoleTap) Name() string                          { return "blackhole" }
func (blackHoleTap) Intercept(p *Pulse, _ *rng.SplitMix64) { p.Photons = 0 }

func TestTapCanSuppressSignal(t *testing.T) {
	p := DefaultParams()
	p.DarkCountProb = 0
	l := NewLink(p, 31)
	l.SetTap(blackHoleTap{})
	_, rx := l.TransmitFrame(0, 20000)
	if rx.Count() != 0 {
		t.Errorf("black hole tap let %d detections through", rx.Count())
	}
}

// assertRateClose checks two empirical rates k1/n1 and k2/n2 agree
// within 5 standard deviations of their pooled binomial difference.
func assertRateClose(t *testing.T, what string, k1, n1, k2, n2 float64) {
	t.Helper()
	if n1 == 0 || n2 == 0 {
		t.Fatalf("%s: no samples (%v, %v)", what, n1, n2)
	}
	p1, p2 := k1/n1, k2/n2
	pooled := (k1 + k2) / (n1 + n2)
	sigma := math.Sqrt(pooled * (1 - pooled) * (1/n1 + 1/n2))
	if math.Abs(p1-p2) > 5*sigma+1e-12 {
		t.Errorf("%s: exact %.6g vs batched %.6g differ by more than 5 sigma (%.3g)",
			what, p1, p2, sigma)
	}
}

// TestBatchedMatchesExactDistributions pins the two engines to the same
// observable distributions: over >= 10^6 pulses per engine, the click
// rate, double-click rate, dark-click fraction and measured QBER must
// agree within 5 sigma. This is the contract that lets the batched path
// substitute for the per-pulse Monte Carlo on honest links.
func TestBatchedMatchesExactDistributions(t *testing.T) {
	bench := DefaultParams()
	bench.FiberKm = 0
	bench.SystemLossDB = 0
	bench.DetectorEff = 1
	bench.DarkCountProb = 1e-5
	bench.Visibility = 0.96

	bright := bench
	bright.MeanPhotons = 1.0
	bright.DoubleClicks = RandomizeDoubleClicks

	darkHeavy := DefaultParams()
	darkHeavy.DarkCountProb = 1e-3

	scenarios := []struct {
		name string
		p    Params
	}{
		{"paper-default", DefaultParams()},
		{"bench", bench},
		{"bright-randomize", bright},
		{"dark-heavy", darkHeavy},
	}
	const frames, slots = 50, 20000 // 10^6 pulses per engine per scenario
	type tally struct {
		stats                   Stats
		sifted, errors, doubles float64
	}
	run := func(p Params, eng TransmitEngine, seed uint64) tally {
		l := NewLink(p, seed)
		l.SetEngine(eng)
		var out tally
		for f := 0; f < frames; f++ {
			tx, rx := l.TransmitFrame(uint64(f), slots)
			s, e := MeasuredQBER(tx, rx)
			out.sifted += float64(s)
			out.errors += float64(e)
			out.doubles += float64(rx.DoubleClickCount())
		}
		out.stats = l.Stats()
		return out
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			ex := run(sc.p, Exact(), 1001)
			ba := run(sc.p, Batched(), 2002)
			n := float64(frames * slots)
			assertRateClose(t, "single-click rate",
				float64(ex.stats.SingleClicks), n, float64(ba.stats.SingleClicks), n)
			assertRateClose(t, "double-click rate",
				float64(ex.stats.DoubleClicks), n, float64(ba.stats.DoubleClicks), n)
			assertRateClose(t, "dark-click rate",
				float64(ex.stats.DarkClicks), n, float64(ba.stats.DarkClicks), n)
			assertRateClose(t, "sifted fraction", ex.sifted, n, ba.sifted, n)
			assertRateClose(t, "measured QBER", ex.errors, ex.sifted, ba.errors, ba.sifted)
			assertRateClose(t, "photons sent / pulse",
				float64(ex.stats.PhotonsSent), n, float64(ba.stats.PhotonsSent), n)
			assertRateClose(t, "multi-photon rate",
				float64(ex.stats.MultiPhoton), n, float64(ba.stats.MultiPhoton), n)
		})
	}
}

// BenchmarkLink_TransmitFrame covers both physical-layer engines on the
// same 10k-slot frame so the fast path's speedup stays visible in the
// bench trajectory.
func BenchmarkLink_TransmitFrame(b *testing.B) {
	for _, eng := range []TransmitEngine{Exact(), Batched()} {
		b.Run(eng.Name(), func(b *testing.B) {
			l := NewLink(DefaultParams(), 1)
			l.SetEngine(eng)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l.TransmitFrame(uint64(i), 10000)
			}
		})
	}
}
