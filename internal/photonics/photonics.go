// Package photonics simulates the physical layer of the BBN
// weak-coherent QKD link: the attenuated 1550 nm source, the
// Mach-Zehnder interferometer pair, the telco fiber, and the gated,
// cooled APD detectors.
//
// The simulation is a per-pulse Monte Carlo over the quantities that the
// protocol stack above can actually observe:
//
//   - photon number per pulse: Poisson with mean MeanPhotons (mu). The
//     multi-photon tail of this distribution is exactly the surface the
//     beamsplitting / PNS attacks of Section 6 exploit, so it is modelled
//     faithfully rather than approximated away.
//   - phase encoding: Alice applies one of four phases in units of pi/2
//     (value*pi + basis*pi/2); Bob selects one of two (basis*pi/2). A
//     matched basis routes the photon to the correct detector up to the
//     interferometer visibility; a mismatched basis routes it uniformly
//     at random — precisely the behaviour Figs. 4-7 derive from the
//     interferometer optics.
//   - fiber: each photon independently survives with probability
//     10^-(atten*km + systemLoss)/10.
//   - detectors: efficiency eta, per-gate dark-count probability, and a
//     double-click policy (both APDs firing in one gate).
//
// The bright-pulse (1300 nm) framing channel is abstracted into
// agreement on (frame, slot) coordinates; see package qframe.
package photonics

import (
	"fmt"
	"math"

	"qkd/internal/qframe"
	"qkd/internal/rng"
)

// DoubleClickPolicy selects what Bob records when both detectors fire
// in the same gate.
type DoubleClickPolicy int

const (
	// DiscardDoubleClicks records a DoubleClick symbol, which sifting
	// then drops. This is the conservative choice.
	DiscardDoubleClicks DoubleClickPolicy = iota
	// RandomizeDoubleClicks records a uniformly random bit value, the
	// convention required by some security proofs.
	RandomizeDoubleClicks
)

// Params configures a simulated link. The defaults (see DefaultParams)
// reproduce the paper's operating point: 1 MHz pulse rate, mu = 0.1,
// 10 km of fiber, and a 6-8 % QBER.
type Params struct {
	PulseRateHz   float64           // trigger rate (paper: 1 MHz, max 5 MHz)
	MeanPhotons   float64           // mu, mean photon number per dim pulse (paper: 0.1)
	FiberKm       float64           // fiber length (paper: 10 km spool)
	AttenDBPerKm  float64           // fiber attenuation at 1550 nm (0.2 dB/km typical)
	SystemLossDB  float64           // couplers, interferometer arms, connectors
	DetectorEff   float64           // APD quantum efficiency eta (InGaAs ~ 0.1)
	DarkCountProb float64           // per gate, per detector
	Visibility    float64           // interferometer fringe visibility V
	DoubleClicks  DoubleClickPolicy // what to do when both APDs fire
	DeadGates     int               // gates a detector stays dead after a click
}

// DefaultParams returns the paper's operating point. With these values
// the simulated link runs at roughly the QBER the paper reports (6-8 %)
// and a sifted-key rate in the low kilobits/second at 10 km.
func DefaultParams() Params {
	return Params{
		PulseRateHz:   1e6,
		MeanPhotons:   0.1,
		FiberKm:       10,
		AttenDBPerKm:  0.2,
		SystemLossDB:  5.0,
		DetectorEff:   0.10,
		DarkCountProb: 1e-4,
		Visibility:    0.93,
		DoubleClicks:  DiscardDoubleClicks,
		DeadGates:     0,
	}
}

// Validate reports a configuration error, if any.
func (p Params) Validate() error {
	switch {
	case p.PulseRateHz <= 0:
		return fmt.Errorf("photonics: pulse rate %v must be positive", p.PulseRateHz)
	case p.MeanPhotons < 0:
		return fmt.Errorf("photonics: mean photon number %v must be non-negative", p.MeanPhotons)
	case p.FiberKm < 0:
		return fmt.Errorf("photonics: fiber length %v must be non-negative", p.FiberKm)
	case p.DetectorEff < 0 || p.DetectorEff > 1:
		return fmt.Errorf("photonics: detector efficiency %v out of [0,1]", p.DetectorEff)
	case p.DarkCountProb < 0 || p.DarkCountProb > 1:
		return fmt.Errorf("photonics: dark count probability %v out of [0,1]", p.DarkCountProb)
	case p.Visibility < 0 || p.Visibility > 1:
		return fmt.Errorf("photonics: visibility %v out of [0,1]", p.Visibility)
	}
	return nil
}

// ChannelTransmission returns the probability that a single photon
// survives the fiber and system losses.
func (p Params) ChannelTransmission() float64 {
	lossDB := p.AttenDBPerKm*p.FiberKm + p.SystemLossDB
	return math.Pow(10, -lossDB/10)
}

// OpticalErrorProb returns the probability a matched-basis photon exits
// toward the wrong detector, (1-V)/2 for fringe visibility V.
func (p Params) OpticalErrorProb() float64 {
	return (1 - p.Visibility) / 2
}

// MultiPhotonProb returns P[k >= 2] for the Poisson pulse, the fraction
// of pulses vulnerable to beamsplitting attacks.
func (p Params) MultiPhotonProb() float64 {
	mu := p.MeanPhotons
	return 1 - math.Exp(-mu) - mu*math.Exp(-mu)
}

// NonVacuumProb returns P[k >= 1], used to condition the received-based
// multi-photon charge during entropy estimation.
func (p Params) NonVacuumProb() float64 {
	return 1 - math.Exp(-p.MeanPhotons)
}

// ExpectedClickProb returns the per-pulse probability that Bob records
// a usable click (signal or dark), to first order.
func (p Params) ExpectedClickProb() float64 {
	sig := 1 - math.Exp(-p.MeanPhotons*p.ChannelTransmission()*p.DetectorEff)
	dark := 2 * p.DarkCountProb
	return sig + dark - sig*dark
}

// ExpectedSiftedFraction returns the expected sifted bits per pulse:
// click probability times the 1/2 basis-agreement factor of BB84.
func (p Params) ExpectedSiftedFraction() float64 {
	return p.ExpectedClickProb() / 2
}

// ExpectedQBER returns the first-order QBER prediction: optical errors
// on signal clicks plus 50 % errors on dark-count clicks.
func (p Params) ExpectedQBER() float64 {
	sig := 1 - math.Exp(-p.MeanPhotons*p.ChannelTransmission()*p.DetectorEff)
	dark := 2 * p.DarkCountProb
	tot := sig + dark
	if tot == 0 {
		return 0
	}
	return (p.OpticalErrorProb()*sig + 0.5*dark) / tot
}

// Pulse is one dim-laser emission in flight: a photon-number state
// carrying Alice's phase modulation. Attacks manipulate pulses.
type Pulse struct {
	Slot    uint32
	Photons int
	Basis   qframe.Basis
	Value   uint8
}

// Tap is an eavesdropper's hook into the quantum channel. Intercept is
// called for every pulse after it leaves Alice and before it enters the
// fiber; the attack may mutate the pulse (measure-and-resend changes
// basis/value/photon count, beamsplitting removes photons, a fiber cut
// zeroes them). Implementations live in package eve.
type Tap interface {
	// Name identifies the attack in logs and experiment output.
	Name() string
	// Intercept may mutate p in place.
	Intercept(p *Pulse, r *rng.SplitMix64)
}

// FrameAware is implemented by taps that track per-frame state; the
// link announces each frame boundary before transmitting its pulses.
type FrameAware interface {
	BeginFrame(id uint64)
}

// Stats accumulates per-link counters that experiments report.
type Stats struct {
	Pulses       uint64 // pulses triggered
	PhotonsSent  uint64 // total photons emitted by Alice
	MultiPhoton  uint64 // pulses with >= 2 photons leaving Alice
	Arrived      uint64 // photons surviving the channel
	SingleClicks uint64 // gates with exactly one APD firing
	DoubleClicks uint64 // gates with both APDs firing
	DarkClicks   uint64 // clicks attributable to dark counts alone
}

// Link is a simulated quantum channel between an Alice and a Bob.
// It is not safe for concurrent use; each link belongs to one
// protocol-engine pair.
type Link struct {
	params Params
	tap    Tap
	// Independent randomness for Alice's modulator, the channel, and
	// Bob's basis selector, so that attacks which consume randomness
	// do not perturb the honest parties' choices.
	aliceRand *rng.SplitMix64
	chanRand  *rng.SplitMix64
	bobRand   *rng.SplitMix64
	stats     Stats
	dead      [2]int // remaining dead gates per detector
	cut       bool
}

// NewLink builds a link with the given parameters, seeded
// deterministically from seed. It panics if params are invalid, since
// a bad configuration is a programming error in this codebase.
func NewLink(params Params, seed uint64) *Link {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	return &Link{
		params:    params,
		aliceRand: rng.NewSplitMix64(seed*2654435761 + 1),
		chanRand:  rng.NewSplitMix64(seed*40503 + 2),
		bobRand:   rng.NewSplitMix64(seed*2246822519 + 3),
	}
}

// Params returns the link configuration.
func (l *Link) Params() Params { return l.params }

// Stats returns a snapshot of the accumulated counters.
func (l *Link) Stats() Stats { return l.stats }

// SetTap installs (or removes, with nil) an eavesdropper on the
// quantum channel.
func (l *Link) SetTap(t Tap) { l.tap = t }

// Cut severs the fiber: no photons arrive until Restore. The paper's
// robustness discussion (Section 2, Section 8) revolves around exactly
// this failure.
func (l *Link) Cut() { l.cut = true }

// Restore repairs a cut fiber.
func (l *Link) Restore() { l.cut = false }

// IsCut reports whether the fiber is currently severed.
func (l *Link) IsCut() bool { return l.cut }

// TransmitFrame simulates one frame of `slots` pulses and returns
// Alice's transmitted symbols and Bob's detection record.
func (l *Link) TransmitFrame(id uint64, slots int) (*qframe.TxFrame, *qframe.RxFrame) {
	tx := &qframe.TxFrame{ID: id, Pulses: make([]qframe.TxSymbol, slots)}
	rx := &qframe.RxFrame{ID: id, SlotsTotal: slots}
	if f, ok := l.tap.(FrameAware); ok {
		f.BeginFrame(id)
	}
	for s := 0; s < slots; s++ {
		slot := uint32(s)
		basis := qframe.Basis(l.aliceRand.Bit())
		value := uint8(l.aliceRand.Bit())
		tx.Pulses[s] = qframe.TxSymbol{Slot: slot, Basis: basis, Value: value}

		pulse := Pulse{
			Slot:    slot,
			Photons: l.chanRand.Poisson(l.params.MeanPhotons),
			Basis:   basis,
			Value:   value,
		}
		l.stats.Pulses++
		l.stats.PhotonsSent += uint64(pulse.Photons)
		if pulse.Photons >= 2 {
			l.stats.MultiPhoton++
		}

		if l.tap != nil {
			l.tap.Intercept(&pulse, l.chanRand)
		}
		if l.cut {
			pulse.Photons = 0
		}

		det := l.detect(&pulse)
		if det.Result != qframe.NoClick {
			rx.Detections = append(rx.Detections, det)
		}
	}
	return tx, rx
}

// detect runs the channel and Bob's receiver for one pulse.
func (l *Link) detect(p *Pulse) qframe.RxSymbol {
	bobBasis := qframe.Basis(l.bobRand.Bit())
	out := qframe.RxSymbol{Slot: p.Slot, Basis: bobBasis, Result: qframe.NoClick}

	trans := l.params.ChannelTransmission()
	eOpt := l.params.OpticalErrorProb()

	var fired [2]bool
	// Signal photons.
	for i := 0; i < p.Photons; i++ {
		if l.chanRand.Float64() >= trans {
			continue // lost in the fiber
		}
		l.stats.Arrived++
		// Route through Bob's interferometer.
		var target int
		if bobBasis == p.Basis {
			target = int(p.Value)
			if l.bobRand.Float64() < eOpt {
				target ^= 1 // visibility error
			}
		} else {
			// Incompatible bases: the photon strikes one of the two
			// APDs at random (Section 4).
			target = l.bobRand.Bit()
		}
		if l.bobRand.Float64() < l.params.DetectorEff {
			fired[target] = true
		}
	}
	// Dark counts, independent per detector per gate.
	darkOnly := !fired[0] && !fired[1]
	for d := 0; d < 2; d++ {
		if l.bobRand.Float64() < l.params.DarkCountProb {
			fired[d] = true
		}
	}

	// Dead-time gating.
	for d := 0; d < 2; d++ {
		if l.dead[d] > 0 {
			l.dead[d]--
			fired[d] = false
		}
	}

	switch {
	case fired[0] && fired[1]:
		l.stats.DoubleClicks++
		if l.params.DoubleClicks == RandomizeDoubleClicks {
			if l.bobRand.Bit() == 0 {
				out.Result = qframe.ClickD0
			} else {
				out.Result = qframe.ClickD1
			}
		} else {
			out.Result = qframe.DoubleClick
		}
	case fired[0]:
		out.Result = qframe.ClickD0
	case fired[1]:
		out.Result = qframe.ClickD1
	}

	if out.Result == qframe.ClickD0 || out.Result == qframe.ClickD1 {
		l.stats.SingleClicks++
		if darkOnly {
			l.stats.DarkClicks++
		}
	}
	if out.Result != qframe.NoClick && l.params.DeadGates > 0 {
		for d := 0; d < 2; d++ {
			if fired[d] {
				l.dead[d] = l.params.DeadGates
			}
		}
	}
	return out
}

// MeasuredQBER compares a transmitted and received frame pair and
// returns (siftedBits, errorBits): the slots where Bob registered a
// usable click and chose Alice's basis, and among those, how many bit
// values disagree. This is ground truth available only to the
// simulator (and to tests); the protocol stack must instead estimate
// error rates through the Cascade exchange.
func MeasuredQBER(tx *qframe.TxFrame, rx *qframe.RxFrame) (sifted, errors int) {
	for _, d := range rx.Detections {
		v, ok := d.Value()
		if !ok {
			continue
		}
		t := tx.Pulses[d.Slot]
		if t.Basis != d.Basis {
			continue
		}
		sifted++
		if t.Value != v {
			errors++
		}
	}
	return sifted, errors
}
