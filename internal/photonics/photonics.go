// Package photonics simulates the physical layer of the BBN
// weak-coherent QKD link: the attenuated 1550 nm source, the
// Mach-Zehnder interferometer pair, the telco fiber, and the gated,
// cooled APD detectors.
//
// The simulation is a per-pulse Monte Carlo over the quantities that the
// protocol stack above can actually observe:
//
//   - photon number per pulse: Poisson with mean MeanPhotons (mu). The
//     multi-photon tail of this distribution is exactly the surface the
//     beamsplitting / PNS attacks of Section 6 exploit, so it is modelled
//     faithfully rather than approximated away.
//   - phase encoding: Alice applies one of four phases in units of pi/2
//     (value*pi + basis*pi/2); Bob selects one of two (basis*pi/2). A
//     matched basis routes the photon to the correct detector up to the
//     interferometer visibility; a mismatched basis routes it uniformly
//     at random — precisely the behaviour Figs. 4-7 derive from the
//     interferometer optics.
//   - fiber: each photon independently survives with probability
//     10^-(atten*km + systemLoss)/10.
//   - detectors: efficiency eta, per-gate dark-count probability, and a
//     double-click policy (both APDs firing in one gate).
//
// The bright-pulse (1300 nm) framing channel is abstracted into
// agreement on (frame, slot) coordinates; see package qframe.
//
// Two sampling engines implement the model behind one interface
// (TransmitEngine): the exact per-pulse Monte Carlo above, and a
// batched fast path that draws aggregate per-frame click totals from
// the closed-form per-pulse probabilities and then samples only the
// clicked slots — the same distribution at a fraction of the cost,
// since at mu = 0.1 some 97 % of pulses are vacuum. Links use the
// batched path automatically and fall back to the exact path whenever
// individual pulses must be observable: an eavesdropper tap, detector
// dead time, or a cut fiber.
package photonics

import (
	"fmt"
	"math"
	"slices"

	"qkd/internal/qframe"
	"qkd/internal/rng"
)

// DoubleClickPolicy selects what Bob records when both detectors fire
// in the same gate.
type DoubleClickPolicy int

const (
	// DiscardDoubleClicks records a DoubleClick symbol, which sifting
	// then drops. This is the conservative choice.
	DiscardDoubleClicks DoubleClickPolicy = iota
	// RandomizeDoubleClicks records a uniformly random bit value, the
	// convention required by some security proofs.
	RandomizeDoubleClicks
)

// Params configures a simulated link. The defaults (see DefaultParams)
// reproduce the paper's operating point: 1 MHz pulse rate, mu = 0.1,
// 10 km of fiber, and a 6-8 % QBER.
type Params struct {
	PulseRateHz   float64           // trigger rate (paper: 1 MHz, max 5 MHz)
	MeanPhotons   float64           // mu, mean photon number per dim pulse (paper: 0.1)
	FiberKm       float64           // fiber length (paper: 10 km spool)
	AttenDBPerKm  float64           // fiber attenuation at 1550 nm (0.2 dB/km typical)
	SystemLossDB  float64           // couplers, interferometer arms, connectors
	DetectorEff   float64           // APD quantum efficiency eta (InGaAs ~ 0.1)
	DarkCountProb float64           // per gate, per detector
	Visibility    float64           // interferometer fringe visibility V
	DoubleClicks  DoubleClickPolicy // what to do when both APDs fire
	DeadGates     int               // gates a detector stays dead after a click
}

// DefaultParams returns the paper's operating point. With these values
// the simulated link runs at roughly the QBER the paper reports (6-8 %)
// and a sifted-key rate in the low kilobits/second at 10 km.
func DefaultParams() Params {
	return Params{
		PulseRateHz:   1e6,
		MeanPhotons:   0.1,
		FiberKm:       10,
		AttenDBPerKm:  0.2,
		SystemLossDB:  5.0,
		DetectorEff:   0.10,
		DarkCountProb: 1e-4,
		Visibility:    0.93,
		DoubleClicks:  DiscardDoubleClicks,
		DeadGates:     0,
	}
}

// Validate reports a configuration error, if any.
func (p Params) Validate() error {
	switch {
	case p.PulseRateHz <= 0:
		return fmt.Errorf("photonics: pulse rate %v must be positive", p.PulseRateHz)
	case p.MeanPhotons < 0:
		return fmt.Errorf("photonics: mean photon number %v must be non-negative", p.MeanPhotons)
	case p.FiberKm < 0:
		return fmt.Errorf("photonics: fiber length %v must be non-negative", p.FiberKm)
	case p.DetectorEff < 0 || p.DetectorEff > 1:
		return fmt.Errorf("photonics: detector efficiency %v out of [0,1]", p.DetectorEff)
	case p.DarkCountProb < 0 || p.DarkCountProb > 1:
		return fmt.Errorf("photonics: dark count probability %v out of [0,1]", p.DarkCountProb)
	case p.Visibility < 0 || p.Visibility > 1:
		return fmt.Errorf("photonics: visibility %v out of [0,1]", p.Visibility)
	}
	return nil
}

// ChannelTransmission returns the probability that a single photon
// survives the fiber and system losses.
func (p Params) ChannelTransmission() float64 {
	lossDB := p.AttenDBPerKm*p.FiberKm + p.SystemLossDB
	return math.Pow(10, -lossDB/10)
}

// OpticalErrorProb returns the probability a matched-basis photon exits
// toward the wrong detector, (1-V)/2 for fringe visibility V.
func (p Params) OpticalErrorProb() float64 {
	return (1 - p.Visibility) / 2
}

// MultiPhotonProb returns P[k >= 2] for the Poisson pulse, the fraction
// of pulses vulnerable to beamsplitting attacks.
func (p Params) MultiPhotonProb() float64 {
	mu := p.MeanPhotons
	return 1 - math.Exp(-mu) - mu*math.Exp(-mu)
}

// NonVacuumProb returns P[k >= 1], used to condition the received-based
// multi-photon charge during entropy estimation.
func (p Params) NonVacuumProb() float64 {
	return 1 - math.Exp(-p.MeanPhotons)
}

// ExpectedClickProb returns the per-pulse probability that Bob records
// a usable click (signal or dark), to first order.
func (p Params) ExpectedClickProb() float64 {
	sig := 1 - math.Exp(-p.MeanPhotons*p.ChannelTransmission()*p.DetectorEff)
	dark := 2 * p.DarkCountProb
	return sig + dark - sig*dark
}

// ExpectedSiftedFraction returns the expected sifted bits per pulse:
// click probability times the 1/2 basis-agreement factor of BB84.
func (p Params) ExpectedSiftedFraction() float64 {
	return p.ExpectedClickProb() / 2
}

// ExpectedQBER returns the first-order QBER prediction: optical errors
// on signal clicks plus 50 % errors on dark-count clicks.
func (p Params) ExpectedQBER() float64 {
	sig := 1 - math.Exp(-p.MeanPhotons*p.ChannelTransmission()*p.DetectorEff)
	dark := 2 * p.DarkCountProb
	tot := sig + dark
	if tot == 0 {
		return 0
	}
	return (p.OpticalErrorProb()*sig + 0.5*dark) / tot
}

// Pulse is one dim-laser emission in flight: a photon-number state
// carrying Alice's phase modulation. Attacks manipulate pulses.
type Pulse struct {
	Slot    uint32
	Photons int
	Basis   qframe.Basis
	Value   uint8
}

// Tap is an eavesdropper's hook into the quantum channel. Intercept is
// called for every pulse after it leaves Alice and before it enters the
// fiber; the attack may mutate the pulse (measure-and-resend changes
// basis/value/photon count, beamsplitting removes photons, a fiber cut
// zeroes them). Implementations live in package eve.
type Tap interface {
	// Name identifies the attack in logs and experiment output.
	Name() string
	// Intercept may mutate p in place.
	Intercept(p *Pulse, r *rng.SplitMix64)
}

// FrameAware is implemented by taps that track per-frame state; the
// link announces each frame boundary before transmitting its pulses.
type FrameAware interface {
	BeginFrame(id uint64)
}

// Stats accumulates per-link counters that experiments report.
type Stats struct {
	Pulses       uint64 // pulses triggered
	PhotonsSent  uint64 // total photons emitted by Alice
	MultiPhoton  uint64 // pulses with >= 2 photons leaving Alice
	Arrived      uint64 // photons surviving the channel
	SingleClicks uint64 // gates with exactly one APD firing
	DoubleClicks uint64 // gates with both APDs firing
	DarkClicks   uint64 // clicks attributable to dark counts alone
}

// TransmitEngine is one strategy for simulating a frame of pulses.
// Two engines exist behind this interface:
//
//   - Exact: the per-pulse Monte Carlo, drawing photon numbers, fiber
//     survival, interferometer routing and detector behaviour for every
//     pulse slot. It is the reference semantics, and the only engine
//     that can host eavesdropper taps, detector dead time, and fiber
//     cuts — anything that needs to see (or perturb) individual pulses.
//   - Batched: the sampling-equivalent fast path. At mu = 0.1 roughly
//     97 % of pulses are vacuum, so instead of four-plus PRNG draws per
//     slot it draws aggregate per-frame counts from the closed-form
//     per-pulse outcome probabilities (each count an exact binomial)
//     and then samples only the clicked slots. The per-slot outcome
//     distribution is identical to the exact engine's; only the
//     reporting-only Stats counters (PhotonsSent, MultiPhoton, Arrived)
//     are drawn independently of the clicks rather than jointly.
//
// Links pick the engine automatically (see Link.TransmitFrame);
// SetEngine pins one for tests and benchmarks.
type TransmitEngine interface {
	// Name identifies the engine in logs and benchmarks.
	Name() string
	// Transmit simulates one frame of `slots` pulses on the link.
	Transmit(l *Link, id uint64, slots int) (*qframe.TxFrame, *qframe.RxFrame)
}

// Exact returns the per-pulse Monte Carlo engine.
func Exact() TransmitEngine { return exactEngine{} }

// Batched returns the aggregate-count fast-path engine.
func Batched() TransmitEngine { return batchedEngine{} }

// Link is a simulated quantum channel between an Alice and a Bob.
// It is not safe for concurrent use; each link belongs to one
// protocol-engine pair.
type Link struct {
	params Params
	tap    Tap
	// Independent randomness for Alice's modulator, the channel, and
	// Bob's basis selector, so that attacks which consume randomness
	// do not perturb the honest parties' choices.
	aliceRand *rng.SplitMix64
	chanRand  *rng.SplitMix64
	bobRand   *rng.SplitMix64
	stats     Stats
	dead      [2]int // remaining dead gates per detector
	cut       bool
	engine    TransmitEngine // pinned engine; nil selects automatically
}

// NewLink builds a link with the given parameters, seeded
// deterministically from seed. It panics if params are invalid, since
// a bad configuration is a programming error in this codebase.
func NewLink(params Params, seed uint64) *Link {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	return &Link{
		params:    params,
		aliceRand: rng.NewSplitMix64(seed*2654435761 + 1),
		chanRand:  rng.NewSplitMix64(seed*40503 + 2),
		bobRand:   rng.NewSplitMix64(seed*2246822519 + 3),
	}
}

// Params returns the link configuration.
func (l *Link) Params() Params { return l.params }

// Stats returns a snapshot of the accumulated counters.
func (l *Link) Stats() Stats { return l.stats }

// SetTap installs (or removes, with nil) an eavesdropper on the
// quantum channel.
func (l *Link) SetTap(t Tap) { l.tap = t }

// Cut severs the fiber: no photons arrive until Restore. The paper's
// robustness discussion (Section 2, Section 8) revolves around exactly
// this failure.
func (l *Link) Cut() { l.cut = true }

// Restore repairs a cut fiber.
func (l *Link) Restore() { l.cut = false }

// IsCut reports whether the fiber is currently severed.
func (l *Link) IsCut() bool { return l.cut }

// SetEngine pins a transmit engine (nil restores automatic selection).
// Pinning Batched on a link with a tap installed silently bypasses the
// tap — automatic selection never does this; pin only in tests and
// benchmarks that know the link is honest.
func (l *Link) SetEngine(e TransmitEngine) { l.engine = e }

// Engine returns the engine the next TransmitFrame will use: the pinned
// one, or else the exact per-pulse path whenever something needs to see
// individual pulses (an installed tap, detector dead time, a cut
// fiber), and the batched fast path otherwise.
func (l *Link) Engine() TransmitEngine {
	if l.engine != nil {
		return l.engine
	}
	if l.tap != nil || l.cut || l.params.DeadGates > 0 {
		return exactEngine{}
	}
	return batchedEngine{}
}

// TransmitFrame simulates one frame of `slots` pulses and returns
// Alice's transmitted symbols and Bob's detection record, dispatching
// to the active TransmitEngine.
func (l *Link) TransmitFrame(id uint64, slots int) (*qframe.TxFrame, *qframe.RxFrame) {
	return l.Engine().Transmit(l, id, slots)
}

// ---------------------------------------------------------------------
// Exact engine: per-pulse Monte Carlo
// ---------------------------------------------------------------------

type exactEngine struct{}

func (exactEngine) Name() string { return "exact" }

func (exactEngine) Transmit(l *Link, id uint64, slots int) (*qframe.TxFrame, *qframe.RxFrame) {
	tx := qframe.NewTxFrame(id, slots)
	rx := qframe.NewRxFrame(id, slots)
	if f, ok := l.tap.(FrameAware); ok {
		f.BeginFrame(id)
	}
	for s := 0; s < slots; s++ {
		slot := uint32(s)
		basis := qframe.Basis(l.aliceRand.Bit())
		value := uint8(l.aliceRand.Bit())
		tx.SetSymbol(s, basis, value)

		pulse := Pulse{
			Slot:    slot,
			Photons: l.chanRand.Poisson(l.params.MeanPhotons),
			Basis:   basis,
			Value:   value,
		}
		l.stats.Pulses++
		l.stats.PhotonsSent += uint64(pulse.Photons)
		if pulse.Photons >= 2 {
			l.stats.MultiPhoton++
		}

		if l.tap != nil {
			l.tap.Intercept(&pulse, l.chanRand)
		}
		if l.cut {
			pulse.Photons = 0
		}

		det := l.detect(&pulse)
		if det.Result != qframe.NoClick {
			rx.Record(det.Slot, det.Basis, det.Result)
		}
	}
	return tx, rx
}

// detect runs the channel and Bob's receiver for one pulse.
func (l *Link) detect(p *Pulse) qframe.RxSymbol {
	bobBasis := qframe.Basis(l.bobRand.Bit())
	out := qframe.RxSymbol{Slot: p.Slot, Basis: bobBasis, Result: qframe.NoClick}

	trans := l.params.ChannelTransmission()
	eOpt := l.params.OpticalErrorProb()

	var fired [2]bool
	// Signal photons.
	for i := 0; i < p.Photons; i++ {
		if l.chanRand.Float64() >= trans {
			continue // lost in the fiber
		}
		l.stats.Arrived++
		// Route through Bob's interferometer.
		var target int
		if bobBasis == p.Basis {
			target = int(p.Value)
			if l.bobRand.Float64() < eOpt {
				target ^= 1 // visibility error
			}
		} else {
			// Incompatible bases: the photon strikes one of the two
			// APDs at random (Section 4).
			target = l.bobRand.Bit()
		}
		if l.bobRand.Float64() < l.params.DetectorEff {
			fired[target] = true
		}
	}
	// Dark counts, independent per detector per gate.
	darkOnly := !fired[0] && !fired[1]
	for d := 0; d < 2; d++ {
		if l.bobRand.Float64() < l.params.DarkCountProb {
			fired[d] = true
		}
	}

	// Dead-time gating.
	for d := 0; d < 2; d++ {
		if l.dead[d] > 0 {
			l.dead[d]--
			fired[d] = false
		}
	}

	switch {
	case fired[0] && fired[1]:
		l.stats.DoubleClicks++
		if l.params.DoubleClicks == RandomizeDoubleClicks {
			if l.bobRand.Bit() == 0 {
				out.Result = qframe.ClickD0
			} else {
				out.Result = qframe.ClickD1
			}
		} else {
			out.Result = qframe.DoubleClick
		}
	case fired[0]:
		out.Result = qframe.ClickD0
	case fired[1]:
		out.Result = qframe.ClickD1
	}

	if out.Result == qframe.ClickD0 || out.Result == qframe.ClickD1 {
		l.stats.SingleClicks++
		if darkOnly {
			l.stats.DarkClicks++
		}
	}
	if out.Result != qframe.NoClick && l.params.DeadGates > 0 {
		for d := 0; d < 2; d++ {
			if fired[d] {
				l.dead[d] = l.params.DeadGates
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Batched engine: aggregate counts, then sample only the clicked slots
// ---------------------------------------------------------------------

type batchedEngine struct{}

func (batchedEngine) Name() string { return "batched" }

// Detection outcome categories a non-vacuum gate can land in. Per slot
// these are mutually exclusive; their per-slot probabilities follow in
// closed form from the same Poisson/thinning model the exact engine
// samples pulse by pulse.
const (
	catMatchedCorrect = iota // bases matched, single click, Alice's bit
	catMatchedWrong          // bases matched, single click, flipped bit
	catMatchedDouble         // bases matched, both APDs fired
	catMisSingle             // bases differed, single click (uniform bit)
	catMisDouble             // bases differed, both APDs fired
	numCats
)

// slotProbs holds the per-slot outcome distribution and the dark-only
// fractions within each clicking category.
type slotProbs struct {
	cat      [numCats]float64 // unconditional per-slot probability
	darkFrac [numCats]float64 // P[click is dark-only | category]
}

// batchProbs derives the closed-form per-slot outcome probabilities.
// Derivation: k ~ Poisson(mu) photons each survive the fiber w.p. T and
// fire a detector w.p. eta, so photons *detected* at each APD are
// independent Poissons obtained by thinning lam = mu*T*eta: with
// matched bases the split is (1-e, e) across (correct, wrong) for
// optical error probability e; with mismatched bases it is (1/2, 1/2).
// An APD fires iff its Poisson count is nonzero or its dark count
// (prob d) fires; the per-gate categories follow by independence.
func batchProbs(p Params, cut bool) slotProbs {
	lam := p.MeanPhotons * p.ChannelTransmission() * p.DetectorEff
	if cut {
		lam = 0
	}
	e := p.OpticalErrorProb()
	d := p.DarkCountProb

	pC := 1 - math.Exp(-lam*(1-e)) // signal fires correct APD (matched)
	pW := 1 - math.Exp(-lam*e)     // signal fires wrong APD (matched)
	pH := 1 - math.Exp(-lam/2)     // signal fires either APD (mismatched)

	noC := (1 - pC) * (1 - d) // correct APD silent, incl. darks
	noW := (1 - pW) * (1 - d)
	noH := (1 - pH) * (1 - d)

	var sp slotProbs
	// Conditional on matched bases (probability 1/2 per slot):
	qmc := (1 - noC) * noW
	qmw := (1 - noW) * noC
	qmd := (1 - noC) * (1 - noW)
	// Conditional on mismatched bases:
	qms := 2 * (1 - noH) * noH
	qsd := (1 - noH) * (1 - noH)
	sp.cat = [numCats]float64{0.5 * qmc, 0.5 * qmw, 0.5 * qmd, 0.5 * qms, 0.5 * qsd}

	// Dark-only fractions: the click happened with zero signal photons
	// detected, the sub-event the DarkClicks counter tracks.
	vac := (1 - pC) * (1 - pW) // no signal at either APD (matched)
	vacH := (1 - pH) * (1 - pH)
	sp.darkFrac = [numCats]float64{
		safeDiv(vac*d*(1-d), qmc),
		safeDiv(vac*d*(1-d), qmw),
		safeDiv(vac*d*d, qmd),
		safeDiv(vacH*2*d*(1-d), qms),
		safeDiv(vacH*d*d, qsd),
	}
	return sp
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func (batchedEngine) Transmit(l *Link, id uint64, slots int) (*qframe.TxFrame, *qframe.RxFrame) {
	// Alice's modulation: two packed random columns, 64 slots per draw.
	tx := qframe.NewTxFrameFromColumns(id, l.aliceRand.Bits(slots), l.aliceRand.Bits(slots))
	rx := qframe.NewRxFrame(id, slots)

	// Source and propagation counters (reporting only — drawn from the
	// same marginals as the exact engine, independently of the clicks).
	l.stats.Pulses += uint64(slots)
	sent := l.chanRand.Poisson(float64(slots) * l.params.MeanPhotons)
	l.stats.PhotonsSent += uint64(sent)
	l.stats.MultiPhoton += uint64(l.chanRand.Binomial(slots, l.params.MultiPhotonProb()))
	if !l.cut {
		l.stats.Arrived += uint64(l.chanRand.Binomial(sent, l.params.ChannelTransmission()))
	}

	// Aggregate category counts: a multinomial over the per-slot
	// outcome distribution, drawn as sequential conditional binomials.
	sp := batchProbs(l.params, l.cut)
	var counts [numCats]int
	remaining, rest := slots, 1.0
	for c := 0; c < numCats && remaining > 0 && rest > 0; c++ {
		q := sp.cat[c] / rest
		if q > 1 {
			q = 1
		}
		counts[c] = l.chanRand.Binomial(remaining, q)
		remaining -= counts[c]
		rest -= sp.cat[c]
	}
	total := 0
	for _, c := range counts {
		total += c
	}

	// Choose which slots clicked: `total` distinct slots uniformly at
	// random, via a sparse Fisher-Yates (O(total) time and memory).
	// The first counts[0] picks are category 0, and so on — the picks
	// arrive in uniformly random order, so no separate shuffle is
	// needed. Keys pack slot and category for an in-order emit.
	displaced := make(map[int]int, total)
	keys := make([]uint64, 0, total)
	cat, catLeft := 0, counts[0]
	for i := 0; i < total; i++ {
		for catLeft == 0 {
			cat++
			catLeft = counts[cat]
		}
		j := i + l.bobRand.Intn(slots-i)
		slot, ok := displaced[j]
		if !ok {
			slot = j
		}
		cur, ok := displaced[i]
		if !ok {
			cur = i
		}
		displaced[j] = cur
		keys = append(keys, uint64(slot)<<3|uint64(cat))
		catLeft--
	}
	slices.Sort(keys)

	randomize := l.params.DoubleClicks == RandomizeDoubleClicks
	for _, k := range keys {
		slot := int(k >> 3)
		ab, av := tx.Basis(slot), tx.Value(slot)
		switch k & 7 {
		case catMatchedCorrect:
			rx.Record(uint32(slot), ab, qframe.ClickFor(av))
		case catMatchedWrong:
			rx.Record(uint32(slot), ab, qframe.ClickFor(av^1))
		case catMisSingle:
			rx.Record(uint32(slot), ab^1, qframe.ClickFor(uint8(l.bobRand.Bit())))
		case catMatchedDouble, catMisDouble:
			basis := ab
			if k&7 == catMisDouble {
				basis = ab ^ 1
			}
			if randomize {
				rx.Record(uint32(slot), basis, qframe.ClickFor(uint8(l.bobRand.Bit())))
			} else {
				rx.Record(uint32(slot), basis, qframe.DoubleClick)
			}
		}
	}

	// Click counters, mirroring the exact engine's accounting: under
	// the randomize policy a double-gated click is recorded (and
	// counted) as a single click too.
	singles := counts[catMatchedCorrect] + counts[catMatchedWrong] + counts[catMisSingle]
	doubles := counts[catMatchedDouble] + counts[catMisDouble]
	l.stats.SingleClicks += uint64(singles)
	l.stats.DoubleClicks += uint64(doubles)
	darkCats := []int{catMatchedCorrect, catMatchedWrong, catMisSingle}
	if randomize {
		l.stats.SingleClicks += uint64(doubles)
		darkCats = append(darkCats, catMatchedDouble, catMisDouble)
	}
	for _, c := range darkCats {
		l.stats.DarkClicks += uint64(l.chanRand.Binomial(counts[c], sp.darkFrac[c]))
	}
	return tx, rx
}

// MeasuredQBER compares a transmitted and received frame pair and
// returns (siftedBits, errorBits): the slots where Bob registered a
// usable click and chose Alice's basis, and among those, how many bit
// values disagree. This is ground truth available only to the
// simulator (and to tests); the protocol stack must instead estimate
// error rates through the Cascade exchange.
func MeasuredQBER(tx *qframe.TxFrame, rx *qframe.RxFrame) (sifted, errors int) {
	slots, bases, values := rx.Usable()
	for i, slot := range slots {
		if tx.Basis(int(slot)) != qframe.Basis(bases.Get(i)) {
			continue
		}
		sifted++
		if tx.Value(int(slot)) != uint8(values.Get(i)) {
			errors++
		}
	}
	return sifted, errors
}
