package ipsec

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/des"
	"crypto/hmac"
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"sync"
	"time"

	"qkd/internal/gf2"
)

// CipherSuite selects the transform protecting an SA's traffic.
type CipherSuite int

const (
	// SuiteAES128CTR protects with AES-128 in counter mode plus
	// HMAC-SHA1-96 integrity — the paper's "conventional symmetric
	// ciphers ... with continual and automatic reseeding by fresh QKD
	// bits" path.
	SuiteAES128CTR CipherSuite = iota
	// Suite3DESCBC is the 2003-era default VPN transform (Section 3
	// names 3DES/SHA1), kept for fidelity and comparison.
	Suite3DESCBC
	// SuiteOTP is the paper's one-time-pad extension: Vernam cipher
	// over QKD pad material with an information-theoretic
	// (Wegman-Carter) integrity tag.
	SuiteOTP
	// SuiteNull applies integrity but no confidentiality (testing).
	SuiteNull
)

func (c CipherSuite) String() string {
	switch c {
	case SuiteAES128CTR:
		return "aes128-ctr+hmac-sha1"
	case Suite3DESCBC:
		return "3des-cbc+hmac-sha1"
	case SuiteOTP:
		return "otp+wegman-carter"
	case SuiteNull:
		return "null+hmac-sha1"
	}
	return fmt.Sprintf("CipherSuite(%d)", int(c))
}

// KeyBits returns the secret material an SA of this suite consumes at
// establishment (encryption plus integrity key), excluding OTP pads.
func (c CipherSuite) KeyBits() int {
	switch c {
	case SuiteAES128CTR:
		return (16 + 20) * 8
	case Suite3DESCBC:
		return (24 + 20) * 8
	case SuiteOTP:
		return 64 // Wegman-Carter polynomial key
	case SuiteNull:
		return 20 * 8
	}
	return 0
}

// Lifetime bounds an SA's validity, "expressed either in time (seconds)
// or in data encrypted (kilobytes)" (Section 7). Zero fields mean
// unbounded.
type Lifetime struct {
	Duration time.Duration
	Bytes    uint64
}

// Errors from SA processing.
var (
	ErrReplay     = errors.New("ipsec: replayed or stale sequence number")
	ErrIntegrity  = errors.New("ipsec: integrity check failed")
	ErrExpired    = errors.New("ipsec: security association expired")
	ErrPadExhaust = errors.New("ipsec: one-time pad exhausted")
	ErrNoSA       = errors.New("ipsec: no security association for policy")
	ErrNoPolicy   = errors.New("ipsec: no policy matches packet")
	ErrDiscard    = errors.New("ipsec: policy discards packet")
	ErrUnknownSPI = errors.New("ipsec: unknown SPI")
)

const icvLen = 12 // HMAC-SHA1-96
const otpTagLen = 8

// Sequence-number lifecycle bounds. ESP sequence numbers are 32 bits
// and must never wrap: seq 0 is the replay sentinel, so a wrapped
// sender would have every subsequent packet dropped and the receiver
// window poisoned at the far edge. Seal therefore hard-stops (with
// ErrExpired, so the gateway treats it as any other lifetime expiry and
// rekeys) at seqHardLimit, and the SA starts signalling for a rekey a
// soft margin earlier so IKE can roll the tunnel over before the stop.
const (
	seqHardLimit  = ^uint32(0)
	seqSoftMargin = 1 << 16
	seqSoftLimit  = seqHardLimit - seqSoftMargin
)

// DefaultGrace is the supersession tolerance: how long a replaced or
// expired inbound SA keeps decrypting in-flight traffic before Open
// refuses it and the SAD drops it. Long enough for packets already on
// the wire, short enough that an undead SA cannot serve stale key.
const DefaultGrace = 2 * time.Second

// field64 backs the OTP suite's Wegman-Carter tags.
var field64 *gf2.Field

func init() {
	f, err := gf2.NewField(64)
	if err != nil {
		panic("ipsec: cannot construct GF(2^64): " + err.Error())
	}
	field64 = f
}

// SA is one unidirectional Security Association.
type SA struct {
	SPI     uint32
	Suite   CipherSuite
	Life    Lifetime
	Created time.Time

	mu          sync.Mutex
	encKey      []byte
	authKey     []byte
	seq         uint32
	bytesSealed uint64
	bytesOpened uint64

	// Cached key schedules: the AES/3DES block cipher expansion and the
	// HMAC state are built once at construction, not per packet.
	block cipher.Block
	mac   hash.Hash
	icv   [sha1.Size]byte // scratch for mac.Sum

	// Lifecycle: a rollover marks the superseded generation, which keeps
	// decrypting in-flight traffic until retireAt and is then refused.
	superseded bool
	retireAt   time.Time
	softFired  bool

	// replay window state (receiver side)
	maxSeq uint32
	window uint64

	// OTP state
	pad     []byte
	padUsed int
	wcKey   uint64

	// now is injectable for lifetime tests.
	now func() time.Time
}

// NewSA constructs a conventional-cipher SA. key must supply
// suite.KeyBits()/8 bytes (encryption key then integrity key).
func NewSA(spi uint32, suite CipherSuite, key []byte, life Lifetime) (*SA, error) {
	if suite == SuiteOTP {
		return nil, fmt.Errorf("ipsec: use NewOTPSA for the one-time-pad suite")
	}
	need := suite.KeyBits() / 8
	if len(key) != need {
		return nil, fmt.Errorf("ipsec: suite %v needs %d key bytes, got %d", suite, need, len(key))
	}
	var encLen int
	switch suite {
	case SuiteAES128CTR:
		encLen = 16
	case Suite3DESCBC:
		encLen = 24
	case SuiteNull:
		encLen = 0
	default:
		return nil, fmt.Errorf("ipsec: unknown suite %v", suite)
	}
	sa := &SA{
		SPI:     spi,
		Suite:   suite,
		Life:    life,
		Created: time.Now(),
		encKey:  append([]byte(nil), key[:encLen]...),
		authKey: append([]byte(nil), key[encLen:]...),
		now:     time.Now,
	}
	// Run the key schedules once; every Seal/Open reuses them.
	var err error
	switch suite {
	case SuiteAES128CTR:
		sa.block, err = aes.NewCipher(sa.encKey)
	case Suite3DESCBC:
		sa.block, err = des.NewTripleDESCipher(sa.encKey)
	}
	if err != nil {
		return nil, fmt.Errorf("ipsec: key schedule: %w", err)
	}
	sa.mac = hmac.New(sha1.New, sa.authKey)
	return sa, nil
}

// NewOTPSA constructs a one-time-pad SA over the given pad block —
// under IKE's QPFS extension a lockstep reservoir withdrawal, or (when
// the gateway runs against the key delivery service) a (stream,
// sequence) ticket block both ends claimed from their KDS. The
// first 8 pad bytes become the Wegman-Carter polynomial key; the rest
// encrypt and tag traffic until exhausted.
func NewOTPSA(spi uint32, pad []byte, life Lifetime) (*SA, error) {
	if len(pad) < 64 {
		return nil, fmt.Errorf("ipsec: OTP pad of %d bytes is uselessly small", len(pad))
	}
	sa := &SA{
		SPI:     spi,
		Suite:   SuiteOTP,
		Life:    life,
		Created: time.Now(),
		wcKey:   binary.LittleEndian.Uint64(pad[:8]),
		pad:     append([]byte(nil), pad[8:]...),
		now:     time.Now,
	}
	return sa, nil
}

// SetClock injects a time source (tests).
func (sa *SA) SetClock(now func() time.Time) {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	sa.now = now
	sa.Created = now()
}

// clockNow reads the SA's (possibly injected) clock.
func (sa *SA) clockNow() time.Time {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return sa.now()
}

// Expired reports whether either lifetime bound has passed. Expired SAs
// refuse to seal; IKE notices and negotiates a replacement ("key
// rollover").
func (sa *SA) Expired() bool {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return sa.expiredLocked()
}

func (sa *SA) expiredLocked() bool {
	if sa.Life.Duration > 0 && sa.now().Sub(sa.Created) >= sa.Life.Duration {
		return true
	}
	if sa.Life.Bytes > 0 && sa.bytesSealed >= sa.Life.Bytes {
		return true
	}
	if sa.Suite == SuiteOTP && sa.padUsed >= len(sa.pad) {
		return true
	}
	if sa.seq >= seqHardLimit {
		return true
	}
	return false
}

// Supersede marks this (inbound) SA as replaced by a newer rollover
// generation: Open keeps serving in-flight traffic until retireAt and
// refuses afterwards, so the tunnel drains gracefully instead of
// keeping an undead SA decrypting forever.
func (sa *SA) Supersede(retireAt time.Time) {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	if !sa.superseded {
		sa.superseded = true
		sa.retireAt = retireAt
	}
}

// Superseded reports whether a rollover has replaced this SA.
func (sa *SA) Superseded() bool {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return sa.superseded
}

// Retired reports whether the SA must no longer decrypt: superseded
// past its grace window, or hard-expired past grace on its time bound.
func (sa *SA) Retired() bool {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return sa.retiredLocked(sa.now())
}

func (sa *SA) retiredLocked(now time.Time) bool {
	if sa.superseded && now.After(sa.retireAt) {
		return true
	}
	if sa.Life.Duration > 0 && now.Sub(sa.Created) >= sa.Life.Duration+DefaultGrace {
		return true
	}
	return false
}

// SoftExpiring latches once when the SA crosses its soft-expiry
// threshold — the sequence space or byte lifetime is mostly consumed —
// and the gateway fires the rekey trigger while traffic still flows,
// so the replacement lands before the hard stop wedges the tunnel.
func (sa *SA) SoftExpiring() bool {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	if sa.softFired {
		return false
	}
	soft := sa.seq >= seqSoftLimit
	if sa.Life.Bytes > 0 && sa.bytesSealed >= sa.Life.Bytes-sa.Life.Bytes/8 {
		soft = true
	}
	if sa.Suite == SuiteOTP && sa.padUsed >= len(sa.pad)-len(sa.pad)/8 {
		soft = true
	}
	if soft {
		sa.softFired = true
	}
	return soft
}

// PadRemaining returns unconsumed OTP pad bytes (0 for other suites).
func (sa *SA) PadRemaining() int {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return len(sa.pad) - sa.padUsed
}

// Seal encapsulates payload:
//
//	conventional: SPI | seq | IV | ciphertext | HMAC-SHA1-96
//	OTP:          SPI | seq | padOffset(8) | ciphertext | WC tag(8)
func (sa *SA) Seal(payload []byte) ([]byte, error) {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	if sa.expiredLocked() {
		return nil, ErrExpired
	}
	sa.seq++
	seq := sa.seq

	if sa.Suite == SuiteOTP {
		need := len(payload) + otpTagLen
		if sa.padUsed+need > len(sa.pad) {
			return nil, ErrPadExhaust
		}
		offset := sa.padUsed
		out := make([]byte, 16+len(payload)+otpTagLen)
		binary.BigEndian.PutUint32(out[0:], sa.SPI)
		binary.BigEndian.PutUint32(out[4:], seq)
		binary.BigEndian.PutUint64(out[8:], uint64(offset))
		for i, b := range payload {
			out[16+i] = b ^ sa.pad[offset+i]
		}
		tagPad := binary.LittleEndian.Uint64(sa.pad[offset+len(payload) : offset+len(payload)+8])
		tag := wcHash(sa.wcKey, out[:16+len(payload)]) ^ tagPad
		binary.LittleEndian.PutUint64(out[16+len(payload):], tag)
		sa.padUsed += need
		sa.bytesSealed += uint64(len(payload))
		return out, nil
	}

	iv := sa.ivLocked(seq)
	ct, err := sa.crypt(payload, iv, true)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 8+len(iv)+len(ct)+icvLen)
	binary.BigEndian.PutUint32(out[0:], sa.SPI)
	binary.BigEndian.PutUint32(out[4:], seq)
	copy(out[8:], iv)
	copy(out[8+len(iv):], ct)
	copy(out[8+len(iv)+len(ct):], sa.icvLocked(out[:8+len(iv)+len(ct)]))
	sa.bytesSealed += uint64(len(payload))
	return out, nil
}

// icvLocked computes the HMAC-SHA1-96 tag with the cached MAC state.
func (sa *SA) icvLocked(body []byte) []byte {
	sa.mac.Reset()
	sa.mac.Write(body)
	return sa.mac.Sum(sa.icv[:0])[:icvLen]
}

// Open verifies, replay-checks and decrypts a sealed blob. An SA past
// its lifetime refuses to decrypt, grace-tolerantly: a superseded or
// time-expired SA keeps serving for its grace window (in-flight
// packets), then returns ErrExpired; the byte lifetime mirrors the
// sender's check-then-count order exactly, so legitimate traffic sealed
// under the bound always opens.
func (sa *SA) Open(blob []byte) ([]byte, error) {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	if len(blob) < 8 {
		return nil, fmt.Errorf("ipsec: ESP blob too short")
	}
	spi := binary.BigEndian.Uint32(blob[0:])
	if spi != sa.SPI {
		return nil, fmt.Errorf("%w: %#x", ErrUnknownSPI, spi)
	}
	if sa.retiredLocked(sa.now()) {
		return nil, ErrExpired
	}
	if sa.Life.Bytes > 0 && sa.bytesOpened >= sa.Life.Bytes {
		return nil, ErrExpired
	}
	seq := binary.BigEndian.Uint32(blob[4:])

	var payload []byte
	if sa.Suite == SuiteOTP {
		if len(blob) < 16+otpTagLen {
			return nil, fmt.Errorf("ipsec: OTP blob too short")
		}
		offset := binary.BigEndian.Uint64(blob[8:16])
		ct := blob[16 : len(blob)-otpTagLen]
		if offset+uint64(len(ct))+otpTagLen > uint64(len(sa.pad)) {
			return nil, ErrPadExhaust
		}
		tagPad := binary.LittleEndian.Uint64(sa.pad[offset+uint64(len(ct)) : offset+uint64(len(ct))+8])
		want := wcHash(sa.wcKey, blob[:len(blob)-otpTagLen]) ^ tagPad
		got := binary.LittleEndian.Uint64(blob[len(blob)-otpTagLen:])
		if want != got {
			return nil, ErrIntegrity
		}
		payload = make([]byte, len(ct))
		for i, b := range ct {
			payload[i] = b ^ sa.pad[offset+uint64(i)]
		}
	} else {
		ivLen := sa.ivLen()
		if len(blob) < 8+ivLen+icvLen {
			return nil, fmt.Errorf("ipsec: ESP blob too short")
		}
		body := blob[:len(blob)-icvLen]
		if !hmac.Equal(sa.icvLocked(body), blob[len(blob)-icvLen:]) {
			return nil, ErrIntegrity
		}
		iv := blob[8 : 8+ivLen]
		var err error
		payload, err = sa.crypt(body[8+ivLen:], iv, false)
		if err != nil {
			return nil, err
		}
	}

	// Anti-replay: accept only inside a 64-wide sliding window, each
	// sequence number at most once. Checked after integrity so forged
	// sequence numbers cannot poison the window.
	if err := sa.replayCheckLocked(seq); err != nil {
		return nil, err
	}
	sa.bytesOpened += uint64(len(payload))
	return payload, nil
}

// replayCheckLocked implements the RFC 2401 sliding window.
func (sa *SA) replayCheckLocked(seq uint32) error {
	const windowSize = 64
	switch {
	case seq == 0:
		return ErrReplay
	case seq > sa.maxSeq:
		shift := seq - sa.maxSeq
		if shift >= windowSize {
			sa.window = 0
		} else {
			sa.window <<= shift
		}
		sa.window |= 1
		sa.maxSeq = seq
	default:
		diff := sa.maxSeq - seq
		if diff >= windowSize {
			return ErrReplay
		}
		bit := uint64(1) << diff
		if sa.window&bit != 0 {
			return ErrReplay
		}
		sa.window |= bit
	}
	return nil
}

func (sa *SA) ivLen() int {
	switch sa.Suite {
	case SuiteAES128CTR:
		return 16
	case Suite3DESCBC:
		return 8
	default:
		return 0
	}
}

// ivLocked derives a fresh IV from the sequence number and SPI —
// deterministic, never reused within an SA.
func (sa *SA) ivLocked(seq uint32) []byte {
	n := sa.ivLen()
	if n == 0 {
		return nil
	}
	iv := make([]byte, n)
	binary.BigEndian.PutUint32(iv, sa.SPI)
	binary.BigEndian.PutUint32(iv[4:], seq)
	return iv
}

// crypt runs the conventional cipher in the indicated direction, on the
// key schedule cached at construction.
func (sa *SA) crypt(data, iv []byte, encrypt bool) ([]byte, error) {
	switch sa.Suite {
	case SuiteNull:
		return append([]byte(nil), data...), nil
	case SuiteAES128CTR:
		out := make([]byte, len(data))
		cipher.NewCTR(sa.block, iv).XORKeyStream(out, data)
		return out, nil
	case Suite3DESCBC:
		if encrypt {
			padded := pkcs7Pad(data, sa.block.BlockSize())
			out := make([]byte, len(padded))
			cipher.NewCBCEncrypter(sa.block, iv).CryptBlocks(out, padded)
			return out, nil
		}
		if len(data)%sa.block.BlockSize() != 0 || len(data) == 0 {
			return nil, fmt.Errorf("ipsec: bad 3DES ciphertext length %d", len(data))
		}
		out := make([]byte, len(data))
		cipher.NewCBCDecrypter(sa.block, iv).CryptBlocks(out, data)
		return pkcs7Unpad(out, sa.block.BlockSize())
	}
	return nil, fmt.Errorf("ipsec: suite %v cannot crypt", sa.Suite)
}

func pkcs7Pad(data []byte, block int) []byte {
	n := block - len(data)%block
	out := make([]byte, len(data)+n)
	copy(out, data)
	for i := len(data); i < len(out); i++ {
		out[i] = byte(n)
	}
	return out
}

func pkcs7Unpad(data []byte, block int) ([]byte, error) {
	if len(data) == 0 || len(data)%block != 0 {
		return nil, fmt.Errorf("ipsec: bad padded length")
	}
	n := int(data[len(data)-1])
	if n == 0 || n > block || n > len(data) {
		return nil, fmt.Errorf("ipsec: bad padding")
	}
	for _, b := range data[len(data)-n:] {
		if int(b) != n {
			return nil, fmt.Errorf("ipsec: bad padding")
		}
	}
	return data[:len(data)-n], nil
}

// wcHash is the GF(2^64) polynomial hash used for OTP integrity tags.
func wcHash(key uint64, msg []byte) uint64 {
	k := []uint64{key}
	acc := []uint64{0}
	var block [8]byte
	for off := 0; off < len(msg); off += 8 {
		n := copy(block[:], msg[off:])
		for i := n; i < 8; i++ {
			block[i] = 0
		}
		acc = field64.Mul(acc, k)
		acc[0] ^= binary.LittleEndian.Uint64(block[:])
	}
	acc = field64.Mul(acc, k)
	acc[0] ^= uint64(len(msg))
	acc = field64.Mul(acc, k)
	return acc[0]
}
