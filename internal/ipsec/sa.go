package ipsec

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/des"
	"crypto/hmac"
	"crypto/sha1"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"sync"
	"time"

	"qkd/internal/gf2"
)

// CipherSuite selects the transform protecting an SA's traffic.
type CipherSuite int

const (
	// SuiteAES128CTR protects with AES-128 in counter mode plus
	// HMAC-SHA1-96 integrity — the paper's "conventional symmetric
	// ciphers ... with continual and automatic reseeding by fresh QKD
	// bits" path.
	SuiteAES128CTR CipherSuite = iota
	// Suite3DESCBC is the 2003-era default VPN transform (Section 3
	// names 3DES/SHA1), kept for fidelity and comparison.
	Suite3DESCBC
	// SuiteOTP is the paper's one-time-pad extension: Vernam cipher
	// over QKD pad material with an information-theoretic
	// (Wegman-Carter) integrity tag.
	SuiteOTP
	// SuiteNull applies integrity but no confidentiality (testing).
	SuiteNull
)

func (c CipherSuite) String() string {
	switch c {
	case SuiteAES128CTR:
		return "aes128-ctr+hmac-sha1"
	case Suite3DESCBC:
		return "3des-cbc+hmac-sha1"
	case SuiteOTP:
		return "otp+wegman-carter"
	case SuiteNull:
		return "null+hmac-sha1"
	}
	return fmt.Sprintf("CipherSuite(%d)", int(c))
}

// KeyBits returns the secret material an SA of this suite consumes at
// establishment (encryption plus integrity key), excluding OTP pads.
func (c CipherSuite) KeyBits() int {
	switch c {
	case SuiteAES128CTR:
		return (16 + 20) * 8
	case Suite3DESCBC:
		return (24 + 20) * 8
	case SuiteOTP:
		return 64 // Wegman-Carter polynomial key
	case SuiteNull:
		return 20 * 8
	}
	return 0
}

// Lifetime bounds an SA's validity, "expressed either in time (seconds)
// or in data encrypted (kilobytes)" (Section 7). Zero fields mean
// unbounded.
type Lifetime struct {
	Duration time.Duration
	Bytes    uint64
}

// Errors from SA processing.
var (
	ErrReplay     = errors.New("ipsec: replayed or stale sequence number")
	ErrIntegrity  = errors.New("ipsec: integrity check failed")
	ErrExpired    = errors.New("ipsec: security association expired")
	ErrPadExhaust = errors.New("ipsec: one-time pad exhausted")
	ErrNoSA       = errors.New("ipsec: no security association for policy")
	ErrNoPolicy   = errors.New("ipsec: no policy matches packet")
	ErrDiscard    = errors.New("ipsec: policy discards packet")
	ErrUnknownSPI = errors.New("ipsec: unknown SPI")
)

const icvLen = 12 // HMAC-SHA1-96
const otpTagLen = 8

// Sequence-number lifecycle bounds. ESP sequence numbers are 32 bits
// and must never wrap: seq 0 is the replay sentinel, so a wrapped
// sender would have every subsequent packet dropped and the receiver
// window poisoned at the far edge. Seal therefore hard-stops (with
// ErrExpired, so the gateway treats it as any other lifetime expiry and
// rekeys) at seqHardLimit, and the SA starts signalling for a rekey a
// soft margin earlier so IKE can roll the tunnel over before the stop.
const (
	seqHardLimit  = ^uint32(0)
	seqSoftMargin = 1 << 16
	seqSoftLimit  = seqHardLimit - seqSoftMargin
)

// DefaultGrace is the supersession tolerance: how long a replaced or
// expired inbound SA keeps decrypting in-flight traffic before Open
// refuses it and the SAD drops it. Long enough for packets already on
// the wire, short enough that an undead SA cannot serve stale key.
const DefaultGrace = 2 * time.Second

// field64 backs the OTP suite's Wegman-Carter tags.
var field64 *gf2.Field

func init() {
	f, err := gf2.NewField(64)
	if err != nil {
		panic("ipsec: cannot construct GF(2^64): " + err.Error())
	}
	field64 = f
}

// SA is one unidirectional Security Association.
type SA struct {
	SPI     uint32
	Suite   CipherSuite
	Life    Lifetime
	Created time.Time

	mu          sync.Mutex
	encKey      []byte
	authKey     []byte
	seq         uint32
	bytesSealed uint64
	bytesOpened uint64

	// Cached key schedules: the AES/3DES block cipher expansion and the
	// HMAC state are built once at construction, not per packet.
	block cipher.Block
	mac   hash.Hash
	icv   [sha1.Size]byte // scratch for mac.Sum

	// Lifecycle: a rollover marks the superseded generation, which keeps
	// decrypting in-flight traffic until retireAt and is then refused.
	superseded bool
	retireAt   time.Time
	softFired  bool

	// replay window state (receiver side)
	maxSeq uint32
	window uint64

	// OTP state. wcTab is the per-key nibble table behind the
	// Wegman-Carter hash (built once at construction, see buildWCTable).
	pad     []byte
	padUsed int
	wcKey   uint64
	wcTab   *[16][16]uint64

	// now is injectable for lifetime tests.
	now func() time.Time
}

// NewSA constructs a conventional-cipher SA. key must supply
// suite.KeyBits()/8 bytes (encryption key then integrity key).
func NewSA(spi uint32, suite CipherSuite, key []byte, life Lifetime) (*SA, error) {
	if suite == SuiteOTP {
		return nil, fmt.Errorf("ipsec: use NewOTPSA for the one-time-pad suite")
	}
	need := suite.KeyBits() / 8
	if len(key) != need {
		return nil, fmt.Errorf("ipsec: suite %v needs %d key bytes, got %d", suite, need, len(key))
	}
	var encLen int
	switch suite {
	case SuiteAES128CTR:
		encLen = 16
	case Suite3DESCBC:
		encLen = 24
	case SuiteNull:
		encLen = 0
	default:
		return nil, fmt.Errorf("ipsec: unknown suite %v", suite)
	}
	sa := &SA{
		SPI:     spi,
		Suite:   suite,
		Life:    life,
		encKey:  append([]byte(nil), key[:encLen]...),
		authKey: append([]byte(nil), key[encLen:]...),
		now:     time.Now,
	}
	// Stamp through the SA's own clock so a later SetClock rebase and
	// the construction stamp agree on one time source.
	sa.Created = sa.now()
	// Run the key schedules once; every Seal/Open reuses them.
	var err error
	switch suite {
	case SuiteAES128CTR:
		sa.block, err = aes.NewCipher(sa.encKey)
	case Suite3DESCBC:
		sa.block, err = des.NewTripleDESCipher(sa.encKey)
	}
	if err != nil {
		return nil, fmt.Errorf("ipsec: key schedule: %w", err)
	}
	sa.mac = hmac.New(sha1.New, sa.authKey)
	return sa, nil
}

// NewOTPSA constructs a one-time-pad SA over the given pad block —
// under IKE's QPFS extension a lockstep reservoir withdrawal, or (when
// the gateway runs against the key delivery service) a (stream,
// sequence) ticket block both ends claimed from their KDS. The
// first 8 pad bytes become the Wegman-Carter polynomial key; the rest
// encrypt and tag traffic until exhausted.
func NewOTPSA(spi uint32, pad []byte, life Lifetime) (*SA, error) {
	if len(pad) < 64 {
		return nil, fmt.Errorf("ipsec: OTP pad of %d bytes is uselessly small", len(pad))
	}
	sa := &SA{
		SPI:   spi,
		Suite: SuiteOTP,
		Life:  life,
		wcKey: binary.LittleEndian.Uint64(pad[:8]),
		pad:   append([]byte(nil), pad[8:]...),
		now:   time.Now,
	}
	sa.Created = sa.now()
	sa.wcTab = buildWCTable(sa.wcKey)
	return sa, nil
}

// SetClock injects a time source (tests).
func (sa *SA) SetClock(now func() time.Time) {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	sa.now = now
	sa.Created = now()
}

// clockNow reads the SA's (possibly injected) clock.
func (sa *SA) clockNow() time.Time {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return sa.now()
}

// Expired reports whether either lifetime bound has passed. Expired SAs
// refuse to seal; IKE notices and negotiates a replacement ("key
// rollover").
func (sa *SA) Expired() bool {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return sa.expiredLocked()
}

func (sa *SA) expiredLocked() bool {
	if sa.Life.Duration > 0 && sa.now().Sub(sa.Created) >= sa.Life.Duration {
		return true
	}
	if sa.Life.Bytes > 0 && sa.bytesSealed >= sa.Life.Bytes {
		return true
	}
	if sa.Suite == SuiteOTP && sa.padUsed >= len(sa.pad) {
		return true
	}
	if sa.seq >= seqHardLimit {
		return true
	}
	return false
}

// Supersede marks this (inbound) SA as replaced by a newer rollover
// generation: Open keeps serving in-flight traffic until retireAt and
// refuses afterwards, so the tunnel drains gracefully instead of
// keeping an undead SA decrypting forever.
func (sa *SA) Supersede(retireAt time.Time) {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	if !sa.superseded {
		sa.superseded = true
		sa.retireAt = retireAt
	}
}

// Superseded reports whether a rollover has replaced this SA.
func (sa *SA) Superseded() bool {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return sa.superseded
}

// Retired reports whether the SA must no longer decrypt: superseded
// past its grace window, or hard-expired past grace on its time bound.
func (sa *SA) Retired() bool {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return sa.retiredLocked(sa.now())
}

func (sa *SA) retiredLocked(now time.Time) bool {
	if sa.superseded && now.After(sa.retireAt) {
		return true
	}
	if sa.Life.Duration > 0 && now.Sub(sa.Created) >= sa.Life.Duration+DefaultGrace {
		return true
	}
	return false
}

// SoftExpiring latches once when the SA crosses its soft-expiry
// threshold — the sequence space or byte lifetime is mostly consumed —
// and the gateway fires the rekey trigger while traffic still flows,
// so the replacement lands before the hard stop wedges the tunnel.
func (sa *SA) SoftExpiring() bool {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	if sa.softFired {
		return false
	}
	soft := sa.seq >= seqSoftLimit
	if sa.Life.Bytes > 0 && sa.bytesSealed >= sa.Life.Bytes-sa.Life.Bytes/8 {
		soft = true
	}
	if sa.Suite == SuiteOTP && sa.padUsed >= len(sa.pad)-len(sa.pad)/8 {
		soft = true
	}
	if soft {
		sa.softFired = true
	}
	return soft
}

// PadRemaining returns unconsumed OTP pad bytes (0 for other suites).
func (sa *SA) PadRemaining() int {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return len(sa.pad) - sa.padUsed
}

// appendZeros extends b by n writable bytes, reusing spare capacity
// when there is any (the reused region may hold stale bytes — callers
// overwrite every byte they take). This is what lets a pooled arena
// absorb a whole burst of sealed packets with no per-packet make.
func appendZeros(b []byte, n int) []byte {
	if n <= cap(b)-len(b) {
		return b[:len(b)+n]
	}
	nb := make([]byte, len(b)+n, 2*cap(b)+n)
	copy(nb, b)
	return nb
}

// Seal encapsulates payload:
//
//	conventional: SPI | seq | IV | ciphertext | HMAC-SHA1-96
//	OTP:          SPI | seq | padOffset(8) | ciphertext | WC tag(8)
func (sa *SA) Seal(payload []byte) ([]byte, error) {
	return sa.SealAppend(nil, payload)
}

// SealAppend is Seal in append style: the sealed blob is appended to
// dst (which may be nil) and the extended slice returned. Threading
// one reusable buffer through marshal and seal is how the batched
// gateway path kills the per-packet allocations; on error dst is
// returned unextended.
func (sa *SA) SealAppend(dst, payload []byte) ([]byte, error) {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return sa.sealAppendLocked(dst, payload)
}

func (sa *SA) sealAppendLocked(dst, payload []byte) ([]byte, error) {
	if sa.expiredLocked() {
		return dst, ErrExpired
	}
	sa.seq++
	seq := sa.seq

	if sa.Suite == SuiteOTP {
		need := len(payload) + otpTagLen
		if sa.padUsed+need > len(sa.pad) {
			return dst, ErrPadExhaust
		}
		offset := sa.padUsed
		start := len(dst)
		dst = appendZeros(dst, 16+len(payload)+otpTagLen)
		out := dst[start:]
		binary.BigEndian.PutUint32(out[0:], sa.SPI)
		binary.BigEndian.PutUint32(out[4:], seq)
		binary.BigEndian.PutUint64(out[8:], uint64(offset))
		subtle.XORBytes(out[16:16+len(payload)], payload, sa.pad[offset:offset+len(payload)])
		tagPad := binary.LittleEndian.Uint64(sa.pad[offset+len(payload) : offset+len(payload)+8])
		tag := wcHashTab(sa.wcTab, out[:16+len(payload)]) ^ tagPad
		binary.LittleEndian.PutUint64(out[16+len(payload):], tag)
		sa.padUsed += need
		sa.bytesSealed += uint64(len(payload))
		return dst, nil
	}

	ivLen := sa.ivLen()
	ctLen := len(payload)
	if sa.Suite == Suite3DESCBC {
		bs := sa.block.BlockSize()
		ctLen = len(payload) + bs - len(payload)%bs
	}
	start := len(dst)
	dst = appendZeros(dst, 8+ivLen+ctLen+icvLen)
	out := dst[start:]
	binary.BigEndian.PutUint32(out[0:], sa.SPI)
	binary.BigEndian.PutUint32(out[4:], seq)
	var iv [16]byte
	binary.BigEndian.PutUint32(iv[:], sa.SPI)
	binary.BigEndian.PutUint32(iv[4:], seq)
	copy(out[8:], iv[:ivLen])
	ct := out[8+ivLen : 8+ivLen+ctLen]
	switch sa.Suite {
	case SuiteNull:
		copy(ct, payload)
	case SuiteAES128CTR:
		cipher.NewCTR(sa.block, iv[:ivLen]).XORKeyStream(ct, payload)
	case Suite3DESCBC:
		copy(ct, payload)
		padB := byte(ctLen - len(payload))
		for i := len(payload); i < ctLen; i++ {
			ct[i] = padB
		}
		cipher.NewCBCEncrypter(sa.block, iv[:ivLen]).CryptBlocks(ct, ct)
	default:
		return dst[:start], fmt.Errorf("ipsec: suite %v cannot seal", sa.Suite)
	}
	copy(out[8+ivLen+ctLen:], sa.icvLocked(out[:8+ivLen+ctLen]))
	sa.bytesSealed += uint64(len(payload))
	return dst, nil
}

// icvLocked computes the HMAC-SHA1-96 tag with the cached MAC state.
func (sa *SA) icvLocked(body []byte) []byte {
	sa.mac.Reset()
	sa.mac.Write(body)
	return sa.mac.Sum(sa.icv[:0])[:icvLen]
}

// Open verifies, replay-checks and decrypts a sealed blob. An SA past
// its lifetime refuses to decrypt, grace-tolerantly: a superseded or
// time-expired SA keeps serving for its grace window (in-flight
// packets), then returns ErrExpired; the byte lifetime mirrors the
// sender's check-then-count order exactly, so legitimate traffic sealed
// under the bound always opens.
func (sa *SA) Open(blob []byte) ([]byte, error) {
	out, err := sa.OpenAppend(nil, blob)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// OpenAppend is Open in append style: the recovered payload is
// appended to dst (which may be nil) and the extended slice returned.
// On error dst comes back unextended, so a batch arena never keeps
// half-decrypted bytes.
func (sa *SA) OpenAppend(dst, blob []byte) ([]byte, error) {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return sa.openAppendLocked(dst, blob)
}

func (sa *SA) openAppendLocked(dst, blob []byte) ([]byte, error) {
	if len(blob) < 8 {
		return dst, fmt.Errorf("ipsec: ESP blob too short")
	}
	spi := binary.BigEndian.Uint32(blob[0:])
	if spi != sa.SPI {
		return dst, fmt.Errorf("%w: %#x", ErrUnknownSPI, spi)
	}
	if sa.retiredLocked(sa.now()) {
		return dst, ErrExpired
	}
	if sa.Life.Bytes > 0 && sa.bytesOpened >= sa.Life.Bytes {
		return dst, ErrExpired
	}
	seq := binary.BigEndian.Uint32(blob[4:])

	start := len(dst)
	if sa.Suite == SuiteOTP {
		if len(blob) < 16+otpTagLen {
			return dst, fmt.Errorf("ipsec: OTP blob too short")
		}
		offset := binary.BigEndian.Uint64(blob[8:16])
		ct := blob[16 : len(blob)-otpTagLen]
		// The offset is attacker-controlled: bound it before any
		// arithmetic on it, since offset+len(ct)+otpTagLen can wrap
		// uint64, slip past the range check, and panic slicing the pad.
		if offset > uint64(len(sa.pad)) ||
			offset+uint64(len(ct))+otpTagLen > uint64(len(sa.pad)) {
			return dst, ErrPadExhaust
		}
		tagPad := binary.LittleEndian.Uint64(sa.pad[offset+uint64(len(ct)) : offset+uint64(len(ct))+8])
		want := wcHashTab(sa.wcTab, blob[:len(blob)-otpTagLen]) ^ tagPad
		got := binary.LittleEndian.Uint64(blob[len(blob)-otpTagLen:])
		if want != got {
			return dst, ErrIntegrity
		}
		dst = appendZeros(dst, len(ct))
		subtle.XORBytes(dst[start:], ct, sa.pad[offset:offset+uint64(len(ct))])
	} else {
		ivLen := sa.ivLen()
		if len(blob) < 8+ivLen+icvLen {
			return dst, fmt.Errorf("ipsec: ESP blob too short")
		}
		body := blob[:len(blob)-icvLen]
		if !hmac.Equal(sa.icvLocked(body), blob[len(blob)-icvLen:]) {
			return dst, ErrIntegrity
		}
		iv := blob[8 : 8+ivLen]
		data := body[8+ivLen:]
		switch sa.Suite {
		case SuiteNull:
			dst = append(dst, data...)
		case SuiteAES128CTR:
			dst = appendZeros(dst, len(data))
			cipher.NewCTR(sa.block, iv).XORKeyStream(dst[start:], data)
		case Suite3DESCBC:
			bs := sa.block.BlockSize()
			if len(data)%bs != 0 || len(data) == 0 {
				return dst[:start], fmt.Errorf("ipsec: bad 3DES ciphertext length %d", len(data))
			}
			dst = appendZeros(dst, len(data))
			cipher.NewCBCDecrypter(sa.block, iv).CryptBlocks(dst[start:], data)
			plain, err := pkcs7Unpad(dst[start:], bs)
			if err != nil {
				return dst[:start], err
			}
			dst = dst[:start+len(plain)]
		default:
			return dst, fmt.Errorf("ipsec: suite %v cannot open", sa.Suite)
		}
	}

	// Anti-replay: accept only inside a 64-wide sliding window, each
	// sequence number at most once. Checked after integrity so forged
	// sequence numbers cannot poison the window.
	if err := sa.replayCheckLocked(seq); err != nil {
		return dst[:start], err
	}
	sa.bytesOpened += uint64(len(dst) - start)
	return dst, nil
}

// replayCheckLocked implements the RFC 2401 sliding window.
func (sa *SA) replayCheckLocked(seq uint32) error {
	const windowSize = 64
	switch {
	case seq == 0:
		return ErrReplay
	case seq > sa.maxSeq:
		shift := seq - sa.maxSeq
		if shift >= windowSize {
			sa.window = 0
		} else {
			sa.window <<= shift
		}
		sa.window |= 1
		sa.maxSeq = seq
	default:
		diff := sa.maxSeq - seq
		if diff >= windowSize {
			return ErrReplay
		}
		bit := uint64(1) << diff
		if sa.window&bit != 0 {
			return ErrReplay
		}
		sa.window |= bit
	}
	return nil
}

func (sa *SA) ivLen() int {
	switch sa.Suite {
	case SuiteAES128CTR:
		return 16
	case Suite3DESCBC:
		return 8
	default:
		return 0
	}
}

func pkcs7Unpad(data []byte, block int) ([]byte, error) {
	if len(data) == 0 || len(data)%block != 0 {
		return nil, fmt.Errorf("ipsec: bad padded length")
	}
	n := int(data[len(data)-1])
	if n == 0 || n > block || n > len(data) {
		return nil, fmt.Errorf("ipsec: bad padding")
	}
	for _, b := range data[len(data)-n:] {
		if int(b) != n {
			return nil, fmt.Errorf("ipsec: bad padding")
		}
	}
	return data[:len(data)-n], nil
}

// wcHash is the GF(2^64) polynomial hash used for OTP integrity tags
// (Horner over 8-byte little-endian blocks, zero-padded tail, length
// mixed in last). This slice-based form is the reference the packet
// path's table-driven wcHashTab is pinned against in tests.
func wcHash(key uint64, msg []byte) uint64 {
	k := []uint64{key}
	acc := []uint64{0}
	var block [8]byte
	for off := 0; off < len(msg); off += 8 {
		n := copy(block[:], msg[off:])
		for i := n; i < 8; i++ {
			block[i] = 0
		}
		acc = field64.Mul(acc, k)
		acc[0] ^= binary.LittleEndian.Uint64(block[:])
	}
	acc = field64.Mul(acc, k)
	acc[0] ^= uint64(len(msg))
	acc = field64.Mul(acc, k)
	return acc[0]
}

// buildWCTable precomputes the multiply-by-key nibble tables for one
// Wegman-Carter key (the GHASH software trick): tab[p][v] is
// (v·x^(4p))·key in GF(2^64), so a field multiplication by key
// becomes 16 table loads xored together — no allocation, no
// reduction. 2 KiB per OTP SA, built once at construction.
func buildWCTable(key uint64) *[16][16]uint64 {
	var tab [16][16]uint64
	for v := uint64(1); v < 16; v++ {
		tab[0][v] = field64.Mul64(v, key)
	}
	for p := 1; p < 16; p++ {
		for v := 1; v < 16; v++ {
			tab[p][v] = field64.Mul64(tab[p-1][v], 0x10) // shift up one nibble: ·x^4
		}
	}
	return &tab
}

// wcMul is one multiply-by-key step against the precomputed tables.
func wcMul(tab *[16][16]uint64, x uint64) uint64 {
	return tab[0][x&15] ^ tab[1][x>>4&15] ^ tab[2][x>>8&15] ^ tab[3][x>>12&15] ^
		tab[4][x>>16&15] ^ tab[5][x>>20&15] ^ tab[6][x>>24&15] ^ tab[7][x>>28&15] ^
		tab[8][x>>32&15] ^ tab[9][x>>36&15] ^ tab[10][x>>40&15] ^ tab[11][x>>44&15] ^
		tab[12][x>>48&15] ^ tab[13][x>>52&15] ^ tab[14][x>>56&15] ^ tab[15][x>>60]
}

// wcHashTab is wcHash evaluated against a key's precomputed tables —
// the packet-rate form: word-wide loads, zero allocations.
func wcHashTab(tab *[16][16]uint64, msg []byte) uint64 {
	var acc uint64
	n := len(msg)
	for len(msg) >= 8 {
		acc = wcMul(tab, acc) ^ binary.LittleEndian.Uint64(msg)
		msg = msg[8:]
	}
	if len(msg) > 0 {
		var block [8]byte
		copy(block[:], msg)
		acc = wcMul(tab, acc) ^ binary.LittleEndian.Uint64(block[:])
	}
	acc = wcMul(tab, acc) ^ uint64(n)
	return wcMul(tab, acc)
}
