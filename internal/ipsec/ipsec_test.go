package ipsec

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"qkd/internal/rng"
)

func randKey(n int, seed uint64) []byte {
	k := make([]byte, n)
	rng.NewSplitMix64(seed).Bytes(k)
	return k
}

func TestAddrPrefixParsing(t *testing.T) {
	a, err := ParseAddr("192.1.99.35")
	if err != nil || a.String() != "192.1.99.35" {
		t.Fatalf("ParseAddr: %v %v", a, err)
	}
	if _, err := ParseAddr("300.1.1.1"); err == nil {
		t.Error("accepted out-of-range octet")
	}
	p, err := ParsePrefix("10.0.0.0/8")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Contains(MustAddr("10.200.3.4")) {
		t.Error("prefix should contain 10.200.3.4")
	}
	if p.Contains(MustAddr("11.0.0.1")) {
		t.Error("prefix should not contain 11.0.0.1")
	}
	all := MustPrefix("0.0.0.0/0")
	if !all.Contains(MustAddr("255.255.255.255")) {
		t.Error("/0 must contain everything")
	}
	host := MustPrefix("10.1.2.3/32")
	if !host.Contains(MustAddr("10.1.2.3")) || host.Contains(MustAddr("10.1.2.4")) {
		t.Error("/32 must match exactly one host")
	}
}

func TestPacketRoundTrip(t *testing.T) {
	p := &Packet{
		Src: MustAddr("10.0.1.2"), Dst: MustAddr("10.0.2.3"),
		Proto: ProtoTCP, ID: 777, Payload: []byte("data"),
	}
	q, err := UnmarshalPacket(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if q.Src != p.Src || q.Dst != p.Dst || q.Proto != p.Proto || q.ID != p.ID ||
		!bytes.Equal(q.Payload, p.Payload) {
		t.Fatalf("round trip mismatch: %+v", q)
	}
	if _, err := UnmarshalPacket([]byte{1, 2, 3}); err == nil {
		t.Error("short packet accepted")
	}
	bad := p.Marshal()
	bad[2] = 0xFF // corrupt length
	if _, err := UnmarshalPacket(bad); err == nil {
		t.Error("bad length accepted")
	}
}

func TestSPDFirstMatchWins(t *testing.T) {
	specific := &Policy{Name: "specific", Action: Discard,
		Sel: Selector{Src: MustPrefix("10.0.1.0/24"), Dst: MustPrefix("10.0.2.5/32")}}
	general := &Policy{Name: "general", Action: Protect,
		Sel: Selector{Src: MustPrefix("10.0.1.0/24"), Dst: MustPrefix("10.0.2.0/24")}}
	spd := NewSPD(specific, general)
	p := &Packet{Src: MustAddr("10.0.1.9"), Dst: MustAddr("10.0.2.5")}
	if got := spd.Match(p); got != specific {
		t.Errorf("matched %v, want specific", got)
	}
	p.Dst = MustAddr("10.0.2.6")
	if got := spd.Match(p); got != general {
		t.Errorf("matched %v, want general", got)
	}
	p.Src = MustAddr("192.168.0.1")
	if got := spd.Match(p); got != nil {
		t.Errorf("matched %v, want nil", got)
	}
}

func TestSelectorProtoFilter(t *testing.T) {
	sel := Selector{Src: MustPrefix("0.0.0.0/0"), Dst: MustPrefix("0.0.0.0/0"), Proto: ProtoUDP}
	if sel.Matches(&Packet{Proto: ProtoTCP}) {
		t.Error("UDP selector matched TCP")
	}
	if !sel.Matches(&Packet{Proto: ProtoUDP}) {
		t.Error("UDP selector missed UDP")
	}
}

func sealOpenSuite(t *testing.T, suite CipherSuite) {
	t.Helper()
	key := randKey(suite.KeyBits()/8, 1)
	tx, err := NewSA(100, suite, key, Lifetime{})
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewSA(100, suite, key, Lifetime{})
	if err != nil {
		t.Fatal(err)
	}
	for _, payload := range [][]byte{{}, []byte("x"), []byte("hello ipsec world"), make([]byte, 1500)} {
		blob, err := tx.Seal(payload)
		if err != nil {
			t.Fatalf("Seal: %v", err)
		}
		got, err := rx.Open(blob)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload mismatch: %d vs %d bytes", len(got), len(payload))
		}
	}
}

func TestSealOpenAES(t *testing.T)  { sealOpenSuite(t, SuiteAES128CTR) }
func TestSealOpen3DES(t *testing.T) { sealOpenSuite(t, Suite3DESCBC) }
func TestSealOpenNull(t *testing.T) { sealOpenSuite(t, SuiteNull) }

func TestSealOpenOTP(t *testing.T) {
	pad := randKey(4096, 2)
	tx, err := NewOTPSA(200, pad, Lifetime{})
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewOTPSA(200, pad, Lifetime{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		payload := []byte("top secret payload")
		blob, err := tx.Seal(payload)
		if err != nil {
			t.Fatalf("Seal %d: %v", i, err)
		}
		got, err := rx.Open(blob)
		if err != nil {
			t.Fatalf("Open %d: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("payload mismatch")
		}
	}
}

func TestOTPCiphertextNotPlaintext(t *testing.T) {
	pad := randKey(4096, 3)
	tx, _ := NewOTPSA(201, pad, Lifetime{})
	payload := bytes.Repeat([]byte{0xAA}, 64)
	blob, err := tx.Seal(payload)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob, payload[:16]) {
		t.Error("OTP ciphertext contains plaintext run")
	}
}

func TestOTPPadExhaustion(t *testing.T) {
	// 8 bytes WC key + 192 bytes of pad: each 16-byte payload costs
	// 16+8=24 pad bytes, so exactly 8 packets fit.
	pad := randKey(200, 4)
	tx, _ := NewOTPSA(202, pad, Lifetime{})
	sent := 0
	for i := 0; i < 100; i++ {
		_, err := tx.Seal(make([]byte, 16))
		if err != nil {
			if !errors.Is(err, ErrPadExhaust) && !errors.Is(err, ErrExpired) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		sent++
	}
	if sent != 8 {
		t.Errorf("sent %d packets, want 8", sent)
	}
	if tx.PadRemaining() >= 24 {
		t.Errorf("PadRemaining = %d after exhaustion", tx.PadRemaining())
	}
}

func TestTamperDetected(t *testing.T) {
	for _, suite := range []CipherSuite{SuiteAES128CTR, Suite3DESCBC, SuiteNull} {
		key := randKey(suite.KeyBits()/8, 5)
		tx, _ := NewSA(300, suite, key, Lifetime{})
		rx, _ := NewSA(300, suite, key, Lifetime{})
		blob, _ := tx.Seal([]byte("authentic"))
		blob[10] ^= 1
		if _, err := rx.Open(blob); !errors.Is(err, ErrIntegrity) {
			t.Errorf("%v: tamper err = %v, want ErrIntegrity", suite, err)
		}
	}
	// OTP tamper.
	pad := randKey(1024, 6)
	tx, _ := NewOTPSA(301, pad, Lifetime{})
	rx, _ := NewOTPSA(301, pad, Lifetime{})
	blob, _ := tx.Seal([]byte("authentic"))
	blob[18] ^= 1
	if _, err := rx.Open(blob); !errors.Is(err, ErrIntegrity) {
		t.Errorf("OTP tamper err = %v, want ErrIntegrity", err)
	}
}

func TestReplayRejected(t *testing.T) {
	key := randKey(SuiteAES128CTR.KeyBits()/8, 7)
	tx, _ := NewSA(400, SuiteAES128CTR, key, Lifetime{})
	rx, _ := NewSA(400, SuiteAES128CTR, key, Lifetime{})
	blob, _ := tx.Seal([]byte("once"))
	if _, err := rx.Open(blob); err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Open(blob); !errors.Is(err, ErrReplay) {
		t.Errorf("replay err = %v, want ErrReplay", err)
	}
}

func TestReplayWindowAllowsModestReorder(t *testing.T) {
	key := randKey(SuiteAES128CTR.KeyBits()/8, 8)
	tx, _ := NewSA(401, SuiteAES128CTR, key, Lifetime{})
	rx, _ := NewSA(401, SuiteAES128CTR, key, Lifetime{})
	var blobs [][]byte
	for i := 0; i < 10; i++ {
		b, _ := tx.Seal([]byte{byte(i)})
		blobs = append(blobs, b)
	}
	// Deliver out of order: 0,3,1,2,9,4.
	for _, i := range []int{0, 3, 1, 2, 9, 4} {
		if _, err := rx.Open(blobs[i]); err != nil {
			t.Fatalf("reordered packet %d rejected: %v", i, err)
		}
	}
	// Re-delivery of 3 must now fail.
	if _, err := rx.Open(blobs[3]); !errors.Is(err, ErrReplay) {
		t.Errorf("replayed packet 3: %v", err)
	}
}

func TestReplayWindowDropsAncient(t *testing.T) {
	key := randKey(SuiteAES128CTR.KeyBits()/8, 9)
	tx, _ := NewSA(402, SuiteAES128CTR, key, Lifetime{})
	rx, _ := NewSA(402, SuiteAES128CTR, key, Lifetime{})
	first, _ := tx.Seal([]byte("old"))
	for i := 0; i < 100; i++ {
		b, _ := tx.Seal([]byte("new"))
		if _, err := rx.Open(b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rx.Open(first); !errors.Is(err, ErrReplay) {
		t.Errorf("ancient packet: %v, want ErrReplay", err)
	}
}

func TestLifetimeBytes(t *testing.T) {
	key := randKey(SuiteAES128CTR.KeyBits()/8, 10)
	sa, _ := NewSA(500, SuiteAES128CTR, key, Lifetime{Bytes: 100})
	if _, err := sa.Seal(make([]byte, 60)); err != nil {
		t.Fatal(err)
	}
	if _, err := sa.Seal(make([]byte, 60)); err != nil {
		t.Fatal(err) // crosses the limit during this call; next fails
	}
	if !sa.Expired() {
		t.Error("SA not expired after byte lifetime")
	}
	if _, err := sa.Seal([]byte("x")); !errors.Is(err, ErrExpired) {
		t.Errorf("Seal on expired SA: %v", err)
	}
}

func TestLifetimeDuration(t *testing.T) {
	key := randKey(SuiteAES128CTR.KeyBits()/8, 11)
	sa, _ := NewSA(501, SuiteAES128CTR, key, Lifetime{Duration: time.Minute})
	now := time.Unix(1000, 0)
	sa.SetClock(func() time.Time { return now })
	if sa.Expired() {
		t.Fatal("expired immediately")
	}
	now = now.Add(61 * time.Second)
	if !sa.Expired() {
		t.Error("not expired after lifetime elapsed")
	}
}

func TestNewSAValidation(t *testing.T) {
	if _, err := NewSA(1, SuiteAES128CTR, make([]byte, 5), Lifetime{}); err == nil {
		t.Error("short key accepted")
	}
	if _, err := NewSA(1, SuiteOTP, make([]byte, 8), Lifetime{}); err == nil {
		t.Error("NewSA accepted OTP suite")
	}
	if _, err := NewOTPSA(1, make([]byte, 10), Lifetime{}); err == nil {
		t.Error("tiny pad accepted")
	}
}

// buildGatewayPair returns two gateways with mirror policies protecting
// enclave A (10.1.0.0/16) <-> enclave B (10.2.0.0/16) traffic, with SAs
// installed both ways.
func buildGatewayPair(t *testing.T, suite CipherSuite) (*Gateway, *Gateway) {
	t.Helper()
	gwA := NewGateway(MustAddr("192.1.99.34"), NewSPD(
		&Policy{Name: "a-to-b", Action: Protect, Suite: suite,
			PeerGW: MustAddr("192.1.99.35"),
			Sel:    Selector{Src: MustPrefix("10.1.0.0/16"), Dst: MustPrefix("10.2.0.0/16")}},
		&Policy{Name: "b-to-a", Action: Protect, Suite: suite,
			PeerGW: MustAddr("192.1.99.35"),
			Sel:    Selector{Src: MustPrefix("10.2.0.0/16"), Dst: MustPrefix("10.1.0.0/16")}},
	))
	gwB := NewGateway(MustAddr("192.1.99.35"), NewSPD(
		&Policy{Name: "b-to-a", Action: Protect, Suite: suite,
			PeerGW: MustAddr("192.1.99.34"),
			Sel:    Selector{Src: MustPrefix("10.2.0.0/16"), Dst: MustPrefix("10.1.0.0/16")}},
		&Policy{Name: "a-to-b", Action: Protect, Suite: suite,
			PeerGW: MustAddr("192.1.99.34"),
			Sel:    Selector{Src: MustPrefix("10.1.0.0/16"), Dst: MustPrefix("10.2.0.0/16")}},
	))
	// Install SAs: one pair per direction.
	keyAB := randKey(suite.KeyBits()/8, 20)
	keyBA := randKey(suite.KeyBits()/8, 21)
	saOutAB, _ := NewSA(1000, suite, keyAB, Lifetime{})
	saInAB, _ := NewSA(1000, suite, keyAB, Lifetime{})
	saOutBA, _ := NewSA(2000, suite, keyBA, Lifetime{})
	saInBA, _ := NewSA(2000, suite, keyBA, Lifetime{})
	gwA.SAD.InstallOutbound("a-to-b", saOutAB)
	gwB.SAD.InstallInbound(saInAB)
	gwB.SAD.InstallOutbound("b-to-a", saOutBA)
	gwA.SAD.InstallInbound(saInBA)
	return gwA, gwB
}

func TestGatewayTunnelRoundTrip(t *testing.T) {
	gwA, gwB := buildGatewayPair(t, SuiteAES128CTR)
	inner := &Packet{
		Src: MustAddr("10.1.0.5"), Dst: MustAddr("10.2.0.9"),
		Proto: ProtoPing, ID: 42, Payload: []byte("ping"),
	}
	outer, err := gwA.ProcessOutbound(inner)
	if err != nil {
		t.Fatal(err)
	}
	if outer.Proto != ProtoESP {
		t.Fatalf("outer proto %d", outer.Proto)
	}
	if outer.Src != gwA.Local || outer.Dst != gwB.Local {
		t.Fatalf("tunnel endpoints %s -> %s", outer.Src, outer.Dst)
	}
	if bytes.Contains(outer.Payload, []byte("ping")) {
		t.Error("plaintext visible in tunnel packet")
	}
	got, err := gwB.ProcessInbound(outer)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != inner.Src || got.Dst != inner.Dst || got.ID != 42 ||
		!bytes.Equal(got.Payload, inner.Payload) {
		t.Fatalf("decapsulated packet mismatch: %+v", got)
	}
}

func TestGatewayNoSATriggersCallback(t *testing.T) {
	gwA, _ := buildGatewayPair(t, SuiteAES128CTR)
	gwA.SAD.RemoveOutbound("a-to-b", gwA.SAD.Outbound("a-to-b"))
	var triggered *Policy
	gwA.OnMissingSA = func(p *Policy) { triggered = p }
	_, err := gwA.ProcessOutbound(&Packet{
		Src: MustAddr("10.1.0.5"), Dst: MustAddr("10.2.0.9"), Proto: ProtoPing,
	})
	if !errors.Is(err, ErrNoSA) {
		t.Fatalf("err = %v, want ErrNoSA", err)
	}
	if triggered == nil || triggered.Name != "a-to-b" {
		t.Error("OnMissingSA not fired for the right policy")
	}
}

func TestGatewayDropsClearPacketForProtectedFlow(t *testing.T) {
	_, gwB := buildGatewayPair(t, SuiteAES128CTR)
	// Eve injects a plaintext packet claiming to be enclave traffic.
	forged := &Packet{
		Src: MustAddr("10.1.0.5"), Dst: MustAddr("10.2.0.9"),
		Proto: ProtoPing, Payload: []byte("evil"),
	}
	if _, err := gwB.ProcessInbound(forged); !errors.Is(err, ErrDiscard) {
		t.Errorf("clear packet for protected flow: %v, want ErrDiscard", err)
	}
}

func TestGatewayBypassPolicy(t *testing.T) {
	gw := NewGateway(MustAddr("192.1.99.34"), NewSPD(
		&Policy{Name: "clear", Action: Bypass,
			Sel: Selector{Src: MustPrefix("0.0.0.0/0"), Dst: MustPrefix("0.0.0.0/0")}},
	))
	p := &Packet{Src: MustAddr("1.2.3.4"), Dst: MustAddr("5.6.7.8"), Proto: ProtoTCP}
	out, err := gw.ProcessOutbound(p)
	if err != nil || out != p {
		t.Fatalf("bypass failed: %v %v", out, err)
	}
	in, err := gw.ProcessInbound(p)
	if err != nil || in != p {
		t.Fatalf("inbound bypass failed: %v %v", in, err)
	}
}

func TestGatewayExpiredSARollsOver(t *testing.T) {
	gwA, _ := buildGatewayPair(t, SuiteAES128CTR)
	old := gwA.SAD.Outbound("a-to-b")
	// Replace with a byte-limited SA and exhaust it.
	key := randKey(SuiteAES128CTR.KeyBits()/8, 30)
	limited, _ := NewSA(3000, SuiteAES128CTR, key, Lifetime{Bytes: 10})
	gwA.SAD.InstallOutbound("a-to-b", limited)
	var rollover int
	gwA.OnMissingSA = func(*Policy) { rollover++ }
	pkt := &Packet{Src: MustAddr("10.1.0.5"), Dst: MustAddr("10.2.0.9"), Proto: ProtoPing,
		Payload: make([]byte, 64)}
	if _, err := gwA.ProcessOutbound(pkt); err != nil {
		t.Fatal(err) // first packet crosses the limit (and fires a soft rekey)
	}
	if _, err := gwA.ProcessOutbound(pkt); !errors.Is(err, ErrNoSA) {
		t.Fatalf("expected ErrNoSA after expiry, got %v", err)
	}
	// Two triggers: the soft-expiry signal as the first packet crossed
	// the byte threshold, then the hard missing-SA trigger.
	if rollover != 2 {
		t.Errorf("rollover callbacks = %d, want 2 (soft + hard)", rollover)
	}
	if st := gwA.Stats(); st.SoftRekeys != 1 {
		t.Errorf("SoftRekeys = %d, want 1", st.SoftRekeys)
	}
	_ = old
}

// Property: Seal/Open round-trips arbitrary payloads over AES and OTP.
func TestPropertySealOpen(t *testing.T) {
	f := func(payload []byte, seed uint64) bool {
		if len(payload) > 2000 {
			payload = payload[:2000]
		}
		key := randKey(SuiteAES128CTR.KeyBits()/8, seed)
		tx, err1 := NewSA(1, SuiteAES128CTR, key, Lifetime{})
		rx, err2 := NewSA(1, SuiteAES128CTR, key, Lifetime{})
		if err1 != nil || err2 != nil {
			return false
		}
		blob, err := tx.Seal(payload)
		if err != nil {
			return false
		}
		got, err := rx.Open(blob)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// --- SA lifecycle: expiry on Open, supersession, seq wrap ------------

// pairWithClock builds a keyed tx/rx SA pair sharing an injectable
// clock.
func pairWithClock(t *testing.T, life Lifetime, now *time.Time) (*SA, *SA) {
	t.Helper()
	key := randKey(SuiteAES128CTR.KeyBits()/8, 40)
	tx, err := NewSA(600, SuiteAES128CTR, key, life)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewSA(600, SuiteAES128CTR, key, life)
	if err != nil {
		t.Fatal(err)
	}
	clock := func() time.Time { return *now }
	tx.SetClock(clock)
	rx.SetClock(clock)
	return tx, rx
}

func TestOpenRejectsTimeExpiredSA(t *testing.T) {
	now := time.Unix(1000, 0)
	tx, rx := pairWithClock(t, Lifetime{Duration: time.Minute}, &now)
	blob, err := tx.Seal([]byte("in flight"))
	if err != nil {
		t.Fatal(err)
	}
	late, err := tx.Seal([]byte("also in flight"))
	if err != nil {
		t.Fatal(err)
	}
	// Inside the lifetime: opens.
	if _, err := rx.Open(blob); err != nil {
		t.Fatalf("Open inside lifetime: %v", err)
	}
	// Past the lifetime but inside grace: in-flight traffic drains.
	now = now.Add(time.Minute + DefaultGrace/2)
	if _, err := rx.Open(late); err != nil {
		t.Fatalf("Open inside grace: %v", err)
	}
	// Past lifetime + grace: the undead SA refuses.
	now = now.Add(DefaultGrace)
	if _, err := rx.Open(blob); !errors.Is(err, ErrExpired) {
		t.Fatalf("Open past grace: %v, want ErrExpired", err)
	}
}

func TestGatewayCountsInboundExpiry(t *testing.T) {
	gwA, gwB := buildGatewayPair(t, SuiteAES128CTR)
	now := time.Unix(2000, 0)
	clock := func() time.Time { return now }
	gwA.SAD.Outbound("a-to-b").SetClock(clock)
	rx := gwB.SAD.BySPI(1000)
	rx.SetClock(clock)
	rx.Life = Lifetime{Duration: time.Second}
	inner := &Packet{Src: MustAddr("10.1.0.5"), Dst: MustAddr("10.2.0.9"),
		Proto: ProtoPing, ID: 1, Payload: []byte("late")}
	outer, err := gwA.ProcessOutbound(inner)
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(time.Second + DefaultGrace + time.Second)
	if _, err := gwB.ProcessInbound(outer); !errors.Is(err, ErrExpired) {
		t.Fatalf("inbound on expired SA: %v, want ErrExpired", err)
	}
	if st := gwB.Stats(); st.Expired != 1 {
		t.Errorf("Stats.Expired = %d, want 1", st.Expired)
	}
}

func TestOpenByteLifetimeMirrorsSeal(t *testing.T) {
	// The byte bound is check-then-count on both sides, so every packet
	// the sender could seal, the receiver opens — and nothing after.
	tx, _ := NewSA(601, SuiteAES128CTR, randKey(SuiteAES128CTR.KeyBits()/8, 41), Lifetime{Bytes: 100})
	rx, _ := NewSA(601, SuiteAES128CTR, randKey(SuiteAES128CTR.KeyBits()/8, 41), Lifetime{Bytes: 100})
	var blobs [][]byte
	for {
		blob, err := tx.Seal(make([]byte, 40))
		if err != nil {
			if !errors.Is(err, ErrExpired) {
				t.Fatalf("Seal: %v", err)
			}
			break
		}
		blobs = append(blobs, blob)
	}
	if len(blobs) != 3 {
		t.Fatalf("sealed %d packets, want 3 (40+40+40 crosses 100)", len(blobs))
	}
	for i, blob := range blobs {
		if _, err := rx.Open(blob); err != nil {
			t.Fatalf("Open %d: %v", i, err)
		}
	}
	// A hypothetical fourth packet (same key, fresh SA to mint it) is
	// refused: the receive-side budget is spent.
	mint, _ := NewSA(601, SuiteAES128CTR, randKey(SuiteAES128CTR.KeyBits()/8, 41), Lifetime{})
	mint.seq = tx.seq
	extra, _ := mint.Seal(make([]byte, 40))
	if _, err := rx.Open(extra); !errors.Is(err, ErrExpired) {
		t.Fatalf("Open past byte budget: %v, want ErrExpired", err)
	}
}

func TestSealHardStopsBeforeSeqWrap(t *testing.T) {
	key := randKey(SuiteAES128CTR.KeyBits()/8, 42)
	tx, _ := NewSA(602, SuiteAES128CTR, key, Lifetime{})
	tx.seq = ^uint32(0) - 2
	for i := 0; i < 2; i++ {
		blob, err := tx.Seal([]byte("near the edge"))
		if err != nil {
			t.Fatalf("Seal %d below the limit: %v", i, err)
		}
		if seq := uint32(blob[4])<<24 | uint32(blob[5])<<16 | uint32(blob[6])<<8 | uint32(blob[7]); seq == 0 {
			t.Fatal("sealed a packet with seq 0")
		}
	}
	// The next seal would wrap to 0; it must refuse with ErrExpired (the
	// rekey trigger), not emit the poison packet.
	if _, err := tx.Seal([]byte("wedge?")); !errors.Is(err, ErrExpired) {
		t.Fatalf("Seal at seq limit: %v, want ErrExpired", err)
	}
	if !tx.Expired() {
		t.Error("SA at the seq hard limit does not report Expired")
	}
}

func TestSeqSoftExpiryFiresRekeyBeforeHardStop(t *testing.T) {
	gwA, _ := buildGatewayPair(t, SuiteAES128CTR)
	sa := gwA.SAD.Outbound("a-to-b")
	sa.seq = seqSoftLimit - 2
	var rekeys int
	gwA.OnMissingSA = func(*Policy) { rekeys++ }
	pkt := &Packet{Src: MustAddr("10.1.0.5"), Dst: MustAddr("10.2.0.9"), Proto: ProtoPing,
		Payload: []byte("flowing")}
	for i := 0; i < 4; i++ {
		if _, err := gwA.ProcessOutbound(pkt); err != nil {
			t.Fatalf("packet %d while soft-expiring: %v", i, err)
		}
	}
	if rekeys != 1 {
		t.Errorf("soft rekey fired %d times, want exactly once", rekeys)
	}
	if st := gwA.Stats(); st.SoftRekeys != 1 || st.Sealed != 4 {
		t.Errorf("stats = %+v, want SoftRekeys 1 and Sealed 4", st)
	}
}

// sealAt mints a blob with an exact sequence number.
func sealAt(t *testing.T, sa *SA, seq uint32, payload []byte) []byte {
	t.Helper()
	sa.seq = seq - 1
	blob, err := sa.Seal(payload)
	if err != nil {
		t.Fatalf("Seal at seq %d: %v", seq, err)
	}
	return blob
}

func TestReplayWindowEdges(t *testing.T) {
	key := randKey(SuiteAES128CTR.KeyBits()/8, 43)
	tx, _ := NewSA(603, SuiteAES128CTR, key, Lifetime{})
	rx, _ := NewSA(603, SuiteAES128CTR, key, Lifetime{})

	// Advance the window to 1000.
	if _, err := rx.Open(sealAt(t, tx, 1000, []byte("head"))); err != nil {
		t.Fatal(err)
	}
	// seq == maxSeq-63: the last slot inside the 64-wide window.
	if _, err := rx.Open(sealAt(t, tx, 1000-63, []byte("edge"))); err != nil {
		t.Fatalf("in-window edge rejected: %v", err)
	}
	// One further back falls off the window.
	if _, err := rx.Open(sealAt(t, tx, 1000-64, []byte("gone"))); !errors.Is(err, ErrReplay) {
		t.Fatalf("seq maxSeq-64: %v, want ErrReplay", err)
	}
	// Replaying the edge slot is caught.
	if _, err := rx.Open(sealAt(t, tx, 1000-63, []byte("edge"))); !errors.Is(err, ErrReplay) {
		t.Fatalf("replayed edge: %v, want ErrReplay", err)
	}
}

func TestReplayWindowAtSeqCeiling(t *testing.T) {
	// The receiver window keeps working at the very top of sequence
	// space — the region the hard stop guarantees the sender never
	// leaves — and seq 0 (the wrap poison) stays rejected throughout.
	key := randKey(SuiteAES128CTR.KeyBits()/8, 44)
	tx, _ := NewSA(604, SuiteAES128CTR, key, Lifetime{})
	rx, _ := NewSA(604, SuiteAES128CTR, key, Lifetime{})
	top := ^uint32(0)
	if _, err := rx.Open(sealAt(t, tx, top, []byte("ceiling"))); err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Open(sealAt(t, tx, top-63, []byte("still in window"))); err != nil {
		t.Fatalf("window edge at ceiling: %v", err)
	}
	// A wrapped sender's seq-0 packet stays the replay sentinel even
	// with the window parked at the ceiling.
	if err := rx.replayCheckLocked(0); !errors.Is(err, ErrReplay) {
		t.Fatalf("seq 0 at ceiling: %v, want ErrReplay", err)
	}
}

func TestForgedSeqCannotPoisonWindow(t *testing.T) {
	// Integrity is checked before the replay window moves, so Eve
	// cannot slam the window forward with a forged huge seq.
	key := randKey(SuiteAES128CTR.KeyBits()/8, 45)
	tx, _ := NewSA(605, SuiteAES128CTR, key, Lifetime{})
	rx, _ := NewSA(605, SuiteAES128CTR, key, Lifetime{})
	if _, err := rx.Open(sealAt(t, tx, 5, []byte("real"))); err != nil {
		t.Fatal(err)
	}
	forged := sealAt(t, tx, 6, []byte("forged"))
	forged[4], forged[5], forged[6], forged[7] = 0x7F, 0xFF, 0xFF, 0xFF
	if _, err := rx.Open(forged); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("forged seq: %v, want ErrIntegrity", err)
	}
	// The window did not move: nearby legitimate traffic still opens.
	if _, err := rx.Open(sealAt(t, tx, 6, []byte("real again"))); err != nil {
		t.Fatalf("legit packet after forgery attempt: %v", err)
	}
}

// --- SAD generations: rollover leak and graceful supersession --------

func TestInstallInboundForBoundsGenerations(t *testing.T) {
	d := NewSAD()
	now := time.Unix(3000, 0)
	clock := func() time.Time { return now }
	key := randKey(SuiteAES128CTR.KeyBits()/8, 46)
	var gens []*SA
	for i := 0; i < 10; i++ {
		sa, _ := NewSA(uint32(7000+i), SuiteAES128CTR, key, Lifetime{})
		sa.SetClock(clock)
		d.InstallInboundFor("b-to-a", Addr{}, sa)
		gens = append(gens, sa)
		if in, _ := d.Count(); in > 2 {
			t.Fatalf("after %d rollovers: %d inbound SAs, want <= 2 generations", i+1, in)
		}
	}
	// The predecessor is superseded, older generations are gone.
	if !gens[8].Superseded() {
		t.Error("predecessor not marked superseded")
	}
	if d.BySPI(7000) != nil || d.BySPI(7007) != nil {
		t.Error("ancient generations still installed")
	}
	if d.BySPI(7008) == nil || d.BySPI(7009) == nil {
		t.Error("live generations missing")
	}
	// Grace elapses: the sweep retires the superseded generation.
	now = now.Add(DefaultGrace + time.Second)
	d.Sweep()
	if in, _ := d.Count(); in != 1 {
		t.Errorf("after grace sweep: %d inbound SAs, want 1", in)
	}
	if d.BySPI(7008) != nil {
		t.Error("superseded generation survived its grace window")
	}
}

func TestSupersededSADrainsThenRefuses(t *testing.T) {
	now := time.Unix(4000, 0)
	tx, rx := pairWithClock(t, Lifetime{}, &now)
	inFlight, err := tx.Seal([]byte("sealed before rollover"))
	if err != nil {
		t.Fatal(err)
	}
	rx.Supersede(now.Add(DefaultGrace))
	// Within grace: in-flight traffic still decrypts.
	if _, err := rx.Open(inFlight); err != nil {
		t.Fatalf("Open during grace drain: %v", err)
	}
	// After grace: refused.
	late, _ := tx.Seal([]byte("too late"))
	now = now.Add(DefaultGrace + time.Millisecond)
	if _, err := rx.Open(late); !errors.Is(err, ErrExpired) {
		t.Fatalf("Open after grace: %v, want ErrExpired", err)
	}
	if !rx.Retired() {
		t.Error("superseded SA past grace does not report Retired")
	}
}

func BenchmarkSealAES1500(b *testing.B) {
	key := randKey(SuiteAES128CTR.KeyBits()/8, 1)
	sa, _ := NewSA(1, SuiteAES128CTR, key, Lifetime{})
	payload := make([]byte, 1500)
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		if _, err := sa.Seal(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSealOTP1500(b *testing.B) {
	newSA := func(spi uint32) *SA {
		pad := randKey(8+(1500+otpTagLen)*benchOTPPadPackets, 2)
		sa, _ := NewOTPSA(spi, pad, Lifetime{})
		return sa
	}
	sa := newSA(1)
	payload := make([]byte, 1500)
	b.SetBytes(1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sa.Seal(payload); err != nil {
			if !errors.Is(err, ErrPadExhaust) {
				b.Fatal(err)
			}
			b.StopTimer()
			sa = newSA(uint32(2 + i))
			b.StartTimer()
			i--
		}
	}
}

// --- gateway dataplane benchmarks (bench.sh ipsec group) -------------

// benchOTPPadPackets sizes bench OTP pads: enough for this many
// 1400-byte packets per SA, refilled under StopTimer on exhaustion,
// so pad size never scales with b.N.
const benchOTPPadPackets = 16384

func benchOTPPad(seed uint64) []byte {
	return randKey(8+(headerLen+1400+otpTagLen)*benchOTPPadPackets, seed)
}

// benchInstallSAs installs a fresh unexpiring SA pair for tunnel i of
// the given suite (outbound on gwA, inbound on gwB).
func benchInstallSAs(gwA, gwB *Gateway, suite CipherSuite, i int, seed uint64) {
	var out, in *SA
	if suite == SuiteOTP {
		pad := benchOTPPad(seed)
		out, _ = NewOTPSA(uint32(1000+i), pad, Lifetime{})
		in, _ = NewOTPSA(uint32(1000+i), pad, Lifetime{})
	} else {
		key := randKey(suite.KeyBits()/8, seed)
		out, _ = NewSA(uint32(1000+i), suite, key, Lifetime{})
		in, _ = NewSA(uint32(1000+i), suite, key, Lifetime{})
	}
	gwA.SAD.InstallOutbound(fmt.Sprintf("t%d/a-to-b", i), out)
	gwB.SAD.InstallInboundFor(fmt.Sprintf("t%d/a-to-b", i), Addr{}, in)
}

// benchGateway builds a gateway pair carrying `tunnels` parallel
// policies (10.1.i.0/24 <-> 10.2.i.0/24) with unexpiring SAs
// installed. suites[i%len(suites)] is tunnel i's cipher suite, so OTP
// benchmarks get real OTP SAs instead of mutating a Null policy after
// the fact.
func benchGateway(tb testing.TB, tunnels int, suites ...CipherSuite) (*Gateway, *Gateway) {
	tb.Helper()
	var polsA, polsB []*Policy
	for i := 0; i < tunnels; i++ {
		suite := suites[i%len(suites)]
		ab := &Policy{Name: fmt.Sprintf("t%d/a-to-b", i), Action: Protect, Suite: suite,
			PeerGW: MustAddr("192.1.99.35"),
			Sel: Selector{Src: MustPrefix(fmt.Sprintf("10.1.%d.0/24", i)),
				Dst: MustPrefix(fmt.Sprintf("10.2.%d.0/24", i))}}
		ba := &Policy{Name: fmt.Sprintf("t%d/b-to-a", i), Action: Protect, Suite: suite,
			PeerGW: MustAddr("192.1.99.34"),
			Sel: Selector{Src: MustPrefix(fmt.Sprintf("10.2.%d.0/24", i)),
				Dst: MustPrefix(fmt.Sprintf("10.1.%d.0/24", i))}}
		polsA = append(polsA, ab, ba)
		polsB = append(polsB, ba, ab)
	}
	gwA := NewGateway(MustAddr("192.1.99.34"), NewSPD(polsA...))
	gwB := NewGateway(MustAddr("192.1.99.35"), NewSPD(polsB...))
	for i := 0; i < tunnels; i++ {
		benchInstallSAs(gwA, gwB, suites[i%len(suites)], i, uint64(50+i))
	}
	return gwA, gwB
}

// BenchmarkGateway_SealAES is the outbound fast path: SPD match, SAD
// lookup, AES-CTR seal on the cached key schedule, atomic counters.
func BenchmarkGateway_SealAES(b *testing.B) {
	gwA, _ := benchGateway(b, 1, SuiteAES128CTR)
	pkt := &Packet{Src: MustAddr("10.1.0.5"), Dst: MustAddr("10.2.0.9"),
		Proto: ProtoPing, Payload: make([]byte, 1400)}
	b.SetBytes(1400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gwA.ProcessOutbound(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGateway_OpenAES is the inbound fast path: sharded SAD SPI
// lookup, HMAC verify, decrypt, replay window.
func BenchmarkGateway_OpenAES(b *testing.B) {
	gwA, gwB := benchGateway(b, 1, SuiteAES128CTR)
	pkt := &Packet{Src: MustAddr("10.1.0.5"), Dst: MustAddr("10.2.0.9"),
		Proto: ProtoPing, Payload: make([]byte, 1400)}
	b.SetBytes(1400)
	const chunk = 4096
	blobs := make([]*Packet, 0, chunk)
	done := 0
	b.ResetTimer()
	for done < b.N {
		n := b.N - done
		if n > chunk {
			n = chunk
		}
		b.StopTimer()
		blobs = blobs[:0]
		for i := 0; i < n; i++ {
			outer, err := gwA.ProcessOutbound(pkt)
			if err != nil {
				b.Fatal(err)
			}
			blobs = append(blobs, outer)
		}
		b.StartTimer()
		for _, outer := range blobs {
			if _, err := gwB.ProcessInbound(outer); err != nil {
				b.Fatal(err)
			}
		}
		done += n
	}
}

// BenchmarkGateway_SealOTP is the one-time-pad outbound path: pad XOR
// plus the Wegman-Carter tag over the table-driven GF(2^64) hash. The
// SA's pad covers benchOTPPadPackets packets; on exhaustion a fresh SA
// is installed off the clock.
func BenchmarkGateway_SealOTP(b *testing.B) {
	gwA, gwB := benchGateway(b, 1, SuiteOTP)
	inner := &Packet{Src: MustAddr("10.1.0.5"), Dst: MustAddr("10.2.0.9"),
		Proto: ProtoPing, Payload: make([]byte, 1400)}
	b.SetBytes(1400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gwA.ProcessOutbound(inner); err != nil {
			b.StopTimer()
			benchInstallSAs(gwA, gwB, SuiteOTP, 0, uint64(100+i))
			b.StartTimer()
			i--
		}
	}
}

// BenchmarkGateway_SealOTPBatch is the same OTP outbound path through
// ProcessOutboundBatch: one SA lock and one arena for a 64-packet
// burst.
func BenchmarkGateway_SealOTPBatch(b *testing.B) {
	gwA, gwB := benchGateway(b, 1, SuiteOTP)
	const burst = 64
	pkts := make([]*Packet, burst)
	for i := range pkts {
		pkts[i] = &Packet{Src: MustAddr("10.1.0.5"), Dst: MustAddr("10.2.0.9"),
			Proto: ProtoPing, Payload: make([]byte, 1400)}
	}
	bat := NewBatch()
	defer bat.Release()
	b.SetBytes(1400 * burst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := gwA.ProcessOutboundBatch(bat, pkts)
		if res[len(res)-1].Err != nil {
			b.StopTimer()
			benchInstallSAs(gwA, gwB, SuiteOTP, 0, uint64(100+i))
			b.StartTimer()
			i--
		}
	}
}

// BenchmarkGateway_SealAESBatch seals 64-packet bursts through one
// tunnel via ProcessOutboundBatch.
func BenchmarkGateway_SealAESBatch(b *testing.B) {
	gwA, _ := benchGateway(b, 1, SuiteAES128CTR)
	const burst = 64
	pkts := make([]*Packet, burst)
	for i := range pkts {
		pkts[i] = &Packet{Src: MustAddr("10.1.0.5"), Dst: MustAddr("10.2.0.9"),
			Proto: ProtoPing, Payload: make([]byte, 1400)}
	}
	bat := NewBatch()
	defer bat.Release()
	b.SetBytes(1400 * burst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := gwA.ProcessOutboundBatch(bat, pkts)
		for _, r := range res {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkGateway_OpenAESBatch opens 64-packet bursts through
// ProcessInboundBatch (one SAD lookup + SA lock per burst, payloads
// aliasing the batch arena).
func BenchmarkGateway_OpenAESBatch(b *testing.B) {
	gwA, gwB := benchGateway(b, 1, SuiteAES128CTR)
	pkt := &Packet{Src: MustAddr("10.1.0.5"), Dst: MustAddr("10.2.0.9"),
		Proto: ProtoPing, Payload: make([]byte, 1400)}
	const burst = 64
	b.SetBytes(1400 * burst)
	bat := NewBatch()
	defer bat.Release()
	blobs := make([]*Packet, 0, burst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		blobs = blobs[:0]
		for j := 0; j < burst; j++ {
			outer, err := gwA.ProcessOutbound(pkt)
			if err != nil {
				b.Fatal(err)
			}
			blobs = append(blobs, outer)
		}
		b.StartTimer()
		res := gwB.ProcessInboundBatch(bat, blobs)
		for _, r := range res {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkGateway_Parallel drives 8 tunnels from parallel goroutines —
// the concurrent multi-tunnel dataplane. With the sharded SAD and
// atomic counters, flows contend only on their own SA's mutex.
func BenchmarkGateway_Parallel(b *testing.B) {
	const tunnels = 8
	gwA, _ := benchGateway(b, tunnels, SuiteAES128CTR)
	var next atomic.Uint64
	b.SetBytes(1400)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(next.Add(1)) % tunnels
		pkt := &Packet{Src: MustAddr(fmt.Sprintf("10.1.%d.5", i)),
			Dst:   MustAddr(fmt.Sprintf("10.2.%d.9", i)),
			Proto: ProtoPing, Payload: make([]byte, 1400)}
		for pb.Next() {
			if _, err := gwA.ProcessOutbound(pkt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGateway_ParallelBatch is the 8-tunnel parallel dataplane
// driven in 64-packet bursts through ProcessOutboundBatch — the
// amortized counterpart of BenchmarkGateway_Parallel.
func BenchmarkGateway_ParallelBatch(b *testing.B) {
	const tunnels = 8
	const burst = 64
	gwA, _ := benchGateway(b, tunnels, SuiteAES128CTR)
	var next atomic.Uint64
	b.SetBytes(1400)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(next.Add(1)) % tunnels
		pkts := make([]*Packet, burst)
		for j := range pkts {
			pkts[j] = &Packet{Src: MustAddr(fmt.Sprintf("10.1.%d.5", i)),
				Dst:   MustAddr(fmt.Sprintf("10.2.%d.9", i)),
				Proto: ProtoPing, Payload: make([]byte, 1400)}
		}
		bat := NewBatch()
		defer bat.Release()
		k := burst
		for pb.Next() {
			if k == burst {
				res := gwA.ProcessOutboundBatch(bat, pkts)
				for _, r := range res {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
				k = 0
			}
			k++
		}
	})
}

// TestBatchSealAllocs pins the batched fast path's allocation counts.
// Once the batch arena is warm, a 64-packet OTP burst is zero-alloc
// (pad XOR and the table-driven tag touch no heap); the AES path pays
// only cipher.NewCTR's per-packet stream object, nothing else.
func TestBatchSealAllocs(t *testing.T) {
	const burst = 64
	measure := func(suite CipherSuite) float64 {
		gwA, _ := benchGateway(t, 1, suite)
		pkts := make([]*Packet, burst)
		for i := range pkts {
			pkts[i] = &Packet{Src: MustAddr("10.1.0.5"), Dst: MustAddr("10.2.0.9"),
				Proto: ProtoPing, Payload: make([]byte, 1400)}
		}
		bat := NewBatch()
		defer bat.Release()
		// Warm the arena and SPD index.
		for i := 0; i < 4; i++ {
			gwA.ProcessOutboundBatch(bat, pkts)
		}
		return testing.AllocsPerRun(20, func() {
			res := gwA.ProcessOutboundBatch(bat, pkts)
			if res[0].Err != nil {
				t.Fatal(res[0].Err)
			}
		})
	}
	if avg := measure(SuiteOTP); avg > 4 {
		t.Errorf("batched OTP seal: %.1f allocs per %d-packet burst, want <= 4", avg, burst)
	}
	if avg := measure(SuiteAES128CTR); avg > 2*burst+4 {
		t.Errorf("batched AES seal: %.1f allocs per %d-packet burst, want <= %d (NewCTR only)",
			avg, burst, 2*burst+4)
	}
}
