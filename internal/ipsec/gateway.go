package ipsec

import (
	"fmt"
	"sync"
)

// SAD is the Security Association Database: inbound SAs indexed by SPI,
// outbound SAs indexed by the policy they serve.
type SAD struct {
	mu       sync.Mutex
	bySPI    map[uint32]*SA
	outbound map[string]*SA
}

// NewSAD returns an empty database.
func NewSAD() *SAD {
	return &SAD{bySPI: make(map[uint32]*SA), outbound: make(map[string]*SA)}
}

// InstallInbound registers an SA for decryption by SPI.
func (d *SAD) InstallInbound(sa *SA) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.bySPI[sa.SPI] = sa
}

// InstallOutbound registers an SA to protect a policy's traffic,
// replacing any previous SA (key rollover).
func (d *SAD) InstallOutbound(policyName string, sa *SA) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.outbound[policyName] = sa
}

// Outbound returns the SA serving a policy, or nil.
func (d *SAD) Outbound(policyName string) *SA {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.outbound[policyName]
}

// BySPI returns the inbound SA for spi, or nil.
func (d *SAD) BySPI(spi uint32) *SA {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bySPI[spi]
}

// RemoveOutbound clears a policy's outbound SA if it is the given one.
func (d *SAD) RemoveOutbound(policyName string, sa *SA) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.outbound[policyName] == sa {
		delete(d.outbound, policyName)
	}
}

// RemoveInbound deletes an inbound SA by SPI.
func (d *SAD) RemoveInbound(spi uint32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.bySPI, spi)
}

// Count returns (inbound, outbound) SA counts.
func (d *SAD) Count() (in, out int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.bySPI), len(d.outbound)
}

// Stats counts gateway dataplane events.
type Stats struct {
	Sealed        uint64
	Opened        uint64
	Bypassed      uint64
	Discarded     uint64
	NoSA          uint64
	Expired       uint64
	ReplayDrops   uint64
	IntegFailures uint64
}

// Gateway is the VPN dataplane of Fig. 10/11: an IP packet filter with
// pattern matching against the SPD and crypto against the SAD.
type Gateway struct {
	// Local is this gateway's tunnel address.
	Local Addr
	// SPD and SAD are exported for the IKE daemon, which populates the
	// SAD as negotiations complete.
	SPD *SPD
	SAD *SAD

	// OnMissingSA fires when a Protect policy has traffic but no
	// (unexpired) SA — the trigger for IKE negotiation.
	OnMissingSA func(*Policy)

	mu    sync.Mutex
	stats Stats
}

// NewGateway builds a gateway at the given tunnel address.
func NewGateway(local Addr, spd *SPD) *Gateway {
	return &Gateway{Local: local, SPD: spd, SAD: NewSAD()}
}

// Stats returns a snapshot of the counters.
func (g *Gateway) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

func (g *Gateway) count(f func(*Stats)) {
	g.mu.Lock()
	f(&g.stats)
	g.mu.Unlock()
}

// ProcessOutbound applies policy to a packet leaving the enclave:
// bypass, discard, or encapsulate under the policy's SA in tunnel mode
// (the entire inner packet becomes the ESP payload).
func (g *Gateway) ProcessOutbound(p *Packet) (*Packet, error) {
	pol := g.SPD.Match(p)
	if pol == nil {
		return nil, fmt.Errorf("%w: %s -> %s proto %d", ErrNoPolicy, p.Src, p.Dst, p.Proto)
	}
	switch pol.Action {
	case Bypass:
		g.count(func(s *Stats) { s.Bypassed++ })
		return p, nil
	case Discard:
		g.count(func(s *Stats) { s.Discarded++ })
		return nil, ErrDiscard
	}
	sa := g.SAD.Outbound(pol.Name)
	if sa != nil && sa.Expired() {
		g.SAD.RemoveOutbound(pol.Name, sa)
		g.count(func(s *Stats) { s.Expired++ })
		sa = nil
	}
	if sa == nil {
		g.count(func(s *Stats) { s.NoSA++ })
		if g.OnMissingSA != nil {
			g.OnMissingSA(pol)
		}
		return nil, fmt.Errorf("%w: policy %q", ErrNoSA, pol.Name)
	}
	blob, err := sa.Seal(p.Marshal())
	if err != nil {
		if err == ErrExpired || err == ErrPadExhaust {
			g.SAD.RemoveOutbound(pol.Name, sa)
			g.count(func(s *Stats) { s.Expired++ })
			if g.OnMissingSA != nil {
				g.OnMissingSA(pol)
			}
		}
		return nil, err
	}
	g.count(func(s *Stats) { s.Sealed++ })
	return &Packet{Src: g.Local, Dst: pol.PeerGW, Proto: ProtoESP, ID: p.ID, Payload: blob}, nil
}

// ProcessInbound handles a packet arriving from the black network:
// ESP packets are decapsulated via the SAD; clear packets are checked
// against policy (a clear packet whose flow demands protection is
// dropped — accepting it would let Eve inject plaintext into the
// enclave).
func (g *Gateway) ProcessInbound(p *Packet) (*Packet, error) {
	if p.Proto == ProtoESP {
		if len(p.Payload) < 4 {
			return nil, fmt.Errorf("ipsec: short ESP payload")
		}
		spi := uint32(p.Payload[0])<<24 | uint32(p.Payload[1])<<16 |
			uint32(p.Payload[2])<<8 | uint32(p.Payload[3])
		sa := g.SAD.BySPI(spi)
		if sa == nil {
			return nil, fmt.Errorf("%w: %#x", ErrUnknownSPI, spi)
		}
		inner, err := sa.Open(p.Payload)
		if err != nil {
			switch err {
			case ErrReplay:
				g.count(func(s *Stats) { s.ReplayDrops++ })
			case ErrIntegrity:
				g.count(func(s *Stats) { s.IntegFailures++ })
			}
			return nil, err
		}
		pkt, err := UnmarshalPacket(inner)
		if err != nil {
			return nil, fmt.Errorf("ipsec: decapsulated garbage: %w", err)
		}
		g.count(func(s *Stats) { s.Opened++ })
		return pkt, nil
	}
	// Clear traffic: only deliverable if policy says bypass.
	pol := g.SPD.Match(p)
	if pol == nil || pol.Action != Bypass {
		g.count(func(s *Stats) { s.Discarded++ })
		return nil, ErrDiscard
	}
	g.count(func(s *Stats) { s.Bypassed++ })
	return p, nil
}
