package ipsec

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// SAD is the Security Association Database, structured hierarchically
// for a fabric-scale gateway: inbound SAs live in per-peer buckets
// (the outer tunnel address traffic actually arrives from), each
// bucket a lock-free sync.Map of SPI -> SA. A packet's lookup touches
// only its own peer's bucket, so 100k tunnels spread across peers
// never contend on gateway-global stripes; installs serialize only
// within a peer. Manually-keyed SAs (tests, static keying) without a
// peer land in the wildcard bucket, which lookups fall back to.
//
// Outbound SAs are indexed by the policy they serve, and per-tunnel
// inbound rollover generations keep the database bounded: a
// superseded SA drains for a grace window and is then removed instead
// of decrypting forever.
type SAD struct {
	peerMu sync.RWMutex
	peers  map[Addr]*peerSAD

	outbound sync.Map // policy name -> *SA
	outCount atomic.Int64

	genMu sync.Mutex
	gens  map[string]*saGenerations
}

// peerSAD is one peer gateway's inbound SPI index.
type peerSAD struct {
	bySPI sync.Map // uint32 -> *SA
	count atomic.Int64
}

// saGenerations chains a tunnel direction's inbound SAs: cur decrypts
// new traffic, prev drains in-flight packets until its grace deadline.
type saGenerations struct {
	peer Addr
	cur  *SA
	prev *SA
}

// NewSAD returns an empty database.
func NewSAD() *SAD {
	return &SAD{
		peers: make(map[Addr]*peerSAD),
		gens:  make(map[string]*saGenerations),
	}
}

// peer returns the bucket for a peer address, creating it on demand.
func (d *SAD) peer(addr Addr) *peerSAD {
	d.peerMu.RLock()
	b := d.peers[addr]
	d.peerMu.RUnlock()
	if b != nil {
		return b
	}
	d.peerMu.Lock()
	if b = d.peers[addr]; b == nil {
		b = &peerSAD{}
		d.peers[addr] = b
	}
	d.peerMu.Unlock()
	return b
}

// peerIfAny returns the bucket for a peer address, or nil.
func (d *SAD) peerIfAny(addr Addr) *peerSAD {
	d.peerMu.RLock()
	b := d.peers[addr]
	d.peerMu.RUnlock()
	return b
}

func (b *peerSAD) install(sa *SA) {
	if _, loaded := b.bySPI.Swap(sa.SPI, sa); !loaded {
		b.count.Add(1)
	}
}

func (b *peerSAD) remove(spi uint32) {
	if _, loaded := b.bySPI.LoadAndDelete(spi); loaded {
		b.count.Add(-1)
	}
}

func (b *peerSAD) get(spi uint32) *SA {
	if v, ok := b.bySPI.Load(spi); ok {
		return v.(*SA)
	}
	return nil
}

// InstallInbound registers an SA for decryption by SPI in the wildcard
// bucket, outside any generation chain (tests, manual keying).
func (d *SAD) InstallInbound(sa *SA) {
	d.InstallInboundPeer(Addr{}, sa)
}

// InstallInboundPeer registers an SA for decryption of ESP traffic
// arriving from the given peer gateway (the zero Addr is the wildcard
// bucket), outside any generation chain.
func (d *SAD) InstallInboundPeer(peer Addr, sa *SA) {
	d.peer(peer).install(sa)
}

// InstallInboundFor registers an inbound SA as the newest rollover
// generation for a tunnel direction (keyed by the peer's outbound
// policy name), filed under the peer gateway's bucket. The superseded
// predecessor keeps decrypting in-flight traffic until the grace
// window closes; any generation older than that is removed
// immediately, so the inbound index stays bounded by two generations
// per tunnel no matter how often IKE renegotiates.
func (d *SAD) InstallInboundFor(policyName string, peer Addr, sa *SA) {
	d.InstallInboundPeer(peer, sa)
	d.genMu.Lock()
	g := d.gens[policyName]
	if g == nil {
		g = &saGenerations{}
		d.gens[policyName] = g
	}
	g.peer = peer
	if g.prev != nil && g.prev != sa {
		d.removeInboundPeer(g.peer, g.prev.SPI)
	}
	if g.cur != nil && g.cur != sa {
		g.cur.Supersede(g.cur.clockNow().Add(DefaultGrace))
		g.prev = g.cur
	}
	g.cur = sa
	d.genMu.Unlock()
	d.Sweep()
}

// Sweep removes superseded generations whose grace window has closed.
// Install paths call it; long-idle gateways may call it periodically.
func (d *SAD) Sweep() {
	d.genMu.Lock()
	defer d.genMu.Unlock()
	for _, g := range d.gens {
		if g.prev != nil && g.prev.Retired() {
			d.removeInboundPeer(g.peer, g.prev.SPI)
			g.prev = nil
		}
	}
}

// InstallOutbound registers an SA to protect a policy's traffic,
// replacing any previous SA (key rollover).
func (d *SAD) InstallOutbound(policyName string, sa *SA) {
	if _, loaded := d.outbound.Swap(policyName, sa); !loaded {
		d.outCount.Add(1)
	}
}

// Outbound returns the SA serving a policy, or nil.
func (d *SAD) Outbound(policyName string) *SA {
	if v, ok := d.outbound.Load(policyName); ok {
		return v.(*SA)
	}
	return nil
}

// BySPI returns the inbound SA for spi, or nil: the wildcard bucket
// first, then every peer bucket (a convenience for tests and tooling;
// the dataplane looks up by (peer, SPI)).
func (d *SAD) BySPI(spi uint32) *SA {
	if b := d.peerIfAny(Addr{}); b != nil {
		if sa := b.get(spi); sa != nil {
			return sa
		}
	}
	d.peerMu.RLock()
	defer d.peerMu.RUnlock()
	for addr, b := range d.peers {
		if addr == (Addr{}) {
			continue
		}
		if sa := b.get(spi); sa != nil {
			return sa
		}
	}
	return nil
}

// BySPIPeer returns the inbound SA for ESP traffic from a peer
// gateway, falling back to the wildcard bucket for manually-keyed SAs.
func (d *SAD) BySPIPeer(peer Addr, spi uint32) *SA {
	if b := d.peerIfAny(peer); b != nil {
		if sa := b.get(spi); sa != nil {
			return sa
		}
	}
	if peer != (Addr{}) {
		if b := d.peerIfAny(Addr{}); b != nil {
			return b.get(spi)
		}
	}
	return nil
}

// RemoveOutbound clears a policy's outbound SA if it is the given one.
func (d *SAD) RemoveOutbound(policyName string, sa *SA) {
	if d.outbound.CompareAndDelete(policyName, sa) {
		d.outCount.Add(-1)
	}
}

// RemoveInbound deletes an inbound SA by SPI from every bucket.
func (d *SAD) RemoveInbound(spi uint32) {
	d.peerMu.RLock()
	defer d.peerMu.RUnlock()
	for _, b := range d.peers {
		b.remove(spi)
	}
}

// removeInboundPeer deletes an inbound SA from one peer's bucket.
func (d *SAD) removeInboundPeer(peer Addr, spi uint32) {
	if b := d.peerIfAny(peer); b != nil {
		b.remove(spi)
	}
}

// Reset drops every SA — inbound buckets, outbound map and generation
// chains — modelling a gateway whose kernel SAD died with its process.
// Concurrent dataplane traffic is safe: in-flight packets simply miss
// (ErrNoSA / ErrUnknownSPI) and drive resynchronization; concurrent SA
// installation must be quiesced by the caller (the vpn layer's restart
// path holds its control-plane lock across the reset).
func (d *SAD) Reset() {
	d.peerMu.Lock()
	d.peers = make(map[Addr]*peerSAD)
	d.peerMu.Unlock()
	d.outbound.Range(func(k, _ any) bool {
		d.outbound.Delete(k)
		return true
	})
	d.outCount.Store(0)
	d.genMu.Lock()
	d.gens = make(map[string]*saGenerations)
	d.genMu.Unlock()
}

// Count returns (inbound, outbound) SA counts.
func (d *SAD) Count() (in, out int) {
	d.peerMu.RLock()
	for _, b := range d.peers {
		in += int(b.count.Load())
	}
	d.peerMu.RUnlock()
	return in, int(d.outCount.Load())
}

// Stats counts gateway dataplane events.
type Stats struct {
	Sealed        uint64
	Opened        uint64
	Bypassed      uint64
	Discarded     uint64
	NoSA          uint64
	Expired       uint64
	ReplayDrops   uint64
	IntegFailures uint64
	// SoftRekeys counts rekey triggers fired by an SA crossing its
	// soft-expiry threshold while traffic still flowed.
	SoftRekeys uint64
}

// Gateway is the VPN dataplane of Fig. 10/11: an IP packet filter with
// pattern matching against the SPD and crypto against the SAD. All
// counters are atomic and inbound lookups are per-peer, so concurrent
// flows over different tunnels never serialize on gateway-wide state.
type Gateway struct {
	// Local is this gateway's tunnel address.
	Local Addr
	// SPD and SAD are exported for the IKE daemon, which populates the
	// SAD as negotiations complete.
	SPD *SPD
	SAD *SAD

	// OnMissingSA fires when a Protect policy has traffic but no
	// (unexpired) SA — the trigger for IKE negotiation — and, softly,
	// when a serving SA crosses its soft-expiry threshold so the
	// rollover lands before the hard stop.
	OnMissingSA func(*Policy)

	sealed, opened, bypassed, discarded    atomic.Uint64
	noSA, expired, replayDrops, integFails atomic.Uint64
	softRekeys                             atomic.Uint64
}

// NewGateway builds a gateway at the given tunnel address.
func NewGateway(local Addr, spd *SPD) *Gateway {
	return &Gateway{Local: local, SPD: spd, SAD: NewSAD()}
}

// Stats returns a snapshot of the counters.
func (g *Gateway) Stats() Stats {
	return Stats{
		Sealed:        g.sealed.Load(),
		Opened:        g.opened.Load(),
		Bypassed:      g.bypassed.Load(),
		Discarded:     g.discarded.Load(),
		NoSA:          g.noSA.Load(),
		Expired:       g.expired.Load(),
		ReplayDrops:   g.replayDrops.Load(),
		IntegFailures: g.integFails.Load(),
		SoftRekeys:    g.softRekeys.Load(),
	}
}

// ProcessOutbound applies policy to a packet leaving the enclave:
// bypass, discard, or encapsulate under the policy's SA in tunnel mode
// (the entire inner packet becomes the ESP payload).
func (g *Gateway) ProcessOutbound(p *Packet) (*Packet, error) {
	pol := g.SPD.Match(p)
	if pol == nil {
		return nil, fmt.Errorf("%w: %s -> %s proto %d", ErrNoPolicy, p.Src, p.Dst, p.Proto)
	}
	switch pol.Action {
	case Bypass:
		g.bypassed.Add(1)
		return p, nil
	case Discard:
		g.discarded.Add(1)
		return nil, ErrDiscard
	}
	sa := g.SAD.Outbound(pol.Name)
	if sa != nil && sa.Expired() {
		g.SAD.RemoveOutbound(pol.Name, sa)
		g.expired.Add(1)
		sa = nil
	}
	if sa == nil {
		g.noSA.Add(1)
		if g.OnMissingSA != nil {
			g.OnMissingSA(pol)
		}
		return nil, fmt.Errorf("%w: policy %q", ErrNoSA, pol.Name)
	}
	blob, err := sa.Seal(p.Marshal())
	if err != nil {
		if errors.Is(err, ErrExpired) || errors.Is(err, ErrPadExhaust) {
			g.SAD.RemoveOutbound(pol.Name, sa)
			g.expired.Add(1)
			if g.OnMissingSA != nil {
				g.OnMissingSA(pol)
			}
		}
		return nil, err
	}
	g.sealed.Add(1)
	if sa.SoftExpiring() {
		g.softRekeys.Add(1)
		if g.OnMissingSA != nil {
			g.OnMissingSA(pol)
		}
	}
	return &Packet{Src: g.Local, Dst: pol.PeerGW, Proto: ProtoESP, ID: p.ID, Payload: blob}, nil
}

// ProcessInbound handles a packet arriving from the black network:
// ESP packets are decapsulated via the SAD; clear packets are checked
// against policy (a clear packet whose flow demands protection is
// dropped — accepting it would let Eve inject plaintext into the
// enclave).
func (g *Gateway) ProcessInbound(p *Packet) (*Packet, error) {
	if p.Proto == ProtoESP {
		if len(p.Payload) < 4 {
			return nil, fmt.Errorf("ipsec: short ESP payload")
		}
		spi := uint32(p.Payload[0])<<24 | uint32(p.Payload[1])<<16 |
			uint32(p.Payload[2])<<8 | uint32(p.Payload[3])
		sa := g.SAD.BySPIPeer(p.Src, spi)
		if sa == nil {
			return nil, fmt.Errorf("%w: %#x", ErrUnknownSPI, spi)
		}
		inner, err := sa.Open(p.Payload)
		if err != nil {
			g.countOpenErr(err)
			return nil, err
		}
		pkt, err := UnmarshalPacket(inner)
		if err != nil {
			return nil, fmt.Errorf("ipsec: decapsulated garbage: %w", err)
		}
		g.opened.Add(1)
		return pkt, nil
	}
	// Clear traffic: only deliverable if policy says bypass.
	pol := g.SPD.Match(p)
	if pol == nil || pol.Action != Bypass {
		g.discarded.Add(1)
		return nil, ErrDiscard
	}
	g.bypassed.Add(1)
	return p, nil
}

// countOpenErr maps an SA.Open failure onto the drop counters.
func (g *Gateway) countOpenErr(err error) {
	switch {
	case errors.Is(err, ErrReplay):
		g.replayDrops.Add(1)
	case errors.Is(err, ErrIntegrity):
		g.integFails.Add(1)
	case errors.Is(err, ErrExpired):
		g.expired.Add(1)
	}
}

// BatchResult is one packet's outcome from a batched gateway pass:
// the processed packet, or the error that dropped it.
type BatchResult struct {
	Pkt *Packet
	Err error
}

// Batch is a reusable burst context for the batched dataplane. It
// owns the output arena that processed packets' payloads point into,
// so one growing allocation serves a whole burst and is recycled
// across calls. Results are valid until the Batch's next use or its
// Release — consume (or copy out) a burst before reusing the Batch.
type Batch struct {
	arena   []byte
	scratch []byte
	pkts    []Packet
	res     []BatchResult
	pols    []*Policy
}

var batchPool = sync.Pool{New: func() any { return &Batch{} }}

// NewBatch returns a pooled burst context.
func NewBatch() *Batch { return batchPool.Get().(*Batch) }

// Release returns the Batch (and its arena) to the pool. The caller
// must be done with every BatchResult it produced.
func (b *Batch) Release() { batchPool.Put(b) }

// reset prepares the batch for n packets, keeping allocated capacity.
func (b *Batch) reset(n int) {
	b.arena = b.arena[:0]
	b.scratch = b.scratch[:0]
	if cap(b.pkts) < n {
		b.pkts = make([]Packet, n)
		b.res = make([]BatchResult, n)
		b.pols = make([]*Policy, n)
	}
	b.pkts = b.pkts[:n]
	b.res = b.res[:n]
	b.pols = b.pols[:n]
	for i := range b.res {
		b.res[i] = BatchResult{}
	}
}

// outCounters accumulates a burst's stat deltas so the batch flushes
// each atomic counter once instead of once per packet.
type outCounters struct {
	sealed, opened, bypassed, discarded    uint64
	noSA, expired, replayDrops, integFails uint64
	softRekeys                             uint64
}

func (g *Gateway) flush(c *outCounters) {
	if c.sealed > 0 {
		g.sealed.Add(c.sealed)
	}
	if c.opened > 0 {
		g.opened.Add(c.opened)
	}
	if c.bypassed > 0 {
		g.bypassed.Add(c.bypassed)
	}
	if c.discarded > 0 {
		g.discarded.Add(c.discarded)
	}
	if c.noSA > 0 {
		g.noSA.Add(c.noSA)
	}
	if c.expired > 0 {
		g.expired.Add(c.expired)
	}
	if c.replayDrops > 0 {
		g.replayDrops.Add(c.replayDrops)
	}
	if c.integFails > 0 {
		g.integFails.Add(c.integFails)
	}
	if c.softRekeys > 0 {
		g.softRekeys.Add(c.softRekeys)
	}
}

// ProcessOutboundBatch is ProcessOutbound over a burst: packets are
// grouped into runs sharing an SPD policy, and each run pays for its
// outbound-SA lookup, SA mutex acquisition, and stat updates once.
// Sealed output lands in the Batch's arena (no per-packet make);
// results are positionally matched to pkts and valid until the Batch
// is reused or released.
func (g *Gateway) ProcessOutboundBatch(b *Batch, pkts []*Packet) []BatchResult {
	b.reset(len(pkts))
	var c outCounters
	for i, p := range pkts {
		b.pols[i] = g.SPD.Match(p)
	}
	for i := 0; i < len(pkts); {
		pol := b.pols[i]
		j := i + 1
		for j < len(pkts) && b.pols[j] == pol {
			j++
		}
		switch {
		case pol == nil:
			for k := i; k < j; k++ {
				p := pkts[k]
				b.res[k] = BatchResult{Err: fmt.Errorf("%w: %s -> %s proto %d",
					ErrNoPolicy, p.Src, p.Dst, p.Proto)}
			}
		case pol.Action == Bypass:
			for k := i; k < j; k++ {
				b.res[k] = BatchResult{Pkt: pkts[k]}
			}
			c.bypassed += uint64(j - i)
		case pol.Action == Discard:
			for k := i; k < j; k++ {
				b.res[k] = BatchResult{Err: ErrDiscard}
			}
			c.discarded += uint64(j - i)
		default:
			g.sealRun(b, pkts, i, j, pol, &c)
		}
		i = j
	}
	g.flush(&c)
	return b.res
}

// sealRun seals pkts[lo:hi] (one Protect policy) under a single SA
// lock acquisition.
func (g *Gateway) sealRun(b *Batch, pkts []*Packet, lo, hi int, pol *Policy, c *outCounters) {
	sa := g.SAD.Outbound(pol.Name)
	if sa != nil && sa.Expired() {
		g.SAD.RemoveOutbound(pol.Name, sa)
		c.expired++
		sa = nil
	}
	if sa == nil {
		c.noSA += uint64(hi - lo)
		if g.OnMissingSA != nil {
			g.OnMissingSA(pol)
		}
		err := fmt.Errorf("%w: policy %q", ErrNoSA, pol.Name)
		for k := lo; k < hi; k++ {
			b.res[k] = BatchResult{Err: err}
		}
		return
	}
	sealFailed := false
	sa.mu.Lock()
	for k := lo; k < hi; k++ {
		p := pkts[k]
		b.scratch = p.AppendMarshal(b.scratch[:0])
		start := len(b.arena)
		arena, err := sa.sealAppendLocked(b.arena, b.scratch)
		b.arena = arena
		if err != nil {
			b.res[k] = BatchResult{Err: err}
			if errors.Is(err, ErrExpired) || errors.Is(err, ErrPadExhaust) {
				c.expired++
				sealFailed = true
			}
			continue
		}
		blob := b.arena[start:len(b.arena):len(b.arena)]
		b.pkts[k] = Packet{Src: g.Local, Dst: pol.PeerGW, Proto: ProtoESP, ID: p.ID, Payload: blob}
		b.res[k] = BatchResult{Pkt: &b.pkts[k]}
		c.sealed++
	}
	sa.mu.Unlock()
	if sealFailed {
		g.SAD.RemoveOutbound(pol.Name, sa)
		if g.OnMissingSA != nil {
			g.OnMissingSA(pol)
		}
		return
	}
	if sa.SoftExpiring() {
		c.softRekeys++
		if g.OnMissingSA != nil {
			g.OnMissingSA(pol)
		}
	}
}

// ProcessInboundBatch is ProcessInbound over a burst: consecutive ESP
// packets from the same peer and SPI share one SA lookup and mutex
// acquisition, and decapsulated payloads alias the Batch's arena
// instead of being copied per packet.
func (g *Gateway) ProcessInboundBatch(b *Batch, pkts []*Packet) []BatchResult {
	b.reset(len(pkts))
	var c outCounters
	for i := 0; i < len(pkts); {
		p := pkts[i]
		if p.Proto != ProtoESP {
			// Clear traffic: only deliverable if policy says bypass.
			if pol := g.SPD.Match(p); pol != nil && pol.Action == Bypass {
				b.res[i] = BatchResult{Pkt: p}
				c.bypassed++
			} else {
				b.res[i] = BatchResult{Err: ErrDiscard}
				c.discarded++
			}
			i++
			continue
		}
		if len(p.Payload) < 4 {
			b.res[i] = BatchResult{Err: fmt.Errorf("ipsec: short ESP payload")}
			i++
			continue
		}
		spi := uint32(p.Payload[0])<<24 | uint32(p.Payload[1])<<16 |
			uint32(p.Payload[2])<<8 | uint32(p.Payload[3])
		j := i + 1
		for j < len(pkts) {
			q := pkts[j]
			if q.Proto != ProtoESP || q.Src != p.Src || len(q.Payload) < 4 {
				break
			}
			qspi := uint32(q.Payload[0])<<24 | uint32(q.Payload[1])<<16 |
				uint32(q.Payload[2])<<8 | uint32(q.Payload[3])
			if qspi != spi {
				break
			}
			j++
		}
		sa := g.SAD.BySPIPeer(p.Src, spi)
		if sa == nil {
			err := fmt.Errorf("%w: %#x", ErrUnknownSPI, spi)
			for k := i; k < j; k++ {
				b.res[k] = BatchResult{Err: err}
			}
			i = j
			continue
		}
		sa.mu.Lock()
		for k := i; k < j; k++ {
			start := len(b.arena)
			arena, err := sa.openAppendLocked(b.arena, pkts[k].Payload)
			b.arena = arena
			if err != nil {
				switch {
				case errors.Is(err, ErrReplay):
					c.replayDrops++
				case errors.Is(err, ErrIntegrity):
					c.integFails++
				case errors.Is(err, ErrExpired):
					c.expired++
				}
				b.res[k] = BatchResult{Err: err}
				continue
			}
			inner := b.arena[start:len(b.arena):len(b.arena)]
			if err := unmarshalPacketInto(&b.pkts[k], inner, false); err != nil {
				b.res[k] = BatchResult{Err: fmt.Errorf("ipsec: decapsulated garbage: %w", err)}
				continue
			}
			b.res[k] = BatchResult{Pkt: &b.pkts[k]}
			c.opened++
		}
		sa.mu.Unlock()
		i = j
	}
	g.flush(&c)
	return b.res
}
