package ipsec

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// sadShards stripes the inbound SPI index so concurrent tunnels hit
// independent locks (the kms.Store pattern, sized for a gateway's SA
// count rather than key bits).
const sadShards = 16

// SAD is the Security Association Database: inbound SAs indexed by SPI
// (sharded, RWMutex per stripe — lookups are the per-packet hot path),
// outbound SAs indexed by the policy they serve, and per-tunnel inbound
// rollover generations so a superseded SA drains for a grace window and
// is then removed instead of decrypting forever.
type SAD struct {
	shards [sadShards]sadShard

	outMu    sync.RWMutex
	outbound map[string]*SA

	genMu sync.Mutex
	gens  map[string]*saGenerations
}

type sadShard struct {
	mu    sync.RWMutex
	bySPI map[uint32]*SA
}

// saGenerations chains a tunnel direction's inbound SAs: cur decrypts
// new traffic, prev drains in-flight packets until its grace deadline.
type saGenerations struct {
	cur  *SA
	prev *SA
}

// NewSAD returns an empty database.
func NewSAD() *SAD {
	d := &SAD{outbound: make(map[string]*SA), gens: make(map[string]*saGenerations)}
	for i := range d.shards {
		d.shards[i].bySPI = make(map[uint32]*SA)
	}
	return d
}

func (d *SAD) shard(spi uint32) *sadShard { return &d.shards[spi%sadShards] }

// InstallInbound registers an SA for decryption by SPI, outside any
// generation chain (tests, manual keying).
func (d *SAD) InstallInbound(sa *SA) {
	sh := d.shard(sa.SPI)
	sh.mu.Lock()
	sh.bySPI[sa.SPI] = sa
	sh.mu.Unlock()
}

// InstallInboundFor registers an inbound SA as the newest rollover
// generation for a tunnel direction (keyed by the peer's outbound
// policy name). The superseded predecessor keeps decrypting in-flight
// traffic until the grace window closes; any generation older than that
// is removed immediately, so the inbound index stays bounded by two
// generations per tunnel no matter how often IKE renegotiates.
func (d *SAD) InstallInboundFor(policyName string, sa *SA) {
	d.InstallInbound(sa)
	d.genMu.Lock()
	g := d.gens[policyName]
	if g == nil {
		g = &saGenerations{}
		d.gens[policyName] = g
	}
	if g.prev != nil && g.prev != sa {
		d.RemoveInbound(g.prev.SPI)
	}
	if g.cur != nil && g.cur != sa {
		g.cur.Supersede(g.cur.clockNow().Add(DefaultGrace))
		g.prev = g.cur
	}
	g.cur = sa
	d.genMu.Unlock()
	d.Sweep()
}

// Sweep removes superseded generations whose grace window has closed.
// Install paths call it; long-idle gateways may call it periodically.
func (d *SAD) Sweep() {
	d.genMu.Lock()
	defer d.genMu.Unlock()
	for _, g := range d.gens {
		if g.prev != nil && g.prev.Retired() {
			d.RemoveInbound(g.prev.SPI)
			g.prev = nil
		}
	}
}

// InstallOutbound registers an SA to protect a policy's traffic,
// replacing any previous SA (key rollover).
func (d *SAD) InstallOutbound(policyName string, sa *SA) {
	d.outMu.Lock()
	d.outbound[policyName] = sa
	d.outMu.Unlock()
}

// Outbound returns the SA serving a policy, or nil.
func (d *SAD) Outbound(policyName string) *SA {
	d.outMu.RLock()
	defer d.outMu.RUnlock()
	return d.outbound[policyName]
}

// BySPI returns the inbound SA for spi, or nil.
func (d *SAD) BySPI(spi uint32) *SA {
	sh := d.shard(spi)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.bySPI[spi]
}

// RemoveOutbound clears a policy's outbound SA if it is the given one.
func (d *SAD) RemoveOutbound(policyName string, sa *SA) {
	d.outMu.Lock()
	if d.outbound[policyName] == sa {
		delete(d.outbound, policyName)
	}
	d.outMu.Unlock()
}

// RemoveInbound deletes an inbound SA by SPI.
func (d *SAD) RemoveInbound(spi uint32) {
	sh := d.shard(spi)
	sh.mu.Lock()
	delete(sh.bySPI, spi)
	sh.mu.Unlock()
}

// Count returns (inbound, outbound) SA counts.
func (d *SAD) Count() (in, out int) {
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.RLock()
		in += len(sh.bySPI)
		sh.mu.RUnlock()
	}
	d.outMu.RLock()
	out = len(d.outbound)
	d.outMu.RUnlock()
	return in, out
}

// Stats counts gateway dataplane events.
type Stats struct {
	Sealed        uint64
	Opened        uint64
	Bypassed      uint64
	Discarded     uint64
	NoSA          uint64
	Expired       uint64
	ReplayDrops   uint64
	IntegFailures uint64
	// SoftRekeys counts rekey triggers fired by an SA crossing its
	// soft-expiry threshold while traffic still flowed.
	SoftRekeys uint64
}

// Gateway is the VPN dataplane of Fig. 10/11: an IP packet filter with
// pattern matching against the SPD and crypto against the SAD. All
// counters are atomic and the SAD is sharded, so concurrent flows over
// different tunnels never serialize on gateway-wide state.
type Gateway struct {
	// Local is this gateway's tunnel address.
	Local Addr
	// SPD and SAD are exported for the IKE daemon, which populates the
	// SAD as negotiations complete.
	SPD *SPD
	SAD *SAD

	// OnMissingSA fires when a Protect policy has traffic but no
	// (unexpired) SA — the trigger for IKE negotiation — and, softly,
	// when a serving SA crosses its soft-expiry threshold so the
	// rollover lands before the hard stop.
	OnMissingSA func(*Policy)

	sealed, opened, bypassed, discarded    atomic.Uint64
	noSA, expired, replayDrops, integFails atomic.Uint64
	softRekeys                             atomic.Uint64
}

// NewGateway builds a gateway at the given tunnel address.
func NewGateway(local Addr, spd *SPD) *Gateway {
	return &Gateway{Local: local, SPD: spd, SAD: NewSAD()}
}

// Stats returns a snapshot of the counters.
func (g *Gateway) Stats() Stats {
	return Stats{
		Sealed:        g.sealed.Load(),
		Opened:        g.opened.Load(),
		Bypassed:      g.bypassed.Load(),
		Discarded:     g.discarded.Load(),
		NoSA:          g.noSA.Load(),
		Expired:       g.expired.Load(),
		ReplayDrops:   g.replayDrops.Load(),
		IntegFailures: g.integFails.Load(),
		SoftRekeys:    g.softRekeys.Load(),
	}
}

// ProcessOutbound applies policy to a packet leaving the enclave:
// bypass, discard, or encapsulate under the policy's SA in tunnel mode
// (the entire inner packet becomes the ESP payload).
func (g *Gateway) ProcessOutbound(p *Packet) (*Packet, error) {
	pol := g.SPD.Match(p)
	if pol == nil {
		return nil, fmt.Errorf("%w: %s -> %s proto %d", ErrNoPolicy, p.Src, p.Dst, p.Proto)
	}
	switch pol.Action {
	case Bypass:
		g.bypassed.Add(1)
		return p, nil
	case Discard:
		g.discarded.Add(1)
		return nil, ErrDiscard
	}
	sa := g.SAD.Outbound(pol.Name)
	if sa != nil && sa.Expired() {
		g.SAD.RemoveOutbound(pol.Name, sa)
		g.expired.Add(1)
		sa = nil
	}
	if sa == nil {
		g.noSA.Add(1)
		if g.OnMissingSA != nil {
			g.OnMissingSA(pol)
		}
		return nil, fmt.Errorf("%w: policy %q", ErrNoSA, pol.Name)
	}
	blob, err := sa.Seal(p.Marshal())
	if err != nil {
		if errors.Is(err, ErrExpired) || errors.Is(err, ErrPadExhaust) {
			g.SAD.RemoveOutbound(pol.Name, sa)
			g.expired.Add(1)
			if g.OnMissingSA != nil {
				g.OnMissingSA(pol)
			}
		}
		return nil, err
	}
	g.sealed.Add(1)
	if sa.SoftExpiring() {
		g.softRekeys.Add(1)
		if g.OnMissingSA != nil {
			g.OnMissingSA(pol)
		}
	}
	return &Packet{Src: g.Local, Dst: pol.PeerGW, Proto: ProtoESP, ID: p.ID, Payload: blob}, nil
}

// ProcessInbound handles a packet arriving from the black network:
// ESP packets are decapsulated via the SAD; clear packets are checked
// against policy (a clear packet whose flow demands protection is
// dropped — accepting it would let Eve inject plaintext into the
// enclave).
func (g *Gateway) ProcessInbound(p *Packet) (*Packet, error) {
	if p.Proto == ProtoESP {
		if len(p.Payload) < 4 {
			return nil, fmt.Errorf("ipsec: short ESP payload")
		}
		spi := uint32(p.Payload[0])<<24 | uint32(p.Payload[1])<<16 |
			uint32(p.Payload[2])<<8 | uint32(p.Payload[3])
		sa := g.SAD.BySPI(spi)
		if sa == nil {
			return nil, fmt.Errorf("%w: %#x", ErrUnknownSPI, spi)
		}
		inner, err := sa.Open(p.Payload)
		if err != nil {
			switch {
			case errors.Is(err, ErrReplay):
				g.replayDrops.Add(1)
			case errors.Is(err, ErrIntegrity):
				g.integFails.Add(1)
			case errors.Is(err, ErrExpired):
				g.expired.Add(1)
			}
			return nil, err
		}
		pkt, err := UnmarshalPacket(inner)
		if err != nil {
			return nil, fmt.Errorf("ipsec: decapsulated garbage: %w", err)
		}
		g.opened.Add(1)
		return pkt, nil
	}
	// Clear traffic: only deliverable if policy says bypass.
	pol := g.SPD.Match(p)
	if pol == nil || pol.Action != Bypass {
		g.discarded.Add(1)
		return nil, ErrDiscard
	}
	g.bypassed.Add(1)
	return p, nil
}
