// Package ipsec implements the traffic-processing half of the paper's
// Section 7: a Security Policy Database, a Security Association
// Database, and ESP-style tunnel encapsulation — extended, as in the
// BBN system, with a one-time-pad cipher suite whose pad material is
// drawn from quantum-distilled key.
//
// The packet model is a deliberately small IPv4-like header (the NetBSD
// kernel plumbing of the original is out of scope; the protocol
// behaviours — policy matching, SA lifetimes and rollover, anti-replay,
// the OTP extension — are what the paper's experiments exercise).
package ipsec

import (
	"encoding/binary"
	"fmt"
)

// IP protocol numbers used by the VPN.
const (
	ProtoAny  uint8 = 0
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
	ProtoESP  uint8 = 50
	ProtoPing uint8 = 1 // ICMP-ish test traffic
)

// Addr is a 4-byte network address.
type Addr [4]byte

// ParseAddr parses "a.b.c.d".
func ParseAddr(s string) (Addr, error) {
	var a Addr
	var vals [4]int
	n, err := fmt.Sscanf(s, "%d.%d.%d.%d", &vals[0], &vals[1], &vals[2], &vals[3])
	if err != nil || n != 4 {
		return a, fmt.Errorf("ipsec: bad address %q", s)
	}
	for i, v := range vals {
		if v < 0 || v > 255 {
			return a, fmt.Errorf("ipsec: bad address %q", s)
		}
		a[i] = byte(v)
	}
	return a, nil
}

// MustAddr is ParseAddr for constants; it panics on error.
func MustAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// Packet is the minimal datagram the VPN carries.
type Packet struct {
	Src     Addr
	Dst     Addr
	Proto   uint8
	ID      uint32 // for tracing test traffic
	Payload []byte
}

// headerLen is the marshaled header size.
const headerLen = 16

// Marshal serializes the packet.
func (p *Packet) Marshal() []byte {
	out := make([]byte, headerLen+len(p.Payload))
	out[0] = 4 // version
	out[1] = p.Proto
	binary.BigEndian.PutUint16(out[2:], uint16(headerLen+len(p.Payload)))
	copy(out[4:8], p.Src[:])
	copy(out[8:12], p.Dst[:])
	binary.BigEndian.PutUint32(out[12:16], p.ID)
	copy(out[headerLen:], p.Payload)
	return out
}

// UnmarshalPacket parses a serialized packet.
func UnmarshalPacket(b []byte) (*Packet, error) {
	if len(b) < headerLen {
		return nil, fmt.Errorf("ipsec: packet too short (%d bytes)", len(b))
	}
	if b[0] != 4 {
		return nil, fmt.Errorf("ipsec: bad version %d", b[0])
	}
	total := int(binary.BigEndian.Uint16(b[2:]))
	if total != len(b) {
		return nil, fmt.Errorf("ipsec: length field %d, packet %d bytes", total, len(b))
	}
	p := &Packet{
		Proto: b[1],
		ID:    binary.BigEndian.Uint32(b[12:16]),
	}
	copy(p.Src[:], b[4:8])
	copy(p.Dst[:], b[8:12])
	p.Payload = append([]byte(nil), b[headerLen:]...)
	return p, nil
}

// Prefix is an address prefix for selector matching.
type Prefix struct {
	Addr Addr
	Bits int // 0..32
}

// ParsePrefix parses "a.b.c.d/n".
func ParsePrefix(s string) (Prefix, error) {
	var a, b, c, d, n int
	cnt, err := fmt.Sscanf(s, "%d.%d.%d.%d/%d", &a, &b, &c, &d, &n)
	if err != nil || cnt != 5 || n < 0 || n > 32 {
		return Prefix{}, fmt.Errorf("ipsec: bad prefix %q", s)
	}
	addr, err := ParseAddr(fmt.Sprintf("%d.%d.%d.%d", a, b, c, d))
	if err != nil {
		return Prefix{}, err
	}
	return Prefix{Addr: addr, Bits: n}, nil
}

// MustPrefix is ParsePrefix for constants; it panics on error.
func MustPrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Contains reports whether addr falls inside the prefix.
func (p Prefix) Contains(addr Addr) bool {
	bits := p.Bits
	for i := 0; i < 4 && bits > 0; i++ {
		take := bits
		if take > 8 {
			take = 8
		}
		mask := byte(0xFF << (8 - take))
		if p.Addr[i]&mask != addr[i]&mask {
			return false
		}
		bits -= take
	}
	return true
}

func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Addr, p.Bits) }

// Selector matches traffic for a policy entry.
type Selector struct {
	Src   Prefix
	Dst   Prefix
	Proto uint8 // ProtoAny matches everything
}

// Matches reports whether the packet falls under this selector.
func (s Selector) Matches(p *Packet) bool {
	if s.Proto != ProtoAny && s.Proto != p.Proto {
		return false
	}
	return s.Src.Contains(p.Src) && s.Dst.Contains(p.Dst)
}

// Action is what the SPD directs for matched traffic.
type Action int

const (
	// Bypass forwards in the clear.
	Bypass Action = iota
	// Discard drops the packet.
	Discard
	// Protect tunnels the packet under the policy's SA.
	Protect
)

func (a Action) String() string {
	switch a {
	case Bypass:
		return "bypass"
	case Discard:
		return "discard"
	case Protect:
		return "protect"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// Policy is one SPD entry: a selector, an action, and — for Protect —
// the SA parameters IKE should negotiate, including whether this tunnel
// uses conventional ciphers with QKD reseeding or pure one-time pad
// ("Some may use conventional cryptography (e.g. AES), while others
// employ one-time pads, depending on how sensitive traffic is within a
// given VPN").
type Policy struct {
	Name    string
	Sel     Selector
	Action  Action
	Suite   CipherSuite
	PeerGW  Addr     // tunnel endpoint
	Life    Lifetime // per-SA lifetime (drives key rollover)
	OTPBits int      // pad bits per SA for SuiteOTP
}

// SPD is the ordered Security Policy Database; first match wins.
type SPD struct {
	entries []*Policy
}

// NewSPD builds a policy database.
func NewSPD(policies ...*Policy) *SPD {
	return &SPD{entries: policies}
}

// Add appends a policy.
func (s *SPD) Add(p *Policy) { s.entries = append(s.entries, p) }

// Match returns the first policy covering the packet, or nil.
func (s *SPD) Match(p *Packet) *Policy {
	for _, e := range s.entries {
		if e.Sel.Matches(p) {
			return e
		}
	}
	return nil
}

// Policies returns the entries in order.
func (s *SPD) Policies() []*Policy { return s.entries }
