// Package ipsec implements the traffic-processing half of the paper's
// Section 7: a Security Policy Database, a Security Association
// Database, and ESP-style tunnel encapsulation — extended, as in the
// BBN system, with a one-time-pad cipher suite whose pad material is
// drawn from quantum-distilled key.
//
// The packet model is a deliberately small IPv4-like header (the NetBSD
// kernel plumbing of the original is out of scope; the protocol
// behaviours — policy matching, SA lifetimes and rollover, anti-replay,
// the OTP extension — are what the paper's experiments exercise).
package ipsec

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// IP protocol numbers used by the VPN.
const (
	ProtoAny  uint8 = 0
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
	ProtoESP  uint8 = 50
	ProtoPing uint8 = 1 // ICMP-ish test traffic
)

// Addr is a 4-byte network address.
type Addr [4]byte

// ParseAddr parses "a.b.c.d".
func ParseAddr(s string) (Addr, error) {
	var a Addr
	var vals [4]int
	n, err := fmt.Sscanf(s, "%d.%d.%d.%d", &vals[0], &vals[1], &vals[2], &vals[3])
	if err != nil || n != 4 {
		return a, fmt.Errorf("ipsec: bad address %q", s)
	}
	for i, v := range vals {
		if v < 0 || v > 255 {
			return a, fmt.Errorf("ipsec: bad address %q", s)
		}
		a[i] = byte(v)
	}
	return a, nil
}

// MustAddr is ParseAddr for constants; it panics on error.
func MustAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// Packet is the minimal datagram the VPN carries.
type Packet struct {
	Src     Addr
	Dst     Addr
	Proto   uint8
	ID      uint32 // for tracing test traffic
	Payload []byte
}

// headerLen is the marshaled header size.
const headerLen = 16

// Marshal serializes the packet.
func (p *Packet) Marshal() []byte {
	return p.AppendMarshal(nil)
}

// AppendMarshal serializes the packet onto dst and returns the
// extended slice, so a reusable scratch buffer absorbs the per-packet
// make that Marshal would otherwise pay.
func (p *Packet) AppendMarshal(dst []byte) []byte {
	start := len(dst)
	dst = appendZeros(dst, headerLen+len(p.Payload))
	out := dst[start:]
	out[0] = 4 // version
	out[1] = p.Proto
	binary.BigEndian.PutUint16(out[2:], uint16(headerLen+len(p.Payload)))
	copy(out[4:8], p.Src[:])
	copy(out[8:12], p.Dst[:])
	binary.BigEndian.PutUint32(out[12:16], p.ID)
	copy(out[headerLen:], p.Payload)
	return dst
}

// UnmarshalPacket parses a serialized packet.
func UnmarshalPacket(b []byte) (*Packet, error) {
	p := &Packet{}
	if err := unmarshalPacketInto(p, b, true); err != nil {
		return nil, err
	}
	return p, nil
}

// unmarshalPacketInto parses into an existing Packet. With copyPayload
// false the payload aliases b — the batched inbound path uses this to
// hand out decapsulated packets pointing into the batch arena instead
// of copying every payload.
func unmarshalPacketInto(p *Packet, b []byte, copyPayload bool) error {
	if len(b) < headerLen {
		return fmt.Errorf("ipsec: packet too short (%d bytes)", len(b))
	}
	if b[0] != 4 {
		return fmt.Errorf("ipsec: bad version %d", b[0])
	}
	total := int(binary.BigEndian.Uint16(b[2:]))
	if total != len(b) {
		return fmt.Errorf("ipsec: length field %d, packet %d bytes", total, len(b))
	}
	p.Proto = b[1]
	p.ID = binary.BigEndian.Uint32(b[12:16])
	copy(p.Src[:], b[4:8])
	copy(p.Dst[:], b[8:12])
	if copyPayload {
		p.Payload = append([]byte(nil), b[headerLen:]...)
	} else {
		p.Payload = b[headerLen:]
	}
	return nil
}

// Prefix is an address prefix for selector matching.
type Prefix struct {
	Addr Addr
	Bits int // 0..32
}

// ParsePrefix parses "a.b.c.d/n".
func ParsePrefix(s string) (Prefix, error) {
	var a, b, c, d, n int
	cnt, err := fmt.Sscanf(s, "%d.%d.%d.%d/%d", &a, &b, &c, &d, &n)
	if err != nil || cnt != 5 || n < 0 || n > 32 {
		return Prefix{}, fmt.Errorf("ipsec: bad prefix %q", s)
	}
	addr, err := ParseAddr(fmt.Sprintf("%d.%d.%d.%d", a, b, c, d))
	if err != nil {
		return Prefix{}, err
	}
	return Prefix{Addr: addr, Bits: n}, nil
}

// MustPrefix is ParsePrefix for constants; it panics on error.
func MustPrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Contains reports whether addr falls inside the prefix.
func (p Prefix) Contains(addr Addr) bool {
	bits := p.Bits
	for i := 0; i < 4 && bits > 0; i++ {
		take := bits
		if take > 8 {
			take = 8
		}
		mask := byte(0xFF << (8 - take))
		if p.Addr[i]&mask != addr[i]&mask {
			return false
		}
		bits -= take
	}
	return true
}

func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Addr, p.Bits) }

// Selector matches traffic for a policy entry.
type Selector struct {
	Src   Prefix
	Dst   Prefix
	Proto uint8 // ProtoAny matches everything
}

// Matches reports whether the packet falls under this selector.
func (s Selector) Matches(p *Packet) bool {
	if s.Proto != ProtoAny && s.Proto != p.Proto {
		return false
	}
	return s.Src.Contains(p.Src) && s.Dst.Contains(p.Dst)
}

// Action is what the SPD directs for matched traffic.
type Action int

const (
	// Bypass forwards in the clear.
	Bypass Action = iota
	// Discard drops the packet.
	Discard
	// Protect tunnels the packet under the policy's SA.
	Protect
)

func (a Action) String() string {
	switch a {
	case Bypass:
		return "bypass"
	case Discard:
		return "discard"
	case Protect:
		return "protect"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// Policy is one SPD entry: a selector, an action, and — for Protect —
// the SA parameters IKE should negotiate, including whether this tunnel
// uses conventional ciphers with QKD reseeding or pure one-time pad
// ("Some may use conventional cryptography (e.g. AES), while others
// employ one-time pads, depending on how sensitive traffic is within a
// given VPN").
type Policy struct {
	Name    string
	Sel     Selector
	Action  Action
	Suite   CipherSuite
	PeerGW  Addr     // tunnel endpoint
	Life    Lifetime // per-SA lifetime (drives key rollover)
	OTPBits int      // pad bits per SA for SuiteOTP
}

// SPD is the ordered Security Policy Database; first match wins.
//
// Lookup runs against a tuple-space index (one hash map per distinct
// selector shape — src/dst prefix lengths plus protocol) built lazily
// on first Match and invalidated by Add, so a fabric-scale gateway
// with 100k+ policies matches in O(shapes) instead of scanning the
// whole ordered list per packet.
type SPD struct {
	entries []*Policy
	idx     atomic.Pointer[spdIndex]
}

// spdShape is one distinct selector shape's exact-match table: mask
// the packet's addresses to the shape's prefix lengths and look the
// pair up. Among shapes, the lowest-index (earliest) policy wins,
// preserving the ordered-list first-match semantics exactly.
type spdShape struct {
	srcBits, dstBits int
	proto            uint8
	byKey            map[spdKey]spdHit
}

type spdKey struct {
	src, dst Addr
}

type spdHit struct {
	pol   *Policy
	order int
}

type spdIndex struct {
	shapes []*spdShape
	byName map[string]*Policy
}

// maskAddr zeroes the host bits of a below a prefix length.
func maskAddr(a Addr, bits int) Addr {
	if bits >= 32 {
		return a
	}
	v := binary.BigEndian.Uint32(a[:])
	v &= ^uint32(0) << (32 - bits)
	var out Addr
	binary.BigEndian.PutUint32(out[:], v)
	return out
}

func buildSPDIndex(entries []*Policy) *spdIndex {
	idx := &spdIndex{byName: make(map[string]*Policy, len(entries))}
	find := func(srcBits, dstBits int, proto uint8) *spdShape {
		for _, sh := range idx.shapes {
			if sh.srcBits == srcBits && sh.dstBits == dstBits && sh.proto == proto {
				return sh
			}
		}
		sh := &spdShape{srcBits: srcBits, dstBits: dstBits, proto: proto,
			byKey: make(map[spdKey]spdHit)}
		idx.shapes = append(idx.shapes, sh)
		return sh
	}
	for i, e := range entries {
		sh := find(e.Sel.Src.Bits, e.Sel.Dst.Bits, e.Sel.Proto)
		k := spdKey{src: maskAddr(e.Sel.Src.Addr, sh.srcBits), dst: maskAddr(e.Sel.Dst.Addr, sh.dstBits)}
		if _, dup := sh.byKey[k]; !dup { // first entry per key wins, like the scan
			sh.byKey[k] = spdHit{pol: e, order: i}
		}
		if _, dup := idx.byName[e.Name]; !dup {
			idx.byName[e.Name] = e
		}
	}
	return idx
}

// NewSPD builds a policy database.
func NewSPD(policies ...*Policy) *SPD {
	return &SPD{entries: policies}
}

// Add appends a policy (and invalidates the lookup index).
func (s *SPD) Add(p *Policy) {
	s.entries = append(s.entries, p)
	s.idx.Store(nil)
}

// Match returns the first policy covering the packet, or nil.
func (s *SPD) Match(p *Packet) *Policy {
	idx := s.idx.Load()
	if idx == nil {
		idx = buildSPDIndex(s.entries)
		s.idx.Store(idx)
	}
	var bestPol *Policy
	bestOrder := int(^uint(0) >> 1)
	for _, sh := range idx.shapes {
		if sh.proto != ProtoAny && sh.proto != p.Proto {
			continue
		}
		k := spdKey{src: maskAddr(p.Src, sh.srcBits), dst: maskAddr(p.Dst, sh.dstBits)}
		if hit, ok := sh.byKey[k]; ok && hit.order < bestOrder {
			bestPol, bestOrder = hit.pol, hit.order
		}
	}
	return bestPol
}

// ByName returns the first policy with the given name, or nil. Like
// Match, it runs against the lazily-built index, so IKE's per-tunnel
// policy resolution stays O(1) on a fabric-scale database.
func (s *SPD) ByName(name string) *Policy {
	idx := s.idx.Load()
	if idx == nil {
		idx = buildSPDIndex(s.entries)
		s.idx.Store(idx)
	}
	return idx.byName[name]
}

// Policies returns the entries in order.
func (s *SPD) Policies() []*Policy { return s.entries }
