package ipsec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// fuzzSA builds a receive-side SA of the given suite with a
// deterministic key/pad (sequence state fresh per call).
func fuzzSA(tb testing.TB, suite CipherSuite, spi uint32) *SA {
	tb.Helper()
	var sa *SA
	var err error
	if suite == SuiteOTP {
		sa, err = NewOTPSA(spi, randKey(8+64*1024, 77), Lifetime{})
	} else {
		sa, err = NewSA(spi, suite, randKey(suite.KeyBits()/8, 77), Lifetime{})
	}
	if err != nil {
		tb.Fatal(err)
	}
	return sa
}

var fuzzSuites = []CipherSuite{SuiteNull, SuiteAES128CTR, Suite3DESCBC, SuiteOTP}

// FuzzSealOpen round-trips arbitrary payloads through every cipher
// suite: whatever Seal produces, a same-keyed receiver must Open back
// to the original bytes, and neither side may panic.
func FuzzSealOpen(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("ping"))
	f.Add(bytes.Repeat([]byte{0xA5}, 1400))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > 8*1024 {
			payload = payload[:8*1024]
		}
		for _, suite := range fuzzSuites {
			tx := fuzzSA(t, suite, 500)
			rx := fuzzSA(t, suite, 500)
			blob, err := tx.Seal(payload)
			if err != nil {
				t.Fatalf("%v: Seal: %v", suite, err)
			}
			got, err := rx.Open(blob)
			if err != nil {
				t.Fatalf("%v: Open: %v", suite, err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("%v: round-trip mismatch: %d bytes in, %d out", suite, len(payload), len(got))
			}
		}
	})
}

// FuzzOTPOpen throws malformed blobs at the OTP wire format
// (SPI|seq|padOffset|ct|tag). Seeds cover the historic failure modes:
// truncation below the header, a pad offset whose addition wraps
// uint64 (the satellite overflow bug), and a flipped tag. Open must
// reject without panicking, and only a pristine blob may verify.
func FuzzOTPOpen(f *testing.F) {
	mk := func(mutate func(b []byte)) []byte {
		sa := fuzzSA(f, SuiteOTP, 900)
		blob, err := sa.Seal([]byte("attack at dawn"))
		if err != nil {
			f.Fatal(err)
		}
		if mutate != nil {
			mutate(blob)
		}
		return blob
	}
	f.Add(mk(nil))
	f.Add(mk(nil)[:7])        // shorter than SPI|seq
	f.Add(mk(nil)[:15])       // header cut mid-offset
	f.Add(mk(func(b []byte) { // offset overflow: 2^64-8 wraps the bounds sum
		binary.BigEndian.PutUint64(b[8:16], ^uint64(0)-7)
	}))
	f.Add(mk(func(b []byte) { // offset just past the pad
		binary.BigEndian.PutUint64(b[8:16], 1<<40)
	}))
	f.Add(mk(func(b []byte) { b[len(b)-1] ^= 1 })) // flipped tag bit
	f.Add(mk(func(b []byte) { b[16] ^= 0x80 }))    // flipped ciphertext bit
	f.Fuzz(func(t *testing.T, blob []byte) {
		rx := fuzzSA(t, SuiteOTP, 900)
		pristine, err := rx.Open(blob)
		if err != nil {
			return // rejected without panic: fine
		}
		// It verified — then it must be the one honest blob.
		if !bytes.Equal(pristine, []byte("attack at dawn")) {
			t.Fatalf("forged blob verified: %q", pristine)
		}
	})
}

// TestOTPOpenOffsetOverflow pins the satellite fix directly: a blob
// whose pad offset makes offset+len(ct)+tagLen wrap uint64 must be
// rejected as pad exhaustion, not panic on the pad slice.
func TestOTPOpenOffsetOverflow(t *testing.T) {
	tx := fuzzSA(t, SuiteOTP, 901)
	blob, err := tx.Seal([]byte("overflow probe"))
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []uint64{^uint64(0), ^uint64(0) - 7, ^uint64(0) - 1024, 1 << 40} {
		b := append([]byte(nil), blob...)
		binary.BigEndian.PutUint64(b[8:16], off)
		rx := fuzzSA(t, SuiteOTP, 901)
		if _, err := rx.Open(b); !errors.Is(err, ErrPadExhaust) {
			t.Errorf("offset %#x: err = %v, want ErrPadExhaust", off, err)
		}
	}
}
