package experiments

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"time"

	"qkd/internal/chaos"
	"qkd/internal/core"
	"qkd/internal/ike"
	"qkd/internal/ipsec"
	"qkd/internal/kms"
	"qkd/internal/qnet"
	"qkd/internal/relay"
	"qkd/internal/vpn"
	"qkd/internal/workload"
)

// E17ChaosSoak is the robustness gate: a trace-shaped workload (bursty
// mixed conferencing/bulk flows, heavy-tailed sizes, diurnal swell,
// flash crowds) drives an 8-tunnel QKD-keyed VPN whose soak-time key
// arrives over a 3-relay striped QNet mesh, while a seeded fault
// schedule composes fiber cuts, an Eve eavesdrop storm, a relay
// compromise, a KDS overload pulse, and a gateway crash-restart in the
// middle of the rollover churn.
//
// The experiment passes only if the end-to-end SLOs hold through the
// chaos: delivered-packet p99 latency within budget, zero replayed
// ciphertexts accepted, zero cross-tunnel payload leakage, and key
// starvation bounded — every tunnel back on fresh SAs within the
// recovery deadline once the faults clear. The same seed reproduces
// the same fault schedule, tick for tick.
func E17ChaosSoak(seed uint64, quick bool) (*Report, error) {
	r := &Report{
		ID:    "E17",
		Title: "chaos soak: trace-shaped workload x seeded fault schedule, SLO-gated",
		Paper: "\"the DARPA Quantum Network will be continuously operational\" (Sec. 1); resilience via \"a mesh of trusted relays\" and per-lifetime rekeying (Secs. 5, 7)",
	}

	const (
		tunnels   = 8
		relays    = 3 // 2 stripes + 1 disjoint spare
		linkRate  = 1 << 14
		pumpBits  = 2048
		lifeBytes = 64 << 10 // SA rollover roughly every 46 full-MTU packets
		p99SLO    = 50 * time.Millisecond
	)
	horizon := 192
	if quick {
		horizon = 96
	}

	// --- The fault schedule: seeded, deterministic, non-overlapping
	// within each fault kind. ---
	ccfg := chaos.Config{
		Seed:    seed,
		Horizon: horizon,
		Counts: map[chaos.Kind]int{
			chaos.FiberCut:        2,
			chaos.EveStorm:        1,
			chaos.RelayCompromise: 1,
			chaos.KDSOverload:     1,
			chaos.GatewayRestart:  1,
		},
		Targets: map[chaos.Kind]int{
			chaos.FiberCut:        relays,
			chaos.EveStorm:        relays,
			chaos.RelayCompromise: relays,
		},
	}
	sched := chaos.Plan(ccfg)
	if !reflect.DeepEqual(sched, chaos.Plan(ccfg)) {
		return r, fmt.Errorf("E17: fault schedule is not deterministic for seed %d", seed)
	}
	r.Rowf("schedule: seed %d, horizon %d ticks, %d events (%d fiber cuts, %d eve storm, %d relay compromise, %d kds pulse, %d restart) — same seed, same schedule",
		seed, horizon, len(sched),
		sched.Count(chaos.FiberCut), sched.Count(chaos.EveStorm),
		sched.Count(chaos.RelayCompromise), sched.Count(chaos.KDSOverload),
		sched.Count(chaos.GatewayRestart))

	// --- The fabric: two gateways joined by a 3-relay striped mesh for
	// soak-time key, 8 AES tunnels under byte lifetimes so the workload
	// itself keeps rollovers continuously in flight. ---
	rn := relay.NewNetwork(seed ^ 0xE17)
	rn.AddNode("gwA")
	rn.AddNode("gwB")
	for i := 0; i < relays; i++ {
		rel := fmt.Sprintf("r%d", i)
		rn.AddNode(rel)
		if _, err := rn.AddLink("gwA", rel, linkRate); err != nil {
			return r, err
		}
		if _, err := rn.AddLink(rel, "gwB", linkRate); err != nil {
			return r, err
		}
	}
	qn := qnet.NewNetwork(qnet.Config{Seed: seed ^ 0x9E17})
	qn.RegisterRelay(rn)
	qn.Tick()

	specs := make([]vpn.TunnelSpec, tunnels)
	for i := range specs {
		specs[i] = vpn.TunnelSpec{
			Name:    fmt.Sprintf("t%d", i),
			PrefixA: ipsec.MustPrefix(fmt.Sprintf("10.1.%d.0/24", i)),
			PrefixB: ipsec.MustPrefix(fmt.Sprintf("10.2.%d.0/24", i)),
			Suite:   ipsec.SuiteAES128CTR,
			Life:    ipsec.Lifetime{Bytes: lifeBytes},
		}
	}
	n, err := vpn.New(vpn.Config{
		Photonics: labParams(),
		QKD:       core.Config{BatchBits: 2048},
		Tunnels:   specs,
		KDS:       true,
		QNet:      qn,
		QNetSrc:   "gwA",
		QNetDst:   "gwB",
		IKE:       ike.Config{Phase2Timeout: 5 * time.Second},
		Seed:      seed,
	})
	if err != nil {
		return r, err
	}
	defer n.Close()
	if err := n.DistillKeys(24*1024, 1500); err != nil {
		return r, err
	}
	if err := n.Establish(); err != nil {
		return r, err
	}

	// --- Fault hooks. Faults of different kinds may overlap on one
	// link, so restores are refcounted: a link comes back only when its
	// last outstanding fault ends. ---
	linkFaults := map[[2]string]int{}
	breakLink := func(a, b string, eavesdrop bool) {
		if linkFaults[[2]string{a, b}]++; linkFaults[[2]string{a, b}] > 1 {
			return
		}
		if eavesdrop {
			_ = rn.Eavesdrop(a, b)
		} else {
			_ = rn.Cut(a, b)
		}
	}
	healLink := func(a, b string) {
		if linkFaults[[2]string{a, b}]--; linkFaults[[2]string{a, b}] > 0 {
			return
		}
		_ = rn.Restore(a, b)
	}
	relName := func(e chaos.Event) string { return fmt.Sprintf("r%d", e.Target) }

	var (
		restartErr   error
		overloadOff  chan struct{}
		overloadSt   *kms.Stream
		maxPressure  float64
		restartsDone int
	)
	inj := chaos.NewInjector(sched)
	inj.On(chaos.FiberCut,
		func(e chaos.Event) { breakLink("gwA", relName(e), false) },
		func(e chaos.Event) { healLink("gwA", relName(e)) })
	inj.On(chaos.EveStorm,
		func(e chaos.Event) { breakLink(relName(e), "gwB", true) },
		func(e chaos.Event) { healLink(relName(e), "gwB") })
	inj.On(chaos.RelayCompromise,
		// An adversary owning the relay sees both of its links; the
		// whole site drops out of the mesh until re-keyed.
		func(e chaos.Event) { breakLink("gwA", relName(e), true); breakLink(relName(e), "gwB", true) },
		func(e chaos.Event) { healLink("gwA", relName(e)); healLink(relName(e), "gwB") })
	inj.On(chaos.KDSOverload,
		func(chaos.Event) {
			// A pad-hungry bulk consumer swamps the scheduler: a huge
			// OTP-class demand queues (never shed) ahead of the rekey
			// class while the pump is down, so rekey requests see the
			// degraded/shed machinery instead of infinite patience.
			overloadOff = make(chan struct{})
			overloadSt, _ = n.A.KDS.NewStream("chaos-bulk", 8192, kms.ClassOTP)
			st, off := overloadSt, overloadOff
			go func() {
				if tk, err := st.AllocateWait(64, time.Hour, off); err == nil {
					st.Release(tk) // pulse got covered: hand the ledger back
				}
			}()
			// The waiter enqueues from its own goroutine; a quick-mode
			// tick can outrun the scheduler and end the pulse before the
			// demand ever lands. Hold the injector until the backlog is
			// visible so the pulse spans its full scheduled duration.
			for i := 0; i < 2000 && n.A.KDS.Pressure() == 0; i++ {
				time.Sleep(50 * time.Microsecond)
			}
		},
		func(chaos.Event) {
			close(overloadOff)
			overloadOff = nil
		})
	inj.On(chaos.GatewayRestart,
		func(chaos.Event) {
			// Crash-restart gateway B mid-rollover. A restart colliding
			// with the overload pulse can starve its renegotiation;
			// one synthetic top-up mirrors an operator forcing key in.
			if err := n.RestartSite('B'); err != nil {
				n.ChargeSynthetic(128 * 1024)
				restartErr = n.RestartSite('B')
			}
			restartsDone++
		}, nil)

	// --- The soak. ---
	gen := workload.New(workload.Config{Seed: seed, Tunnels: tunnels})
	type capture struct {
		pkt    ipsec.Packet
		tunnel int
	}
	var (
		taps     []capture
		offered  int
		majorDel int
		dropped  int
		lats     []float64
		leaks    int
		replayAc int
		pumpFail int
		pkts     []workload.Packet
	)
	// Every 64th sealed ciphertext on the wire is recorded by Eve for
	// re-injection at the end of the tick.
	tapEvery, tapN := 64, 0
	n.EveTap = func(p *ipsec.Packet) (*ipsec.Packet, bool) {
		if p.Proto == ipsec.ProtoESP {
			if tapN++; tapN%tapEvery == 0 {
				cp := *p
				cp.Payload = append([]byte(nil), p.Payload...)
				taps = append(taps, capture{pkt: cp})
			}
		}
		return p, false
	}

	for tick := 0; tick <= horizon; tick++ {
		inj.Advance(tick)
		qn.Tick()
		if !inj.Active(chaos.KDSOverload) {
			if err := n.PumpQNet(pumpBits); err != nil {
				pumpFail++
			}
		}
		if p := n.A.KDS.Pressure(); p > maxPressure {
			maxPressure = p
		}
		pkts = gen.Tick(pkts[:0])
		for _, wp := range pkts {
			src := ipsec.Addr{10, 1, byte(wp.Tunnel), 5}
			dst := ipsec.Addr{10, 2, byte(wp.Tunnel), 9}
			want := bytes.Repeat([]byte{byte(0xA0 + wp.Tunnel)}, wp.Bytes)
			offered++
			start := wallNow()
			got, err := n.Send(src, dst, uint32(offered), want)
			if err != nil {
				dropped++ // no-SA gap while a rekey is in flight: the SLO ledger records it
				continue
			}
			lats = append(lats, float64(wallSince(start).Microseconds())/1000)
			if !bytes.Equal(got, want) {
				leaks++
			}
			majorDel++
		}
		// Eve replays this tick's captures straight at gateway B.
		for _, c := range taps {
			pkt := c.pkt
			if _, err := n.B.GW.ProcessInbound(&pkt); err == nil {
				replayAc++
			}
		}
		taps = taps[:0]
	}
	inj.Advance(horizon + horizon/10 + 2) // flush any tail-end fault ends
	if !inj.Done() {
		return r, fmt.Errorf("E17: injector did not drain the schedule")
	}
	if restartErr != nil {
		return r, fmt.Errorf("E17: gateway restart never recovered: %w", restartErr)
	}

	// --- Bounded starvation: with the faults cleared, every tunnel must
	// return to fresh SAs within the recovery deadline. ---
	recoverStart := wallNow()
	deadline := recoverStart.Add(60 * time.Second)
	for i := 0; i < tunnels; i++ {
		src := ipsec.Addr{10, 1, byte(i), 5}
		dst := ipsec.Addr{10, 2, byte(i), 9}
		want := bytes.Repeat([]byte{byte(0xA0 + i)}, 256)
		for {
			got, err := n.SendWithRollover(src, dst, 1<<20+uint32(i), want)
			if err == nil {
				if !bytes.Equal(got, want) {
					leaks++
				}
				break
			}
			if wallNow().After(deadline) {
				return r, fmt.Errorf("E17: tunnel %d starved past the recovery deadline: %w", i, err)
			}
			qn.Tick()
			if perr := n.PumpQNet(pumpBits); perr != nil {
				pumpFail++
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	recoverT := wallSince(recoverStart)

	// --- SLO gates. ---
	sort.Float64s(lats)
	p50 := workload.Quantile(lats, 0.50)
	p99 := workload.Quantile(lats, 0.99)
	wpkts, wbytes := gen.Totals()
	st := n.Stats()
	gst := n.B.GW.Stats()

	r.Rowf("workload: %d conferencing + %d bulk packets (%d KiB total) over %d ticks; %d offered to the fabric, %d delivered, %d dropped in no-SA gaps",
		wpkts[workload.Conferencing], wpkts[workload.Bulk],
		(wbytes[0]+wbytes[1])/1024, horizon+1, offered, majorDel, dropped)
	r.Rowf("chaos: %d failed pump rounds while the mesh was cut/eavesdropped; peak KDS pressure %.2f during the overload pulse; %d gateway restart(s), %d rekey backoff retries, %d abandoned",
		pumpFail, maxPressure, st.Restarts, st.RekeyRetries, st.RekeyAbandoned)
	r.Rowf("SLOs: delivered p50 %.3fms, p99 %.3fms (budget %v); replayed ciphertexts accepted %d of %d injected (replay drops %d); cross-tunnel payload leaks %d; all %d tunnels recovered in %v",
		p50, p99, p99SLO, replayAc, tapN/tapEvery, gst.ReplayDrops, leaks, tunnels, recoverT.Round(time.Millisecond))

	if majorDel == 0 {
		return r, fmt.Errorf("E17: nothing delivered")
	}
	if d := time.Duration(p99 * float64(time.Millisecond)); d > p99SLO {
		return r, fmt.Errorf("E17: delivered p99 %.3fms breaches the %v SLO", p99, p99SLO)
	}
	if replayAc != 0 {
		return r, fmt.Errorf("E17: %d replayed ciphertexts accepted", replayAc)
	}
	if leaks != 0 {
		return r, fmt.Errorf("E17: %d cross-tunnel payload leaks", leaks)
	}
	if restartsDone == 0 || st.Restarts == 0 {
		return r, fmt.Errorf("E17: the schedule never restarted a gateway")
	}
	if maxPressure <= 0 {
		return r, fmt.Errorf("E17: the KDS overload pulse produced no pressure signal")
	}
	r.Rowf("result: SLOs hold through %d composed faults — the fabric degrades (drops, retries, parked stripes) but never breaks a security invariant",
		len(sched))
	return r, nil
}
