package experiments

import (
	"strings"
	"testing"
)

// Each experiment must run to completion in quick mode and produce a
// non-trivial report. These tests are the regression net for the
// reproduction itself; the shape assertions live inside each Exx.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	reports, err := All(1234, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 18 {
		t.Fatalf("got %d reports, want 18", len(reports))
	}
	for _, r := range reports {
		if len(r.Rows()) == 0 {
			t.Errorf("%s produced no rows", r.ID)
		}
		if r.Paper == "" {
			t.Errorf("%s cites no paper claim", r.ID)
		}
		if !strings.Contains(r.String(), r.ID) {
			t.Errorf("%s: String() missing ID", r.ID)
		}
	}
}

func TestE12TranscriptMatchesFig12Shape(t *testing.T) {
	r, err := E12Transcript(42, true)
	if err != nil {
		t.Fatal(err)
	}
	out := r.String()
	for _, want := range []string{
		"respond new phase 2 negotiation",
		"QPFS",
		"Qblocks",
		"KEYMAT using",
		"QBITS",
		"IPsec-SA established: ESP/Tunnel",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q", want)
		}
	}
}

func TestE3ReproducesOneInTwoHundred(t *testing.T) {
	r, err := E3SiftRatio(7, true)
	if err != nil {
		t.Fatal(err)
	}
	// The ratio row must land near 200.
	found := false
	for _, row := range r.Rows() {
		if strings.Contains(row, "ratio: 1 sifted bit per") {
			found = true
		}
	}
	if !found {
		t.Error("E3 did not report the sift ratio")
	}
}

func TestH2(t *testing.T) {
	if h2(0) != 0 || h2(1) != 0 {
		t.Error("h2 endpoints")
	}
	if v := h2(0.5); v < 0.999 || v > 1.001 {
		t.Errorf("h2(0.5) = %v", v)
	}
}
