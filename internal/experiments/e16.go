package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"qkd/internal/ike"
	"qkd/internal/ipsec"
	"qkd/internal/vpn"
)

// E16Fabric scales the paper's single gateway pair to a gateway
// *fabric*: O(100k) mixed-suite tunnels spread over independent
// gateway pairs, driven through the batched zero-alloc dataplane, with
// a synchronized rollover storm in the middle of the soak.
//
// Every tunnel shares one byte lifetime, so one traffic burst pushes
// the whole fabric across its soft-expiry threshold at once — the
// worst-case control-plane event. The coalescing rekeyer must collapse
// that storm into a handful of batched IKE exchanges (one QoS ticket
// per key stream per exchange, not one per tunnel), the inbound SAD
// must stay bounded at two generations per tunnel, and the dataplane
// must deliver every packet of the post-storm burst on the fresh SAs
// with zero integrity failures.
func E16Fabric(seed uint64, quick bool) (*Report, error) {
	r := &Report{
		ID:    "E16",
		Title: "100k-tunnel gateway fabric: batched dataplane + synchronized rollover storm",
		Paper: "\"IPsec-based secure networks can readily grow to global scale\" (Sec. 7); per-lifetime rollover \"will bring with it fresh key material\"",
	}

	pairs, perPair := 4, 25000
	if quick {
		pairs, perPair = 2, 1536
	}
	const (
		otpEvery  = 16
		otpBits   = 8192 // 1 KiB pad per direction per generation
		payload   = 80   // sealed bytes per packet = 16-byte header + payload
		pktsPer   = 4    // packets per tunnel per burst
		lifeBytes = 850  // soft threshold 744: burst 2 (768 sealed) crosses it
		chunk     = 256  // tunnels per dataplane batch
	)

	f, err := vpn.NewFabric(vpn.FabricConfig{
		Pairs:          pairs,
		TunnelsPerPair: perPair,
		OTPEvery:       otpEvery,
		OTPBits:        otpBits,
		Life:           ipsec.Lifetime{Bytes: lifeBytes},
		IKE:            ike.Config{Phase2Timeout: 60 * time.Second},
		Seed:           seed,
	})
	if err != nil {
		return r, err
	}
	defer f.Close()
	tunnels := f.Tunnels()

	// Key for establishment, the storm, and margin.
	f.ChargeKey(3 * f.KeyBitsPerRollover())

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := wallNow()
	if err := f.Establish(); err != nil {
		return r, fmt.Errorf("E16: establish: %w", err)
	}
	establishT := wallSince(start)
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	heapGrowth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if heapGrowth < 0 {
		heapGrowth = 0
	}
	heapPerTunnel := float64(heapGrowth) / float64(tunnels)

	var establishBatches uint64
	for _, n := range f.Nets {
		establishBatches += n.A.IKE.Stats().Phase2Batches
	}
	r.Rowf("fabric: %d gateway pairs x %d tunnels = %d total (%d otp, rest aes128), lifetime %dB",
		pairs, perPair, tunnels, pairs*(perPair/otpEvery), lifeBytes)
	r.Rowf("establish: %d tunnels in %v via %d batched IKE exchanges (%.0f tunnels/exchange), %.1f KiB heap/tunnel",
		tunnels, establishT.Round(time.Millisecond), establishBatches,
		float64(tunnels)/float64(establishBatches), heapPerTunnel/1024)

	// burst drives every tunnel through the batched dataplane: chunked
	// outbound batches on gateway A, their sealed blobs straight into
	// inbound batches on gateway B, payloads verified end to end.
	want := bytes.Repeat([]byte{0xE1}, payload)
	bOut, bIn := ipsec.NewBatch(), ipsec.NewBatch()
	defer bOut.Release()
	defer bIn.Release()
	inner := make([]*ipsec.Packet, 0, chunk*pktsPer)
	sealed := make([]*ipsec.Packet, 0, chunk*pktsPer)
	burst := func(id uint32) (delivered int, err error) {
		for _, n := range f.Nets {
			for lo := 0; lo < perPair; lo += chunk {
				hi := lo + chunk
				if hi > perPair {
					hi = perPair
				}
				inner = inner[:0]
				for t := lo; t < hi; t++ {
					for k := 0; k < pktsPer; k++ {
						inner = append(inner, &ipsec.Packet{
							Src:     ipsec.Addr{10, byte(t >> 8), byte(t), 5},
							Dst:     ipsec.Addr{11, byte(t >> 8), byte(t), 9},
							Proto:   ipsec.ProtoPing,
							ID:      id,
							Payload: want,
						})
					}
				}
				sealed = sealed[:0]
				for i, res := range n.A.GW.ProcessOutboundBatch(bOut, inner) {
					if res.Err != nil {
						return delivered, fmt.Errorf("tunnel %d outbound: %w", lo+i/pktsPer, res.Err)
					}
					sealed = append(sealed, res.Pkt)
				}
				for i, res := range n.B.GW.ProcessInboundBatch(bIn, sealed) {
					if res.Err != nil {
						return delivered, fmt.Errorf("tunnel %d inbound: %w", lo+i/pktsPer, res.Err)
					}
					if !bytes.Equal(res.Pkt.Payload, want) || res.Pkt.Dst != inner[i].Dst {
						return delivered, fmt.Errorf("tunnel %d: payload corrupted in flight", lo+i/pktsPer)
					}
					delivered++
				}
			}
		}
		return delivered, nil
	}

	// Bursts 1-2: the second crosses every tunnel's soft threshold at
	// once — the fabric-wide storm fires behind the dataplane.
	start = wallNow()
	d1, err := burst(1)
	if err != nil {
		return r, fmt.Errorf("E16: burst 1: %w", err)
	}
	d2, err := burst(2)
	if err != nil {
		return r, fmt.Errorf("E16: burst 2: %w", err)
	}
	soakT := wallSince(start)

	// The storm drains in the background: every tunnel re-established
	// (2 fresh SAs each, on top of the 2 from establishment).
	start = wallNow()
	deadline := start.Add(5 * time.Minute)
	for _, n := range f.Nets {
		for n.A.IKE.Stats().SAsEstablished < uint64(4*perPair) {
			if wallNow().After(deadline) {
				return r, fmt.Errorf("E16: storm wedged: %d of %d SAs re-established",
					n.A.IKE.Stats().SAsEstablished, 4*perPair)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	stormT := wallSince(start)

	// Burst 3 rides the fresh generation.
	d3, err := burst(3)
	if err != nil {
		return r, fmt.Errorf("E16: post-storm burst: %w", err)
	}
	totalPkts := 3 * tunnels * pktsPer
	if d1+d2+d3 != totalPkts {
		return r, fmt.Errorf("E16: delivered %d of %d packets", d1+d2+d3, totalPkts)
	}

	var stormBatches, ticketAllocs, softRekeys uint64
	for _, n := range f.Nets {
		st := n.A.IKE.Stats()
		stormBatches += st.Phase2Batches
		ticketAllocs += st.TicketAllocs
		softRekeys += n.A.GW.Stats().SoftRekeys
	}
	stormBatches -= establishBatches
	r.Rowf("soak: %d packets (%d/tunnel) through the batched dataplane in %v; storm of %d soft rekeys drained in %v",
		totalPkts, 3*pktsPer, soakT.Round(time.Millisecond), softRekeys, stormT.Round(time.Millisecond))
	r.Rowf("storm coalescing: %d tunnels rolled over in %d batched exchanges; %d QoS tickets total vs %d for unbatched IKE",
		tunnels, stormBatches, ticketAllocs, 2*tunnels)
	if stormBatches == 0 || stormBatches > uint64(tunnels/8) {
		return r, fmt.Errorf("E16: storm took %d batched exchanges for %d tunnels (not coalescing)",
			stormBatches, tunnels)
	}
	if ticketAllocs >= uint64(tunnels) {
		return r, fmt.Errorf("E16: %d ticket allocations for %d tunnels (no amortization)", ticketAllocs, tunnels)
	}

	// Fabric-wide dataplane invariants after the storm.
	for p, n := range f.Nets {
		for side, gw := range map[string]*ipsec.Gateway{"A": n.A.GW, "B": n.B.GW} {
			st := gw.Stats()
			if st.IntegFailures != 0 {
				return r, fmt.Errorf("E16: pair %d gateway %s: %d integrity failures", p, side, st.IntegFailures)
			}
			in, out := gw.SAD.Count()
			if in > 2*perPair || out > perPair {
				return r, fmt.Errorf("E16: pair %d gateway %s SAD unbounded: %d inbound / %d outbound for %d tunnels",
					p, side, in, out, perPair)
			}
		}
	}
	inA, _ := f.Nets[0].A.GW.SAD.Count()
	r.Rowf("invariants: 0 integrity failures fabric-wide; inbound SAD %d for %d tunnels/pair (cap %d)",
		inA, perPair, 2*perPair)
	r.Rowf("result: fabric holds %d tunnels through a synchronized rollover storm at %.1f KiB heap/tunnel",
		tunnels, heapPerTunnel/1024)
	return r, nil
}
