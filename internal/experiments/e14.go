package experiments

import (
	"errors"
	"fmt"
	"time"

	"qkd/internal/bitarray"
	"qkd/internal/kms"
	"qkd/internal/optical"
	"qkd/internal/photonics"
	"qkd/internal/qnet"
	"qkd/internal/relay"
)

// E14Striping exercises the unified QKD network layer: the paper's
// Section 8 closes by arguing the real DARPA network is a *mix* of
// trusted relays and untrusted photonic switches, and that key
// transport must survive both fiber cuts and eavesdropping alarms.
// qnet registers both architectures as one topology, XOR-stripes an
// end-to-end key across k vertex-disjoint paths (any k-1 compromised
// paths reveal nothing), and fails a stripe over to a fresh disjoint
// path when its QBER spikes or its fiber is cut mid-transport.
//
// Measured: trust exposure per intermediate relay at k=1/2/3 (share
// bits held vs key bits reconstructible), survival of one Cut plus one
// Eavesdrop mid-transport with zero delivered-key loss and bit-exact
// keys at both KDS endpoints, DTN custody conservation across the
// failover windows, and pool conservation on transports that never
// start.
func E14Striping(seed uint64, quick bool) (*Report, error) {
	r := &Report{
		ID:    "E14",
		Title: "disjoint-path XOR key striping with QBER-triggered failover",
		Paper: "\"a mix of trusted and untrusted relays or switches\" (Sec. 8); relay meshes where \"keys ... are known to the relays\" vs switches that never see key",
	}

	nbits, chunk := 4096, 256
	if quick {
		nbits = 2048
	}
	chunks := nbits / chunk

	// The wider network: five parallel trusted relays gwA-ri-gwB plus
	// one untrusted light path gwA-(s1,s2)-gwB, so up to 3 stripes plus
	// spare capacity for two failovers.
	rn := relay.NewNetwork(seed ^ 0xE14)
	rn.AddNode("gwA")
	rn.AddNode("gwB")
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("r%d", i)
		rn.AddNode(name)
		if _, err := rn.AddLink("gwA", name, 4*nbits); err != nil {
			return r, err
		}
		if _, err := rn.AddLink(name, "gwB", 4*nbits); err != nil {
			return r, err
		}
	}
	mesh := optical.NewMesh()
	mesh.AddEndpoint("gwA")
	mesh.AddEndpoint("gwB")
	mesh.AddSwitch("s1", 0.5)
	mesh.AddSwitch("s2", 0.5)
	mesh.Connect("gwA", "s1", 5)
	mesh.Connect("s1", "s2", 5)
	mesh.Connect("s2", "gwB", 5)

	qn := qnet.NewNetwork(qnet.Config{Seed: seed ^ 0x57121})
	nTrusted := qn.RegisterRelay(rn)
	lp, err := qn.RegisterLightPath(mesh, "gwA", "gwB", photonics.DefaultParams(), 1<<22)
	if err != nil {
		return r, err
	}
	for i := 0; i < 4 || lp.Available() < nbits; i++ {
		qn.Tick()
	}
	r.Rowf("topology: %d trusted relay links + 1 untrusted light path (2 switches, %.2f%% analytic QBER, %d bits banked)",
		nTrusted, lp.QBER()*100, lp.Available())
	r.Rowf("transport: %d bit end-to-end key in %d x %d bit chunks", nbits, chunks, chunk)

	// --- trust exposure: k = 1 vs 2 vs 3 ------------------------------
	// The k=1 baseline runs on the relay mesh alone (a lone path in the
	// mixed topology would take the zero-exposure light path and dodge
	// the comparison): hop-by-hop transport, whole key inside a relay.
	relaysOnly := qnet.NewNetwork(qnet.Config{Seed: seed ^ 0x57122})
	relaysOnly.RegisterRelay(rn)
	type expo struct {
		k                int
		maxShare, maxKey int
		routes           int
	}
	var exposures []expo
	for _, k := range []int{1, 2, 3} {
		net := qn
		if k == 1 {
			net = relaysOnly
		}
		tr, err := net.NewTransport("gwA", "gwB", nbits, k, qnet.TransportOpts{ChunkBits: chunk})
		if err != nil {
			return r, fmt.Errorf("E14: k=%d transport: %w", k, err)
		}
		if err := tr.Run(chunks + 4); err != nil {
			return r, fmt.Errorf("E14: k=%d run: %w", k, err)
		}
		d, err := tr.Finish()
		if err != nil {
			return r, err
		}
		maxShare, maxKey := 0, 0
		for _, b := range d.ShareBitsSeen {
			if b > maxShare {
				maxShare = b
			}
		}
		for _, b := range d.KeyBitsExposed {
			if b > maxKey {
				maxKey = b
			}
		}
		exposures = append(exposures, expo{k, maxShare, maxKey, len(d.Routes)})
		qn.Tick() // replenish between transports
	}
	r.Rowf("%-4s %8s %14s %16s %12s", "k", "paths", "share bits/relay", "key bits/relay", "exposure")
	for _, e := range exposures {
		frac := float64(e.maxKey) / float64(nbits)
		r.Rowf("%-4d %8d %14d %16d %11.0f%%", e.k, e.routes, e.maxShare, e.maxKey, frac*100)
		if e.k == 1 && e.maxKey != nbits {
			return r, fmt.Errorf("E14: k=1 relay reconstructs %d bits, want the whole key", e.maxKey)
		}
		if e.k > 1 && float64(e.maxKey) >= float64(nbits)/float64(e.k) {
			return r, fmt.Errorf("E14: k=%d relay exposure %d bits >= 1/k of the key", e.k, e.maxKey)
		}
	}

	// --- k=3 under one Cut and one Eavesdrop mid-transport ------------
	kdsA, kdsB := kms.New(kms.Config{}), kms.New(kms.Config{})
	defer kdsA.Close()
	defer kdsB.Close()
	feedA, err := kdsA.AttachSource("qnet/e2e")
	if err != nil {
		return r, err
	}
	feedB, err := kdsB.AttachSource("qnet/e2e")
	if err != nil {
		return r, err
	}

	qn.Tick()
	tr, err := qn.NewTransport("gwA", "gwB", nbits, 3, qnet.TransportOpts{
		ChunkBits: chunk, FeedA: feedA, FeedB: feedB,
	})
	if err != nil {
		return r, fmt.Errorf("E14: striped transport: %w", err)
	}

	// Blocking consumers on both mirrored services: through two
	// mid-transport attacks they must observe delay only — same bits,
	// both sides, no errors.
	type claim struct {
		bits *bitarray.BitArray
		err  error
	}
	claimA, claimB := make(chan claim, 1), make(chan claim, 1)
	go func() {
		bits, err := kdsA.PoolView(kms.ClassOTP).Consume(nbits, 30*time.Second)
		claimA <- claim{bits, err}
	}()
	go func() {
		bits, err := kdsB.PoolView(kms.ClassOTP).Consume(nbits, 30*time.Second)
		claimB <- claim{bits, err}
	}()

	// relayRoute picks a stripe that crosses a relay (not the direct
	// light path) so the attack hits a trusted link.
	relayRoute := func() []string {
		for _, route := range tr.Routes() {
			if len(route) == 3 {
				return route
			}
		}
		return nil
	}
	step := func(times int) error {
		for i := 0; i < times; i++ {
			if _, err := tr.Step(); err != nil {
				return err
			}
		}
		return nil
	}
	if err := step(2); err != nil {
		return r, err
	}
	// Attack 1: fiber cut on an active stripe's first hop.
	cut := relayRoute()
	if err := rn.Cut(cut[0], cut[1]); err != nil {
		return r, err
	}
	if err := step(2); err != nil {
		return r, err
	}
	// Attack 2: eavesdropper on another active stripe; the QBER alarm
	// fires at the next distillation batch (Tick) and the pairwise pool
	// is destroyed.
	eav := relayRoute()
	if eav[1] == cut[1] { // never the already-dead relay
		return r, errors.New("E14: routing reused the cut relay")
	}
	if err := rn.Eavesdrop(eav[1], eav[2]); err != nil {
		return r, err
	}
	// Two distillation batches of alarm-level error push the edge's
	// EWMA past the demotion threshold: the monitor takes it out of
	// routing on top of the outage the closed pool already signals.
	qn.Tick()
	qn.Tick()
	if err := tr.Run(chunks + 8); err != nil {
		return r, fmt.Errorf("E14: transport did not survive the attacks: %w", err)
	}
	d, err := tr.Finish()
	if err != nil {
		return r, err
	}
	cA, cB := <-claimA, <-claimB
	if cA.err != nil || cB.err != nil {
		return r, fmt.Errorf("E14: KDS consumer observed the failover: A=%v B=%v", cA.err, cB.err)
	}
	bitExact := cA.bits.Equal(d.Key) && cB.bits.Equal(d.Key)
	fs := feedA.Stats()
	maxKey := 0
	for _, b := range d.KeyBitsExposed {
		if b > maxKey {
			maxKey = b
		}
	}
	r.Rowf("k=3 under attack: cut %s-%s and eavesdropped %s-%s mid-transport; %d failovers, %d/%d chunks delivered",
		cut[0], cut[1], eav[1], eav[2], d.Reroutes, tr.DeliveredBits()/chunk, chunks)
	r.Rowf("delivered key: %d bits, bit-exact at both KDS endpoints: %v; max relay exposure %d key bits (< 1/3)",
		d.Key.Len(), bitExact, maxKey)
	r.Rowf("DTN custody across failovers: %d bits buffered, %d flushed, 0 lost; consumers saw delay, not the switch",
		fs.BufferedBits, fs.FlushedBits)
	if !bitExact {
		return r, errors.New("E14: delivered key mismatched across endpoints")
	}
	if d.Reroutes != 2 {
		return r, fmt.Errorf("E14: %d reroutes, want 2 (one per attack)", d.Reroutes)
	}
	if tr.DeliveredBits() != nbits {
		return r, fmt.Errorf("E14: delivered %d of %d bits", tr.DeliveredBits(), nbits)
	}
	if maxKey != 0 {
		return r, fmt.Errorf("E14: a relay could reconstruct %d key bits", maxKey)
	}
	if fs.BufferedBits != fs.FlushedBits {
		return r, fmt.Errorf("E14: custody lost bits (%d buffered, %d flushed)", fs.BufferedBits, fs.FlushedBits)
	}

	// --- failed transports must not drain any pool --------------------
	avail := func() map[string]int {
		out := make(map[string]int)
		for _, e := range qn.Edges() {
			out[e.Name()] = e.Available()
		}
		return out
	}
	before := avail()
	if _, err := qn.NewTransport("gwA", "gwB", nbits, 6, qnet.TransportOpts{}); err == nil {
		return r, errors.New("E14: 6-stripe transport should not route on this topology")
	}
	if _, err := qn.NewTransport("gwA", "gwB", 1<<26, 2, qnet.TransportOpts{}); err == nil {
		return r, errors.New("E14: oversized transport should not route")
	}
	after := avail()
	drift := 0
	for k, v := range before {
		if after[k] != v {
			drift++
			r.Rowf("POOL DRIFT on %s: %d -> %d", k, v, after[k])
		}
	}
	r.Rowf("failed transports (k too high, key too large): every traversed pool unchanged across %d edges (%d drifted)",
		len(before), drift)
	if drift > 0 {
		return r, fmt.Errorf("E14: %d pools drained by failed transports", drift)
	}
	st := qn.Stats()
	r.Rowf("network totals: %d transports, %d failovers, %d demotions, %d bits delivered",
		st.Transports, st.Failovers, st.Demotions, st.BitsDelivered)
	return r, nil
}
