package experiments

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"qkd/internal/bitarray"
	"qkd/internal/kms"
	"qkd/internal/relay"
	"qkd/internal/rng"
)

// E13KDS exercises the key delivery service at the scale the paper's
// Section 8 networks imply but its testbed never reached: one
// 1 kbit/s-class link (time-compressed: each 1 ms wall tick carries one
// virtual second of link output) serving 1,000+ concurrent consumers
// spread across the three QoS classes, with key aggregated from two
// sources — the direct QKD link and relay-mesh end-to-end transport —
// and a mid-run link outage bridged by DTN custody buffering.
//
// Measured: delivered throughput, per-class p50/p99 scheduler wait,
// admission sheds and timeouts, the starvation count of the high class
// (must be zero: strict priority plus FIFO tickets), Jain's fairness
// index across the rekey-class consumers, and bit-exact
// (stream, sequence) key agreement between the two mirrored endpoints
// for every high-class block.
func E13KDS(seed uint64, quick bool) (*Report, error) {
	r := &Report{
		ID:    "E13",
		Title: "key delivery service: QoS under 1000+ consumers on one slow link",
		Paper: "\"the crux ... is whether the resulting key material is sufficiently rapid\" (Sec. 2); many-consumer networks sharing scarce distilled key (Sec. 8)",
	}

	ticks := 600
	otpRounds := 6
	if quick {
		ticks = 280
		otpRounds = 3
	}
	const (
		tickBits   = 1024 // one virtual second of a 1 kbit/s-class link
		otpUsers   = 32
		rekeyUsers = 256
		authUsers  = 744
		otpBlock   = 512
		rekeyBits  = 1024
		authBits   = 64
	)
	outageStart, outageEnd := ticks/3, ticks/3+ticks/6

	kcfg := kms.Config{Shards: 16, StreamFraction: 1, ShedDelay: 30 * time.Millisecond}
	kdsA, kdsB := kms.New(kcfg), kms.New(kcfg)
	defer kdsA.Close()
	defer kdsB.Close()
	linkA, err := kdsA.AttachSource("qkd-link")
	if err != nil {
		return r, err
	}
	linkB, _ := kdsB.AttachSource("qkd-link")
	relayA, _ := kdsA.AttachSource("relay-mesh")
	relayB, _ := kdsB.AttachSource("relay-mesh")

	// High-class streams: one per OTP consumer, mirrored on both ends.
	otpA := make([]*kms.Stream, otpUsers)
	otpB := make([]*kms.Stream, otpUsers)
	for i := range otpA {
		name := fmt.Sprintf("otp/%03d", i)
		if otpA[i], err = kdsA.NewStream(name, otpBlock, kms.ClassOTP); err != nil {
			return r, err
		}
		if otpB[i], err = kdsB.NewStream(name, otpBlock, kms.ClassOTP); err != nil {
			return r, err
		}
	}
	// Mid-class streams: one per rekey consumer (allocator side only).
	rekeySt := make([]*kms.Stream, rekeyUsers)
	for i := range rekeySt {
		if rekeySt[i], err = kdsA.NewStream(fmt.Sprintf("rekey/%03d", i), rekeyBits, kms.ClassRekey); err != nil {
			return r, err
		}
	}
	authView := kdsA.PoolView(kms.ClassAuth)

	// The relay mesh feeding the second source: a small trusted-relay
	// network whose end-to-end deliveries land in both KDS instances
	// (the delivered key is by construction identical at both ends).
	mesh := relay.Star(seed^0xE13, 2048, "hub", "gwA", "gwB")

	type sample struct {
		class  kms.Class
		wait   time.Duration
		served bool
		shed   bool
	}
	var (
		samplesMu sync.Mutex
		samples   []sample
		rekeyWins = make([]int, rekeyUsers)
		otpWins   = make([]int, otpUsers)
	)
	record := func(c kms.Class, wait time.Duration, served, shed bool) {
		samplesMu.Lock()
		samples = append(samples, sample{c, wait, served, shed})
		samplesMu.Unlock()
	}

	// Cross-endpoint verification: every high-class ticket claimed on A
	// is re-claimed on B and compared bit for bit.
	type verify struct {
		idx  int
		tk   kms.Ticket
		bits *bitarray.BitArray
	}
	verifyC := make(chan verify, otpUsers*otpRounds)
	var verified, mismatched int
	verifierDone := make(chan struct{})
	go func() {
		defer close(verifierDone)
		for v := range verifyC {
			got, err := otpB[v.idx].Claim(v.tk, 30*time.Second, nil)
			if err != nil {
				mismatched++
				continue
			}
			if got.Equal(v.bits) {
				verified++
			} else {
				mismatched++
			}
		}
	}()

	var wg sync.WaitGroup
	var otpStarved int64
	var otpStarvedMu sync.Mutex

	// 32 OTP pad consumers: highest class, must never starve.
	for i := 0; i < otpUsers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for round := 0; round < otpRounds; round++ {
				t0 := wallNow()
				tk, bits, err := otpA[i].Next(1, 60*time.Second, nil)
				if err != nil {
					otpStarvedMu.Lock()
					otpStarved++
					otpStarvedMu.Unlock()
					record(kms.ClassOTP, wallSince(t0), false, false)
					return
				}
				record(kms.ClassOTP, wallSince(t0), true, false)
				samplesMu.Lock()
				otpWins[i]++
				samplesMu.Unlock()
				verifyC <- verify{i, tk, bits}
			}
		}(i)
	}
	// 256 IKE rekey consumers: middle class, bounded patience.
	for i := 0; i < rekeyUsers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gen := rng.NewSplitMix64(seed ^ uint64(i)<<8)
			for round := 0; round < 4; round++ {
				time.Sleep(time.Duration(gen.Uint64()%5) * time.Millisecond)
				t0 := wallNow()
				tk, err := rekeySt[i].AllocateWait(1, 250*time.Millisecond, nil)
				switch {
				case err == nil:
					record(kms.ClassRekey, wallSince(t0), true, false)
					rekeySt[i].Release(tk) // spend without transport: load only
					samplesMu.Lock()
					rekeyWins[i]++
					samplesMu.Unlock()
				default:
					record(kms.ClassRekey, wallSince(t0), false, errors.Is(err, kms.ErrOverload))
				}
			}
		}(i)
	}
	// 744 auth-pad replenishers: lowest class, shed under overload.
	for i := 0; i < authUsers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gen := rng.NewSplitMix64(seed ^ 0xA0717 ^ uint64(i)<<4)
			for round := 0; round < 4; round++ {
				time.Sleep(time.Duration(gen.Uint64()%7) * time.Millisecond)
				t0 := wallNow()
				_, err := authView.Consume(authBits, 150*time.Millisecond)
				record(kms.ClassAuth, wallSince(t0), err == nil, errors.Is(err, kms.ErrOverload))
			}
		}(i)
	}

	// The link pump: each wall millisecond delivers one virtual second
	// of distilled key to both mirrored endpoints, through the
	// "qkd-link" feed (which suffers an outage and buffers in custody)
	// and, every 16 ticks, the relay mesh's end-to-end transport.
	gen := rng.NewSplitMix64(seed ^ 0x1111)
	start := wallNow()
	relayKeys := 0
	for tick := 0; tick < ticks; tick++ {
		if tick == outageStart {
			linkA.SetUp(false)
			linkB.SetUp(false)
		}
		if tick == outageEnd {
			linkA.SetUp(true)
			linkB.SetUp(true)
		}
		bits := gen.Bits(tickBits)
		linkA.Deposit(bits.Clone())
		linkB.Deposit(bits)
		mesh.Tick()
		if tick%16 == 15 {
			if d, err := mesh.TransportKey("gwA", "gwB", 256); err == nil {
				relayA.Deposit(d.Key.Clone())
				relayB.Deposit(d.Key)
				relayKeys++
			}
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	close(verifyC)
	<-verifierDone
	elapsed := wallSince(start)

	// Reduce the samples per class.
	type classAgg struct {
		reqs, served, shed, timedOut int
		waits                        []time.Duration
	}
	agg := map[kms.Class]*classAgg{}
	for c := kms.Class(0); c < kms.NumClasses; c++ {
		agg[c] = &classAgg{}
	}
	samplesMu.Lock()
	for _, s := range samples {
		a := agg[s.class]
		a.reqs++
		switch {
		case s.served:
			a.served++
			a.waits = append(a.waits, s.wait)
		case s.shed:
			a.shed++
		default:
			a.timedOut++
		}
	}
	samplesMu.Unlock()

	pct := func(ws []time.Duration, p float64) time.Duration {
		if len(ws) == 0 {
			return 0
		}
		sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
		i := int(p*float64(len(ws))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(ws) {
			i = len(ws) - 1
		}
		return ws[i]
	}

	stA := kdsA.Stats()
	var grantedBits uint64
	for c := range stA.GrantedBits {
		grantedBits += stA.GrantedBits[c]
	}
	consumers := otpUsers + rekeyUsers + authUsers
	r.Rowf("link: %d bits over %d virtual s (1 kbit/s-class, time-compressed %.2fs wall); +%d relay-mesh keys aggregated",
		ticks*tickBits, ticks, elapsed.Seconds(), relayKeys)
	r.Rowf("consumers: %d concurrent across %d QoS classes (%d otp > %d rekey > %d auth), %d-way sharded store",
		consumers, int(kms.NumClasses), otpUsers, rekeyUsers, authUsers, kcfg.Shards)
	r.Rowf("%-8s %8s %8s %8s %9s %10s %10s", "class", "reqs", "served", "shed", "timeout", "p50 wait", "p99 wait")
	for c := kms.Class(0); c < kms.NumClasses; c++ {
		a := agg[c]
		r.Rowf("%-8s %8d %8d %8d %9d %10s %10s", c, a.reqs, a.served, a.shed, a.timedOut,
			pct(a.waits, 0.50).Round(100*time.Microsecond), pct(a.waits, 0.99).Round(100*time.Microsecond))
	}
	r.Rowf("delivered: %d bits granted (%.0f bit/s of %d bit/s offered); starved high-class requests: %d",
		grantedBits, float64(grantedBits)/elapsed.Seconds(), tickBits*1000, otpStarved)
	r.Rowf("fairness (Jain): %.3f across %d otp consumers (supply guaranteed); %.3f across %d rekey consumers (4x oversubscribed, admission-shed)",
		jain(otpWins), otpUsers, jain(rekeyWins), rekeyUsers)
	fs := linkA.Stats()
	r.Rowf("DTN custody across outage [t=%d,%d): %d bits buffered, %d flushed on restore, 0 lost",
		outageStart, outageEnd, fs.BufferedBits, fs.FlushedBits)
	r.Rowf("cross-endpoint agreement: %d/%d high-class blocks bit-exact by (stream, seq) claim; %d mismatched",
		verified, verified+mismatched, mismatched)

	if otpStarved > 0 {
		return r, fmt.Errorf("E13: %d high-class requests starved", otpStarved)
	}
	if mismatched > 0 {
		return r, fmt.Errorf("E13: %d blocks disagreed between endpoints", mismatched)
	}
	if fs.BufferedBits == 0 || fs.BufferedBits != fs.FlushedBits {
		return r, fmt.Errorf("E13: DTN custody lost bits (%d buffered, %d flushed)", fs.BufferedBits, fs.FlushedBits)
	}
	return r, nil
}

// jain computes Jain's fairness index (Sum x)^2 / (n * Sum x^2): 1.0 is
// perfectly even, 1/n is one consumer taking everything.
func jain(xs []int) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += float64(x)
		sq += float64(x) * float64(x)
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}
