package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"qkd/internal/core"
	"qkd/internal/ike"
	"qkd/internal/ipsec"
	"qkd/internal/vpn"
)

// E15Dataplane soaks the concurrent multi-tunnel dataplane: one gateway
// pair carrying 8 tunnels with mixed cipher suites (AES-reseeded, the
// 2003-era 3DES default, one-time pad), byte lifetimes short enough
// that SAs roll over repeatedly *while* parallel flows are in flight,
// and an Eve replay storm against every tunnel packet she captured.
//
// The paper's Section 7 gateway served one host pair serially; the
// scaled dataplane must keep per-tunnel SA lifecycles independent —
// generation-chained rollovers that retire superseded inbound SAs
// after a grace window (no leak, no undead decryptors), soft-expiry
// rekeys that land before a sequence wedge — with no integrity
// failures, no cross-tunnel payload leaks, every replay dropped, and
// the inbound SAD bounded by tunnels x 2 generations throughout.
func E15Dataplane(seed uint64, quick bool) (*Report, error) {
	r := &Report{
		ID:    "E15",
		Title: "concurrent multi-tunnel dataplane soak: rollovers under load + replay storm",
		Paper: "\"Some may use conventional cryptography (e.g. AES), while others employ one-time pads\" (Sec. 7); lifetime-driven rollover \"will bring with it fresh key material\"",
	}

	const tunnels = 8
	packets := 24
	if quick {
		packets = 12
	}

	specs := make([]vpn.TunnelSpec, tunnels)
	for i := range specs {
		suite := ipsec.SuiteAES128CTR
		switch {
		case i == tunnels-1:
			suite = ipsec.SuiteOTP
		case i >= tunnels-3:
			suite = ipsec.Suite3DESCBC
		}
		specs[i] = vpn.TunnelSpec{
			Name:    fmt.Sprintf("t%d", i),
			PrefixA: ipsec.MustPrefix(fmt.Sprintf("10.1.%d.0/24", i)),
			PrefixB: ipsec.MustPrefix(fmt.Sprintf("10.2.%d.0/24", i)),
			Suite:   suite,
			// Short byte lifetime: flows outlive their SAs, so rollover
			// happens mid-soak, concurrently, on every tunnel.
			Life:    ipsec.Lifetime{Bytes: 512},
			OTPBits: 8192,
		}
	}
	n, err := vpn.New(vpn.Config{
		Photonics: labParams(),
		QKD:       core.Config{BatchBits: 2048},
		IKE:       ike.Config{Phase2Timeout: 5 * time.Second},
		Tunnels:   specs,
		Seed:      seed,
	})
	if err != nil {
		return r, err
	}
	defer n.Close()
	if err := n.DistillKeys(140_000, 8000); err != nil {
		return r, fmt.Errorf("E15: distilling soak key budget: %w", err)
	}
	if err := n.Establish(); err != nil {
		return r, err
	}
	r.Rowf("topology: 1 gateway pair, %d tunnels (%d aes128, %d 3des, %d otp), per-SA lifetime %dB",
		tunnels, tunnels-3, 2, 1, 512)

	// Eve taps the simulated internet: she captures every ESP packet for
	// the storm (the tap runs inside concurrent Sends, so it locks).
	var eveMu sync.Mutex
	var captured []*ipsec.Packet
	n.EveTap = func(p *ipsec.Packet) (*ipsec.Packet, bool) {
		eveMu.Lock()
		captured = append(captured, &ipsec.Packet{
			Src: p.Src, Dst: p.Dst, Proto: p.Proto, ID: p.ID,
			Payload: append([]byte(nil), p.Payload...),
		})
		eveMu.Unlock()
		return p, false
	}

	// The soak: two flows per tunnel (one per direction), all parallel.
	type flowErr struct {
		flow int
		err  error
	}
	errCh := make(chan flowErr, 2*tunnels)
	var wg sync.WaitGroup
	start := wallNow()
	for i := 0; i < tunnels; i++ {
		for dir := 0; dir < 2; dir++ {
			wg.Add(1)
			go func(i, dir int) {
				defer wg.Done()
				src := ipsec.MustAddr(fmt.Sprintf("10.1.%d.5", i))
				dst := ipsec.MustAddr(fmt.Sprintf("10.2.%d.9", i))
				if dir == 1 {
					src, dst = dst, src
				}
				// Payload is tagged by tunnel and direction: if any SA
				// ever decrypted another tunnel's traffic, the echo
				// comparison would catch it.
				payload := bytes.Repeat([]byte{byte(0x10*dir + i)}, 40)
				for p := 0; p < packets; p++ {
					got, err := n.SendWithRollover(src, dst, uint32(p), payload)
					if err != nil {
						errCh <- flowErr{2*i + dir, fmt.Errorf("tunnel t%d dir %d packet %d: %w", i, dir, p, err)}
						return
					}
					if !bytes.Equal(got, payload) {
						errCh <- flowErr{2*i + dir, fmt.Errorf("tunnel t%d: payload corrupted in flight", i)}
						return
					}
				}
			}(i, dir)
		}
	}
	wg.Wait()
	close(errCh)
	for fe := range errCh {
		return r, fmt.Errorf("E15: flow %d failed: %w", fe.flow, fe.err)
	}
	soak := wallSince(start)

	nst := n.Stats()
	delivered, dropped := nst.Delivered, nst.Dropped
	ikeStats := n.A.IKE.Stats()
	rollovers := int(ikeStats.Phase2Initiated) - tunnels
	r.Rowf("soak: %d flows x %d packets in %v — %d delivered, %d retried on rollover, 0 lost",
		2*tunnels, packets, soak.Round(time.Millisecond), delivered, dropped)
	r.Rowf("rollovers under load: %d renegotiations beyond establishment (soft rekeys gwA=%d gwB=%d)",
		rollovers, n.A.GW.Stats().SoftRekeys, n.B.GW.Stats().SoftRekeys)
	if delivered != uint64(2*tunnels*packets) {
		return r, fmt.Errorf("E15: delivered %d of %d packets", delivered, 2*tunnels*packets)
	}
	if rollovers < tunnels {
		return r, fmt.Errorf("E15: only %d mid-soak rollovers; lifetimes never forced the lifecycle", rollovers)
	}

	// The replay storm: Eve re-injects every packet she captured, at
	// the gateway it was originally addressed to. Every single one must
	// be dropped — as a replay inside a live SA's window, or as expired/
	// unknown-SPI once its generation was retired. Zero may decrypt.
	eveMu.Lock()
	storm := captured
	captured = nil
	eveMu.Unlock()
	var replays, retired, accepted int
	for _, p := range storm {
		gw := n.B.GW
		if p.Dst == vpn.GatewayA {
			gw = n.A.GW
		}
		switch _, err := gw.ProcessInbound(p); {
		case err == nil:
			accepted++
		case errors.Is(err, ipsec.ErrReplay):
			replays++
		case errors.Is(err, ipsec.ErrExpired), errors.Is(err, ipsec.ErrUnknownSPI):
			retired++
		default:
			return r, fmt.Errorf("E15: replayed packet died oddly: %v", err)
		}
	}
	stA, stB := n.A.GW.Stats(), n.B.GW.Stats()
	r.Rowf("replay storm: %d captured tunnel packets re-injected — %d window drops, %d retired-SA drops, %d accepted",
		len(storm), replays, retired, accepted)
	r.Rowf("gateway drop counters: replay drops A=%d B=%d, integrity failures A=%d B=%d",
		stA.ReplayDrops, stB.ReplayDrops, stA.IntegFailures, stB.IntegFailures)
	if accepted != 0 {
		return r, fmt.Errorf("E15: %d replayed packets accepted", accepted)
	}
	if len(storm) == 0 || replays == 0 {
		return r, fmt.Errorf("E15: storm saw %d packets, %d replay drops — Eve captured nothing?", len(storm), replays)
	}
	if stA.IntegFailures != 0 || stB.IntegFailures != 0 {
		return r, errors.New("E15: integrity failures during a clean soak")
	}

	// Lifecycle invariant: for all the renegotiating above, the inbound
	// SAD holds at most two generations (live + draining predecessor)
	// per tunnel, and the outbound side exactly one SA per policy.
	inA, outA := n.A.GW.SAD.Count()
	inB, outB := n.B.GW.SAD.Count()
	r.Rowf("SAD bound after %d total negotiations: gwA %d inbound / %d outbound, gwB %d / %d (cap %d inbound)",
		int(ikeStats.Phase2Initiated), inA, outA, inB, outB, 2*tunnels)
	if inA > 2*tunnels || inB > 2*tunnels {
		return r, fmt.Errorf("E15: inbound SAD leaked: %d / %d SAs against a %d cap", inA, inB, 2*tunnels)
	}
	if outA > tunnels || outB > tunnels {
		return r, fmt.Errorf("E15: outbound SAD grew past one SA per tunnel: %d / %d", outA, outB)
	}
	r.Rowf("result: zero integrity or cross-tunnel failures, every replay dropped, SA lifecycle bounded")
	return r, nil
}
