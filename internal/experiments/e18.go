package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"qkd/internal/flow"
	"qkd/internal/ike"
	"qkd/internal/ipsec"
	"qkd/internal/kms"
	"qkd/internal/rng"
	"qkd/internal/vpn"
)

// E18FlowControl closes the loop E13 left open. There the key delivery
// service defended itself alone: open-loop consumers dumped their full
// appetite into the scheduler and the KDS shed what a class's horizon
// could not absorb. Here the same overload (tens of times the link's
// delivery rate, concentrated in the rekey class) runs twice against
// identical supply — once open-loop, once with internal/flow credit
// controllers pacing every consumer off the ECN-style pressure signal,
// plus a LEDBAT-style background controller replenishing auth pads
// only when foreground demand is quiet.
//
// Gated, flow-controlled vs the side-by-side baseline: no high-class
// starvation, Jain fairness >= 0.9 within each class, per-class p99
// scheduler wait strictly below open-loop, and a demonstrable
// background yield (auth throughput collapses while foreground OTP
// demand is registered, recovers after). A second act threads the same
// loop through the VPN stack: a soft-expiry rekey storm against a
// starved KDS, where the rekeyer's controller must mark, shrink its
// batch window, and drain the storm in spaced bites once key returns.
func E18FlowControl(seed uint64, quick bool) (*Report, error) {
	r := &Report{
		ID:    "E18",
		Title: "closed-loop key replenishment: credit-controlled classes vs open-loop shedding",
		Paper: "\"the crux ... is whether the resulting key material is sufficiently rapid to support the offered traffic load\" (Sec. 2); many-consumer key sharing (Sec. 8)",
	}

	// Three wall segments per phase: background-only warmup, the
	// foreground overload burst, background-only recovery. Each wall
	// millisecond carries one virtual second of a 1 kbit/s-class link.
	seg1, seg2, seg3 := 120*time.Millisecond, 400*time.Millisecond, 120*time.Millisecond
	if quick {
		seg1, seg2, seg3 = 80*time.Millisecond, 280*time.Millisecond, 80*time.Millisecond
	}
	const (
		tickBits    = 1024
		otpUsers    = 8
		rekeyUsers  = 32
		authUsers   = 8
		otpBlock    = 512
		otpBlocks   = 4 // open-loop per-round burst, in blocks
		otpCap      = 1 // flow-controlled per-request bite, in blocks
		otpEvery    = 32 * time.Millisecond
		rekeyBlock  = 1024
		rekeyBlocks = 8 // open-loop per-round burst: dumps the full appetite
		rekeyCap    = 2 // flow-controlled per-request bite, in blocks
		rekeyEvery  = 3 * time.Millisecond
		authChunk   = 1024 // open-loop per-round burst
		authCap     = 512  // flow-controlled per-request bite
		bgFloor     = 64
	)
	kcfg := kms.Config{Shards: 16, StreamFraction: 1, ShedDelay: 30 * time.Millisecond}

	type phaseRes struct {
		mu         sync.Mutex
		offered    [kms.NumClasses]int64
		served     [kms.NumClasses]int64
		servedBits [kms.NumClasses]int64
		shed       [kms.NumClasses]int64
		timedOut   [kms.NumClasses]int64
		waits      [kms.NumClasses][]time.Duration
		otpWins    []int
		rekeyWins  []int
		authWins   []int
		bgBits     [3]int64
		bgDur      [3]time.Duration
		deposited  int64
		maxPress   float64
		maxDemand  int64
		ctl        flow.Stats // aggregated foreground controllers
		yields     uint64     // background controllers
		wall       time.Duration
	}

	// runPhase drives one full open- or closed-loop pass against a
	// fresh service. One endpoint suffices: E13 already pins the
	// mirrored two-endpoint ledger agreement; this experiment is about
	// the control loop in front of it.
	runPhase := func(flowOn bool) (*phaseRes, error) {
		ph := &phaseRes{
			otpWins:   make([]int, otpUsers),
			rekeyWins: make([]int, rekeyUsers),
			authWins:  make([]int, authUsers),
		}
		kds := kms.New(kcfg)
		defer kds.Close()
		feed, err := kds.AttachSource("qkd-link")
		if err != nil {
			return nil, err
		}
		otpSt := make([]*kms.Stream, otpUsers)
		for i := range otpSt {
			if otpSt[i], err = kds.NewStream(fmt.Sprintf("otp/%02d", i), otpBlock, kms.ClassOTP); err != nil {
				return nil, err
			}
		}
		rekeySt := make([]*kms.Stream, rekeyUsers)
		for i := range rekeySt {
			if rekeySt[i], err = kds.NewStream(fmt.Sprintf("rekey/%02d", i), rekeyBlock, kms.ClassRekey); err != nil {
				return nil, err
			}
		}
		authView := kds.PoolView(kms.ClassAuth)

		rec := func(c kms.Class, bits int, wait time.Duration, err error) {
			ph.mu.Lock()
			defer ph.mu.Unlock()
			ph.offered[c] += int64(bits)
			switch {
			case err == nil:
				ph.served[c]++
				ph.servedBits[c] += int64(bits)
				ph.waits[c] = append(ph.waits[c], wait)
			case errors.Is(err, kms.ErrOverload):
				ph.shed[c]++
			default:
				ph.timedOut[c]++
			}
		}

		// The link pump: tickBits per wall millisecond for the whole
		// phase, sampling the service's pressure/demand snapshot as it
		// goes.
		pumpStop := make(chan struct{})
		var pumpWG sync.WaitGroup
		pumpWG.Add(1)
		go func() {
			defer pumpWG.Done()
			gen := rng.NewSplitMix64(seed ^ 0xE18)
			for t := 0; ; t++ {
				select {
				case <-pumpStop:
					return
				default:
				}
				feed.Deposit(gen.Bits(tickBits))
				ph.mu.Lock()
				ph.deposited += tickBits
				ph.mu.Unlock()
				if t%4 == 3 {
					st := kds.Stats()
					var demand int64
					for c := range st.DemandBits {
						demand += int64(st.DemandBits[c])
					}
					ph.mu.Lock()
					if st.Pressure > ph.maxPress {
						ph.maxPress = st.Pressure
					}
					if demand > ph.maxDemand {
						ph.maxDemand = demand
					}
					ph.mu.Unlock()
				}
				time.Sleep(time.Millisecond)
			}
		}()
		start := wallNow()

		// Background auth replenishers: one LEDBAT controller each in
		// the flow phase, a fixed 4x-oversubscribed appetite open-loop.
		var bgs []*flow.Background
		if flowOn {
			bgs = make([]*flow.Background, authUsers)
			for i := range bgs {
				bgs[i] = flow.NewBackground(fmt.Sprintf("e18/auth/%d", i), kds, flow.BackgroundConfig{
					Target:    2 * time.Millisecond,
					MinWindow: bgFloor,
					MaxWindow: 1024,
					YieldBeta: 0.05,
				})
			}
		}
		runBG := func(segIdx int, dur time.Duration) {
			deadline := wallNow().Add(dur)
			t0 := wallNow()
			var wg sync.WaitGroup
			for i := 0; i < authUsers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					for wallNow().Before(deadline) {
						req := authChunk
						if flowOn {
							w := bgs[i].Tick()
							if w <= bgFloor {
								// Yielded to the floor: a background
								// class that trickles during foreground
								// bursts still costs OTP bits, so hold
								// off entirely.
								time.Sleep(time.Millisecond)
								continue
							}
							if w < authCap {
								req = w
							} else {
								req = authCap
							}
						}
						t0 := wallNow()
						_, err := authView.Consume(req, 500*time.Millisecond)
						rec(kms.ClassAuth, req, wallSince(t0), err)
						if err == nil {
							ph.mu.Lock()
							ph.authWins[i] += req
							ph.bgBits[segIdx] += int64(req)
							ph.mu.Unlock()
						}
						time.Sleep(time.Millisecond)
					}
				}(i)
			}
			wg.Wait()
			ph.bgDur[segIdx] = wallSince(t0)
		}

		collect := func(st flow.Stats) {
			ph.mu.Lock()
			defer ph.mu.Unlock()
			ph.ctl.Ticks += st.Ticks
			ph.ctl.Marks += st.Marks
			ph.ctl.MarkSets += st.MarkSets
			ph.ctl.Increases += st.Increases
			ph.ctl.Decreases += st.Decreases
			ph.ctl.Sheds += st.Sheds
		}

		// Segment 1: background only.
		runBG(0, seg1)

		// Segment 2: the foreground burst. OTP consumers are paced
		// (half-capacity appetite — the paper's premise is that OTP
		// traffic is precious, not unbounded); rekey consumers are the
		// overload, offering tens of times the link rate.
		fgEnd := wallNow().Add(seg2)
		var fg sync.WaitGroup
		for i := 0; i < otpUsers; i++ {
			fg.Add(1)
			go func(i int) {
				defer fg.Done()
				var ctl *flow.Controller
				if flowOn {
					ctl = flow.NewController(fmt.Sprintf("e18/otp/%02d", i), kms.ClassOTP, kds, flow.Config{
						MinWindow: otpBlock, MaxWindow: otpBlocks * otpBlock,
						MarkHigh: 0.3, MarkLow: 0.15,
					})
					defer func() { collect(ctl.Stats()); ctl.Close() }()
				}
				for wallNow().Before(fgEnd) {
					blocks := otpBlocks
					if ctl != nil {
						if blocks = ctl.Tick() / otpBlock; blocks > otpCap {
							blocks = otpCap
						}
						if blocks < 1 {
							blocks = 1
						}
					}
					t0 := wallNow()
					_, _, err := otpSt[i].Next(blocks, 5*time.Second, nil)
					rec(kms.ClassOTP, blocks*otpBlock, wallSince(t0), err)
					if err == nil {
						ph.mu.Lock()
						ph.otpWins[i] += blocks * otpBlock
						ph.mu.Unlock()
					}
					if d := otpEvery - wallSince(t0); d > 0 {
						time.Sleep(d)
					}
				}
			}(i)
		}
		for i := 0; i < rekeyUsers; i++ {
			fg.Add(1)
			go func(i int) {
				defer fg.Done()
				var ctl *flow.Controller
				if flowOn {
					ctl = flow.NewController(fmt.Sprintf("e18/rekey/%02d", i), kms.ClassRekey, kds, flow.Config{
						MinWindow: rekeyBlock, MaxWindow: rekeyBlocks * rekeyBlock,
						MarkHigh: 0.3, MarkLow: 0.15,
					})
					defer func() { collect(ctl.Stats()); ctl.Close() }()
				}
				for wallNow().Before(fgEnd) {
					blocks := rekeyBlocks
					if ctl != nil {
						// Closed loop: small uniform bites, never more
						// than the credit window allows.
						if blocks = ctl.Tick() / rekeyBlock; blocks > rekeyCap {
							blocks = rekeyCap
						}
						if blocks < 1 {
							blocks = 1
						}
					}
					t0 := wallNow()
					// The reservation is deliberately kept (not
					// released): a rekey that lands spends its Qblocks.
					_, err := rekeySt[i].AllocateWait(blocks, 500*time.Millisecond, nil)
					rec(kms.ClassRekey, blocks*rekeyBlock, wallSince(t0), err)
					switch {
					case err == nil:
						ph.mu.Lock()
						ph.rekeyWins[i] += blocks * rekeyBlock
						ph.mu.Unlock()
					case errors.Is(err, kms.ErrOverload) && ctl != nil:
						ctl.OnShed()
					}
					if d := rekeyEvery - wallSince(t0); d > 0 {
						time.Sleep(d)
					}
				}
			}(i)
		}
		runBG(1, seg2)
		fg.Wait() // foreground controllers close here: demand clears

		// Segment 3: background only again — the recovery measurement.
		runBG(2, seg3)

		close(pumpStop)
		pumpWG.Wait()
		if flowOn {
			for _, bg := range bgs {
				ph.mu.Lock()
				ph.yields += bg.Stats().Yields
				ph.mu.Unlock()
				bg.Close()
			}
		}
		ph.wall = wallSince(start)
		return ph, nil
	}

	base, err := runPhase(false)
	if err != nil {
		return r, fmt.Errorf("E18: open-loop phase: %w", err)
	}
	fl, err := runPhase(true)
	if err != nil {
		return r, fmt.Errorf("E18: flow-controlled phase: %w", err)
	}

	pct := func(ws []time.Duration, p float64) time.Duration {
		if len(ws) == 0 {
			return 0
		}
		sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
		i := int(p*float64(len(ws))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(ws) {
			i = len(ws) - 1
		}
		return ws[i]
	}
	rate := func(bits int64, d time.Duration) float64 {
		if d <= 0 {
			return 0
		}
		return float64(bits) / (float64(d) / float64(time.Millisecond))
	}

	// Overload factor: foreground appetite actually submitted during
	// the burst window, against what the link could deliver in it.
	offered := base.offered[kms.ClassOTP] + base.offered[kms.ClassRekey]
	overload := float64(offered) / (float64(seg2.Milliseconds()) * tickBits)
	r.Rowf("load: %d consumers (%d otp, %d rekey, %d auth); open-loop burst offered %.0fx the link's delivery rate",
		otpUsers+rekeyUsers+authUsers, otpUsers, rekeyUsers, authUsers, overload)
	r.Rowf("peak service snapshot under flow control: pressure %.2f, registered demand %d bits",
		fl.maxPress, fl.maxDemand)
	r.Rowf("%-8s %28s %28s", "", "open-loop (shed-only)", "flow-controlled")
	r.Rowf("%-8s %8s %6s %5s %7s %8s %6s %5s %7s", "class",
		"served", "shed", "tout", "p99", "served", "shed", "tout", "p99")
	for c := kms.Class(0); c < kms.NumClasses; c++ {
		r.Rowf("%-8s %8d %6d %5d %7s %8d %6d %5d %7s", c,
			base.served[c], base.shed[c], base.timedOut[c],
			pct(base.waits[c], 0.99).Round(100*time.Microsecond),
			fl.served[c], fl.shed[c], fl.timedOut[c],
			pct(fl.waits[c], 0.99).Round(100*time.Microsecond))
	}
	r.Rowf("fairness (Jain, flow-controlled): otp %.3f, rekey %.3f, auth %.3f",
		jain(fl.otpWins), jain(fl.rekeyWins), jain(fl.authWins))
	bg1, bg2, bg3 := rate(fl.bgBits[0], fl.bgDur[0]), rate(fl.bgBits[1], fl.bgDur[1]), rate(fl.bgBits[2], fl.bgDur[2])
	r.Rowf("background yield: auth %.0f -> %.0f -> %.0f bit/ms across warmup/burst/recovery (%d yield cuts)",
		bg1, bg2, bg3, fl.yields)
	r.Rowf("foreground controllers: %d ticks, %d marked (%d mark sets), %d decreases, %d hard sheds fed back",
		fl.ctl.Ticks, fl.ctl.Marks, fl.ctl.MarkSets, fl.ctl.Decreases, fl.ctl.Sheds)

	// --- Gates on the side-by-side comparison. ---
	if overload < 10 {
		return r, fmt.Errorf("E18: burst offered only %.1fx the delivery rate; not an overload experiment", overload)
	}
	if fl.timedOut[kms.ClassOTP] != 0 {
		return r, fmt.Errorf("E18: %d high-class requests timed out under flow control", fl.timedOut[kms.ClassOTP])
	}
	for i, w := range fl.otpWins {
		if w == 0 {
			return r, fmt.Errorf("E18: otp consumer %d starved under flow control", i)
		}
	}
	for c := kms.Class(0); c < kms.NumClasses; c++ {
		if base.served[c] == 0 || fl.served[c] == 0 {
			return r, fmt.Errorf("E18: class %s served nothing (base %d, flow %d)", c, base.served[c], fl.served[c])
		}
		bp, fp := pct(base.waits[c], 0.99), pct(fl.waits[c], 0.99)
		if fp >= bp {
			return r, fmt.Errorf("E18: class %s p99 wait %v under flow control not better than open-loop %v", c, fp, bp)
		}
	}
	for _, f := range []struct {
		name string
		j    float64
	}{{"otp", jain(fl.otpWins)}, {"rekey", jain(fl.rekeyWins)}, {"auth", jain(fl.authWins)}} {
		if f.j < 0.9 {
			return r, fmt.Errorf("E18: Jain fairness %.3f across %s consumers under flow control (< 0.9)", f.j, f.name)
		}
	}
	if fl.yields == 0 || bg2 >= 0.5*bg1 {
		return r, fmt.Errorf("E18: background did not yield to foreground (%d cuts, %.0f -> %.0f bit/ms)", fl.yields, bg1, bg2)
	}
	if bg3 <= 0.4*bg1 {
		return r, fmt.Errorf("E18: background did not recover after the burst (%.0f vs warmup %.0f bit/ms)", bg3, bg1)
	}

	// --- Act two: the same loop through the VPN stack. A soft-expiry
	// storm fires against a nearly-empty KDS; the rekeyer's flow
	// controller must mark on pressure, shrink the batch window, and
	// drain in spaced bites once key returns. ---
	tunnels := 64
	if quick {
		tunnels = 32
	}
	specs := make([]vpn.TunnelSpec, tunnels)
	for i := range specs {
		specs[i] = vpn.TunnelSpec{
			Name:    fmt.Sprintf("t%d", i),
			PrefixA: ipsec.MustPrefix(fmt.Sprintf("10.1.%d.0/24", i)),
			PrefixB: ipsec.MustPrefix(fmt.Sprintf("10.2.%d.0/24", i)),
			Suite:   ipsec.SuiteAES128CTR,
			// 6 sealed 96-byte packets cross the soft threshold (525B)
			// but stay under the hard limit, so the whole net rekeys
			// behind live traffic.
			Life: ipsec.Lifetime{Bytes: 600},
		}
	}
	n, err := vpn.New(vpn.Config{
		NoQKD:            true,
		KDS:              true,
		FlowControl:      true,
		FlowConfig:       flow.Config{MarkHigh: 0.5, MarkLow: 0.25},
		IKE:              ike.Config{Phase2Timeout: 150 * time.Millisecond},
		Tunnels:          specs,
		Seed:             seed,
		RekeyWorkers:     4,
		RekeyBatch:       16,
		RekeyBackoff:     2 * time.Millisecond,
		RekeyBackoffMax:  40 * time.Millisecond,
		RekeyRetryBudget: 1 << 20,
	})
	if err != nil {
		return r, fmt.Errorf("E18: vpn: %w", err)
	}
	defer n.Close()
	// Exactly enough key to establish (one Qblock per tunnel) plus one
	// block of slack; the storm finds a starved service.
	n.ChargeSynthetic(tunnels*ike.QblockBits + ike.QblockBits)
	if err := n.Establish(); err != nil {
		return r, fmt.Errorf("E18: establish: %w", err)
	}
	estSAs := n.A.IKE.Stats().SAsEstablished

	payload := bytes.Repeat([]byte{0x18}, 80)
	for i := 0; i < tunnels; i++ {
		src := ipsec.MustAddr(fmt.Sprintf("10.1.%d.5", i))
		dst := ipsec.MustAddr(fmt.Sprintf("10.2.%d.9", i))
		for p := 0; p < 6; p++ {
			if _, err := n.Send(src, dst, uint32(p), payload); err != nil {
				return r, fmt.Errorf("E18: storm traffic tunnel %d packet %d: %w", i, p, err)
			}
		}
	}
	// Famine with a trickle: enough deposits to seed the rate
	// estimator at a starvation-level capacity, nowhere near enough to
	// cover the storm — admission sheds, negotiations time out, the
	// controller marks and the rekeyer spaces its retries.
	for t := 0; t < 8; t++ {
		time.Sleep(24 * time.Millisecond)
		n.ChargeSynthetic(512)
	}
	stormStats := n.RekeyController().Stats()
	stormWin := n.RekeyController().Window()
	// Key returns; the queue must drain fully (two fresh SAs per
	// tunnel on top of establishment).
	n.ChargeSynthetic(2 * tunnels * ike.QblockBits)
	deadline := wallNow().Add(60 * time.Second)
	for n.A.IKE.Stats().SAsEstablished < estSAs+uint64(2*tunnels) {
		if wallNow().After(deadline) {
			return r, fmt.Errorf("E18: rekey storm wedged: %d of %d SAs re-established",
				n.A.IKE.Stats().SAsEstablished-estSAs, 2*tunnels)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < tunnels; i++ {
		src := ipsec.MustAddr(fmt.Sprintf("10.1.%d.5", i))
		dst := ipsec.MustAddr(fmt.Sprintf("10.2.%d.9", i))
		if _, err := n.SendWithRollover(src, dst, uint32(100+i), payload); err != nil {
			return r, fmt.Errorf("E18: post-storm ping tunnel %d: %w", i, err)
		}
	}
	cs := n.RekeyController().Stats()
	vs := n.Stats()
	r.Rowf("vpn storm: %d tunnels soft-expired against a starved KDS; controller marked %d ticks (%d sets), window %d bits mid-famine, %d sheds fed back",
		tunnels, cs.Marks, cs.MarkSets, stormWin, cs.Sheds)
	r.Rowf("vpn drain: %d spaced retries, %d abandoned; all %d tunnels re-keyed and pinged on fresh SAs",
		vs.RekeyRetries, vs.RekeyAbandoned, tunnels)
	if stormStats.MarkSets == 0 || stormStats.Decreases == 0 {
		return r, fmt.Errorf("E18: rekey controller never marked during the famine (marks %d, decreases %d)",
			stormStats.Marks, stormStats.Decreases)
	}
	if vs.RekeyRetries == 0 {
		return r, fmt.Errorf("E18: storm drained without a single spaced retry; famine never bit")
	}
	if vs.RekeyAbandoned != 0 {
		return r, fmt.Errorf("E18: %d tunnels abandoned by the rekeyer", vs.RekeyAbandoned)
	}
	if f := n.A.GW.Stats().IntegFailures + n.B.GW.Stats().IntegFailures; f != 0 {
		return r, fmt.Errorf("E18: %d integrity failures during the storm", f)
	}
	r.Rowf("result: closed loop beats open loop on every class p99 under %.0fx overload, with fair shares and a yielding background", overload)
	return r, nil
}
