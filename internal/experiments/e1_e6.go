package experiments

import (
	"fmt"
	"time"

	"qkd/internal/cascade"
	"qkd/internal/core"
	"qkd/internal/entropy"
	"qkd/internal/ipsec"
	"qkd/internal/photonics"
	"qkd/internal/privacy"
	"qkd/internal/rng"
	"qkd/internal/sifting"
	"qkd/internal/vpn"
)

// labParams is the bench operating point: the paper's source (mu=0.1)
// on a short, efficient bench so Monte Carlo batches are cheap, with
// visibility set for the paper's low-QBER regime.
func labParams() photonics.Params {
	p := photonics.DefaultParams()
	p.FiberKm = 0
	p.SystemLossDB = 0
	p.DetectorEff = 1
	p.DarkCountProb = 1e-5
	p.Visibility = 0.96
	return p
}

// E1EndToEnd reproduces the headline system claim: a complete QKD link
// plus protocol suite plus IPsec VPN, continuously operational, with
// user traffic protected by quantum-distilled keys.
func E1EndToEnd(seed uint64, quick bool) (*Report, error) {
	r := &Report{
		ID:    "E1",
		Title: "end-to-end: QKD link -> protocol suite -> IKE/IPsec VPN",
		Paper: "\"This entire system has been continuously operational since December 2002\" (Sec. 3)",
	}
	n, err := vpn.New(vpn.Config{
		Photonics: labParams(),
		QKD:       core.Config{BatchBits: 2048},
		Suite:     ipsec.SuiteAES128CTR,
		Seed:      seed,
	})
	if err != nil {
		return r, err
	}
	defer n.Close()
	if err := n.DistillKeys(2048, 120); err != nil {
		return r, err
	}
	if err := n.Establish(); err != nil {
		return r, err
	}
	packets := 200
	if quick {
		packets = 50
	}
	for i := 1; i <= packets; i++ {
		if _, err := n.SendWithRollover(vpn.HostA, vpn.HostB, uint32(i), []byte("user traffic")); err != nil {
			return r, fmt.Errorf("packet %d: %w", i, err)
		}
	}
	am := n.Session.Alice.Metrics()
	nst := n.Stats()
	delivered, dropped := nst.Delivered, nst.Dropped
	r.Rowf("pulses transmitted      %12d", am.PulsesSent)
	r.Rowf("sifted bits             %12d", am.SiftedBits)
	r.Rowf("errors corrected        %12d  (QBER %.3f)", am.ErrorsCorrected, am.LastQBER)
	r.Rowf("distilled key bits      %12d", am.DistilledBits)
	r.Rowf("user packets delivered  %12d  (dropped %d)", delivered, dropped)
	r.Rowf("result: VPN operational over quantum-distilled keys")
	return r, nil
}

// analyticYield estimates the distilled fraction of a sifted batch at
// the given QBER: 1 - EC disclosure (classic Cascade ~ 1.2x Shannon)
// - Bennett defense - received-based PNS charge - 5-sigma margin.
func analyticYield(q float64, p photonics.Params, b float64) float64 {
	if q >= 0.15 {
		return 0 // engine aborts the batch
	}
	disclosure := 1.2 * h2(q)
	defense := 4 * q / 1.4142135
	pns := p.MultiPhotonProb() / p.NonVacuumProb()
	margin := 5 * (2.5 * 1.4142135 * (0.5 * q / (0.0001 + q))) / b * 30 // small; dominated by others
	y := 1 - disclosure - defense - pns - margin
	if y < 0 {
		return 0
	}
	return y
}

// E2RateVsDistance reproduces the distance behaviour: "The best current
// systems can support distances up to about 70 km through fiber, though
// at very low bit-rates (e.g. a few bits/second)" and the paper's 10 km
// / 6-8 % QBER operating point.
func E2RateVsDistance(seed uint64, quick bool) (*Report, error) {
	r := &Report{
		ID:    "E2",
		Title: "secret-key rate and QBER vs fiber length",
		Paper: "\"distances up to about 70 km through fiber, though at very low bit-rates\" (Sec. 1); 10 km / 6-8% QBER operating point (Sec. 4)",
	}
	base := photonics.DefaultParams() // mu=0.1, eta=0.1, dark 1e-4... the deployed detector
	base.DarkCountProb = 1e-5         // cooled APD per-gate darks for the long-haul sweep
	r.Rowf("%6s %12s %8s %14s %12s", "km", "click/pulse", "QBER", "sifted bit/s", "secret bit/s")
	distances := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80}
	for _, km := range distances {
		p := base
		p.FiberKm = km
		click := p.ExpectedClickProb()
		q := p.ExpectedQBER()
		siftRate := p.PulseRateHz * click / 2
		secretRate := siftRate * analyticYield(q, p, 4096)
		r.Rowf("%6.0f %12.2e %7.1f%% %14.1f %12.2f", km, click, 100*q, siftRate, secretRate)
	}
	// Monte Carlo cross-check at the paper's 10 km operating point.
	p := photonics.DefaultParams()
	frames := 40
	if quick {
		frames = 10
	}
	link := photonics.NewLink(p, seed)
	sifted, errors := 0, 0
	for f := 0; f < frames; f++ {
		tx, rx := link.TransmitFrame(uint64(f), 100000)
		s, e := photonics.MeasuredQBER(tx, rx)
		sifted += s
		errors += e
	}
	q := float64(errors) / float64(sifted)
	r.Rowf("Monte Carlo @10km: QBER %.1f%% (paper: 6-8%%), sifted %.0f bit/s",
		100*q, float64(sifted)/(float64(frames)*100000)*p.PulseRateHz)
	r.Rowf("shape: secret rate collapses to zero near 70-80 km as dark counts dominate")
	return r, nil
}

// E3SiftRatio reproduces the sifting arithmetic of Section 5.
func E3SiftRatio(seed uint64, quick bool) (*Report, error) {
	r := &Report{
		ID:    "E3",
		Title: "sift ratio at 1% delivery: \"1 photon in 200\"",
		Paper: "\"Thus only 50% x 1% of Alice's photons give rise to a sifted bit, i.e., 1 photon in 200. A transmitted stream of 1,000 bits therefore would boil down to about 5 sifted bits.\" (Sec. 5)",
	}
	// Tune the link to 1 % click probability, no noise.
	p := photonics.DefaultParams()
	p.MeanPhotons = 0.1
	p.FiberKm = 0
	p.SystemLossDB = 0
	p.DetectorEff = 0.105 // mu*eta ~ 1.0 % non-vacuum delivery
	p.DarkCountProb = 0
	link := photonics.NewLink(p, seed)
	pulses := 400000
	if quick {
		pulses = 100000
	}
	tx, rx := link.TransmitFrame(1, pulses)
	sm := sifting.BuildSift(rx)
	_, res, err := sifting.Respond(tx, sm)
	if err != nil {
		return r, err
	}
	ratio := float64(pulses) / float64(res.Bits.Len())
	r.Rowf("pulses transmitted     %10d", pulses)
	r.Rowf("detections reported    %10d", len(sm.Slots))
	r.Rowf("sifted bits            %10d", res.Bits.Len())
	r.Rowf("ratio: 1 sifted bit per %.0f pulses (paper: ~200)", ratio)
	r.Rowf("per 1000 pulses: %.1f sifted bits (paper: ~5)", 1000/ratio)
	rle := len(sm.Encode())
	naive := len(sm.EncodeNaive())
	r.Rowf("sift message: %d bytes RLE vs %d naive (%.1fx smaller)",
		rle, naive, float64(naive)/float64(rle))
	return r, nil
}

// E4Cascade reproduces the error-correction comparison: the adaptive
// BBN variant vs classic Cascade vs the telecom block-parity baseline,
// at a sweep of error rates.
func E4Cascade(seed uint64, quick bool) (*Report, error) {
	r := &Report{
		ID:    "E4",
		Title: "error correction: disclosed bits and residual errors vs QBER",
		Paper: "\"adaptive, in that it will not disclose too many bits if the number of errors is low, but it will accurately detect and correct a large number of errors\" (Sec. 5)",
	}
	n := 4096
	gen := rng.NewSplitMix64(seed)
	qbers := []float64{0.005, 0.01, 0.03, 0.05, 0.07, 0.11}
	if quick {
		qbers = []float64{0.01, 0.05, 0.11}
	}
	r.Rowf("%-6s %-22s %10s %9s %9s %7s", "QBER", "protocol", "disclosed", "d/Shannon", "residual", "rounds")
	for _, q := range qbers {
		errs := int(q * float64(n))
		shannon := h2(q) * float64(n)
		ref := gen.Bits(n)
		noisy := ref.Clone()
		flipped := map[int]bool{}
		for len(flipped) < errs {
			i := gen.Intn(n)
			if !flipped[i] {
				flipped[i] = true
				noisy.Flip(i)
			}
		}
		protos := []cascade.Protocol{
			cascade.NewBBN(seed + uint64(errs)),
			cascade.NewClassic(q, seed+uint64(errs)),
			cascade.NewBlockParity(64),
		}
		for _, proto := range protos {
			res, _, err := cascade.Run(proto, ref, noisy.Clone())
			if err != nil {
				return r, fmt.Errorf("%s at %.3f: %w", proto.Name(), q, err)
			}
			resid := res.Corrected.HammingDistance(ref)
			eff := 0.0
			if shannon > 0 {
				eff = float64(res.Disclosed) / shannon
			}
			r.Rowf("%5.1f%% %-22s %10d %9.2f %9d %7d",
				100*q, proto.Name(), res.Disclosed, eff, resid, res.Rounds)
		}
	}
	r.Rowf("shape: cascades reach zero residual; block-parity strands paired errors;")
	r.Rowf("       classic discloses least at moderate QBER, BBN wins on low-error adaptivity (64 bits flat)")
	// Ablation: subset count.
	ref := gen.Bits(n)
	noisy := ref.Clone()
	for i := 0; i < n/20; i++ {
		noisy.Flip(gen.Intn(n))
	}
	for _, subsets := range []int{16, 64, 256} {
		p := cascade.NewBBN(seed)
		p.Subsets = subsets
		res, _, err := cascade.Run(p, ref, noisy.Clone())
		if err != nil {
			return r, err
		}
		r.Rowf("ablation subsets=%-3d  disclosed %6d  rounds %d  residual %d",
			subsets, res.Disclosed, res.Rounds, res.Corrected.HammingDistance(ref))
	}
	return r, nil
}

// E5Defense reproduces the appendix's entropy-estimation table: the
// Bennett and Slutsky defense functions and their effect on usable
// entropy across the QBER range.
func E5Defense(seed uint64, quick bool) (*Report, error) {
	r := &Report{
		ID:    "E5",
		Title: "defense functions: Bennett vs Slutsky entropy estimates",
		Paper: "\"Neither appears to be completely accurate — Bennett's estimate does not take into account all the information Eve can get ... Slutsky's ... is overly conservative for finite-length blocks\" (Sec. 6, Appendix)",
	}
	b := 4096
	r.Rowf("%-6s %12s %12s %12s %12s", "QBER", "bennett c=0", "bennett c=5", "slutsky c=0", "slutsky c=5")
	for _, q := range []float64{0, 0.01, 0.03, 0.05, 0.07, 0.11, 0.15, 0.25, 0.33} {
		e := int(q * float64(b))
		row := make([]int, 4)
		for i, cfg := range []struct {
			d entropy.Defense
			c float64
		}{{entropy.Bennett, 0}, {entropy.Bennett, 5}, {entropy.Slutsky, 0}, {entropy.Slutsky, 5}} {
			res, err := entropy.Estimate(entropy.Inputs{
				SiftedBits: b, Errors: e, Confidence: cfg.c,
			}, cfg.d)
			if err != nil {
				return r, err
			}
			row[i] = res.Bits
		}
		r.Rowf("%5.1f%% %12d %12d %12d %12d", 100*q, row[0], row[1], row[2], row[3])
	}
	r.Rowf("shape: Slutsky below Bennett across the operating band; Slutsky hits zero at 33%% QBER")
	return r, nil
}

// E6PrivacyAmp reproduces the privacy-amplification construction: both
// sides hash to identical outputs, at the wire format and field sizes
// of Section 5, with throughput measurements.
func E6PrivacyAmp(seed uint64, quick bool) (*Report, error) {
	r := &Report{
		ID:    "E6",
		Title: "privacy amplification over GF(2^n)",
		Paper: "\"a linear hash function over the Galois Field GF[2^n] where n is the number of bits as input, rounded up to a multiple of 32 ... transmits ... the number of bits m, the (sparse) primitive polynomial, a multiplier, and an m-bit polynomial to add\" (Sec. 5)",
	}
	gen := rng.NewSplitMix64(seed)
	sizes := []int{1000, 4096}
	if quick {
		sizes = []int{1000}
	}
	for _, n := range sizes {
		m := n / 2
		input := gen.Bits(n)
		params, err := privacy.NewParams(n, m, gen)
		if err != nil {
			return r, err
		}
		wire := params.Encode()
		peer, err := privacy.DecodeParams(wire)
		if err != nil {
			return r, err
		}
		a, err := params.Apply(input)
		if err != nil {
			return r, err
		}
		bOut, err := peer.Apply(input.Clone())
		if err != nil {
			return r, err
		}
		iters := 200
		if quick {
			iters = 50
		}
		start := wallNow()
		for i := 0; i < iters; i++ {
			if _, err := params.Apply(input); err != nil {
				return r, err
			}
		}
		per := wallSince(start) / time.Duration(iters)
		r.Rowf("n=%-5d (field GF(2^%d), poly %v): m=%d, sides agree=%v, wire %d bytes, %v/hash",
			n, params.N(), params.PolyExps, m, a.Equal(bOut), len(wire), per.Round(time.Microsecond))
	}
	return r, nil
}
