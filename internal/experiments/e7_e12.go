package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"time"

	"qkd/internal/auth"
	"qkd/internal/channel"
	"qkd/internal/core"
	"qkd/internal/eve"
	"qkd/internal/ike"
	"qkd/internal/ipsec"
	"qkd/internal/keypool"
	"qkd/internal/optical"
	"qkd/internal/photonics"
	"qkd/internal/relay"
	"qkd/internal/rng"
	"qkd/internal/vpn"
)

// E7Eve reproduces the eavesdropping results: intercept-resend is
// detected through its induced QBER; beamsplitting is invisible but
// charged by the entropy estimate, with the weak-coherent charge
// proportional to transmitted pulses versus received bits for
// entangled sources.
func E7Eve(seed uint64, quick bool) (*Report, error) {
	r := &Report{
		ID:    "E7",
		Title: "Eve: intercept-resend detection and beamsplit accounting",
		Paper: "\"any eavesdropper that snoops on the quantum channel will cause a measurable disturbance\" (Sec. 1); transparent leakage proportional to transmitted (weak-coherent) vs received (entangled) bits (Sec. 6)",
	}
	frames := 20
	if quick {
		frames = 8
	}
	// Intercept-resend sweep.
	r.Rowf("%-22s %8s %10s %12s", "attack", "QBER", "batches", "key banked")
	for _, prob := range []float64{0, 0.25, 0.5, 1.0} {
		s := core.NewSession(labParams(), core.Config{BatchBits: 2048}, 10000, seed)
		if prob > 0 {
			s.Link.SetTap(eve.NewInterceptResend(prob, seed+7))
		}
		if err := s.RunFrames(frames); err != nil {
			return r, err
		}
		am := s.Alice.Metrics()
		r.Rowf("intercept-resend %3.0f%% %7.1f%% %5d ok/%2d ab %12d",
			100*prob, 100*am.LastQBER, am.BatchesDistilled, am.BatchesAborted,
			am.DistilledBits)
	}
	r.Rowf("shape: full attack -> ~25%% QBER -> every batch aborted, zero key to Eve")

	// Beamsplit: Eve's actual haul vs the estimator's allowance, per mu.
	r.Rowf("%-8s %10s %14s %14s %14s", "mu", "QBER", "eve knows", "charge b-based", "charge n-based")
	for _, mu := range []float64{0.1, 0.5, 1.0} {
		p := labParams()
		p.MeanPhotons = mu
		link := photonics.NewLink(p, seed)
		tap := eve.NewBeamsplit()
		link.SetTap(tap)
		sifted, eveKnows, errors, pulses := 0, 0, 0, 0
		for f := 0; f < frames; f++ {
			tx, rx := link.TransmitFrame(uint64(f), 10000)
			pulses += 10000
			var slots []uint32
			for i := 0; i < rx.Count(); i++ {
				d := rx.At(i)
				v, ok := d.Value()
				if !ok {
					continue
				}
				if tx.Basis(int(d.Slot)) == d.Basis {
					slots = append(slots, d.Slot)
					if tx.Value(int(d.Slot)) != v {
						errors++
					}
				}
			}
			sifted += len(slots)
			eveKnows += tap.KnownBits(slots)
		}
		chargeB := float64(sifted) * p.MultiPhotonProb() / p.NonVacuumProb()
		chargeN := float64(pulses) * p.MultiPhotonProb()
		r.Rowf("%-8.2f %9.1f%% %8d/%d %14.0f %14.0f",
			mu, 100*float64(errors)/float64(sifted+1), eveKnows, sifted, chargeB, chargeN)
	}
	r.Rowf("shape: beamsplit induces zero extra QBER; haul grows with mu;")
	r.Rowf("       received-based charge covers the haul, transmitted-based is vastly conservative")
	return r, nil
}

// E8IKE reproduces the IPsec integration: QKD bits in the Phase 2
// KEYMAT, the AES-reseed vs one-time-pad consumption race, and the
// key-mismatch failure mode IKE cannot detect.
func E8IKE(seed uint64, quick bool) (*Report, error) {
	r := &Report{
		ID:    "E8",
		Title: "IKE/IPsec with QKD keys: reseeding, OTP race, mismatch failure",
		Paper: "\"we have included distilled QKD bits into the IKE Phase 2 hash\"; OTP vs AES per-tunnel policy; mismatched bits fail until rollover (Sec. 7)",
	}
	rounds, packets := 10, 30
	if quick {
		rounds, packets = 5, 15
	}
	race := func(suite ipsec.CipherSuite) (vpn.KeyRaceResult, error) {
		n, err := vpn.New(vpn.Config{
			Photonics: labParams(),
			QKD:       core.Config{BatchBits: 2048},
			IKE:       ike.Config{Phase2Timeout: 100 * time.Millisecond},
			Suite:     suite,
			OTPBits:   16384,
			Seed:      seed,
		})
		if err != nil {
			return vpn.KeyRaceResult{}, err
		}
		defer n.Close()
		if err := n.DistillKeys(3*16384, 400); err != nil {
			return vpn.KeyRaceResult{}, err
		}
		if err := n.Establish(); err != nil {
			return vpn.KeyRaceResult{}, err
		}
		return n.RunKeyRace(rounds, 1, packets, 200)
	}
	aes, err := race(ipsec.SuiteAES128CTR)
	if err != nil {
		return r, err
	}
	otp, err := race(ipsec.SuiteOTP)
	if err != nil {
		return r, err
	}
	r.Rowf("%-14s %10s %10s %12s %14s %14s", "suite", "delivered", "rollovers", "roll fails", "bits distilled", "bits consumed")
	r.Rowf("%-14s %10d %10d %12d %14d %14d", "aes128+qkd", aes.Delivered, aes.Rollovers, aes.RolloverFails, aes.BitsDistilled, aes.BitsConsumed)
	r.Rowf("%-14s %10d %10d %12d %14d %14d", "one-time-pad", otp.Delivered, otp.Rollovers, otp.RolloverFails, otp.BitsDistilled, otp.BitsConsumed)
	r.Rowf("shape: OTP consumes pad at traffic rate and starves; AES sips one Qblock per rollover")

	// Mismatch failure mode.
	n, err := vpn.New(vpn.Config{
		Photonics: labParams(),
		QKD:       core.Config{BatchBits: 2048},
		Suite:     ipsec.SuiteAES128CTR,
		Seed:      seed + 1,
	})
	if err != nil {
		return r, err
	}
	defer n.Close()
	if err := n.DistillKeys(2048, 120); err != nil {
		return r, err
	}
	if err := n.Establish(); err != nil {
		return r, err
	}
	// Corrupt the reservoirs (simulating residual EC error): drain the
	// still-synchronized leftovers, then deposit divergent bits. Rekey,
	// and watch traffic fail with no complaint from IKE.
	n.A.Pool.TryConsume(n.A.Pool.Available())
	n.B.Pool.TryConsume(n.B.Pool.Available())
	n.B.Pool.Deposit(rng.NewSplitMix64(seed).Bits(ike.QblockBits))
	n.A.Pool.Deposit(rng.NewSplitMix64(seed + 99).Bits(ike.QblockBits))
	if err := n.Renegotiate(); err != nil {
		return r, fmt.Errorf("rekey over mismatched pools should succeed silently: %w", err)
	}
	err = n.Ping(1)
	r.Rowf("mismatched pools: rekey succeeded silently, traffic error = %v", err)
	if !errors.Is(err, ipsec.ErrIntegrity) {
		return r, fmt.Errorf("expected integrity failure, got %v", err)
	}
	// Rollover with clean (re-synchronized) key restores service.
	clean := rng.NewSplitMix64(seed + 5).Bits(2 * ike.QblockBits)
	na, nb := n.A.Pool.Available(), n.B.Pool.Available()
	n.A.Pool.TryConsume(na)
	n.B.Pool.TryConsume(nb)
	n.A.Pool.Deposit(clean.Clone())
	n.B.Pool.Deposit(clean)
	if err := n.Renegotiate(); err != nil {
		return r, err
	}
	if err := n.Ping(2); err != nil {
		return r, fmt.Errorf("traffic after clean rollover: %w", err)
	}
	r.Rowf("after rollover with clean key: traffic restored (paper's predicted recovery)")
	return r, nil
}

// E12Transcript regenerates the Fig. 12 log extract: the racoon-style
// transcript of the first VPN protected by quantum cryptography.
func E12Transcript(seed uint64, quick bool) (*Report, error) {
	r := &Report{
		ID:    "E12",
		Title: "Fig. 12: IKE transaction transcript (racoon-style log)",
		Paper: "\"Extract from the first IKE transaction setting up a VPN protected by quantum cryptography.\"",
	}
	var logA, logB bytes.Buffer
	n, err := vpn.New(vpn.Config{
		Photonics: labParams(),
		QKD:       core.Config{BatchBits: 2048},
		Suite:     ipsec.SuiteAES128CTR,
		Seed:      seed,
		IKELogA:   &logA,
		IKELogB:   &logB,
	})
	if err != nil {
		return r, err
	}
	defer n.Close()
	if err := n.DistillKeys(2048, 120); err != nil {
		return r, err
	}
	if err := n.Establish(); err != nil {
		return r, err
	}
	if err := n.Ping(1); err != nil {
		return r, err
	}
	for _, line := range strings.Split(strings.TrimSpace(logB.String()), "\n") {
		r.Rowf("bob-gw racoon: %s", line)
	}
	return r, nil
}

// E9RelayMesh reproduces the trusted-relay network claims: key
// transport that survives link failures and eavesdropping, the trust
// exposure of relays, and the N vs N(N-1)/2 interconnect economics.
func E9RelayMesh(seed uint64, quick bool) (*Report, error) {
	r := &Report{
		ID:    "E9",
		Title: "trusted-relay mesh: robustness, trust exposure, topology cost",
		Paper: "\"a meshed QKD network is inherently far more robust than any single point-to-point link since it offers multiple paths\" (Sec. 2); relays must be trusted (Sec. 8)",
	}
	names := []string{"bbn", "harvard", "bu", "alice", "bob", "carol"}
	mesh := relay.FullMesh(seed, 8192, names...)
	deliveries := 60
	if quick {
		deliveries = 20
	}
	kills := [][2]string{{"bbn", "bob"}, {"bbn", "harvard"}, {"alice", "bob"}, {"bu", "carol"}}
	failedAt := -1
	var sampleExposure []string
	for i := 0; i < deliveries; i++ {
		mesh.Tick()
		if i < len(kills)*5 && i%5 == 4 {
			k := kills[i/5]
			if i/5%2 == 0 {
				mesh.Cut(k[0], k[1])
			} else {
				mesh.Eavesdrop(k[0], k[1])
			}
		}
		d, err := mesh.TransportKey("bbn", "bob", 1024)
		if err != nil {
			failedAt = i
			break
		}
		if len(d.Exposed) > 0 && sampleExposure == nil {
			sampleExposure = append([]string{}, d.Exposed...)
		}
	}
	st := mesh.Stats()
	r.Rowf("full mesh: %d nodes, %d links (N(N-1)/2)", len(names), mesh.LinkCount())
	r.Rowf("links killed mid-run: %d (2 cut, 2 eavesdropped)", len(kills))
	failNote := "none"
	if failedAt >= 0 {
		failNote = fmt.Sprintf("first at delivery %d", failedAt)
	}
	r.Rowf("keys delivered: %d, failed: %d (%s)", st.KeysDelivered, st.DeliveryFailed, failNote)
	r.Rowf("sample relay exposure on a rerouted path: %v", sampleExposure)

	// Point-to-point comparison: the same first kill severs a lone link
	// permanently.
	p2p := relay.NewNetwork(seed)
	p2p.AddNode("bbn")
	p2p.AddNode("bob")
	p2p.AddLink("bbn", "bob", 8192)
	p2p.Tick()
	p2p.Cut("bbn", "bob")
	_, err := p2p.TransportKey("bbn", "bob", 1024)
	r.Rowf("point-to-point after one cut: %v", err)

	star := relay.Star(seed, 8192, "hub", names...)
	star.Tick()
	d, err := star.TransportKey("bbn", "bob", 1024)
	if err != nil {
		return r, err
	}
	r.Rowf("star: %d links (N) connects all %d sites; every key exposed to %v",
		star.LinkCount(), len(names), d.Exposed)
	return r, nil
}

// E10Switches reproduces the untrusted-switch trade: no trust exposure,
// but each switch's insertion loss shrinks the reach.
func E10Switches(seed uint64, quick bool) (*Report, error) {
	r := &Report{
		ID:    "E10",
		Title: "untrusted photonic switches: loss vs hops, end-to-end QKD",
		Paper: "\"each switch adds at least a fractional dB insertion loss along the photonic path\" (Sec. 8)",
	}
	mesh := optical.NewMesh()
	mesh.AddEndpoint("alice")
	hops := 5
	for i := 0; i < hops; i++ {
		mesh.AddSwitch(fmt.Sprintf("sw%d", i), 1.0)
		mesh.AddEndpoint(fmt.Sprintf("bob%d", i))
	}
	mesh.Connect("alice", "sw0", 2)
	for i := 0; i < hops; i++ {
		mesh.Connect(fmt.Sprintf("sw%d", i), fmt.Sprintf("bob%d", i), 2)
		if i+1 < hops {
			mesh.Connect(fmt.Sprintf("sw%d", i), fmt.Sprintf("sw%d", i+1), 2)
		}
	}
	base := labParams()
	frames := 40
	if quick {
		frames = 15
	}
	r.Rowf("%6s %10s %10s %8s %14s", "hops", "loss dB", "click/p", "QBER", "secret/pulse")
	for i := 0; i < hops; i++ {
		p, err := mesh.Establish("alice", fmt.Sprintf("bob%d", i))
		if err != nil {
			return r, err
		}
		res, err := p.RunQKD(base, core.Config{BatchBits: 2048}, frames, 10000, seed)
		if err != nil {
			return r, err
		}
		r.Rowf("%6d %10.1f %10.4f %7.1f%% %14.5f",
			p.Hops(), p.SwitchDB+0.2*p.FiberKm, p.ExpectedClickProb(base),
			100*p.ExpectedQBER(base), res.SecretPerPulse)
		p.Release()
	}
	r.Rowf("shape: secret rate falls ~10^(-loss/10) per added switch; zero trust exposure")
	return r, nil
}

// E11Auth reproduces the authentication claims: Wegman-Carter tags
// reject forgeries unconditionally, pads are never reused, and Eve can
// force pool exhaustion — the DoS of Section 2 — until replenishment.
func E11Auth(seed uint64, quick bool) (*Report, error) {
	r := &Report{
		ID:    "E11",
		Title: "Wegman-Carter authentication: forgery, exhaustion, replenishment",
		Paper: "\"this approach appears open to denial of service attacks in which an adversary forces a QKD system to exhaust its stockpile of key material\" (Sec. 2)",
	}
	gen := rng.NewSplitMix64(seed)
	mkPools := func(bits int) (*keypool.Reservoir, *keypool.Reservoir) {
		m := gen.Bits(bits)
		a, b := keypool.New(), keypool.New()
		a.Deposit(m.Clone())
		b.Deposit(m)
		return a, b
	}
	// Forgery resistance under MITM.
	tampered := 0
	connA, connB := channel.NewMITM(func(dir channel.Direction, m channel.Message) (channel.Message, bool) {
		if dir == channel.AliceToBob && len(m.Payload) > 8 && tampered < 50 {
			m.Payload[0] ^= 0xFF
			tampered++
		}
		return m, false
	})
	pa1, pb1 := mkPools(1 << 16)
	pa2, pb2 := mkPools(1 << 16)
	alice, err := auth.Wrap(connA, pa1, pa2)
	if err != nil {
		return r, err
	}
	bob, err := auth.Wrap(connB, pb2, pb1)
	if err != nil {
		return r, err
	}
	msgs := 50
	rejected := 0
	for i := 0; i < msgs; i++ {
		if err := alice.Send(1, []byte("protocol message")); err != nil {
			return r, err
		}
		if _, err := bob.Recv(); errors.Is(err, auth.ErrForged) {
			rejected++
		}
	}
	r.Rowf("MITM rewrote %d/%d messages; %d rejected (%.0f%%)",
		tampered, msgs, rejected, 100*float64(rejected)/float64(tampered))

	// Exhaustion DoS and replenishment.
	poolBits := 64 + 10*auth.PadBitsPerMessage
	small := keypool.New()
	small.Deposit(gen.Bits(poolBits))
	mac, err := auth.NewMAC(small)
	if err != nil {
		return r, err
	}
	sent := 0
	for {
		if _, err := mac.Tag([]byte("spend")); err != nil {
			break
		}
		sent++
	}
	r.Rowf("pool of %d bits: %d tags issued before exhaustion (64 bits/tag)", poolBits, sent)
	small.Deposit(gen.Bits(20 * auth.PadBitsPerMessage))
	resumed := 0
	for {
		if _, err := mac.Tag([]byte("spend")); err != nil {
			break
		}
		resumed++
	}
	r.Rowf("after replenishing from distilled key: %d further tags (service restored)", resumed)
	return r, nil
}
