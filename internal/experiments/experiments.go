// Package experiments regenerates every quantitative claim, operating
// point, table and figure of the paper's evaluation (E1-E12), plus the
// scaling experiments the reproduction adds on top (E13: the key
// delivery service under 1000+ concurrent consumers; E14: disjoint-path
// XOR key striping with QBER-triggered failover; E15: the concurrent
// multi-tunnel IPsec dataplane under rollover load and a replay
// storm; E16: a 100k-tunnel gateway fabric through the batched
// dataplane and a synchronized rollover storm; E17: a chaos soak
// driving a trace-shaped workload through a seeded fault schedule —
// fiber cuts, an Eve storm, a relay compromise, a KDS overload pulse
// and a gateway crash-restart — gated on end-to-end SLOs; E18:
// closed-loop congestion-controlled key replenishment, credit windows
// and a LEDBAT-style background class measured side by side against
// open-loop shedding under overload). Each experiment
// Exx function runs a workload and returns a Report whose rows mirror
// what the paper states; cmd/qkdexp prints them and the repository's
// bench_test.go wraps each in a testing.B benchmark. EXPERIMENTS.md
// records paper-versus-measured for each.
package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Report is one experiment's output.
type Report struct {
	ID    string
	Title string
	// Paper is the claim being reproduced, quoted or paraphrased.
	Paper string
	rows  []string
}

// Rowf appends a formatted table row.
func (r *Report) Rowf(format string, args ...interface{}) {
	r.rows = append(r.rows, fmt.Sprintf(format, args...))
}

// Rows returns the table rows.
func (r *Report) Rows() []string { return r.rows }

// String renders the report.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	fmt.Fprintf(&sb, "paper: %s\n", r.Paper)
	for _, row := range r.rows {
		sb.WriteString("  ")
		sb.WriteString(row)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// h2 is the binary entropy function.
func h2(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// All runs every experiment. quick trims Monte Carlo sizes for use
// under the bench harness.
func All(seed uint64, quick bool) ([]*Report, error) {
	runs := []func(uint64, bool) (*Report, error){
		E1EndToEnd,
		E2RateVsDistance,
		E3SiftRatio,
		E4Cascade,
		E5Defense,
		E6PrivacyAmp,
		E7Eve,
		E8IKE,
		E9RelayMesh,
		E10Switches,
		E11Auth,
		E12Transcript,
		E13KDS,
		E14Striping,
		E15Dataplane,
		E16Fabric,
		E17ChaosSoak,
		E18FlowControl,
	}
	var out []*Report
	for i, run := range runs {
		r, err := run(seed, quick)
		if err != nil {
			return out, fmt.Errorf("experiment %d failed: %w", i+1, err)
		}
		out = append(out, r)
	}
	return out, nil
}
