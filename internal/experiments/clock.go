package experiments

import "time"

// wallNow is the experiments' single wall-clock read point. The
// harness logic itself is deterministic — fault schedules, chaos
// plans, and workload traces all replay from seeds — but the reports
// quote real elapsed time for the paper's latency tables, and that is
// the one legitimate wall-clock dependency. Routing every read through
// this injectable hook keeps that dependency in one place where a test
// (or a replay harness) can freeze it.
var wallNow = time.Now

// wallSince is time.Since against the injected clock.
func wallSince(t time.Time) time.Duration {
	return wallNow().Sub(t)
}
