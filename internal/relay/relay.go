// Package relay implements the trusted-relay QKD network of Section 8:
// a mesh of nodes joined by point-to-point QKD links, where end-to-end
// keys are transported "hop by hop from one endpoint to the other,
// being onetime-pad encrypted and decrypted with each pairwise key as
// it proceeds from one relay to the next."
//
// The properties the paper claims for such meshes — and experiments E9
// exercises — are built in:
//
//   - robustness: when a link fails (fiber cut) or raises the
//     eavesdropping alarm (QBER spike), it is abandoned and key
//     transport re-routes over surviving links;
//   - the trust cost: every intermediate relay on a delivery path holds
//     the end-to-end key in the clear, and the API reports exactly
//     which nodes were exposed;
//   - the economics: a star topology needs N links where pairwise
//     point-to-point needs N(N-1)/2.
//
// Pairwise link keys come from an abstracted per-link QKD process (the
// photonic simulation of package photonics, distilled by package core,
// summarized here as a replenishment rate), because a relay network's
// behaviour depends only on each link's distilled-key arrival rate and
// health.
package relay

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"qkd/internal/bitarray"
	"qkd/internal/keypool"
	"qkd/internal/rng"
)

// Errors.
var (
	ErrNoPath      = errors.New("relay: no usable path between endpoints")
	ErrUnknownNode = errors.New("relay: unknown node")
	ErrLinkExists  = errors.New("relay: link already exists")
)

// LinkState describes a link's health.
type LinkState int

const (
	// LinkUp is healthy and producing key.
	LinkUp LinkState = iota
	// LinkCut has lost its fiber; no key flows and it cannot carry
	// transport.
	LinkCut
	// LinkEavesdropped has raised the QBER alarm. Its pairwise key is
	// discarded (it may be known to Eve) and it is abandoned.
	LinkEavesdropped
)

func (s LinkState) String() string {
	switch s {
	case LinkUp:
		return "up"
	case LinkCut:
		return "cut"
	case LinkEavesdropped:
		return "eavesdropped"
	}
	return fmt.Sprintf("LinkState(%d)", int(s))
}

// Link is one point-to-point QKD link inside the mesh. Its reservoir
// models the synchronized pairwise key held at both endpoints.
type Link struct {
	A, B string
	// RateBits is the distilled bits deposited per Tick while up.
	RateBits int

	mu    sync.Mutex
	state LinkState
	pool  *keypool.Reservoir
}

// State returns the link's health.
func (l *Link) State() LinkState {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.state
}

// Pool returns the link's pairwise-key reservoir. While the link is
// down (cut or eavesdropped) the reservoir is closed, so blocked
// withdrawals fail fast with keypool.ErrClosed instead of sitting out
// their timeouts; Restore installs a fresh reservoir. Callers that
// block on a link must therefore re-fetch the pool per withdrawal
// rather than caching it across outages.
func (l *Link) Pool() *keypool.Reservoir {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pool
}

// KeyAvailable returns the pairwise key on hand.
func (l *Link) KeyAvailable() int { return l.Pool().Available() }

// Network is the relay mesh.
type Network struct {
	mu    sync.Mutex
	nodes map[string]bool
	links map[string]*Link // canonical "a|b" with a < b
	rand  *rng.SplitMix64

	stats Stats
}

// Stats counts network activity.
type Stats struct {
	KeysDelivered   uint64
	DeliveryFailed  uint64
	BitsTransported uint64
	Reroutes        uint64
	// BitsRefunded counts pairwise key reserved for a transport that
	// failed before using it — refunded to its pool instead of burned.
	BitsRefunded uint64
}

// NewNetwork returns an empty mesh seeded for key generation.
func NewNetwork(seed uint64) *Network {
	return &Network{
		nodes: make(map[string]bool),
		links: make(map[string]*Link),
		rand:  rng.NewSplitMix64(seed),
	}
}

// AddNode registers a relay or endpoint.
func (n *Network) AddNode(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[name] = true
}

func linkKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// AddLink joins two registered nodes with a QKD link replenishing
// rateBits per Tick.
func (n *Network) AddLink(a, b string, rateBits int) (*Link, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.nodes[a] || !n.nodes[b] {
		return nil, fmt.Errorf("%w: %s or %s", ErrUnknownNode, a, b)
	}
	k := linkKey(a, b)
	if _, ok := n.links[k]; ok {
		return nil, fmt.Errorf("%w: %s", ErrLinkExists, k)
	}
	l := &Link{A: a, B: b, RateBits: rateBits, pool: keypool.New()}
	n.links[k] = l
	return l, nil
}

// Link returns the link between a and b, or nil.
func (n *Network) Link(a, b string) *Link {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.links[linkKey(a, b)]
}

// Links returns all links (sorted by canonical name, for stable output).
func (n *Network) Links() []*Link {
	n.mu.Lock()
	defer n.mu.Unlock()
	keys := make([]string, 0, len(n.links))
	for k := range n.links {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Link, len(keys))
	for i, k := range keys {
		out[i] = n.links[k]
	}
	return out
}

// Stats returns a snapshot.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Tick advances every link's QKD process one step: healthy links
// deposit RateBits of fresh pairwise key; an eavesdropped link raises
// its alarm here (the QBER spike is noticed at the next distillation
// batch) and discards its compromised pool.
func (n *Network) Tick() {
	for _, l := range n.Links() {
		// Draw the fresh bits before taking l.mu: randBits locks n.mu,
		// and findPath nests l.mu under n.mu, so generating under l.mu
		// would close a Link.mu→Network.mu→Link.mu deadlock cycle.
		if l.State() != LinkUp {
			continue
		}
		fresh := n.randBits(l.RateBits)
		l.mu.Lock()
		if l.state == LinkUp { // may have been cut or eavesdropped since
			l.pool.Deposit(fresh)
		}
		l.mu.Unlock()
	}
}

func (n *Network) randBits(bits int) *bitarray.BitArray {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rand.Bits(bits)
}

// Cut severs a link's fiber. The pairwise pool is closed so consumers
// blocked on it fail fast with keypool.ErrClosed (and late arrivals
// fail immediately) instead of waiting out their timeouts on a link
// that will never replenish.
func (n *Network) Cut(a, b string) error {
	l := n.Link(a, b)
	if l == nil {
		return fmt.Errorf("%w: %s-%s", ErrUnknownNode, a, b)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.state = LinkCut
	l.pool.Close()
	return nil
}

// Eavesdrop places Eve on a link: the QBER alarm fires, the link is
// abandoned, and its pairwise key pool — potentially known to Eve — is
// destroyed.
func (n *Network) Eavesdrop(a, b string) error {
	l := n.Link(a, b)
	if l == nil {
		return fmt.Errorf("%w: %s-%s", ErrUnknownNode, a, b)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.state = LinkEavesdropped
	// Closing discards the compromised key and releases every blocked
	// waiter with keypool.ErrClosed. The closed pool stays installed
	// while the link is abandoned so later consumers also fail fast
	// (a fresh open pool here would block them until timeout on a link
	// that is never replenished).
	l.pool.Close()
	return nil
}

// Restore repairs a link (new fiber / Eve gone); its pool restarts
// empty. The old pool is closed first so any waiter still blocked from
// before the outage fails fast instead of silently re-attaching to a
// reservoir that no longer exists.
func (n *Network) Restore(a, b string) error {
	l := n.Link(a, b)
	if l == nil {
		return fmt.Errorf("%w: %s-%s", ErrUnknownNode, a, b)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.state = LinkUp
	l.pool.Close()
	l.pool = keypool.New()
	return nil
}

// Delivery is the outcome of one end-to-end key transport.
type Delivery struct {
	// Key is the transported end-to-end key.
	Key *bitarray.BitArray
	// Path is the node sequence used.
	Path []string
	// Exposed lists the intermediate relays that held Key in the clear
	// — the trust cost of the trusted-relay architecture.
	Exposed []string
}

// reservePath sets aside nbits of pairwise key on every hop of path
// before any of it is used — all-or-nothing, so a hop that cannot be
// reserved costs the earlier hops nothing (the pad-burn leak the old
// consume-as-you-go transport had). On failure every reservation made
// so far is refunded and the failure is accounted.
func (n *Network) reservePath(path []string, nbits int) ([]*keypool.Reservation, error) {
	resvs := make([]*keypool.Reservation, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		l := n.Link(path[i], path[i+1])
		rv, err := l.Pool().Reserve(nbits)
		if err != nil {
			n.releaseAll(resvs)
			n.mu.Lock()
			n.stats.DeliveryFailed++
			n.mu.Unlock()
			return nil, fmt.Errorf("relay: pairwise key on %s-%s vanished: %w", l.A, l.B, err)
		}
		resvs = append(resvs, rv)
	}
	return resvs, nil
}

// releaseAll refunds the undrawn remainder of every reservation.
func (n *Network) releaseAll(resvs []*keypool.Reservation) {
	var refunded uint64
	for _, rv := range resvs {
		refunded += uint64(rv.Remaining())
		rv.Release()
	}
	if refunded > 0 {
		n.mu.Lock()
		n.stats.BitsRefunded += refunded
		n.mu.Unlock()
	}
}

// TransportKey generates an nbits end-to-end key at src and relays it
// hop-by-hop to dst, consuming nbits of pairwise key per hop. Paths
// avoid unhealthy links and links with insufficient pairwise key, and
// every hop's pad is reserved before any is consumed: a transport that
// cannot complete refunds the pools it touched.
func (n *Network) TransportKey(src, dst string, nbits int) (*Delivery, error) {
	path, err := n.findPath(src, dst, nbits)
	if err != nil {
		n.mu.Lock()
		n.stats.DeliveryFailed++
		n.mu.Unlock()
		return nil, err
	}
	// Generate the end-to-end key at the source.
	key := n.randBits(nbits)
	if len(path) < 2 {
		// Self-transport: the key never leaves src — no hops, no pad
		// consumption, nothing exposed.
		n.mu.Lock()
		n.stats.KeysDelivered++
		n.mu.Unlock()
		return &Delivery{Key: key, Path: path}, nil
	}
	resvs, err := n.reservePath(path, nbits)
	if err != nil {
		return nil, err
	}

	// Hop-by-hop one-time-pad transport: on the wire between u and v
	// the key is key XOR pad_uv; inside each relay it is briefly in the
	// clear.
	current := key.Clone()
	for i, rv := range resvs {
		pad, err := rv.Consume(nbits)
		if err != nil {
			// The link was torn down between reservation and use; pads
			// not yet on the wire go back to their pools.
			n.releaseAll(resvs[i+1:])
			n.mu.Lock()
			n.stats.DeliveryFailed++
			n.mu.Unlock()
			l := n.Link(path[i], path[i+1])
			return nil, fmt.Errorf("relay: pairwise key on %s-%s vanished: %w", l.A, l.B, err)
		}
		onWire := current.Clone()
		onWire.Xor(pad) // encrypt at u
		current = onWire
		current.Xor(pad) // decrypt at v — in the clear inside the relay
	}
	if !current.Equal(key) {
		return nil, errors.New("relay: transport corrupted the key")
	}
	n.mu.Lock()
	n.stats.KeysDelivered++
	n.stats.BitsTransported += uint64(nbits) * uint64(len(path)-1)
	n.mu.Unlock()
	return &Delivery{
		Key:     key,
		Path:    path,
		Exposed: append([]string(nil), path[1:len(path)-1]...),
	}, nil
}

// findPath BFSes over links that are up and hold at least nbits.
func (n *Network) findPath(src, dst string, nbits int) ([]string, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.nodes[src] || !n.nodes[dst] {
		return nil, fmt.Errorf("%w: %s or %s", ErrUnknownNode, src, dst)
	}
	if src == dst {
		return []string{src}, nil
	}
	adj := make(map[string][]string)
	for _, l := range n.links {
		l.mu.Lock()
		ok := l.state == LinkUp && l.pool.Available() >= nbits
		l.mu.Unlock()
		if ok {
			adj[l.A] = append(adj[l.A], l.B)
			adj[l.B] = append(adj[l.B], l.A)
		}
	}
	for _, peers := range adj {
		sort.Strings(peers) // deterministic routing
	}
	prev := map[string]string{src: src}
	queue := []string{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == dst {
			var path []string
			for v := dst; ; v = prev[v] {
				path = append([]string{v}, path...)
				if v == src {
					return path, nil
				}
			}
		}
		for _, v := range adj[u] {
			if _, seen := prev[v]; !seen {
				prev[v] = u
				queue = append(queue, v)
			}
		}
	}
	return nil, ErrNoPath
}

// PathExists reports whether a transport of nbits could route now.
func (n *Network) PathExists(src, dst string, nbits int) bool {
	_, err := n.findPath(src, dst, nbits)
	return err == nil
}

// FullMesh links every node pair: the N(N-1)/2 interconnect of the
// paper's cost discussion.
func FullMesh(seed uint64, rateBits int, names ...string) *Network {
	n := NewNetwork(seed)
	for _, name := range names {
		n.AddNode(name)
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			n.AddLink(names[i], names[j], rateBits)
		}
	}
	return n
}

// Star links every leaf to a hub: N links for N+1 nodes.
func Star(seed uint64, rateBits int, hub string, leaves ...string) *Network {
	n := NewNetwork(seed)
	n.AddNode(hub)
	for _, leaf := range leaves {
		n.AddNode(leaf)
		n.AddLink(hub, leaf, rateBits)
	}
	return n
}

// LinkCount returns the number of links in the mesh.
func (n *Network) LinkCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.links)
}

// MessageDelivery is the outcome of transporting message traffic (the
// paper's second network variant: "QKD relays may transport both keying
// material and message traffic ... uses QKD as a link encryption
// mechanism").
type MessageDelivery struct {
	Payload []byte
	Path    []string
	Exposed []string
	// PadBitsUsed is the pairwise key consumed: len(payload)*8 per hop.
	PadBitsUsed int
}

// TransportMessage carries payload hop-by-hop under per-link one-time
// pads: each link consumes 8*len(payload) bits of pairwise key, and the
// plaintext appears in the clear inside every intermediate relay. Pads
// are reserved on every hop before any is consumed, so a failed
// delivery refunds the pools it touched.
func (n *Network) TransportMessage(src, dst string, payload []byte) (*MessageDelivery, error) {
	nbits := 8 * len(payload)
	path, err := n.findPath(src, dst, nbits)
	if err != nil {
		n.mu.Lock()
		n.stats.DeliveryFailed++
		n.mu.Unlock()
		return nil, err
	}
	if len(path) < 2 {
		// Self-delivery: the payload never leaves src.
		n.mu.Lock()
		n.stats.KeysDelivered++
		n.mu.Unlock()
		return &MessageDelivery{Payload: append([]byte(nil), payload...), Path: path}, nil
	}
	resvs, err := n.reservePath(path, nbits)
	if err != nil {
		return nil, err
	}
	current := bitarray.FromBytes(payload)
	used := 0
	for i, rv := range resvs {
		pad, err := rv.Consume(nbits)
		if err != nil {
			n.releaseAll(resvs[i+1:])
			n.mu.Lock()
			n.stats.DeliveryFailed++
			n.mu.Unlock()
			l := n.Link(path[i], path[i+1])
			return nil, fmt.Errorf("relay: pairwise key on %s-%s vanished: %w", l.A, l.B, err)
		}
		used += nbits
		// Encrypt at the sending relay, decrypt at the receiving one;
		// between them only ciphertext crosses the link.
		onWire := current.Clone()
		onWire.Xor(pad)
		current = onWire
		current.Xor(pad)
	}
	n.mu.Lock()
	n.stats.KeysDelivered++
	n.stats.BitsTransported += uint64(used)
	n.mu.Unlock()
	return &MessageDelivery{
		Payload:     current.Bytes(),
		Path:        path,
		Exposed:     append([]string(nil), path[1:len(path)-1]...),
		PadBitsUsed: used,
	}, nil
}
