package relay

import (
	"errors"
	"testing"
	"time"

	"qkd/internal/keypool"
)

// ring builds A-B-C-D-A with a chord A-C.
func ring(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork(1)
	for _, name := range []string{"A", "B", "C", "D"} {
		n.AddNode(name)
	}
	for _, e := range [][2]string{{"A", "B"}, {"B", "C"}, {"C", "D"}, {"D", "A"}, {"A", "C"}} {
		if _, err := n.AddLink(e[0], e[1], 4096); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func TestTransportDirectLink(t *testing.T) {
	n := ring(t)
	n.Tick()
	d, err := n.TransportKey("A", "B", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if d.Key.Len() != 1024 {
		t.Errorf("key length %d", d.Key.Len())
	}
	if len(d.Path) != 2 || d.Path[0] != "A" || d.Path[1] != "B" {
		t.Errorf("path %v", d.Path)
	}
	if len(d.Exposed) != 0 {
		t.Errorf("direct link exposed %v", d.Exposed)
	}
}

func TestTransportMultiHopExposesRelays(t *testing.T) {
	n := ring(t)
	n.Tick()
	// Remove the direct and chord options: B-C forced through nothing...
	// B to D: shortest is B-A-D or B-C-D (2 hops).
	d, err := n.TransportKey("B", "D", 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Path) != 3 {
		t.Fatalf("path %v, want 2 hops", d.Path)
	}
	if len(d.Exposed) != 1 {
		t.Fatalf("exposed %v, want exactly the middle relay", d.Exposed)
	}
	if d.Exposed[0] != d.Path[1] {
		t.Error("exposure list does not match path interior")
	}
}

func TestTransportConsumesPairwiseKey(t *testing.T) {
	n := ring(t)
	n.Tick() // 4096 bits per link
	l := n.Link("A", "B")
	before := l.KeyAvailable()
	if _, err := n.TransportKey("A", "B", 1000); err != nil {
		t.Fatal(err)
	}
	if after := l.KeyAvailable(); before-after != 1000 {
		t.Errorf("link consumed %d bits, want 1000", before-after)
	}
}

func TestRerouteAroundCut(t *testing.T) {
	n := ring(t)
	n.Tick()
	if err := n.Cut("A", "B"); err != nil {
		t.Fatal(err)
	}
	d, err := n.TransportKey("A", "B", 512)
	if err != nil {
		t.Fatalf("no delivery after cut: %v", err)
	}
	if len(d.Path) < 3 {
		t.Errorf("path %v should avoid the cut link", d.Path)
	}
	for i := 0; i+1 < len(d.Path); i++ {
		if (d.Path[i] == "A" && d.Path[i+1] == "B") || (d.Path[i] == "B" && d.Path[i+1] == "A") {
			t.Error("path used the cut link")
		}
	}
}

func TestRerouteAroundEavesdropper(t *testing.T) {
	n := ring(t)
	n.Tick()
	if err := n.Eavesdrop("A", "C"); err != nil {
		t.Fatal(err)
	}
	// The compromised link's key is gone and it no longer replenishes.
	n.Tick()
	if got := n.Link("A", "C").KeyAvailable(); got != 0 {
		t.Errorf("eavesdropped link still holds %d bits", got)
	}
	d, err := n.TransportKey("A", "C", 512)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(d.Path); i++ {
		if (d.Path[i] == "A" && d.Path[i+1] == "C") || (d.Path[i] == "C" && d.Path[i+1] == "A") {
			t.Error("path used the eavesdropped link")
		}
	}
}

func TestPartitionFailsDelivery(t *testing.T) {
	n := ring(t)
	n.Tick()
	// Cut every link touching A.
	n.Cut("A", "B")
	n.Cut("D", "A")
	n.Cut("A", "C")
	if _, err := n.TransportKey("A", "C", 64); !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
	if st := n.Stats(); st.DeliveryFailed != 1 {
		t.Errorf("DeliveryFailed = %d", st.DeliveryFailed)
	}
}

func TestRestoreResumesService(t *testing.T) {
	n := ring(t)
	n.Cut("A", "B")
	n.Cut("D", "A")
	n.Cut("A", "C")
	n.Restore("A", "B")
	n.Tick()
	if _, err := n.TransportKey("A", "B", 64); err != nil {
		t.Fatalf("restored link unusable: %v", err)
	}
}

func TestInsufficientKeyRoutesAround(t *testing.T) {
	n := ring(t)
	n.Tick()
	// Drain the direct A-B link below the request size.
	l := n.Link("A", "B")
	l.pool.TryConsume(l.KeyAvailable() - 100)
	d, err := n.TransportKey("A", "B", 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Path) == 2 {
		t.Error("path used the key-starved direct link")
	}
}

func TestKeyRegenerationOverTicks(t *testing.T) {
	n := NewNetwork(3)
	n.AddNode("X")
	n.AddNode("Y")
	n.AddLink("X", "Y", 1000)
	for i := 0; i < 5; i++ {
		n.Tick()
	}
	if got := n.Link("X", "Y").KeyAvailable(); got != 5000 {
		t.Errorf("KeyAvailable = %d, want 5000", got)
	}
	// Consume continuously at production rate: sustainable.
	for i := 0; i < 20; i++ {
		n.Tick()
		if _, err := n.TransportKey("X", "Y", 1000); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}
}

func TestTopologyCosts(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e", "f"}
	full := FullMesh(1, 100, names...)
	if got := full.LinkCount(); got != 15 { // 6*5/2
		t.Errorf("full mesh links = %d, want 15", got)
	}
	star := Star(1, 100, "hub", names...)
	if got := star.LinkCount(); got != 6 {
		t.Errorf("star links = %d, want 6", got)
	}
	// Star still connects any pair (through the hub).
	star.Tick()
	d, err := star.TransportKey("a", "f", 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Exposed) != 1 || d.Exposed[0] != "hub" {
		t.Errorf("star delivery exposed %v, want [hub]", d.Exposed)
	}
}

func TestUnknownNodesRejected(t *testing.T) {
	n := NewNetwork(1)
	n.AddNode("A")
	if _, err := n.AddLink("A", "ghost", 10); err == nil {
		t.Error("link to unknown node accepted")
	}
	if _, err := n.TransportKey("A", "ghost", 10); err == nil {
		t.Error("transport to unknown node accepted")
	}
}

func TestDuplicateLinkRejected(t *testing.T) {
	n := NewNetwork(1)
	n.AddNode("A")
	n.AddNode("B")
	if _, err := n.AddLink("A", "B", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddLink("B", "A", 10); !errors.Is(err, ErrLinkExists) {
		t.Errorf("duplicate (reversed) link: %v", err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	n := ring(t)
	n.Tick()
	n.TransportKey("A", "B", 100)
	n.TransportKey("B", "D", 100)
	st := n.Stats()
	if st.KeysDelivered != 2 {
		t.Errorf("KeysDelivered = %d", st.KeysDelivered)
	}
	if st.BitsTransported != 100+200 { // 1 hop + 2 hops
		t.Errorf("BitsTransported = %d", st.BitsTransported)
	}
}

func BenchmarkTransport6NodeMesh(b *testing.B) {
	n := FullMesh(1, 1<<20, "a", "b", "c", "d", "e", "f")
	n.Tick()
	for i := 0; i < b.N; i++ {
		if i%256 == 0 {
			n.Tick()
		}
		if _, err := n.TransportKey("a", "f", 256); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTransportMessage(t *testing.T) {
	n := ring(t)
	n.Tick()
	msg := []byte("message traffic over the link-encryption variant")
	d, err := n.TransportMessage("B", "D", msg)
	if err != nil {
		t.Fatal(err)
	}
	if string(d.Payload) != string(msg) {
		t.Fatalf("payload corrupted: %q", d.Payload)
	}
	if d.PadBitsUsed != 8*len(msg)*(len(d.Path)-1) {
		t.Errorf("PadBitsUsed = %d", d.PadBitsUsed)
	}
	if len(d.Exposed) == 0 {
		t.Error("multi-hop message transport must expose relays")
	}
}

func TestTransportMessageConsumesPerHop(t *testing.T) {
	n := ring(t)
	n.Tick()
	msg := make([]byte, 100)
	before := n.Link("B", "C").KeyAvailable()
	d, err := n.TransportMessage("B", "D", msg)
	if err != nil {
		t.Fatal(err)
	}
	// Whichever 2-hop path was taken consumed 800 bits per link on it.
	for i := 0; i+1 < len(d.Path); i++ {
		_ = before
		l := n.Link(d.Path[i], d.Path[i+1])
		if l.KeyAvailable() != 4096-800 {
			t.Errorf("link %s-%s has %d bits, want %d", l.A, l.B, l.KeyAvailable(), 4096-800)
		}
	}
}

// blockedConsumer parks a blocking withdrawal on the link's pool and
// reports the error it eventually returns.
func blockedConsumer(l *Link, nbits int, timeout time.Duration) chan error {
	errC := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		close(started)
		_, err := l.Pool().Consume(nbits, timeout)
		errC <- err
	}()
	<-started
	time.Sleep(5 * time.Millisecond) // let the consumer enqueue
	return errC
}

func TestCutReleasesBlockedWaitersFast(t *testing.T) {
	// Regression: tearing a link down used to leave blocked consumers
	// waiting out their full timeout; they must now fail fast with
	// keypool.ErrClosed.
	n := ring(t)
	l := n.Link("A", "B")
	errC := blockedConsumer(l, 1<<20, 30*time.Second)
	start := time.Now()
	if err := n.Cut("A", "B"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errC:
		if !errors.Is(err, keypool.ErrClosed) {
			t.Fatalf("blocked waiter got %v, want keypool.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked waiter leaked: still waiting after the cut")
	}
	if time.Since(start) > time.Second {
		t.Error("waiter released but not promptly")
	}
	// Late arrivals on the dead link fail immediately too.
	if _, err := l.Pool().Consume(64, 30*time.Second); !errors.Is(err, keypool.ErrClosed) {
		t.Fatalf("late consumer on cut link: %v", err)
	}
}

func TestEavesdropReleasesBlockedWaitersFast(t *testing.T) {
	n := ring(t)
	l := n.Link("A", "C")
	errC := blockedConsumer(l, 1<<20, 30*time.Second)
	if err := n.Eavesdrop("A", "C"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errC:
		if !errors.Is(err, keypool.ErrClosed) {
			t.Fatalf("blocked waiter got %v, want keypool.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked waiter leaked across eavesdrop teardown")
	}
	// The abandoned link keeps failing fast until restored...
	if _, err := l.Pool().TryConsume(1); !errors.Is(err, keypool.ErrClosed) {
		t.Fatalf("abandoned link pool: %v", err)
	}
	// ...and Restore brings up a fresh, usable pool.
	if err := n.Restore("A", "C"); err != nil {
		t.Fatal(err)
	}
	n.Tick()
	if got := l.KeyAvailable(); got != 4096 {
		t.Fatalf("restored link holds %d bits, want 4096", got)
	}
	if _, err := l.Pool().TryConsume(64); err != nil {
		t.Fatalf("restored link unusable: %v", err)
	}
}

func TestRestoreReleasesPreOutageWaiters(t *testing.T) {
	// A waiter that somehow blocked between outage and restore must not
	// stay attached to the discarded pool.
	n := ring(t)
	l := n.Link("A", "B")
	n.Cut("A", "B")
	// Grab the (closed) pool handle as a stale consumer would.
	stale := l.Pool()
	if err := n.Restore("A", "B"); err != nil {
		t.Fatal(err)
	}
	if _, err := stale.Consume(64, 30*time.Second); !errors.Is(err, keypool.ErrClosed) {
		t.Fatalf("stale pool handle: %v", err)
	}
	n.Tick()
	if _, err := l.Pool().TryConsume(64); err != nil {
		t.Fatalf("fresh pool after restore: %v", err)
	}
}

// ---------------------------------------------------------------------
// Failure paths: self-transport, mid-path exhaustion, restore re-use
// ---------------------------------------------------------------------

func TestSelfTransportReturnsKeyWithoutPads(t *testing.T) {
	// Regression: TransportKey(src, src, n) used to panic slicing
	// Exposed out of the single-node path [src].
	n := ring(t)
	n.Tick()
	before := n.Link("A", "B").KeyAvailable()
	d, err := n.TransportKey("A", "A", 512)
	if err != nil {
		t.Fatal(err)
	}
	if d.Key.Len() != 512 {
		t.Errorf("key length %d, want 512", d.Key.Len())
	}
	if len(d.Path) != 1 || d.Path[0] != "A" {
		t.Errorf("path %v, want [A]", d.Path)
	}
	if len(d.Exposed) != 0 {
		t.Errorf("self-transport exposed %v", d.Exposed)
	}
	if after := n.Link("A", "B").KeyAvailable(); after != before {
		t.Errorf("self-transport consumed %d pad bits", before-after)
	}
	if st := n.Stats(); st.KeysDelivered != 1 || st.BitsTransported != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSelfTransportMessage(t *testing.T) {
	n := ring(t)
	n.Tick()
	msg := []byte("to myself")
	d, err := n.TransportMessage("B", "B", msg)
	if err != nil {
		t.Fatal(err)
	}
	if string(d.Payload) != string(msg) {
		t.Errorf("payload %q", d.Payload)
	}
	if d.PadBitsUsed != 0 || len(d.Exposed) != 0 {
		t.Errorf("self message used %d pad bits, exposed %v", d.PadBitsUsed, d.Exposed)
	}
}

// line builds A-B-C, so every A<->C transport must cross B.
func line(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork(2)
	for _, name := range []string{"A", "B", "C"} {
		n.AddNode(name)
	}
	for _, e := range [][2]string{{"A", "B"}, {"B", "C"}} {
		if _, err := n.AddLink(e[0], e[1], 4096); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func TestMidPathExhaustionRefundsEarlierHops(t *testing.T) {
	// Regression for the pad-burn leak: when a later hop cannot supply
	// its pad, pads already taken on earlier hops used to be silently
	// destroyed. With pre-reservation the failed transport must leave
	// every traversed pool's balance exactly as it found it.
	n := line(t)
	n.Tick()
	ab, bc := n.Link("A", "B"), n.Link("B", "C")
	abBefore, bcBefore := ab.KeyAvailable(), bc.KeyAvailable()

	// Park a blocked withdrawal on B-C: its balance still looks
	// sufficient to the router, but reservations must queue behind the
	// FIFO ticket, so the second hop fails after the first reserved.
	blockedErr := blockedConsumer(bc, 1<<20, time.Second)

	_, err := n.TransportKey("A", "C", 512)
	if err == nil {
		t.Fatal("transport succeeded past a blocked hop")
	}
	if got := ab.KeyAvailable(); got != abBefore {
		t.Errorf("A-B drained to %d on failed delivery, want %d untouched", got, abBefore)
	}
	if got := bc.KeyAvailable(); got != bcBefore {
		t.Errorf("B-C drained to %d on failed delivery, want %d untouched", got, bcBefore)
	}
	st := n.Stats()
	if st.DeliveryFailed != 1 {
		t.Errorf("DeliveryFailed = %d", st.DeliveryFailed)
	}
	if st.BitsRefunded != 512 {
		t.Errorf("BitsRefunded = %d, want the 512 reserved on A-B", st.BitsRefunded)
	}
	if err := <-blockedErr; !errors.Is(err, keypool.ErrTimeout) {
		t.Fatalf("parked consumer: %v", err)
	}
	// The refund kept the pool whole: the same transport succeeds now.
	if _, err := n.TransportKey("A", "C", 512); err != nil {
		t.Fatalf("transport after refund: %v", err)
	}
}

func TestRestoreAfterEavesdropRetransports(t *testing.T) {
	n := ring(t)
	n.Tick()
	if err := n.Eavesdrop("A", "B"); err != nil {
		t.Fatal(err)
	}
	// While abandoned, transports route around the compromised link.
	d, err := n.TransportKey("A", "B", 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Path) == 2 {
		t.Error("transport used the eavesdropped link")
	}
	if err := n.Restore("A", "B"); err != nil {
		t.Fatal(err)
	}
	n.Tick() // fresh pairwise key on the repaired link
	d, err = n.TransportKey("A", "B", 256)
	if err != nil {
		t.Fatalf("re-transport after restore: %v", err)
	}
	if len(d.Path) != 2 {
		t.Errorf("restored direct link unused: path %v", d.Path)
	}
	if got := n.Link("A", "B").KeyAvailable(); got != 4096-256 {
		t.Errorf("restored link balance %d, want %d", got, 4096-256)
	}
}
