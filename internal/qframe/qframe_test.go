package qframe

import "testing"

func TestPhaseEncoding(t *testing.T) {
	// The paper's encoding: value 0 -> phase 0 (basis 0) or pi/2
	// (basis 1); value 1 -> pi (basis 0) or 3pi/2 (basis 1).
	cases := []struct {
		basis Basis
		value int
		want  int // units of pi/2
	}{
		{BasisRect, 0, 0},
		{BasisDiag, 0, 1},
		{BasisRect, 1, 2},
		{BasisDiag, 1, 3},
	}
	for _, c := range cases {
		if got := Phase(c.basis, c.value); got != c.want {
			t.Errorf("Phase(%v, %d) = %d, want %d", c.basis, c.value, got, c.want)
		}
	}
}

func TestDetectionValue(t *testing.T) {
	cases := []struct {
		det Detection
		bit uint8
		ok  bool
	}{
		{NoClick, 0, false},
		{ClickD0, 0, true},
		{ClickD1, 1, true},
		{DoubleClick, 0, false},
	}
	for _, c := range cases {
		r := RxSymbol{Result: c.det}
		bit, ok := r.Value()
		if bit != c.bit || ok != c.ok {
			t.Errorf("Value(%v) = %d, %v; want %d, %v", c.det, bit, ok, c.bit, c.ok)
		}
	}
}

func TestStringers(t *testing.T) {
	if BasisRect.String() != "rect" || BasisDiag.String() != "diag" {
		t.Error("Basis strings")
	}
	for _, d := range []Detection{NoClick, ClickD0, ClickD1, DoubleClick} {
		if d.String() == "" {
			t.Errorf("Detection(%d) has empty string", d)
		}
	}
	if Detection(99).String() == "" {
		t.Error("unknown detection has empty string")
	}
}

func TestFrameCounts(t *testing.T) {
	f := &RxFrame{ID: 1, SlotsTotal: 10, Detections: []RxSymbol{
		{Slot: 0, Result: ClickD0},
		{Slot: 2, Result: ClickD1},
		{Slot: 4, Result: DoubleClick},
		{Slot: 6, Result: DoubleClick},
	}}
	if got := f.ClickCount(); got != 2 {
		t.Errorf("ClickCount = %d, want 2", got)
	}
	if got := f.DoubleClickCount(); got != 2 {
		t.Errorf("DoubleClickCount = %d, want 2", got)
	}
}
