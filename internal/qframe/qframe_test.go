package qframe

import "testing"

func TestPhaseEncoding(t *testing.T) {
	// The paper's encoding: value 0 -> phase 0 (basis 0) or pi/2
	// (basis 1); value 1 -> pi (basis 0) or 3pi/2 (basis 1).
	cases := []struct {
		basis Basis
		value int
		want  int // units of pi/2
	}{
		{BasisRect, 0, 0},
		{BasisDiag, 0, 1},
		{BasisRect, 1, 2},
		{BasisDiag, 1, 3},
	}
	for _, c := range cases {
		if got := Phase(c.basis, c.value); got != c.want {
			t.Errorf("Phase(%v, %d) = %d, want %d", c.basis, c.value, got, c.want)
		}
	}
}

func TestDetectionValue(t *testing.T) {
	cases := []struct {
		det Detection
		bit uint8
		ok  bool
	}{
		{NoClick, 0, false},
		{ClickD0, 0, true},
		{ClickD1, 1, true},
		{DoubleClick, 0, false},
	}
	for _, c := range cases {
		r := RxSymbol{Result: c.det}
		bit, ok := r.Value()
		if bit != c.bit || ok != c.ok {
			t.Errorf("Value(%v) = %d, %v; want %d, %v", c.det, bit, ok, c.bit, c.ok)
		}
	}
}

func TestStringers(t *testing.T) {
	if BasisRect.String() != "rect" || BasisDiag.String() != "diag" {
		t.Error("Basis strings")
	}
	for _, d := range []Detection{NoClick, ClickD0, ClickD1, DoubleClick} {
		if d.String() == "" {
			t.Errorf("Detection(%d) has empty string", d)
		}
	}
	if Detection(99).String() == "" {
		t.Error("unknown detection has empty string")
	}
}

func TestFrameCounts(t *testing.T) {
	f := NewRxFrame(1, 10)
	f.Record(0, BasisRect, ClickD0)
	f.Record(2, BasisDiag, ClickD1)
	f.Record(4, BasisRect, DoubleClick)
	f.Record(6, BasisRect, DoubleClick)
	if got := f.ClickCount(); got != 2 {
		t.Errorf("ClickCount = %d, want 2", got)
	}
	if got := f.DoubleClickCount(); got != 2 {
		t.Errorf("DoubleClickCount = %d, want 2", got)
	}
	if got := f.Count(); got != 4 {
		t.Errorf("Count = %d, want 4", got)
	}
}

func TestTxFrameColumns(t *testing.T) {
	f := NewTxFrame(7, 100)
	if f.Len() != 100 {
		t.Fatalf("Len = %d", f.Len())
	}
	f.SetSymbol(3, BasisDiag, 1)
	f.SetSymbol(64, BasisDiag, 0)
	if f.Basis(3) != BasisDiag || f.Value(3) != 1 {
		t.Error("SetSymbol(3) not read back")
	}
	if f.Basis(64) != BasisDiag || f.Value(64) != 0 {
		t.Error("SetSymbol(64) not read back")
	}
	if f.Basis(0) != BasisRect || f.Value(0) != 0 {
		t.Error("untouched slot not zero")
	}
	s := f.Symbol(3)
	if s.Slot != 3 || s.Basis != BasisDiag || s.Value != 1 {
		t.Errorf("Symbol(3) = %+v", s)
	}
	if f.BasisColumn().OnesCount() != 2 || f.ValueColumn().OnesCount() != 1 {
		t.Error("columns inconsistent with accessors")
	}
}

func TestRxFrameAccessors(t *testing.T) {
	f := NewRxFrame(1, 10)
	f.Record(1, BasisDiag, ClickD1)
	f.Record(4, BasisRect, DoubleClick)
	f.Record(6, BasisRect, ClickD0)
	d := f.At(0)
	if d.Slot != 1 || d.Basis != BasisDiag || d.Result != ClickD1 {
		t.Errorf("At(0) = %+v", d)
	}
	slots, bases, values := f.Usable()
	if len(slots) != 2 || slots[0] != 1 || slots[1] != 6 {
		t.Fatalf("Usable slots = %v", slots)
	}
	if bases.Get(0) != 1 || bases.Get(1) != 0 {
		t.Error("Usable bases wrong")
	}
	if values.Get(0) != 1 || values.Get(1) != 0 {
		t.Error("Usable values wrong")
	}
}

func TestRecordRejectsOutOfOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f := NewRxFrame(1, 10)
	f.Record(5, BasisRect, ClickD0)
	f.Record(5, BasisRect, ClickD0)
}

func TestClickFor(t *testing.T) {
	if ClickFor(0) != ClickD0 || ClickFor(1) != ClickD1 {
		t.Error("ClickFor")
	}
}
