// Package qframe defines the raw-key symbol records exchanged between
// the physical layer and the QKD protocol stack.
//
// In the BBN system, the 1300 nm bright-pulse laser frames and
// annunciates the dim 1550 nm QKD pulses, so both sides can label each
// detection event with the index of the transmitted pulse. The protocol
// engine then consumes "Qframes": contiguous runs of pulse slots with,
// on Alice's side, the (basis, value) modulation she applied, and on
// Bob's side, the basis he selected and which detector (if any) clicked.
//
// Frames are stored columnar, not as struct slices: a TxFrame is two
// packed bit columns (one basis bit and one value bit per slot), and an
// RxFrame is a sparse detection list held as parallel columns (slot
// numbers, packed basis bits, detection outcomes). The packed layout is
// what lets the physical layer draw a whole frame's modulation 64 slots
// per PRNG call and lets sifting compare bases word-at-a-time; upper
// layers go through the accessors below rather than indexing slices of
// structs.
package qframe

import (
	"fmt"

	"qkd/internal/bitarray"
)

// Basis identifies one of BB84's two conjugate bases.
type Basis uint8

const (
	// BasisRect is the "rectilinear" basis (phase 0 / pi).
	BasisRect Basis = 0
	// BasisDiag is the "diagonal" basis (phase pi/2 / 3pi/2).
	BasisDiag Basis = 1
)

func (b Basis) String() string {
	if b == BasisRect {
		return "rect"
	}
	return "diag"
}

// Phase returns Alice's interferometer phase shift, in units of pi/2,
// for this (basis, value) pair: value*pi + basis*pi/2. The paper's
// encoding: 0 -> {0, pi/2}, 1 -> {pi, 3pi/2}.
func Phase(b Basis, value int) int {
	return (2*value + int(b)) & 3
}

// Detection is the outcome of one gated APD sampling interval at Bob.
type Detection uint8

const (
	// NoClick: neither detector fired (photon lost, absorbed, or the
	// laser emitted no photon this pulse).
	NoClick Detection = iota
	// ClickD0: detector D0 fired, registering bit value 0.
	ClickD0
	// ClickD1: detector D1 fired, registering bit value 1.
	ClickD1
	// DoubleClick: both detectors fired in the same gate (multi-photon
	// pulse, or a dark count coinciding with a real detection).
	DoubleClick
)

func (d Detection) String() string {
	switch d {
	case NoClick:
		return "none"
	case ClickD0:
		return "D0"
	case ClickD1:
		return "D1"
	case DoubleClick:
		return "double"
	}
	return fmt.Sprintf("Detection(%d)", uint8(d))
}

// ClickFor returns the Detection registering bit value v (0 or 1).
func ClickFor(v uint8) Detection {
	if v == 0 {
		return ClickD0
	}
	return ClickD1
}

// TxSymbol is the accessor view of what Alice modulated onto one pulse
// slot of a frame (the storage itself is columnar; see TxFrame).
type TxSymbol struct {
	Slot  uint32
	Basis Basis
	Value uint8 // 0 or 1
}

// RxSymbol is the accessor view of what Bob observed in one pulse slot.
type RxSymbol struct {
	Slot   uint32
	Basis  Basis
	Result Detection
}

// Value returns the bit value Bob registered and ok=true when the
// detection is usable (exactly one detector clicked).
func (r RxSymbol) Value() (bit uint8, ok bool) {
	switch r.Result {
	case ClickD0:
		return 0, true
	case ClickD1:
		return 1, true
	default:
		return 0, false
	}
}

// TxFrame is a contiguous train of transmitted pulses. Frames are the
// unit the sifting protocol operates on ("raw qframes" in the paper's
// protocol stack diagram). Storage is two packed bit columns, one bit
// per pulse slot each.
type TxFrame struct {
	// ID numbers the frame; the bright-pulse annunciation scheme is
	// abstracted as agreement on (frame, slot) coordinates.
	ID uint64

	bases  *bitarray.BitArray // bit i: basis of slot i
	values *bitarray.BitArray // bit i: value of slot i
}

// NewTxFrame returns a frame of `slots` pulse slots, all modulated
// (BasisRect, 0) until SetSymbol says otherwise.
func NewTxFrame(id uint64, slots int) *TxFrame {
	return &TxFrame{ID: id, bases: bitarray.New(slots), values: bitarray.New(slots)}
}

// NewTxFrameFromColumns adopts pre-packed basis and value columns (used
// by the physical layer's bulk modulation draw). The columns are not
// copied and must be the same length.
func NewTxFrameFromColumns(id uint64, bases, values *bitarray.BitArray) *TxFrame {
	if bases.Len() != values.Len() {
		panic(fmt.Sprintf("qframe: column lengths differ: %d bases, %d values",
			bases.Len(), values.Len()))
	}
	return &TxFrame{ID: id, bases: bases, values: values}
}

// Len returns the number of pulse slots in the frame.
func (f *TxFrame) Len() int { return f.bases.Len() }

// Basis returns the basis Alice modulated onto slot.
func (f *TxFrame) Basis(slot int) Basis { return Basis(f.bases.Get(slot)) }

// Value returns the bit value Alice modulated onto slot.
func (f *TxFrame) Value(slot int) uint8 { return uint8(f.values.Get(slot)) }

// Symbol returns the accessor view of one slot.
func (f *TxFrame) Symbol(slot int) TxSymbol {
	return TxSymbol{Slot: uint32(slot), Basis: f.Basis(slot), Value: f.Value(slot)}
}

// SetSymbol records Alice's modulation for one slot.
func (f *TxFrame) SetSymbol(slot int, b Basis, v uint8) {
	f.bases.Set(slot, int(b))
	f.values.Set(slot, int(v))
}

// BasisColumn exposes the packed basis column (one bit per slot) for
// word-at-a-time consumers like sifting. Callers must not mutate it.
func (f *TxFrame) BasisColumn() *bitarray.BitArray { return f.bases }

// ValueColumn exposes the packed value column (one bit per slot).
// Callers must not mutate it.
func (f *TxFrame) ValueColumn() *bitarray.BitArray { return f.values }

// RxFrame is Bob's view of frame ID: only the slots where his gated
// detectors produced a usable or double click are recorded (no-click
// slots are omitted, which is what makes sifting messages compressible).
// The sparse detection list is columnar: slot numbers, packed basis
// bits, and detection outcomes in three parallel columns, ordered by
// ascending slot.
type RxFrame struct {
	ID         uint64
	SlotsTotal int // number of pulse slots in the frame

	slots   []uint32
	bases   *bitarray.BitArray // bit i: Bob's basis for detection i
	results []Detection
}

// NewRxFrame returns an empty detection record for a frame of
// slotsTotal pulse slots.
func NewRxFrame(id uint64, slotsTotal int) *RxFrame {
	return &RxFrame{ID: id, SlotsTotal: slotsTotal, bases: bitarray.New(0)}
}

// Record appends one detection. Detections must be recorded in strictly
// ascending slot order (the order the gates fire in).
func (f *RxFrame) Record(slot uint32, b Basis, result Detection) {
	if n := len(f.slots); n > 0 && f.slots[n-1] >= slot {
		panic(fmt.Sprintf("qframe: detection slots out of order: %d after %d",
			slot, f.slots[n-1]))
	}
	f.slots = append(f.slots, slot)
	f.bases.Append(int(b))
	f.results = append(f.results, result)
}

// Count returns the number of recorded detections (usable or double).
func (f *RxFrame) Count() int { return len(f.slots) }

// At returns the accessor view of detection i (not slot i).
func (f *RxFrame) At(i int) RxSymbol {
	return RxSymbol{Slot: f.slots[i], Basis: Basis(f.bases.Get(i)), Result: f.results[i]}
}

// Usable returns the columnar view of the usable (single-click)
// detections: slot numbers, Bob's packed basis bits, and the packed bit
// values the clicks registered, all parallel and in ascending slot
// order. This is the input shape the sifting fast path consumes.
func (f *RxFrame) Usable() (slots []uint32, bases, values *bitarray.BitArray) {
	n := f.ClickCount()
	slots = make([]uint32, 0, n)
	bases = bitarray.New(0)
	values = bitarray.New(0)
	for i, res := range f.results {
		var v int
		switch res {
		case ClickD0:
			v = 0
		case ClickD1:
			v = 1
		default:
			continue
		}
		slots = append(slots, f.slots[i])
		bases.Append(f.bases.Get(i))
		values.Append(v)
	}
	return slots, bases, values
}

// ClickCount returns how many usable single-detector clicks the frame
// contains.
func (f *RxFrame) ClickCount() int {
	n := 0
	for _, res := range f.results {
		if res == ClickD0 || res == ClickD1 {
			n++
		}
	}
	return n
}

// DoubleClickCount returns how many double clicks the frame contains.
func (f *RxFrame) DoubleClickCount() int {
	n := 0
	for _, res := range f.results {
		if res == DoubleClick {
			n++
		}
	}
	return n
}
