// Package qframe defines the raw-key symbol records exchanged between
// the physical layer and the QKD protocol stack.
//
// In the BBN system, the 1300 nm bright-pulse laser frames and
// annunciates the dim 1550 nm QKD pulses, so both sides can label each
// detection event with the index of the transmitted pulse. The protocol
// engine then consumes "Qframes": contiguous runs of pulse slots with,
// on Alice's side, the (basis, value) modulation she applied, and on
// Bob's side, the basis he selected and which detector (if any) clicked.
package qframe

import "fmt"

// Basis identifies one of BB84's two conjugate bases.
type Basis uint8

const (
	// BasisRect is the "rectilinear" basis (phase 0 / pi).
	BasisRect Basis = 0
	// BasisDiag is the "diagonal" basis (phase pi/2 / 3pi/2).
	BasisDiag Basis = 1
)

func (b Basis) String() string {
	if b == BasisRect {
		return "rect"
	}
	return "diag"
}

// Phase returns Alice's interferometer phase shift, in units of pi/2,
// for this (basis, value) pair: value*pi + basis*pi/2. The paper's
// encoding: 0 -> {0, pi/2}, 1 -> {pi, 3pi/2}.
func Phase(b Basis, value int) int {
	return (2*value + int(b)) & 3
}

// Detection is the outcome of one gated APD sampling interval at Bob.
type Detection uint8

const (
	// NoClick: neither detector fired (photon lost, absorbed, or the
	// laser emitted no photon this pulse).
	NoClick Detection = iota
	// ClickD0: detector D0 fired, registering bit value 0.
	ClickD0
	// ClickD1: detector D1 fired, registering bit value 1.
	ClickD1
	// DoubleClick: both detectors fired in the same gate (multi-photon
	// pulse, or a dark count coinciding with a real detection).
	DoubleClick
)

func (d Detection) String() string {
	switch d {
	case NoClick:
		return "none"
	case ClickD0:
		return "D0"
	case ClickD1:
		return "D1"
	case DoubleClick:
		return "double"
	}
	return fmt.Sprintf("Detection(%d)", uint8(d))
}

// TxSymbol records what Alice modulated onto pulse slot Slot of a frame.
type TxSymbol struct {
	Slot  uint32
	Basis Basis
	Value uint8 // 0 or 1
}

// RxSymbol records what Bob observed in pulse slot Slot.
type RxSymbol struct {
	Slot   uint32
	Basis  Basis
	Result Detection
}

// Value returns the bit value Bob registered and ok=true when the
// detection is usable (exactly one detector clicked).
func (r RxSymbol) Value() (bit uint8, ok bool) {
	switch r.Result {
	case ClickD0:
		return 0, true
	case ClickD1:
		return 1, true
	default:
		return 0, false
	}
}

// TxFrame is a contiguous train of transmitted pulses. Frames are the
// unit the sifting protocol operates on ("raw qframes" in the paper's
// protocol stack diagram).
type TxFrame struct {
	// ID numbers the frame; the bright-pulse annunciation scheme is
	// abstracted as agreement on (frame, slot) coordinates.
	ID uint64
	// Pulses holds one symbol per pulse slot, slot numbers 0..n-1.
	Pulses []TxSymbol
}

// RxFrame is Bob's view of frame ID: only the slots where his gated
// detectors produced a usable or double click are recorded (no-click
// slots are omitted, which is what makes sifting messages compressible).
type RxFrame struct {
	ID         uint64
	SlotsTotal int // number of pulse slots in the frame
	Detections []RxSymbol
}

// ClickCount returns how many usable single-detector clicks the frame
// contains.
func (f *RxFrame) ClickCount() int {
	n := 0
	for _, d := range f.Detections {
		if _, ok := d.Value(); ok {
			n++
		}
	}
	return n
}

// DoubleClickCount returns how many double clicks the frame contains.
func (f *RxFrame) DoubleClickCount() int {
	n := 0
	for _, d := range f.Detections {
		if d.Result == DoubleClick {
			n++
		}
	}
	return n
}
