package channel

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

func testRoundTrip(t *testing.T, a, b Conn) {
	t.Helper()
	if err := a.Send(7, []byte("hello")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	m, err := b.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if m.Type != 7 || string(m.Payload) != "hello" {
		t.Fatalf("got type=%d payload=%q", m.Type, m.Payload)
	}
	// And the reverse direction.
	if err := b.Send(9, []byte{1, 2, 3}); err != nil {
		t.Fatalf("Send back: %v", err)
	}
	m, err = a.Recv()
	if err != nil {
		t.Fatalf("Recv back: %v", err)
	}
	if m.Type != 9 || !bytes.Equal(m.Payload, []byte{1, 2, 3}) {
		t.Fatalf("got type=%d payload=%v", m.Type, m.Payload)
	}
}

func TestMemPairRoundTrip(t *testing.T) {
	a, b := MemPair(4)
	defer a.Close()
	defer b.Close()
	testRoundTrip(t, a, b)
}

func TestMemOrderPreserved(t *testing.T) {
	a, b := MemPair(16)
	defer a.Close()
	defer b.Close()
	for i := 0; i < 10; i++ {
		if err := a.Send(uint8(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Type != uint8(i) {
			t.Fatalf("message %d arrived as type %d", i, m.Type)
		}
	}
}

func TestMemSenderBufferReuse(t *testing.T) {
	a, b := MemPair(1)
	defer a.Close()
	defer b.Close()
	buf := []byte("aaaa")
	a.Send(1, buf)
	copy(buf, "bbbb") // mutate after send
	m, _ := b.Recv()
	if string(m.Payload) != "aaaa" {
		t.Errorf("payload aliased sender buffer: %q", m.Payload)
	}
}

func TestMemTimeout(t *testing.T) {
	a, b := MemPair(1)
	defer a.Close()
	defer b.Close()
	start := time.Now()
	_, err := b.RecvTimeout(30 * time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Error("timeout returned too early")
	}
}

func TestMemClose(t *testing.T) {
	a, b := MemPair(1)
	a.Close()
	if err := a.Send(1, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close: %v", err)
	}
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Errorf("Recv from closed peer: %v", err)
	}
	// Double close is fine.
	if err := a.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestMemCloseDrainsQueued(t *testing.T) {
	a, b := MemPair(4)
	a.Send(5, []byte("x"))
	a.Close()
	m, err := b.Recv()
	if err != nil || m.Type != 5 {
		t.Fatalf("queued message lost on close: %v %v", m, err)
	}
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("expected ErrClosed after drain, got %v", err)
	}
}

func TestMemStats(t *testing.T) {
	a, b := MemPair(4)
	defer a.Close()
	defer b.Close()
	a.Send(1, make([]byte, 100))
	b.Recv()
	sa, sb := a.Stats(), b.Stats()
	if sa.MsgsSent != 1 || sa.BytesSent != 105 {
		t.Errorf("sender stats %+v", sa)
	}
	if sb.MsgsReceived != 1 || sb.BytesReceived != 105 {
		t.Errorf("receiver stats %+v", sb)
	}
}

func TestMemTooBig(t *testing.T) {
	a, b := MemPair(1)
	defer a.Close()
	defer b.Close()
	if err := a.Send(1, make([]byte, MaxMessage+1)); !errors.Is(err, ErrTooBig) {
		t.Errorf("oversized send: %v", err)
	}
}

func tcpPair(t *testing.T) (Conn, Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	var server Conn
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			return
		}
		server = WrapNet(c)
	}()
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	wg.Wait()
	l.Close()
	if server == nil {
		t.Fatal("no server conn")
	}
	return client, server
}

func TestTCPRoundTrip(t *testing.T) {
	a, b := tcpPair(t)
	defer a.Close()
	defer b.Close()
	testRoundTrip(t, a, b)
}

func TestTCPLargeMessage(t *testing.T) {
	a, b := tcpPair(t)
	defer a.Close()
	defer b.Close()
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	done := make(chan error, 1)
	go func() { done <- a.Send(3, big) }()
	m, err := b.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if sendErr := <-done; sendErr != nil {
		t.Fatalf("Send: %v", sendErr)
	}
	if !bytes.Equal(m.Payload, big) {
		t.Fatal("large payload corrupted")
	}
}

func TestTCPTimeout(t *testing.T) {
	a, b := tcpPair(t)
	defer a.Close()
	defer b.Close()
	if _, err := b.RecvTimeout(30 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// The connection must still work after a timeout.
	a.Send(1, []byte("after"))
	m, err := b.Recv()
	if err != nil || string(m.Payload) != "after" {
		t.Fatalf("conn broken after timeout: %v %v", m, err)
	}
}

func TestTCPClose(t *testing.T) {
	a, b := tcpPair(t)
	a.Close()
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Errorf("Recv from closed peer: %v", err)
	}
}

func TestMITMPassive(t *testing.T) {
	a, b := NewMITM(nil)
	defer a.Close()
	defer b.Close()
	testRoundTrip(t, a, b)
}

func TestMITMModify(t *testing.T) {
	a, b := NewMITM(func(dir Direction, m Message) (Message, bool) {
		if dir == AliceToBob {
			m.Payload = []byte("forged")
		}
		return m, false
	})
	defer a.Close()
	defer b.Close()
	a.Send(1, []byte("real"))
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Payload) != "forged" {
		t.Errorf("payload = %q, want forged", m.Payload)
	}
	// Reverse direction untouched.
	b.Send(2, []byte("reply"))
	m, _ = a.Recv()
	if string(m.Payload) != "reply" {
		t.Errorf("reverse payload = %q", m.Payload)
	}
}

func TestMITMDrop(t *testing.T) {
	dropped := 0
	a, b := NewMITM(func(dir Direction, m Message) (Message, bool) {
		if m.Type == 66 {
			dropped++
			return m, true
		}
		return m, false
	})
	defer a.Close()
	defer b.Close()
	a.Send(66, []byte("blocked"))
	a.Send(1, []byte("allowed"))
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != 1 {
		t.Errorf("got type %d, want the allowed message", m.Type)
	}
	if dropped != 1 {
		t.Errorf("dropped = %d", dropped)
	}
}

func TestConcurrentSendRecv(t *testing.T) {
	a, b := MemPair(8)
	defer a.Close()
	defer b.Close()
	const n = 500
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := a.Send(1, []byte{byte(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if _, err := b.Recv(); err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
}

func BenchmarkMemRoundTrip(b *testing.B) {
	a, c := MemPair(1)
	defer a.Close()
	defer c.Close()
	payload := make([]byte, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		go a.Send(1, payload)
		c.Recv()
	}
}
