// Package channel provides the "public channel" of Fig. 1: the
// classical, insecure, reliable message transport over which all QKD
// protocol traffic (sifting, error correction, privacy amplification,
// authentication) and key-agreement traffic (IKE) flows.
//
// Everything on this channel is assumed readable, forgeable and
// blockable by Eve (Section 6), which is why the protocol suite
// authenticates it with Wegman-Carter MACs (package auth) rather than
// trusting it.
//
// Two transports are provided: an in-memory pair for simulations and
// tests, and a TCP transport (length-prefixed frames over net.Conn) so
// the full stack can run between real processes. A MITM shim lets tests
// interpose an active attacker on either transport.
package channel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MaxMessage bounds a single message payload; oversized frames are
// rejected rather than allocated, so a malicious peer cannot force
// unbounded memory use.
const MaxMessage = 16 << 20

// Common errors.
var (
	ErrClosed  = errors.New("channel: connection closed")
	ErrTimeout = errors.New("channel: receive timeout")
	ErrTooBig  = fmt.Errorf("channel: message exceeds %d bytes", MaxMessage)
)

// Message is one framed unit on the public channel. Type is a small
// protocol-assigned discriminator (sift, parity, amplify, IKE, ...).
type Message struct {
	Type    uint8
	Payload []byte
}

// Conn is a reliable, ordered, message-oriented duplex connection.
// Implementations must allow one concurrent sender and one concurrent
// receiver.
type Conn interface {
	// Send transmits one message.
	Send(msgType uint8, payload []byte) error
	// Recv blocks for the next message.
	Recv() (Message, error)
	// RecvTimeout blocks up to d for the next message, returning
	// ErrTimeout if none arrives. A non-positive d means block forever.
	RecvTimeout(d time.Duration) (Message, error)
	// Close tears the connection down; blocked receivers return ErrClosed.
	Close() error
	// Stats returns cumulative traffic counters.
	Stats() Stats
}

// Stats counts traffic through one side of a connection. The sifting
// experiments use these to measure the benefit of run-length encoding.
type Stats struct {
	MsgsSent      uint64
	MsgsReceived  uint64
	BytesSent     uint64
	BytesReceived uint64
}

// ---------------------------------------------------------------------
// In-memory transport
// ---------------------------------------------------------------------

type memConn struct {
	out chan<- Message
	in  <-chan Message

	mu     sync.Mutex
	stats  Stats
	closed chan struct{}
	once   sync.Once
	peer   *memConn
}

// MemPair returns two connected in-memory Conns with the given channel
// buffer depth (0 means synchronous handoff).
func MemPair(buffer int) (Conn, Conn) {
	ab := make(chan Message, buffer)
	ba := make(chan Message, buffer)
	a := &memConn{out: ab, in: ba, closed: make(chan struct{})}
	b := &memConn{out: ba, in: ab, closed: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

func (c *memConn) Send(msgType uint8, payload []byte) error {
	if len(payload) > MaxMessage {
		return ErrTooBig
	}
	// Copy so the sender may reuse its buffer.
	p := make([]byte, len(payload))
	copy(p, payload)
	m := Message{Type: msgType, Payload: p}
	// Check for closure first: a select alone could randomly prefer the
	// buffered send even when the connection is already closed.
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer.closed:
		return ErrClosed
	default:
	}
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer.closed:
		return ErrClosed
	case c.out <- m:
	}
	c.mu.Lock()
	c.stats.MsgsSent++
	c.stats.BytesSent += uint64(len(payload)) + 5
	c.mu.Unlock()
	return nil
}

func (c *memConn) Recv() (Message, error) { return c.RecvTimeout(0) }

func (c *memConn) RecvTimeout(d time.Duration) (Message, error) {
	var timeout <-chan time.Time
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case m := <-c.in:
		c.mu.Lock()
		c.stats.MsgsReceived++
		c.stats.BytesReceived += uint64(len(m.Payload)) + 5
		c.mu.Unlock()
		return m, nil
	case <-timeout:
		return Message{}, ErrTimeout
	case <-c.closed:
		return Message{}, ErrClosed
	case <-c.peer.closed:
		// Drain anything already queued before reporting closure.
		select {
		case m := <-c.in:
			c.mu.Lock()
			c.stats.MsgsReceived++
			c.stats.BytesReceived += uint64(len(m.Payload)) + 5
			c.mu.Unlock()
			return m, nil
		default:
			return Message{}, ErrClosed
		}
	}
}

func (c *memConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

func (c *memConn) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ---------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------

// netConn frames messages over a stream as:
//
//	1 byte type | 4 bytes big-endian payload length | payload
type netConn struct {
	c  net.Conn
	mu sync.Mutex // serializes writers

	rmu   sync.Mutex // serializes readers
	stats Stats
	smu   sync.Mutex
}

// WrapNet adapts a net.Conn (TCP, Unix socket, net.Pipe) into a Conn.
func WrapNet(c net.Conn) Conn { return &netConn{c: c} }

// Dial connects to a listening peer at addr.
func Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("channel: dial %s: %w", addr, err)
	}
	return WrapNet(c), nil
}

// Listen accepts exactly one connection on addr and returns it. It is
// a convenience for the two-party tools; serious servers manage their
// own listeners and call WrapNet.
func Listen(addr string) (Conn, string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("channel: listen %s: %w", addr, err)
	}
	defer l.Close()
	c, err := l.Accept()
	if err != nil {
		return nil, "", fmt.Errorf("channel: accept: %w", err)
	}
	return WrapNet(c), l.Addr().String(), nil
}

func (n *netConn) Send(msgType uint8, payload []byte) error {
	if len(payload) > MaxMessage {
		return ErrTooBig
	}
	hdr := make([]byte, 5)
	hdr[0] = msgType
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, err := n.c.Write(hdr); err != nil {
		return fmt.Errorf("channel: write header: %w", err)
	}
	if _, err := n.c.Write(payload); err != nil {
		return fmt.Errorf("channel: write payload: %w", err)
	}
	n.smu.Lock()
	n.stats.MsgsSent++
	n.stats.BytesSent += uint64(len(payload)) + 5
	n.smu.Unlock()
	return nil
}

func (n *netConn) Recv() (Message, error) { return n.RecvTimeout(0) }

func (n *netConn) RecvTimeout(d time.Duration) (Message, error) {
	n.rmu.Lock()
	defer n.rmu.Unlock()
	if d > 0 {
		n.c.SetReadDeadline(time.Now().Add(d))
		defer n.c.SetReadDeadline(time.Time{})
	}
	hdr := make([]byte, 5)
	if _, err := io.ReadFull(n.c, hdr); err != nil {
		return Message{}, mapNetErr(err)
	}
	length := binary.BigEndian.Uint32(hdr[1:])
	if length > MaxMessage {
		return Message{}, ErrTooBig
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(n.c, payload); err != nil {
		return Message{}, mapNetErr(err)
	}
	n.smu.Lock()
	n.stats.MsgsReceived++
	n.stats.BytesReceived += uint64(length) + 5
	n.smu.Unlock()
	return Message{Type: hdr[0], Payload: payload}, nil
}

func mapNetErr(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return ErrTimeout
	}
	if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
		return ErrClosed
	}
	return err
}

func (n *netConn) Close() error { return n.c.Close() }

func (n *netConn) Stats() Stats {
	n.smu.Lock()
	defer n.smu.Unlock()
	return n.stats
}

// ---------------------------------------------------------------------
// Man-in-the-middle shim
// ---------------------------------------------------------------------

// Direction labels which way a message is traveling through a MITM.
type Direction int

const (
	// AliceToBob flows from the first endpoint to the second.
	AliceToBob Direction = iota
	// BobToAlice flows from the second endpoint to the first.
	BobToAlice
)

func (d Direction) String() string {
	if d == AliceToBob {
		return "alice->bob"
	}
	return "bob->alice"
}

// MITMHook inspects and optionally rewrites a message in flight.
// Returning drop=true discards the message (Eve blocking traffic);
// otherwise the returned message is forwarded (possibly modified:
// Eve forging traffic).
type MITMHook func(dir Direction, m Message) (out Message, drop bool)

// MITM interposes an active attacker between two endpoints. Endpoint
// connections are returned; the attacker's hook sees every message.
//
//	aliceEnd, bobEnd := channel.NewMITM(hook)
//
// A nil hook forwards faithfully (a passive wiretap — Eve can always
// read the public channel).
func NewMITM(hook MITMHook) (Conn, Conn) {
	aliceSide, aliceInner := MemPair(64) // alice <-> eve
	bobSide, bobInner := MemPair(64)     // bob   <-> eve
	forward := func(from, to Conn, dir Direction) {
		for {
			m, err := from.Recv()
			if err != nil {
				to.Close()
				return
			}
			if hook != nil {
				var drop bool
				m, drop = hook(dir, m)
				if drop {
					continue
				}
			}
			if err := to.Send(m.Type, m.Payload); err != nil {
				return
			}
		}
	}
	go forward(aliceInner, bobInner, AliceToBob)
	go forward(bobInner, aliceInner, BobToAlice)
	return aliceSide, bobSide
}
