package core

import (
	"errors"
	"testing"

	"qkd/internal/auth"
	"qkd/internal/channel"
	"qkd/internal/entropy"
	"qkd/internal/eve"
	"qkd/internal/keypool"
	"qkd/internal/photonics"
	"qkd/internal/rng"
)

// fastParams returns link parameters with a high detection rate so
// tests accumulate batches quickly, while keeping the paper's QBER.
func fastParams() photonics.Params {
	p := photonics.DefaultParams()
	// Keep mu at 0.1: a brighter source would be faster but its
	// multi-photon fraction gets charged against the entropy estimate
	// (transparent eavesdropping), wiping out the yield — the same
	// trade the real system faced.
	p.MeanPhotons = 0.1
	p.FiberKm = 0
	p.SystemLossDB = 0
	p.DetectorEff = 1.0
	p.DarkCountProb = 1e-5
	p.Visibility = 0.96 // ~2 % optical QBER
	return p
}

func TestEndToEndDistillation(t *testing.T) {
	s := NewSession(fastParams(), Config{BatchBits: 2048}, 10000, 42)
	if err := s.RunUntilDistilled(1024, 50); err != nil {
		t.Fatal(err)
	}

	am := s.Alice.Metrics()
	bm := s.Bob.Metrics()
	if am.BatchesDistilled == 0 {
		t.Fatal("no batches distilled")
	}
	if am.BatchesDistilled != bm.BatchesDistilled {
		t.Errorf("batch counts differ: %d vs %d", am.BatchesDistilled, bm.BatchesDistilled)
	}
	if am.DistilledBits != bm.DistilledBits {
		t.Errorf("distilled bit counts differ: %d vs %d", am.DistilledBits, bm.DistilledBits)
	}

	// The decisive property: both reservoirs hold IDENTICAL secret bits.
	n := s.Alice.Pool().Available()
	if n != s.Bob.Pool().Available() {
		t.Fatalf("reservoir sizes differ: %d vs %d", n, s.Bob.Pool().Available())
	}
	a, err := s.Alice.Pool().TryConsume(n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Bob.Pool().TryConsume(n)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("distilled keys differ in %d of %d bits", a.HammingDistance(b), n)
	}
}

func TestDistilledKeyLooksRandom(t *testing.T) {
	s := NewSession(fastParams(), Config{BatchBits: 2048}, 10000, 7)
	if err := s.RunUntilDistilled(2048, 80); err != nil {
		t.Fatal(err)
	}
	bits, err := s.Alice.Pool().TryConsume(2048)
	if err != nil {
		t.Fatal(err)
	}
	ones := bits.OnesCount()
	if ones < 2048*40/100 || ones > 2048*60/100 {
		t.Errorf("distilled key biased: %d/2048 ones", ones)
	}
}

func TestAllCorrectorsDistill(t *testing.T) {
	for _, k := range []CorrectorKind{CorrectorBBN, CorrectorClassic, CorrectorBlockParity} {
		s := NewSession(fastParams(), Config{BatchBits: 2048, Corrector: k}, 10000, 11)
		if err := s.RunUntilDistilled(256, 60); err != nil {
			t.Errorf("%v: %v", k, err)
			continue
		}
		n := s.Alice.Pool().Available()
		a, _ := s.Alice.Pool().TryConsume(n)
		b, _ := s.Bob.Pool().TryConsume(n)
		if k == CorrectorBlockParity {
			// The baseline may leave residual errors; that manifests as
			// differing amplified keys — the deficiency E4 quantifies.
			// We only require the pipeline to complete.
			continue
		}
		if !a.Equal(b) {
			t.Errorf("%v: distilled keys differ", k)
		}
	}
}

func TestBothDefensesDistill(t *testing.T) {
	for _, d := range []entropy.Defense{entropy.Bennett, entropy.Slutsky} {
		s := NewSession(fastParams(), Config{BatchBits: 2048, Defense: d}, 10000, 13)
		if err := s.RunUntilDistilled(256, 60); err != nil {
			t.Errorf("defense %v: %v", d, err)
		}
	}
}

func TestInterceptResendAborted(t *testing.T) {
	// A full intercept-resend attack drives QBER to ~25 %, above the
	// abort threshold: every batch must be dropped and no key distilled.
	s := NewSession(fastParams(), Config{BatchBits: 2048}, 10000, 17)
	s.Link.SetTap(eve.NewInterceptResend(1.0, 99))
	if err := s.RunFrames(20); err != nil {
		t.Fatal(err)
	}
	am := s.Alice.Metrics()
	if am.BatchesDistilled != 0 {
		t.Errorf("%d batches distilled under full attack", am.BatchesDistilled)
	}
	if am.BatchesAborted == 0 {
		t.Error("no batches aborted — the attack went unnoticed")
	}
	if s.Alice.Pool().Available() != 0 {
		t.Errorf("%d key bits banked under attack", s.Alice.Pool().Available())
	}
	if am.LastQBER < 0.18 {
		t.Errorf("measured QBER %v under full intercept-resend", am.LastQBER)
	}
}

func TestPartialAttackReducedYield(t *testing.T) {
	// A 20 % intercept-resend raises QBER by ~5 points; batches may
	// survive but the entropy estimate must shrink the yield relative
	// to the clean link.
	clean := NewSession(fastParams(), Config{BatchBits: 4096}, 10000, 19)
	if err := clean.RunFrames(40); err != nil {
		t.Fatal(err)
	}
	attacked := NewSession(fastParams(), Config{BatchBits: 4096}, 10000, 19)
	attacked.Link.SetTap(eve.NewInterceptResend(0.2, 5))
	if err := attacked.RunFrames(40); err != nil {
		t.Fatal(err)
	}
	cm := clean.Alice.Metrics()
	amet := attacked.Alice.Metrics()
	if cm.DistilledBits == 0 {
		t.Fatal("clean link produced nothing")
	}
	if amet.DistilledBits >= cm.DistilledBits {
		t.Errorf("attacked link distilled %d >= clean %d", amet.DistilledBits, cm.DistilledBits)
	}
}

func TestAuthenticatedSessionDistills(t *testing.T) {
	s, err := NewAuthenticatedSession(fastParams(), Config{BatchBits: 2048}, 10000, 23, 65536)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilDistilled(512, 60); err != nil {
		t.Fatal(err)
	}
	n := s.Alice.Pool().Available()
	a, _ := s.Alice.Pool().TryConsume(n)
	b, _ := s.Bob.Pool().TryConsume(n)
	if !a.Equal(b) {
		t.Fatal("authenticated session produced differing keys")
	}
	am := s.Alice.Metrics()
	if am.AuthReplenished == 0 {
		t.Error("auth pools never replenished")
	}
}

func TestMetricsConsistency(t *testing.T) {
	s := NewSession(fastParams(), Config{BatchBits: 2048}, 10000, 29)
	if err := s.RunFrames(30); err != nil {
		t.Fatal(err)
	}
	am := s.Alice.Metrics()
	bm := s.Bob.Metrics()
	if am.SiftedBits != bm.SiftedBits {
		t.Errorf("sifted counts differ: %d vs %d", am.SiftedBits, bm.SiftedBits)
	}
	if am.FramesSifted != 30 || bm.FramesSifted != 30 {
		t.Errorf("frames sifted: %d, %d", am.FramesSifted, bm.FramesSifted)
	}
	if am.PulsesSent != 300000 {
		t.Errorf("PulsesSent = %d", am.PulsesSent)
	}
	if am.ErrorsCorrected != bm.ErrorsCorrected {
		t.Errorf("error counts differ: %d vs %d", am.ErrorsCorrected, bm.ErrorsCorrected)
	}
}

func TestRealisticOperatingPointYieldsKey(t *testing.T) {
	// The paper's actual operating point (1 MHz, mu=0.1, 10 km,
	// QBER 6-8 %) must produce distilled key, if slowly.
	if testing.Short() {
		t.Skip("short mode")
	}
	s := NewSession(photonics.DefaultParams(), Config{BatchBits: 4096, Corrector: CorrectorClassic}, 100000, 31)
	if err := s.RunUntilDistilled(128, 200); err != nil {
		t.Fatal(err)
	}
	am := s.Alice.Metrics()
	if am.LastQBER < 0.03 || am.LastQBER > 0.11 {
		t.Errorf("operating QBER %v outside the paper's band", am.LastQBER)
	}
}

func BenchmarkPipelineFrame(b *testing.B) {
	s := NewSession(fastParams(), Config{BatchBits: 4096}, 10000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.RunFrames(1); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRandomnessTestEnabled(t *testing.T) {
	// With the Section 6 randomness tests switched on, a healthy link's
	// sifted bits are balanced and the charge is negligible: the
	// pipeline distills essentially the same amount of key.
	plain := NewSession(fastParams(), Config{BatchBits: 2048}, 10000, 37)
	if err := plain.RunFrames(30); err != nil {
		t.Fatal(err)
	}
	tested := NewSession(fastParams(), Config{BatchBits: 2048, RandomnessTest: true}, 10000, 37)
	if err := tested.RunFrames(30); err != nil {
		t.Fatal(err)
	}
	p := plain.Alice.Metrics().DistilledBits
	q := tested.Alice.Metrics().DistilledBits
	if q == 0 {
		t.Fatal("randomness testing zeroed a healthy link")
	}
	if float64(q) < 0.9*float64(p) {
		t.Errorf("randomness testing cost too much: %d vs %d bits", q, p)
	}
	// Both ends still agree.
	n := tested.Alice.Pool().Available()
	a, _ := tested.Alice.Pool().TryConsume(n)
	b, _ := tested.Bob.Pool().TryConsume(n)
	if !a.Equal(b) {
		t.Fatal("keys differ with randomness testing enabled")
	}
}

func TestEntangledAccountingRescuesLossyLink(t *testing.T) {
	// Section 6's argument for the planned entangled link: on a lossy
	// path, the conservative transmitted-based PNS charge zeroes a
	// weak-coherent source, while the entangled accounting (leak
	// proportional to received bits) still yields key. The photonic
	// behaviour is identical; the entropy accounting is the difference.
	lossy := fastParams()
	lossy.SystemLossDB = 13 // ~5% click probability

	wc := Config{BatchBits: 2048, PNS: entropy.PNSTransmitted}
	wcSession := NewSession(lossy, wc, 50000, 41)
	if err := wcSession.RunFrames(40); err != nil {
		t.Fatal(err)
	}
	if got := wcSession.Alice.Metrics().DistilledBits; got != 0 {
		t.Errorf("weak-coherent with POVM accounting yielded %d bits on a 13 dB link", got)
	}

	ent := Config{BatchBits: 2048, Entangled: true,
		MultiPhotonProb: lossy.MultiPhotonProb(), NonVacuumProb: lossy.NonVacuumProb()}
	entSession := NewSession(lossy, ent, 50000, 41)
	if err := entSession.RunFrames(40); err != nil {
		t.Fatal(err)
	}
	if got := entSession.Alice.Metrics().DistilledBits; got == 0 {
		t.Error("entangled accounting yielded nothing on the same link")
	}
}

func TestForgedProtocolMessagesAbortPipeline(t *testing.T) {
	// Eve rewrites QKD protocol messages on the public channel. With
	// Wegman-Carter authentication in place the forgery is detected and
	// the pipeline halts with an error instead of distilling key from a
	// conversation Eve steered.
	link := photonics.NewLink(fastParams(), 51)
	mitmA, mitmB := channel.NewMITM(func(dir channel.Direction, m channel.Message) (channel.Message, bool) {
		if dir == channel.BobToAlice && m.Type == TSift && len(m.Payload) > 20 {
			m.Payload[5] ^= 0xFF // rewrite part of the sift message
		}
		return m, false
	})
	secret := rng.NewSplitMix64(3).Bits(1 << 16)
	mkPools := func() (*keypool.Reservoir, *keypool.Reservoir) {
		a, b := keypool.New(), keypool.New()
		a.Deposit(secret.Clone())
		b.Deposit(secret.Clone())
		return a, b
	}
	abA, abB := mkPools()
	baA, baB := mkPools()
	aliceConn, err := auth.Wrap(mitmA, abA, baA)
	if err != nil {
		t.Fatal(err)
	}
	bobConn, err := auth.Wrap(mitmB, baB, abB)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{BatchBits: 2048}
	alice := NewAlice(aliceConn, keypool.New(), cfg)
	bob := NewBob(bobConn, keypool.New(), cfg)

	tx, rx := link.TransmitFrame(0, 10000)
	aliceErr := make(chan error, 1)
	go func() {
		err := alice.HandleFrame(tx)
		if err != nil {
			aliceConn.Close()
		}
		aliceErr <- err
	}()
	bobErr := bob.HandleFrame(rx)
	if err := <-aliceErr; !errors.Is(err, auth.ErrForged) {
		t.Fatalf("alice err = %v, want ErrForged", err)
	}
	// Bob fails too (his channel died when Alice bailed) — either way
	// nothing is distilled.
	_ = bobErr
	if alice.Pool().Available() != 0 || bob.Pool().Available() != 0 {
		t.Error("key distilled from a forged conversation")
	}
}

func TestAuthBiasKeepsMirroredSplitsIdentical(t *testing.T) {
	// The bias samples a live signal that returns a DIFFERENT share on
	// every call — the adversarial case for mirror symmetry. The
	// per-batch latch must make both engines split identically anyway:
	// first engine to a batch samples, second consumes the latched value.
	s, err := NewAuthenticatedSession(fastParams(), Config{BatchBits: 2048, AuthReplenishBits: 128}, 10000, 42, 262144)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	s.SetAuthBias(NewAuthBias(func(base int) int {
		calls++
		return (calls * 37) % (base + 50) // wanders through [0, base+49]; clamps at base
	}))
	if err := s.RunUntilDistilled(1024, 80); err != nil {
		t.Fatal(err)
	}
	am, bm := s.Alice.Metrics(), s.Bob.Metrics()
	if am.BatchesDistilled == 0 {
		t.Fatal("no batches distilled")
	}
	if am.AuthReplenished != bm.AuthReplenished {
		t.Fatalf("auth replenishment diverged: alice %d vs bob %d bits", am.AuthReplenished, bm.AuthReplenished)
	}
	if am.DistilledBits != bm.DistilledBits {
		t.Fatalf("reservoir deposits diverged: alice %d vs bob %d bits", am.DistilledBits, bm.DistilledBits)
	}
	n := s.Alice.Pool().Available()
	if n == 0 || n != s.Bob.Pool().Available() {
		t.Fatalf("reservoir sizes differ: %d vs %d", n, s.Bob.Pool().Available())
	}
	a, err := s.Alice.Pool().TryConsume(n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Bob.Pool().TryConsume(n)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("distilled keys differ in %d of %d bits under biased splits", a.HammingDistance(b), n)
	}
}

func TestAuthBiasZeroShareSkipsReplenishment(t *testing.T) {
	// A fully yielded background controller (share 0) must route whole
	// batches to the reservoir, not underflow the pad carve.
	s, err := NewAuthenticatedSession(fastParams(), Config{BatchBits: 2048, AuthReplenishBits: 128}, 10000, 43, 262144)
	if err != nil {
		t.Fatal(err)
	}
	s.SetAuthBias(NewAuthBias(func(base int) int { return 0 }))
	if err := s.RunUntilDistilled(1024, 80); err != nil {
		t.Fatal(err)
	}
	if am := s.Alice.Metrics(); am.AuthReplenished != 0 {
		t.Fatalf("AuthReplenished = %d, want 0 under a fully yielded bias", am.AuthReplenished)
	}
}
