// Package core implements the QKD protocol engine of Section 5: the
// pipeline that turns raw detection events into distilled, shared
// secret bits by running, in order,
//
//	sifting -> error correction -> entropy estimation ->
//	privacy amplification -> (continuous) authentication
//
// between an Alice engine (at the transmitter) and a Bob engine (at the
// receiver), exchanging protocol messages over the public channel.
// The engine is deliberately built from pluggable stages — "we have
// designed this engine so it is easy to plug in new protocols" — so the
// error-correction protocol, defense function and batch policy are all
// configuration.
//
// Distilled bits are deposited into a keypool.Reservoir, from which the
// IKE/IPsec layer (packages ike, ipsec, vpn) draws its keys, and from
// which the Wegman-Carter authentication pads are replenished.
package core

import (
	"encoding/binary"
	"fmt"
	"sync"

	"qkd/internal/bitarray"
	"qkd/internal/cascade"
	"qkd/internal/channel"
	"qkd/internal/entropy"
	"qkd/internal/keypool"
	"qkd/internal/privacy"
	"qkd/internal/qframe"
	"qkd/internal/rng"
	"qkd/internal/sifting"
)

// Message types on the public channel. The QKD protocol sub-layers are
// "closer to being pipeline stages" than OSI layers; these types label
// which stage a message belongs to.
const (
	TSift      uint8 = 0x10 // Bob -> Alice: sift message
	TSiftResp  uint8 = 0x11 // Alice -> Bob: sift response
	TEC        uint8 = 0x20 // either: error-correction payloads
	TECSummary uint8 = 0x21 // Bob -> Alice: flips and disclosed counts
	TPAParams  uint8 = 0x30 // Alice -> Bob: privacy-amplification params (or abort)
)

// CorrectorKind selects the error-correction protocol.
type CorrectorKind int

const (
	// CorrectorBBN is the paper's 64-subset LFSR Cascade variant.
	CorrectorBBN CorrectorKind = iota
	// CorrectorClassic is Brassard-Salvail Cascade.
	CorrectorClassic
	// CorrectorBlockParity is the telecom-style baseline.
	CorrectorBlockParity
)

func (k CorrectorKind) String() string {
	switch k {
	case CorrectorBBN:
		return "bbn"
	case CorrectorClassic:
		return "classic"
	case CorrectorBlockParity:
		return "block-parity"
	}
	return fmt.Sprintf("CorrectorKind(%d)", int(k))
}

// Config parameterizes both engines of a link. The two ends must use
// identical configuration (it is negotiated out of band, like the rest
// of a link's provisioning).
type Config struct {
	// BatchBits triggers distillation once at least this many sifted
	// bits have accumulated.
	BatchBits int
	// Corrector selects the error-correction protocol.
	Corrector CorrectorKind
	// InitialQBER seeds the running error estimate (classic Cascade
	// block sizing). It adapts after every batch.
	InitialQBER float64
	// AbortQBER abandons a batch whose measured error rate is at or
	// above this threshold — the eavesdropping alarm. 0 means the
	// default 0.15.
	AbortQBER float64
	// Defense selects the entropy estimate (Bennett or Slutsky).
	Defense entropy.Defense
	// Confidence is the c parameter (standard deviations of margin).
	Confidence float64
	// MultiPhotonProb is the source's P[>=2 photons] per pulse; Alice
	// charges transparent eavesdropping against it.
	MultiPhotonProb float64
	// NonVacuumProb is the source's P[>=1 photon] per pulse, used by
	// the received-based PNS accounting.
	NonVacuumProb float64
	// PNS selects the transparent-leak accounting for weak-coherent
	// sources (received-based by default; transmitted-based is the
	// conservative POVM view).
	PNS entropy.PNSAccounting
	// Entangled switches the transparent-leak base from transmitted
	// pulses to received bits (Section 6).
	Entangled bool
	// RandomnessTest, when set, runs the Section 6 randomness tests
	// on each batch and feeds the resulting non-randomness measure r
	// into the entropy estimate (the paper leaves r a placeholder; see
	// entropy.NonRandomness).
	RandomnessTest bool
	// AuthReplenishBits, when positive, diverts 2x this many bits of
	// every distilled batch into the link's authentication pad pools
	// (one stream per direction) before the remainder reaches the
	// reservoir.
	AuthReplenishBits int
	// Seed derives the engine's protocol randomness (subset seeds,
	// amplification parameters). The two ends may use different seeds;
	// all shared randomness travels in protocol messages.
	Seed uint64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.BatchBits == 0 {
		c.BatchBits = 4096
	}
	if c.InitialQBER == 0 {
		c.InitialQBER = 0.05
	}
	if c.AbortQBER == 0 {
		c.AbortQBER = 0.15
	}
	if c.Confidence == 0 {
		c.Confidence = 5
	}
	return c
}

// Metrics counts pipeline activity on one engine.
type Metrics struct {
	FramesSifted     uint64
	PulsesSent       uint64 // Alice only
	SiftedBits       uint64
	BatchesDistilled uint64
	BatchesAborted   uint64
	ErrorsCorrected  uint64
	ParityDisclosed  uint64
	DistilledBits    uint64
	AuthReplenished  uint64
	LastQBER         float64
	LastEntropyBits  int
}

// connMessenger adapts channel.Conn to cascade.Messenger with a fixed
// message type, enforcing that only EC traffic arrives mid-correction.
type connMessenger struct {
	conn channel.Conn
}

func (m connMessenger) Send(p []byte) error { return m.conn.Send(TEC, p) }

func (m connMessenger) Recv() ([]byte, error) {
	msg, err := m.conn.Recv()
	if err != nil {
		return nil, err
	}
	if msg.Type != TEC {
		return nil, fmt.Errorf("core: expected EC message, got type %#x", msg.Type)
	}
	return msg.Payload, nil
}

// batchState accumulates one distillation batch on either engine.
type batchState struct {
	bits   *bitarray.BitArray
	pulses int // transmitted pulses contributing to this batch (Alice)
}

// batchPool recycles the buffers the distillation loop carves batches
// into. BatchBits is fixed per link, so after warmup every carve (and,
// downstream, every Cascade mask and rank table sized to it — see
// package cascade's subset pool) lands in a right-sized buffer with no
// allocation.
var batchPool = sync.Pool{New: func() interface{} { return bitarray.New(0) }}

// carveBatch copies bits [from, to) of src into a pooled buffer.
func carveBatch(src *bitarray.BitArray, from, to int) *bitarray.BitArray {
	b := batchPool.Get().(*bitarray.BitArray)
	b.CopyRange(src, from, to)
	return b
}

// releaseBatch returns a carved batch to the pool. Callers must not
// retain references (the distillation output is a fresh array, so none
// escape the distill call).
func releaseBatch(b *bitarray.BitArray) { batchPool.Put(b) }

// AuthBias closes the distillation end of the flow-control loop: it
// decides, per distilled batch, how many bits divert to auth-pad
// replenishment, sampling a live advisory signal (a flow Background
// controller's yielded window, or KDS pressure) instead of always
// taking the configured share. The mirrored engines must still split
// every batch bit-identically even though they deposit at different
// wall-clock moments, so the decision is latched by batch index:
// whichever engine reaches a batch first samples the signal and records
// the share; the second engine consumes the recorded value.
type AuthBias struct {
	mu     sync.Mutex
	advise func(base int) int
	shares map[uint64]int
}

// NewAuthBias builds a bias whose advise callback maps the configured
// per-direction share to the biased one for the next batch. The result
// is clamped to [0, base] — replenishment can yield to starved
// foreground classes, never grab more than configured.
func NewAuthBias(advise func(base int) int) *AuthBias {
	return &AuthBias{advise: advise, shares: make(map[uint64]int)}
}

// shareFor returns the latched share for a batch, computing and
// recording it on first access and consuming the record on the second
// (each batch is deposited exactly once per engine).
func (ab *AuthBias) shareFor(batch uint64, base int) int {
	ab.mu.Lock()
	defer ab.mu.Unlock()
	if r, ok := ab.shares[batch]; ok {
		delete(ab.shares, batch)
		return r
	}
	r := base
	if ab.advise != nil {
		r = ab.advise(base)
	}
	if r < 0 {
		r = 0
	}
	if r > base {
		r = base
	}
	ab.shares[batch] = r
	return r
}

// engineCommon holds state shared by Alice and Bob engines.
type engineCommon struct {
	cfg      Config
	conn     channel.Conn
	pool     keypool.Pool
	sendPads keypool.Pool // auth pad pools, optional
	recvPads keypool.Pool
	authBias *AuthBias
	rand     *rng.SplitMix64
	batch    batchState
	metrics  Metrics
	qberEst  float64
}

func newCommon(conn channel.Conn, pool keypool.Pool, cfg Config) engineCommon {
	cfg = cfg.withDefaults()
	return engineCommon{
		cfg:     cfg,
		conn:    conn,
		pool:    pool,
		rand:    rng.NewSplitMix64(cfg.Seed ^ 0x9E3779B97F4A7C15),
		batch:   batchState{bits: bitarray.New(0)},
		qberEst: cfg.InitialQBER,
	}
}

// SetAuthPools registers the link's authentication pad reservoirs for
// replenishment from distilled batches (first the send-direction pool,
// then the receive-direction pool — both ends must register theirs so
// mirrored streams stay aligned: Alice's send pool is Bob's receive
// pool).
func (e *engineCommon) SetAuthPools(send, recv keypool.Pool) {
	e.sendPads = send
	e.recvPads = recv
}

// Metrics returns a snapshot.
func (e *engineCommon) Metrics() Metrics { return e.metrics }

// Pool returns the distilled-key supply the engine deposits into — a
// raw reservoir by default, or the site's key delivery service when
// one is wired in (vpn.Config.KDS).
func (e *engineCommon) Pool() keypool.Pool { return e.pool }

// corrector instantiates the configured EC protocol with the current
// error estimate. The seed travels inside protocol messages, so the two
// ends need not agree on it.
func (e *engineCommon) corrector() cascade.Protocol {
	switch e.cfg.Corrector {
	case CorrectorClassic:
		return cascade.NewClassic(e.qberEst, e.rand.Uint64())
	case CorrectorBlockParity:
		return cascade.NewBlockParity(64)
	default:
		return cascade.NewBBN(e.rand.Uint64())
	}
}

// SetAuthBias registers the per-batch replenishment bias. Both engines
// of a link must share one AuthBias (the latch is what keeps their
// splits identical); set it before the first frame.
func (e *engineCommon) SetAuthBias(b *AuthBias) { e.authBias = b }

// deposit splits a distilled batch between auth-pad replenishment and
// the reservoir, identically on both ends. isAlice picks which pad pool
// maps to which shared stream.
func (e *engineCommon) deposit(bits *bitarray.BitArray, isAlice bool) {
	r := e.cfg.AuthReplenishBits
	if r > 0 && e.authBias != nil {
		// BatchesDistilled was incremented for this batch just before
		// deposit, so it is the same index on both ends regardless of
		// which engine runs first.
		r = e.authBias.shareFor(e.metrics.BatchesDistilled, r)
	}
	if r > 0 && e.sendPads != nil && bits.Len() >= 2*r {
		ab := bits.Slice(0, r)   // stream for the Alice->Bob direction
		ba := bits.Slice(r, 2*r) // stream for the Bob->Alice direction
		bits = bits.Slice(2*r, bits.Len())
		if isAlice {
			e.sendPads.Deposit(ab) // Alice sends A->B
			e.recvPads.Deposit(ba)
		} else {
			e.recvPads.Deposit(ab) // Bob receives A->B
			e.sendPads.Deposit(ba)
		}
		e.metrics.AuthReplenished += uint64(2 * r)
	}
	e.pool.Deposit(bits)
	e.metrics.DistilledBits += uint64(bits.Len())
}

// updateQBER folds a batch's measured error rate into the running
// estimate (exponential smoothing).
func (e *engineCommon) updateQBER(measured float64) {
	e.qberEst = 0.5*e.qberEst + 0.5*measured
	if e.qberEst < 0.001 {
		e.qberEst = 0.001
	}
	e.metrics.LastQBER = measured
}

// ---------------------------------------------------------------------
// Alice
// ---------------------------------------------------------------------

// Alice is the transmitter-side engine: it answers sift messages,
// serves as the error-correction reference, performs the entropy
// estimate and chooses privacy-amplification parameters.
type Alice struct {
	engineCommon
}

// NewAlice builds the transmitter engine.
func NewAlice(conn channel.Conn, pool keypool.Pool, cfg Config) *Alice {
	return &Alice{engineCommon: newCommon(conn, pool, cfg)}
}

// HandleFrame processes one transmitted frame: it serves Bob's sift
// transaction, accumulates the resulting sifted bits, and when the
// batch threshold is reached runs the rest of the pipeline.
func (a *Alice) HandleFrame(tx *qframe.TxFrame) error {
	msg, err := a.conn.Recv()
	if err != nil {
		return fmt.Errorf("core/alice: receiving sift: %w", err)
	}
	if msg.Type != TSift {
		return fmt.Errorf("core/alice: expected sift, got type %#x", msg.Type)
	}
	sm, err := sifting.DecodeSift(msg.Payload)
	if err != nil {
		return fmt.Errorf("core/alice: %w", err)
	}
	resp, res, err := sifting.Respond(tx, sm)
	if err != nil {
		return fmt.Errorf("core/alice: %w", err)
	}
	if err := a.conn.Send(TSiftResp, resp.Encode()); err != nil {
		return fmt.Errorf("core/alice: sending sift response: %w", err)
	}
	a.metrics.FramesSifted++
	a.metrics.PulsesSent += uint64(tx.Len())
	a.metrics.SiftedBits += uint64(res.Bits.Len())
	a.batch.bits.AppendAll(res.Bits)
	a.batch.pulses += tx.Len()

	for a.batch.bits.Len() >= a.cfg.BatchBits {
		if err := a.distill(); err != nil {
			return err
		}
	}
	return nil
}

// distill runs error correction (as reference), entropy estimation and
// privacy amplification over one batch. Exactly BatchBits bits are
// carved off the accumulator (the remainder seeds the next batch) so
// every batch amplifies over the same GF(2^n) degree — the field setup
// and the peer's polynomial validation are cached per degree, which
// keeps the per-batch cost to the hash itself.
func (a *Alice) distill() error {
	carve := a.cfg.BatchBits
	total := a.batch.bits.Len()
	bits := carveBatch(a.batch.bits, 0, carve)
	defer releaseBatch(bits)
	// Attribute transmitted pulses pro rata to the carved batch; the
	// remainder rides along with the leftover sifted bits.
	pulses := a.batch.pulses * carve / total
	a.batch = batchState{
		bits:   a.batch.bits.Slice(carve, total),
		pulses: a.batch.pulses - pulses,
	}

	proto := a.corrector()
	disclosed, err := proto.RunReference(connMessenger{a.conn}, bits)
	if err != nil {
		return fmt.Errorf("core/alice: error correction: %w", err)
	}

	// Bob reports what he measured during correction.
	msg, err := a.conn.Recv()
	if err != nil {
		return fmt.Errorf("core/alice: receiving EC summary: %w", err)
	}
	if msg.Type != TECSummary || len(msg.Payload) != 16 {
		return fmt.Errorf("core/alice: bad EC summary")
	}
	flips := int(binary.LittleEndian.Uint64(msg.Payload[0:]))
	bobDisclosed := int(binary.LittleEndian.Uint64(msg.Payload[8:]))
	if bobDisclosed > disclosed {
		disclosed = bobDisclosed
	}
	a.metrics.ErrorsCorrected += uint64(flips)
	a.metrics.ParityDisclosed += uint64(disclosed)

	qber := 0.0
	if bits.Len() > 0 {
		qber = float64(flips) / float64(bits.Len())
	}
	a.updateQBER(qber)

	if qber >= a.cfg.AbortQBER {
		a.metrics.BatchesAborted++
		return a.conn.Send(TPAParams, nil) // empty params = abort
	}

	nonRandom := 0
	if a.cfg.RandomnessTest {
		nonRandom = entropy.NonRandomness(bits)
	}
	est, err := entropy.Estimate(entropy.Inputs{
		SiftedBits:      bits.Len(),
		Errors:          flips,
		Transmitted:     pulses,
		Disclosed:       disclosed,
		NonRandomness:   nonRandom,
		MultiPhotonProb: a.cfg.MultiPhotonProb,
		NonVacuumProb:   a.cfg.NonVacuumProb,
		PNS:             a.cfg.PNS,
		Entangled:       a.cfg.Entangled,
		Confidence:      a.cfg.Confidence,
	}, a.cfg.Defense)
	if err != nil {
		return fmt.Errorf("core/alice: entropy estimate: %w", err)
	}
	a.metrics.LastEntropyBits = est.Bits
	if est.Bits <= 0 {
		a.metrics.BatchesAborted++
		return a.conn.Send(TPAParams, nil)
	}

	params, err := privacy.NewParams(bits.Len(), est.Bits, a.rand)
	if err != nil {
		return fmt.Errorf("core/alice: amplification params: %w", err)
	}
	if err := a.conn.Send(TPAParams, params.Encode()); err != nil {
		return fmt.Errorf("core/alice: sending PA params: %w", err)
	}
	out, err := params.Apply(bits)
	if err != nil {
		return fmt.Errorf("core/alice: applying amplification: %w", err)
	}
	a.metrics.BatchesDistilled++
	a.deposit(out, true)
	return nil
}

// ---------------------------------------------------------------------
// Bob
// ---------------------------------------------------------------------

// Bob is the receiver-side engine: it initiates sifting, corrects his
// bits toward Alice's, and applies the privacy amplification Alice
// chooses.
type Bob struct {
	engineCommon
}

// NewBob builds the receiver engine.
func NewBob(conn channel.Conn, pool keypool.Pool, cfg Config) *Bob {
	return &Bob{engineCommon: newCommon(conn, pool, cfg)}
}

// HandleFrame processes one received frame, mirroring Alice.
func (b *Bob) HandleFrame(rx *qframe.RxFrame) error {
	sm := sifting.BuildSift(rx)
	if err := b.conn.Send(TSift, sm.Encode()); err != nil {
		return fmt.Errorf("core/bob: sending sift: %w", err)
	}
	msg, err := b.conn.Recv()
	if err != nil {
		return fmt.Errorf("core/bob: receiving sift response: %w", err)
	}
	if msg.Type != TSiftResp {
		return fmt.Errorf("core/bob: expected sift response, got type %#x", msg.Type)
	}
	resp, err := sifting.DecodeResponse(msg.Payload)
	if err != nil {
		return fmt.Errorf("core/bob: %w", err)
	}
	res, err := sifting.Apply(rx, sm, resp)
	if err != nil {
		return fmt.Errorf("core/bob: %w", err)
	}
	b.metrics.FramesSifted++
	b.metrics.SiftedBits += uint64(res.Bits.Len())
	b.batch.bits.AppendAll(res.Bits)

	for b.batch.bits.Len() >= b.cfg.BatchBits {
		if err := b.distill(); err != nil {
			return err
		}
	}
	return nil
}

// distill mirrors Alice's fixed-size batch carving (both ends hold the
// same sifted lengths, so they carve identically without coordination).
func (b *Bob) distill() error {
	carve := b.cfg.BatchBits
	bits := carveBatch(b.batch.bits, 0, carve)
	defer releaseBatch(bits)
	b.batch = batchState{bits: b.batch.bits.Slice(carve, b.batch.bits.Len())}

	proto := b.corrector()
	res, err := proto.RunCorrect(connMessenger{b.conn}, bits)
	if err != nil {
		return fmt.Errorf("core/bob: error correction: %w", err)
	}
	summary := make([]byte, 16)
	binary.LittleEndian.PutUint64(summary[0:], uint64(res.Flips))
	binary.LittleEndian.PutUint64(summary[8:], uint64(res.Disclosed))
	if err := b.conn.Send(TECSummary, summary); err != nil {
		return fmt.Errorf("core/bob: sending EC summary: %w", err)
	}
	b.metrics.ErrorsCorrected += uint64(res.Flips)
	b.metrics.ParityDisclosed += uint64(res.Disclosed)
	qber := 0.0
	if bits.Len() > 0 {
		qber = float64(res.Flips) / float64(bits.Len())
	}
	b.updateQBER(qber)

	msg, err := b.conn.Recv()
	if err != nil {
		return fmt.Errorf("core/bob: receiving PA params: %w", err)
	}
	if msg.Type != TPAParams {
		return fmt.Errorf("core/bob: expected PA params, got type %#x", msg.Type)
	}
	if len(msg.Payload) == 0 {
		// Alice aborted the batch.
		b.metrics.BatchesAborted++
		return nil
	}
	params, err := privacy.DecodeParams(msg.Payload)
	if err != nil {
		return fmt.Errorf("core/bob: %w", err)
	}
	b.metrics.LastEntropyBits = params.M
	out, err := params.Apply(res.Corrected)
	if err != nil {
		return fmt.Errorf("core/bob: applying amplification: %w", err)
	}
	b.metrics.BatchesDistilled++
	b.deposit(out, false)
	return nil
}
