package core

import (
	"fmt"
	"sync"

	"qkd/internal/auth"
	"qkd/internal/channel"
	"qkd/internal/keypool"
	"qkd/internal/photonics"
	"qkd/internal/rng"
)

// Session wires a simulated quantum link to an Alice/Bob engine pair
// over an in-memory public channel and pumps frames through the full
// pipeline. It is the harness the examples, experiments, and the VPN
// layer build on; deployments that split Alice and Bob across real
// machines construct the engines directly over a TCP channel.Conn.
type Session struct {
	Link  *photonics.Link
	Alice *Alice
	Bob   *Bob

	aliceConn  channel.Conn
	bobConn    channel.Conn
	frameSlots int
	nextFrame  uint64
}

// FrameSlotsDefault is the pulse count per frame used when the caller
// passes 0: at the paper's 1 MHz trigger rate this is 10 ms of pulses.
const FrameSlotsDefault = 10000

// NewSession builds a complete simulated link: photonics, public
// channel, engines, and per-end key reservoirs (reachable via
// Session.Alice.Pool() / Session.Bob.Pool()).
func NewSession(params photonics.Params, cfg Config, frameSlots int, seed uint64) *Session {
	if frameSlots <= 0 {
		frameSlots = FrameSlotsDefault
	}
	link := photonics.NewLink(params, seed)
	ca, cb := channel.MemPair(256)
	cfgA, cfgB := cfg, cfg
	cfgA.Seed = seed ^ 0xA11CE
	cfgB.Seed = seed ^ 0xB0B
	if cfg.MultiPhotonProb == 0 && !cfg.Entangled {
		cfgA.MultiPhotonProb = params.MultiPhotonProb()
		cfgB.MultiPhotonProb = params.MultiPhotonProb()
		cfgA.NonVacuumProb = params.NonVacuumProb()
		cfgB.NonVacuumProb = params.NonVacuumProb()
	}
	return &Session{
		Link:       link,
		Alice:      NewAlice(ca, keypool.New(), cfgA),
		Bob:        NewBob(cb, keypool.New(), cfgB),
		aliceConn:  ca,
		bobConn:    cb,
		frameSlots: frameSlots,
	}
}

// NewAuthenticatedSession is NewSession with Wegman-Carter
// authentication on the public channel, bootstrapped from
// prepositionBits of shared secret per direction (the "prepositioned
// secret keys" authentication strategy of Section 2), and continuous
// replenishment of the pad pools from distilled key.
func NewAuthenticatedSession(params photonics.Params, cfg Config, frameSlots int, seed uint64, prepositionBits int) (*Session, error) {
	if frameSlots <= 0 {
		frameSlots = FrameSlotsDefault
	}
	if prepositionBits < 128 {
		return nil, fmt.Errorf("core: preposition at least 128 bits per direction")
	}
	if cfg.AuthReplenishBits == 0 {
		cfg.AuthReplenishBits = 256
	}
	link := photonics.NewLink(params, seed)
	ca, cb := channel.MemPair(256)

	// Preposition identical pad material at both ends, per direction.
	secret := rng.NewSplitMix64(seed ^ 0x5EC12E7)
	abBits := secret.Bits(prepositionBits)
	baBits := secret.Bits(prepositionBits)
	aliceAB, aliceBA := keypool.New(), keypool.New()
	bobAB, bobBA := keypool.New(), keypool.New()
	aliceAB.Deposit(abBits.Clone())
	bobAB.Deposit(abBits)
	aliceBA.Deposit(baBits.Clone())
	bobBA.Deposit(baBits)

	aliceConn, err := auth.Wrap(ca, aliceAB, aliceBA)
	if err != nil {
		return nil, fmt.Errorf("core: wrapping alice channel: %w", err)
	}
	bobConn, err := auth.Wrap(cb, bobBA, bobAB)
	if err != nil {
		return nil, fmt.Errorf("core: wrapping bob channel: %w", err)
	}

	cfgA, cfgB := cfg, cfg
	cfgA.Seed = seed ^ 0xA11CE
	cfgB.Seed = seed ^ 0xB0B
	if cfg.MultiPhotonProb == 0 && !cfg.Entangled {
		cfgA.MultiPhotonProb = params.MultiPhotonProb()
		cfgB.MultiPhotonProb = params.MultiPhotonProb()
		cfgA.NonVacuumProb = params.NonVacuumProb()
		cfgB.NonVacuumProb = params.NonVacuumProb()
	}
	s := &Session{
		Link:       link,
		Alice:      NewAlice(aliceConn, keypool.New(), cfgA),
		Bob:        NewBob(bobConn, keypool.New(), cfgB),
		aliceConn:  aliceConn,
		bobConn:    bobConn,
		frameSlots: frameSlots,
	}
	s.Alice.SetAuthPools(aliceAB, aliceBA)
	s.Bob.SetAuthPools(bobBA, bobAB)
	return s, nil
}

// RunFrames transmits n frames through the link and the full protocol
// pipeline. The two engines run concurrently (they exchange messages);
// errors from either side abort the run.
func (s *Session) RunFrames(n int) error {
	for i := 0; i < n; i++ {
		tx, rx := s.Link.TransmitFrame(s.nextFrame, s.frameSlots)
		s.nextFrame++

		var wg sync.WaitGroup
		var aliceErr, bobErr error
		wg.Add(1)
		go func() {
			defer wg.Done()
			aliceErr = s.Alice.HandleFrame(tx)
			if aliceErr != nil {
				// Unblock Bob if he is mid-exchange with a failed peer.
				s.aliceConn.Close()
			}
		}()
		bobErr = s.Bob.HandleFrame(rx)
		if bobErr != nil {
			s.bobConn.Close()
		}
		wg.Wait()
		if aliceErr != nil {
			return fmt.Errorf("frame %d: %w", s.nextFrame-1, aliceErr)
		}
		if bobErr != nil {
			return fmt.Errorf("frame %d: %w", s.nextFrame-1, bobErr)
		}
	}
	return nil
}

// RunUntilDistilled keeps transmitting frames until at least bits of
// distilled key are available in both reservoirs, or maxFrames elapse.
func (s *Session) RunUntilDistilled(bits, maxFrames int) error {
	for f := 0; f < maxFrames; f++ {
		if s.Alice.Pool().Available() >= bits && s.Bob.Pool().Available() >= bits {
			return nil
		}
		if err := s.RunFrames(1); err != nil {
			return err
		}
	}
	if s.Alice.Pool().Available() >= bits && s.Bob.Pool().Available() >= bits {
		return nil
	}
	return fmt.Errorf("core: %d frames produced only %d/%d distilled bits",
		maxFrames, s.Alice.Pool().Available(), bits)
}
