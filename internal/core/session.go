package core

import (
	"fmt"
	"sync"

	"qkd/internal/auth"
	"qkd/internal/channel"
	"qkd/internal/keypool"
	"qkd/internal/photonics"
	"qkd/internal/qframe"
	"qkd/internal/rng"
)

// Session wires a simulated quantum link to an Alice/Bob engine pair
// over an in-memory public channel and pumps frames through the full
// pipeline. It is the harness the examples, experiments, and the VPN
// layer build on; deployments that split Alice and Bob across real
// machines construct the engines directly over a TCP channel.Conn.
type Session struct {
	Link  *photonics.Link
	Alice *Alice
	Bob   *Bob

	aliceConn  channel.Conn
	bobConn    channel.Conn
	frameSlots int
	nextFrame  uint64
}

// FrameSlotsDefault is the pulse count per frame used when the caller
// passes 0: at the paper's 1 MHz trigger rate this is 10 ms of pulses.
const FrameSlotsDefault = 10000

// NewSession builds a complete simulated link: photonics, public
// channel, engines, and per-end key reservoirs (reachable via
// Session.Alice.Pool() / Session.Bob.Pool()).
func NewSession(params photonics.Params, cfg Config, frameSlots int, seed uint64) *Session {
	return NewSessionWithPools(params, cfg, frameSlots, seed, keypool.New(), keypool.New())
}

// NewSessionWithPools is NewSession with caller-supplied key supplies:
// the engines deposit distilled batches into aPool/bPool instead of
// fresh reservoirs. The VPN layer uses this to route distillation
// straight into each site's key delivery service.
func NewSessionWithPools(params photonics.Params, cfg Config, frameSlots int, seed uint64, aPool, bPool keypool.Pool) *Session {
	if frameSlots <= 0 {
		frameSlots = FrameSlotsDefault
	}
	link := photonics.NewLink(params, seed)
	ca, cb := channel.MemPair(256)
	cfgA, cfgB := cfg, cfg
	cfgA.Seed = seed ^ 0xA11CE
	cfgB.Seed = seed ^ 0xB0B
	if cfg.MultiPhotonProb == 0 && !cfg.Entangled {
		cfgA.MultiPhotonProb = params.MultiPhotonProb()
		cfgB.MultiPhotonProb = params.MultiPhotonProb()
		cfgA.NonVacuumProb = params.NonVacuumProb()
		cfgB.NonVacuumProb = params.NonVacuumProb()
	}
	return &Session{
		Link:       link,
		Alice:      NewAlice(ca, aPool, cfgA),
		Bob:        NewBob(cb, bPool, cfgB),
		aliceConn:  ca,
		bobConn:    cb,
		frameSlots: frameSlots,
	}
}

// NewAuthenticatedSession is NewSession with Wegman-Carter
// authentication on the public channel, bootstrapped from
// prepositionBits of shared secret per direction (the "prepositioned
// secret keys" authentication strategy of Section 2), and continuous
// replenishment of the pad pools from distilled key.
func NewAuthenticatedSession(params photonics.Params, cfg Config, frameSlots int, seed uint64, prepositionBits int) (*Session, error) {
	if frameSlots <= 0 {
		frameSlots = FrameSlotsDefault
	}
	if prepositionBits < 128 {
		return nil, fmt.Errorf("core: preposition at least 128 bits per direction")
	}
	if cfg.AuthReplenishBits == 0 {
		cfg.AuthReplenishBits = 256
	}
	link := photonics.NewLink(params, seed)
	ca, cb := channel.MemPair(256)

	// Preposition identical pad material at both ends, per direction.
	secret := rng.NewSplitMix64(seed ^ 0x5EC12E7)
	abBits := secret.Bits(prepositionBits)
	baBits := secret.Bits(prepositionBits)
	aliceAB, aliceBA := keypool.New(), keypool.New()
	bobAB, bobBA := keypool.New(), keypool.New()
	aliceAB.Deposit(abBits.Clone())
	bobAB.Deposit(abBits)
	aliceBA.Deposit(baBits.Clone())
	bobBA.Deposit(baBits)

	aliceConn, err := auth.Wrap(ca, aliceAB, aliceBA)
	if err != nil {
		return nil, fmt.Errorf("core: wrapping alice channel: %w", err)
	}
	bobConn, err := auth.Wrap(cb, bobBA, bobAB)
	if err != nil {
		return nil, fmt.Errorf("core: wrapping bob channel: %w", err)
	}

	cfgA, cfgB := cfg, cfg
	cfgA.Seed = seed ^ 0xA11CE
	cfgB.Seed = seed ^ 0xB0B
	if cfg.MultiPhotonProb == 0 && !cfg.Entangled {
		cfgA.MultiPhotonProb = params.MultiPhotonProb()
		cfgB.MultiPhotonProb = params.MultiPhotonProb()
		cfgA.NonVacuumProb = params.NonVacuumProb()
		cfgB.NonVacuumProb = params.NonVacuumProb()
	}
	s := &Session{
		Link:       link,
		Alice:      NewAlice(aliceConn, keypool.New(), cfgA),
		Bob:        NewBob(bobConn, keypool.New(), cfgB),
		aliceConn:  aliceConn,
		bobConn:    bobConn,
		frameSlots: frameSlots,
	}
	s.Alice.SetAuthPools(aliceAB, aliceBA)
	s.Bob.SetAuthPools(bobBA, bobAB)
	return s, nil
}

// SetAuthBias registers one shared per-batch replenishment bias on both
// engines (see AuthBias); call before the first frame.
func (s *Session) SetAuthBias(b *AuthBias) {
	s.Alice.SetAuthBias(b)
	s.Bob.SetAuthBias(b)
}

// framePipelineDepth bounds how many frames the physical-layer
// simulation may run ahead of the protocol engines.
const framePipelineDepth = 4

// RunFrames transmits n frames through the link and the full protocol
// pipeline. The run is pipelined: a producer goroutine simulates frame
// i+1 (and up to framePipelineDepth ahead) on the link while the two
// protocol engines — themselves running concurrently, since they
// exchange messages — distill frame i. Batching several frames per call
// keeps the pipeline full; errors from either engine abort the run
// (frames already simulated but not yet processed are discarded, which
// is physically just lost light).
func (s *Session) RunFrames(n int) error {
	type framePair struct {
		id uint64
		tx *qframe.TxFrame
		rx *qframe.RxFrame
	}
	frames := make(chan framePair, framePipelineDepth)
	stop := make(chan struct{})
	prodDone := make(chan struct{})
	go func() {
		defer close(prodDone)
		defer close(frames)
		for i := 0; i < n; i++ {
			tx, rx := s.Link.TransmitFrame(s.nextFrame, s.frameSlots)
			p := framePair{id: s.nextFrame, tx: tx, rx: rx}
			s.nextFrame++
			select {
			case frames <- p:
			case <-stop:
				return
			}
		}
	}()
	// The producer owns the link and s.nextFrame until it exits; make
	// sure it has before RunFrames returns on any path.
	defer func() {
		close(stop)
		<-prodDone
	}()
	for p := range frames {
		var wg sync.WaitGroup
		var aliceErr, bobErr error
		wg.Add(1)
		go func() {
			defer wg.Done()
			aliceErr = s.Alice.HandleFrame(p.tx)
			if aliceErr != nil {
				// Unblock Bob if he is mid-exchange with a failed peer.
				s.aliceConn.Close()
			}
		}()
		bobErr = s.Bob.HandleFrame(p.rx)
		if bobErr != nil {
			s.bobConn.Close()
		}
		wg.Wait()
		if aliceErr != nil {
			return fmt.Errorf("frame %d: %w", p.id, aliceErr)
		}
		if bobErr != nil {
			return fmt.Errorf("frame %d: %w", p.id, bobErr)
		}
	}
	return nil
}

// RunUntilDistilled keeps transmitting frames until at least bits of
// distilled key are available in both reservoirs, or maxFrames elapse.
// Frames run in small batches so the simulate/distill pipeline stays
// full between reservoir checks.
func (s *Session) RunUntilDistilled(bits, maxFrames int) error {
	for f := 0; f < maxFrames; {
		if s.Alice.Pool().Available() >= bits && s.Bob.Pool().Available() >= bits {
			return nil
		}
		chunk := framePipelineDepth
		if f+chunk > maxFrames {
			chunk = maxFrames - f
		}
		if err := s.RunFrames(chunk); err != nil {
			return err
		}
		f += chunk
	}
	if s.Alice.Pool().Available() >= bits && s.Bob.Pool().Available() >= bits {
		return nil
	}
	return fmt.Errorf("core: %d frames produced only %d/%d distilled bits",
		maxFrames, s.Alice.Pool().Available(), bits)
}
