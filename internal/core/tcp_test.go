package core

import (
	"net"
	"testing"

	"qkd/internal/channel"
	"qkd/internal/keypool"
	"qkd/internal/photonics"
	"qkd/internal/qframe"
)

// TestEnginesOverTCP runs the full protocol pipeline with Alice and Bob
// exchanging every protocol message over a real TCP loopback socket —
// the deployment shape where the two suites are separate machines and
// the public channel is the actual Internet.
func TestEnginesOverTCP(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	serverConnCh := make(chan channel.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		serverConnCh <- channel.WrapNet(c)
	}()
	clientConn, err := channel.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	serverConn := <-serverConnCh
	defer clientConn.Close()
	defer serverConn.Close()

	cfg := Config{BatchBits: 2048}
	cfg.MultiPhotonProb = fastParams().MultiPhotonProb()
	cfg.NonVacuumProb = fastParams().NonVacuumProb()
	alice := NewAlice(clientConn, keypool.New(), cfg)
	bob := NewBob(serverConn, keypool.New(), cfg)

	link := photonics.NewLink(fastParams(), 77)
	type frame struct {
		tx *qframe.TxFrame
		rx *qframe.RxFrame
	}
	frames := make([]frame, 30)
	for i := range frames {
		tx, rx := link.TransmitFrame(uint64(i), 10000)
		frames[i] = frame{tx, rx}
	}

	errCh := make(chan error, 1)
	go func() {
		for _, f := range frames {
			if err := alice.HandleFrame(f.tx); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	for i, f := range frames {
		if err := bob.HandleFrame(f.rx); err != nil {
			t.Fatalf("bob frame %d: %v", i, err)
		}
	}
	if err := <-errCh; err != nil {
		t.Fatalf("alice: %v", err)
	}

	n := alice.Pool().Available()
	if n == 0 {
		t.Fatal("no key distilled over TCP")
	}
	if n != bob.Pool().Available() {
		t.Fatalf("reservoirs differ: %d vs %d", n, bob.Pool().Available())
	}
	a, _ := alice.Pool().TryConsume(n)
	b, _ := bob.Pool().TryConsume(n)
	if !a.Equal(b) {
		t.Fatalf("keys differ over TCP in %d of %d bits", a.HammingDistance(b), n)
	}
	t.Logf("distilled %d identical bits over TCP loopback", n)
}
