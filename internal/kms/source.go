package kms

import (
	"fmt"
	"sync"

	"qkd/internal/bitarray"
	"qkd/internal/keypool"
)

// Feed is one named key source of a Service — a direct QKD link, a
// relay-mesh end-to-end transport, a trunk from another KDS — with
// disruption-tolerant custody buffering: while the feed is down,
// deposits accumulate in arrival order instead of being lost, and are
// flushed intact into the service when the feed comes back up. That is
// the DTN store-and-forward discipline applied to key delivery: an
// outage delays custody transfer, it does not destroy the bundle.
//
// Mirrored Services must observe the same merged ingest order, so an
// outage must be modeled symmetrically on both ends (it is a property
// of the shared path, not of one endpoint).
type Feed struct {
	svc  *Service
	name string

	mu        sync.Mutex
	down      bool
	buffer    *bitarray.BitArray
	deposited uint64
	buffered  uint64
	flushed   uint64
}

var _ keypool.Sink = (*Feed)(nil)

// AttachSource registers a named feed, initially up.
func (s *Service) AttachSource(name string) (*Feed, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if _, ok := s.sources[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateSource, name)
	}
	f := &Feed{svc: s, name: name, buffer: bitarray.New(0)}
	s.sources[name] = f
	return f, nil
}

// Source returns a registered feed, or nil.
func (s *Service) Source(name string) *Feed {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sources[name]
}

// Name returns the feed name.
func (f *Feed) Name() string { return f.name }

// Deposit ingests bits through the feed, taking custody of them while
// the feed is down. The feed mutex is held across the ingest so a
// deposit can never overtake a concurrent restore's custody flush —
// older buffered bits always reach the ledger first, on both mirrored
// endpoints.
func (f *Feed) Deposit(bits *bitarray.BitArray) {
	if bits.Len() == 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.deposited += uint64(bits.Len())
	if f.down {
		f.buffer.AppendAll(bits)
		f.buffered += uint64(bits.Len())
		return
	}
	f.svc.Ingest(bits)
}

// SetUp transitions the feed; coming back up flushes the custody
// buffer into the service in arrival order, atomically with the
// transition (a racing Deposit serializes behind the flush).
func (f *Feed) SetUp(up bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if up == !f.down {
		return
	}
	f.down = !up
	if up && f.buffer.Len() > 0 {
		flush := f.buffer
		f.buffer = bitarray.New(0)
		f.flushed += uint64(flush.Len())
		f.svc.Ingest(flush)
	}
}

// Up reports whether the feed is passing deposits through.
func (f *Feed) Up() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return !f.down
}

// Buffered returns the bits currently held in custody.
func (f *Feed) Buffered() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.buffer.Len()
}

// FeedStats summarizes a feed's lifetime activity.
type FeedStats struct {
	DepositedBits uint64 // total offered to the feed
	BufferedBits  uint64 // total that passed through custody
	FlushedBits   uint64 // custody bits delivered on restore
}

// Stats returns a snapshot.
func (f *Feed) Stats() FeedStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FeedStats{DepositedBits: f.deposited, BufferedBits: f.buffered, FlushedBits: f.flushed}
}
