// Package kms implements the Key Delivery Service (KDS): the layer the
// paper's Section 2 demands but the 2003 system never had. Distilled
// key is scarce (a 1 kbit/s-class link) while consumers are many — OTP
// pad streams, IKE Qblock rekeys, Wegman-Carter pad replenishment, and
// whole relay meshes feeding end-to-end key — so "sufficiently rapid
// key delivery" is a scheduling problem, not just a pipe. A Service
// sits between the distillation engines (and any other key source) and
// every consumer, and provides:
//
//   - a sharded key store ([Store]) — striped reservoirs behind
//     lock-free available counters, so thousands of concurrent
//     withdrawals stripe across shard mutexes instead of serializing
//     on one;
//
//   - named key streams ([Stream]) with synchronized block IDs: the
//     two mirrored endpoints of a QKD link carve *identical* key
//     blocks by (stream, sequence) ticket instead of relying on
//     lockstep withdrawal order. Tickets address absolute offsets in a
//     deposit-ordered ledger, so any claim order on either side yields
//     bit-exact agreement;
//
//   - a QoS scheduler: allocation requests carry a class (OTP pad
//     streams > IKE Qblock rekey > auth-pad replenishment), are served
//     strictly by class priority and FIFO within a class (a large
//     blocked request accumulates deposits instead of losing every one
//     to smaller later arrivals), and pass adaptive admission control —
//     when the measured deposit rate falls below demand, low-class
//     requests are shed immediately (ErrOverload) rather than queued to
//     certain timeout, the demand/capacity adaptation Elastic-TCP
//     applies to high-BDP paths;
//
//   - multi-source aggregation ([Feed]): a Service accepts deposits
//     from a direct QKD link and from relay-mesh end-to-end transport
//     alike, with disruption-tolerant custody buffering across link
//     outages — bits deposited while a source is down are buffered in
//     arrival order and flushed intact on restore.
//
// The two mirrored Services of a link stay synchronized by the same
// contract the raw reservoirs used: both ends ingest identical bits in
// identical order. Everything above that — claim order, consumer
// concurrency, QoS queueing — is free to differ per side, which is the
// point.
package kms

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"qkd/internal/bitarray"
	"qkd/internal/keypool"
)

// Class orders key delivery: lower values preempt higher ones.
type Class int

const (
	// ClassOTP is one-time-pad material for running SAs: starving it
	// stops traffic dead, so it outranks everything.
	ClassOTP Class = iota
	// ClassRekey is IKE Qblock withdrawal for SA rollover.
	ClassRekey
	// ClassAuth is Wegman-Carter pad replenishment: it defends future
	// conversations, so it yields to both and is shed first under
	// overload.
	ClassAuth
	// NumClasses bounds the class space.
	NumClasses
)

func (c Class) String() string {
	switch c {
	case ClassOTP:
		return "otp"
	case ClassRekey:
		return "rekey"
	case ClassAuth:
		return "auth"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Errors. The timeout/closed/canceled/exhausted values wrap their
// keypool counterparts so consumers written against keypool.Source
// (errors.Is(err, keypool.ErrTimeout) etc.) behave identically when
// handed a KDS-backed source.
var (
	ErrTimeout   = fmt.Errorf("kms: timed out waiting for key delivery: %w", keypool.ErrTimeout)
	ErrClosed    = fmt.Errorf("kms: service closed: %w", keypool.ErrClosed)
	ErrCanceled  = fmt.Errorf("kms: request canceled: %w", keypool.ErrCanceled)
	ErrExhausted = fmt.Errorf("kms: insufficient key on hand: %w", keypool.ErrExhausted)
	// ErrOverload is returned by admission control: the measured
	// deposit rate cannot clear the queued demand ahead of this request
	// within its class's horizon, so it is shed instead of queued.
	ErrOverload = errors.New("kms: admission control shed the request")
	// ErrReclaimed rejects a (stream, sequence) ticket whose ledger
	// range was already claimed or released on this side.
	ErrReclaimed = errors.New("kms: ticket already claimed")
	// ErrTicketRange rejects a ticket addressing ledger implausibly far
	// beyond what has been deposited — a corrupted or misrouted ticket.
	// Accepting it would poison the allocation cursor for good.
	ErrTicketRange = errors.New("kms: ticket range implausibly beyond the ledger")
	// ErrDuplicateStream rejects reusing a stream name.
	ErrDuplicateStream = errors.New("kms: stream already exists")
	// ErrDuplicateSource rejects reusing a source name.
	ErrDuplicateSource = errors.New("kms: source already attached")
)

// Config tunes a Service.
type Config struct {
	// Shards is the stripe count of the bulk store (default 8).
	Shards int
	// StreamFraction is the fraction of every deposit routed to the
	// synchronized stream ledger; the remainder feeds the sharded bulk
	// store. The split is a pure function of cumulative deposits, so
	// mirrored Services route identically. Default 1.0 (everything
	// synchronized); 0 < StreamFraction <= 1.
	StreamFraction float64
	// ShedDelay is the admission-control horizon: a ClassAuth request
	// whose projected queue wait exceeds it is shed with ErrOverload
	// (ClassRekey gets 8x the horizon; ClassOTP is never shed).
	// Default 250 ms.
	ShedDelay time.Duration
	// RateHalfLife is the EWMA horizon of the deposit-rate estimator
	// driving admission control. Default 250 ms.
	RateHalfLife time.Duration
	// Now is the clock the deposit-rate estimator reads. Injecting it
	// makes admission control replayable: a harness driving deposits
	// from a seeded schedule can advance a fake clock in lockstep and
	// get bit-identical shed decisions. Defaults to time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.StreamFraction <= 0 || c.StreamFraction > 1 {
		c.StreamFraction = 1
	}
	if c.ShedDelay <= 0 {
		c.ShedDelay = 250 * time.Millisecond
	}
	if c.RateHalfLife <= 0 {
		c.RateHalfLife = 250 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// shedHorizon returns the projected-wait bound beyond which a request
// of class c is shed; 0 means never shed.
func (c Config) shedHorizon(cl Class) time.Duration {
	switch cl {
	case ClassRekey:
		return 8 * c.ShedDelay
	case ClassAuth:
		return c.ShedDelay
	}
	return 0
}

// Stats is a Service activity snapshot.
type Stats struct {
	DepositedBits uint64 // total ingested
	LedgerBits    uint64 // routed to the synchronized stream ledger
	StoreBits     uint64 // routed to the sharded bulk store
	ClaimedBits   uint64 // delivered through stream claims
	ReleasedBits  uint64 // tickets spent without retrieval
	BufferedBits  uint64 // held in DTN custody across source outages

	// Per-class scheduler counters.
	Granted     [NumClasses]uint64 // allocation requests granted
	GrantedBits [NumClasses]uint64
	Shed        [NumClasses]uint64 // rejected by admission control
	Expired     [NumClasses]uint64 // timed out or canceled while queued
	Degraded    [NumClasses]uint64 // queued in timeout-bounded degraded mode

	// Pressure is the congestion signal at snapshot time (see
	// Service.Pressure): projected rekey-class wait over the rekey shed
	// horizon. 0 idle, >= 1 means the next rekey request would be shed.
	Pressure float64

	// DemandBits is the windowed demand registered per class by flow
	// controllers (see RegisterDemand) at snapshot time.
	DemandBits [NumClasses]uint64
}

// Service is one endpoint's key delivery service.
type Service struct {
	cfg   Config
	store *Store

	mu     sync.Mutex
	closed bool

	// The synchronized ledger: every bit routed here has an absolute
	// offset (identical on the mirrored peer), and stream tickets
	// address ranges of it.
	ledger     *bitarray.BitArray
	ledgerBase uint64        // absolute offset of ledger bit 0
	ledgerEnd  atomic.Uint64 // absolute end of deposited ledger bits
	granted    atomic.Uint64 // allocation cursor (absolute); written under mu
	deposited  uint64        // total bits ingested (ledger + store)

	streams map[string]*Stream
	sources map[string]*Feed

	// Claim bookkeeping: reserved/served ranges above the prune
	// frontier, and claims waiting for ledger coverage.
	ranges       []*claimRange
	frontier     uint64
	claimWaiters []*claimWaiter

	// QoS scheduler state: per-class FIFO allocation queues.
	queues     [NumClasses][]*allocWaiter
	queuedBits [NumClasses]uint64
	rate       rateEstimator

	// Registered windowed demand (flow controllers announce how much
	// they intend to draw over their next window). Own mutex: readers
	// (transport sizing, distillation bias) must not contend with the
	// allocation hot path.
	demandMu      sync.Mutex
	demands       map[string]demandEntry
	demandByClass [NumClasses]uint64

	stats Stats
}

// demandEntry is one flow controller's registered window.
type demandEntry struct {
	class Class
	bits  uint64
}

// New builds a Service.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:     cfg,
		store:   NewStore(cfg.Shards),
		ledger:  bitarray.New(0),
		streams: make(map[string]*Stream),
		sources: make(map[string]*Feed),
		demands: make(map[string]demandEntry),
		rate:    rateEstimator{halfLife: cfg.RateHalfLife.Seconds()},
	}
}

// Ingest deposits distilled bits from the default (direct-link) source.
// The deposit is split between the synchronized stream ledger and the
// sharded bulk store by a pure function of cumulative deposits, so the
// mirrored peer Service splits identically.
func (s *Service) Ingest(bits *bitarray.BitArray) {
	n := bits.Len()
	if n == 0 {
		return
	}
	var storePart *bitarray.BitArray
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.deposited += uint64(n)
	s.stats.DepositedBits += uint64(n)
	target := uint64(float64(s.deposited) * s.cfg.StreamFraction)
	end := s.ledgerEnd.Load()
	take := 0
	if target > end {
		take = int(target - end)
		if take > n {
			take = n
		}
	}
	if take > 0 {
		if take == n {
			s.ledger.AppendAll(bits)
		} else {
			s.ledger.AppendAll(bits.Slice(0, take))
		}
		s.ledgerEnd.Store(end + uint64(take))
		s.stats.LedgerBits += uint64(take)
	}
	if take < n {
		storePart = bits.Slice(take, n)
		s.stats.StoreBits += uint64(n - take)
	}
	// Admission control projects queue waits against the rate the
	// scheduler actually grants from — the ledger share only, or a
	// split deposit stream would make it overestimate capacity by
	// 1/StreamFraction and admit requests doomed to time out.
	s.rate.observe(take, s.cfg.Now())
	s.serveClaimsLocked()
	s.dispatchLocked()
	s.mu.Unlock()
	if storePart != nil {
		s.store.Deposit(storePart)
	}
}

// Store returns the sharded bulk store: the high-concurrency lane for
// consumers that do not need cross-endpoint block identity.
func (s *Service) Store() *Store { return s.store }

// Available returns the bits on hand across the ledger (unallocated)
// and the bulk store, without taking the service lock.
func (s *Service) Available() int {
	ledger := int64(s.ledgerEnd.Load()) - int64(s.granted.Load())
	if ledger < 0 {
		ledger = 0
	}
	return int(ledger) + s.store.Available()
}

// Stats returns a snapshot. Feed custody is summed outside the service
// lock: feeds hold their own mutex across Ingest (which takes s.mu), so
// the two locks must never be taken in the s.mu -> f.mu order.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	st.Pressure = s.pressureLocked()
	feeds := make([]*Feed, 0, len(s.sources))
	for _, f := range s.sources {
		feeds = append(feeds, f)
	}
	s.mu.Unlock()
	s.demandMu.Lock()
	st.DemandBits = s.demandByClass
	s.demandMu.Unlock()
	for _, f := range feeds {
		st.BufferedBits += uint64(f.Buffered())
	}
	return st
}

// Close shuts the service down: queued allocations and pending claims
// fail with ErrClosed, as do all future requests. Remaining key is
// discarded.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for c := range s.queues {
		for _, w := range s.queues[c] {
			w.err = ErrClosed
			close(w.done)
		}
		s.queues[c] = nil
		s.queuedBits[c] = 0
	}
	for _, w := range s.claimWaiters {
		w.err = ErrClosed
		close(w.done)
	}
	s.claimWaiters = nil
	s.ledger = bitarray.New(0)
	s.mu.Unlock()
	s.store.Close()
}

// ---------------------------------------------------------------------
// QoS scheduler: class-priority, FIFO-ticket allocation over the ledger
// ---------------------------------------------------------------------

// allocWaiter is one queued allocation request.
type allocWaiter struct {
	st    *Stream
	bits  int
	class Class
	tk    Ticket
	err   error
	done  chan struct{}
}

// allocBits grants `bits` of ledger to the stream, queueing behind
// same-or-higher-class requests and subject to admission control.
func (s *Service) allocBits(st *Stream, bits int, timeout time.Duration, cancel <-chan struct{}) (Ticket, error) {
	if bits <= 0 {
		return Ticket{}, errors.New("kms: non-positive allocation")
	}
	if cancel != nil {
		select {
		case <-cancel:
			return Ticket{}, ErrCanceled
		default:
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Ticket{}, ErrClosed
	}
	if s.queueEmptyForLocked(st.class) && s.coveredLocked(bits) {
		tk := s.grantLocked(st, bits)
		s.mu.Unlock()
		return tk, nil
	}
	if err := s.admitLocked(st.class, bits); err != nil {
		s.stats.Shed[st.class]++
		s.mu.Unlock()
		return Ticket{}, err
	}
	// Degraded mode, the early-pressure signal ahead of hard sheds:
	// past half the shed horizon the request is still admitted, but its
	// wait is bounded by a small multiple of the horizon instead of the
	// caller's full deadline — sustained pressure turns into fast,
	// bounded failures the caller can back off on, not slow ones that
	// pin a starved request for its entire timeout.
	if horizon := s.cfg.shedHorizon(st.class); horizon > 0 {
		if wait, known := s.projectedWaitLocked(st.class, bits); known && wait > horizon/2 {
			s.stats.Degraded[st.class]++
			if bound := 2 * horizon; timeout <= 0 || timeout > bound {
				timeout = bound
			}
		}
	}
	w := &allocWaiter{st: st, bits: bits, class: st.class, done: make(chan struct{})}
	s.queues[st.class] = append(s.queues[st.class], w)
	s.queuedBits[st.class] += uint64(bits)
	s.mu.Unlock()

	var deadlineC <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadlineC = t.C
	}
	select {
	case <-w.done:
		return w.tk, w.err
	case <-deadlineC:
		return s.abandonAlloc(w, ErrTimeout)
	case <-cancel:
		return s.abandonAlloc(w, ErrCanceled)
	}
}

// tryAllocBits grants immediately or fails without queueing.
func (s *Service) tryAllocBits(st *Stream, bits int) (Ticket, error) {
	if bits <= 0 {
		return Ticket{}, errors.New("kms: non-positive allocation")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Ticket{}, ErrClosed
	}
	if !s.queueEmptyForLocked(st.class) || !s.coveredLocked(bits) {
		return Ticket{}, ErrExhausted
	}
	return s.grantLocked(st, bits), nil
}

// abandonAlloc removes a queued request whose deadline or cancel fired;
// a grant that raced it wins (the ticket is already spent ledger).
func (s *Service) abandonAlloc(w *allocWaiter, failErr error) (Ticket, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-w.done:
		return w.tk, w.err
	default:
	}
	q := s.queues[w.class]
	for i, qw := range q {
		if qw == w {
			s.queues[w.class] = append(q[:i], q[i+1:]...)
			s.queuedBits[w.class] -= uint64(w.bits)
			break
		}
	}
	s.stats.Expired[w.class]++
	// Removing a large head may unblock requests behind it.
	s.dispatchLocked()
	return Ticket{}, failErr
}

// coveredLocked reports whether the deposited ledger covers `bits` more
// of allocation.
func (s *Service) coveredLocked(bits int) bool {
	return s.granted.Load()+uint64(bits) <= s.ledgerEnd.Load()
}

// queueEmptyForLocked reports whether no request of class c or higher
// priority is queued (in which case a new class-c request may be
// granted immediately without jumping anyone it must yield to).
func (s *Service) queueEmptyForLocked(c Class) bool {
	for cc := Class(0); cc <= c; cc++ {
		if len(s.queues[cc]) > 0 {
			return false
		}
	}
	return true
}

// grantLocked carves the next ledger range into a ticket.
func (s *Service) grantLocked(st *Stream, bits int) Ticket {
	off := s.granted.Load()
	s.granted.Store(off + uint64(bits))
	blocks := (bits + st.blockBits - 1) / st.blockBits
	seq := st.nextSeq
	st.nextSeq += uint64(blocks)
	s.stats.Granted[st.class]++
	s.stats.GrantedBits[st.class] += uint64(bits)
	return Ticket{Stream: st.name, Seq: seq, Offset: off, Bits: bits}
}

// dispatchLocked serves queued allocation requests: strictly by class
// priority, FIFO within a class, and only as far as deposited ledger
// covers. The head of the highest non-empty class blocks everything
// behind and below it — that is the starvation guarantee: the next
// deposited bits belong to it, no matter how small a later request is.
func (s *Service) dispatchLocked() {
	for c := Class(0); c < NumClasses; c++ {
		q := s.queues[c]
		for len(q) > 0 {
			w := q[0]
			if !s.coveredLocked(w.bits) {
				s.queues[c] = q
				return
			}
			w.tk = s.grantLocked(w.st, w.bits)
			s.queuedBits[c] -= uint64(w.bits)
			q = q[1:]
			close(w.done)
		}
		s.queues[c] = q
	}
}

// admitLocked is the Elastic-style adaptive admission check: project
// how long the queue ahead of a class-c request of `bits` would take to
// clear at the measured deposit rate, and shed the request when that
// exceeds the class's horizon. High-priority classes are never shed.
func (s *Service) admitLocked(c Class, bits int) error {
	horizon := s.cfg.shedHorizon(c)
	if horizon <= 0 {
		return nil
	}
	wait, known := s.projectedWaitLocked(c, bits)
	if !known {
		// No deposit observed yet: admit optimistically; the deadline
		// still bounds the wait.
		return nil
	}
	if wait > horizon {
		return ErrOverload
	}
	return nil
}

// projectedWaitLocked estimates how long a class-c request of `bits`
// would queue: the backlog it must wait behind (same-or-higher class
// queues plus itself, minus uncovered ledger already deposited) divided
// by the measured deposit rate. known is false when no rate has been
// observed yet.
func (s *Service) projectedWaitLocked(c Class, bits int) (wait time.Duration, known bool) {
	backlog := int64(bits)
	for cc := Class(0); cc <= c; cc++ {
		backlog += int64(s.queuedBits[cc])
	}
	backlog -= int64(s.ledgerEnd.Load()) - int64(s.granted.Load())
	if backlog <= 0 {
		return 0, true
	}
	rate := s.rate.perSecond()
	if rate <= 0 {
		return 0, false
	}
	return time.Duration(float64(backlog) / rate * float64(time.Second)), true
}

// Pressure is the service's early-warning congestion signal: the
// projected wait a new rekey-class request would face, normalized by
// the rekey shed horizon. 0 means an idle scheduler; values at or
// above 1 mean the next such request would be shed — consumers (the
// vpn rekeyer) stretch their backoff as this approaches 1 instead of
// discovering the overload through hard ErrOverload failures.
func (s *Service) Pressure() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pressureLocked()
}

func (s *Service) pressureLocked() float64 {
	horizon := s.cfg.shedHorizon(ClassRekey)
	if horizon <= 0 || s.closed {
		return 0
	}
	wait, known := s.projectedWaitLocked(ClassRekey, 0)
	if !known {
		// Backlog with no measured capacity: maximal pressure.
		for c := Class(0); c < NumClasses; c++ {
			if s.queuedBits[c] > 0 {
				return 1
			}
		}
		return 0
	}
	return float64(wait) / float64(horizon)
}

// ProjectedWait estimates how long a class-c request of `bits` would
// queue right now: backlog ahead of it over the measured deposit rate.
// known is false while no deposit interval has been measured. Flow
// controllers sample this as their queueing-delay signal — the analog
// of LEDBAT's one-way-delay probe — without committing a request.
func (s *Service) ProjectedWait(c Class, bits int) (wait time.Duration, known bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, true
	}
	return s.projectedWaitLocked(c, bits)
}

// DepositRate returns the EWMA ledger deposit rate in bits per second
// (0 until the estimator has measured an interval) — the capacity side
// of the signal flow controllers pace against.
func (s *Service) DepositRate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rate.perSecond()
}

// ---------------------------------------------------------------------
// Windowed demand registry
// ---------------------------------------------------------------------

// RegisterDemand records (or updates) a named flow controller's
// windowed demand: the bits it intends to draw in class c over its
// current window. Demand is advisory — it never reserves ledger — but
// downstream producers read the aggregate to size work toward real
// need: qnet transports stripe RegisteredDemand bits instead of a fixed
// request, and distillation biases batch splits toward starved classes.
// bits <= 0 clears the entry.
func (s *Service) RegisterDemand(name string, c Class, bits int) {
	if c < 0 || c >= NumClasses {
		return
	}
	s.demandMu.Lock()
	defer s.demandMu.Unlock()
	if old, ok := s.demands[name]; ok {
		s.demandByClass[old.class] -= old.bits
	}
	if bits <= 0 {
		delete(s.demands, name)
		return
	}
	s.demands[name] = demandEntry{class: c, bits: uint64(bits)}
	s.demandByClass[c] += uint64(bits)
}

// UnregisterDemand drops a named demand registration.
func (s *Service) UnregisterDemand(name string) {
	s.RegisterDemand(name, 0, 0)
}

// RegisteredDemand sums the windowed demand registered for class c, or
// across all classes when c < 0.
func (s *Service) RegisteredDemand(c Class) int {
	s.demandMu.Lock()
	defer s.demandMu.Unlock()
	if c >= 0 && c < NumClasses {
		return int(s.demandByClass[c])
	}
	var total uint64
	for _, b := range s.demandByClass {
		total += b
	}
	return int(total)
}

// Cursor returns the absolute allocation cursor — the ledger offset
// the next granted ticket starts at. Mirrored endpoints that have seen
// the same ticket history report identical cursors; the gateway
// restart tests assert exactly that to rule out ledger divergence.
func (s *Service) Cursor() uint64 { return s.granted.Load() }

// rateEstimator tracks the deposit rate as an exponentially weighted
// moving average, adapting over roughly halfLife seconds — the capacity
// half of the demand/capacity ratio admission control steers by.
type rateEstimator struct {
	halfLife float64
	rate     float64 // bits per second
	last     time.Time
	primed   bool
	seeded   bool
}

func (r *rateEstimator) observe(bits int, now time.Time) {
	if !r.primed {
		r.primed = true
		r.last = now
		return
	}
	dt := now.Sub(r.last).Seconds()
	if dt < 1e-6 {
		dt = 1e-6
	}
	inst := float64(bits) / dt
	// The first measured interval seeds the estimate outright. Easing
	// toward it from zero by alpha would leave the capacity estimate a
	// small fraction of reality for several half-lives, and admission
	// control would shed early traffic against a phantom shortage.
	if !r.seeded {
		r.seeded = true
		r.rate = inst
		r.last = now
		return
	}
	alpha := 1 - math.Exp(-dt/r.halfLife)
	r.rate += alpha * (inst - r.rate)
	r.last = now
}

func (r *rateEstimator) perSecond() float64 { return r.rate }
