package kms

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"qkd/internal/bitarray"
)

// Ticket names one allocated key block range: (stream, sequence)
// identity plus the absolute ledger range backing it. Because both
// mirrored Services ingest identical deposits, a ticket resolves to
// bit-identical key on both endpoints regardless of local claim order —
// the property lockstep withdrawal order used to provide implicitly,
// made explicit and order-independent. Tickets travel in-band (the IKE
// quick-mode proposal carries one); they name key but contain none.
type Ticket struct {
	// Stream is the owning stream's name.
	Stream string
	// Seq is the first block ID covered by this ticket; a ticket for n
	// blocks covers [Seq, Seq+n).
	Seq uint64
	// Offset is the absolute ledger bit offset of the block range.
	Offset uint64
	// Bits is the range length.
	Bits int
}

// Stream is a named sequence of fixed-size key blocks carved from the
// synchronized ledger. One side of the link allocates (assigning block
// IDs and ledger ranges under the QoS scheduler); both sides claim.
// Every allocated ticket must eventually be Claimed or Released on each
// side — at most once — which is what lets the ledger prune behind the
// claim frontier. A ticket lost in transit (the allocator's
// authenticated send fails after allocation, so the follower never
// learns the range exists) leaves a pruning hole on the follower until
// the service restarts: its memory cost is bounded by the rarity of
// authenticated-channel failures, and claims stay correct because
// offsets are absolute.
type Stream struct {
	svc       *Service
	name      string
	blockBits int
	class     Class
	nextSeq   uint64 // guarded by svc.mu
}

// NewStream registers a stream. Mirrored Services must register
// mirrored streams with identical block sizes; the class sets the
// stream's QoS scheduling priority on the allocating side.
func (s *Service) NewStream(name string, blockBits int, class Class) (*Stream, error) {
	if blockBits <= 0 {
		return nil, errors.New("kms: non-positive block size")
	}
	if class < 0 || class >= NumClasses {
		return nil, fmt.Errorf("kms: invalid class %d", class)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if _, ok := s.streams[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateStream, name)
	}
	st := &Stream{svc: s, name: name, blockBits: blockBits, class: class}
	s.streams[name] = st
	return st, nil
}

// Stream returns a registered stream, or nil.
func (s *Service) Stream(name string) *Stream {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streams[name]
}

// Name returns the stream name.
func (st *Stream) Name() string { return st.name }

// BlockBits returns the fixed block size.
func (st *Stream) BlockBits() int { return st.blockBits }

// Class returns the stream's QoS class.
func (st *Stream) Class() Class { return st.class }

// AllocateWait requests `blocks` consecutive blocks, blocking in the
// QoS scheduler until deposited key covers them, the timeout elapses
// (timeout <= 0 waits indefinitely), or cancel fires. Under overload,
// sheddable classes fail fast with ErrOverload.
func (st *Stream) AllocateWait(blocks int, timeout time.Duration, cancel <-chan struct{}) (Ticket, error) {
	return st.svc.allocBits(st, blocks*st.blockBits, timeout, cancel)
}

// TryAllocate requests `blocks` consecutive blocks without queueing:
// it fails with ErrExhausted unless the grant is immediately coverable
// and no same-or-higher-class request is waiting.
func (st *Stream) TryAllocate(blocks int) (Ticket, error) {
	return st.svc.tryAllocBits(st, blocks*st.blockBits)
}

// Claim retrieves a ticket's key bits, blocking until the local ledger
// covers the range (the mirrored peer may deposit later than the
// allocator did). Each ticket range is claimable at most once per side;
// a duplicate fails with ErrReclaimed. If the deadline or cancel fires
// first, the ticket is marked spent — the allocator burned that ledger
// range for good, on both sides — and the bits are discarded.
func (st *Stream) Claim(tk Ticket, timeout time.Duration, cancel <-chan struct{}) (*bitarray.BitArray, error) {
	s := st.svc
	if tk.Stream != st.name {
		return nil, fmt.Errorf("kms: ticket for stream %q claimed on %q", tk.Stream, st.name)
	}
	if tk.Bits <= 0 {
		return nil, errors.New("kms: empty ticket")
	}
	if cancel != nil {
		select {
		case <-cancel:
			return nil, ErrCanceled
		default:
		}
	}
	end := tk.Offset + uint64(tk.Bits)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	r, err := s.insertRangeLocked(tk.Offset, end)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.followLocked(st, tk)
	if end <= s.ledgerEnd.Load() {
		bits := s.copyRangeLocked(tk.Offset, end)
		s.retireRangeLocked(r)
		s.stats.ClaimedBits += uint64(tk.Bits)
		s.mu.Unlock()
		return bits, nil
	}
	w := &claimWaiter{r: r, off: tk.Offset, end: end, done: make(chan struct{})}
	s.claimWaiters = append(s.claimWaiters, w)
	s.mu.Unlock()

	var deadlineC <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadlineC = t.C
	}
	select {
	case <-w.done:
		return w.bits, w.err
	case <-deadlineC:
		return s.abandonClaim(w, ErrTimeout)
	case <-cancel:
		return s.abandonClaim(w, ErrCanceled)
	}
}

// Release marks a ticket spent without retrieving its bits: the path a
// failed negotiation takes so both sides burn the same ledger range and
// the claim frontier keeps advancing. Releasing an already-claimed (or
// already-released) ticket is a no-op.
func (st *Stream) Release(tk Ticket) {
	if tk.Bits <= 0 {
		return
	}
	s := st.svc
	end := tk.Offset + uint64(tk.Bits)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	r, err := s.insertRangeLocked(tk.Offset, end)
	if err != nil {
		return // already claimed/released
	}
	s.followLocked(st, tk)
	s.retireRangeLocked(r)
	s.stats.ReleasedBits += uint64(tk.Bits)
}

// Next allocates and claims in one step — the allocator side's common
// path (a granted ticket is covered by definition, so the claim returns
// immediately). On a claim failure the ticket is released locally (the
// grant is spent regardless) and returned so the caller can still tell
// the peer which range died.
func (st *Stream) Next(blocks int, timeout time.Duration, cancel <-chan struct{}) (Ticket, *bitarray.BitArray, error) {
	tk, err := st.AllocateWait(blocks, timeout, cancel)
	if err != nil {
		return Ticket{}, nil, err
	}
	bits, err := st.Claim(tk, timeout, cancel)
	if err != nil {
		st.Release(tk)
		return tk, nil, err
	}
	return tk, bits, nil
}

// ---------------------------------------------------------------------
// Ledger range bookkeeping
// ---------------------------------------------------------------------

// claimRange tracks one ticket's ledger range from first sight
// (reserved) to retirement (claimed, released, or expired), at which
// point the prune frontier may advance over it.
type claimRange struct {
	off, end uint64
	retired  bool
}

// claimWaiter is a claim blocked on ledger coverage.
type claimWaiter struct {
	r        *claimRange
	off, end uint64
	bits     *bitarray.BitArray
	err      error
	done     chan struct{}
}

// maxClaimAhead bounds how far beyond the locally deposited ledger a
// ticket may reach. Legitimate claims can run ahead of a lagging
// mirror, but only by in-flight deposits; 2^30 bits (128 MiB of key,
// years of a kbit/s-class link) is far past any honest skew. Without
// the bound, one corrupted offset would push the allocation cursor
// somewhere coveredLocked can never reach again, silently wedging
// every future allocation on this endpoint.
const maxClaimAhead = 1 << 30

// insertRangeLocked reserves [off, end), rejecting overlap with any
// seen range (double claim), already-pruned ledger, and implausible
// offsets.
func (s *Service) insertRangeLocked(off, end uint64) (*claimRange, error) {
	if off < s.frontier {
		return nil, fmt.Errorf("%w: range [%d,%d) is behind the claim frontier %d", ErrReclaimed, off, end, s.frontier)
	}
	if end < off || end > s.ledgerEnd.Load()+maxClaimAhead {
		return nil, fmt.Errorf("%w: range [%d,%d) with %d bits deposited", ErrTicketRange, off, end, s.ledgerEnd.Load())
	}
	i := sort.Search(len(s.ranges), func(i int) bool { return s.ranges[i].end > off })
	if i < len(s.ranges) && s.ranges[i].off < end {
		return nil, fmt.Errorf("%w: range [%d,%d) overlaps [%d,%d)", ErrReclaimed, off, end, s.ranges[i].off, s.ranges[i].end)
	}
	r := &claimRange{off: off, end: end}
	s.ranges = append(s.ranges, nil)
	copy(s.ranges[i+1:], s.ranges[i:])
	s.ranges[i] = r
	return r, nil
}

// followLocked lets the non-allocating side track the allocator: the
// cursor and the stream's next block ID advance past every ticket seen,
// so a late local allocation can never collide with followed ranges.
func (s *Service) followLocked(st *Stream, tk Ticket) {
	end := tk.Offset + uint64(tk.Bits)
	if end > s.granted.Load() {
		s.granted.Store(end)
	}
	blocks := uint64((tk.Bits + st.blockBits - 1) / st.blockBits)
	if tk.Seq+blocks > st.nextSeq {
		st.nextSeq = tk.Seq + blocks
	}
}

// retireRangeLocked marks a range spent and advances the prune
// frontier over the contiguous retired prefix, dropping ledger bits
// that no live ticket can address anymore.
func (s *Service) retireRangeLocked(r *claimRange) {
	r.retired = true
	for len(s.ranges) > 0 && s.ranges[0].retired && s.ranges[0].off == s.frontier {
		s.frontier = s.ranges[0].end
		s.ranges = s.ranges[1:]
	}
	// The frontier may legitimately run ahead of local deposits — a
	// released or abandoned ticket from an allocator whose mirror is
	// ahead of us — so the prune point is clamped to what has actually
	// been deposited.
	prune := s.frontier
	if end := s.ledgerEnd.Load(); prune > end {
		prune = end
	}
	if prune-s.ledgerBase >= 1<<15 {
		s.ledger = s.ledger.Slice(int(prune-s.ledgerBase), s.ledger.Len())
		s.ledgerBase = prune
	}
}

// copyRangeLocked copies absolute ledger range [off, end).
func (s *Service) copyRangeLocked(off, end uint64) *bitarray.BitArray {
	return s.ledger.Slice(int(off-s.ledgerBase), int(end-s.ledgerBase))
}

// serveClaimsLocked wakes exactly the claims the fresh deposit covers.
func (s *Service) serveClaimsLocked() {
	if len(s.claimWaiters) == 0 {
		return
	}
	covered := s.ledgerEnd.Load()
	kept := s.claimWaiters[:0]
	for _, w := range s.claimWaiters {
		if w.end <= covered {
			w.bits = s.copyRangeLocked(w.off, w.end)
			s.retireRangeLocked(w.r)
			s.stats.ClaimedBits += uint64(w.end - w.off)
			close(w.done)
		} else {
			kept = append(kept, w)
		}
	}
	s.claimWaiters = kept
}

// abandonClaim handles a claim whose deadline or cancel fired: if a
// deposit served it first the bits win; otherwise the range is retired
// unread (spent ledger, mirrored by the peer's own claim or release).
func (s *Service) abandonClaim(w *claimWaiter, failErr error) (*bitarray.BitArray, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-w.done:
		return w.bits, w.err
	default:
	}
	for i, q := range s.claimWaiters {
		if q == w {
			s.claimWaiters = append(s.claimWaiters[:i], s.claimWaiters[i+1:]...)
			break
		}
	}
	s.retireRangeLocked(w.r)
	s.stats.ReleasedBits += uint64(w.end - w.off)
	return nil, failErr
}
