package kms

import (
	"time"

	"qkd/internal/bitarray"
	"qkd/internal/keypool"
)

// PoolView adapts a Service to keypool.Pool, so consumers written
// against the raw reservoir (IKE daemons, Wegman-Carter MACs, the
// distillation engines' deposit path) plug into the KDS unchanged:
// deposits ingest, blocking withdrawals ride the QoS scheduler at the
// view's class, and TryConsume drains the bulk store first and falls
// back to an immediate scheduler grant.
//
// Withdrawals through a PoolView are granted in local request order,
// so two mirrored PoolViews agree bit-for-bit only under the lockstep
// discipline the raw reservoirs already required. Consumers that need
// order-independent agreement use Streams directly.
type PoolView struct {
	svc *Service
	st  *Stream
}

var _ keypool.Pool = (*PoolView)(nil)

// PoolView returns the service's keypool.Pool adapter for the class
// (one shared view per class; repeated calls return the same stream).
func (s *Service) PoolView(c Class) *PoolView {
	name := "pool/" + c.String()
	s.mu.Lock()
	st, ok := s.streams[name]
	if !ok {
		st = &Stream{svc: s, name: name, blockBits: 1, class: c}
		s.streams[name] = st
	}
	s.mu.Unlock()
	return &PoolView{svc: s, st: st}
}

// Deposit ingests bits from the default source.
func (v *PoolView) Deposit(bits *bitarray.BitArray) { v.svc.Ingest(bits) }

// Available reports ledger plus store bits on hand.
func (v *PoolView) Available() int { return v.svc.Available() }

// Stats reports service-wide lifetime totals: bits ingested and bits
// delivered (stream claims, releases, and store withdrawals).
func (v *PoolView) Stats() (deposited, consumed uint64) {
	st := v.svc.Stats()
	_, storeConsumed := v.svc.store.Stats()
	return st.DepositedBits, st.ClaimedBits + st.ReleasedBits + storeConsumed
}

// TryConsume removes exactly n bits or fails without removing any:
// from the sharded store, from an immediate scheduler grant on the
// ledger, or — when the balance is split across the two lanes — from
// both combined, so TryConsume(Available()) drains a split service
// just as it drains a raw reservoir.
func (v *PoolView) TryConsume(n int) (*bitarray.BitArray, error) {
	if n == 0 {
		return bitarray.New(0), nil
	}
	if bits, err := v.svc.store.TryConsume(n); err == nil {
		return bits, nil
	}
	if tk, err := v.svc.tryAllocBits(v.st, n); err == nil {
		return v.st.Claim(tk, 0, nil)
	}
	// Neither lane covers n alone; take what the store holds and grant
	// the remainder from the ledger, giving the store part back if the
	// grant fails (all-or-nothing).
	fromStore := v.svc.store.Available()
	if fromStore <= 0 || fromStore >= n {
		return nil, ErrExhausted
	}
	part, err := v.svc.store.TryConsume(fromStore)
	if err != nil {
		return nil, ErrExhausted
	}
	tk, err := v.svc.tryAllocBits(v.st, n-part.Len())
	if err != nil {
		v.svc.store.Deposit(part)
		return nil, ErrExhausted
	}
	rest, err := v.st.Claim(tk, 0, nil)
	if err != nil {
		v.st.Release(tk)
		v.svc.store.Deposit(part)
		return nil, err
	}
	part.AppendAll(rest)
	return part, nil
}

// Consume blocks in the QoS scheduler at the view's class.
func (v *PoolView) Consume(n int, timeout time.Duration) (*bitarray.BitArray, error) {
	return v.ConsumeCancelable(n, timeout, nil)
}

// ConsumeCancelable is Consume with an abort channel. A balance
// already on hand — even split across the store and ledger lanes — is
// served immediately; only a genuine shortfall enters the scheduler.
func (v *PoolView) ConsumeCancelable(n int, timeout time.Duration, cancel <-chan struct{}) (*bitarray.BitArray, error) {
	if n == 0 {
		return bitarray.New(0), nil
	}
	if cancel != nil {
		// A withdrawal whose exchange already died must never race a
		// fresh deposit to the bits (keypool contract).
		select {
		case <-cancel:
			return nil, ErrCanceled
		default:
		}
	}
	if bits, err := v.TryConsume(n); err == nil {
		return bits, nil
	}
	// Pre-grab whatever the store lane holds so the scheduler wait only
	// covers the remainder; the store part goes back if the wait fails.
	// (Store bits arriving *during* the wait are not reconsidered — the
	// blocked remainder is a ledger-lane ticket; with the default
	// StreamFraction of 1 the store lane is empty and the keypool
	// blocking contract is exact.)
	var part *bitarray.BitArray
	need := n
	if sa := v.svc.store.Available(); sa > 0 && sa < n {
		if p, err := v.svc.store.TryConsume(sa); err == nil {
			part = p
			need = n - p.Len()
		}
	}
	giveBack := func() {
		if part != nil {
			v.svc.store.Deposit(part)
		}
	}
	tk, err := v.svc.allocBits(v.st, need, timeout, cancel)
	if err != nil {
		giveBack()
		return nil, err
	}
	bits, err := v.st.Claim(tk, timeout, cancel)
	if err != nil {
		// The grant is spent either way; retire it so the ledger's
		// claim frontier keeps advancing.
		v.st.Release(tk)
		giveBack()
		return nil, err
	}
	if part != nil {
		part.AppendAll(bits)
		return part, nil
	}
	return bits, nil
}
