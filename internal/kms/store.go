package kms

import (
	"runtime"
	"sync"
	"sync/atomic"

	"qkd/internal/bitarray"
)

// Store is the sharded bulk lane of the key delivery service: key bits
// striped across independently locked shards behind a lock-free
// available counter, so thousands of concurrent withdrawals contend on
// shard stripes (and scale with the shard count) instead of
// serializing on a single reservoir mutex.
//
// The price of the concurrency is FIFO identity: which bits a
// withdrawal receives depends on scheduling, so mirrored endpoints
// must not expect lockstep withdrawals from their Stores to agree —
// consumers that need cross-endpoint agreement use Streams. The Store
// serves everything else: load generators, local pad caches, relay
// link pools, and the E13 bulk classes.
type Store struct {
	shards []*storeShard

	// avail is the lock-free balance. Withdrawals reserve from it with
	// a CAS before touching any shard, which both rejects exhausted
	// requests without locking and guarantees exact conservation: bits
	// reserved are owned, so the gather below cannot be cheated by a
	// concurrent withdrawal.
	avail atomic.Int64

	depositCursor  atomic.Uint64
	withdrawCursor atomic.Uint64
	closed         atomic.Bool

	deposited atomic.Uint64
	consumed  atomic.Uint64
}

type storeShard struct {
	mu   sync.Mutex
	buf  *bitarray.BitArray
	head int
}

// NewStore builds a store striped over `shards` reservoirs.
func NewStore(shards int) *Store {
	if shards <= 0 {
		shards = 8
	}
	s := &Store{shards: make([]*storeShard, shards)}
	for i := range s.shards {
		s.shards[i] = &storeShard{buf: bitarray.New(0)}
	}
	return s
}

// Shards returns the stripe count.
func (s *Store) Shards() int { return len(s.shards) }

// Available returns the balance without locking.
func (s *Store) Available() int { return int(s.avail.Load()) }

// Stats returns lifetime totals.
func (s *Store) Stats() (deposited, consumed uint64) {
	return s.deposited.Load(), s.consumed.Load()
}

// Deposit appends bits to one shard (round-robin) and publishes them.
func (s *Store) Deposit(bits *bitarray.BitArray) {
	n := bits.Len()
	if n == 0 || s.closed.Load() {
		return
	}
	sh := s.shards[s.depositCursor.Add(1)%uint64(len(s.shards))]
	sh.mu.Lock()
	if s.closed.Load() {
		sh.mu.Unlock()
		return
	}
	sh.compactLocked()
	sh.buf.AppendAll(bits)
	sh.mu.Unlock()
	s.deposited.Add(uint64(n))
	s.avail.Add(int64(n))
}

// TryConsume removes exactly n bits, or fails with ErrExhausted
// without removing anything. The reservation happens on the lock-free
// counter; the gather then walks shards starting at a rotating cursor,
// so concurrent withdrawals start on different stripes.
func (s *Store) TryConsume(n int) (*bitarray.BitArray, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if n < 0 {
		return nil, ErrExhausted
	}
	if n == 0 {
		return bitarray.New(0), nil
	}
	for {
		cur := s.avail.Load()
		if cur < int64(n) {
			return nil, ErrExhausted
		}
		if s.avail.CompareAndSwap(cur, cur-int64(n)) {
			break
		}
	}
	var out *bitarray.BitArray
	need := n
	start := s.withdrawCursor.Add(1)
	for spin := 0; need > 0; spin++ {
		sh := s.shards[(start+uint64(spin))%uint64(len(s.shards))]
		sh.mu.Lock()
		if have := sh.buf.Len() - sh.head; have > 0 {
			take := have
			if take > need {
				take = need
			}
			part := sh.buf.Slice(sh.head, sh.head+take)
			sh.head += take
			sh.compactLocked()
			need -= take
			sh.mu.Unlock()
			if out == nil && need == 0 {
				// Whole withdrawal served by one stripe: the slice copy
				// is the only allocation.
				s.consumed.Add(uint64(n))
				return part, nil
			}
			if out == nil {
				out = bitarray.New(0)
			}
			out.AppendAll(part)
			continue
		}
		sh.mu.Unlock()
		if need > 0 && (spin+1)%len(s.shards) == 0 {
			// The reservation guarantees the bits exist, but a racing
			// Deposit may still be between its counter publish and its
			// shard append; yield and rescan.
			if s.closed.Load() {
				return nil, ErrClosed
			}
			runtime.Gosched()
		}
	}
	s.consumed.Add(uint64(n))
	return out, nil
}

// Close discards all key; subsequent deposits are dropped and
// withdrawals fail with ErrClosed.
func (s *Store) Close() {
	s.closed.Store(true)
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.buf = bitarray.New(0)
		sh.head = 0
		sh.mu.Unlock()
	}
	s.avail.Store(0)
}

func (sh *storeShard) compactLocked() {
	if sh.head > 4096 && sh.head*2 > sh.buf.Len() {
		sh.buf = sh.buf.Slice(sh.head, sh.buf.Len())
		sh.head = 0
	}
}
