package kms

import (
	"errors"
	"sync"
	"testing"
	"time"

	"qkd/internal/bitarray"
	"qkd/internal/keypool"
	"qkd/internal/rng"
)

// mirrored builds the two endpoints of a link: identical configs, and
// a pump that ingests identical bits into both.
func mirrored(cfg Config) (*Service, *Service, func(gen *rng.SplitMix64, n int)) {
	a, b := New(cfg), New(cfg)
	pump := func(gen *rng.SplitMix64, n int) {
		bits := gen.Bits(n)
		a.Ingest(bits.Clone())
		b.Ingest(bits)
	}
	return a, b, pump
}

func TestStoreConservationConcurrent(t *testing.T) {
	s := NewStore(8)
	const total = 1 << 18
	const chunk = 256
	var dwg sync.WaitGroup
	for d := 0; d < 4; d++ {
		dwg.Add(1)
		go func(d int) {
			defer dwg.Done()
			gen := rng.NewSplitMix64(uint64(d) + 1)
			for i := 0; i < total/4/chunk; i++ {
				s.Deposit(gen.Bits(chunk))
			}
		}(d)
	}
	var got atomic64
	var cwg sync.WaitGroup
	for c := 0; c < 16; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				bits, err := s.TryConsume(64)
				if err != nil {
					if got.load() >= total {
						return
					}
					time.Sleep(time.Millisecond)
					continue
				}
				if bits.Len() != 64 {
					t.Errorf("short withdrawal: %d", bits.Len())
					return
				}
				got.add(64)
			}
		}()
	}
	dwg.Wait()
	cwg.Wait()
	if got.load() != total {
		t.Fatalf("consumed %d of %d deposited bits", got.load(), total)
	}
	if s.Available() != 0 {
		t.Fatalf("leftover %d", s.Available())
	}
	dep, con := s.Stats()
	if dep != total || con != total {
		t.Fatalf("stats %d/%d", dep, con)
	}
}

type atomic64 struct {
	mu sync.Mutex
	v  uint64
}

func (a *atomic64) add(n uint64) {
	a.mu.Lock()
	a.v += n
	a.mu.Unlock()
}
func (a *atomic64) load() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.v
}

func TestStoreAllOrNothing(t *testing.T) {
	s := NewStore(4)
	s.Deposit(bitarray.New(100))
	if _, err := s.TryConsume(101); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v", err)
	}
	if s.Available() != 100 {
		t.Fatalf("partial consumption: %d left", s.Available())
	}
	if _, err := s.TryConsume(100); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.TryConsume(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("after close: %v", err)
	}
}

func TestStreamBitExactAcrossEndpoints(t *testing.T) {
	// The allocator side claims in one order, the follower in another;
	// every (stream, seq) ticket must resolve to identical bits.
	a, b, pump := mirrored(Config{})
	defer a.Close()
	defer b.Close()
	stA, err := a.NewStream("otp/7", 128, ClassOTP)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := b.NewStream("otp/7", 128, ClassOTP)
	if err != nil {
		t.Fatal(err)
	}
	gen := rng.NewSplitMix64(11)
	pump(gen, 4096)

	const blocks = 16
	tickets := make([]Ticket, blocks)
	want := make([]*bitarray.BitArray, blocks)
	for i := range tickets {
		tk, bits, err := stA.Next(1, time.Second, nil)
		if err != nil {
			t.Fatal(err)
		}
		if tk.Seq != uint64(i) {
			t.Fatalf("seq %d, want %d", tk.Seq, i)
		}
		tickets[i] = tk
		want[i] = bits
	}
	// Follower claims in reverse order — order independence is the
	// whole point.
	for i := blocks - 1; i >= 0; i-- {
		bits, err := stB.Claim(tickets[i], time.Second, nil)
		if err != nil {
			t.Fatalf("claim %d: %v", i, err)
		}
		if !bits.Equal(want[i]) {
			t.Fatalf("block (otp/7, %d) differs between endpoints", tickets[i].Seq)
		}
	}
}

func TestClaimBlocksUntilPeerCoverage(t *testing.T) {
	// The follower may be asked for a ticket before its own deposits
	// caught up; the claim blocks, then resolves bit-exact.
	a, b, pump := mirrored(Config{})
	defer a.Close()
	defer b.Close()
	stA, _ := a.NewStream("s", 64, ClassRekey)
	stB, _ := b.NewStream("s", 64, ClassRekey)

	gen := rng.NewSplitMix64(3)
	bits := gen.Bits(256)
	a.Ingest(bits.Clone()) // only A has the key so far
	tk, wantBits, err := stA.Next(2, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	type res struct {
		bits *bitarray.BitArray
		err  error
	}
	done := make(chan res, 1)
	go func() {
		got, err := stB.Claim(tk, 5*time.Second, nil)
		done <- res{got, err}
	}()
	select {
	case <-done:
		t.Fatal("claim resolved before the follower had the key")
	case <-time.After(30 * time.Millisecond):
	}
	b.Ingest(bits) // mirror catches up
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if !r.bits.Equal(wantBits) {
			t.Fatal("claimed bits differ between endpoints")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("claim never resolved after coverage")
	}
	_ = pump
}

func TestDoubleClaimRejected(t *testing.T) {
	a := New(Config{})
	defer a.Close()
	st, _ := a.NewStream("s", 64, ClassOTP)
	a.Ingest(rng.NewSplitMix64(1).Bits(512))
	tk, _, err := st.Next(1, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Claim(tk, 0, nil); !errors.Is(err, ErrReclaimed) {
		t.Fatalf("double claim: %v", err)
	}
	// Release of a spent ticket is a harmless no-op.
	st.Release(tk)
	// A released ticket cannot be claimed afterwards either.
	tk2, err := st.AllocateWait(1, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	st.Release(tk2)
	if _, err := st.Claim(tk2, 0, nil); !errors.Is(err, ErrReclaimed) {
		t.Fatalf("claim after release: %v", err)
	}
}

func TestQoSPriorityAndFIFO(t *testing.T) {
	// A large auth request queues first; then a rekey and an OTP
	// request arrive. Deposits must serve OTP, then rekey, then auth —
	// and within a class, arrival order.
	s := New(Config{ShedDelay: time.Hour}) // admission out of the way
	defer s.Close()
	auth, _ := s.NewStream("auth", 64, ClassAuth)
	rekey, _ := s.NewStream("rekey", 64, ClassRekey)
	otp, _ := s.NewStream("otp", 64, ClassOTP)

	type done struct {
		who string
		tk  Ticket
	}
	order := make(chan done, 8)
	launch := func(who string, st *Stream, blocks int) {
		go func() {
			tk, err := st.AllocateWait(blocks, 10*time.Second, nil)
			if err != nil {
				t.Errorf("%s: %v", who, err)
			}
			order <- done{who, tk}
		}()
		// Wait until the request is queued so arrival order is fixed.
		for {
			s.mu.Lock()
			queued := 0
			for c := range s.queues {
				queued += len(s.queues[c])
			}
			s.mu.Unlock()
			if queued >= 1 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	gen := rng.NewSplitMix64(5)
	launch("auth-big", auth, 8) // 512 bits, queued first
	launch("rekey-1", rekey, 2)
	launch("otp-1", otp, 1)
	time.Sleep(10 * time.Millisecond)

	s.Ingest(gen.Bits(64)) // covers exactly the OTP block
	if d := <-order; d.who != "otp-1" {
		t.Fatalf("first grant went to %s, want otp-1", d.who)
	}
	s.Ingest(gen.Bits(128))
	if d := <-order; d.who != "rekey-1" {
		t.Fatalf("second grant went to %s, want rekey-1", d.who)
	}
	// Auth still short: 512 needed. A later small rekey request must
	// NOT overtake... it is higher class, so it does; but a later
	// *auth* request must not.
	launch("auth-small", auth, 1)
	s.Ingest(gen.Bits(256)) // 256 of 512: auth-big still blocked
	select {
	case d := <-order:
		t.Fatalf("%s served before auth-big was whole", d.who)
	case <-time.After(30 * time.Millisecond):
	}
	s.Ingest(gen.Bits(256 + 64)) // completes auth-big, then auth-small
	// Grant order is proven by ledger offsets (the channel only
	// reflects goroutine scheduling): FIFO within the class means the
	// earlier, larger request owns the earlier range.
	got := map[string]Ticket{}
	for i := 0; i < 2; i++ {
		d := <-order
		got[d.who] = d.tk
	}
	big, small := got["auth-big"], got["auth-small"]
	if big.Bits != 512 || small.Bits != 64 {
		t.Fatalf("tickets %+v / %+v", big, small)
	}
	if big.Offset >= small.Offset {
		t.Fatalf("auth-small (offset %d) overtook auth-big (offset %d)", small.Offset, big.Offset)
	}
}

func TestAdmissionShedsOnlySheddableClasses(t *testing.T) {
	s := New(Config{ShedDelay: 10 * time.Millisecond})
	defer s.Close()
	otp, _ := s.NewStream("otp", 64, ClassOTP)
	auth, _ := s.NewStream("auth", 64, ClassAuth)

	// Establish a slow measured rate: two small deposits far apart.
	s.Ingest(rng.NewSplitMix64(1).Bits(64))
	time.Sleep(50 * time.Millisecond)
	s.Ingest(rng.NewSplitMix64(2).Bits(64))

	// Queue demand far beyond the rate: a huge OTP request (never
	// shed, so it queues)...
	otpDone := make(chan error, 1)
	go func() {
		_, err := otp.AllocateWait(1024, 2*time.Second, nil)
		otpDone <- err
	}()
	for {
		s.mu.Lock()
		queued := len(s.queues[ClassOTP])
		s.mu.Unlock()
		if queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// ...then an auth request behind it: projected wait is enormous,
	// so admission sheds it immediately.
	start := time.Now()
	_, err := auth.AllocateWait(1, 2*time.Second, nil)
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("auth under overload: %v", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("shed was not immediate")
	}
	st := s.Stats()
	if st.Shed[ClassAuth] != 1 {
		t.Fatalf("Shed[auth] = %d", st.Shed[ClassAuth])
	}
	if st.Shed[ClassOTP] != 0 {
		t.Fatal("OTP must never be shed")
	}
	// Feed the OTP request so it completes rather than timing out.
	s.Ingest(rng.NewSplitMix64(3).Bits(1024 * 64))
	if err := <-otpDone; err != nil {
		t.Fatalf("otp request starved: %v", err)
	}
}

func TestFeedDTNCustodyAcrossOutage(t *testing.T) {
	a, b, _ := mirrored(Config{})
	defer a.Close()
	defer b.Close()
	fa, err := a.AttachSource("relay")
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := b.AttachSource("relay")
	stA, _ := a.NewStream("s", 64, ClassOTP)
	stB, _ := b.NewStream("s", 64, ClassOTP)

	gen := rng.NewSplitMix64(9)
	chunk1, chunk2, chunk3 := gen.Bits(128), gen.Bits(128), gen.Bits(128)
	fa.Deposit(chunk1.Clone())
	fb.Deposit(chunk1)
	// Outage: deposits keep arriving but go into custody, in order.
	fa.SetUp(false)
	fb.SetUp(false)
	fa.Deposit(chunk2.Clone())
	fb.Deposit(chunk2)
	fa.Deposit(chunk3.Clone())
	fb.Deposit(chunk3)
	if a.Available() != 128 {
		t.Fatalf("outage deposits leaked through: %d", a.Available())
	}
	if fa.Buffered() != 256 {
		t.Fatalf("custody holds %d bits, want 256", fa.Buffered())
	}
	// Restore flushes custody in arrival order on both ends.
	fa.SetUp(true)
	fb.SetUp(true)
	if fa.Buffered() != 0 || a.Available() != 384 {
		t.Fatalf("flush failed: buffered %d, available %d", fa.Buffered(), a.Available())
	}
	tk, bitsA, err := stA.Next(6, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	bitsB, err := stB.Claim(tk, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsA.Equal(bitsB) {
		t.Fatal("custody flush broke cross-endpoint agreement")
	}
	fs := fa.Stats()
	if fs.BufferedBits != 256 || fs.FlushedBits != 256 {
		t.Fatalf("feed stats %+v", fs)
	}
}

func TestStreamFractionSplitsDeterministically(t *testing.T) {
	cfg := Config{StreamFraction: 0.5}
	a, b, _ := mirrored(cfg)
	defer a.Close()
	defer b.Close()
	gen := rng.NewSplitMix64(4)
	// Irregular chunk sizes; the ledger/store split must depend only on
	// cumulative totals.
	var total int
	for _, n := range []int{7, 130, 64, 1, 999, 333} {
		bits := gen.Bits(n)
		a.Ingest(bits.Clone())
		b.Ingest(bits)
		total += n
	}
	sa, sb := a.Stats(), b.Stats()
	if sa.LedgerBits != sb.LedgerBits || sa.StoreBits != sb.StoreBits {
		t.Fatalf("split diverged: %d/%d vs %d/%d", sa.LedgerBits, sa.StoreBits, sb.LedgerBits, sb.StoreBits)
	}
	if sa.LedgerBits != uint64(total/2) {
		t.Fatalf("ledger got %d of %d", sa.LedgerBits, total)
	}
	if got := a.Store().Available(); got != total-total/2 {
		t.Fatalf("store got %d", got)
	}
}

func TestPoolViewKeypoolSemantics(t *testing.T) {
	s := New(Config{})
	v := s.PoolView(ClassRekey)
	var pool keypool.Pool = v // compile-time and runtime interface check

	gen := rng.NewSplitMix64(6)
	src := gen.Bits(256)
	pool.Deposit(src.Clone())
	if pool.Available() != 256 {
		t.Fatalf("Available = %d", pool.Available())
	}
	a1, err := pool.TryConsume(100)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := pool.Consume(156, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	joined := a1.Clone()
	joined.AppendAll(a2)
	if !joined.Equal(src) {
		t.Fatal("PoolView withdrawals not FIFO over the ledger")
	}
	if _, err := pool.TryConsume(1); !errors.Is(err, keypool.ErrExhausted) {
		t.Fatalf("exhausted: %v", err)
	}
	start := time.Now()
	if _, err := pool.Consume(64, 30*time.Millisecond); !errors.Is(err, keypool.ErrTimeout) {
		t.Fatalf("timeout: %v", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("returned before deadline")
	}
	// Blocked withdrawal resolves on deposit.
	done := make(chan error, 1)
	go func() {
		_, err := pool.Consume(64, 5*time.Second)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	pool.Deposit(gen.Bits(64))
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Cancel releases a blocked withdrawal.
	cancel := make(chan struct{})
	go func() {
		_, err := pool.ConsumeCancelable(128, 5*time.Second, cancel)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(cancel)
	if err := <-done; !errors.Is(err, keypool.ErrCanceled) {
		t.Fatalf("cancel: %v", err)
	}
	s.Close()
	if _, err := pool.Consume(1, time.Second); !errors.Is(err, keypool.ErrClosed) {
		t.Fatalf("after close: %v", err)
	}
}

func TestCloseFailsQueuedRequests(t *testing.T) {
	s := New(Config{})
	otp, _ := s.NewStream("otp", 64, ClassOTP)
	stB, _ := s.NewStream("claims", 64, ClassRekey)
	allocErr := make(chan error, 1)
	go func() {
		_, err := otp.AllocateWait(4, 10*time.Second, nil)
		allocErr <- err
	}()
	claimErr := make(chan error, 1)
	go func() {
		_, err := stB.Claim(Ticket{Stream: "claims", Offset: 1 << 20, Bits: 64}, 10*time.Second, nil)
		claimErr <- err
	}()
	time.Sleep(20 * time.Millisecond)
	s.Close()
	if err := <-allocErr; !errors.Is(err, ErrClosed) {
		t.Fatalf("queued alloc: %v", err)
	}
	if err := <-claimErr; !errors.Is(err, ErrClosed) {
		t.Fatalf("pending claim: %v", err)
	}
}

func TestConcurrentMixedLoadStress(t *testing.T) {
	// 200 concurrent consumers across classes and lanes against a
	// trickling depositor, under -race: conservation of granted bits
	// and zero high-class failures.
	s := New(Config{Shards: 8, StreamFraction: 0.5, ShedDelay: 5 * time.Millisecond})
	defer s.Close()

	var granted atomic64
	var wg sync.WaitGroup
	var otpFailures atomic64
	for i := 0; i < 40; i++ {
		wg.Add(1)
		st, err := s.NewStream("otp/"+string(rune('a'+i%26))+string(rune('0'+i/26)), 64, ClassOTP)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			defer wg.Done()
			for r := 0; r < 4; r++ {
				_, bits, err := st.Next(1, 30*time.Second, nil)
				if err != nil {
					otpFailures.add(1)
					return
				}
				granted.add(uint64(bits.Len()))
			}
		}()
	}
	for i := 0; i < 160; i++ {
		wg.Add(1)
		v := s.PoolView(ClassAuth)
		go func() {
			defer wg.Done()
			for r := 0; r < 4; r++ {
				bits, err := v.ConsumeCancelable(64, 200*time.Millisecond, nil)
				if err != nil {
					continue // shed or timed out: fine for low class
				}
				granted.add(uint64(bits.Len()))
			}
		}()
	}
	// Depositor: enough for all OTP demand (40*4*64 = 10240) plus some.
	gen := rng.NewSplitMix64(12)
	for i := 0; i < 100; i++ {
		s.Ingest(gen.Bits(512))
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	if otpFailures.load() != 0 {
		t.Fatalf("%d high-class requests failed", otpFailures.load())
	}
	st := s.Stats()
	var grantedBits uint64
	for c := range st.GrantedBits {
		grantedBits += st.GrantedBits[c]
	}
	if grantedBits > st.DepositedBits {
		t.Fatalf("granted %d bits of %d deposited", grantedBits, st.DepositedBits)
	}
}

func TestPoolViewTryConsumeSpansBothLanes(t *testing.T) {
	// With a split StreamFraction the balance lives half in the ledger
	// and half in the store; TryConsume must still honor any request
	// the combined Available() covers — including a full drain.
	s := New(Config{StreamFraction: 0.5})
	defer s.Close()
	v := s.PoolView(ClassRekey)
	v.Deposit(rng.NewSplitMix64(8).Bits(1024)) // 512 ledger + 512 store
	if got := v.Available(); got != 1024 {
		t.Fatalf("Available = %d", got)
	}
	bits, err := v.TryConsume(768) // covered only by both lanes together
	if err != nil {
		t.Fatalf("split-lane TryConsume: %v", err)
	}
	if bits.Len() != 768 {
		t.Fatalf("got %d bits", bits.Len())
	}
	rest, err := v.TryConsume(v.Available())
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if bits.Len()+rest.Len() != 1024 || v.Available() != 0 {
		t.Fatalf("conservation: %d + %d consumed, %d left", bits.Len(), rest.Len(), v.Available())
	}
	// All-or-nothing holds past the combined balance.
	v.Deposit(rng.NewSplitMix64(9).Bits(100))
	if _, err := v.TryConsume(101); !errors.Is(err, ErrExhausted) {
		t.Fatalf("overdraw: %v", err)
	}
	if v.Available() != 100 {
		t.Fatalf("failed overdraw consumed bits: %d left", v.Available())
	}
	// Blocking consumes also see the split balance immediately.
	if _, err := v.Consume(100, 50*time.Millisecond); err != nil {
		t.Fatalf("split-lane Consume: %v", err)
	}
}

func TestClaimRejectsImplausibleTicket(t *testing.T) {
	// A corrupted ticket offset must fail loudly, not silently push the
	// allocation cursor somewhere the ledger can never reach.
	s := New(Config{})
	defer s.Close()
	st, _ := s.NewStream("s", 64, ClassOTP)
	s.Ingest(rng.NewSplitMix64(2).Bits(256))
	bogus := Ticket{Stream: "s", Seq: 9, Offset: 1 << 60, Bits: 64}
	if _, err := st.Claim(bogus, 10*time.Millisecond, nil); !errors.Is(err, ErrTicketRange) {
		t.Fatalf("bogus claim: %v", err)
	}
	st.Release(bogus) // must also be rejected internally, not poison granted
	// Allocation still works: the cursor was not wedged.
	if _, _, err := st.Next(1, time.Second, nil); err != nil {
		t.Fatalf("allocation after bogus ticket: %v", err)
	}
}

func TestConsumeBlocksAcrossSplitDeposits(t *testing.T) {
	// A blocked split-lane Consume pre-grabs the store share and waits
	// only for the ledger remainder, so it resolves once the combined
	// balance covers it.
	s := New(Config{StreamFraction: 0.5})
	defer s.Close()
	v := s.PoolView(ClassRekey)
	v.Deposit(rng.NewSplitMix64(1).Bits(500)) // 250 ledger + 250 store
	done := make(chan error, 1)
	go func() {
		bits, err := v.Consume(1000, 5*time.Second)
		if err == nil && bits.Len() != 1000 {
			err = errors.New("short withdrawal")
		}
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	v.Deposit(rng.NewSplitMix64(2).Bits(1500)) // ledger now covers the rest
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("split-lane blocking consume: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("consumer stayed blocked with the balance on hand")
	}
}

func TestFeedFlushOrderAtomicWithRestore(t *testing.T) {
	// Deposits racing a restore must serialize behind the custody
	// flush: mirrored endpoints replay [buffered, new] in that order.
	a, b, _ := mirrored(Config{})
	defer a.Close()
	defer b.Close()
	fa, _ := a.AttachSource("f")
	fb, _ := b.AttachSource("f")
	stA, _ := a.NewStream("s", 64, ClassOTP)
	stB, _ := b.NewStream("s", 64, ClassOTP)
	gen := rng.NewSplitMix64(7)
	old, fresh := gen.Bits(128), gen.Bits(128)
	fa.SetUp(false)
	fb.SetUp(false)
	fa.Deposit(old.Clone())
	fb.Deposit(old)
	// Restore and a racing deposit on each side, in opposite orders.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); fa.SetUp(true); fa.Deposit(fresh.Clone()) }()
	go func() { defer wg.Done(); fb.SetUp(true); fb.Deposit(fresh.Clone()) }()
	wg.Wait()
	tk, bitsA, err := stA.Next(4, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	bitsB, err := stB.Claim(tk, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsA.Equal(bitsB) {
		t.Fatal("restore/deposit race reordered the mirrored ledgers")
	}
	if !bitsA.Slice(0, 128).Equal(old) {
		t.Fatal("custody bits were not flushed ahead of the racing deposit")
	}
}

func TestReleaseAheadOfLedgerDoesNotPanicPrune(t *testing.T) {
	// A follower may Release (or time out a claim of) a ticket whose
	// range its own deposits have not covered yet; once the frontier
	// passes the deposited ledger, pruning must clamp instead of
	// slicing past the end.
	s := New(Config{})
	defer s.Close()
	st, _ := s.NewStream("s", 64, ClassRekey)
	s.Ingest(rng.NewSplitMix64(3).Bits(40000))
	st.Release(Ticket{Stream: "s", Seq: 0, Offset: 0, Bits: 50000}) // ahead of local deposits
	// Subsequent claims against deposited ledger still work.
	s.Ingest(rng.NewSplitMix64(4).Bits(20000))
	if _, err := st.Claim(Ticket{Stream: "s", Seq: 782, Offset: 50048, Bits: 64}, time.Second, nil); err != nil {
		t.Fatalf("claim after ahead-of-ledger release: %v", err)
	}
}

func TestPressureSignalRisesAndFalls(t *testing.T) {
	s := New(Config{ShedDelay: 10 * time.Millisecond})
	defer s.Close()
	if p := s.Pressure(); p != 0 {
		t.Fatalf("idle pressure = %v, want 0", p)
	}
	// Backlog before any deposit: capacity unknown, pressure maximal.
	otp, _ := s.NewStream("otp", 64, ClassOTP)
	done := make(chan error, 1)
	go func() {
		_, err := otp.AllocateWait(4, 5*time.Second, nil)
		done <- err
	}()
	for {
		s.mu.Lock()
		queued := s.queuedBits[ClassOTP]
		s.mu.Unlock()
		if queued > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if p := s.Pressure(); p < 1 {
		t.Fatalf("pressure with unmeasured backlog = %v, want >= 1", p)
	}
	// Feeding the backlog drains the queue and the signal falls back.
	s.Ingest(rng.NewSplitMix64(4).Bits(512))
	if err := <-done; err != nil {
		t.Fatalf("backlogged OTP request: %v", err)
	}
	if p := s.Pressure(); p >= 1 {
		t.Fatalf("pressure after drain = %v, want < 1", p)
	}
}

func TestDegradedModeBoundsStarvedWait(t *testing.T) {
	// The early-pressure half of admission control: a request whose
	// projected wait sits past half the shed horizon (but under the
	// horizon, so it is not shed) is admitted with its wait clamped to
	// 2x the horizon — a fast bounded failure the caller's backoff can
	// consume, instead of pinning the full 30s deadline on a starved
	// queue.
	s := New(Config{ShedDelay: 50 * time.Millisecond}) // rekey horizon 400ms
	defer s.Close()
	rk, _ := s.NewStream("rekey", 64, ClassRekey)
	otp, _ := s.NewStream("otp", 300, ClassOTP)
	// Pin the measured deposit rate (white-box) so the projected wait
	// is deterministic rather than wall-clock dependent.
	s.mu.Lock()
	s.rate.primed = true
	s.rate.rate = 1000 // bits per second
	s.mu.Unlock()
	// 300 queued OTP bits ahead: a 64-bit rekey request projects
	// 364ms — inside the degraded zone (200ms, 400ms].
	otpDone := make(chan error, 1)
	go func() {
		_, err := otp.AllocateWait(1, 10*time.Second, nil)
		otpDone <- err
	}()
	for {
		s.mu.Lock()
		queued := s.queuedBits[ClassOTP]
		s.mu.Unlock()
		if queued == 300 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	_, err := rk.AllocateWait(1, 30*time.Second, nil)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("degraded rekey request: %v, want ErrTimeout", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("degraded mode did not bound the wait: %v (deadline was 30s)", elapsed)
	}
	st := s.Stats()
	if st.Degraded[ClassRekey] != 1 {
		t.Errorf("Degraded[rekey] = %d, want 1", st.Degraded[ClassRekey])
	}
	if st.Shed[ClassRekey] != 0 {
		t.Errorf("Shed[rekey] = %d, want 0 (degraded is admitted, not shed)", st.Shed[ClassRekey])
	}
	// The backlog that caused the pressure still completes when fed.
	s.Ingest(rng.NewSplitMix64(5).Bits(512))
	if err := <-otpDone; err != nil {
		t.Fatalf("backlogged OTP request after feed: %v", err)
	}
}

func TestRateEstimatorSeedsFromFirstSample(t *testing.T) {
	// Cold-start bias fix: the first measured interval must set the
	// estimate outright, not ease toward it from zero by alpha. With a
	// 250ms half-life and 100ms between deposits, the old behavior left
	// the estimate at ~28% of the true rate after one sample — enough
	// for admission control to shed early traffic against a phantom
	// shortage.
	r := rateEstimator{halfLife: 0.25}
	t0 := time.Unix(0, 0)
	r.observe(1000, t0) // priming sample: starts the clock
	if got := r.perSecond(); got != 0 {
		t.Fatalf("rate after priming sample = %v, want 0", got)
	}
	r.observe(1000, t0.Add(100*time.Millisecond))
	if got := r.perSecond(); got != 10000 {
		t.Fatalf("rate after first measured interval = %v, want 10000 (seeded, not alpha-blended)", got)
	}
	// Subsequent samples blend as before: a half-rate sample moves the
	// estimate partway down, not all the way.
	r.observe(500, t0.Add(200*time.Millisecond))
	if got := r.perSecond(); got <= 5000 || got >= 10000 {
		t.Fatalf("rate after EWMA sample = %v, want in (5000, 10000)", got)
	}
}

func TestColdStartAdmitsEarlyBurst(t *testing.T) {
	// End-to-end view of the same fix: after a single priming deposit
	// pair, the projected wait uses the true deposit rate, so a burst
	// that capacity can clear inside the horizon is admitted rather
	// than shed.
	s := New(Config{ShedDelay: time.Second})
	defer s.Close()
	st, _ := s.NewStream("auth", 64, ClassAuth)
	gen := rng.NewSplitMix64(9)
	now := time.Now()
	s.mu.Lock()
	s.rate.observe(0, now.Add(-200*time.Millisecond)) // prime the clock
	s.mu.Unlock()
	s.Ingest(gen.Bits(2048)) // ~10 kbit/s measured; 2048 bits on hand
	// 2048 covered + 1024 queued at 10 kbit/s projects ~100ms: well
	// inside the 1s auth horizon. Under the cold-start bias the
	// estimate was a fraction of that and this was shed.
	if _, err := st.AllocateWait(32, time.Second, nil); err != nil { // 32 x 64-bit blocks = 2048 bits
		t.Fatalf("covered request: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := st.AllocateWait(16, 5*time.Second, nil) // 1024 bits
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("early burst shed despite measured capacity: %v", err)
		}
	case <-time.After(10 * time.Millisecond):
		// Queued, not shed: also a pass — feed it and confirm.
		s.Ingest(gen.Bits(2048))
		if err := <-done; err != nil {
			t.Fatalf("queued early burst failed: %v", err)
		}
	}
	if st2 := s.Stats(); st2.Shed[ClassAuth] != 0 {
		t.Fatalf("Shed[auth] = %d, want 0", st2.Shed[ClassAuth])
	}
}

func TestStatsSnapshotsPressure(t *testing.T) {
	s := New(Config{ShedDelay: 10 * time.Millisecond})
	defer s.Close()
	if st := s.Stats(); st.Pressure != 0 {
		t.Fatalf("idle Stats.Pressure = %v, want 0", st.Pressure)
	}
	otp, _ := s.NewStream("otp", 64, ClassOTP)
	done := make(chan error, 1)
	go func() {
		_, err := otp.AllocateWait(4, 5*time.Second, nil)
		done <- err
	}()
	for {
		s.mu.Lock()
		queued := s.queuedBits[ClassOTP]
		s.mu.Unlock()
		if queued > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if st := s.Stats(); st.Pressure < 1 {
		t.Fatalf("Stats.Pressure with unmeasured backlog = %v, want >= 1", st.Pressure)
	}
	s.Ingest(rng.NewSplitMix64(11).Bits(512))
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDemandRegistry(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	s.RegisterDemand("otp/a", ClassOTP, 4096)
	s.RegisterDemand("otp/b", ClassOTP, 1024)
	s.RegisterDemand("auth/pad", ClassAuth, 512)
	if got := s.RegisteredDemand(ClassOTP); got != 5120 {
		t.Fatalf("RegisteredDemand(otp) = %d, want 5120", got)
	}
	if got := s.RegisteredDemand(-1); got != 5632 {
		t.Fatalf("RegisteredDemand(all) = %d, want 5632", got)
	}
	// Re-registering replaces, not accumulates.
	s.RegisterDemand("otp/a", ClassOTP, 2048)
	if got := s.RegisteredDemand(ClassOTP); got != 3072 {
		t.Fatalf("after update: RegisteredDemand(otp) = %d, want 3072", got)
	}
	// A class change moves the entry between aggregates.
	s.RegisterDemand("otp/b", ClassRekey, 1024)
	if got := s.RegisteredDemand(ClassOTP); got != 2048 {
		t.Fatalf("after reclass: RegisteredDemand(otp) = %d, want 2048", got)
	}
	if got := s.RegisteredDemand(ClassRekey); got != 1024 {
		t.Fatalf("after reclass: RegisteredDemand(rekey) = %d, want 1024", got)
	}
	st := s.Stats()
	if st.DemandBits[ClassOTP] != 2048 || st.DemandBits[ClassRekey] != 1024 || st.DemandBits[ClassAuth] != 512 {
		t.Fatalf("Stats.DemandBits = %v", st.DemandBits)
	}
	s.UnregisterDemand("auth/pad")
	if got := s.RegisteredDemand(ClassAuth); got != 0 {
		t.Fatalf("after unregister: RegisteredDemand(auth) = %d, want 0", got)
	}
}
