// Package keypool provides the distilled-key reservoir that couples the
// QKD protocol engine to its consumers. The engine deposits finished
// (sifted, corrected, amplified, authenticated) bits; IKE withdraws
// "Qblocks" to fold into session keys, one-time-pad Security
// Associations stream pad material out, and the authentication layer
// replenishes its Wegman-Carter pads.
//
// The reservoir is the battleground of Section 2's "sufficiently rapid
// key delivery": it is a race between the deposit rate (the QKD link's
// distilled throughput, ~1 kbit/s in 2003) and the consumption rate of
// the cryptographic workload. Consumers choose between failing fast
// (TryConsume) and blocking with a deadline (Consume), which is how the
// IKE timeout experiments exercise exhaustion.
//
// Blocked consumers hold FIFO tickets: they are served strictly in
// arrival order, and a deposit wakes only the waiters it can satisfy.
// A large withdrawal at the head of the queue therefore accumulates
// deposits until it is whole instead of losing every deposit to
// smaller, later arrivals (the thundering-herd starvation of a naive
// condition-variable Broadcast).
//
// Consumers that should not see a concrete *Reservoir — because their
// key really comes from the sharded, QoS-scheduled delivery service in
// internal/kms — accept the Source/Sink/Pool interfaces instead.
package keypool

import (
	"errors"
	"sync"
	"time"

	"qkd/internal/bitarray"
)

// Common errors.
var (
	// ErrExhausted is returned by TryConsume when the reservoir holds
	// fewer bits than requested.
	ErrExhausted = errors.New("keypool: insufficient key material")
	// ErrTimeout is returned by Consume when the deadline passes first.
	ErrTimeout = errors.New("keypool: timed out waiting for key material")
	// ErrClosed is returned once the reservoir is shut down.
	ErrClosed = errors.New("keypool: closed")
	// ErrCanceled is returned by ConsumeCancelable when the abort
	// channel fires before the bits become available.
	ErrCanceled = errors.New("keypool: withdrawal canceled")
)

// Source is the consumer-facing view of a key supply: everything IKE
// daemons, OTP Security Associations, and Wegman-Carter MACs need.
// *Reservoir implements it directly; the key delivery service
// (internal/kms) hands out QoS-classed implementations.
type Source interface {
	// Available returns the number of bits on hand right now.
	Available() int
	// TryConsume removes exactly n bits or fails without removing any.
	TryConsume(n int) (*bitarray.BitArray, error)
	// Consume removes exactly n bits, blocking until available or the
	// timeout elapses (timeout <= 0 blocks indefinitely).
	Consume(n int, timeout time.Duration) (*bitarray.BitArray, error)
	// ConsumeCancelable is Consume with an abort channel.
	ConsumeCancelable(n int, timeout time.Duration, cancel <-chan struct{}) (*bitarray.BitArray, error)
}

// Sink is the producer-facing view: the distillation engines deposit
// finished batches into one.
type Sink interface {
	Deposit(bits *bitarray.BitArray)
}

// Pool is the full two-sided view of a key supply.
type Pool interface {
	Source
	Sink
	// Stats returns lifetime deposit/consumption totals in bits.
	Stats() (deposited, consumed uint64)
}

// waiter is one queued blocking withdrawal. It is served (bits and err
// assigned, done closed) under the reservoir mutex, strictly in FIFO
// order.
type waiter struct {
	n    int
	bits *bitarray.BitArray
	err  error
	done chan struct{}
}

// Reservoir is a thread-safe FIFO of secret bits.
type Reservoir struct {
	mu     sync.Mutex
	buf    *bitarray.BitArray // bits [head, Len) are live
	head   int
	closed bool

	// waiters is the FIFO ticket queue of blocked withdrawals.
	waiters []*waiter

	// outstanding reservations, voided when the reservoir closes (the
	// set-aside bits may be compromised along with the pool).
	reservations []*Reservation

	deposited uint64
	consumed  uint64
	refunded  uint64
}

var (
	_ Pool = (*Reservoir)(nil)
)

// New returns an empty reservoir.
func New() *Reservoir {
	return &Reservoir{buf: bitarray.New(0)}
}

// Deposit appends bits to the reservoir and serves queued withdrawals
// in arrival order; only waiters the new balance can satisfy wake.
func (r *Reservoir) Deposit(bits *bitarray.BitArray) {
	if bits.Len() == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.compactLocked()
	r.buf.AppendAll(bits)
	r.deposited += uint64(bits.Len())
	r.serveLocked()
}

// DepositBytes appends 8*len(p) bits.
func (r *Reservoir) DepositBytes(p []byte) { r.Deposit(bitarray.FromBytes(p)) }

// Available returns the number of bits currently held.
func (r *Reservoir) Available() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.buf.Len() - r.head
}

// Stats returns lifetime deposit/consumption totals in bits.
func (r *Reservoir) Stats() (deposited, consumed uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.deposited, r.consumed
}

// TryConsume removes exactly n bits, or returns ErrExhausted without
// removing anything. Key material is never partially consumed: a
// consumer that can't be fully served must not burn the pool. While
// blocked withdrawals are queued, TryConsume always fails — jumping the
// FIFO queue would reintroduce exactly the starvation the tickets
// eliminate.
func (r *Reservoir) TryConsume(n int) (*bitarray.BitArray, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.waiters) > 0 {
		return nil, ErrExhausted
	}
	return r.takeLocked(n)
}

// Consume removes exactly n bits, blocking until they are available or
// the timeout elapses (timeout <= 0 blocks indefinitely).
func (r *Reservoir) Consume(n int, timeout time.Duration) (*bitarray.BitArray, error) {
	return r.ConsumeCancelable(n, timeout, nil)
}

// ConsumeCancelable is Consume with an abort channel: when cancel is
// closed before the bits become available, the withdrawal returns
// ErrCanceled without consuming anything. The IKE daemon uses this to
// tear down a responder's pending blocking withdrawal when the exchange
// that requested it dies — otherwise key deposited for the initiator's
// retry would feed the stale negotiation instead.
//
// Withdrawals are served in strict arrival order: the call enqueues a
// ticket and deposits fill tickets from the head of the queue. If a
// deposit has already filled the ticket when the deadline or cancel
// fires, the bits are returned (they were consumed on this caller's
// behalf; dropping them would desynchronize the mirrored peer pool).
func (r *Reservoir) ConsumeCancelable(n int, timeout time.Duration, cancel <-chan struct{}) (*bitarray.BitArray, error) {
	if cancel != nil {
		// A withdrawal whose exchange already died must never race a
		// fresh deposit to the bits.
		select {
		case <-cancel:
			return nil, ErrCanceled
		default:
		}
	}
	r.mu.Lock()
	if n < 0 {
		r.mu.Unlock()
		return nil, errors.New("keypool: negative request")
	}
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	// Fast path: empty queue and enough bits on hand.
	if len(r.waiters) == 0 {
		if bits, err := r.takeLocked(n); err == nil {
			r.mu.Unlock()
			return bits, nil
		}
	}
	w := &waiter{n: n, done: make(chan struct{})}
	r.waiters = append(r.waiters, w)
	r.mu.Unlock()

	var deadlineC <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadlineC = t.C
	}
	select {
	case <-w.done:
		return w.bits, w.err
	case <-deadlineC:
		return r.abandon(w, ErrTimeout)
	case <-cancel: // nil channel when cancel == nil: blocks forever
		return r.abandon(w, ErrCanceled)
	}
}

// abandon removes a waiter whose deadline or cancel fired. If a deposit
// served the ticket first, the bits won the race and are returned.
func (r *Reservoir) abandon(w *waiter, failErr error) (*bitarray.BitArray, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case <-w.done:
		return w.bits, w.err
	default:
	}
	for i, q := range r.waiters {
		if q == w {
			r.waiters = append(r.waiters[:i], r.waiters[i+1:]...)
			break
		}
	}
	// Removing a large head may unblock smaller tickets behind it.
	r.serveLocked()
	return nil, failErr
}

// Close shuts the reservoir; all blocked and future consumers fail with
// ErrClosed. Remaining bits are discarded (they are secrets; callers
// that want them must drain first), and outstanding reservations are
// voided — set-aside pairwise key dies with the pool it came from, so a
// link teardown (cut, eavesdropping alarm) reaches key a transport
// reserved but has not yet put on the wire.
func (r *Reservoir) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	r.buf = bitarray.New(0)
	r.head = 0
	for _, w := range r.waiters {
		w.err = ErrClosed
		close(w.done)
	}
	r.waiters = nil
	for _, rv := range r.reservations {
		rv.void = true
	}
	r.reservations = nil
}

// serveLocked fills queued tickets in FIFO order while the balance
// allows. The head ticket blocks all later ones even when they are
// smaller: that is the anti-starvation guarantee. Caller holds mu; the
// reservoir is open.
func (r *Reservoir) serveLocked() {
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		bits, err := r.takeLocked(w.n)
		if err != nil {
			return // head not yet satisfiable; later deposits retry
		}
		w.bits = bits
		r.waiters = r.waiters[1:]
		close(w.done)
	}
}

// takeLocked removes n bits if possible, counting them consumed.
// Caller holds mu.
func (r *Reservoir) takeLocked(n int) (*bitarray.BitArray, error) {
	out, err := r.takeRawLocked(n)
	if err == nil {
		r.consumed += uint64(n)
	}
	return out, err
}

// takeRawLocked removes n bits without stats accounting. Caller holds
// mu.
func (r *Reservoir) takeRawLocked(n int) (*bitarray.BitArray, error) {
	if r.closed {
		return nil, ErrClosed
	}
	if n < 0 {
		return nil, errors.New("keypool: negative request")
	}
	if r.buf.Len()-r.head < n {
		return nil, ErrExhausted
	}
	out := r.buf.Slice(r.head, r.head+n)
	r.head += n
	r.compactLocked()
	return out, nil
}

// ---------------------------------------------------------------------
// Reservations
// ---------------------------------------------------------------------

// Reservation is key set aside from a reservoir ahead of use: the bits
// leave Available() immediately (no concurrent consumer can double-book
// them) but count as consumed only as they are drawn with Consume. The
// unconsumed remainder can be refunded with Release — the
// all-or-nothing discipline multi-hop transports need: reserve every
// hop of the path first, and a hop that cannot be reserved costs the
// earlier hops nothing.
//
// Closing the reservoir voids its outstanding reservations: the
// set-aside bits are discarded with the pool (they may be known to the
// same adversary), and further Consume calls fail with ErrClosed.
type Reservation struct {
	r    *Reservoir
	bits *bitarray.BitArray
	off  int // bits [off, Len) remain undrawn
	void bool
}

// Reserve sets n bits aside, or fails with ErrExhausted without taking
// anything. Like TryConsume it refuses while blocked withdrawals are
// queued: a reservation must not jump the FIFO ticket queue.
func (r *Reservoir) Reserve(n int) (*Reservation, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.waiters) > 0 {
		return nil, ErrExhausted
	}
	bits, err := r.takeRawLocked(n)
	if err != nil {
		return nil, err
	}
	rv := &Reservation{r: r, bits: bits}
	r.reservations = append(r.reservations, rv)
	return rv, nil
}

// Reserved returns the bits currently set aside across all outstanding
// reservations.
func (r *Reservoir) Reserved() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := 0
	for _, rv := range r.reservations {
		total += rv.bits.Len() - rv.off
	}
	return total
}

// Refunded returns the lifetime bits returned to the reservoir by
// reservation releases.
func (r *Reservoir) Refunded() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.refunded
}

// Remaining returns the undrawn bits left in the reservation (0 once
// voided).
func (rv *Reservation) Remaining() int {
	rv.r.mu.Lock()
	defer rv.r.mu.Unlock()
	if rv.void {
		return 0
	}
	return rv.bits.Len() - rv.off
}

// Consume draws exactly n bits from the reservation. It fails with
// ErrClosed once the reservoir shut down underneath it (the set-aside
// key is gone) and ErrExhausted if fewer than n bits remain.
func (rv *Reservation) Consume(n int) (*bitarray.BitArray, error) {
	rv.r.mu.Lock()
	defer rv.r.mu.Unlock()
	if rv.void {
		return nil, ErrClosed
	}
	if n < 0 {
		return nil, errors.New("keypool: negative request")
	}
	if rv.bits.Len()-rv.off < n {
		return nil, ErrExhausted
	}
	out := rv.bits.Slice(rv.off, rv.off+n)
	rv.off += n
	rv.r.consumed += uint64(n)
	if rv.off == rv.bits.Len() {
		rv.r.dropReservationLocked(rv)
	}
	return out, nil
}

// Release refunds the undrawn remainder to the front of the reservoir —
// the next consumer sees the same bits the reservation would have — and
// wakes any withdrawals the refund satisfies. Releasing a voided or
// empty reservation is a no-op; the reservation is dead afterwards.
func (rv *Reservation) Release() {
	rv.r.mu.Lock()
	defer rv.r.mu.Unlock()
	if rv.void || rv.r.closed {
		rv.void = true
		return
	}
	rv.r.dropReservationLocked(rv)
	rem := rv.bits.Len() - rv.off
	rv.void = true
	if rem == 0 {
		return
	}
	refund := rv.bits.Slice(rv.off, rv.bits.Len())
	refund.AppendAll(rv.r.buf.Slice(rv.r.head, rv.r.buf.Len()))
	rv.r.buf = refund
	rv.r.head = 0
	rv.r.refunded += uint64(rem)
	rv.r.serveLocked()
}

// Close releases the reservation. It exists so a reservation can be
// parked in a defer at acquisition time — `defer rv.Close()` — and
// satisfies the lifecycle invariant the reservepair analyzer enforces:
// every Reserve must reach Consume, Release, or Close on all paths.
// Closing an already-consumed or already-released reservation is a
// no-op, so the defer idiom composes with early Consume.
func (rv *Reservation) Close() error {
	rv.Release()
	return nil
}

// dropReservationLocked removes a finished reservation from the
// outstanding list. Caller holds mu.
func (r *Reservoir) dropReservationLocked(rv *Reservation) {
	for i, q := range r.reservations {
		if q == rv {
			r.reservations = append(r.reservations[:i], r.reservations[i+1:]...)
			return
		}
	}
}

// compactLocked drops consumed head bits once they dominate the buffer,
// keeping memory proportional to live bits.
func (r *Reservoir) compactLocked() {
	if r.head > 4096 && r.head*2 > r.buf.Len() {
		r.buf = r.buf.Slice(r.head, r.buf.Len())
		r.head = 0
	}
}
