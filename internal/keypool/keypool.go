// Package keypool provides the distilled-key reservoir that couples the
// QKD protocol engine to its consumers. The engine deposits finished
// (sifted, corrected, amplified, authenticated) bits; IKE withdraws
// "Qblocks" to fold into session keys, one-time-pad Security
// Associations stream pad material out, and the authentication layer
// replenishes its Wegman-Carter pads.
//
// The reservoir is the battleground of Section 2's "sufficiently rapid
// key delivery": it is a race between the deposit rate (the QKD link's
// distilled throughput, ~1 kbit/s in 2003) and the consumption rate of
// the cryptographic workload. Consumers choose between failing fast
// (TryConsume) and blocking with a deadline (Consume), which is how the
// IKE timeout experiments exercise exhaustion.
package keypool

import (
	"errors"
	"sync"
	"time"

	"qkd/internal/bitarray"
)

// Common errors.
var (
	// ErrExhausted is returned by TryConsume when the reservoir holds
	// fewer bits than requested.
	ErrExhausted = errors.New("keypool: insufficient key material")
	// ErrTimeout is returned by Consume when the deadline passes first.
	ErrTimeout = errors.New("keypool: timed out waiting for key material")
	// ErrClosed is returned once the reservoir is shut down.
	ErrClosed = errors.New("keypool: closed")
	// ErrCanceled is returned by ConsumeCancelable when the abort
	// channel fires before the bits become available.
	ErrCanceled = errors.New("keypool: withdrawal canceled")
)

// Reservoir is a thread-safe FIFO of secret bits.
type Reservoir struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    *bitarray.BitArray // bits [head, Len) are live
	head   int
	closed bool

	deposited uint64
	consumed  uint64
}

// New returns an empty reservoir.
func New() *Reservoir {
	r := &Reservoir{buf: bitarray.New(0)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Deposit appends bits to the reservoir and wakes blocked consumers.
func (r *Reservoir) Deposit(bits *bitarray.BitArray) {
	if bits.Len() == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.compactLocked()
	r.buf.AppendAll(bits)
	r.deposited += uint64(bits.Len())
	r.cond.Broadcast()
}

// DepositBytes appends 8*len(p) bits.
func (r *Reservoir) DepositBytes(p []byte) { r.Deposit(bitarray.FromBytes(p)) }

// Available returns the number of bits currently held.
func (r *Reservoir) Available() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.buf.Len() - r.head
}

// Stats returns lifetime deposit/consumption totals in bits.
func (r *Reservoir) Stats() (deposited, consumed uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.deposited, r.consumed
}

// TryConsume removes exactly n bits, or returns ErrExhausted without
// removing anything. Key material is never partially consumed: a
// consumer that can't be fully served must not burn the pool.
func (r *Reservoir) TryConsume(n int) (*bitarray.BitArray, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.takeLocked(n)
}

// Consume removes exactly n bits, blocking until they are available or
// the timeout elapses (timeout <= 0 blocks indefinitely).
func (r *Reservoir) Consume(n int, timeout time.Duration) (*bitarray.BitArray, error) {
	return r.ConsumeCancelable(n, timeout, nil)
}

// ConsumeCancelable is Consume with an abort channel: when cancel is
// closed before the bits become available, the withdrawal returns
// ErrCanceled without consuming anything. The IKE daemon uses this to
// tear down a responder's pending blocking withdrawal when the exchange
// that requested it dies — otherwise key deposited for the initiator's
// retry would feed the stale negotiation instead.
func (r *Reservoir) ConsumeCancelable(n int, timeout time.Duration, cancel <-chan struct{}) (*bitarray.BitArray, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		// A watchdog broadcast releases waiters at the deadline; cheap
		// relative to key operations, and keeps Wait logic simple.
		t := time.AfterFunc(timeout, func() { r.cond.Broadcast() })
		defer t.Stop()
	}
	if cancel != nil {
		// A watcher broadcast releases the waiter on cancellation. The
		// lock acquisition orders the broadcast after the waiter has
		// entered Wait (the waiter holds mu from its cancel check until
		// Wait releases it), so the wakeup cannot be lost.
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-cancel:
				r.mu.Lock()
				r.mu.Unlock() //nolint:staticcheck // empty section orders the broadcast
				r.cond.Broadcast()
			case <-done:
			}
		}()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		// The cancel check precedes the take so a withdrawal whose
		// exchange already died never races a fresh deposit to the bits.
		if cancel != nil {
			select {
			case <-cancel:
				return nil, ErrCanceled
			default:
			}
		}
		bits, err := r.takeLocked(n)
		if err == nil {
			return bits, nil
		}
		if errors.Is(err, ErrClosed) {
			return nil, err
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return nil, ErrTimeout
		}
		r.cond.Wait()
	}
}

// Close shuts the reservoir; all blocked and future consumers fail with
// ErrClosed. Remaining bits are discarded (they are secrets; callers
// that want them must drain first).
func (r *Reservoir) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	r.buf = bitarray.New(0)
	r.head = 0
	r.cond.Broadcast()
}

// takeLocked removes n bits if possible. Caller holds mu.
func (r *Reservoir) takeLocked(n int) (*bitarray.BitArray, error) {
	if r.closed {
		return nil, ErrClosed
	}
	if n < 0 {
		return nil, errors.New("keypool: negative request")
	}
	if r.buf.Len()-r.head < n {
		return nil, ErrExhausted
	}
	out := r.buf.Slice(r.head, r.head+n)
	r.head += n
	r.consumed += uint64(n)
	r.compactLocked()
	return out, nil
}

// compactLocked drops consumed head bits once they dominate the buffer,
// keeping memory proportional to live bits.
func (r *Reservoir) compactLocked() {
	if r.head > 4096 && r.head*2 > r.buf.Len() {
		r.buf = r.buf.Slice(r.head, r.buf.Len())
		r.head = 0
	}
}
