package keypool

import (
	"errors"
	"sync"
	"testing"
	"time"

	"qkd/internal/bitarray"
	"qkd/internal/rng"
)

func TestDepositConsumeFIFO(t *testing.T) {
	r := New()
	bits := rng.NewSplitMix64(1).Bits(256)
	r.Deposit(bits)
	if r.Available() != 256 {
		t.Fatalf("Available = %d", r.Available())
	}
	a, err := r.TryConsume(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.TryConsume(156)
	if err != nil {
		t.Fatal(err)
	}
	joined := a.Clone()
	joined.AppendAll(b)
	if !joined.Equal(bits) {
		t.Error("consumed bits not FIFO-ordered")
	}
	if r.Available() != 0 {
		t.Errorf("Available = %d after draining", r.Available())
	}
}

func TestTryConsumeAllOrNothing(t *testing.T) {
	r := New()
	r.Deposit(bitarray.New(50))
	if _, err := r.TryConsume(51); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	// The 50 bits must still be there.
	if r.Available() != 50 {
		t.Errorf("partial consumption occurred: %d left", r.Available())
	}
}

func TestConsumeBlocksUntilDeposit(t *testing.T) {
	r := New()
	done := make(chan *bitarray.BitArray, 1)
	go func() {
		bits, err := r.Consume(64, time.Second)
		if err != nil {
			t.Errorf("Consume: %v", err)
		}
		done <- bits
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("Consume returned before deposit")
	default:
	}
	r.Deposit(rng.NewSplitMix64(2).Bits(64))
	select {
	case bits := <-done:
		if bits.Len() != 64 {
			t.Errorf("got %d bits", bits.Len())
		}
	case <-time.After(time.Second):
		t.Fatal("Consume never returned")
	}
}

func TestConsumeTimeout(t *testing.T) {
	r := New()
	start := time.Now()
	_, err := r.Consume(10, 50*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Error("returned before the deadline")
	}
}

func TestClose(t *testing.T) {
	r := New()
	r.Deposit(bitarray.New(100))
	blocked := make(chan error, 1)
	go func() {
		_, err := r.Consume(1000, 0)
		blocked <- err
	}()
	time.Sleep(10 * time.Millisecond)
	r.Close()
	if err := <-blocked; !errors.Is(err, ErrClosed) {
		t.Errorf("blocked consumer got %v", err)
	}
	if _, err := r.TryConsume(1); !errors.Is(err, ErrClosed) {
		t.Errorf("TryConsume after close: %v", err)
	}
	// Deposits after close are dropped.
	r.Deposit(bitarray.New(10))
	if r.Available() != 0 {
		t.Error("deposit accepted after close")
	}
}

func TestStats(t *testing.T) {
	r := New()
	r.Deposit(bitarray.New(300))
	r.TryConsume(100)
	dep, con := r.Stats()
	if dep != 300 || con != 100 {
		t.Errorf("Stats = %d, %d", dep, con)
	}
}

func TestManySmallConsumers(t *testing.T) {
	// Concurrent consumers each get disjoint material totaling the
	// deposit exactly.
	r := New()
	const workers = 8
	const per = 64
	var wg sync.WaitGroup
	results := make([]*bitarray.BitArray, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bits, err := r.Consume(per, 2*time.Second)
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
				return
			}
			results[i] = bits
		}(i)
	}
	src := rng.NewSplitMix64(3).Bits(workers * per)
	r.Deposit(src)
	wg.Wait()
	// Every worker got per bits; total matches.
	total := 0
	for i, b := range results {
		if b == nil {
			t.Fatalf("worker %d got nothing", i)
		}
		total += b.Len()
	}
	if total != workers*per {
		t.Errorf("total consumed %d", total)
	}
	if r.Available() != 0 {
		t.Errorf("leftover %d", r.Available())
	}
}

func TestCompaction(t *testing.T) {
	// Heavy churn must not grow memory: exercise the compaction path
	// and verify FIFO integrity across it.
	r := New()
	gen := rng.NewSplitMix64(4)
	var expect *bitarray.BitArray = bitarray.New(0)
	got := bitarray.New(0)
	for i := 0; i < 50; i++ {
		chunk := gen.Bits(1000)
		expect.AppendAll(chunk)
		r.Deposit(chunk)
		out, err := r.TryConsume(900)
		if err != nil {
			t.Fatal(err)
		}
		got.AppendAll(out)
	}
	rest, err := r.TryConsume(r.Available())
	if err != nil {
		t.Fatal(err)
	}
	got.AppendAll(rest)
	if !got.Equal(expect) {
		t.Error("compaction corrupted FIFO order")
	}
}

func TestZeroConsume(t *testing.T) {
	r := New()
	bits, err := r.TryConsume(0)
	if err != nil || bits.Len() != 0 {
		t.Errorf("TryConsume(0) = %v, %v", bits, err)
	}
}

func BenchmarkDepositConsume(b *testing.B) {
	r := New()
	chunk := rng.NewSplitMix64(1).Bits(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Deposit(chunk)
		if _, err := r.TryConsume(4096); err != nil {
			b.Fatal(err)
		}
	}
}

func TestConsumeCancelable(t *testing.T) {
	r := New()
	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := r.ConsumeCancelable(128, time.Second, cancel)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the consumer block
	close(cancel)
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("got %v, want ErrCanceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("canceled consumer did not return")
	}
	// The canceled withdrawal must not race a subsequent deposit: bits
	// deposited after the cancel remain fully available.
	r.Deposit(bitarray.New(256))
	if got := r.Available(); got != 256 {
		t.Fatalf("canceled consumer ate the deposit: %d bits left", got)
	}
}

func TestConsumeCancelableAlreadyCanceled(t *testing.T) {
	r := New()
	r.Deposit(bitarray.New(128))
	cancel := make(chan struct{})
	close(cancel)
	// A pre-canceled withdrawal must refuse even available bits.
	if _, err := r.ConsumeCancelable(64, 0, cancel); !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if r.Available() != 128 {
		t.Fatal("pre-canceled consume still took bits")
	}
}

func TestConsumeNilCancelStillTimesOut(t *testing.T) {
	r := New()
	start := time.Now()
	if _, err := r.ConsumeCancelable(64, 20*time.Millisecond, nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout wildly overshot")
	}
}
