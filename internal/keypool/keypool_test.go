package keypool

import (
	"errors"
	"sync"
	"testing"
	"time"

	"qkd/internal/bitarray"
	"qkd/internal/rng"
)

func TestDepositConsumeFIFO(t *testing.T) {
	r := New()
	bits := rng.NewSplitMix64(1).Bits(256)
	r.Deposit(bits)
	if r.Available() != 256 {
		t.Fatalf("Available = %d", r.Available())
	}
	a, err := r.TryConsume(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.TryConsume(156)
	if err != nil {
		t.Fatal(err)
	}
	joined := a.Clone()
	joined.AppendAll(b)
	if !joined.Equal(bits) {
		t.Error("consumed bits not FIFO-ordered")
	}
	if r.Available() != 0 {
		t.Errorf("Available = %d after draining", r.Available())
	}
}

func TestTryConsumeAllOrNothing(t *testing.T) {
	r := New()
	r.Deposit(bitarray.New(50))
	if _, err := r.TryConsume(51); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	// The 50 bits must still be there.
	if r.Available() != 50 {
		t.Errorf("partial consumption occurred: %d left", r.Available())
	}
}

func TestConsumeBlocksUntilDeposit(t *testing.T) {
	r := New()
	done := make(chan *bitarray.BitArray, 1)
	go func() {
		bits, err := r.Consume(64, time.Second)
		if err != nil {
			t.Errorf("Consume: %v", err)
		}
		done <- bits
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("Consume returned before deposit")
	default:
	}
	r.Deposit(rng.NewSplitMix64(2).Bits(64))
	select {
	case bits := <-done:
		if bits.Len() != 64 {
			t.Errorf("got %d bits", bits.Len())
		}
	case <-time.After(time.Second):
		t.Fatal("Consume never returned")
	}
}

func TestConsumeTimeout(t *testing.T) {
	r := New()
	start := time.Now()
	_, err := r.Consume(10, 50*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Error("returned before the deadline")
	}
}

func TestClose(t *testing.T) {
	r := New()
	r.Deposit(bitarray.New(100))
	blocked := make(chan error, 1)
	go func() {
		_, err := r.Consume(1000, 0)
		blocked <- err
	}()
	time.Sleep(10 * time.Millisecond)
	r.Close()
	if err := <-blocked; !errors.Is(err, ErrClosed) {
		t.Errorf("blocked consumer got %v", err)
	}
	if _, err := r.TryConsume(1); !errors.Is(err, ErrClosed) {
		t.Errorf("TryConsume after close: %v", err)
	}
	// Deposits after close are dropped.
	r.Deposit(bitarray.New(10))
	if r.Available() != 0 {
		t.Error("deposit accepted after close")
	}
}

func TestStats(t *testing.T) {
	r := New()
	r.Deposit(bitarray.New(300))
	r.TryConsume(100)
	dep, con := r.Stats()
	if dep != 300 || con != 100 {
		t.Errorf("Stats = %d, %d", dep, con)
	}
}

func TestManySmallConsumers(t *testing.T) {
	// Concurrent consumers each get disjoint material totaling the
	// deposit exactly.
	r := New()
	const workers = 8
	const per = 64
	var wg sync.WaitGroup
	results := make([]*bitarray.BitArray, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bits, err := r.Consume(per, 2*time.Second)
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
				return
			}
			results[i] = bits
		}(i)
	}
	src := rng.NewSplitMix64(3).Bits(workers * per)
	r.Deposit(src)
	wg.Wait()
	// Every worker got per bits; total matches.
	total := 0
	for i, b := range results {
		if b == nil {
			t.Fatalf("worker %d got nothing", i)
		}
		total += b.Len()
	}
	if total != workers*per {
		t.Errorf("total consumed %d", total)
	}
	if r.Available() != 0 {
		t.Errorf("leftover %d", r.Available())
	}
}

func TestCompaction(t *testing.T) {
	// Heavy churn must not grow memory: exercise the compaction path
	// and verify FIFO integrity across it.
	r := New()
	gen := rng.NewSplitMix64(4)
	var expect *bitarray.BitArray = bitarray.New(0)
	got := bitarray.New(0)
	for i := 0; i < 50; i++ {
		chunk := gen.Bits(1000)
		expect.AppendAll(chunk)
		r.Deposit(chunk)
		out, err := r.TryConsume(900)
		if err != nil {
			t.Fatal(err)
		}
		got.AppendAll(out)
	}
	rest, err := r.TryConsume(r.Available())
	if err != nil {
		t.Fatal(err)
	}
	got.AppendAll(rest)
	if !got.Equal(expect) {
		t.Error("compaction corrupted FIFO order")
	}
}

func TestZeroConsume(t *testing.T) {
	r := New()
	bits, err := r.TryConsume(0)
	if err != nil || bits.Len() != 0 {
		// Report the length, not the bits: key material must not reach
		// test logs (keytaint).
		t.Errorf("TryConsume(0): len=%d, err=%v", bits.Len(), err)
	}
}

func BenchmarkDepositConsume(b *testing.B) {
	r := New()
	chunk := rng.NewSplitMix64(1).Bits(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Deposit(chunk)
		if _, err := r.TryConsume(4096); err != nil {
			b.Fatal(err)
		}
	}
}

func TestConsumeCancelable(t *testing.T) {
	r := New()
	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := r.ConsumeCancelable(128, time.Second, cancel)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the consumer block
	close(cancel)
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("got %v, want ErrCanceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("canceled consumer did not return")
	}
	// The canceled withdrawal must not race a subsequent deposit: bits
	// deposited after the cancel remain fully available.
	r.Deposit(bitarray.New(256))
	if got := r.Available(); got != 256 {
		t.Fatalf("canceled consumer ate the deposit: %d bits left", got)
	}
}

func TestConsumeCancelableAlreadyCanceled(t *testing.T) {
	r := New()
	r.Deposit(bitarray.New(128))
	cancel := make(chan struct{})
	close(cancel)
	// A pre-canceled withdrawal must refuse even available bits.
	if _, err := r.ConsumeCancelable(64, 0, cancel); !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if r.Available() != 128 {
		t.Fatal("pre-canceled consume still took bits")
	}
}

func TestConsumeNilCancelStillTimesOut(t *testing.T) {
	r := New()
	start := time.Now()
	if _, err := r.ConsumeCancelable(64, 20*time.Millisecond, nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout wildly overshot")
	}
}

func TestFIFOFairnessLargeHeadNotStarved(t *testing.T) {
	// A large withdrawal arrives first; a stream of small later
	// arrivals must not steal its deposits (the thundering-herd
	// starvation of the old Broadcast design).
	r := New()
	bigDone := make(chan *bitarray.BitArray, 1)
	go func() {
		bits, err := r.Consume(1024, 5*time.Second)
		if err != nil {
			t.Errorf("large consumer: %v", err)
		}
		bigDone <- bits
	}()
	// Wait until the large ticket is queued.
	for {
		r.mu.Lock()
		queued := len(r.waiters) == 1
		r.mu.Unlock()
		if queued {
			break
		}
		time.Sleep(time.Millisecond)
	}
	const smalls = 16
	smallErrs := make(chan error, smalls)
	for i := 0; i < smalls; i++ {
		go func() {
			_, err := r.Consume(64, 5*time.Second)
			smallErrs <- err
		}()
	}
	// Trickle in deposits smaller than the large request but large
	// enough for any small one. The large head must absorb them all.
	for i := 0; i < 7; i++ {
		r.Deposit(rng.NewSplitMix64(uint64(i)).Bits(128))
		time.Sleep(2 * time.Millisecond)
		select {
		case <-bigDone:
			t.Fatal("large consumer returned before enough bits were deposited")
		default:
		}
	}
	r.Deposit(rng.NewSplitMix64(7).Bits(128)) // 8th chunk completes the head
	select {
	case bits := <-bigDone:
		if bits.Len() != 1024 {
			t.Fatalf("large consumer got %d bits", bits.Len())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("large head starved: smaller later arrivals ate its deposits")
	}
	// Now feed the smalls.
	r.Deposit(rng.NewSplitMix64(99).Bits(smalls * 64))
	for i := 0; i < smalls; i++ {
		if err := <-smallErrs; err != nil {
			t.Fatalf("small consumer: %v", err)
		}
	}
}

func TestFIFOServiceOrder(t *testing.T) {
	// Tickets are served in arrival order: with sequential deposits
	// exactly matching each ticket, waiter i receives the i-th chunk.
	r := New()
	const n = 8
	type res struct {
		idx  int
		bits *bitarray.BitArray
	}
	results := make(chan res, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			bits, err := r.Consume(64, 5*time.Second)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results <- res{i, bits}
		}()
		// Ensure waiter i is queued before launching i+1 so arrival
		// order is deterministic.
		for {
			r.mu.Lock()
			queued := len(r.waiters) == i+1
			r.mu.Unlock()
			if queued {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	src := rng.NewSplitMix64(7).Bits(n * 64)
	r.Deposit(src)
	got := make(map[int]*bitarray.BitArray)
	for i := 0; i < n; i++ {
		rr := <-results
		got[rr.idx] = rr.bits
	}
	for i := 0; i < n; i++ {
		want := src.Slice(i*64, (i+1)*64)
		if got[i] == nil || !got[i].Equal(want) {
			t.Fatalf("waiter %d did not receive the %d-th FIFO chunk", i, i)
		}
	}
}

func TestConcurrentConservationStress(t *testing.T) {
	// Many mixed-size blocking consumers against many depositors, under
	// -race: every deposited bit is consumed exactly once (exact
	// conservation) and nobody starves.
	r := New()
	sizes := []int{16, 64, 256, 1024}
	const perSize = 8
	const rounds = 6
	var want uint64
	for _, sz := range sizes {
		want += uint64(sz) * perSize * rounds
	}
	var got uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, sz := range sizes {
		for w := 0; w < perSize; w++ {
			wg.Add(1)
			go func(sz int) {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					bits, err := r.Consume(sz, 30*time.Second)
					if err != nil {
						t.Errorf("consume %d: %v", sz, err)
						return
					}
					mu.Lock()
					got += uint64(bits.Len())
					mu.Unlock()
				}
			}(sz)
		}
	}
	// Depositors trickle the exact total in odd-sized chunks.
	var dwg sync.WaitGroup
	const depositors = 4
	per := want / depositors
	for d := 0; d < depositors; d++ {
		dwg.Add(1)
		go func(d int) {
			defer dwg.Done()
			gen := rng.NewSplitMix64(uint64(d) + 1)
			left := int(per)
			for left > 0 {
				chunk := 100 + int(gen.Uint64()%400)
				if chunk > left {
					chunk = left
				}
				r.Deposit(gen.Bits(chunk))
				left -= chunk
			}
		}(d)
	}
	dwg.Wait()
	wg.Wait()
	if got != want {
		t.Fatalf("conservation violated: consumed %d of %d deposited bits", got, want)
	}
	dep, con := r.Stats()
	if dep != want || con != want {
		t.Fatalf("Stats = %d deposited / %d consumed, want %d / %d", dep, con, want, want)
	}
	if r.Available() != 0 {
		t.Fatalf("leftover %d bits", r.Available())
	}
}

func TestTryConsumeDefersToQueuedWaiters(t *testing.T) {
	// While a blocked ticket is queued, TryConsume must not jump the
	// FIFO queue even when the balance could satisfy it.
	r := New()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := r.Consume(256, 5*time.Second); err != nil {
			t.Errorf("queued consumer: %v", err)
		}
	}()
	for {
		r.mu.Lock()
		queued := len(r.waiters) == 1
		r.mu.Unlock()
		if queued {
			break
		}
		time.Sleep(time.Millisecond)
	}
	r.Deposit(bitarray.New(64)) // not enough for the head
	if _, err := r.TryConsume(64); !errors.Is(err, ErrExhausted) {
		t.Fatalf("TryConsume jumped the queue: %v", err)
	}
	r.Deposit(bitarray.New(192))
	<-done
	if _, err := r.TryConsume(0); err != nil {
		t.Fatalf("empty queue TryConsume: %v", err)
	}
}

func TestAbandonedHeadUnblocksTail(t *testing.T) {
	// When a large head withdrawal times out, smaller tickets behind it
	// must be served from the balance it was hoarding.
	r := New()
	headErr := make(chan error, 1)
	go func() {
		_, err := r.Consume(4096, 50*time.Millisecond)
		headErr <- err
	}()
	for {
		r.mu.Lock()
		queued := len(r.waiters) == 1
		r.mu.Unlock()
		if queued {
			break
		}
		time.Sleep(time.Millisecond)
	}
	tailBits := make(chan *bitarray.BitArray, 1)
	go func() {
		bits, err := r.Consume(128, 5*time.Second)
		if err != nil {
			t.Errorf("tail: %v", err)
		}
		tailBits <- bits
	}()
	for {
		r.mu.Lock()
		queued := len(r.waiters) == 2
		r.mu.Unlock()
		if queued {
			break
		}
		time.Sleep(time.Millisecond)
	}
	r.Deposit(bitarray.New(128)) // satisfies tail, not head
	if err := <-headErr; !errors.Is(err, ErrTimeout) {
		t.Fatalf("head: %v, want ErrTimeout", err)
	}
	select {
	case bits := <-tailBits:
		if bits.Len() != 128 {
			t.Fatalf("tail got %d bits", bits.Len())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("tail not served after head abandoned")
	}
}

// ---------------------------------------------------------------------
// Reservations
// ---------------------------------------------------------------------

func TestReserveConsumeRelease(t *testing.T) {
	r := New()
	src := rng.NewSplitMix64(9).Bits(1024)
	r.Deposit(src)
	rv, err := r.Reserve(512)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Available(); got != 512 {
		t.Errorf("Available = %d after reserving 512 of 1024", got)
	}
	if got := r.Reserved(); got != 512 {
		t.Errorf("Reserved = %d, want 512", got)
	}
	// Draw half, refund the rest.
	bits, err := rv.Consume(256)
	if err != nil {
		t.Fatal(err)
	}
	if !bits.Equal(src.Slice(0, 256)) {
		t.Error("reservation served out of FIFO order")
	}
	if rem := rv.Remaining(); rem != 256 {
		t.Errorf("Remaining = %d, want 256", rem)
	}
	rv.Release()
	if got := r.Available(); got != 768 {
		t.Errorf("Available = %d after refund, want 768", got)
	}
	if got := r.Refunded(); got != 256 {
		t.Errorf("Refunded = %d, want 256", got)
	}
	// The refund lands at the *front*: the next consumer sees exactly
	// the bits the reservation would have.
	next, err := r.TryConsume(256)
	if err != nil {
		t.Fatal(err)
	}
	if !next.Equal(src.Slice(256, 512)) {
		t.Error("refund did not return to the front of the reservoir")
	}
	if _, c := r.Stats(); c != 512 {
		t.Errorf("consumed = %d, want only the 256 drawn + 256 TryConsumed", c)
	}
}

func TestReserveFailsWithoutDraining(t *testing.T) {
	r := New()
	r.Deposit(rng.NewSplitMix64(3).Bits(100))
	//lint:ignore reservepair Reserve must fail here (101 > 100 deposited); a non-nil reservation would already be a bug the Fatalf reports
	if _, err := r.Reserve(101); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	if got := r.Available(); got != 100 {
		t.Errorf("failed Reserve drained the pool to %d", got)
	}
}

func TestReserveDefersToQueuedWaiters(t *testing.T) {
	r := New()
	r.Deposit(rng.NewSplitMix64(4).Bits(256))
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Consume(1024, 5*time.Second) // blocks: only 256 on hand
	}()
	for {
		r.mu.Lock()
		queued := len(r.waiters) == 1
		r.mu.Unlock()
		if queued {
			break
		}
		time.Sleep(time.Millisecond)
	}
	//lint:ignore reservepair Reserve must fail while a waiter is queued; a non-nil reservation would already be a bug the Fatalf reports
	if _, err := r.Reserve(64); !errors.Is(err, ErrExhausted) {
		t.Fatalf("Reserve jumped the waiter queue: %v", err)
	}
	r.Deposit(rng.NewSplitMix64(5).Bits(768))
	<-done
}

func TestReleaseWakesWaiters(t *testing.T) {
	r := New()
	r.Deposit(rng.NewSplitMix64(6).Bits(512))
	rv, err := r.Reserve(512)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan *bitarray.BitArray, 1)
	go func() {
		bits, err := r.Consume(512, 5*time.Second)
		if err != nil {
			t.Errorf("waiter: %v", err)
		}
		got <- bits
	}()
	for {
		r.mu.Lock()
		queued := len(r.waiters) == 1
		r.mu.Unlock()
		if queued {
			break
		}
		time.Sleep(time.Millisecond)
	}
	rv.Release()
	select {
	case bits := <-got:
		if bits.Len() != 512 {
			t.Errorf("waiter got %d bits", bits.Len())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("refund did not wake the blocked waiter")
	}
}

func TestReservationCloseRefundsAndIsIdempotent(t *testing.T) {
	r := New()
	r.Deposit(rng.NewSplitMix64(42).Bits(512))
	rv, err := r.Reserve(512)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rv.Consume(128); err != nil {
		t.Fatal(err)
	}
	if err := rv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := r.Available(); got != 384 {
		t.Errorf("Available after Close = %d, want the 384 undrawn bits refunded", got)
	}
	if got := r.Refunded(); got != 384 {
		t.Errorf("Refunded = %d, want 384", got)
	}
	// Close after Close (the defer idiom racing an explicit Release) is
	// a no-op: no double refund.
	if err := rv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if got := r.Refunded(); got != 384 {
		t.Errorf("Refunded after double Close = %d, want still 384", got)
	}
}

func TestCloseVoidsReservations(t *testing.T) {
	r := New()
	r.Deposit(rng.NewSplitMix64(7).Bits(512))
	rv, err := r.Reserve(256)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if _, err := rv.Consume(128); !errors.Is(err, ErrClosed) {
		t.Fatalf("consume from voided reservation: %v, want ErrClosed", err)
	}
	if rem := rv.Remaining(); rem != 0 {
		t.Errorf("voided reservation still reports %d bits", rem)
	}
	rv.Release() // must not resurrect bits into the closed pool
	if got := r.Available(); got != 0 {
		t.Errorf("release into closed pool left %d bits", got)
	}
}

func TestReservationOverdraw(t *testing.T) {
	r := New()
	r.Deposit(rng.NewSplitMix64(8).Bits(128))
	rv, err := r.Reserve(128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rv.Consume(129); !errors.Is(err, ErrExhausted) {
		t.Fatalf("overdraw: %v, want ErrExhausted", err)
	}
	if _, err := rv.Consume(128); err != nil {
		t.Fatalf("full draw after failed overdraw: %v", err)
	}
	// Fully drawn: release is a no-op.
	rv.Release()
	if got := r.Available(); got != 0 {
		t.Errorf("Available = %d after full draw", got)
	}
}

func TestConcurrentReserveReleaseRefundStress(t *testing.T) {
	// Reservers racing blocking consumers under -race: each reservation
	// draws a third of its bits and refunds the rest to the front via
	// Release, the refunds wake queued withdrawals, and the buffer is
	// rebuilt on every front-refund while consumers are mid-wait. At
	// quiesce every deposited bit is either consumed exactly once or
	// still available — exact conservation — and the refund ledger
	// matches the undrawn remainders to the bit.
	r := New()
	const (
		reservers = 8
		resRounds = 40
		resBits   = 96
		drawBits  = 32 // per reservation; the other 64 are refunded

		consumers = 8
		conRounds = 20
		conBits   = 64

		slack = 512 // keeps the tail reserver from starving
	)
	const (
		wantDrawn    = reservers * resRounds * drawBits
		wantConsumed = consumers * conRounds * conBits
		wantRefunded = reservers * resRounds * (resBits - drawBits)
		total        = wantDrawn + wantConsumed + slack
	)

	var wg sync.WaitGroup
	for i := 0; i < reservers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < resRounds; {
				rv, err := r.Reserve(resBits)
				if errors.Is(err, ErrExhausted) {
					// Drained, or blocked withdrawals hold the queue;
					// depositors and releases will clear it.
					time.Sleep(50 * time.Microsecond)
					continue
				}
				if err != nil {
					t.Errorf("reserve: %v", err)
					return
				}
				if _, err := rv.Consume(drawBits); err != nil {
					t.Errorf("reservation draw: %v", err)
					return
				}
				rv.Release()
				round++
			}
		}()
	}
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < conRounds; round++ {
				if _, err := r.Consume(conBits, 30*time.Second); err != nil {
					t.Errorf("consume: %v", err)
					return
				}
			}
		}()
	}
	const depositors = 4
	for d := 0; d < depositors; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			gen := rng.NewSplitMix64(uint64(d) + 0xF00D)
			left := total / depositors
			for left > 0 {
				chunk := 64 + int(gen.Uint64()%256)
				if chunk > left {
					chunk = left
				}
				r.Deposit(gen.Bits(chunk))
				left -= chunk
			}
		}(d)
	}
	wg.Wait()

	dep, con := r.Stats()
	if dep != total {
		t.Errorf("deposited %d, want %d", dep, total)
	}
	if con != wantDrawn+wantConsumed {
		t.Errorf("consumed %d, want %d drawn + %d consumed", con, wantDrawn, wantConsumed)
	}
	if got := r.Refunded(); got != wantRefunded {
		t.Errorf("Refunded = %d, want %d", got, wantRefunded)
	}
	if got := r.Reserved(); got != 0 {
		t.Errorf("Reserved = %d after all releases", got)
	}
	if got := r.Available(); got != slack {
		t.Errorf("Available = %d at quiesce, want %d: conservation violated", got, slack)
	}
}
