// Package chaos schedules and injects compound faults into a running
// QKD-VPN fabric. The paper's network survived single faults by design
// (mesh failover, DTN-style key custody, per-lifetime rollover); this
// package exists to compose those faults — a fiber cut DURING an
// eavesdrop storm DURING a key-delivery overload — and to do so
// reproducibly: a Schedule is planned deterministically from a seed, so
// the same seed replays the same fault interleaving against the same
// workload trace.
//
// The package deliberately knows nothing about the fabric it shakes:
// an Event names a fault kind, a start tick, a duration and an opaque
// target index, and the experiment wires Kind-specific begin/end hooks
// into an Injector (cut this relay link, start tapping that gateway
// pair, flood this KDS). That keeps chaos dependency-free and lets any
// layer register for the faults it models.
package chaos

import (
	"fmt"
	"sort"
	"strings"

	"qkd/internal/rng"
)

// Kind enumerates the fault archetypes the harness can inject. Each
// maps onto a primitive the stack already models.
type Kind int

const (
	// FiberCut severs a trusted-relay span mid key transport.
	FiberCut Kind = iota
	// EveStorm runs an eavesdropper burst over the dataplane: packets
	// captured (for later replay) and a fraction tampered or dropped.
	EveStorm
	// RelayCompromise marks one trusted relay as hostile; striping must
	// keep its key exposure at zero.
	RelayCompromise
	// KDSOverload floods the key delivery service with low-class
	// allocation pressure, forcing QoS sheds and degraded modes.
	KDSOverload
	// GatewayRestart crash-restarts one gateway, losing its SAD and any
	// in-flight negotiations. Instantaneous (duration 0): recovery is
	// the system's job, not the scheduler's.
	GatewayRestart
	numKinds
)

func (k Kind) String() string {
	switch k {
	case FiberCut:
		return "fiber-cut"
	case EveStorm:
		return "eve-storm"
	case RelayCompromise:
		return "relay-compromise"
	case KDSOverload:
		return "kds-overload"
	case GatewayRestart:
		return "gateway-restart"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one scheduled fault: begin at tick At, end at tick At+For
// (For 0 means instantaneous — begin and end fire together). Target is
// a kind-specific index into whatever population the experiment
// registered (which span, which relay, which site).
type Event struct {
	Kind   Kind
	At     int
	For    int
	Target int
}

func (e Event) String() string {
	if e.For == 0 {
		return fmt.Sprintf("t=%-4d %-17s target=%d", e.At, e.Kind, e.Target)
	}
	return fmt.Sprintf("t=%-4d %-17s target=%d for %d ticks", e.At, e.Kind, e.Target, e.For)
}

// Schedule is a fault plan ordered by start tick.
type Schedule []Event

// String renders the plan one event per line (the README's sample
// fault schedule is printed with this).
func (s Schedule) String() string {
	var sb strings.Builder
	for _, e := range s {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Count reports how many events of kind k the schedule holds.
func (s Schedule) Count(k Kind) int {
	n := 0
	for _, e := range s {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// Config shapes a planned schedule.
type Config struct {
	// Seed drives every placement draw.
	Seed uint64
	// Horizon is the soak length in ticks events are placed within.
	Horizon int
	// Counts is the number of events to plan per kind. Kinds absent
	// from the map get none.
	Counts map[Kind]int
	// Targets is the population size per kind (events draw Target in
	// [0, Targets[kind])). Absent kinds default to 1 target.
	Targets map[Kind]int
}

// durFraction is each kind's fault duration as [min,max] fractions of
// the horizon. GatewayRestart is instantaneous.
func durFraction(k Kind) (lo, hi float64) {
	switch k {
	case FiberCut:
		return 0.06, 0.14
	case EveStorm:
		return 0.05, 0.10
	case RelayCompromise:
		return 0.10, 0.20
	case KDSOverload:
		return 0.04, 0.08
	}
	return 0, 0
}

// Plan lays out a deterministic fault schedule. Same Config (including
// Seed) always yields the identical Schedule. Events of the same kind
// never overlap: the usable window is partitioned into one slot per
// event and each event is jittered within its slot. Different kinds
// overlap freely — compounding faults is the point.
func Plan(cfg Config) Schedule {
	if cfg.Horizon <= 0 {
		cfg.Horizon = 1000
	}
	r := rng.NewSplitMix64(cfg.Seed ^ 0xC4A0_5_FA17)
	// Keep the first and last tenth quiet so faults always hit a
	// warmed-up fabric and recovery is observable before the soak ends.
	margin := cfg.Horizon / 10
	window := cfg.Horizon - 2*margin

	var sched Schedule
	// Iterate kinds in fixed order — map iteration would break
	// determinism.
	for k := Kind(0); k < numKinds; k++ {
		count := cfg.Counts[k]
		if count <= 0 {
			continue
		}
		targets := cfg.Targets[k]
		if targets <= 0 {
			targets = 1
		}
		slot := window / count
		lo, hi := durFraction(k)
		for i := 0; i < count; i++ {
			dur := 0
			if hi > 0 {
				f := lo + (hi-lo)*r.Float64()
				dur = int(f * float64(cfg.Horizon))
				if dur < 1 {
					dur = 1
				}
			}
			// Place the event within its slot, keeping its whole
			// duration inside the slot so same-kind events can't
			// overlap.
			room := slot - dur
			if room < 1 {
				room = 1
			}
			at := margin + i*slot + r.Intn(room)
			sched = append(sched, Event{Kind: k, At: at, For: dur, Target: r.Intn(targets)})
		}
	}
	sort.Slice(sched, func(i, j int) bool {
		if sched[i].At != sched[j].At {
			return sched[i].At < sched[j].At
		}
		return sched[i].Kind < sched[j].Kind
	})
	return sched
}

// Hooks are the experiment-side fault actions for one kind. End is
// never called before Begin for the same event; for instantaneous
// events both fire in the same Advance.
type Hooks struct {
	Begin func(Event)
	End   func(Event)
}

// Injector replays a Schedule against registered hooks as virtual time
// advances. Not safe for concurrent use; Advance it from the soak's
// driver loop.
type Injector struct {
	sched  Schedule // sorted by At
	hooks  [numKinds]Hooks
	next   int     // first event not yet begun
	active []Event // begun, not yet ended
}

// NewInjector wraps a schedule. The schedule must be sorted by At
// (Plan's output always is).
func NewInjector(s Schedule) *Injector {
	return &Injector{sched: s}
}

// On registers the begin/end hooks for one fault kind. Either hook may
// be nil. Events of unregistered kinds still begin and end — they just
// act on nothing.
func (inj *Injector) On(k Kind, begin, end func(Event)) {
	inj.hooks[k] = Hooks{Begin: begin, End: end}
}

// Advance moves virtual time to tick, firing every due end hook first
// (so a restored fiber can be re-cut in the same tick), then every due
// begin. It returns the events that began and ended.
func (inj *Injector) Advance(tick int) (began, ended []Event) {
	// Ends first.
	keep := inj.active[:0]
	for _, e := range inj.active {
		if e.At+e.For <= tick {
			if h := inj.hooks[e.Kind].End; h != nil {
				h(e)
			}
			ended = append(ended, e)
		} else {
			keep = append(keep, e)
		}
	}
	inj.active = keep

	// Then begins (an instantaneous event ends in the same call).
	for inj.next < len(inj.sched) && inj.sched[inj.next].At <= tick {
		e := inj.sched[inj.next]
		inj.next++
		if h := inj.hooks[e.Kind].Begin; h != nil {
			h(e)
		}
		began = append(began, e)
		if e.For == 0 || e.At+e.For <= tick {
			if h := inj.hooks[e.Kind].End; h != nil {
				h(e)
			}
			ended = append(ended, e)
		} else {
			inj.active = append(inj.active, e)
		}
	}
	return began, ended
}

// Active reports whether any event of kind k is currently in progress.
func (inj *Injector) Active(k Kind) bool {
	for _, e := range inj.active {
		if e.Kind == k {
			return true
		}
	}
	return false
}

// Done reports whether every scheduled event has begun and ended.
func (inj *Injector) Done() bool {
	return inj.next == len(inj.sched) && len(inj.active) == 0
}
