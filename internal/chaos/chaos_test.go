package chaos

import (
	"reflect"
	"testing"
)

func fullConfig(seed uint64) Config {
	return Config{
		Seed:    seed,
		Horizon: 1000,
		Counts: map[Kind]int{
			FiberCut:        2,
			EveStorm:        1,
			RelayCompromise: 1,
			KDSOverload:     2,
			GatewayRestart:  1,
		},
		Targets: map[Kind]int{FiberCut: 3, RelayCompromise: 3, GatewayRestart: 2},
	}
}

// The same seed must reproduce the identical schedule — the acceptance
// criterion every chaos soak's replayability rests on.
func TestPlanDeterministic(t *testing.T) {
	a := Plan(fullConfig(99))
	b := Plan(fullConfig(99))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%v\nvs\n%v", a, b)
	}
	c := Plan(fullConfig(100))
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical schedules")
	}
}

func TestPlanShape(t *testing.T) {
	cfg := fullConfig(7)
	s := Plan(cfg)
	for k, want := range cfg.Counts {
		if got := s.Count(k); got != want {
			t.Fatalf("%v: planned %d events, want %d", k, got, want)
		}
	}
	margin := cfg.Horizon / 10
	var lastAt int
	perKind := map[Kind][]Event{}
	for i, e := range s {
		if e.At < lastAt {
			t.Fatalf("schedule not sorted at %d: %v", i, s)
		}
		lastAt = e.At
		if e.At < margin || e.At+e.For > cfg.Horizon-margin+1 {
			t.Fatalf("event outside quiet margins: %v (horizon %d)", e, cfg.Horizon)
		}
		if tgts := cfg.Targets[e.Kind]; tgts > 0 && (e.Target < 0 || e.Target >= tgts) {
			t.Fatalf("target out of range: %v", e)
		}
		if e.Kind == GatewayRestart && e.For != 0 {
			t.Fatalf("gateway restart must be instantaneous: %v", e)
		}
		if e.Kind != GatewayRestart && e.For == 0 {
			t.Fatalf("durable fault with zero duration: %v", e)
		}
		perKind[e.Kind] = append(perKind[e.Kind], e)
	}
	// Same-kind events never overlap.
	for k, evs := range perKind {
		for i := 1; i < len(evs); i++ {
			if evs[i].At < evs[i-1].At+evs[i-1].For {
				t.Fatalf("%v events overlap: %v then %v", k, evs[i-1], evs[i])
			}
		}
	}
}

// Every event's hooks fire exactly once, ends never precede their
// begins, and ends due at a tick fire before that tick's begins.
func TestInjectorFiresHooks(t *testing.T) {
	s := Plan(fullConfig(21))
	inj := NewInjector(s)
	type firing struct {
		e     Event
		begin bool
		tick  int
	}
	var log []firing
	tick := 0
	for k := Kind(0); k < numKinds; k++ {
		k := k
		inj.On(k,
			func(e Event) { log = append(log, firing{e, true, tick}) },
			func(e Event) { log = append(log, firing{e, false, tick}) })
	}
	for ; tick <= 1100 && !inj.Done(); tick++ {
		inj.Advance(tick)
	}
	if !inj.Done() {
		t.Fatalf("injector not done after horizon+slack")
	}
	begun := map[Event]int{}
	endedAt := map[Event]int{}
	for _, f := range log {
		if f.begin {
			begun[f.e]++
			if f.tick != f.e.At {
				t.Fatalf("begin fired at tick %d, want %d: %v", f.tick, f.e.At, f.e)
			}
		} else {
			if begun[f.e] == 0 {
				t.Fatalf("end before begin: %v", f.e)
			}
			endedAt[f.e] = f.tick
			if want := f.e.At + f.e.For; f.tick != want {
				t.Fatalf("end fired at tick %d, want %d: %v", f.tick, want, f.e)
			}
		}
	}
	for _, e := range s {
		if begun[e] != 1 {
			t.Fatalf("event began %d times: %v", begun[e], e)
		}
		if _, ok := endedAt[e]; !ok {
			t.Fatalf("event never ended: %v", e)
		}
	}
}

// A coarse driver loop that skips ticks must still fire every hook —
// begins catch up, and an event whose whole lifetime fits in the gap
// begins and ends in the same Advance.
func TestInjectorCoarseAdvance(t *testing.T) {
	s := Schedule{
		{Kind: FiberCut, At: 10, For: 5},
		{Kind: GatewayRestart, At: 12, For: 0},
	}
	inj := NewInjector(s)
	var begins, ends int
	inj.On(FiberCut, func(Event) { begins++ }, func(Event) { ends++ })
	inj.On(GatewayRestart, func(Event) { begins++ }, func(Event) { ends++ })
	began, ended := inj.Advance(100)
	if len(began) != 2 || len(ended) != 2 || begins != 2 || ends != 2 {
		t.Fatalf("coarse advance: began=%d ended=%d hooks begin=%d end=%d",
			len(began), len(ended), begins, ends)
	}
	if !inj.Done() {
		t.Fatalf("injector should be done")
	}
}

func TestActive(t *testing.T) {
	inj := NewInjector(Schedule{{Kind: EveStorm, At: 5, For: 10}})
	inj.Advance(4)
	if inj.Active(EveStorm) {
		t.Fatalf("storm active before At")
	}
	inj.Advance(5)
	if !inj.Active(EveStorm) {
		t.Fatalf("storm not active during its window")
	}
	inj.Advance(15)
	if inj.Active(EveStorm) || !inj.Done() {
		t.Fatalf("storm still active after end")
	}
}
