package optical

import (
	"errors"
	"testing"

	"qkd/internal/core"
	"qkd/internal/photonics"
)

// fabric: alice - s1 - s2 - bob, with a bypass alice - s3 - bob.
func fabric(t *testing.T) *Mesh {
	t.Helper()
	m := NewMesh()
	m.AddEndpoint("alice")
	m.AddEndpoint("bob")
	m.AddSwitch("s1", 1.0)
	m.AddSwitch("s2", 1.0)
	m.AddSwitch("s3", 2.0)
	for _, c := range []struct {
		a, b string
		km   float64
	}{
		{"alice", "s1", 5}, {"s1", "s2", 5}, {"s2", "bob", 5},
		{"alice", "s3", 8}, {"s3", "bob", 8},
	} {
		if err := m.Connect(c.a, c.b, c.km); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestEstablishShortestPath(t *testing.T) {
	m := fabric(t)
	p, err := m.Establish("alice", "bob")
	if err != nil {
		t.Fatal(err)
	}
	// Fewest segments: alice-s3-bob (2 segments) beats the 3-segment
	// route.
	if p.Hops() != 1 || p.Nodes[1] != "s3" {
		t.Fatalf("path %v, want via s3", p.Nodes)
	}
	if p.FiberKm != 16 {
		t.Errorf("FiberKm = %v", p.FiberKm)
	}
	if p.SwitchDB != 2.0 {
		t.Errorf("SwitchDB = %v", p.SwitchDB)
	}
}

func TestSegmentsExclusive(t *testing.T) {
	m := fabric(t)
	p1, err := m.Establish("alice", "bob")
	if err != nil {
		t.Fatal(err)
	}
	// Second circuit must take the other route.
	p2, err := m.Establish("alice", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if p2.Hops() != 2 {
		t.Fatalf("second path %v should use s1-s2", p2.Nodes)
	}
	// Third has nothing left.
	if _, err := m.Establish("alice", "bob"); !errors.Is(err, ErrNoPath) {
		t.Fatalf("third circuit: %v, want ErrNoPath", err)
	}
	// Releasing frees capacity.
	p1.Release()
	if _, err := m.Establish("alice", "bob"); err != nil {
		t.Fatalf("after release: %v", err)
	}
	_ = p2
}

func TestCannotTransitEndpoint(t *testing.T) {
	m := NewMesh()
	m.AddEndpoint("a")
	m.AddEndpoint("b")
	m.AddEndpoint("c")
	m.Connect("a", "b", 1)
	m.Connect("b", "c", 1)
	// a..c only via endpoint b: not allowed (photons would be measured).
	if _, err := m.Establish("a", "c"); !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
}

func TestEndpointValidation(t *testing.T) {
	m := fabric(t)
	if _, err := m.Establish("s1", "bob"); !errors.Is(err, ErrNotEndpoint) {
		t.Errorf("switch as source: %v", err)
	}
	if _, err := m.Establish("ghost", "bob"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown source: %v", err)
	}
}

func TestSwitchLossDegradesLink(t *testing.T) {
	m := fabric(t)
	base := photonics.DefaultParams()
	base.FiberKm = 0                     // path supplies fiber
	p1, _ := m.Establish("alice", "bob") // via s3: 16 km + 2 dB
	p2, _ := m.Establish("alice", "bob") // via s1,s2: 15 km + 2 dB... adjust

	c1 := p1.ExpectedClickProb(base)
	direct := base
	direct.FiberKm = p1.FiberKm
	if c1 >= direct.ExpectedClickProb() {
		t.Error("switched path did not lose more than bare fiber")
	}
	_ = p2
}

func TestQKDOverCompositePath(t *testing.T) {
	m := fabric(t)
	p, err := m.Establish("alice", "bob")
	if err != nil {
		t.Fatal(err)
	}
	base := photonics.DefaultParams()
	base.FiberKm = 0
	base.SystemLossDB = 0
	base.DetectorEff = 1   // keep the test fast
	base.Visibility = 0.96 // ~2 % optical QBER so batches clear the entropy bar
	res, err := p.RunQKD(base, core.Config{BatchBits: 2048}, 60, 10000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.SiftedBits == 0 {
		t.Fatal("no sifted bits over composite path")
	}
	if res.DistilledBits == 0 {
		t.Fatal("no distilled key over composite path")
	}
}

func TestReachShrinksWithHops(t *testing.T) {
	// Chain of switches: each traversal costs 1.5 dB; the analytic
	// click rate must fall geometrically with hop count.
	m := NewMesh()
	m.AddEndpoint("a")
	m.AddEndpoint("b1")
	m.AddEndpoint("b2")
	m.AddEndpoint("b3")
	m.AddSwitch("x1", 1.5)
	m.AddSwitch("x2", 1.5)
	m.AddSwitch("x3", 1.5)
	m.Connect("a", "x1", 0)
	m.Connect("x1", "b1", 0)
	m.Connect("x1", "x2", 0)
	m.Connect("x2", "b2", 0)
	m.Connect("x2", "x3", 0)
	m.Connect("x3", "b3", 0)

	base := photonics.DefaultParams()
	base.FiberKm = 0
	base.SystemLossDB = 0
	base.DarkCountProb = 0

	var rates []float64
	for _, dst := range []string{"b1", "b2", "b3"} {
		p, err := m.Establish("a", dst)
		if err != nil {
			t.Fatal(err)
		}
		rates = append(rates, p.ExpectedClickProb(base))
		p.Release()
	}
	for i := 1; i < len(rates); i++ {
		ratio := rates[i] / rates[i-1]
		// 1.5 dB = factor 10^-0.15 ~ 0.708.
		if ratio < 0.65 || ratio > 0.76 {
			t.Errorf("hop %d->%d rate ratio %v, want ~0.708", i, i+1, ratio)
		}
	}
}

func BenchmarkEstablishRelease(b *testing.B) {
	m := NewMesh()
	m.AddEndpoint("a")
	m.AddEndpoint("z")
	for i := 0; i < 10; i++ {
		m.AddSwitch(string(rune('p'+i)), 1)
	}
	m.Connect("a", "p", 1)
	for i := 0; i < 9; i++ {
		m.Connect(string(rune('p'+i)), string(rune('p'+i+1)), 1)
	}
	m.Connect("y", "z", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := m.Establish("a", "z")
		if err != nil {
			b.Fatal(err)
		}
		p.Release()
	}
}
