// Package optical implements the untrusted photonic-switch network of
// Section 8: "unamplified photonic switches ... set up all-optical
// paths through the network mesh of fibers, switches, and endpoints.
// Thus a photon from its source QKD endpoint proceeds, without
// measurement, from switch to switch across the optical QKD network
// until it reaches the destination endpoint at which point it is
// detected."
//
// Untrusted switches never see key material — the trust win over relay
// meshes — but "each switch adds at least a fractional dB insertion
// loss along the photonic path", so reach shrinks with hop count: the
// trade experiment E10 quantifies by running the full QKD stack over
// composite paths.
package optical

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"qkd/internal/core"
	"qkd/internal/photonics"
)

// Errors.
var (
	ErrNoPath       = errors.New("optical: no path between endpoints")
	ErrUnknownNode  = errors.New("optical: unknown node")
	ErrNotEndpoint  = errors.New("optical: QKD must start and end at endpoints")
	ErrPathConflict = errors.New("optical: segment already claimed by another path")
)

// nodeKind distinguishes endpoints (QKD transmitters/receivers) from
// switches.
type nodeKind int

const (
	kindEndpoint nodeKind = iota
	kindSwitch
)

type node struct {
	name string
	kind nodeKind
	loss float64 // insertion loss dB (switches)
}

type segment struct {
	a, b    string
	km      float64
	claimed bool // held by an established light path
}

// Mesh is the switch fabric.
type Mesh struct {
	mu    sync.Mutex
	nodes map[string]*node
	segs  map[string]*segment
}

// NewMesh returns an empty fabric.
func NewMesh() *Mesh {
	return &Mesh{nodes: make(map[string]*node), segs: make(map[string]*segment)}
}

// AddEndpoint registers a QKD endpoint (source or detector suite).
func (m *Mesh) AddEndpoint(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nodes[name] = &node{name: name, kind: kindEndpoint}
}

// AddSwitch registers a MEMS-style switch with the given insertion
// loss per traversal.
func (m *Mesh) AddSwitch(name string, lossDB float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nodes[name] = &node{name: name, kind: kindSwitch, loss: lossDB}
}

func segKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// Connect lays km of dark fiber between two nodes.
func (m *Mesh) Connect(a, b string, km float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.nodes[a] == nil || m.nodes[b] == nil {
		return fmt.Errorf("%w: %s or %s", ErrUnknownNode, a, b)
	}
	m.segs[segKey(a, b)] = &segment{a: a, b: b, km: km}
	return nil
}

// Path is an established all-optical light path.
type Path struct {
	Nodes    []string
	FiberKm  float64
	SwitchDB float64 // total insertion loss from switches
	mesh     *Mesh
}

// Hops returns the number of switches traversed.
func (p *Path) Hops() int { return len(p.Nodes) - 2 }

// Release frees the path's fiber segments for other connections.
func (p *Path) Release() {
	p.mesh.mu.Lock()
	defer p.mesh.mu.Unlock()
	for i := 0; i+1 < len(p.Nodes); i++ {
		if s := p.mesh.segs[segKey(p.Nodes[i], p.Nodes[i+1])]; s != nil {
			s.claimed = false
		}
	}
}

// Establish sets up a light path between two endpoints, choosing the
// unclaimed route with the fewest segments (the distributed path-setup
// protocol of Section 8, centralized here). Interior nodes must be
// switches — photons are never measured mid-path. The path's segments
// are claimed exclusively: an all-optical circuit cannot be shared.
func (m *Mesh) Establish(src, dst string) (*Path, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, d := m.nodes[src], m.nodes[dst]
	if s == nil || d == nil {
		return nil, fmt.Errorf("%w: %s or %s", ErrUnknownNode, src, dst)
	}
	if s.kind != kindEndpoint || d.kind != kindEndpoint {
		return nil, ErrNotEndpoint
	}
	adj := make(map[string][]string)
	for _, seg := range m.segs {
		if seg.claimed {
			continue
		}
		adj[seg.a] = append(adj[seg.a], seg.b)
		adj[seg.b] = append(adj[seg.b], seg.a)
	}
	for _, peers := range adj {
		sort.Strings(peers)
	}
	// BFS that only transits switches.
	prev := map[string]string{src: src}
	queue := []string{src}
	found := false
	for len(queue) > 0 && !found {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if _, seen := prev[v]; seen {
				continue
			}
			if v != dst && m.nodes[v].kind != kindSwitch {
				continue // cannot transit another endpoint
			}
			prev[v] = u
			if v == dst {
				found = true
				break
			}
			queue = append(queue, v)
		}
	}
	if !found {
		return nil, ErrNoPath
	}
	var nodes []string
	for v := dst; ; v = prev[v] {
		nodes = append([]string{v}, nodes...)
		if v == src {
			break
		}
	}
	p := &Path{Nodes: nodes, mesh: m}
	for i := 0; i+1 < len(nodes); i++ {
		seg := m.segs[segKey(nodes[i], nodes[i+1])]
		seg.claimed = true
		p.FiberKm += seg.km
	}
	for _, name := range nodes[1 : len(nodes)-1] {
		p.SwitchDB += m.nodes[name].loss
	}
	return p, nil
}

// LinkParams derives the photonic parameters of the composite path:
// the base link's source and detectors, with the path's total fiber
// and the switches' insertion losses added to the system loss.
func (p *Path) LinkParams(base photonics.Params) photonics.Params {
	out := base
	out.FiberKm = p.FiberKm
	out.SystemLossDB = base.SystemLossDB + p.SwitchDB
	return out
}

// QKDResult summarizes an end-to-end QKD run over a path.
type QKDResult struct {
	Path          *Path
	SiftedBits    uint64
	DistilledBits uint64
	QBER          float64
	// SecretPerPulse is distilled bits per transmitted pulse.
	SecretPerPulse float64
}

// RunQKD runs the full protocol stack end to end over the path — the
// decisive property of untrusted networks is that this needs no trust
// in the switches, only more photons.
func (p *Path) RunQKD(base photonics.Params, cfg core.Config, frames, frameSlots int, seed uint64) (*QKDResult, error) {
	session := core.NewSession(p.LinkParams(base), cfg, frameSlots, seed)
	if err := session.RunFrames(frames); err != nil {
		return nil, err
	}
	am := session.Alice.Metrics()
	res := &QKDResult{
		Path:          p,
		SiftedBits:    am.SiftedBits,
		DistilledBits: am.DistilledBits,
		QBER:          am.LastQBER,
	}
	if am.PulsesSent > 0 {
		res.SecretPerPulse = float64(am.DistilledBits) / float64(am.PulsesSent)
	}
	return res, nil
}

// ExpectedClickProb returns the analytic per-pulse click probability
// over the path, for quick reach estimates without Monte Carlo.
func (p *Path) ExpectedClickProb(base photonics.Params) float64 {
	return p.LinkParams(base).ExpectedClickProb()
}

// ExpectedQBER returns the analytic QBER over the path.
func (p *Path) ExpectedQBER(base photonics.Params) float64 {
	return p.LinkParams(base).ExpectedQBER()
}
