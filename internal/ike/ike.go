// Package ike implements the key-agreement half of Section 7: an
// IKE-like daemon, modeled on the modified 'racoon' of the BBN system,
// that negotiates IPsec Security Associations whose keys are derived
// from quantum-distilled bits.
//
// The fidelity targets are the paper's extensions and the failure modes
// it calls out, not RFC 2409 bit-exactness:
//
//   - Phase 1 establishes an authenticated control channel from a
//     prepositioned shared secret (SKEYID = PRF(psk, Ni | Nr)); all
//     subsequent IKE traffic carries a PRF tag under it.
//   - Phase 2 ("quick mode") negotiates a pair of SAs per tunnel. The
//     QKD extension ("QPFS") has the initiator offer a number of
//     Qblocks — 1024-bit blocks of distilled key — which both ends
//     withdraw from their mirrored reservoirs and fold into the KEYMAT
//     PRF, reproducing the "KEYMAT using ... QBITS" path of Fig. 12.
//     One-time-pad tunnels instead withdraw whole pad blocks per
//     direction.
//   - Negotiations block (bounded by Phase2Timeout) while the reservoir
//     accumulates enough bits — the paper's observation that IKE's
//     default timeouts "may be too small for systems employing QKD",
//     and the lever for Eve's denial-of-service.
//   - There is deliberately NO detection of mismatched key pools: "IKE
//     has no mechanisms for noticing or dealing with such cases. The
//     result appears to be that all security associations that employ
//     key bits derived from this corrupted information will fail to
//     properly encrypt / decrypt traffic ... until the security
//     association is renewed." Experiment E8 reproduces exactly that.
package ike

import (
	"crypto/hmac"
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"qkd/internal/channel"
	"qkd/internal/ipsec"
	"qkd/internal/keypool"
	"qkd/internal/kms"
	"qkd/internal/rng"
)

// TIKE is the channel message type carrying IKE traffic.
const TIKE uint8 = 0x40

// QblockBits is the size of one negotiated QKD key block, matching the
// "1 Qblocks 1024 bits" of the paper's log extract.
const QblockBits = 1024

// Role distinguishes the link's designated negotiation initiator from
// the responder. Only the initiator originates Phase 2 exchanges; one
// negotiation installs SAs for both directions, so the responder never
// needs to originate (and mirrored key pools stay in lockstep).
type Role int

const (
	// Initiator originates Phase 1 and all Phase 2 negotiations.
	Initiator Role = iota
	// Responder answers them.
	Responder
)

func (r Role) String() string {
	if r == Initiator {
		return "initiator"
	}
	return "responder"
}

// Config tunes a daemon.
type Config struct {
	// Phase1Timeout bounds the initial exchange (default 30 s).
	Phase1Timeout time.Duration
	// Phase2Timeout bounds each quick-mode negotiation, including the
	// wait for the key reservoir to fill (default 10 s).
	Phase2Timeout time.Duration
	// Qblocks is the number of 1024-bit QKD blocks folded into each
	// conventional SA's KEYMAT (default 1).
	Qblocks int
	// Phase2Retries is how many times a key allocation the delivery
	// service shed (ErrOverload) is retried within one negotiation,
	// each attempt separated by a jittered exponential backoff starting
	// at Phase2Backoff (defaults: 2 retries, 25 ms). A shed is a
	// congestion signal, so the retry waits the overload out instead of
	// immediately re-offering the same load; timeouts are not retried —
	// the deadline already spent the caller's patience.
	Phase2Retries int
	Phase2Backoff time.Duration
	// Seed drives SPI and nonce generation.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Phase1Timeout == 0 {
		c.Phase1Timeout = 30 * time.Second
	}
	if c.Phase2Timeout == 0 {
		c.Phase2Timeout = 10 * time.Second
	}
	if c.Qblocks == 0 {
		c.Qblocks = 1
	}
	if c.Phase2Retries == 0 {
		c.Phase2Retries = 2
	}
	if c.Phase2Retries < 0 {
		c.Phase2Retries = 0
	}
	if c.Phase2Backoff <= 0 {
		c.Phase2Backoff = 25 * time.Millisecond
	}
	return c
}

// Errors.
var (
	ErrTimeout  = errors.New("ike: negotiation timed out")
	ErrAuth     = errors.New("ike: message authentication failed")
	ErrNotReady = errors.New("ike: phase 1 not established")
	ErrRejected = errors.New("ike: peer rejected negotiation")
	ErrStopped  = errors.New("ike: daemon stopped")
)

// message kinds inside TIKE payloads.
const (
	kindPh1Init      = 1
	kindPh1Resp      = 2
	kindPh2Req       = 3
	kindPh2Resp      = 4
	kindPh2Nack      = 5
	kindDelete       = 6 // reserved: SA delete notification (wire space held)
	kindPh2Cancel    = 7 // initiator -> responder: abandon a pending exchange
	kindPh2BatchReq  = 8 // batched quick mode: many proposals, one exchange
	kindPh2BatchResp = 9
)

// Daemon is one gateway's IKE process.
type Daemon struct {
	role Role
	conn channel.Conn
	gw   *ipsec.Gateway
	pool keypool.Source
	psk  []byte
	cfg  Config
	logw io.Writer

	// Key delivery streams (optional, via SetKeyStreams). When set,
	// quick mode withdraws key as (stream, sequence) tickets from the
	// key delivery service instead of relying on lockstep pool
	// withdrawal order: the initiator allocates a ticket under the QoS
	// scheduler, carries it in the proposal, and both ends claim the
	// identical ledger range.
	qbStream  *kms.Stream
	otpStream *kms.Stream

	rand *rng.SplitMix64

	mu         sync.Mutex
	skeyid     []byte
	nextSPI    uint32
	nextMsg    uint32
	pending    map[uint32]chan []byte
	respCancel map[uint32]chan struct{} // responder: live exchanges' abort channels
	stopped    chan struct{}
	negMu      sync.Mutex // serializes Phase 2 negotiations (initiator)
	respMu     sync.Mutex // serializes Phase 2 responses (responder)

	stats Stats
}

// Stats counts daemon activity.
type Stats struct {
	Phase2Initiated uint64
	Phase2Responded uint64
	Phase2Failed    uint64
	SAsEstablished  uint64
	QbitsConsumed   uint64
	AuthFailures    uint64
	// Phase2Batches counts batched quick-mode exchanges (each covering
	// many tunnels); TicketAllocs counts passes through the KDS QoS
	// scheduler. A coalescing rekeyer keeps both far below the tunnel
	// count during an expiry storm.
	Phase2Batches uint64
	TicketAllocs  uint64
	// Phase2Backoffs counts shed key allocations retried after a
	// jittered backoff instead of failing the negotiation outright.
	Phase2Backoffs uint64
}

// NewDaemon builds a daemon over the given control channel. pool is the
// gateway's distilled-key supply — a raw reservoir (mirrored with the
// peer's by the QKD layer) or a QoS handle of the key delivery service;
// psk is the prepositioned Phase 1 secret; logw (may be nil) receives
// racoon-style log lines.
func NewDaemon(role Role, conn channel.Conn, gw *ipsec.Gateway, pool keypool.Source, psk []byte, cfg Config, logw io.Writer) *Daemon {
	cfg = cfg.withDefaults()
	base := uint32(0x01000000)
	if role == Responder {
		base = 0x02000000
	}
	return &Daemon{
		role:       role,
		conn:       conn,
		gw:         gw,
		pool:       pool,
		psk:        append([]byte(nil), psk...),
		cfg:        cfg,
		logw:       logw,
		rand:       rng.NewSplitMix64(cfg.Seed ^ uint64(role+1)*0x9E3779B97F4A7C15),
		nextSPI:    base,
		pending:    make(map[uint32]chan []byte),
		respCancel: make(map[uint32]chan struct{}),
		stopped:    make(chan struct{}),
	}
}

// SetKeyStreams switches quick-mode key withdrawal to the key delivery
// service: conventional suites draw Qblocks from qblocks, one-time-pad
// suites draw pads from otp. Both daemons of a link must be configured
// with mirrored streams (same names and block sizes on their respective
// KDS instances). Call before Start.
func (d *Daemon) SetKeyStreams(qblocks, otp *kms.Stream) {
	d.qbStream = qblocks
	d.otpStream = otp
}

// streamFor maps a negotiated suite to its delivery stream (nil when
// the daemon runs in legacy lockstep-pool mode).
func (d *Daemon) streamFor(suite ipsec.CipherSuite) *kms.Stream {
	if suite == ipsec.SuiteOTP {
		return d.otpStream
	}
	return d.qbStream
}

// Stats returns a snapshot.
func (d *Daemon) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

func (d *Daemon) logf(format string, args ...interface{}) {
	if d.logw == nil {
		return
	}
	fmt.Fprintf(d.logw, format+"\n", args...)
}

// prf is the IKE pseudorandom function (HMAC-SHA1).
func prf(key, data []byte) []byte {
	h := hmac.New(sha1.New, key)
	h.Write(data)
	return h.Sum(nil)
}

// expandKeymat derives n bytes: K1 = prf(key, seed|0x01),
// Ki = prf(key, K(i-1)|seed|i) — the oakley_compute_keymat_x shape.
func expandKeymat(key, seed []byte, n int) []byte {
	var out []byte
	var prev []byte
	for i := byte(1); len(out) < n; i++ {
		buf := append(append(append([]byte(nil), prev...), seed...), i)
		prev = prf(key, buf)
		out = append(out, prev...)
	}
	return out[:n]
}

// Start performs Phase 1 and launches the receive loop. The initiator
// drives the exchange; the responder's Start blocks until Phase 1
// completes (or times out).
func (d *Daemon) Start() error {
	nonce := make([]byte, 16)
	d.rand.Bytes(nonce)

	if d.role == Initiator {
		d.logf("INFO: isakmp.c:840:isakmp_ph1begin_i(): initiate new phase 1 negotiation")
		body := append([]byte{kindPh1Init}, nonce...)
		if err := d.conn.Send(TIKE, body); err != nil {
			return fmt.Errorf("ike: phase 1 send: %w", err)
		}
		msg, err := d.conn.RecvTimeout(d.cfg.Phase1Timeout)
		if err != nil {
			return fmt.Errorf("ike: phase 1: %w", mapTimeout(err))
		}
		if msg.Type != TIKE || len(msg.Payload) != 17 || msg.Payload[0] != kindPh1Resp {
			return fmt.Errorf("ike: unexpected phase 1 response")
		}
		peerNonce := msg.Payload[1:]
		d.setSkeyid(nonce, peerNonce)
	} else {
		msg, err := d.conn.RecvTimeout(d.cfg.Phase1Timeout)
		if err != nil {
			return fmt.Errorf("ike: phase 1: %w", mapTimeout(err))
		}
		if msg.Type != TIKE || len(msg.Payload) != 17 || msg.Payload[0] != kindPh1Init {
			return fmt.Errorf("ike: unexpected phase 1 message")
		}
		d.logf("INFO: isakmp.c:908:isakmp_ph1begin_r(): respond new phase 1 negotiation")
		peerNonce := msg.Payload[1:]
		body := append([]byte{kindPh1Resp}, nonce...)
		if err := d.conn.Send(TIKE, body); err != nil {
			return fmt.Errorf("ike: phase 1 send: %w", err)
		}
		d.setSkeyid(peerNonce, nonce)
	}
	d.logf("INFO: isakmp.c:2458:isakmp_ph1established(): ISAKMP-SA established (prepositioned secret + PRF)")
	go d.run()
	return nil
}

func (d *Daemon) setSkeyid(ni, nr []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.skeyid = prf(d.psk, append(append([]byte(nil), ni...), nr...))
}

// Stop shuts the daemon down; in-flight negotiations fail, and any
// pending responder-side key withdrawals are canceled.
func (d *Daemon) Stop() {
	d.mu.Lock()
	select {
	case <-d.stopped:
	default:
		close(d.stopped)
	}
	for id, ch := range d.respCancel {
		delete(d.respCancel, id)
		close(ch)
	}
	d.mu.Unlock()
	d.conn.Close()
}

// mapTimeout converts channel timeouts into ErrTimeout.
func mapTimeout(err error) error {
	if errors.Is(err, channel.ErrTimeout) {
		return ErrTimeout
	}
	return err
}

// tag computes the control-traffic authenticator for a message body.
func (d *Daemon) tag(body []byte) []byte {
	d.mu.Lock()
	key := d.skeyid
	d.mu.Unlock()
	return prf(key, body)[:12]
}

// sendAuthed sends body with an SKEYID tag appended.
func (d *Daemon) sendAuthed(body []byte) error {
	return d.conn.Send(TIKE, append(body, d.tag(body)...))
}

// checkAuthed strips and verifies the tag.
func (d *Daemon) checkAuthed(payload []byte) ([]byte, error) {
	if len(payload) < 12 {
		return nil, ErrAuth
	}
	body := payload[:len(payload)-12]
	want := d.tag(body)
	if !hmac.Equal(want, payload[len(payload)-12:]) {
		d.mu.Lock()
		d.stats.AuthFailures++
		d.mu.Unlock()
		return nil, ErrAuth
	}
	return body, nil
}

// run dispatches inbound IKE traffic: requests are served, responses
// routed to their waiting negotiation.
func (d *Daemon) run() {
	for {
		msg, err := d.conn.Recv()
		if err != nil {
			return
		}
		if msg.Type != TIKE {
			continue // not ours; a shared channel may carry QKD traffic
		}
		body, err := d.checkAuthed(msg.Payload)
		if err != nil {
			d.logf("ERROR: isakmp.c:xxxx: message authentication failed, dropped")
			continue
		}
		if len(body) < 5 {
			continue
		}
		kind := body[0]
		msgID := binary.BigEndian.Uint32(body[1:5])
		switch kind {
		case kindPh2Req, kindPh2BatchReq:
			// Served off the receive loop so a blocking key withdrawal
			// cannot deafen the daemon to a cancel for that very
			// exchange; respMu keeps negotiations serialized (and the
			// mirrored reservoirs consumed in lockstep). The abort
			// channel is registered HERE, synchronously, before the
			// handler goroutine exists: the channel delivers messages in
			// order, so every cancel for this msgID is guaranteed to
			// find the registration even while the handler is still
			// queued behind an earlier blocked negotiation.
			cancel := make(chan struct{})
			d.mu.Lock()
			skip := false
			select {
			case <-d.stopped:
				skip = true
			default:
				// A msgID already registered means that exchange is
				// live (a replayed request, since the initiator never
				// reuses ids): serving it again would double-consume
				// key and clobber the live exchange's abort channel.
				if _, exists := d.respCancel[msgID]; exists {
					skip = true
				} else {
					d.respCancel[msgID] = cancel
				}
			}
			d.mu.Unlock()
			if skip {
				continue
			}
			payload := append([]byte(nil), body[5:]...)
			go func() {
				//lint:lockorder respMu serializes responder-side phase-2 handling across the blocking reservoir withdrawal by design (racoon handles one exchange at a time); the kindPh2Cancel path exists precisely to unblock it
				d.respMu.Lock()
				defer d.respMu.Unlock()
				defer func() {
					// Deregister only our own channel: a cancel may
					// have removed it already, and another exchange
					// could have registered this id since.
					d.mu.Lock()
					if d.respCancel[msgID] == cancel {
						delete(d.respCancel, msgID)
					}
					d.mu.Unlock()
				}()
				if kind == kindPh2BatchReq {
					d.handlePhase2Batch(msgID, payload, cancel)
				} else {
					d.handlePhase2(msgID, payload, cancel)
				}
			}()
		case kindPh2Cancel:
			// The initiator abandoned the exchange (its timeout is
			// otherwise invisible here): release any withdrawal still
			// blocked on the reservoir — or still queued — so key
			// deposited afterwards feeds the retry, not the corpse. A
			// miss means the exchange already completed; nothing to do.
			d.mu.Lock()
			ch, ok := d.respCancel[msgID]
			if ok {
				delete(d.respCancel, msgID)
			}
			d.mu.Unlock()
			if ok {
				d.logf("INFO: isakmp.c:xxxx: peer abandoned phase 2 msgid %d, canceling pending withdrawal", msgID)
				close(ch)
			}
		case kindPh2Resp, kindPh2Nack, kindPh2BatchResp:
			d.mu.Lock()
			ch := d.pending[msgID]
			delete(d.pending, msgID)
			d.mu.Unlock()
			if ch != nil {
				ch <- body
			}
		}
	}
}
