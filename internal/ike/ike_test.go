package ike

import (
	"bytes"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"qkd/internal/channel"
	"qkd/internal/ipsec"
	"qkd/internal/keypool"
	"qkd/internal/kms"
	"qkd/internal/rng"
)

// harness builds two gateways joined by policies and two IKE daemons
// over an in-memory control channel, with mirrored key reservoirs.
type harness struct {
	gwA, gwB     *ipsec.Gateway
	dA, dB       *Daemon
	poolA, poolB *keypool.Reservoir
	logA, logB   bytes.Buffer
	polAB, polBA *ipsec.Policy
}

func newHarness(t *testing.T, suite ipsec.CipherSuite, life ipsec.Lifetime, cfg Config, keyBits int) *harness {
	t.Helper()
	connA, connB := channel.MemPair(64)
	return newHarnessConns(t, suite, life, cfg, cfg, keyBits, connA, connB)
}

// newHarnessAsym builds a harness whose two daemons use different
// configurations (e.g. distinct Phase2Timeouts).
func newHarnessAsym(t *testing.T, suite ipsec.CipherSuite, life ipsec.Lifetime, cfgA, cfgB Config, keyBits int) *harness {
	t.Helper()
	connA, connB := channel.MemPair(64)
	return newHarnessConns(t, suite, life, cfgA, cfgB, keyBits, connA, connB)
}

func newHarnessConns(t *testing.T, suite ipsec.CipherSuite, life ipsec.Lifetime, cfgA, cfgB Config, keyBits int, connA, connB channel.Conn) *harness {
	t.Helper()
	h := &harness{}
	h.polAB = &ipsec.Policy{Name: "a-to-b", Action: ipsec.Protect, Suite: suite,
		PeerGW: ipsec.MustAddr("192.1.99.35"), Life: life, OTPBits: 4096,
		Sel: ipsec.Selector{Src: ipsec.MustPrefix("10.1.0.0/16"), Dst: ipsec.MustPrefix("10.2.0.0/16")}}
	h.polBA = &ipsec.Policy{Name: "b-to-a", Action: ipsec.Protect, Suite: suite,
		PeerGW: ipsec.MustAddr("192.1.99.34"), Life: life, OTPBits: 4096,
		Sel: ipsec.Selector{Src: ipsec.MustPrefix("10.2.0.0/16"), Dst: ipsec.MustPrefix("10.1.0.0/16")}}

	h.gwA = ipsec.NewGateway(ipsec.MustAddr("192.1.99.34"), ipsec.NewSPD(h.polAB, h.polBA))
	h.gwB = ipsec.NewGateway(ipsec.MustAddr("192.1.99.35"), ipsec.NewSPD(h.polBA, h.polAB))

	// Mirrored distilled-key reservoirs, as the QKD layer would fill.
	material := rng.NewSplitMix64(99).Bits(keyBits)
	h.poolA = keypool.New()
	h.poolB = keypool.New()
	h.poolA.Deposit(material.Clone())
	h.poolB.Deposit(material)

	psk := []byte("prepositioned-secret")
	h.dA = NewDaemon(Initiator, connA, h.gwA, h.poolA, psk, cfgA, &h.logA)
	h.dB = NewDaemon(Responder, connB, h.gwB, h.poolB, psk, cfgB, &h.logB)

	errCh := make(chan error, 1)
	go func() { errCh <- h.dB.Start() }()
	if err := h.dA.Start(); err != nil {
		t.Fatalf("initiator start: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("responder start: %v", err)
	}
	t.Cleanup(func() { h.dA.Stop(); h.dB.Stop() })
	return h
}

// ping pushes one packet A-enclave -> B-enclave through both gateways.
func (h *harness) ping(id uint32) error {
	inner := &ipsec.Packet{
		Src: ipsec.MustAddr("10.1.0.5"), Dst: ipsec.MustAddr("10.2.0.9"),
		Proto: ipsec.ProtoPing, ID: id, Payload: []byte("ping"),
	}
	outer, err := h.gwA.ProcessOutbound(inner)
	if err != nil {
		return err
	}
	got, err := h.gwB.ProcessInbound(outer)
	if err != nil {
		return err
	}
	if got.ID != id {
		return errors.New("packet corrupted in tunnel")
	}
	return nil
}

// pong pushes one packet in the reverse direction.
func (h *harness) pong(id uint32) error {
	inner := &ipsec.Packet{
		Src: ipsec.MustAddr("10.2.0.9"), Dst: ipsec.MustAddr("10.1.0.5"),
		Proto: ipsec.ProtoPing, ID: id, Payload: []byte("pong"),
	}
	outer, err := h.gwB.ProcessOutbound(inner)
	if err != nil {
		return err
	}
	_, err = h.gwA.ProcessInbound(outer)
	return err
}

func TestNegotiateEstablishesBidirectionalTunnel(t *testing.T) {
	h := newHarness(t, ipsec.SuiteAES128CTR, ipsec.Lifetime{}, Config{}, 65536)
	if err := h.dA.Negotiate(h.polAB, "b-to-a"); err != nil {
		t.Fatalf("Negotiate: %v", err)
	}
	for i := uint32(1); i <= 5; i++ {
		if err := h.ping(i); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
		if err := h.pong(i); err != nil {
			t.Fatalf("pong %d: %v", i, err)
		}
	}
	// Both ends consumed identical key material in lockstep.
	if h.poolA.Available() != h.poolB.Available() {
		t.Errorf("pools desynced: %d vs %d", h.poolA.Available(), h.poolB.Available())
	}
	sa := h.dA.Stats()
	sb := h.dB.Stats()
	if sa.SAsEstablished != 2 || sb.SAsEstablished != 2 {
		t.Errorf("SAsEstablished: %d, %d", sa.SAsEstablished, sb.SAsEstablished)
	}
	if sa.QbitsConsumed != QblockBits {
		t.Errorf("initiator consumed %d qbits, want %d", sa.QbitsConsumed, QblockBits)
	}
}

func TestNegotiateOTPTunnel(t *testing.T) {
	h := newHarness(t, ipsec.SuiteOTP, ipsec.Lifetime{}, Config{}, 65536)
	if err := h.dA.Negotiate(h.polAB, "b-to-a"); err != nil {
		t.Fatalf("Negotiate: %v", err)
	}
	for i := uint32(1); i <= 10; i++ {
		if err := h.ping(i); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
	// OTP consumed 2x4096 bits from each pool.
	st := h.dA.Stats()
	if st.QbitsConsumed != 2*4096 {
		t.Errorf("QbitsConsumed = %d, want 8192", st.QbitsConsumed)
	}
}

func TestRacoonStyleLog(t *testing.T) {
	// The Fig. 12 transcript: phase 2 begin, QPFS, Qblocks reply,
	// KEYMAT using QBITS, IPsec-SA established x2.
	h := newHarness(t, ipsec.SuiteAES128CTR, ipsec.Lifetime{}, Config{}, 65536)
	if err := h.dA.Negotiate(h.polAB, "b-to-a"); err != nil {
		t.Fatal(err)
	}
	// Give the responder's log a moment (its install happens before the
	// reply, so it is already written by the time Negotiate returns).
	logB := h.logB.String()
	for _, want := range []string{
		"respond new phase 2 negotiation: 192.1.99.35[0]<=>192.1.99.34[0]",
		"RESPONDER setting QPFS encmodesv 1",
		"reply 1 Qblocks 1024 bits 1024.000000 entropy (offer is 1 Qblocks)",
		"KEYMAT using 128 bytes QBITS",
		"IPsec-SA established: ESP/Tunnel",
	} {
		if !strings.Contains(logB, want) {
			t.Errorf("responder log missing %q:\n%s", want, logB)
		}
	}
	logA := h.logA.String()
	if !strings.Contains(logA, "initiate new phase 2 negotiation") {
		t.Errorf("initiator log missing phase 2 begin:\n%s", logA)
	}
}

func TestKeyRollover(t *testing.T) {
	// Byte-limited SAs expire under traffic; re-negotiation brings
	// fresh key material and traffic resumes.
	h := newHarness(t, ipsec.SuiteAES128CTR, ipsec.Lifetime{Bytes: 200}, Config{}, 1<<20)
	if err := h.dA.Negotiate(h.polAB, "b-to-a"); err != nil {
		t.Fatal(err)
	}
	var rolled int
	for i := uint32(1); i <= 50; i++ {
		err := h.ping(i)
		if errors.Is(err, ipsec.ErrNoSA) || errors.Is(err, ipsec.ErrExpired) {
			if err := h.dA.Negotiate(h.polAB, "b-to-a"); err != nil {
				t.Fatalf("rollover %d: %v", i, err)
			}
			rolled++
			if err := h.ping(i); err != nil {
				t.Fatalf("ping %d after rollover: %v", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
	if rolled < 3 {
		t.Errorf("expected several rollovers, got %d", rolled)
	}
	if h.poolA.Available() != h.poolB.Available() {
		t.Errorf("pools desynced after rollovers: %d vs %d",
			h.poolA.Available(), h.poolB.Available())
	}
}

func TestExhaustedPoolTimesOut(t *testing.T) {
	// Reservoirs too small for even one Qblock: negotiation must fail
	// by timeout (waiting for key that never comes), the scenario that
	// pressures IKE's timeout defaults (Section 7).
	h := newHarness(t, ipsec.SuiteAES128CTR, ipsec.Lifetime{},
		Config{Phase2Timeout: 200 * time.Millisecond}, 256)
	err := h.dA.Negotiate(h.polAB, "b-to-a")
	if err == nil {
		t.Fatal("negotiation succeeded without key material")
	}
	if !errors.Is(err, ErrTimeout) && !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want timeout or rejection", err)
	}
}

func TestLateKeyArrivalCompletesNegotiation(t *testing.T) {
	// The reservoir fills mid-negotiation; the blocked responder
	// completes once bits arrive ("it may take a while to accumulate
	// enough bits for a successful negotiation").
	h := newHarness(t, ipsec.SuiteAES128CTR, ipsec.Lifetime{},
		Config{Phase2Timeout: 2 * time.Second}, 128) // too little initially
	done := make(chan error, 1)
	go func() { done <- h.dA.Negotiate(h.polAB, "b-to-a") }()
	time.Sleep(50 * time.Millisecond)
	// QKD layer delivers a fresh batch to both ends.
	batch := rng.NewSplitMix64(7).Bits(4096)
	h.poolA.Deposit(batch.Clone())
	h.poolB.Deposit(batch)
	if err := <-done; err != nil {
		t.Fatalf("negotiation failed despite key arrival: %v", err)
	}
	if err := h.ping(1); err != nil {
		t.Fatalf("ping: %v", err)
	}
}

func TestMismatchedPoolsPoisonSAsUntilRollover(t *testing.T) {
	// Residual error-correction failure: the two reservoirs disagree.
	// IKE must NOT detect it; the SAs install and traffic fails
	// integrity until the next rollover with clean key (Section 7).
	h := newHarness(t, ipsec.SuiteAES128CTR, ipsec.Lifetime{}, Config{}, 0)
	// Deposit DIFFERENT material on each side.
	h.poolA.Deposit(rng.NewSplitMix64(1).Bits(8192))
	h.poolB.Deposit(rng.NewSplitMix64(2).Bits(8192))
	if err := h.dA.Negotiate(h.polAB, "b-to-a"); err != nil {
		t.Fatalf("negotiation must succeed despite mismatched pools: %v", err)
	}
	err := h.ping(1)
	if !errors.Is(err, ipsec.ErrIntegrity) {
		t.Fatalf("ping over poisoned SA: err = %v, want ErrIntegrity", err)
	}
	// Rollover with matching material restores service.
	clean := rng.NewSplitMix64(3).Bits(8192)
	h.poolA.Deposit(clean.Clone())
	h.poolB.Deposit(clean)
	// Drain the remaining mismatched bits identically by consuming the
	// same count from both pools (simulates both sides discarding the
	// corrupt batch).
	na, nb := h.poolA.Available(), h.poolB.Available()
	h.poolA.TryConsume(na - 8192)
	h.poolB.TryConsume(nb - 8192)
	if err := h.dA.Negotiate(h.polAB, "b-to-a"); err != nil {
		t.Fatalf("rollover: %v", err)
	}
	if err := h.ping(2); err != nil {
		t.Fatalf("ping after clean rollover: %v", err)
	}
}

func TestEveBlockingIKEIsDoS(t *testing.T) {
	// Eve drops all IKE messages: negotiation times out and the tunnel
	// never comes up — "this narrow window makes Eve's denial-of-service
	// attacks somewhat easier".
	connA, connB := channel.NewMITM(func(dir channel.Direction, m channel.Message) (channel.Message, bool) {
		return m, m.Type == TIKE && dir == channel.AliceToBob
	})
	// Phase 1 requires the initiator's message through; block AFTER
	// phase 1 by counting.
	passed := 0
	connA2, connB2 := channel.NewMITM(func(dir channel.Direction, m channel.Message) (channel.Message, bool) {
		if m.Type != TIKE {
			return m, false
		}
		passed++
		return m, passed > 2 // allow the phase 1 exchange only
	})
	_ = connA
	_ = connB
	h := newHarnessConns(t, ipsec.SuiteAES128CTR, ipsec.Lifetime{},
		Config{Phase2Timeout: 150 * time.Millisecond},
		Config{Phase2Timeout: 150 * time.Millisecond}, 65536, connA2, connB2)
	err := h.dA.Negotiate(h.polAB, "b-to-a")
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout under Eve's blockade", err)
	}
	if st := h.dA.Stats(); st.Phase2Failed != 1 {
		t.Errorf("Phase2Failed = %d", st.Phase2Failed)
	}
}

func TestForgedIKEMessagesRejected(t *testing.T) {
	// Eve tampers with phase 2 traffic: the SKEYID tag fails and the
	// message is dropped (then the negotiation times out). The MITM
	// callback runs on the channel's forwarding goroutine, so the
	// tamper counter must be atomic.
	var tampered atomic.Int64
	connA, connB := channel.NewMITM(func(dir channel.Direction, m channel.Message) (channel.Message, bool) {
		if m.Type == TIKE && len(m.Payload) > 40 { // phase 2 sized
			m.Payload[10] ^= 1
			tampered.Add(1)
		}
		return m, false
	})
	h := newHarnessConns(t, ipsec.SuiteAES128CTR, ipsec.Lifetime{},
		Config{Phase2Timeout: 150 * time.Millisecond},
		Config{Phase2Timeout: 150 * time.Millisecond}, 65536, connA, connB)
	err := h.dA.Negotiate(h.polAB, "b-to-a")
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout after forgery drops", err)
	}
	if tampered.Load() == 0 {
		t.Fatal("test bug: nothing tampered")
	}
	if st := h.dB.Stats(); st.AuthFailures == 0 {
		t.Error("responder did not record auth failures")
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	h := newHarness(t, ipsec.SuiteAES128CTR, ipsec.Lifetime{}, Config{}, 65536)
	bogus := &ipsec.Policy{Name: "no-such", Action: ipsec.Protect,
		Suite:  ipsec.SuiteAES128CTR,
		PeerGW: ipsec.MustAddr("192.1.99.35"),
		Sel:    ipsec.Selector{Src: ipsec.MustPrefix("0.0.0.0/0"), Dst: ipsec.MustPrefix("0.0.0.0/0")}}
	if err := h.dA.Negotiate(bogus, "also-no-such"); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
}

func TestResponderCannotNegotiate(t *testing.T) {
	h := newHarness(t, ipsec.SuiteAES128CTR, ipsec.Lifetime{}, Config{}, 65536)
	if err := h.dB.Negotiate(h.polBA, "a-to-b"); err == nil {
		t.Fatal("responder negotiated")
	}
}

func TestRekeyUpdatesKeys(t *testing.T) {
	// Two successive negotiations must install different keys (fresh
	// QKD bits each time): packets sealed under SA1 must not open under
	// SA2.
	h := newHarness(t, ipsec.SuiteAES128CTR, ipsec.Lifetime{}, Config{}, 1<<20)
	if err := h.dA.Negotiate(h.polAB, "b-to-a"); err != nil {
		t.Fatal(err)
	}
	inner := &ipsec.Packet{Src: ipsec.MustAddr("10.1.0.5"), Dst: ipsec.MustAddr("10.2.0.9"),
		Proto: ipsec.ProtoPing, ID: 1, Payload: []byte("x")}
	outer1, err := h.gwA.ProcessOutbound(inner)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.dA.Negotiate(h.polAB, "b-to-a"); err != nil {
		t.Fatal(err)
	}
	// New outbound SA: same packet seals differently and still delivers
	// (the SPI routes to the new inbound SA).
	outer2, err := h.gwA.ProcessOutbound(inner)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(outer1.Payload, outer2.Payload) {
		t.Error("rekey did not change the key")
	}
	if _, err := h.gwB.ProcessInbound(outer2); err != nil {
		t.Fatalf("post-rekey delivery: %v", err)
	}
}

func BenchmarkNegotiate(b *testing.B) {
	connA, connB := channel.MemPair(64)
	polAB := &ipsec.Policy{Name: "a-to-b", Action: ipsec.Protect, Suite: ipsec.SuiteAES128CTR,
		PeerGW: ipsec.MustAddr("192.1.99.35"),
		Sel:    ipsec.Selector{Src: ipsec.MustPrefix("10.1.0.0/16"), Dst: ipsec.MustPrefix("10.2.0.0/16")}}
	polBA := &ipsec.Policy{Name: "b-to-a", Action: ipsec.Protect, Suite: ipsec.SuiteAES128CTR,
		PeerGW: ipsec.MustAddr("192.1.99.34"),
		Sel:    ipsec.Selector{Src: ipsec.MustPrefix("10.2.0.0/16"), Dst: ipsec.MustPrefix("10.1.0.0/16")}}
	gwA := ipsec.NewGateway(ipsec.MustAddr("192.1.99.34"), ipsec.NewSPD(polAB, polBA))
	gwB := ipsec.NewGateway(ipsec.MustAddr("192.1.99.35"), ipsec.NewSPD(polBA, polAB))
	material := rng.NewSplitMix64(1).Bits((b.N + 2) * QblockBits)
	poolA, poolB := keypool.New(), keypool.New()
	poolA.Deposit(material.Clone())
	poolB.Deposit(material)
	dA := NewDaemon(Initiator, connA, gwA, poolA, []byte("psk"), Config{}, nil)
	dB := NewDaemon(Responder, connB, gwB, poolB, []byte("psk"), Config{}, nil)
	go dB.Start()
	if err := dA.Start(); err != nil {
		b.Fatal(err)
	}
	defer dA.Stop()
	defer dB.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dA.Negotiate(polAB, "b-to-a"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFailedOTPNegotiationLeavesPoolsSynced(t *testing.T) {
	// Regression: a failed OTP negotiation (enough key for one pad but
	// not two) must not consume from one reservoir without the other —
	// a partial withdrawal silently poisons every later SA.
	//
	// The responder's own Phase2Timeout is deliberately much longer
	// than the initiator's: the only way its withdrawal can end inside
	// this test's window is the initiator's phase 2 cancel, so the
	// poll below genuinely pins the cancel path (a responder-side
	// timeout would take 5 s and fail the test).
	const phase2Timeout = 100 * time.Millisecond
	h := newHarnessAsym(t, ipsec.SuiteOTP, ipsec.Lifetime{},
		Config{Phase2Timeout: phase2Timeout},
		Config{Phase2Timeout: 5 * time.Second}, 0)
	// One pad's worth plus change: the atomic 2x withdrawal must fail.
	material := rng.NewSplitMix64(5).Bits(4096 + 512)
	h.poolA.Deposit(material.Clone())
	h.poolB.Deposit(material)

	if err := h.dA.Negotiate(h.polAB, "b-to-a"); err == nil {
		t.Fatal("negotiation succeeded with half the required pad")
	}
	if h.poolA.Available() != h.poolB.Available() {
		t.Fatalf("pools desynced after failed negotiation: %d vs %d",
			h.poolA.Available(), h.poolB.Available())
	}
	// The initiator's timeout sends a phase 2 cancel, which tears down
	// the responder's still-blocking pad withdrawal (recorded as a
	// failed negotiation on the responder). Wait for that event — NOT
	// for the responder's full Phase2Timeout window, which is the leak
	// this regression test used to have to sleep out.
	// Generous deadline for loaded/race-instrumented runners; it still
	// sits well under the responder's 5 s timeout, so only the cancel
	// path can satisfy it, and the loop exits the moment it does.
	deadline := time.Now().Add(2 * time.Second)
	for h.dB.Stats().Phase2Failed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("responder never canceled its pending withdrawal")
		}
		time.Sleep(time.Millisecond)
	}
	// Top both up and confirm a clean tunnel comes up.
	topup := rng.NewSplitMix64(6).Bits(2 * 4096)
	h.poolA.Deposit(topup.Clone())
	h.poolB.Deposit(topup)
	if err := h.dA.Negotiate(h.polAB, "b-to-a"); err != nil {
		t.Fatalf("negotiation after refill: %v", err)
	}
	if err := h.ping(1); err != nil {
		t.Fatalf("traffic over post-failure tunnel: %v", err)
	}
}

func TestProposalTicketRoundTrip(t *testing.T) {
	// The phase-2 wire format carries the KDS ticket intact; legacy
	// proposals round-trip with the flag clear.
	p := &phase2Proposal{
		PolicyName:    "a-to-b",
		ReversePolicy: "b-to-a",
		Suite:         ipsec.SuiteOTP,
		LifeSeconds:   600,
		LifeBytes:     1 << 20,
		OTPBits:       16384,
		SPI:           0x01000007,
		HasTicket:     true,
		TicketSeq:     42,
		TicketOff:     987654321,
		TicketBits:    32768,
	}
	got, err := decodeProposal(p.encode())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *p {
		t.Fatalf("round trip mangled the proposal:\n got %+v\nwant %+v", got, p)
	}
	p.HasTicket = false
	p.TicketSeq, p.TicketOff, p.TicketBits = 0, 0, 0
	if got, err = decodeProposal(p.encode()); err != nil {
		t.Fatal(err)
	}
	if got.HasTicket {
		t.Fatal("legacy proposal decoded with a ticket")
	}
}

func TestNegotiateOverKeyStreams(t *testing.T) {
	// Daemons wired to mirrored KDS instances agree on SAs through
	// (stream, sequence) tickets even though neither pool sees a
	// lockstep withdrawal.
	h := newHarness(t, ipsec.SuiteAES128CTR, ipsec.Lifetime{}, Config{Phase2Timeout: 2 * time.Second}, 64)
	kA, kB := kms.New(kms.Config{}), kms.New(kms.Config{})
	defer kA.Close()
	defer kB.Close()
	qbA, _ := kA.NewStream("ike/qblocks", QblockBits, kms.ClassRekey)
	qbB, _ := kB.NewStream("ike/qblocks", QblockBits, kms.ClassRekey)
	h.dA.SetKeyStreams(qbA, nil)
	h.dB.SetKeyStreams(qbB, nil)
	key := rng.NewSplitMix64(9).Bits(4 * QblockBits)
	kA.Ingest(key.Clone())
	kB.Ingest(key)
	if err := h.dA.Negotiate(h.polAB, "b-to-a"); err != nil {
		t.Fatalf("ticketed negotiation: %v", err)
	}
	if err := h.ping(1); err != nil {
		t.Fatalf("traffic over ticketed SAs: %v", err)
	}
	// The lockstep pools were never touched.
	if _, ca := h.poolA.Stats(); ca != 0 {
		t.Fatalf("initiator pool consumed %d bits in stream mode", ca)
	}
	if st := kB.Stats(); st.ClaimedBits != QblockBits {
		t.Fatalf("responder claimed %d bits, want %d", st.ClaimedBits, QblockBits)
	}
}

func TestRejectedTicketedProposalReleasesRange(t *testing.T) {
	// A ticketed negotiation the responder rejects (unknown reverse
	// policy) must release the claimed ledger range on the responder,
	// or its claim frontier stalls behind the hole forever.
	h := newHarness(t, ipsec.SuiteAES128CTR, ipsec.Lifetime{}, Config{Phase2Timeout: 2 * time.Second}, 64)
	kA, kB := kms.New(kms.Config{}), kms.New(kms.Config{})
	defer kA.Close()
	defer kB.Close()
	qbA, _ := kA.NewStream("ike/qblocks", QblockBits, kms.ClassRekey)
	qbB, _ := kB.NewStream("ike/qblocks", QblockBits, kms.ClassRekey)
	h.dA.SetKeyStreams(qbA, nil)
	h.dB.SetKeyStreams(qbB, nil)
	key := rng.NewSplitMix64(9).Bits(4 * QblockBits)
	kA.Ingest(key.Clone())
	kB.Ingest(key)
	if err := h.dA.Negotiate(h.polAB, "no-such-policy"); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for kB.Stats().ReleasedBits != QblockBits {
		if time.Now().After(deadline) {
			t.Fatalf("responder released %d bits, want %d (frontier leak)",
				kB.Stats().ReleasedBits, QblockBits)
		}
		time.Sleep(time.Millisecond)
	}
	// The next (valid) ticketed negotiation still works on both ends.
	if err := h.dA.Negotiate(h.polAB, "b-to-a"); err != nil {
		t.Fatalf("negotiation after rejected ticket: %v", err)
	}
}
