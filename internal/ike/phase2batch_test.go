package ike

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"qkd/internal/ipsec"
	"qkd/internal/kms"
	"qkd/internal/rng"
)

// batchHarness extends the two-policy harness with n extra tunnels
// (t0..t(n-1), alternating AES and OTP suites) on both SPDs and wires
// mirrored KDS streams for both suites.
func newBatchHarness(t *testing.T, n int) (*harness, []BatchItem, *kms.Service, *kms.Service) {
	t.Helper()
	h := newHarness(t, ipsec.SuiteAES128CTR, ipsec.Lifetime{}, Config{Phase2Timeout: 2 * time.Second}, 64)
	items := make([]BatchItem, 0, n)
	for i := 0; i < n; i++ {
		suite := ipsec.SuiteAES128CTR
		if i%2 == 1 {
			suite = ipsec.SuiteOTP
		}
		ab := &ipsec.Policy{Name: fmt.Sprintf("t%d/a-to-b", i), Action: ipsec.Protect, Suite: suite,
			PeerGW: ipsec.MustAddr("192.1.99.35"), OTPBits: 2048,
			Sel: ipsec.Selector{Src: ipsec.MustPrefix(fmt.Sprintf("10.11.%d.0/24", i)),
				Dst: ipsec.MustPrefix(fmt.Sprintf("10.12.%d.0/24", i))}}
		ba := &ipsec.Policy{Name: fmt.Sprintf("t%d/b-to-a", i), Action: ipsec.Protect, Suite: suite,
			PeerGW: ipsec.MustAddr("192.1.99.34"), OTPBits: 2048,
			Sel: ipsec.Selector{Src: ipsec.MustPrefix(fmt.Sprintf("10.12.%d.0/24", i)),
				Dst: ipsec.MustPrefix(fmt.Sprintf("10.11.%d.0/24", i))}}
		h.gwA.SPD.Add(ab)
		h.gwA.SPD.Add(ba)
		h.gwB.SPD.Add(ba)
		h.gwB.SPD.Add(ab)
		items = append(items, BatchItem{Policy: ab, ReversePolicy: ba.Name})
	}
	kA, kB := kms.New(kms.Config{}), kms.New(kms.Config{})
	t.Cleanup(func() { kA.Close(); kB.Close() })
	qbA, _ := kA.NewStream("ike/qblocks", QblockBits, kms.ClassRekey)
	qbB, _ := kB.NewStream("ike/qblocks", QblockBits, kms.ClassRekey)
	otpA, _ := kA.NewStream("ike/otp", 1024, kms.ClassOTP)
	otpB, _ := kB.NewStream("ike/otp", 1024, kms.ClassOTP)
	h.dA.SetKeyStreams(qbA, otpA)
	h.dB.SetKeyStreams(qbB, otpB)
	key := rng.NewSplitMix64(9).Bits(64 * 1024)
	kA.Ingest(key.Clone())
	kB.Ingest(key)
	return h, items, kA, kB
}

func TestNegotiateBatchEstablishesManyTunnels(t *testing.T) {
	const n = 8
	h, items, _, _ := newBatchHarness(t, n)
	errs, err := h.dA.NegotiateBatch(items)
	if err != nil {
		t.Fatalf("NegotiateBatch: %v", err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("item %d (%s): %v", i, items[i].Policy.Name, e)
		}
	}
	// One exchange, one QoS pass per stream — not one per tunnel.
	sA, sB := h.dA.Stats(), h.dB.Stats()
	if sA.Phase2Batches != 1 || sB.Phase2Batches != 1 {
		t.Errorf("Phase2Batches = %d/%d, want 1/1", sA.Phase2Batches, sB.Phase2Batches)
	}
	if sA.TicketAllocs != 2 {
		t.Errorf("TicketAllocs = %d, want 2 (one per stream)", sA.TicketAllocs)
	}
	if sA.SAsEstablished != 2*n || sB.SAsEstablished != 2*n {
		t.Errorf("SAsEstablished = %d/%d, want %d", sA.SAsEstablished, sB.SAsEstablished, 2*n)
	}
	// Traffic flows on every tunnel, both directions.
	for i := 0; i < n; i++ {
		inner := &ipsec.Packet{
			Src: ipsec.MustAddr(fmt.Sprintf("10.11.%d.5", i)), Dst: ipsec.MustAddr(fmt.Sprintf("10.12.%d.9", i)),
			Proto: ipsec.ProtoPing, ID: uint32(i), Payload: []byte("batch ping"),
		}
		outer, err := h.gwA.ProcessOutbound(inner)
		if err != nil {
			t.Fatalf("tunnel %d outbound: %v", i, err)
		}
		if _, err := h.gwB.ProcessInbound(outer); err != nil {
			t.Fatalf("tunnel %d inbound: %v", i, err)
		}
		back := &ipsec.Packet{
			Src: ipsec.MustAddr(fmt.Sprintf("10.12.%d.9", i)), Dst: ipsec.MustAddr(fmt.Sprintf("10.11.%d.5", i)),
			Proto: ipsec.ProtoPing, ID: uint32(100 + i), Payload: []byte("batch pong"),
		}
		outer, err = h.gwB.ProcessOutbound(back)
		if err != nil {
			t.Fatalf("tunnel %d reverse outbound: %v", i, err)
		}
		if _, err := h.gwA.ProcessInbound(outer); err != nil {
			t.Fatalf("tunnel %d reverse inbound: %v", i, err)
		}
	}
}

func TestNegotiateBatchPartialFailure(t *testing.T) {
	// One rotten item (unknown reverse policy on the responder) fails
	// alone: the rest of the batch installs, and the responder releases
	// the dead item's ledger range so its claim frontier advances.
	const n = 4
	h, items, _, kB := newBatchHarness(t, n)
	items[2].ReversePolicy = "no-such-policy"
	errs, err := h.dA.NegotiateBatch(items)
	if err != nil {
		t.Fatalf("NegotiateBatch: %v", err)
	}
	for i, e := range errs {
		if i == 2 {
			if !errors.Is(e, ErrRejected) {
				t.Errorf("item 2: err = %v, want ErrRejected", e)
			}
			continue
		}
		if e != nil {
			t.Errorf("item %d: %v", i, e)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for kB.Stats().ReleasedBits == 0 {
		if time.Now().After(deadline) {
			t.Fatal("responder never released the rejected item's range")
		}
		time.Sleep(time.Millisecond)
	}
	// The healthy tunnels carry traffic; a follow-up single negotiation
	// still works (frontier not wedged).
	if err := h.dA.Negotiate(h.polAB, "b-to-a"); err != nil {
		t.Fatalf("negotiation after partial batch: %v", err)
	}
}
