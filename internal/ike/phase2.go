package ike

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"qkd/internal/bitarray"
	"qkd/internal/ipsec"
	"qkd/internal/keypool"
	"qkd/internal/kms"
)

// phase2Proposal is the initiator's quick-mode offer.
type phase2Proposal struct {
	PolicyName    string // initiator-outbound policy
	ReversePolicy string // responder-outbound policy
	Suite         ipsec.CipherSuite
	LifeSeconds   uint32
	LifeBytes     uint64
	Qblocks       uint32 // conventional suites: QKD blocks in KEYMAT
	OTPBits       uint64 // OTP suite: pad bits per direction
	SPI           uint32 // initiator's inbound SPI
	Nonce         [16]byte

	// KDS ticket (HasTicket set): the (stream, sequence) key block the
	// initiator allocated for this negotiation. The stream is implied
	// by the suite; both ends claim the identical ledger range, so the
	// mirrored reservoirs no longer need lockstep withdrawal order.
	HasTicket  bool
	TicketSeq  uint64
	TicketOff  uint64
	TicketBits uint32
}

func (p *phase2Proposal) encode() []byte {
	buf := make([]byte, 0, 64+len(p.PolicyName)+len(p.ReversePolicy))
	buf = appendString(buf, p.PolicyName)
	buf = appendString(buf, p.ReversePolicy)
	buf = binary.BigEndian.AppendUint32(buf, uint32(p.Suite))
	buf = binary.BigEndian.AppendUint32(buf, p.LifeSeconds)
	buf = binary.BigEndian.AppendUint64(buf, p.LifeBytes)
	buf = binary.BigEndian.AppendUint32(buf, p.Qblocks)
	buf = binary.BigEndian.AppendUint64(buf, p.OTPBits)
	buf = binary.BigEndian.AppendUint32(buf, p.SPI)
	buf = append(buf, p.Nonce[:]...)
	if p.HasTicket {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.BigEndian.AppendUint64(buf, p.TicketSeq)
	buf = binary.BigEndian.AppendUint64(buf, p.TicketOff)
	buf = binary.BigEndian.AppendUint32(buf, p.TicketBits)
	return buf
}

func decodeProposal(b []byte) (*phase2Proposal, error) {
	p := &phase2Proposal{}
	var err error
	if p.PolicyName, b, err = takeString(b); err != nil {
		return nil, err
	}
	if p.ReversePolicy, b, err = takeString(b); err != nil {
		return nil, err
	}
	if len(b) != 4+4+8+4+8+4+16+1+8+8+4 {
		return nil, fmt.Errorf("ike: bad proposal length %d", len(b))
	}
	p.Suite = ipsec.CipherSuite(binary.BigEndian.Uint32(b))
	p.LifeSeconds = binary.BigEndian.Uint32(b[4:])
	p.LifeBytes = binary.BigEndian.Uint64(b[8:])
	p.Qblocks = binary.BigEndian.Uint32(b[16:])
	p.OTPBits = binary.BigEndian.Uint64(b[20:])
	p.SPI = binary.BigEndian.Uint32(b[28:])
	copy(p.Nonce[:], b[32:48])
	p.HasTicket = b[48] != 0
	p.TicketSeq = binary.BigEndian.Uint64(b[49:])
	p.TicketOff = binary.BigEndian.Uint64(b[57:])
	p.TicketBits = binary.BigEndian.Uint32(b[65:])
	return p, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func takeString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("ike: truncated string")
	}
	n := int(binary.BigEndian.Uint16(b))
	if len(b) < 2+n {
		return "", nil, fmt.Errorf("ike: truncated string body")
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

// retryShedAlloc runs one key-allocation attempt via f, retrying
// ErrOverload sheds up to cfg.Phase2Retries times on a jittered
// exponential backoff — the shed IS the delivery service's congestion
// signal, so the retry waits it out rather than re-offering the same
// load immediately. Other errors (including timeouts) pass through
// untouched. Initiator-path only (runs under negMu, where d.rand is
// safe to draw jitter from).
func (d *Daemon) retryShedAlloc(f func() error) error {
	for attempt := 0; ; attempt++ {
		err := f()
		if err == nil || attempt >= d.cfg.Phase2Retries || !errors.Is(err, kms.ErrOverload) {
			return err
		}
		base := d.cfg.Phase2Backoff << attempt
		delay := base/2 + time.Duration(d.rand.Float64()*float64(base/2))
		d.mu.Lock()
		d.stats.Phase2Backoffs++
		d.mu.Unlock()
		select {
		case <-time.After(delay):
		case <-d.stopped:
			return err
		}
	}
}

// allocSPI returns a fresh SPI.
func (d *Daemon) allocSPI() uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextSPI++
	return d.nextSPI
}

func (d *Daemon) allocMsgID() uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextMsg++
	return d.nextMsg
}

// Negotiate runs quick mode for the given outbound policy (and its
// reverse), installing SAs in both gateways' databases. Only the
// Initiator daemon may call it.
//
// reversePolicy names the peer's outbound policy for the same tunnel
// (traffic flowing back); the responder installs its outbound SA under
// that name.
func (d *Daemon) Negotiate(pol *ipsec.Policy, reversePolicy string) error {
	if d.role != Initiator {
		return fmt.Errorf("ike: only the initiator daemon negotiates")
	}
	//lint:lockorder negMu deliberately serializes phase-2 exchanges end to end, key withdrawal and response wait included; it is a protocol turnstile, not a data lock, and nothing acquires it from under another lock
	d.negMu.Lock()
	defer d.negMu.Unlock()
	d.mu.Lock()
	ready := d.skeyid != nil
	d.mu.Unlock()
	if !ready {
		return ErrNotReady
	}

	prop := &phase2Proposal{
		PolicyName:    pol.Name,
		ReversePolicy: reversePolicy,
		Suite:         pol.Suite,
		LifeSeconds:   uint32(pol.Life.Duration / time.Second),
		LifeBytes:     pol.Life.Bytes,
		SPI:           d.allocSPI(),
	}
	d.rand.Bytes(prop.Nonce[:])
	if pol.Suite == ipsec.SuiteOTP {
		bits := pol.OTPBits
		if bits == 0 {
			bits = 8 * 1024 * 8 // 8 KiB of pad by default
		}
		prop.OTPBits = uint64(bits)
	} else {
		prop.Qblocks = uint32(d.cfg.Qblocks)
	}

	// With key delivery streams wired, allocate this negotiation's key
	// block under the QoS scheduler up front and claim it; the ticket
	// rides in the proposal so the responder claims the identical
	// ledger range. The needed bits are rounded up to whole blocks
	// (both ends slice off the same prefix).
	var ticketKey *bitarray.BitArray
	if st := d.streamFor(pol.Suite); st != nil {
		needed := int(prop.Qblocks) * QblockBits
		if pol.Suite == ipsec.SuiteOTP {
			needed = 2 * int(prop.OTPBits)
		}
		blocks := (needed + st.BlockBits() - 1) / st.BlockBits()
		var tk kms.Ticket
		var key *bitarray.BitArray
		err := d.retryShedAlloc(func() error {
			var aerr error
			tk, key, aerr = st.Next(blocks, d.cfg.Phase2Timeout, nil)
			return aerr
		})
		if err != nil {
			d.mu.Lock()
			d.stats.Phase2Failed++
			d.mu.Unlock()
			if errors.Is(err, kms.ErrOverload) {
				return fmt.Errorf("ike: key delivery shed the rekey: %w", err)
			}
			if errors.Is(err, keypool.ErrTimeout) {
				return ErrTimeout
			}
			return fmt.Errorf("ike: allocating key block: %w", err)
		}
		d.mu.Lock()
		d.stats.TicketAllocs++
		d.mu.Unlock()
		ticketKey = key
		prop.HasTicket = true
		prop.TicketSeq = tk.Seq
		prop.TicketOff = tk.Offset
		prop.TicketBits = uint32(tk.Bits)
	}

	msgID := d.allocMsgID()
	d.logf("INFO: isakmp.c:939:isakmp_ph2begin_i(): initiate new phase 2 negotiation: %s[0]<=>%s[0]",
		d.gw.Local, pol.PeerGW)
	d.mu.Lock()
	d.stats.Phase2Initiated++
	ch := make(chan []byte, 1)
	d.pending[msgID] = ch
	d.mu.Unlock()

	body := make([]byte, 5, 5+64)
	body[0] = kindPh2Req
	binary.BigEndian.PutUint32(body[1:5], msgID)
	body = append(body, prop.encode()...)
	if err := d.sendAuthed(body); err != nil {
		return fmt.Errorf("ike: phase 2 send: %w", err)
	}

	var resp []byte
	select {
	case resp = <-ch:
	case <-time.After(d.cfg.Phase2Timeout):
		d.mu.Lock()
		delete(d.pending, msgID)
		d.stats.Phase2Failed++
		d.mu.Unlock()
		// Tell the responder the exchange is dead: its key withdrawal
		// may still be blocking on the reservoir, and without the
		// cancel it would eat key deposited for our retry (the paper's
		// IKE has no such notion — its mismatched-pool failures simply
		// persist until rekey; see ROADMAP).
		cancel := make([]byte, 5)
		cancel[0] = kindPh2Cancel
		binary.BigEndian.PutUint32(cancel[1:5], msgID)
		if err := d.sendAuthed(cancel); err != nil {
			d.logf("ERROR: isakmp.c:xxxx: phase 2 cancel failed: %v", err)
		}
		return ErrTimeout
	case <-d.stopped:
		return ErrStopped
	}
	if resp[0] == kindPh2Nack {
		d.mu.Lock()
		d.stats.Phase2Failed++
		d.mu.Unlock()
		return ErrRejected
	}
	// resp: kind(1) msgID(4) spiR(4) nonceR(16)
	if len(resp) != 5+4+16 {
		return fmt.Errorf("ike: bad phase 2 response length %d", len(resp))
	}
	spiR := binary.BigEndian.Uint32(resp[5:9])
	var nonceR [16]byte
	copy(nonceR[:], resp[9:25])

	return d.installSAs(prop, spiR, nonceR, true, ticketKey)
}

// handlePhase2 serves one inbound quick-mode request. cancel is the
// exchange's abort channel, registered by the receive loop before this
// handler was spawned; it fires if the initiator abandons the exchange
// (or the daemon stops) while the handler is queued or blocked on the
// key reservoir.
func (d *Daemon) handlePhase2(msgID uint32, payload []byte, cancel <-chan struct{}) {
	prop, err := decodeProposal(payload)
	if err != nil {
		d.logf("ERROR: isakmp.c:xxxx: malformed phase 2 proposal: %v", err)
		return
	}
	d.mu.Lock()
	d.stats.Phase2Responded++
	d.mu.Unlock()

	// Verify the named policies exist before consuming key material. A
	// ticketed proposal still burned its ledger range on the initiator,
	// so release the mirror range here or this side's claim frontier
	// (and ledger pruning) stalls behind the hole forever.
	rev := d.findPolicy(prop.ReversePolicy)
	if rev == nil {
		if prop.HasTicket {
			if st := d.streamFor(prop.Suite); st != nil {
				st.Release(d.ticketOf(prop, st))
			}
		}
		d.nack(msgID)
		return
	}
	d.logf("INFO: isakmp.c:1046:isakmp_ph2begin_r(): respond new phase 2 negotiation: %s[0]<=>%s[0]",
		d.gw.Local, rev.PeerGW)
	d.logf("INFO: proposal.c:1023:set_proposal_from_policy(): RESPONDER setting QPFS encmodesv 1")

	spiR := d.allocSPI()
	var nonceR [16]byte
	d.rand.Bytes(nonceR[:])

	// The responder consumes its key material before replying; the
	// initiator consumes on receipt. Consumption order per negotiation
	// is fixed (initiator->responder direction first), keeping the
	// mirrored reservoirs in lockstep.
	resp := make([]byte, 5+4+16)
	resp[0] = kindPh2Resp
	binary.BigEndian.PutUint32(resp[1:5], msgID)
	binary.BigEndian.PutUint32(resp[5:9], spiR)
	copy(resp[9:25], nonceR[:])

	// The exchange may already have been abandoned (or the daemon
	// stopped) while this handler was queued behind another blocked
	// negotiation; the receive loop registered cancel before spawning
	// us, so the check is race-free.
	select {
	case <-cancel:
		d.logf("INFO: isakmp.c:xxxx: phase 2 msgid %d was abandoned before processing began", msgID)
		if prop.HasTicket {
			if st := d.streamFor(prop.Suite); st != nil {
				st.Release(d.ticketOf(prop, st))
			}
		}
		d.nack(msgID)
		return
	default:
	}

	// A ticketed proposal claims its (stream, sequence) block here —
	// blocking until local distillation covers the range, bounded by
	// the exchange's timeout and abortable by its cancel. Failure
	// releases the range so both ends burn identical ledger.
	var ticketKey *bitarray.BitArray
	if prop.HasTicket {
		st := d.streamFor(prop.Suite)
		if st == nil {
			d.logf("ERROR: bbn-qkd-qpd.c:xxxx: peer offered a KDS ticket but no delivery stream is configured")
			d.nack(msgID)
			return
		}
		tk := d.ticketOf(prop, st)
		key, err := st.Claim(tk, d.cfg.Phase2Timeout, cancel)
		if err != nil {
			d.logf("ERROR: bbn-qkd-qpd.c:1101:qke_create_reply(): claiming (%s, %d): %v", tk.Stream, tk.Seq, err)
			st.Release(tk)
			d.nack(msgID)
			return
		}
		ticketKey = key
	}

	if err := d.installSAsCancelable(prop, spiR, nonceR, false, cancel, ticketKey); err != nil {
		d.logf("ERROR: bbn-qkd-qpd.c:1101:qke_create_reply(): %v", err)
		d.nack(msgID)
		return
	}
	if prop.Suite == ipsec.SuiteOTP {
		d.logf("INFO: bbn-qkd-qpd.c:1047:qke_create_reply(): reply %d pad bits one-time-pad mode",
			prop.OTPBits)
	} else {
		d.logf("INFO: bbn-qkd-qpd.c:1047:qke_create_reply(): reply %d Qblocks %d bits %f entropy (offer is %d Qblocks)",
			prop.Qblocks, QblockBits, float64(prop.Qblocks*QblockBits), prop.Qblocks)
	}
	if err := d.sendAuthed(resp); err != nil {
		d.logf("ERROR: isakmp.c:xxxx: phase 2 reply failed: %v", err)
	}
}

func (d *Daemon) nack(msgID uint32) {
	d.mu.Lock()
	d.stats.Phase2Failed++
	d.mu.Unlock()
	body := make([]byte, 5)
	body[0] = kindPh2Nack
	binary.BigEndian.PutUint32(body[1:5], msgID)
	d.sendAuthed(body)
}

func (d *Daemon) findPolicy(name string) *ipsec.Policy {
	return d.gw.SPD.ByName(name)
}

// ticketOf reconstructs the kms ticket a proposal carries.
func (d *Daemon) ticketOf(prop *phase2Proposal, st *kms.Stream) kms.Ticket {
	return kms.Ticket{
		Stream: st.Name(),
		Seq:    prop.TicketSeq,
		Offset: prop.TicketOff,
		Bits:   int(prop.TicketBits),
	}
}

// installSAs derives KEYMAT (or withdraws pads) and installs both
// directions' SAs. The initiator's outbound direction is always keyed
// first so both reservoirs are consumed in the same order.
func (d *Daemon) installSAs(prop *phase2Proposal, spiR uint32, nonceR [16]byte, isInitiator bool, ticketKey *bitarray.BitArray) error {
	return d.installSAsCancelable(prop, spiR, nonceR, isInitiator, nil, ticketKey)
}

// installSAsCancelable is installSAs with an abort channel threaded
// into the blocking key withdrawals (responder side: the exchange may
// die while the reservoir fills). ticketKey, when non-nil, is the
// pre-claimed (stream, sequence) key block; otherwise the key is
// withdrawn from the lockstep pool.
func (d *Daemon) installSAsCancelable(prop *phase2Proposal, spiR uint32, nonceR [16]byte, isInitiator bool, cancel <-chan struct{}, ticketKey *bitarray.BitArray) error {
	life := ipsec.Lifetime{
		Duration: time.Duration(prop.LifeSeconds) * time.Second,
		Bytes:    prop.LifeBytes,
	}
	seed := append(append([]byte(nil), prop.Nonce[:]...), nonceR[:]...)

	// withdraw pulls n bits of key: from the pre-claimed ticket block
	// when the negotiation rode the key delivery service (both ends
	// slice the same prefix of the same ledger range), or from the
	// lockstep pool otherwise.
	withdraw := func(n int) (*bitarray.BitArray, error) {
		if ticketKey != nil {
			if ticketKey.Len() < n {
				return nil, fmt.Errorf("ticket block of %d bits short of %d", ticketKey.Len(), n)
			}
			return ticketKey.Slice(0, n), nil
		}
		return d.pool.ConsumeCancelable(n, d.cfg.Phase2Timeout, cancel)
	}

	var saIR, saRI *ipsec.SA // initiator->responder keyed by spiR; reverse by prop.SPI
	if prop.Suite == ipsec.SuiteOTP {
		// Withdraw both directions' pads in ONE atomic consume: a
		// partial withdrawal on a failed negotiation would silently
		// desynchronize the two ends' mirrored reservoirs, poisoning
		// every subsequent SA.
		pads, err := withdraw(2 * int(prop.OTPBits))
		if err != nil {
			return fmt.Errorf("withdrawing OTP pads: %w", err)
		}
		padIR := pads.Slice(0, int(prop.OTPBits))
		padRI := pads.Slice(int(prop.OTPBits), pads.Len())
		d.mu.Lock()
		d.stats.QbitsConsumed += 2 * prop.OTPBits
		d.mu.Unlock()
		if saIR, err = ipsec.NewOTPSA(spiR, padIR.Bytes(), life); err != nil {
			return err
		}
		if saRI, err = ipsec.NewOTPSA(prop.SPI, padRI.Bytes(), life); err != nil {
			return err
		}
	} else {
		qbits, err := withdraw(int(prop.Qblocks) * QblockBits)
		if err != nil {
			return fmt.Errorf("withdrawing %d Qblocks: %w", prop.Qblocks, err)
		}
		d.mu.Lock()
		skeyid := d.skeyid
		d.stats.QbitsConsumed += uint64(prop.Qblocks) * QblockBits
		d.mu.Unlock()
		// "we have included distilled QKD bits into the IKE Phase 2
		// hash, so that keys protecting IPsec SAs are derived from QKD."
		qseed := append(append([]byte(nil), qbits.Bytes()...), seed...)
		keyLen := prop.Suite.KeyBits() / 8
		kIR := expandKeymat(skeyid, append(qseed, spiBytes(spiR)...), keyLen)
		kRI := expandKeymat(skeyid, append(qseed, spiBytes(prop.SPI)...), keyLen)
		d.logf("INFO: oakley.c:473:oakley_compute_keymat_x(): KEYMAT using %d bytes QBITS",
			int(prop.Qblocks)*QblockBits/8)
		d.logf("INFO: oakley.c:473:oakley_compute_keymat_x(): KEYMAT using %d bytes QBITS",
			int(prop.Qblocks)*QblockBits/8)
		if saIR, err = ipsec.NewSA(spiR, prop.Suite, kIR, life); err != nil {
			return err
		}
		if saRI, err = ipsec.NewSA(prop.SPI, prop.Suite, kRI, life); err != nil {
			return err
		}
	}

	// Inbound SAs join the tunnel direction's rollover generation chain
	// (keyed by the peer's outbound policy) and are filed under the peer
	// gateway's SAD bucket: the superseded generation drains in-flight
	// traffic through its grace window and is then removed, so
	// renegotiation no longer leaks undead inbound SAs.
	peerGW := d.peerGateway(prop)
	if isInitiator {
		d.gw.SAD.InstallOutbound(prop.PolicyName, saIR)
		d.gw.SAD.InstallInboundFor(prop.ReversePolicy, peerGW, saRI)
	} else {
		d.gw.SAD.InstallInboundFor(prop.PolicyName, peerGW, saIR)
		d.gw.SAD.InstallOutbound(prop.ReversePolicy, saRI)
	}
	d.mu.Lock()
	d.stats.SAsEstablished += 2
	d.mu.Unlock()
	peer := "peer"
	if peerGW != (ipsec.Addr{}) {
		peer = peerGW.String()
	}
	d.logf("INFO: pfkey.c:1107:pk_recvupdate(): IPsec-SA established: ESP/Tunnel %s->%s spi=%d(%#x)",
		d.gw.Local, peer, spiR, spiR)
	d.logf("INFO: pfkey.c:1319:pk_recvadd(): IPsec-SA established: ESP/Tunnel %s->%s spi=%d(%#x)",
		peer, d.gw.Local, prop.SPI, prop.SPI)
	return nil
}

// peerGateway derives the remote tunnel endpoint for a negotiation:
// of the proposal's two policies, the one whose PeerGW is not this
// gateway names the other end. Both ends resolve the same address,
// which keys the inbound SA's per-peer SAD bucket. The zero Addr
// (policy not found locally) falls back to the wildcard bucket.
func (d *Daemon) peerGateway(prop *phase2Proposal) ipsec.Addr {
	for _, name := range []string{prop.PolicyName, prop.ReversePolicy} {
		if p := d.findPolicy(name); p != nil && p.PeerGW != d.gw.Local {
			return p.PeerGW
		}
	}
	return ipsec.Addr{}
}

func spiBytes(spi uint32) []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, spi)
	return b
}

// WaitAvailable blocks until the key supply holds at least bits, a
// convenience for tests and experiments staging exhaustion.
func WaitAvailable(pool keypool.Source, bits int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for pool.Available() < bits {
		if time.Now().After(deadline) {
			return ErrTimeout
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}
