package ike

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"qkd/internal/bitarray"
	"qkd/internal/ipsec"
	"qkd/internal/keypool"
	"qkd/internal/kms"
)

// BatchItem is one tunnel's entry in a batched quick-mode exchange.
type BatchItem struct {
	// Policy is the initiator-outbound policy to key.
	Policy *ipsec.Policy
	// ReversePolicy names the responder's outbound policy for the same
	// tunnel.
	ReversePolicy string
}

// maxBatchItems bounds one batch exchange (the wire count field is 16
// bits).
const maxBatchItems = 1<<16 - 1

// NegotiateBatch runs quick mode for many tunnels in ONE authenticated
// exchange, the rekey-storm amortization: a single message round
// carries every proposal, and all key blocks drawn from the same
// delivery stream are allocated under the QoS scheduler with ONE
// ledger ticket for the whole burst, sliced into per-tunnel
// block-aligned sub-ranges that both ends claim identically. Compared
// to len(items) calls of Negotiate, a fabric-wide expiry storm costs
// one scheduler pass and one round trip instead of thousands.
//
// The returned slice has one error per item (nil on success); the
// second return is a batch-level failure (nothing was negotiated).
// Only the Initiator daemon may call it.
func (d *Daemon) NegotiateBatch(items []BatchItem) ([]error, error) {
	if d.role != Initiator {
		return nil, fmt.Errorf("ike: only the initiator daemon negotiates")
	}
	if len(items) == 0 {
		return nil, nil
	}
	if len(items) > maxBatchItems {
		return nil, fmt.Errorf("ike: batch of %d exceeds %d items", len(items), maxBatchItems)
	}
	//lint:lockorder negMu deliberately serializes phase-2 exchanges end to end, batch allocation and response wait included; it is a protocol turnstile, not a data lock, and nothing acquires it from under another lock
	d.negMu.Lock()
	defer d.negMu.Unlock()
	d.mu.Lock()
	ready := d.skeyid != nil
	d.mu.Unlock()
	if !ready {
		return nil, ErrNotReady
	}

	errs := make([]error, len(items))
	props := make([]*phase2Proposal, len(items))
	for i, it := range items {
		pol := it.Policy
		prop := &phase2Proposal{
			PolicyName:    pol.Name,
			ReversePolicy: it.ReversePolicy,
			Suite:         pol.Suite,
			LifeSeconds:   uint32(pol.Life.Duration / time.Second),
			LifeBytes:     pol.Life.Bytes,
			SPI:           d.allocSPI(),
		}
		d.rand.Bytes(prop.Nonce[:])
		if pol.Suite == ipsec.SuiteOTP {
			bits := pol.OTPBits
			if bits == 0 {
				bits = 8 * 1024 * 8
			}
			prop.OTPBits = uint64(bits)
		} else {
			prop.Qblocks = uint32(d.cfg.Qblocks)
		}
		props[i] = prop
	}

	// Group the burst's key demand by delivery stream and allocate each
	// stream's total in one scheduler pass; the parent grant is then
	// sliced into block-aligned sub-tickets (one per tunnel) that ride
	// in the proposals. Items without a stream fall back to lockstep
	// pool withdrawal in wire order, exactly as Negotiate would.
	keys := make([]*bitarray.BitArray, len(items))
	type group struct {
		st     *kms.Stream
		idx    []int
		blocks []int
		total  int
	}
	var groups []*group
	byStream := make(map[*kms.Stream]*group)
	for i, it := range items {
		st := d.streamFor(it.Policy.Suite)
		if st == nil {
			continue
		}
		needed := int(props[i].Qblocks) * QblockBits
		if it.Policy.Suite == ipsec.SuiteOTP {
			needed = 2 * int(props[i].OTPBits)
		}
		blocks := (needed + st.BlockBits() - 1) / st.BlockBits()
		g := byStream[st]
		if g == nil {
			g = &group{st: st}
			byStream[st] = g
			groups = append(groups, g)
		}
		g.idx = append(g.idx, i)
		g.blocks = append(g.blocks, blocks)
		g.total += blocks
	}
	for _, g := range groups {
		var parent kms.Ticket
		err := d.retryShedAlloc(func() error {
			var aerr error
			parent, aerr = g.st.AllocateWait(g.total, d.cfg.Phase2Timeout, nil)
			d.mu.Lock()
			d.stats.TicketAllocs++
			d.mu.Unlock()
			return aerr
		})
		if err != nil {
			if errors.Is(err, keypool.ErrTimeout) {
				err = ErrTimeout
			}
			for _, i := range g.idx {
				errs[i] = fmt.Errorf("ike: allocating batch key block: %w", err)
			}
			d.mu.Lock()
			d.stats.Phase2Failed += uint64(len(g.idx))
			d.mu.Unlock()
			continue
		}
		b0 := 0
		for k, i := range g.idx {
			sub := kms.Ticket{
				Stream: g.st.Name(),
				Seq:    parent.Seq + uint64(b0),
				Offset: parent.Offset + uint64(b0*g.st.BlockBits()),
				Bits:   g.blocks[k] * g.st.BlockBits(),
			}
			b0 += g.blocks[k]
			key, err := g.st.Claim(sub, d.cfg.Phase2Timeout, nil)
			if err != nil {
				g.st.Release(sub)
				errs[i] = fmt.Errorf("ike: claiming batch sub-ticket: %w", err)
				d.mu.Lock()
				d.stats.Phase2Failed++
				d.mu.Unlock()
				continue
			}
			keys[i] = key
			props[i].HasTicket = true
			props[i].TicketSeq = sub.Seq
			props[i].TicketOff = sub.Offset
			props[i].TicketBits = uint32(sub.Bits)
		}
	}

	// Items whose allocation failed stay out of the wire batch.
	var wire []int
	for i := range items {
		if errs[i] == nil {
			wire = append(wire, i)
		}
	}
	if len(wire) == 0 {
		return errs, nil
	}

	msgID := d.allocMsgID()
	d.logf("INFO: isakmp.c:939:isakmp_ph2begin_i(): initiate batched phase 2 negotiation: %d tunnels", len(wire))
	d.mu.Lock()
	d.stats.Phase2Initiated += uint64(len(wire))
	d.stats.Phase2Batches++
	ch := make(chan []byte, 1)
	d.pending[msgID] = ch
	d.mu.Unlock()

	body := make([]byte, 7, 7+len(wire)*96)
	body[0] = kindPh2BatchReq
	binary.BigEndian.PutUint32(body[1:5], msgID)
	binary.BigEndian.PutUint16(body[5:7], uint16(len(wire)))
	for _, i := range wire {
		enc := props[i].encode()
		body = binary.BigEndian.AppendUint16(body, uint16(len(enc)))
		body = append(body, enc...)
	}
	if err := d.sendAuthed(body); err != nil {
		return nil, fmt.Errorf("ike: batched phase 2 send: %w", err)
	}

	var resp []byte
	select {
	case resp = <-ch:
	case <-time.After(d.cfg.Phase2Timeout):
		d.mu.Lock()
		delete(d.pending, msgID)
		d.stats.Phase2Failed += uint64(len(wire))
		d.mu.Unlock()
		cancel := make([]byte, 5)
		cancel[0] = kindPh2Cancel
		binary.BigEndian.PutUint32(cancel[1:5], msgID)
		if err := d.sendAuthed(cancel); err != nil {
			d.logf("ERROR: isakmp.c:xxxx: batched phase 2 cancel failed: %v", err)
		}
		for _, i := range wire {
			errs[i] = ErrTimeout
		}
		return errs, nil
	case <-d.stopped:
		return nil, ErrStopped
	}

	// resp: kind(1) msgID(4) count(2) { ok(1) spiR(4) nonceR(16) }*
	const entryLen = 1 + 4 + 16
	if len(resp) < 7 || int(binary.BigEndian.Uint16(resp[5:7])) != len(wire) ||
		len(resp) != 7+len(wire)*entryLen {
		return nil, fmt.Errorf("ike: bad batched phase 2 response length %d", len(resp))
	}
	for k, i := range wire {
		e := resp[7+k*entryLen:]
		if e[0] == 0 {
			errs[i] = ErrRejected
			d.mu.Lock()
			d.stats.Phase2Failed++
			d.mu.Unlock()
			continue
		}
		spiR := binary.BigEndian.Uint32(e[1:5])
		var nonceR [16]byte
		copy(nonceR[:], e[5:21])
		errs[i] = d.installSAs(props[i], spiR, nonceR, true, keys[i])
	}
	return errs, nil
}

// handlePhase2Batch serves one inbound batched quick-mode request:
// per-item policy checks, ticket claims, and SA installs, answered in
// one authenticated reply. A failed item occupies its reply slot with
// ok=0 (and releases its ledger range) without sinking the rest of the
// burst; a batch abandoned by the initiator releases every remaining
// range and stays silent.
func (d *Daemon) handlePhase2Batch(msgID uint32, payload []byte, cancel <-chan struct{}) {
	if len(payload) < 2 {
		d.logf("ERROR: isakmp.c:xxxx: malformed batched phase 2 request")
		return
	}
	count := int(binary.BigEndian.Uint16(payload[:2]))
	props := make([]*phase2Proposal, 0, count)
	b := payload[2:]
	for n := 0; n < count; n++ {
		if len(b) < 2 {
			d.logf("ERROR: isakmp.c:xxxx: truncated batched phase 2 request")
			return
		}
		l := int(binary.BigEndian.Uint16(b))
		if len(b) < 2+l {
			d.logf("ERROR: isakmp.c:xxxx: truncated batched phase 2 proposal")
			return
		}
		prop, err := decodeProposal(b[2 : 2+l])
		if err != nil {
			d.logf("ERROR: isakmp.c:xxxx: malformed phase 2 proposal in batch: %v", err)
			return
		}
		props = append(props, prop)
		b = b[2+l:]
	}
	d.mu.Lock()
	d.stats.Phase2Responded += uint64(len(props))
	d.stats.Phase2Batches++
	d.mu.Unlock()
	d.logf("INFO: isakmp.c:1046:isakmp_ph2begin_r(): respond batched phase 2 negotiation: %d tunnels", len(props))

	releaseTicket := func(prop *phase2Proposal) {
		if prop.HasTicket {
			if st := d.streamFor(prop.Suite); st != nil {
				st.Release(d.ticketOf(prop, st))
			}
		}
	}

	const entryLen = 1 + 4 + 16
	resp := make([]byte, 7, 7+len(props)*entryLen)
	resp[0] = kindPh2BatchResp
	binary.BigEndian.PutUint32(resp[1:5], msgID)
	binary.BigEndian.PutUint16(resp[5:7], uint16(len(props)))

	for n, prop := range props {
		// The initiator abandoned the batch: burn the remaining ledger
		// ranges so both ends' claim frontiers keep advancing, and send
		// nothing (its timeout already failed every item).
		select {
		case <-cancel:
			d.logf("INFO: isakmp.c:xxxx: batched phase 2 msgid %d abandoned at item %d", msgID, n)
			for _, rest := range props[n:] {
				releaseTicket(rest)
			}
			d.mu.Lock()
			d.stats.Phase2Failed += uint64(len(props) - n)
			d.mu.Unlock()
			return
		default:
		}

		fail := func(format string, args ...interface{}) {
			d.logf("ERROR: bbn-qkd-qpd.c:1101:qke_create_reply(): "+format, args...)
			releaseTicket(prop)
			d.mu.Lock()
			d.stats.Phase2Failed++
			d.mu.Unlock()
			resp = append(resp, make([]byte, entryLen)...)
		}

		rev := d.findPolicy(prop.ReversePolicy)
		if rev == nil {
			fail("batch item %d: unknown policy %q", n, prop.ReversePolicy)
			continue
		}
		// Per-item racoon lines match the single-negotiation transcript
		// (Fig. 12): batching changes the wire, not the log.
		d.logf("INFO: isakmp.c:1046:isakmp_ph2begin_r(): respond new phase 2 negotiation: %s[0]<=>%s[0]",
			d.gw.Local, rev.PeerGW)
		d.logf("INFO: proposal.c:1023:set_proposal_from_policy(): RESPONDER setting QPFS encmodesv 1")
		spiR := d.allocSPI()
		var nonceR [16]byte
		d.rand.Bytes(nonceR[:])

		var ticketKey *bitarray.BitArray
		if prop.HasTicket {
			st := d.streamFor(prop.Suite)
			if st == nil {
				fail("batch item %d: ticket offered but no delivery stream configured", n)
				continue
			}
			tk := d.ticketOf(prop, st)
			key, err := st.Claim(tk, d.cfg.Phase2Timeout, cancel)
			if err != nil {
				st.Release(tk)
				d.logf("ERROR: bbn-qkd-qpd.c:1101:qke_create_reply(): claiming (%s, %d): %v", tk.Stream, tk.Seq, err)
				d.mu.Lock()
				d.stats.Phase2Failed++
				d.mu.Unlock()
				resp = append(resp, make([]byte, entryLen)...)
				continue
			}
			ticketKey = key
		}
		if err := d.installSAsCancelable(prop, spiR, nonceR, false, cancel, ticketKey); err != nil {
			fail("batch item %d: %v", n, err)
			continue
		}
		if prop.Suite == ipsec.SuiteOTP {
			d.logf("INFO: bbn-qkd-qpd.c:1047:qke_create_reply(): reply %d pad bits one-time-pad mode",
				prop.OTPBits)
		} else {
			d.logf("INFO: bbn-qkd-qpd.c:1047:qke_create_reply(): reply %d Qblocks %d bits %f entropy (offer is %d Qblocks)",
				prop.Qblocks, QblockBits, float64(prop.Qblocks*QblockBits), prop.Qblocks)
		}
		resp = append(resp, 1)
		resp = binary.BigEndian.AppendUint32(resp, spiR)
		resp = append(resp, nonceR[:]...)
	}
	if err := d.sendAuthed(resp); err != nil {
		d.logf("ERROR: isakmp.c:xxxx: batched phase 2 reply failed: %v", err)
	}
}
