package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PadReuse flags the pad-hygiene violations behind the paper's
// one-time-pad security argument: key material must be consumed
// exactly once and must not gain long-lived aliases after it is spent.
// Three shapes are checked, all within one function and between
// sibling statements (so exclusive if/else branches never false-
// positive):
//
//  1. pad re-burn: calling Consume on a reservation after an
//     unconditional Release or Close voided it — the historical PR 4
//     relay bug shape, where a failed delivery burned pad that was
//     already refunded;
//  2. retained alias: a []byte of key material obtained from a
//     keypool/kms consume-style call is stored into a field, global,
//     slice, or map without a copy — the spent pad now has an owner
//     that outlives the wipe-on-consume discipline (store a copy, as
//     NewOTPSA does with append([]byte(nil), pad...));
//  3. use-after-wipe: reading a pad after clear(pad) or a
//     zero/wipe/scrub call — the buffer is zeroes, not key material,
//     and sealing with it would emit plaintext XOR nothing.
var PadReuse = &Analyzer{
	Name: "padreuse",
	Doc: "flag consumed-pad hygiene violations: Consume after Release/Close " +
		"(pad re-burn), storing consumed []byte key material without a copy " +
		"(retained alias), and reads of a wiped pad",
	Run: runPadReuse,
}

// padSourceCalls are the keypool/kms entry points that hand out key
// material the caller then owns exclusively.
var padSourceCalls = map[string]bool{
	"Consume":           true,
	"ConsumeCancelable": true,
	"TryConsume":        true,
	"Withdraw":          true,
	"Claim":             true,
	"Next":              true,
}

func runPadReuse(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkPadFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

func checkPadFunc(pass *Pass, body *ast.BlockStmt) {
	padVars := collectPadVars(pass, body)
	forEachStmtList(body, func(stmts []ast.Stmt) {
		checkReburn(pass, stmts)
		checkWipe(pass, stmts)
	})
	if len(padVars) > 0 {
		checkRetainedAliases(pass, body, padVars)
	}
}

// forEachStmtList visits every statement list in the function: block
// bodies and case/comm clause bodies. Nested function literals get
// their own checkPadFunc invocation, so they are skipped here.
func forEachStmtList(body *ast.BlockStmt, fn func([]ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			fn(n.List)
		case *ast.CaseClause:
			fn(n.Body)
		case *ast.CommClause:
			fn(n.Body)
		}
		return true
	})
}

// ---------------------------------------------------------------------
// Rule 1: Consume after an unconditional Release/Close (pad re-burn)
// ---------------------------------------------------------------------

// voidCall matches `rv.Release()` / `rv.Close()` where rv has a
// reservation type, returning the receiver's object.
func voidCall(pass *Pass, s ast.Stmt) types.Object {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := unparen(es.X).(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Release" && sel.Sel.Name != "Close") {
		return nil
	}
	id, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || !isReservationType(obj.Type()) {
		return nil
	}
	return obj
}

// checkReburn flags rv.Consume(...) in a statement after an earlier
// sibling statement that was an unconditional rv.Release()/rv.Close().
func checkReburn(pass *Pass, stmts []ast.Stmt) {
	voided := make(map[types.Object]int) // obj -> index of the voiding stmt
	for i, s := range stmts {
		if len(voided) > 0 {
			scanNoFuncLit(s, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Consume" {
					return
				}
				id, ok := unparen(sel.X).(*ast.Ident)
				if !ok {
					return
				}
				obj := pass.TypesInfo.Uses[id]
				if obj == nil {
					return
				}
				if vi, ok := voided[obj]; ok {
					pass.Reportf(call.Pos(), "pad re-burn: %s.Consume after %s voided the reservation at line %d; the set-aside key was already refunded or discarded",
						id.Name, id.Name, pass.Fset.Position(stmts[vi].Pos()).Line)
				}
			})
			// A reassignment of a voided variable starts a fresh
			// reservation; stop tracking it.
			if as, ok := s.(*ast.AssignStmt); ok {
				for _, l := range as.Lhs {
					if id, ok := unparen(l).(*ast.Ident); ok {
						if obj := pass.TypesInfo.Uses[id]; obj != nil {
							delete(voided, obj)
						}
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							delete(voided, obj)
						}
					}
				}
			}
		}
		if obj := voidCall(pass, s); obj != nil {
			if _, seen := voided[obj]; !seen {
				voided[obj] = i
			}
		}
	}
}

// ---------------------------------------------------------------------
// Rule 2: retained alias of consumed []byte key material
// ---------------------------------------------------------------------

// collectPadVars finds local []byte variables initialized directly
// from a keypool/kms consume-style call.
func collectPadVars(pass *Pass, body *ast.BlockStmt) map[types.Object]string {
	pads := make(map[types.Object]string)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, l := range as.Lhs {
			id, ok := unparen(l).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			var rhs ast.Expr
			if len(as.Rhs) == 1 {
				rhs = as.Rhs[0]
			} else if i < len(as.Rhs) {
				rhs = as.Rhs[i]
			}
			call, ok := unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || !padSourceCalls[fn.Name()] {
				continue
			}
			if name := fn.Pkg().Name(); name != "keypool" && name != "kms" {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil || !isByteSlice(obj.Type()) {
				continue
			}
			pads[obj] = fn.Pkg().Name() + "." + fn.Name()
		}
		return true
	})
	return pads
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// checkRetainedAliases flags stores of a pad variable into locations
// that outlive the function: struct fields, globals, slice/map
// elements, composite literals, and append without a byte copy.
func checkRetainedAliases(pass *Pass, body *ast.BlockStmt, pads map[types.Object]string) {
	report := func(id *ast.Ident, src, how string) {
		pass.Reportf(id.Pos(), "consumed key material %s (from %s) is %s without a copy; the spent pad gains a long-lived alias — store append([]byte(nil), %s...) instead",
			id.Name, src, how, id.Name)
	}
	padOf := func(e ast.Expr) (*ast.Ident, string, bool) {
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			return nil, "", false
		}
		obj := pass.TypesInfo.Uses[id]
		src, tracked := pads[obj]
		return id, src, tracked
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				id, src, ok := padOf(r)
				if !ok || i >= len(n.Lhs) {
					continue
				}
				switch lhs := unparen(n.Lhs[i]).(type) {
				case *ast.SelectorExpr:
					report(id, src, "assigned to field "+lhs.Sel.Name)
				case *ast.IndexExpr:
					report(id, src, "stored into a slice or map element")
				case *ast.Ident:
					if v, ok := pass.TypesInfo.Uses[lhs].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
						report(id, src, "assigned to package-level variable "+v.Name())
					}
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if id, src, ok := padOf(v); ok {
					report(id, src, "stored in a composite literal")
				}
			}
		case *ast.CallExpr:
			// append(xs, pad) retains the alias; append(dst, pad...)
			// copies bytes and is the sanctioned idiom.
			if fun, ok := unparen(n.Fun).(*ast.Ident); ok && fun.Name == "append" {
				if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
					for i, arg := range n.Args {
						if i == 0 {
							continue
						}
						if n.Ellipsis.IsValid() && i == len(n.Args)-1 {
							continue
						}
						if id, src, ok := padOf(arg); ok {
							report(id, src, "appended into a longer-lived slice")
						}
					}
				}
			}
		}
		return true
	})
}

// ---------------------------------------------------------------------
// Rule 3: reads of a wiped pad
// ---------------------------------------------------------------------

// wipeCall matches an unconditional statement `clear(pad)` or
// `zeroX(pad)`/`wipeX(pad)`/`scrub(pad)`, returning the wiped object.
func wipeCall(pass *Pass, s ast.Stmt) (types.Object, string) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil, ""
	}
	call, ok := unparen(es.X).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil, ""
	}
	var name string
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
		if name == "clear" {
			if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); !isBuiltin {
				return nil, ""
			}
		}
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return nil, ""
	}
	lower := strings.ToLower(name)
	if name != "clear" && !strings.Contains(lower, "zero") && !strings.Contains(lower, "wipe") && !strings.Contains(lower, "scrub") {
		return nil, ""
	}
	id, ok := unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil, ""
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || !isByteSlice(obj.Type()) {
		return nil, ""
	}
	return obj, name
}

// checkWipe flags reads of a pad in statements after an unconditional
// sibling wipe, until the variable is reassigned.
func checkWipe(pass *Pass, stmts []ast.Stmt) {
	wiped := make(map[types.Object]int)
	for _, s := range stmts {
		if len(wiped) > 0 {
			// Reassignment revives the variable before its uses in this
			// statement are judged (pad = freshPad() is not a read).
			reassigned := map[types.Object]bool{}
			if as, ok := s.(*ast.AssignStmt); ok {
				for _, l := range as.Lhs {
					if id, ok := unparen(l).(*ast.Ident); ok {
						if obj := pass.TypesInfo.Uses[id]; obj != nil && wiped[obj] > 0 {
							reassigned[obj] = true
						}
					}
				}
			}
			scanNoFuncLit(s, func(n ast.Node) {
				id, ok := n.(*ast.Ident)
				if !ok {
					return
				}
				obj := pass.TypesInfo.Uses[id]
				if obj == nil || reassigned[obj] {
					return
				}
				if line, ok := wiped[obj]; ok && line > 0 {
					if as, isAssign := s.(*ast.AssignStmt); isAssign {
						for _, l := range as.Lhs {
							if unparen(l) == ast.Expr(id) {
								return
							}
						}
					}
					pass.Reportf(id.Pos(), "use of %s after it was wiped at line %d; the zeroed buffer is no longer key material", id.Name, line)
				}
			})
			for obj := range reassigned {
				delete(wiped, obj)
			}
		}
		if obj, _ := wipeCall(pass, s); obj != nil {
			if _, seen := wiped[obj]; !seen {
				wiped[obj] = pass.Fset.Position(s.Pos()).Line
			}
		}
	}
}

// scanNoFuncLit walks a statement's subtree, skipping nested function
// literals (their execution time is unknown).
func scanNoFuncLit(s ast.Stmt, fn func(ast.Node)) {
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
