package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ReservePair proves (in the lostcancel style) that every
// keypool.Reservation obtained from Reserve reaches Consume, Release,
// or Close on all paths of its enclosing function, or escapes to an
// owner who can. A reservation holds set-aside key out of
// Available(): a path that returns without finishing it strands those
// bits forever — exactly the leak PR 4 fixed in relay (Cut'd links
// left transports blocked on pads nobody would ever refund).
//
// The analysis walks structured control flow (blocks, if/else, for,
// switch, select) from the Reserve call, tracking whether the
// reservation is still pending when a return or the end of its scope
// is reached. It is deliberately conservative about aliasing: any use
// other than a method call — passing the reservation to a function,
// appending it to a slice, returning it, storing it, capturing it in a
// closure — transfers ownership and ends the obligation locally.
// Guard branches conditioned on the reservation or on the error from
// the same assignment (if err != nil { return err }) are the failure
// path on which the reservation is nil, and are exempt. Functions
// containing goto are skipped.
var ReservePair = &Analyzer{
	Name: "reservepair",
	Doc: "prove every keypool.Reserve reservation reaches Consume, Release, " +
		"or Close (or escapes) on all paths; a path that drops it strands " +
		"set-aside key bits out of the reservoir forever",
	Run: runReservePair,
}

// reservationTerminators end the Consume/Release/Close obligation.
var reservationTerminators = map[string]bool{
	"Consume": true,
	"Release": true,
	"Close":   true,
}

// isReservationType reports whether t is keypool.Reservation or a
// pointer to it. Matching by (package name, type name) rather than
// full import path keeps the analyzer testable against the fake
// keypool package in testdata.
func isReservationType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Reservation" && obj.Pkg() != nil && obj.Pkg().Name() == "keypool"
}

func runReservePair(pass *Pass) error {
	for _, f := range pass.Files {
		WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				checkReserveAssign(pass, s, s.Lhs, s.Rhs, stack)
			case *ast.DeclStmt:
				if gd, ok := s.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
					for _, spec := range gd.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
							lhs := make([]ast.Expr, len(vs.Names))
							for i, name := range vs.Names {
								lhs[i] = name
							}
							checkReserveDecl(pass, s, lhs, vs.Values, stack)
						}
					}
				}
			case *ast.ExprStmt:
				if call, ok := unparen(s.X).(*ast.CallExpr); ok {
					if idx := reservationResultIndex(pass, call); idx >= 0 {
						pass.Reportf(call.Pos(), "result of %s is discarded; the reservation's set-aside key bits can never be consumed, released, or closed", callName(pass, call))
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkReserveAssign handles `rv, err := pool.Reserve(n)` and plain `=`.
func checkReserveAssign(pass *Pass, stmt ast.Stmt, lhs, rhs []ast.Expr, stack []ast.Node) {
	checkReserveDecl(pass, stmt, lhs, rhs, stack)
}

func checkReserveDecl(pass *Pass, stmt ast.Stmt, lhs, rhs []ast.Expr, stack []ast.Node) {
	// Creation means the right-hand side is a call producing a
	// reservation; aliasing assignments (rv2 := rv) are not creations.
	resultOfCall := func(i int) *ast.CallExpr {
		if len(rhs) == 1 && len(lhs) > 1 {
			call, _ := unparen(rhs[0]).(*ast.CallExpr)
			return call
		}
		if i < len(rhs) {
			call, _ := unparen(rhs[i]).(*ast.CallExpr)
			return call
		}
		return nil
	}
	for i, l := range lhs {
		id, ok := unparen(l).(*ast.Ident)
		if !ok {
			continue
		}
		call := resultOfCall(i)
		if call == nil {
			continue
		}
		t := lhsType(pass, id, call, i, len(lhs))
		if t == nil || !isReservationType(t) {
			continue
		}
		if id.Name == "_" {
			pass.Reportf(id.Pos(), "reservation from %s is assigned to _; its set-aside key bits can never be consumed, released, or closed", callName(pass, call))
			continue
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id] // plain `=` to an existing var
		}
		if obj == nil {
			continue
		}
		errObj := companionErrObj(pass, lhs, i)
		body := enclosingFuncBody(stack)
		if body == nil || containsGoto(body) {
			continue
		}
		flow := &resvFlow{
			pass:    pass,
			obj:     obj,
			errObj:  errObj,
			decl:    stmt,
			callPos: call.Pos(),
			name:    id.Name,
		}
		flow.run(body)
	}
}

// lhsType resolves the static type the i'th LHS receives.
func lhsType(pass *Pass, id *ast.Ident, call *ast.CallExpr, i, n int) types.Type {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj.Type()
	}
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj.Type()
	}
	// Blank identifier: take the type from the call's result tuple.
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return nil
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		if i < tuple.Len() {
			return tuple.At(i).Type()
		}
		return nil
	}
	if n == 1 {
		return tv.Type
	}
	return nil
}

// reservationResultIndex returns the index of a reservation-typed
// result of call, or -1.
func reservationResultIndex(pass *Pass, call *ast.CallExpr) int {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return -1
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isReservationType(tuple.At(i).Type()) {
				return i
			}
		}
		return -1
	}
	if isReservationType(tv.Type) {
		return 0
	}
	return -1
}

func callName(pass *Pass, call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "call"
}

// companionErrObj returns the error variable assigned alongside the
// reservation (the `err` of `rv, err := Reserve(n)`), if any.
func companionErrObj(pass *Pass, lhs []ast.Expr, skip int) types.Object {
	for i, l := range lhs {
		if i == skip {
			continue
		}
		id, ok := unparen(l).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj != nil && isErrorType(obj.Type()) {
			return obj
		}
	}
	return nil
}

func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

func containsGoto(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.GOTO {
			found = true
		}
		return !found
	})
	return found
}

// ---------------------------------------------------------------------
// Structured-control-flow walk
// ---------------------------------------------------------------------

type resvState struct {
	pending  bool // reservation live, obligation unmet
	deferred bool // a deferred statement on this path discharges it
}

type resvFlow struct {
	pass    *Pass
	obj     types.Object // the reservation variable
	errObj  types.Object // its companion error, if any
	decl    ast.Stmt     // the creating statement
	callPos token.Pos    // position of the Reserve call (report anchor)
	name    string

	reported   bool
	guardDepth int // inside a branch conditioned on the reservation or its error
}

func (f *resvFlow) run(body *ast.BlockStmt) {
	out, diverged := f.execList(body.List, resvState{})
	_ = out
	_ = diverged // scope-end reporting happens inside execList
}

func (f *resvFlow) report(leakPos token.Pos, what string) {
	if f.reported {
		return
	}
	f.reported = true
	leak := f.pass.Fset.Position(leakPos)
	f.pass.Reportf(f.callPos, "reservation %s does not reach Consume, Release, or Close on the path %s at %s:%d; the set-aside key bits leak",
		f.name, what, leak.Filename, leak.Line)
}

// execList executes a statement list. If the list directly contains
// the creating statement, falling off its end while pending is a leak
// (the variable's scope dies with the obligation unmet).
func (f *resvFlow) execList(stmts []ast.Stmt, in resvState) (resvState, bool) {
	st := in
	containsDecl := false
	for _, s := range stmts {
		if s == f.decl {
			containsDecl = true
		}
	}
	for _, s := range stmts {
		var diverged bool
		st, diverged = f.exec(s, st)
		if diverged || f.reported {
			return st, diverged
		}
	}
	if containsDecl && st.pending && !st.deferred && f.guardDepth == 0 {
		end := f.decl.End()
		if n := len(stmts); n > 0 {
			end = stmts[len(stmts)-1].End()
		}
		f.report(end, "falling off the end of its scope")
	}
	return st, false
}

func (f *resvFlow) exec(s ast.Stmt, in resvState) (resvState, bool) {
	if s == nil {
		return in, false
	}
	if s == f.decl {
		return resvState{pending: true, deferred: in.deferred}, false
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return f.execList(s.List, in)

	case *ast.IfStmt:
		st, div := f.exec(s.Init, in)
		if div {
			return st, true
		}
		st = f.scan(st, s.Cond, false)
		guard := f.usesGuard(s.Cond)
		if guard {
			f.guardDepth++
		}
		thenOut, thenDiv := f.exec(s.Body, st)
		elseOut, elseDiv := st, false
		if s.Else != nil {
			elseOut, elseDiv = f.exec(s.Else, st)
		}
		if guard {
			f.guardDepth--
		}
		return mergeBranches(guard, []branchOut{{thenOut, thenDiv}, {elseOut, elseDiv}})

	case *ast.ForStmt:
		st, div := f.exec(s.Init, in)
		if div {
			return st, true
		}
		st = f.scan(st, s.Cond, false)
		bodyOut, _ := f.exec(s.Body, st)
		bodyOut, _ = f.exec(s.Post, bodyOut)
		// The body may run zero times: merge pessimistically.
		return mergeStates(st, bodyOut), false

	case *ast.RangeStmt:
		st := f.scan(in, s.X, true)
		bodyOut, _ := f.exec(s.Body, st)
		return mergeStates(st, bodyOut), false

	case *ast.SwitchStmt:
		st, div := f.exec(s.Init, in)
		if div {
			return st, true
		}
		st = f.scan(st, s.Tag, false)
		return f.execClauses(s.Body, st, true)

	case *ast.TypeSwitchStmt:
		st, div := f.exec(s.Init, in)
		if div {
			return st, true
		}
		st, div = f.exec(s.Assign, st)
		if div {
			return st, true
		}
		return f.execClauses(s.Body, st, true)

	case *ast.SelectStmt:
		// A select with no default blocks until one case fires: no
		// implicit fall-through path.
		return f.execClauses(s.Body, in, false)

	case *ast.ReturnStmt:
		st := in
		for _, r := range s.Results {
			st = f.scan(st, r, true)
		}
		if st.pending && !st.deferred && f.guardDepth == 0 {
			f.report(s.Pos(), "returning")
		}
		return st, true

	case *ast.BranchStmt:
		// goto was excluded up front; break/continue leave this path.
		return in, true

	case *ast.DeferStmt:
		if f.usesObj(s.Call) {
			// defer rv.Release(), defer cleanup(rv), defer func(){...rv...}():
			// the obligation is discharged at function exit for every
			// return that follows this point on the path.
			return resvState{pending: in.pending, deferred: true}, false
		}
		return in, false

	case *ast.GoStmt:
		return f.scan(in, s.Call, true), false

	case *ast.AssignStmt:
		st := in
		for _, l := range s.Lhs {
			if id, ok := unparen(l).(*ast.Ident); ok {
				if f.isObj(id) {
					// Overwritten: if still pending the old value is lost.
					if st.pending && !st.deferred && f.guardDepth == 0 {
						f.report(s.Pos(), "overwriting the reservation")
					}
					st = resvState{pending: false, deferred: st.deferred}
					continue
				}
				continue // plain ident target: not a use of obj
			}
			st = f.scan(st, l, true) // m[k] = ..., x.f = ...: scan for uses
		}
		for _, r := range s.Rhs {
			st = f.scan(st, r, true)
		}
		return st, false

	case *ast.ExprStmt:
		st := f.scan(in, s.X, true)
		return st, divergesCall(f.pass, s.X)

	case *ast.LabeledStmt:
		return f.exec(s.Stmt, in)

	case *ast.DeclStmt:
		st := in
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						st = f.scan(st, v, true)
					}
				}
			}
		}
		return st, false

	case *ast.SendStmt:
		st := f.scan(in, s.Chan, true)
		return f.scan(st, s.Value, true), false

	case *ast.IncDecStmt:
		return f.scan(in, s.X, true), false

	default:
		// Empty statements and anything unanticipated: scan the whole
		// node for uses so escapes are never missed.
		st := in
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				st = f.scan(st, e, true)
				return false
			}
			return true
		})
		return st, false
	}
}

type branchOut struct {
	st       resvState
	diverged bool
}

// mergeBranches joins branch outcomes. Diverged branches do not flow
// to the join point. Guard branches (conditioned on the reservation or
// its error) merge optimistically: on one side of the guard the
// reservation is nil, so demanding resolution on both sides would flag
// every `if err != nil { return err }`.
func mergeBranches(guard bool, outs []branchOut) (resvState, bool) {
	var flowing []resvState
	for _, o := range outs {
		if !o.diverged {
			flowing = append(flowing, o.st)
		}
	}
	if len(flowing) == 0 {
		return resvState{}, true
	}
	st := flowing[0]
	for _, o := range flowing[1:] {
		if guard {
			st = resvState{pending: st.pending && o.pending, deferred: st.deferred || o.deferred}
		} else {
			st = mergeStates(st, o)
		}
	}
	return st, false
}

// mergeStates joins two fall-through states pessimistically: pending
// wins, deferred must hold on both.
func mergeStates(a, b resvState) resvState {
	return resvState{pending: a.pending || b.pending, deferred: a.deferred && b.deferred}
}

// execClauses runs each case/comm clause from the same entry state.
// implicitPath adds the no-case-taken path (switch without default).
func (f *resvFlow) execClauses(body *ast.BlockStmt, in resvState, implicitPath bool) (resvState, bool) {
	var outs []branchOut
	hasDefault := false
	for _, clause := range body.List {
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			st := in
			for _, e := range c.List {
				st = f.scan(st, e, false)
			}
			out, div := f.execList(c.Body, st)
			outs = append(outs, branchOut{out, div})
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			st, div := f.exec(c.Comm, in)
			if !div {
				st, div = f.execList(c.Body, st)
			}
			outs = append(outs, branchOut{st, div})
		}
	}
	if implicitPath && !hasDefault {
		outs = append(outs, branchOut{in, false})
	}
	if len(outs) == 0 {
		return in, false
	}
	return mergeBranches(false, outs)
}

// scan classifies the uses of the reservation inside one expression:
// a call to a terminating method resolves the obligation; any use
// other than a method call or comparison is an escape, which also
// resolves it (ownership moved). Uses inside nested function literals
// are captures, i.e. escapes. rootEscapes says what a bare `rv` as the
// whole expression means in the enclosing statement: an escape when
// the value goes somewhere (return rv, ch <- rv, x = rv), a plain read
// in conditions and tags.
func (f *resvFlow) scan(in resvState, e ast.Expr, rootEscapes bool) resvState {
	if e == nil {
		return in
	}
	st := in
	WalkStack(e, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || !f.isObj(id) {
			return true
		}
		for _, anc := range stack {
			if _, ok := anc.(*ast.FuncLit); ok {
				st.pending = false // captured by a closure: escape
				return true
			}
		}
		switch f.classifyUse(id, stack, rootEscapes) {
		case useTerminating, useEscape:
			st.pending = false
		}
		return true
	})
	return st
}

type useKind int

const (
	usePlain useKind = iota
	useTerminating
	useEscape
)

func (f *resvFlow) classifyUse(id *ast.Ident, stack []ast.Node, rootEscapes bool) useKind {
	i := len(stack) - 1
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	if i < 0 {
		if rootEscapes {
			return useEscape
		}
		return usePlain
	}
	switch parent := stack[i].(type) {
	case *ast.SelectorExpr:
		if parent.Sel == id {
			return usePlain // shadow case: obj used as a selector name (impossible for locals)
		}
		// rv.Method — look for the enclosing call of this selector.
		if i-1 >= 0 {
			if call, ok := stack[i-1].(*ast.CallExpr); ok && unparen(call.Fun) == parent {
				if reservationTerminators[parent.Sel.Name] {
					return useTerminating
				}
				return usePlain // rv.Remaining() etc.: observes, does not discharge
			}
		}
		return useEscape // method value rv.Release passed around
	case *ast.BinaryExpr:
		return usePlain // comparisons (rv == nil)
	default:
		return useEscape
	}
}

func (f *resvFlow) isObj(id *ast.Ident) bool {
	return f.pass.TypesInfo.Uses[id] == f.obj
}

func (f *resvFlow) usesObj(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && f.isObj(id) {
			found = true
		}
		return !found
	})
	return found
}

func (f *resvFlow) usesGuard(cond ast.Expr) bool {
	if cond == nil {
		return false
	}
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			obj := f.pass.TypesInfo.Uses[id]
			if obj != nil && (obj == f.obj || (f.errObj != nil && obj == f.errObj)) {
				found = true
			}
		}
		return !found
	})
	return found
}

// divergesCall reports whether the expression statement never returns:
// panic, os.Exit, runtime.Goexit, log.Fatal*, and testing's
// Fatal/FailNow/Skip family.
func divergesCall(pass *Pass, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			return b.Name() == "panic"
		}
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if fn == nil {
			return false
		}
		if pkg := fn.Pkg(); pkg != nil && fn.Type().(*types.Signature).Recv() == nil {
			switch pkg.Path() + "." + fn.Name() {
			case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
				return true
			}
			return false
		}
		switch fn.Name() {
		case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow", "Goexit":
			return true
		}
	}
	return false
}
