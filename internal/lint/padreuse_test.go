package lint_test

import (
	"testing"

	"qkd/internal/lint"
	"qkd/internal/lint/linttest"
)

func TestPadReuse(t *testing.T) {
	linttest.Run(t, lint.PadReuse, "padreuse")
}
