package lint_test

import (
	"testing"

	"qkd/internal/lint"
	"qkd/internal/lint/linttest"
)

func TestDetRand(t *testing.T) {
	linttest.Run(t, lint.DetRand, "detrand")
}
