package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// SentinelCmp flags ==/!= comparisons (and switch cases) between an
// error value and a sentinel error variable. The stack's degraded
// modes key off sentinels that are routinely wrapped — kms.ErrTimeout
// wraps keypool.ErrTimeout, gateways wrap ipsec.ErrExpired with SPI
// context — so an identity comparison silently stops matching the
// moment a layer adds context. errors.Is is the only correct match.
var SentinelCmp = &Analyzer{
	Name: "sentinelcmp",
	Doc: "flag ==/!= comparisons of errors against sentinel variables; " +
		"wrapped errors (kms wraps keypool, gateways wrap ipsec) make identity " +
		"comparison silently miss, so sentinel matches must use errors.Is",
	Run: runSentinelCmp,
}

var sentinelNameRE = regexp.MustCompile(`^Err[A-Z0-9]`)

func runSentinelCmp(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isUntypedNil(pass, n.X) || isUntypedNil(pass, n.Y) {
					return true
				}
				sv := sentinelVar(pass, n.X)
				if sv == nil {
					sv = sentinelVar(pass, n.Y)
				}
				if sv == nil {
					return true
				}
				verb := "errors.Is(err, " + sv.Name() + ")"
				if n.Op == token.NEQ {
					verb = "!" + verb
				}
				pass.Reportf(n.OpPos, "error compared to sentinel %s with %s; use %s so wrapped errors still match",
					sv.Name(), n.Op, verb)
			case *ast.SwitchStmt:
				if n.Tag == nil || !isErrorExpr(pass, n.Tag) {
					return true
				}
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if sv := sentinelVar(pass, e); sv != nil {
							pass.Reportf(e.Pos(), "switch case compares error to sentinel %s by identity; use if errors.Is(err, %s) chains instead",
								sv.Name(), sv.Name())
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// sentinelVar returns the package-level error variable named like a
// sentinel (ErrFoo) that e refers to, or nil.
func sentinelVar(pass *Pass, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !sentinelNameRE.MatchString(v.Name()) {
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return v
}

func isErrorExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Type != nil && isErrorType(tv.Type)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t is (or implements) error.
func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface) || types.Identical(t, errorIface)
}

func isUntypedNil(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}
