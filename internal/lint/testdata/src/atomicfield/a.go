// Corpus for the atomicfield analyzer: a word touched by sync/atomic
// anywhere must be touched that way everywhere.
package atomicfield

import (
	"fmt"
	"sync/atomic"
)

type counters struct {
	sealed int64 // accessed atomically in bump: all access must be atomic
	other  int64 // never atomic: plain access is fine
}

var hits uint64

func bump(c *counters) {
	atomic.AddInt64(&c.sealed, 1)
	atomic.AddUint64(&hits, 1)
}

func bad(c *counters) {
	c.sealed++            // want `plain access to sealed`
	fmt.Println(c.sealed) // want `plain access to sealed`
	hits = 0              // want `plain access to hits`
}

func good(c *counters) int64 {
	n := atomic.LoadInt64(&c.sealed)
	c.other++
	return n + atomic.SwapInt64(&c.sealed, 0)
}

func construct() *counters {
	// A composite-literal key initializes a value nothing else can see
	// yet; that is construction, not a racy access.
	return &counters{sealed: 0}
}

func suppressed(c *counters) int64 {
	//lint:ignore atomicfield snapshot read under the caller's lock, documented in counters
	return c.sealed
}
