// Corpus for the keytaint analyzer: key material withdrawn from the
// (fake) reservoir must not reach logging, string conversions, or
// unsanctioned struct fields — directly, through a local helper's
// summary, or across a package boundary.
package keytaint

import (
	"errors"
	"fmt"
	"log"

	"keypool"
	"keysink"
)

var pool keypool.Reservoir

type record struct {
	blob []byte
}

func direct() {
	key := pool.Withdraw(32)
	fmt.Printf("key=%x\n", key) // want `key material from keypool\.Reservoir\.Withdraw reaches fmt\.Printf`
}

func viaReservation(rv *keypool.Reservation) {
	bits, err := rv.Consume(16)
	if err != nil {
		return
	}
	log.Println(bits) // want `key material from keypool\.Reservation\.Consume reaches log\.Println`
}

func viaConversion() error {
	key := pool.Withdraw(16)
	return errors.New(string(key)) // want `reaches string conversion` `reaches errors\.New`
}

// fetch's summary records a secret result; viaHelper's diagnostic
// names it as the flow's entry point.
func viaHelper() {
	key := fetch()
	log.Println(key) // want `key material from keytaint\.fetch reaches log\.Println`
}

func fetch() []byte {
	return pool.Withdraw(16)
}

// crossPackage leaks through keysink.Dump, whose ParamSink fact comes
// from the dependency's facts, not this package's AST.
func crossPackage() {
	key := pool.Withdraw(16)
	keysink.Dump(key) // want `key material from keypool\.Reservoir\.Withdraw reaches fmt\.Printf`
}

func persisted(r *record) {
	r.blob = pool.Withdraw(8) // want `reaches struct field keytaint\.record\.blob`
}

// xor is the sanctioned use: mixing the pad into data is the one-time
// pad itself, so the result is not key material.
func xor(ct []byte) []byte {
	key := pool.Withdraw(len(ct))
	out := make([]byte, len(ct))
	for i := range ct {
		out[i] = ct[i] ^ key[i]
	}
	return out
}

// wiped hands the key to a helper whose summary carries no sink.
func wiped() {
	key := pool.Withdraw(16)
	keysink.Wipe(key)
}
