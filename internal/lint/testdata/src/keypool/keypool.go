// Package keypool is a miniature stand-in for qkd/internal/keypool,
// just large enough for the analyzer corpora: the reservation
// lifecycle surface (Reserve/Consume/Release/Close), a consume-style
// []byte source, and a sentinel.
package keypool

import (
	"errors"
	"time"
)

var ErrExhausted = errors.New("keypool: exhausted")
var ErrTimeout = errors.New("keypool: timeout")

type Reservoir struct{}

func New() *Reservoir { return &Reservoir{} }

func (r *Reservoir) Reserve(n int) (*Reservation, error) {
	return &Reservation{}, nil
}

func (r *Reservoir) Withdraw(n int) []byte { return make([]byte, n) }

// Consume mirrors the real blocking withdrawal: Consume-family name,
// key-plane package, timeout parameter.
func (r *Reservoir) Consume(n int, timeout time.Duration) ([]byte, error) {
	_ = timeout
	return make([]byte, n), nil
}

type Reservation struct{ void bool }

func (rv *Reservation) Consume(n int) ([]byte, error) { return make([]byte, n), nil }
func (rv *Reservation) Remaining() int                { return 0 }
func (rv *Reservation) Release()                      {}
func (rv *Reservation) Close() error                  { return nil }
