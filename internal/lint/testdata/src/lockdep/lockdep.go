// Package lockdep is a corpus helper for the lockorder analyzer: it
// exports two package-level locks and takes them in Ledger → Journal
// order, so a dependent package acquiring them in the reverse order
// completes an AB/BA cycle that spans the package boundary.
package lockdep

import "sync"

var Ledger sync.Mutex
var Journal sync.Mutex

// Post takes Ledger then Journal: the canonical order.
func Post() {
	Ledger.Lock()
	Journal.Lock()
	Journal.Unlock()
	Ledger.Unlock()
}
