// Corpus for the padreuse analyzer: consumed pad is burned exactly
// once, gains no long-lived aliases, and is dead after a wipe.
package padreuse

import (
	"keypool"
	"kms"
)

type sink struct{ key []byte }

var global []byte

func use(p []byte)          {}
func zeroBytes(p []byte)    { clear(p) }
func freshPad(n int) []byte { return make([]byte, n) }

// --- rule 1: pad re-burn (the historical relay shape: a failed
// delivery consumed pad that had already been refunded) ---

func reburnAfterRelease(rv *keypool.Reservation) {
	rv.Release()
	pad, _ := rv.Consume(8) // want `pad re-burn: rv.Consume after rv voided the reservation`
	_ = pad
}

func reburnAfterClose(rv *keypool.Reservation) {
	rv.Close()
	if pad, err := rv.Consume(8); err == nil { // want `pad re-burn: rv.Consume after rv voided the reservation`
		use(pad)
	}
}

func okConsumeThenRelease(rv *keypool.Reservation) {
	pad, _ := rv.Consume(8)
	use(pad)
	rv.Release()
}

// Release on an exclusive branch does not void the straight-line path.
func okBranchRelease(rv *keypool.Reservation, fail bool) {
	if fail {
		rv.Release()
		return
	}
	pad, _ := rv.Consume(8)
	use(pad)
}

// --- rule 2: retained alias of consumed key material ---

func retainField(rv *keypool.Reservation, s *sink) {
	pad, _ := rv.Consume(8)
	s.key = pad // want `consumed key material pad .* assigned to field key`
}

func retainGlobal(rv *keypool.Reservation) {
	pad, _ := rv.Consume(8)
	global = pad // want `consumed key material pad .* assigned to package-level variable global`
}

func retainElement(rv *keypool.Reservation, pads [][]byte) {
	pad, _ := rv.Consume(8)
	pads[0] = pad // want `consumed key material pad .* stored into a slice or map element`
}

func retainComposite(rv *keypool.Reservation) sink {
	pad, _ := rv.Consume(8)
	return sink{key: pad} // want `consumed key material pad .* stored in a composite literal`
}

func retainAppend(rv *keypool.Reservation, log [][]byte) [][]byte {
	pad, _ := rv.Consume(8)
	return append(log, pad) // want `consumed key material pad .* appended into a longer-lived slice`
}

func retainFromKMS(s *kms.Service) {
	pad := s.Claim(16)
	global = pad // want `consumed key material pad .* assigned to package-level variable global`
}

func okExplicitCopy(rv *keypool.Reservation, s *sink) {
	pad, _ := rv.Consume(8)
	s.key = append([]byte(nil), pad...) // byte copy: the sanctioned idiom
}

func okLocalUse(s *kms.Service) byte {
	pad := kms.Withdraw(16)
	use(pad)
	return pad[0]
}

func okNotKeyMaterial(s *sink) {
	buf := freshPad(16) // not a keypool/kms source: untracked
	s.key = buf
}

// --- rule 3: use after wipe ---

func useAfterClear(rv *keypool.Reservation) byte {
	pad, _ := rv.Consume(8)
	use(pad)
	clear(pad)
	return pad[0] // want `use of pad after it was wiped`
}

func useAfterZeroHelper(pad []byte) byte {
	zeroBytes(pad)
	return pad[0] // want `use of pad after it was wiped`
}

func okReassignAfterWipe(rv *keypool.Reservation) byte {
	pad, _ := rv.Consume(8)
	clear(pad)
	pad, _ = rv.Consume(8)
	return pad[0]
}

func okWipeLast(rv *keypool.Reservation) {
	pad, _ := rv.Consume(8)
	use(pad)
	clear(pad)
}
