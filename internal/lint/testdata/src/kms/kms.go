// Package kms is a miniature stand-in for qkd/internal/kms used by
// the analyzer corpora.
package kms

import "errors"

var ErrOverload = errors.New("kms: overload")

type Service struct{}

func (s *Service) Claim(n int) []byte { return make([]byte, n) }

func Withdraw(n int) []byte { return make([]byte, n) }
