// Package detrand opts into determinism checking via the directive
// below, the same mechanism a new deterministic repo package would use.
//
//lint:deterministic
package detrand

import (
	"math/rand"
	"time"
)

type sim struct {
	rng *rand.Rand
	now func() time.Time
}

func newSim(seed int64) *sim {
	return &sim{
		rng: rand.New(rand.NewSource(seed)), // constructing from a seed is the approved pattern
		now: time.Now,                       // value reference, not a call: legal default wiring
	}
}

func (s *sim) step() (int, time.Time) {
	return s.rng.Intn(10), s.now()
}

func bad() time.Duration {
	t0 := time.Now()        // want `call to time.Now in deterministic package`
	_ = rand.Intn(10)       // want `call to global rand.Intn in deterministic package`
	if time.Until(t0) > 0 { // want `call to time.Until in deterministic package`
		return 0
	}
	return time.Since(t0) // want `call to time.Since in deterministic package`
}

func suppressed() time.Time {
	//lint:ignore detrand report timestamps quote the real wall clock by design
	return time.Now()
}
