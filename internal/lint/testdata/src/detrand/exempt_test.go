package detrand

import "time"

// _test.go files are exempt: tests measure real deadlines.
func wallDeadline() time.Time { return time.Now().Add(time.Second) }
