// Package keysink is a corpus helper for the keytaint analyzer. Dump
// leaks its parameter into fmt, so its function summary carries a
// ParamSink fact; a dependent corpus package passing key material to
// Dump pins the cross-package source→sink flow. Wipe is the sanctioned
// counterpart: it only zeroes the buffer, so callers stay clean.
package keysink

import "fmt"

// Dump prints b in hex — a logging sink one call away.
func Dump(b []byte) {
	fmt.Printf("%x\n", b)
}

// Wipe zeroes b in place; no sink.
func Wipe(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
