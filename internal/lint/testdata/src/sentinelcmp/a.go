// Corpus for the sentinelcmp analyzer: sentinel errors must be
// matched with errors.Is, never by identity.
package sentinelcmp

import (
	"errors"
	"fmt"

	"keypool"
)

var ErrExpired = errors.New("sa expired")

// ErrCount is named like a sentinel but is not an error; identity
// comparison is fine.
var ErrCount int

func check(err error) string {
	// The historical shape: gateways wrap ipsec's expiry sentinel with
	// SPI context, so this identity match silently stopped firing.
	if err == ErrExpired { // want `error compared to sentinel ErrExpired with ==`
		return "expired"
	}
	if err != ErrExpired { // want `error compared to sentinel ErrExpired with !=`
		return "other"
	}
	return ""
}

func checkImported(err error) bool {
	return err == keypool.ErrExhausted // want `error compared to sentinel ErrExhausted with ==`
}

func checkSwitch(err error) string {
	switch err {
	case keypool.ErrTimeout: // want `switch case compares error to sentinel ErrTimeout by identity`
		return "timeout"
	default:
		return "other"
	}
}

// --- clean ---

func okIs(err error) bool {
	return errors.Is(err, ErrExpired) || errors.Is(err, keypool.ErrExhausted)
}

func okNil(err error) bool {
	return err == nil || err != nil
}

func okNonError(n int) bool {
	return n == ErrCount
}

func okLocalShadow(err error) bool {
	// A local variable named like a sentinel is not a package-level
	// sentinel; comparing against it is unrelated to wrapping.
	ErrLocal := fmt.Errorf("local")
	return err == ErrLocal
}

func okSuppressed(err error) bool {
	//lint:ignore sentinelcmp exercising the suppression directive itself
	return err == ErrExpired
}
