// Corpus for the lockorder analyzer: AB/BA cycles within and across
// packages, locks held across blocking operations (directly and
// through a callee's summary), and the //lint:lockorder justification
// directive.
package lockorder

import (
	"sync"
	"time"

	"keypool"
	"lockdep"
)

var mu sync.Mutex

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

// ab and ba disagree on acquisition order; the cycle is only visible
// when the two functions' summaries are joined.
func (p *pair) ab() {
	p.a.Lock()
	p.b.Lock() // want `lock-order cycle: lockorder\.pair\.a → lockorder\.pair\.b → lockorder\.pair\.a`
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) ba() {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}

// reverse acquires the lockdep pair in Journal → Ledger order, against
// lockdep.Post's Ledger → Journal: the BA half lives in this package,
// the AB half in the dependency's facts file.
func reverse() {
	lockdep.Journal.Lock()
	lockdep.Ledger.Lock() // want `lock-order cycle: lockdep\.Journal → lockdep\.Ledger → lockdep\.Journal`
	lockdep.Ledger.Unlock()
	lockdep.Journal.Unlock()
}

// relock calls a helper that takes mu while mu is already held: the
// self-deadlock only the caller can see.
func relock() {
	mu.Lock()
	helper() // want `lock lockorder\.mu acquired while already held`
	mu.Unlock()
}

func helper() {
	mu.Lock()
	mu.Unlock()
}

func sendHeld(ch chan int) {
	mu.Lock()
	ch <- 1 // want `lockorder\.mu held across channel send`
	mu.Unlock()
}

func waitHeld(wg *sync.WaitGroup) {
	mu.Lock()
	wg.Wait() // want `lockorder\.mu held across WaitGroup\.Wait`
	mu.Unlock()
}

var pool keypool.Reservoir

func withdrawHeld() {
	mu.Lock()
	bits, _ := pool.Consume(16, time.Second) // want `lockorder\.mu held across blocking keypool\.Reservoir\.Consume`
	_ = bits
	mu.Unlock()
}

// blockIndirect blocks inside a callee; the Blocks fact in forward's
// summary surfaces at the call site.
func blockIndirect(ch chan int) {
	mu.Lock()
	forward(ch) // want `lockorder\.mu held across channel send`
	mu.Unlock()
}

func forward(ch chan int) {
	ch <- 1
}

// trySend never parks: select with a default is non-blocking.
func trySend(ch chan int) {
	mu.Lock()
	select {
	case ch <- 1:
	default:
	}
	mu.Unlock()
}

// turnstile documents holding mu across the send on purpose; the
// directive records the reason and silences the report.
func turnstile(ch chan int) {
	//lint:lockorder mu is the documented turnstile for this exchange
	mu.Lock()
	ch <- 1
	mu.Unlock()
}
