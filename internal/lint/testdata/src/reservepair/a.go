// Corpus for the reservepair analyzer: every keypool reservation must
// reach Consume, Release, or Close on all paths.
package reservepair

import (
	"errors"
	"fmt"

	"keypool"
)

var errBusy = errors.New("busy")

// --- leaks ---

func leakFallOffScope(p *keypool.Reservoir) {
	rv, err := p.Reserve(10) // want `reservation rv does not reach Consume, Release, or Close`
	if err != nil {
		return
	}
	fmt.Println(rv.Remaining())
}

// The historical PR 8 shape: the early-error return after the guard
// leaks the reservation set aside a few lines up.
func leakErrorPathReturn(p *keypool.Reservoir, busy bool) error {
	rv, err := p.Reserve(10) // want `reservation rv does not reach Consume, Release, or Close`
	if err != nil {
		return err
	}
	if busy {
		return errBusy // leaks rv
	}
	_, err = rv.Consume(10)
	return err
}

func leakDiscardBlank(p *keypool.Reservoir) {
	_, err := p.Reserve(5) // want `reservation from Reserve is assigned to _`
	_ = err
}

func leakDiscardResult(p *keypool.Reservoir) {
	p.Reserve(5) // want `result of Reserve is discarded`
}

func leakOverwrite(p *keypool.Reservoir) {
	rv, _ := p.Reserve(5) // want `reservation rv does not reach Consume, Release, or Close`
	rv, _ = p.Reserve(6)
	rv.Release()
}

// --- clean ---

func okConsume(p *keypool.Reservoir) ([]byte, error) {
	rv, err := p.Reserve(10)
	if err != nil {
		return nil, err
	}
	return rv.Consume(10)
}

func okDeferClose(p *keypool.Reservoir) error {
	rv, err := p.Reserve(10)
	if err != nil {
		return err
	}
	defer rv.Close()
	_, err = rv.Consume(4)
	return err
}

func okReleaseOnErrorPath(p *keypool.Reservoir, busy bool) error {
	rv, err := p.Reserve(10)
	if err != nil {
		return err
	}
	if busy {
		rv.Release()
		return errBusy
	}
	_, err = rv.Consume(10)
	return err
}

// Escapes are out of flow-analysis reach and must not be flagged.
func okEscapeReturn(p *keypool.Reservoir) (*keypool.Reservation, error) {
	rv, err := p.Reserve(10)
	if err != nil {
		return nil, err
	}
	return rv, nil
}

func okEscapeSlice(p *keypool.Reservoir, held []*keypool.Reservation) []*keypool.Reservation {
	rv, err := p.Reserve(10)
	if err != nil {
		return held
	}
	held = append(held, rv)
	return held
}

func okEscapeCall(p *keypool.Reservoir) {
	rv, err := p.Reserve(10)
	if err != nil {
		return
	}
	hold(rv)
}

func hold(rv *keypool.Reservation) { _ = rv }

func okPanicPath(p *keypool.Reservoir) []byte {
	rv, err := p.Reserve(10)
	if err != nil {
		panic(err)
	}
	out, err := rv.Consume(10)
	if err != nil {
		panic(err)
	}
	return out
}
