package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicField enforces the all-or-nothing rule of sync/atomic: a
// memory word accessed with the atomic free functions anywhere must be
// accessed that way everywhere. The gateway dataplane keeps its stat
// counters and SAD occupancy in atomics precisely so the hot path
// never takes the stats mutex; one plain `g.sealed++` on such a field
// is a data race the race detector only catches if a test happens to
// interleave it. The analyzer collects every struct field and
// package-level variable whose address is passed to a sync/atomic
// Add/Load/Store/Swap/CompareAndSwap function, then flags every other
// plain read or write of the same variable in the package.
//
// Typed atomics (atomic.Uint64 and friends) are immune by construction
// and are the preferred fix; the analyzer exists for the mixed style.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: "flag plain reads/writes of struct fields or globals that are " +
		"accessed via sync/atomic elsewhere in the package; mixed access is a " +
		"data race (prefer the typed atomic.Uint64-style fields)",
	Run: runAtomicField,
}

var atomicOpPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"}

func isAtomicOp(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false // methods on typed atomics are safe by construction
	}
	for _, p := range atomicOpPrefixes {
		if strings.HasPrefix(fn.Name(), p) {
			return true
		}
	}
	return false
}

func runAtomicField(pass *Pass) error {
	// Pass 1: collect the variables whose address reaches sync/atomic.
	atomicVars := make(map[*types.Var]token.Position)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicOp(calleeFunc(pass.TypesInfo, call)) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if v := addressableVar(pass, un.X); v != nil {
					if _, seen := atomicVars[v]; !seen {
						atomicVars[v] = pass.Fset.Position(call.Pos())
					}
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}

	// Pass 2: flag plain accesses — any use of a collected variable
	// that is not the &v argument of a sync/atomic call.
	for _, f := range pass.Files {
		WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			first, tracked := atomicVars[v]
			if !tracked {
				return true
			}
			if inAtomicCallContext(pass, id, stack) {
				return true
			}
			// A composite-literal key (T{field: v}) initializes a value
			// nothing else can reference yet; that is construction, not
			// a racy access.
			if len(stack) > 0 {
				if kv, ok := stack[len(stack)-1].(*ast.KeyValueExpr); ok && kv.Key == id {
					return true
				}
			}
			pass.Reportf(id.Pos(), "plain access to %s, which is accessed with sync/atomic (first at %s); every access must be atomic or the pair is a data race",
				v.Name(), first)
			return true
		})
	}
	return nil
}

// addressableVar resolves e (the operand of &) to the struct field or
// package-level variable it names, or nil for locals and temporaries.
// Locals whose address reaches sync/atomic are almost always handed to
// a goroutine; flagging them would mostly flag the harmless
// single-owner case, so the analyzer sticks to fields and globals.
func addressableVar(pass *Pass, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if v.IsField() {
		return v
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return v // package-level variable
	}
	return nil
}

// inAtomicCallContext reports whether ident appears as (part of) an
// &operand of a sync/atomic call: ancestors, innermost first, are an
// optional SelectorExpr whose Sel is the ident (x.f), then UnaryExpr(&),
// then the atomic CallExpr, with parens allowed in between.
func inAtomicCallContext(pass *Pass, id *ast.Ident, stack []ast.Node) bool {
	i := len(stack) - 1
	skipParens := func() {
		for i >= 0 {
			if _, ok := stack[i].(*ast.ParenExpr); !ok {
				return
			}
			i--
		}
	}
	skipParens()
	if i >= 0 {
		if sel, ok := stack[i].(*ast.SelectorExpr); ok {
			if sel.Sel != id {
				return false
			}
			i--
			skipParens()
		}
	}
	if i < 0 {
		return false
	}
	un, ok := stack[i].(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return false
	}
	i--
	skipParens()
	if i < 0 {
		return false
	}
	call, ok := stack[i].(*ast.CallExpr)
	return ok && isAtomicOp(calleeFunc(pass.TypesInfo, call))
}
