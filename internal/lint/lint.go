// Package lint implements qkdlint: a suite of static analyzers that
// machine-check the stack's key-hygiene and concurrency invariants —
// the properties the paper's security argument rests on but the
// compiler cannot see. One-time pads must be consumed exactly once,
// reserved key bits must always reach Consume, Release, or Close,
// sentinel errors must be matched with errors.Is so wrapped KDS errors
// still drive degraded modes, fields accessed via sync/atomic must
// never be touched plainly, and deterministic packages must not read
// ambient randomness or wall clocks.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) but is self-contained on the standard
// library: the module is dependency-free by design, so the analyzers,
// the analysistest-style harness (linttest), and the `go vet -vettool`
// protocol (internal/lint/unit) are all implemented here.
//
// Deliberate false positives are suppressed in source with a
// justification comment on the offending line or the line above:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// A suppression without a reason does not suppress.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags, and
	// //lint:ignore suppressions.
	Name string
	// Doc is the one-paragraph description printed by -help and cited
	// in DESIGN.md §14.
	Doc string
	// Run executes the check over a single type-checked package.
	Run func(*Pass) error
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// IP is the interprocedural substrate for this package (dependency
	// summaries merged in, local summaries computed). Nil when the
	// package was checked without dependency facts; interprocedural
	// analyzers must then degrade to per-function behavior.
	IP *IPContext

	report func(Diagnostic)
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Posn, when set, overrides the Pos→Position resolution. Used for
	// facts whose anchor lives in a dependency package (a lock-order
	// cycle edge acquired two packages away) where no token.Pos in the
	// current FileSet exists.
	Posn *token.Position
	// Path is the source→sink or held→acquired call chain, one
	// "func (file:line)" frame per element, printed under the finding.
	Path []string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report records a fully-formed diagnostic (with an optional flow
// path and position override).
func (p *Pass) Report(d Diagnostic) {
	p.report(d)
}

// PkgPath returns the package's import path with any build-variant
// suffix (e.g. "qkd/internal/kms [qkd/internal/kms.test]") stripped.
func (p *Pass) PkgPath() string {
	path := p.Pkg.Path()
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return path
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// A Finding is a Diagnostic resolved to a concrete position, tagged
// with the analyzer that produced it.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Path is the interprocedural call chain behind the finding, if
	// any, outermost frame first.
	Path []string
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
	for _, frame := range f.Path {
		s += "\n\t" + frame
	}
	return s
}

// NewInfo returns a fully-populated types.Info for a package check.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// TypeCheck type-checks already-parsed files as the package at path,
// resolving imports through imp. goVersion may be "" for the toolchain
// default.
func TypeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer, goVersion string) (*types.Package, *types.Info, error) {
	info := NewInfo()
	cfg := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		// Keep going past the first error so a single bad file does not
		// hide findings in the rest of the package.
		Error: func(error) {},
	}
	pkg, err := cfg.Check(path, fset, files, info)
	return pkg, info, err
}

// SourceImporter returns a types.Importer that type-checks stdlib
// imports from $GOROOT source. Used by the linttest harness, where no
// export data is on hand.
func SourceImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "source", nil)
}

// Summarize computes a package's outgoing interprocedural facts (its
// dependency closure's plus its own) without running any analyzer.
// Used for VetxOnly dependency passes and by harnesses that need a
// corpus package's facts before checking its dependents.
func Summarize(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, deps *Summaries) *Summaries {
	return BuildIP(fset, files, pkg, info, deps).Out()
}

// Check runs the analyzers over one type-checked package and returns
// the surviving findings (suppressions applied), sorted by position.
// Interprocedural facts are computed from this package alone (no
// dependency summaries); use CheckWithDeps to thread them through.
func Check(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	findings, _, err := CheckWithDeps(fset, files, pkg, info, analyzers, nil)
	return findings, err
}

// CheckWithDeps runs the analyzers with the dependency closure's
// function summaries available, and returns alongside the findings
// this package's outgoing summaries (the closure plus its own) for
// the caller to hand to dependent packages.
func CheckWithDeps(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, deps *Summaries) ([]Finding, *Summaries, error) {
	sup := collectSuppressions(fset, files)
	ip := BuildIP(fset, files, pkg, info, deps)
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			IP:        ip,
		}
		pass.report = func(d Diagnostic) {
			posn := fset.Position(d.Pos)
			if d.Posn != nil {
				posn = *d.Posn
			}
			if sup.covers(a.Name, posn) {
				return
			}
			findings = append(findings, Finding{Analyzer: a.Name, Pos: posn, Message: d.Message, Path: d.Path})
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, ip.Out(), nil
}

// ---------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------

var ignoreRE = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s+(.+)$`)

// suppressions maps file -> line -> analyzer names suppressed there. A
// directive covers findings on its own line and on the line below, so
// it works both as a trailing comment and on a line of its own.
type suppressions map[string]map[int]map[string]bool

func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := make(suppressions)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil || strings.TrimSpace(m[2]) == "" {
					continue
				}
				posn := fset.Position(c.Pos())
				byLine := sup[posn.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					sup[posn.Filename] = byLine
				}
				names := byLine[posn.Line]
				if names == nil {
					names = make(map[string]bool)
					byLine[posn.Line] = names
				}
				for _, name := range strings.Split(m[1], ",") {
					names[strings.TrimSpace(name)] = true
				}
			}
		}
	}
	return sup
}

func (s suppressions) covers(analyzer string, posn token.Position) bool {
	byLine := s[posn.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{posn.Line, posn.Line - 1} {
		if names := byLine[line]; names != nil && (names[analyzer] || names["*"]) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// AST helpers shared by the analyzers
// ---------------------------------------------------------------------

// WalkStack traverses root, calling fn with each node and the stack of
// its ancestors (outermost first, not including n itself). If fn
// returns false the node's children are skipped.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// Children skipped: no pop event will come for n, so do not
			// push it.
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeFunc resolves the called function/method of call, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}
