// Package linttest runs a lint.Analyzer over a corpus package under
// testdata/src and checks its findings against `// want` comments, in
// the style of x/tools' analysistest:
//
//	rv, err := pool.Reserve(10) // want "never.*released"
//
// A want comment holds one quoted regexp per expected diagnostic on
// that line. Every diagnostic must be matched by a want on its line
// and every want must be matched by a diagnostic; anything unmatched
// fails the test.
//
// Corpus packages are type-checked from source: imports resolve first
// against testdata/src (so corpora can use small fakes of repo
// packages like keypool) and then against the standard library via the
// source importer, which needs no pre-compiled export data.
//
// Corpus-local imports are summarized (lint.Summarize) before the
// package under test runs, mirroring how the vettool and standalone
// drivers thread interprocedural facts between packages — so a corpus
// can pin a taint flow or a lock-order cycle that crosses a package
// boundary.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"qkd/internal/lint"
)

// Run loads testdata/src/<pkgPath> (relative to the test's working
// directory), applies the analyzer, and diffs findings against want
// comments.
func Run(t *testing.T, analyzer *lint.Analyzer, pkgPath string) {
	t.Helper()
	l := newLoader(filepath.Join("testdata", "src"))
	tp, err := l.load(pkgPath)
	if err != nil {
		t.Fatalf("loading corpus %s: %v", pkgPath, err)
	}
	findings, _, err := lint.CheckWithDeps(l.fset, tp.files, tp.pkg, tp.info, []*lint.Analyzer{analyzer}, l.depFacts(tp))
	if err != nil {
		t.Fatalf("running %s on %s: %v", analyzer.Name, pkgPath, err)
	}
	diffWants(t, l.fset, tp.files, findings)
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want((?:\s+(?:"(?:[^"\\]|\\.)*"|` + "`[^`]*`" + `))+)\s*$`)
var quoteRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`")

func diffWants(t *testing.T, fset *token.FileSet, files []*ast.File, findings []lint.Finding) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quoteRE.FindAllStringSubmatch(m[1], -1) {
					pat := q[2] // backquoted form: literal
					if q[2] == "" && strings.HasPrefix(q[0], `"`) {
						var err error
						pat, err = strconv.Unquote(q[0])
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, q[0], err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			// Compare basenames: interprocedural diagnostics anchored via
			// a facts-file position (lock-order cycles) carry only the
			// file's base name, and corpus file names are unique.
			if !w.matched && filepath.Base(w.file) == filepath.Base(f.Pos.Filename) && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.raw)
		}
	}
}

// loader type-checks corpus packages, resolving imports against
// testdata/src first and the standard library (from source) second.
type loader struct {
	fset     *token.FileSet
	srcDir   string
	fallback types.Importer
	pkgs     map[string]*typedPackage
}

type typedPackage struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

func newLoader(srcDir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:     fset,
		srcDir:   srcDir,
		fallback: importer.ForCompiler(fset, "source", nil),
		pkgs:     make(map[string]*typedPackage),
	}
}

func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.srcDir, filepath.FromSlash(path)); dirExists(dir) {
		tp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return tp.pkg, nil
	}
	return l.fallback.Import(path)
}

func (l *loader) load(path string) (*typedPackage, error) {
	if tp, ok := l.pkgs[path]; ok {
		return tp, tp.err
	}
	tp := &typedPackage{}
	l.pkgs[path] = tp // pre-register: import cycles fail in Check, not recurse

	dir := filepath.Join(l.srcDir, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		tp.err = err
		return tp, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		tp.err = fmt.Errorf("no Go files in %s", dir)
		return tp, tp.err
	}
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			tp.err = err
			return tp, err
		}
		tp.files = append(tp.files, f)
	}
	tp.info = lint.NewInfo()
	cfg := types.Config{Importer: l}
	tp.pkg, tp.err = cfg.Check(path, l.fset, tp.files, tp.info)
	return tp, tp.err
}

// depFacts merges the cumulative interprocedural facts of tp's
// corpus-local imports, the way a real driver hands each package the
// facts files of its direct imports.
func (l *loader) depFacts(tp *typedPackage) *lint.Summaries {
	memo := make(map[string]*lint.Summaries)
	deps := lint.NewSummaries()
	for _, imp := range l.corpusImports(tp) {
		deps.Merge(l.factsFor(imp, memo))
	}
	return deps
}

// factsFor computes one corpus package's cumulative facts (its own
// plus its corpus-local dependency closure's), memoized.
func (l *loader) factsFor(path string, memo map[string]*lint.Summaries) *lint.Summaries {
	if s, ok := memo[path]; ok {
		return s
	}
	memo[path] = lint.NewSummaries() // cycle guard
	tp, err := l.load(path)
	if err != nil {
		return memo[path]
	}
	deps := lint.NewSummaries()
	for _, imp := range l.corpusImports(tp) {
		deps.Merge(l.factsFor(imp, memo))
	}
	s := lint.Summarize(l.fset, tp.files, tp.pkg, tp.info, deps)
	memo[path] = s
	return s
}

// corpusImports lists tp's imports that live under testdata/src.
func (l *loader) corpusImports(tp *typedPackage) []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range tp.files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			if dirExists(filepath.Join(l.srcDir, filepath.FromSlash(path))) {
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}
