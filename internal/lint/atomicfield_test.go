package lint_test

import (
	"testing"

	"qkd/internal/lint"
	"qkd/internal/lint/linttest"
)

func TestAtomicField(t *testing.T) {
	linttest.Run(t, lint.AtomicField, "atomicfield")
}
