package lint

// Interprocedural substrate: the shared value-flow/call-graph layer
// underneath the keytaint and lockorder analyzers.
//
// PR 9's analyzers are per-function; the bugs that remain — key bytes
// reaching a log line three calls away, an AB/BA lock inversion
// between two packages that never import each other — are structurally
// invisible to them. This layer makes whole-program facts flow the
// same way export data does:
//
//   - Per function, a summary (FuncSummary) of its externally visible
//     behavior: which results carry key material, which parameters
//     flow to which results or into forbidden sinks, which lock
//     classes it acquires (transitively), which blocking operations it
//     can reach, and which held→acquired lock edges it exhibits.
//   - Per package, the summaries of all its functions plus everything
//     inherited from its dependencies, serialized as the package's
//     "vetx" facts file. go vet hands each dependency's facts file to
//     dependent packages (Config.PackageVetx), so facts cross package
//     boundaries exactly in build order, cached like export data.
//   - At a call site, the callee's summary substitutes for its body:
//     static calls resolve through go/types; dynamic (interface or
//     func-value) calls resolve CHA-style to every summarized method
//     with the same name and receiver-stripped signature across the
//     module.
//
// Summaries are computed bottom-up to a fixpoint within each package
// (facts only grow, and are deduplicated by key, so the iteration
// terminates). Each fact carries a human-readable call path — the
// frames between a function's boundary and the deep source, sink,
// lock, or blocking operation it summarizes — so a diagnostic three
// calls from its cause can print the whole chain.
//
// The wire format (see MarshalVetx) is versioned and documented in
// DESIGN.md §15; future analyzers add fields to FuncSummary and reuse
// the propagation machinery unchanged.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// vetxHeader is the facts-file version line. Files with any other
// header (including PR 9's "qkdlint facts v1 (none)" placeholder)
// parse as empty, so mixed caches degrade to per-package analysis
// instead of failing.
const vetxHeader = "qkdlint facts v2"

// ---------------------------------------------------------------------
// Summary model
// ---------------------------------------------------------------------

// TaintFlow records that the value of parameter Param flows to result
// Result. Param -1 is the method receiver; results are indexed from 0.
type TaintFlow struct {
	Param  int `json:"p"`
	Result int `json:"r"`
}

// ParamSink records that parameter Param reaches a forbidden sink
// somewhere beneath this function. Path lists the frames from this
// function's body down to the sink call.
type ParamSink struct {
	Param int      `json:"p"`
	Sink  string   `json:"sink"`
	Path  []string `json:"path,omitempty"`
}

// LockUse records a lock class this function acquires, directly or
// through any callee.
type LockUse struct {
	Lock string   `json:"lock"`
	Path []string `json:"path,omitempty"`
}

// BlockOp records a blocking operation (channel send/receive, select
// without default, WaitGroup.Wait, a blocking key withdrawal)
// reachable from this function.
type BlockOp struct {
	Op   string   `json:"op"`
	Path []string `json:"path,omitempty"`
}

// LockEdge records one held→acquired ordering observation: while From
// was held, To was acquired (possibly deep inside a callee; Path holds
// the frames). Justified edges carry a //lint:lockorder annotation at
// the acquisition site and are excluded from cycle detection.
type LockEdge struct {
	From      string   `json:"from"`
	To        string   `json:"to"`
	Pos       string   `json:"pos"`
	Path      []string `json:"path,omitempty"`
	Justified bool     `json:"just,omitempty"`
}

// FuncSummary is the interprocedural abstract of one function: what a
// caller needs to know without the body. Fact slices are deduplicated
// by their natural key and sorted before serialization so the facts
// file is deterministic (go vet caches it by content).
type FuncSummary struct {
	// Name is the canonical identity: "pkgpath.Func" or
	// "pkgpath.Type.Method" (pointer receivers stripped).
	Name string `json:"name"`
	// Method is the bare method name for methods ("" for plain
	// functions); with Sig it keys CHA resolution of dynamic calls.
	Method string `json:"method,omitempty"`
	// Sig is the receiver-stripped signature string.
	Sig string `json:"sig,omitempty"`

	SecretResults []int       `json:"secret,omitempty"`
	ParamToResult []TaintFlow `json:"flows,omitempty"`
	ParamSinks    []ParamSink `json:"sinks,omitempty"`

	Acquires []LockUse  `json:"acquires,omitempty"`
	Blocks   []BlockOp  `json:"blocks,omitempty"`
	Edges    []LockEdge `json:"edges,omitempty"`
}

// factCount is the monotone size measure driving the fixpoint.
func (s *FuncSummary) factCount() int {
	return len(s.SecretResults) + len(s.ParamToResult) + len(s.ParamSinks) +
		len(s.Acquires) + len(s.Blocks) + len(s.Edges)
}

func (s *FuncSummary) addSecretResult(i int) bool {
	for _, r := range s.SecretResults {
		if r == i {
			return false
		}
	}
	s.SecretResults = append(s.SecretResults, i)
	return true
}

func (s *FuncSummary) addFlow(p, r int) bool {
	for _, f := range s.ParamToResult {
		if f.Param == p && f.Result == r {
			return false
		}
	}
	s.ParamToResult = append(s.ParamToResult, TaintFlow{p, r})
	return true
}

func (s *FuncSummary) addSink(p int, sink string, path []string) bool {
	for _, f := range s.ParamSinks {
		if f.Param == p && f.Sink == sink {
			return false
		}
	}
	s.ParamSinks = append(s.ParamSinks, ParamSink{p, sink, path})
	return true
}

func (s *FuncSummary) addAcquire(lock string, path []string) bool {
	for _, a := range s.Acquires {
		if a.Lock == lock {
			return false
		}
	}
	s.Acquires = append(s.Acquires, LockUse{lock, path})
	return true
}

func (s *FuncSummary) addBlock(op string, path []string) bool {
	for _, b := range s.Blocks {
		if b.Op == op {
			return false
		}
	}
	s.Blocks = append(s.Blocks, BlockOp{op, path})
	return true
}

func (s *FuncSummary) addEdge(e LockEdge) bool {
	for _, x := range s.Edges {
		if x.From == e.From && x.To == e.To {
			return false
		}
	}
	s.Edges = append(s.Edges, e)
	return true
}

func (s *FuncSummary) sortFacts() {
	sort.Ints(s.SecretResults)
	sort.Slice(s.ParamToResult, func(i, j int) bool {
		a, b := s.ParamToResult[i], s.ParamToResult[j]
		return a.Param < b.Param || (a.Param == b.Param && a.Result < b.Result)
	})
	sort.Slice(s.ParamSinks, func(i, j int) bool {
		a, b := s.ParamSinks[i], s.ParamSinks[j]
		return a.Param < b.Param || (a.Param == b.Param && a.Sink < b.Sink)
	})
	sort.Slice(s.Acquires, func(i, j int) bool { return s.Acquires[i].Lock < s.Acquires[j].Lock })
	sort.Slice(s.Blocks, func(i, j int) bool { return s.Blocks[i].Op < s.Blocks[j].Op })
	sort.Slice(s.Edges, func(i, j int) bool {
		a, b := s.Edges[i], s.Edges[j]
		return a.From < b.From || (a.From == b.From && a.To < b.To)
	})
}

// Summaries is a merged set of function summaries plus two global
// fact sets: the lock-order cycles already reported somewhere in the
// dependency closure (so a cycle visible from many packages is
// diagnosed exactly once), and the method keys of interfaces DECLARED
// in summarized packages. Dynamic calls are CHA-resolved only through
// the latter: a stdlib interface like hash.Hash also has Reset(), and
// resolving it against every module method named Reset would invent
// call edges that do not exist.
type Summaries struct {
	Funcs          map[string]*FuncSummary
	ReportedCycles map[string]bool
	IfaceMethods   map[string]bool
}

// NewSummaries returns an empty set.
func NewSummaries() *Summaries {
	return &Summaries{
		Funcs:          make(map[string]*FuncSummary),
		ReportedCycles: make(map[string]bool),
		IfaceMethods:   make(map[string]bool),
	}
}

// Merge folds other into s (other's entries win on name collision —
// they are identical in practice, since a function is summarized by
// exactly one package).
func (s *Summaries) Merge(other *Summaries) {
	if other == nil {
		return
	}
	for name, fs := range other.Funcs {
		s.Funcs[name] = fs
	}
	for sig := range other.ReportedCycles {
		s.ReportedCycles[sig] = true
	}
	for key := range other.IfaceMethods {
		s.IfaceMethods[key] = true
	}
}

// vetxFile is the serialized form.
type vetxFile struct {
	Funcs  []*FuncSummary `json:"funcs"`
	Cycles []string       `json:"cycles,omitempty"`
	Ifaces []string       `json:"ifaces,omitempty"`
}

// MarshalVetx serializes the set deterministically: header line, then
// one JSON object with functions sorted by name and facts sorted by
// key. go vet keys its action cache on this content.
func (s *Summaries) MarshalVetx() []byte {
	var f vetxFile
	names := make([]string, 0, len(s.Funcs))
	for name := range s.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fs := s.Funcs[name]
		fs.sortFacts()
		f.Funcs = append(f.Funcs, fs)
	}
	for sig := range s.ReportedCycles {
		f.Cycles = append(f.Cycles, sig)
	}
	sort.Strings(f.Cycles)
	for key := range s.IfaceMethods {
		f.Ifaces = append(f.Ifaces, key)
	}
	sort.Strings(f.Ifaces)
	body, err := json.Marshal(f)
	if err != nil {
		// Summaries are plain data; Marshal cannot fail on them.
		panic("lint: marshaling summaries: " + err.Error())
	}
	return append(append([]byte(vetxHeader+"\n"), body...), '\n')
}

// ParseVetx deserializes a facts file. Unversioned or foreign content
// yields an empty set, never an error: facts are an acceleration, and
// a stale cache must degrade, not wedge the build.
func ParseVetx(data []byte) *Summaries {
	out := NewSummaries()
	nl := strings.IndexByte(string(data), '\n')
	if nl < 0 || strings.TrimSpace(string(data[:nl])) != vetxHeader {
		return out
	}
	var f vetxFile
	if err := json.Unmarshal(data[nl+1:], &f); err != nil {
		return out
	}
	for _, fs := range f.Funcs {
		if fs != nil && fs.Name != "" {
			out.Funcs[fs.Name] = fs
		}
	}
	for _, sig := range f.Cycles {
		out.ReportedCycles[sig] = true
	}
	for _, key := range f.Ifaces {
		out.IfaceMethods[key] = true
	}
	return out
}

// ---------------------------------------------------------------------
// Canonical naming
// ---------------------------------------------------------------------

// strippedPkgPath returns pkg's import path without any build-variant
// suffix ("qkd/internal/kms [qkd/internal/kms.test]" → the former), so
// a function has one canonical name across test and non-test units.
func strippedPkgPath(pkg *types.Package) string {
	path := pkg.Path()
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return path
}

// funcKey returns the canonical summary name for fn:
// "pkgpath.Func" or "pkgpath.Type.Method".
func funcKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	path := strippedPkgPath(fn.Pkg())
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if tn := recvTypeName(sig.Recv().Type()); tn != "" {
			return path + "." + tn + "." + fn.Name()
		}
	}
	return path + "." + fn.Name()
}

// recvTypeName names a receiver type with pointers stripped, or "".
func recvTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// sigString renders a receiver-stripped signature with full package
// paths, the CHA matching key for dynamic calls.
func sigString(sig *types.Signature) string {
	bare := types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	return types.TypeString(bare, func(p *types.Package) string { return strippedPkgPath(p) })
}

// shortName compresses a canonical name for diagnostics:
// "qkd/internal/kms.Service.Pressure" → "kms.Service.Pressure".
func shortName(name string) string {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// ---------------------------------------------------------------------
// IPContext: the per-package interprocedural pass
// ---------------------------------------------------------------------

// funcInfo pairs one function body with its identity. Function
// literals are analyzed as anonymous functions (they contribute local
// facts and lock edges) but are not callable through summaries.
type funcInfo struct {
	key     string
	fn      *types.Func // nil for function literals
	decl    *ast.FuncDecl
	lit     *ast.FuncLit
	body    *ast.BlockStmt
	params  []types.Object // positional parameters; receiver handled as -1
	recv    types.Object
	results []types.Object // named results (for naked returns); nil entries when unnamed
}

// IPContext carries the substrate through one package: dependency
// summaries in, this package's summaries out, plus shared resolution
// machinery for both interprocedural analyzers.
type IPContext struct {
	Fset  *token.FileSet
	Pkg   *types.Package
	Info  *types.Info
	Files []*ast.File

	Deps  *Summaries
	Local map[string]*FuncSummary

	funcs []*funcInfo

	// byMethod indexes every known summary by "method|signature" for
	// CHA resolution of interface and func-value calls.
	byMethod map[string][]*FuncSummary

	// ifaceMethods holds "method|signature" keys of interfaces
	// declared in this package or its summarized dependencies; only
	// these dynamic calls are CHA-resolved.
	ifaceMethods map[string]bool

	// lockorderJustified marks file:line positions carrying a
	// //lint:lockorder justification directive (the line of the
	// directive and the line below, like //lint:ignore).
	lockorderJustified map[string]map[int]bool

	// reportedCycles accumulates cycle signatures diagnosed here or in
	// any dependency; serialized into this package's facts.
	reportedCycles map[string]bool

	// Diagnostics collected by the analyzers' report passes after the
	// summary fixpoint converges; drained by KeyTaint.Run/LockOrder.Run.
	taintDiags []Diagnostic
	taintSeen  map[string]bool
	lockDiags  []Diagnostic
	lockSeen   map[string]bool
}

// BuildIP constructs the substrate for one type-checked package: it
// enumerates functions, seeds empty summaries, and iterates the
// summary builders (taint and lock) to a fixpoint so facts flow
// through intra-package call chains in any declaration order.
func BuildIP(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, deps *Summaries) *IPContext {
	if deps == nil {
		deps = NewSummaries()
	}
	ip := &IPContext{
		Fset:               fset,
		Pkg:                pkg,
		Info:               info,
		Files:              files,
		Deps:               deps,
		Local:              make(map[string]*FuncSummary),
		lockorderJustified: collectLockorderDirectives(fset, files),
		reportedCycles:     make(map[string]bool),
	}
	for sig := range deps.ReportedCycles {
		ip.reportedCycles[sig] = true
	}
	ip.collectFuncs()
	ip.collectIfaceMethods()
	ip.rebuildCHAIndex()

	// Fixpoint: facts are added with dedup keys only, so the total
	// count is monotone and the loop terminates. The bound is a
	// belt-and-braces guard against a dedup bug, not a budget.
	for iter := 0; iter < 32; iter++ {
		before := 0
		for _, fs := range ip.Local {
			before += fs.factCount()
		}
		for _, fi := range ip.funcs {
			summarizeTaint(ip, fi)
			summarizeLocks(ip, fi)
		}
		after := 0
		for _, fs := range ip.Local {
			after += fs.factCount()
		}
		if after == before {
			break
		}
		ip.rebuildCHAIndex()
	}

	// With summaries converged, one reporting pass emits the
	// diagnostics (running it during the fixpoint would duplicate
	// them on every iteration).
	for _, fi := range ip.funcs {
		reportTaint(ip, fi)
		reportLocks(ip, fi)
	}
	return ip
}

// Out returns the package's outgoing facts: dependency summaries plus
// this package's own, cumulatively, so reading any package's facts
// file yields its whole dependency closure.
func (ip *IPContext) Out() *Summaries {
	out := NewSummaries()
	out.Merge(ip.Deps)
	for name, fs := range ip.Local {
		out.Funcs[name] = fs
	}
	for sig := range ip.reportedCycles {
		out.ReportedCycles[sig] = true
	}
	return out
}

func (ip *IPContext) collectFuncs() {
	for _, f := range ip.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := ip.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fi := &funcInfo{key: funcKey(obj), fn: obj, decl: fd, body: fd.Body}
			sig := obj.Type().(*types.Signature)
			if r := sig.Recv(); r != nil {
				fi.recv = firstFieldObj(ip.Info, fd.Recv)
			}
			fi.params = paramObjs(ip.Info, fd.Type.Params)
			fi.results = paramObjs(ip.Info, fd.Type.Results)
			ip.funcs = append(ip.funcs, fi)
			fs := &FuncSummary{Name: fi.key}
			if sig.Recv() != nil {
				fs.Method = obj.Name()
				fs.Sig = sigString(sig)
			}
			ip.Local[fi.key] = fs

			// Function literals inside the body are analyzed as
			// stand-alone anonymous functions: their lock edges and
			// complete intra-literal taint flows are real even though no
			// summary-based caller resolves to them.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					posn := ip.Fset.Position(lit.Pos())
					key := fmt.Sprintf("%s.%s.func@%s:%d", strippedPkgPath(ip.Pkg), fd.Name.Name, filepath.Base(posn.Filename), posn.Line)
					lfi := &funcInfo{key: key, lit: lit, body: lit.Body, params: paramObjs(ip.Info, lit.Type.Params)}
					ip.funcs = append(ip.funcs, lfi)
					ip.Local[key] = &FuncSummary{Name: key}
				}
				return true
			})
		}
	}
}

func paramObjs(info *types.Info, fl *ast.FieldList) []types.Object {
	var out []types.Object
	if fl == nil {
		return out
	}
	for _, field := range fl.List {
		if len(field.Names) == 0 {
			out = append(out, nil) // unnamed parameter still occupies a slot
			continue
		}
		for _, name := range field.Names {
			out = append(out, info.Defs[name])
		}
	}
	return out
}

func firstFieldObj(info *types.Info, fl *ast.FieldList) types.Object {
	if fl == nil || len(fl.List) == 0 || len(fl.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[fl.List[0].Names[0]]
}

// collectIfaceMethods records the method keys of every interface type
// declared at package scope, merged with the dependency closure's.
func (ip *IPContext) collectIfaceMethods() {
	ip.ifaceMethods = make(map[string]bool)
	for key := range ip.Deps.IfaceMethods {
		ip.ifaceMethods[key] = true
	}
	scope := ip.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		iface, ok := tn.Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		for i := 0; i < iface.NumMethods(); i++ {
			m := iface.Method(i)
			if sig, ok := m.Type().(*types.Signature); ok {
				ip.ifaceMethods[m.Name()+"|"+sigString(sig)] = true
			}
		}
	}
}

func (ip *IPContext) rebuildCHAIndex() {
	ip.byMethod = make(map[string][]*FuncSummary)
	add := func(fs *FuncSummary) {
		if fs.Method == "" {
			return
		}
		key := fs.Method + "|" + fs.Sig
		ip.byMethod[key] = append(ip.byMethod[key], fs)
	}
	for _, fs := range ip.Deps.Funcs {
		add(fs)
	}
	for _, fs := range ip.Local {
		add(fs)
	}
}

// Lookup resolves a canonical name to its summary, local first.
func (ip *IPContext) Lookup(name string) *FuncSummary {
	if fs, ok := ip.Local[name]; ok {
		return fs
	}
	return ip.Deps.Funcs[name]
}

// resolveCall maps one call expression to the summaries that may
// execute. Static calls (package functions, concrete methods) resolve
// exactly; interface-method calls resolve CHA-style to every
// summarized method with the same name and receiver-stripped
// signature. Unresolvable calls (func values, stdlib without
// summaries) return nil and are handled by intrinsic models or
// treated as inert.
func (ip *IPContext) resolveCall(call *ast.CallExpr) []*FuncSummary {
	fn := calleeFunc(ip.Info, call)
	if fn == nil {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			// Dynamic dispatch: class-hierarchy analysis by method name
			// plus exact signature — but only through interfaces the
			// summarized world declares. hash.Hash also has a Reset();
			// resolving it to every module Reset would invent edges.
			key := fn.Name() + "|" + sigString(sig)
			if !ip.ifaceMethods[key] {
				return nil
			}
			return ip.byMethod[key]
		}
	}
	if fs := ip.Lookup(funcKey(fn)); fs != nil {
		return []*FuncSummary{fs}
	}
	return nil
}

// frame renders one call-path frame: "func (file:line)".
func (ip *IPContext) frame(name string, pos token.Pos) string {
	posn := ip.Fset.Position(pos)
	return fmt.Sprintf("%s (%s:%d)", shortName(name), filepath.Base(posn.Filename), posn.Line)
}

// extendPath prepends a frame to a fact's path, bounding depth so
// pathological recursion cannot balloon the facts file.
func extendPath(head string, rest []string) []string {
	const maxDepth = 12
	out := append([]string{head}, rest...)
	if len(out) > maxDepth {
		out = out[:maxDepth]
	}
	return out
}

// ---------------------------------------------------------------------
// //lint:lockorder directives
// ---------------------------------------------------------------------

// collectLockorderDirectives finds `//lint:lockorder <reason>`
// comments. Like //lint:ignore, a directive without a reason is void;
// it covers its own line and the line below, and marks the lock
// acquisition there as deliberately outside the global order (the
// acquisition is excluded from nesting/cycle diagnostics and its
// holder is excused from held-across-blocking reports).
func collectLockorderDirectives(fset *token.FileSet, files []*ast.File) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:lockorder")
				if !ok || strings.TrimSpace(rest) == "" {
					continue
				}
				posn := fset.Position(c.Pos())
				byLine := out[posn.Filename]
				if byLine == nil {
					byLine = make(map[int]bool)
					out[posn.Filename] = byLine
				}
				byLine[posn.Line] = true
				byLine[posn.Line+1] = true
			}
		}
	}
	return out
}

// lockorderJustifiedAt reports whether pos is covered by a
// //lint:lockorder directive.
func (ip *IPContext) lockorderJustifiedAt(pos token.Pos) bool {
	posn := ip.Fset.Position(pos)
	byLine := ip.lockorderJustified[posn.Filename]
	return byLine != nil && byLine[posn.Line]
}
