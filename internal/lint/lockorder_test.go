package lint_test

import (
	"testing"

	"qkd/internal/lint"
	"qkd/internal/lint/linttest"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, lint.LockOrder, "lockorder")
}
