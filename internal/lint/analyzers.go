package lint

// All returns the full analyzer suite in the order findings are
// conventionally listed. The set encodes the repo's standing
// invariants — reservation lifecycle, pad hygiene, wrapped-sentinel
// matching, atomic access discipline, and deterministic-replay
// purity — as machine-checked rules.
func All() []*Analyzer {
	return []*Analyzer{
		ReservePair,
		PadReuse,
		SentinelCmp,
		AtomicField,
		DetRand,
		KeyTaint,
		LockOrder,
	}
}

// ByName resolves an analyzer by its flag/directive name.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
