package lint_test

import (
	"testing"

	"qkd/internal/lint"
	"qkd/internal/lint/linttest"
)

func TestReservePair(t *testing.T) {
	linttest.Run(t, lint.ReservePair, "reservepair")
}
