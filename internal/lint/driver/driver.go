// Package driver runs the qkdlint analyzers standalone, without
// go vet. It shells out to `go list -export -deps -json` — which
// compiles every dependency and reports the export-data archive for
// each — then parses and type-checks each target package against
// those archives and applies the analyzer suite.
//
// This is the mode behind `qkdlint ./...`. It covers non-test sources
// only (go list -export describes the compiled package proper); the
// CI vettool mode covers test files too.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"

	"qkd/internal/lint"
)

// listPackage is the subset of `go list -json` output the driver uses.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Module     *struct{ GoVersion string }
	Error      *struct{ Err string }
}

// Run lints the packages matching patterns, writing findings to w.
// It returns the number of findings.
func Run(patterns []string, analyzers []*lint.Analyzer, w io.Writer) (int, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(patterns)
	if err != nil {
		return 0, err
	}

	exports := make(map[string]string, len(pkgs))
	goVersion := ""
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && p.Module.GoVersion != "" && !p.DepOnly {
			goVersion = "go" + p.Module.GoVersion
		}
	}

	total := 0
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return total, fmt.Errorf("loading %s: %s", p.ImportPath, p.Error.Err)
		}
		findings, err := checkPackage(p, exports, goVersion, analyzers)
		if err != nil {
			return total, fmt.Errorf("checking %s: %w", p.ImportPath, err)
		}
		for _, f := range findings {
			fmt.Fprintln(w, f.String())
		}
		total += len(findings)
	}
	return total, nil
}

func goList(patterns []string) ([]listPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("parsing go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func checkPackage(p listPackage, exports map[string]string, goVersion string, analyzers []*lint.Analyzer) ([]lint.Finding, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(importPath string) (io.ReadCloser, error) {
		file, ok := exports[importPath]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", importPath)
		}
		return os.Open(file)
	})
	info := lint.NewInfo()
	tcfg := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		Error:     func(error) {},
	}
	pkg, err := tcfg.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return lint.Check(fset, files, pkg, info, analyzers)
}
