// Package driver runs the qkdlint analyzers standalone, without
// go vet. It shells out to `go list -export -deps -json` — which
// compiles every dependency and reports the export-data archive for
// each — then parses and type-checks the module's packages against
// those archives in dependency order, threading interprocedural
// summaries (lint.Summaries) from each package to its dependents, and
// applies the analyzer suite to the packages matching the patterns.
//
// Packages whose dependencies are all summarized are checked by a
// bounded pool of workers; the summary store is the only shared
// state. Findings are buffered and emitted in import-path order, so
// output is deterministic regardless of scheduling.
//
// This is the mode behind `qkdlint ./...`. It covers non-test sources
// only (go list -export describes the compiled package proper); the
// CI vettool mode covers test files too.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"qkd/internal/lint"
)

// Options configures a standalone run.
type Options struct {
	// JSON switches output from human-readable text to a single JSON
	// array of diagnostics (file/line/col/analyzer/message/path).
	JSON bool
	// Jobs bounds the worker pool; <= 0 means GOMAXPROCS.
	Jobs int
}

// listPackage is the subset of `go list -json` output the driver uses.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Module     *struct{ GoVersion string }
	Error      *struct{ Err string }
}

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Path     []string `json:"path,omitempty"`
}

// Run lints the packages matching patterns, writing findings to w.
// It returns the number of findings.
func Run(patterns []string, analyzers []*lint.Analyzer, w io.Writer, opts Options) (int, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(patterns)
	if err != nil {
		return 0, err
	}

	exports := make(map[string]string, len(pkgs))
	goVersion := ""
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && p.Module.GoVersion != "" && !p.DepOnly {
			goVersion = "go" + p.Module.GoVersion
		}
	}

	// Every non-stdlib package is summarized (facts must reach
	// dependents); only the pattern targets are analyzed.
	byPath := make(map[string]*listPackage)
	var order []string
	for i := range pkgs {
		p := &pkgs[i]
		if p.Standard {
			continue
		}
		if p.Error != nil && !p.DepOnly {
			return 0, fmt.Errorf("loading %s: %s", p.ImportPath, p.Error.Err)
		}
		byPath[p.ImportPath] = p
		order = append(order, p.ImportPath)
	}

	// Dependency-count scheduling: a package becomes ready when its
	// last in-module import is summarized.
	remaining := make(map[string]int, len(order))
	dependents := make(map[string][]string)
	for _, path := range order {
		n := 0
		for _, imp := range byPath[path].Imports {
			if _, ok := byPath[imp]; ok {
				n++
				dependents[imp] = append(dependents[imp], path)
			}
		}
		remaining[path] = n
	}

	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(order) {
		jobs = len(order)
	}
	if jobs < 1 {
		jobs = 1
	}

	var (
		mu        sync.Mutex
		sums      = make(map[string]*lint.Summaries, len(order))
		results   = make(map[string][]lint.Finding)
		firstErr  error
		processed int
	)
	ready := make(chan string, len(order))
	enqueueReady := func() { // call with mu held
		if processed == len(order) {
			close(ready)
		}
	}
	for _, path := range order {
		if remaining[path] == 0 {
			ready <- path
		}
	}
	if len(order) == 0 {
		close(ready)
	}

	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for path := range ready {
				p := byPath[path]

				mu.Lock()
				deps := lint.NewSummaries()
				for _, imp := range p.Imports {
					deps.Merge(sums[imp]) // cumulative: direct imports carry the closure
				}
				skip := firstErr != nil
				mu.Unlock()

				out := lint.NewSummaries()
				var findings []lint.Finding
				var perr error
				if !skip && len(p.GoFiles) > 0 && p.Error == nil {
					findings, out, perr = checkPackage(p, exports, goVersion, analyzers, deps, !p.DepOnly)
				}

				mu.Lock()
				sums[path] = out
				if perr != nil && firstErr == nil {
					firstErr = fmt.Errorf("checking %s: %w", path, perr)
				}
				if len(findings) > 0 {
					results[path] = findings
				}
				processed++
				for _, dep := range dependents[path] {
					remaining[dep]--
					if remaining[dep] == 0 {
						ready <- dep
					}
				}
				enqueueReady()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return 0, firstErr
	}

	paths := make([]string, 0, len(results))
	for path := range results {
		paths = append(paths, path)
	}
	sort.Strings(paths)

	total := 0
	if opts.JSON {
		var out []jsonDiagnostic
		for _, path := range paths {
			for _, f := range results[path] {
				out = append(out, jsonDiagnostic{
					File:     f.Pos.Filename,
					Line:     f.Pos.Line,
					Col:      f.Pos.Column,
					Analyzer: f.Analyzer,
					Message:  f.Message,
					Path:     f.Path,
				})
				total++
			}
		}
		if out == nil {
			out = []jsonDiagnostic{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			return total, err
		}
		return total, nil
	}
	for _, path := range paths {
		for _, f := range results[path] {
			fmt.Fprintln(w, f.String())
			total++
		}
	}
	return total, nil
}

func goList(patterns []string) ([]listPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("parsing go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// checkPackage type-checks one package and either fully analyzes it
// (analyze=true) or only computes its outgoing summaries.
func checkPackage(p *listPackage, exports map[string]string, goVersion string, analyzers []*lint.Analyzer, deps *lint.Summaries, analyze bool) ([]lint.Finding, *lint.Summaries, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(importPath string) (io.ReadCloser, error) {
		file, ok := exports[importPath]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", importPath)
		}
		return os.Open(file)
	})
	info := lint.NewInfo()
	tcfg := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		Error:     func(error) {},
	}
	pkg, err := tcfg.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	if !analyze {
		return nil, lint.Summarize(fset, files, pkg, info, deps), nil
	}
	return lint.CheckWithDeps(fset, files, pkg, info, analyzers, deps)
}
