package lint

// keytaint: key material must never leave the sanctioned plane.
//
// The paper's security argument is information-theoretic only while
// the pad bytes stay secret from withdrawal to XOR; one debug line
// that formats a key buffer voids it silently. This analyzer tracks
// every value derived from a key-material source — reservoir and KMS
// withdrawals, distilled-key buffers, SA pad/key fields — through
// assignments, slicing, append/copy, and summarized calls, and
// reports any flow into a forbidden sink: fmt/log formatting,
// errors.New, string conversions, test assertion helpers, or storage
// in a struct field outside the sanctioned key-storage plane. The
// sanctioned consumers (OTP XOR via subtle.XORBytes, Wegman-Carter
// tagging, hmac.New keying, zeroizing wipes) absorb taint naturally:
// XOR and other binary operators kill taint (that is the one-time-pad
// property itself), and unsummarized stdlib callees neither propagate
// nor sink it.
//
// Flows cross function and package boundaries through FuncSummary
// facts (see interproc.go): a helper that leaks its parameter is
// summarized as a ParamSink, and every caller passing key material in
// — even from another package — reports with the full source→sink
// call path attached.
//
// Intrinsic tables below match packages by NAME (keypool, kms,
// bitarray, ipsec), not import path, so the want-annotated corpora
// under testdata/src exercise the same code paths as the real tree.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// KeyTaint reports key material reaching unsanctioned sinks.
var KeyTaint = &Analyzer{
	Name: "keytaint",
	Doc: "key material (reservoir/KMS withdrawals, distilled keys, SA pad and key fields) " +
		"must only reach sanctioned consumers; flows into fmt/log/errors.New, string " +
		"conversions, test assertion messages, or unsanctioned struct fields are reported " +
		"with the full source→sink call path",
	Run: runKeyTaint,
}

func runKeyTaint(p *Pass) error {
	if p.IP == nil {
		return nil
	}
	for _, d := range p.IP.taintDiags {
		p.Report(d)
	}
	return nil
}

// ---------------------------------------------------------------------
// Intrinsic tables
// ---------------------------------------------------------------------

// memberKey identifies pkgName.Type.member; Typ is "" for
// package-level functions.
type memberKey struct{ Pkg, Typ, Name string }

// secretMethods are the key-material sources: calling one taints the
// listed result indices. These are the module's withdrawal APIs plus
// the distillation output.
var secretMethods = map[memberKey][]int{
	{"keypool", "Reservoir", "TryConsume"}:        {0},
	{"keypool", "Reservoir", "Consume"}:           {0},
	{"keypool", "Reservoir", "ConsumeCancelable"}: {0},
	{"keypool", "Reservoir", "Withdraw"}:          {0},
	{"keypool", "Reservation", "Consume"}:         {0},
	{"kms", "PoolView", "TryConsume"}:             {0},
	{"kms", "PoolView", "Consume"}:                {0},
	{"kms", "PoolView", "ConsumeCancelable"}:      {0},
	{"kms", "Store", "TryConsume"}:                {0},
	{"kms", "Stream", "Claim"}:                    {0},
	{"kms", "Stream", "Next"}:                     {1},
	{"kms", "Service", "Claim"}:                   {0},
	{"kms", "Service", "Withdraw"}:                {0},
	{"privacy", "Params", "Apply"}:                {0}, // distilled key output
}

// flowMethods are value-preserving transforms: the listed parameter
// (-1 = receiver) flows to the listed result. Principally the
// bitarray views, so key.Bytes() is as tainted as key.
var flowMethods = map[memberKey][]TaintFlow{
	{"bitarray", "BitArray", "Bytes"}:     {{-1, 0}},
	{"bitarray", "BitArray", "Words"}:     {{-1, 0}},
	{"bitarray", "BitArray", "Clone"}:     {{-1, 0}},
	{"bitarray", "BitArray", "Slice"}:     {{-1, 0}},
	{"bitarray", "BitArray", "Compress"}:  {{-1, 0}},
	{"bitarray", "BitArray", "Select"}:    {{-1, 0}},
	{"bitarray", "BitArray", "SelectU32"}: {{-1, 0}},
	{"bitarray", "BitArray", "String"}:    {{-1, 0}},
	{"bitarray", "", "FromBytes"}:         {{0, 0}},
	{"bitarray", "", "FromBools"}:         {{0, 0}},
	{"bitarray", "", "FromWords"}:         {{0, 0}},
}

// secretFields is the sanctioned key-storage plane: reading one of
// these fields yields key material (a taint source); writing key
// material into one is the sanctioned way to persist it. Writing
// tainted data into any OTHER struct field is a diagnostic.
var secretFields = map[memberKey]bool{
	{"ipsec", "SA", "encKey"}:          true,
	{"ipsec", "SA", "authKey"}:         true,
	{"ipsec", "SA", "pad"}:             true,
	{"ipsec", "SA", "wcKey"}:           true,
	{"ipsec", "SA", "wcTab"}:           true,
	{"keypool", "Reservoir", "buf"}:    true,
	{"keypool", "Reservation", "bits"}: true,
	{"keypool", "waiter", "bits"}:      true, // hand-off buffer to blocked withdrawals
	{"kms", "storeShard", "buf"}:       true,
	{"kms", "Reservoir", "buf"}:        true,
}

// methodKeyOf returns the intrinsic-table key for fn.
func methodKeyOf(fn *types.Func) memberKey {
	if fn == nil || fn.Pkg() == nil {
		return memberKey{}
	}
	k := memberKey{Pkg: fn.Pkg().Name(), Name: fn.Name()}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		k.Typ = recvTypeName(sig.Recv().Type())
	}
	return k
}

func (k memberKey) String() string {
	if k.Typ == "" {
		return k.Pkg + "." + k.Name
	}
	return k.Pkg + "." + k.Typ + "." + k.Name
}

// sinkNameFor classifies fn as a forbidden sink ("" if it is not
// one). Stdlib sinks match by import path; testing helpers by method
// set.
func sinkNameFor(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "fmt":
		return "fmt." + fn.Name()
	case "log":
		return "log." + fn.Name()
	case "errors":
		if fn.Name() == "New" {
			return "errors.New"
		}
	case "testing":
		switch fn.Name() {
		case "Error", "Errorf", "Fatal", "Fatalf", "Log", "Logf", "Skip", "Skipf":
			return "testing." + fn.Name()
		}
	}
	return ""
}

// isBitArrayPtr reports whether t is *bitarray.BitArray.
func isBitArrayPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "BitArray" && obj.Pkg() != nil && obj.Pkg().Name() == "bitarray"
}

// taintableType reports whether values of t can carry key material:
// byte slices/arrays, strings, and bitarray views. Parameters of
// other types are never seeded, keeping the analysis about key BYTES,
// not every struct that mentions them.
func taintableType(t types.Type) bool {
	if t == nil {
		return false
	}
	if isBitArrayPtr(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isByteType(u.Elem())
	case *types.Array:
		return isByteType(u.Elem())
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

func isByteType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Uint64)
}

// ---------------------------------------------------------------------
// Taint engine
// ---------------------------------------------------------------------

// paramNone marks a source-rooted origin (vs a parameter index).
const paramNone = -2

// taintOrigin is one reason a value is tainted: either it derives
// from parameter `param` (for summary building) or from a concrete
// source `src` observed at `pos` (for diagnostics). path carries the
// frames between this function and a deeper source.
type taintOrigin struct {
	param int
	src   string
	pos   token.Pos
	path  []string
}

type taintState struct {
	ip      *IPContext
	fi      *funcInfo
	fs      *FuncSummary
	origins map[types.Object][]taintOrigin
	changed bool
	report  bool
}

// summarizeTaint folds fi's taint behavior into its FuncSummary. Run
// repeatedly by the BuildIP fixpoint; silent (no diagnostics).
func summarizeTaint(ip *IPContext, fi *funcInfo) {
	st := newTaintState(ip, fi)
	st.run()
}

// reportTaint re-derives fi's final taint state and emits the
// diagnostics. Called once, after the summary fixpoint converges.
func reportTaint(ip *IPContext, fi *funcInfo) {
	st := newTaintState(ip, fi)
	st.run()
	st.report = true
	ast.Inspect(fi.body, st.visit)
}

func newTaintState(ip *IPContext, fi *funcInfo) *taintState {
	st := &taintState{
		ip:      ip,
		fi:      fi,
		fs:      ip.Local[fi.key],
		origins: make(map[types.Object][]taintOrigin),
	}
	for i, obj := range fi.params {
		if obj != nil && taintableType(obj.Type()) {
			st.addOrigin(obj, taintOrigin{param: i})
		}
	}
	if fi.recv != nil && taintableType(fi.recv.Type()) {
		st.addOrigin(fi.recv, taintOrigin{param: -1})
	}
	return st
}

// run iterates the body walk until the origin map stops growing, so
// uses before definitions (loops, mutual local flows) converge.
func (st *taintState) run() {
	for i := 0; i < 10; i++ {
		st.changed = false
		ast.Inspect(st.fi.body, st.visit)
		if !st.changed {
			break
		}
	}
}

func (st *taintState) addOrigin(obj types.Object, o taintOrigin) {
	if obj == nil {
		return
	}
	for _, have := range st.origins[obj] {
		if have.param == o.param && have.src == o.src {
			return
		}
	}
	st.origins[obj] = append(st.origins[obj], o)
	st.changed = true
}

func (st *taintState) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		// Literal bodies are separate funcInfos; do not double-walk.
		return n == st.fi.lit
	case *ast.AssignStmt:
		st.assign(n)
	case *ast.ValueSpec:
		st.valueSpec(n)
	case *ast.RangeStmt:
		if len(st.taintOf(n.X)) > 0 {
			if id, ok := n.Value.(*ast.Ident); ok {
				st.addOrigins(id, st.taintOf(n.X))
			}
		}
	case *ast.ReturnStmt:
		st.returnStmt(n)
	case *ast.CallExpr:
		st.checkCall(n)
	}
	return true
}

func (st *taintState) addOrigins(id *ast.Ident, origins []taintOrigin) {
	obj := st.ip.Info.Defs[id]
	if obj == nil {
		obj = st.ip.Info.Uses[id]
	}
	for _, o := range origins {
		st.addOrigin(obj, o)
	}
}

func (st *taintState) assign(n *ast.AssignStmt) {
	if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
		// Op-assignments (^=, +=, …) mix, and mixing kills taint:
		// that is the pad's own security property.
		return
	}
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		if call, ok := unparen(n.Rhs[0]).(*ast.CallExpr); ok {
			for i, lhs := range n.Lhs {
				st.assignTo(lhs, st.resultTaint(call, i))
			}
		}
		return
	}
	for i, lhs := range n.Lhs {
		if i < len(n.Rhs) {
			st.assignTo(lhs, st.taintOf(n.Rhs[i]))
		}
	}
}

func (st *taintState) valueSpec(n *ast.ValueSpec) {
	if len(n.Values) == 1 && len(n.Names) > 1 {
		if call, ok := unparen(n.Values[0]).(*ast.CallExpr); ok {
			for i, name := range n.Names {
				st.addOrigins(name, st.resultTaint(call, i))
			}
		}
		return
	}
	for i, name := range n.Names {
		if i < len(n.Values) {
			st.addOrigins(name, st.taintOf(n.Values[i]))
		}
	}
}

// assignTo propagates taint into an assignment target. A write into a
// struct field outside the sanctioned key-storage plane is the
// "persisted struct" sink.
func (st *taintState) assignTo(lhs ast.Expr, origins []taintOrigin) {
	if len(origins) == 0 {
		return
	}
	switch lhs := unparen(lhs).(type) {
	case *ast.Ident:
		st.addOrigins(lhs, origins)
	case *ast.IndexExpr:
		st.assignTo(lhs.X, origins)
	case *ast.StarExpr:
		st.assignTo(lhs.X, origins)
	case *ast.SelectorExpr:
		if sel, ok := st.ip.Info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
			if fk, secret := st.fieldKey(lhs, sel); !secret {
				st.sinkHit(lhs.Pos(), "struct field "+fk.String(), origins, nil)
			}
		}
	}
}

// fieldKey resolves a field selection to its table key and whether it
// is in the sanctioned plane.
func (st *taintState) fieldKey(sel *ast.SelectorExpr, selection *types.Selection) (memberKey, bool) {
	obj := selection.Obj()
	k := memberKey{Name: obj.Name(), Typ: recvTypeName(selection.Recv())}
	if obj.Pkg() != nil {
		k.Pkg = obj.Pkg().Name()
	}
	return k, secretFields[k]
}

func (st *taintState) returnStmt(n *ast.ReturnStmt) {
	if len(n.Results) == 0 {
		// Naked return: named results carry whatever they hold.
		for i, obj := range st.fi.results {
			st.recordResultTaint(i, st.origins[obj])
		}
		return
	}
	if len(n.Results) == 1 && st.numResults() > 1 {
		if call, ok := unparen(n.Results[0]).(*ast.CallExpr); ok {
			for i := 0; i < st.numResults(); i++ {
				st.recordResultTaint(i, st.resultTaint(call, i))
			}
		}
		return
	}
	for i, e := range n.Results {
		st.recordResultTaint(i, st.taintOf(e))
	}
}

func (st *taintState) numResults() int {
	if st.fi.decl != nil && st.fi.decl.Type.Results != nil {
		return st.fi.decl.Type.Results.NumFields()
	}
	if st.fi.lit != nil && st.fi.lit.Type.Results != nil {
		return st.fi.lit.Type.Results.NumFields()
	}
	return 0
}

func (st *taintState) recordResultTaint(i int, origins []taintOrigin) {
	for _, o := range origins {
		if o.param == paramNone {
			if st.fs.addSecretResult(i) {
				st.changed = true
			}
		} else if st.fs.addFlow(o.param, i) {
			st.changed = true
		}
	}
}

// taintOf computes the origins of expr's (first) value.
func (st *taintState) taintOf(expr ast.Expr) []taintOrigin {
	switch e := unparen(expr).(type) {
	case *ast.Ident:
		obj := st.ip.Info.Uses[e]
		if obj == nil {
			obj = st.ip.Info.Defs[e]
		}
		return st.origins[obj]
	case *ast.SliceExpr:
		return st.taintOf(e.X)
	case *ast.IndexExpr:
		return st.taintOf(e.X)
	case *ast.StarExpr:
		return st.taintOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return st.taintOf(e.X)
		}
	case *ast.SelectorExpr:
		if sel, ok := st.ip.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if fk, secret := st.fieldKey(e, sel); secret {
				return []taintOrigin{{param: paramNone, src: fk.String(), pos: e.Pos()}}
			}
		}
	case *ast.CallExpr:
		return st.resultTaint(e, 0)
	}
	return nil
}

// resultTaint computes the origins of result idx of a call.
func (st *taintState) resultTaint(call *ast.CallExpr, idx int) []taintOrigin {
	// Conversions propagate; []byte(key) is still the key.
	if tv, ok := st.ip.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return st.taintOf(call.Args[0])
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := st.ip.Info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "append" {
				var out []taintOrigin
				for _, a := range call.Args {
					out = append(out, st.taintOf(a)...)
				}
				return out
			}
			return nil
		}
	}
	fn := calleeFunc(st.ip.Info, call)
	if fn == nil {
		return nil
	}
	var out []taintOrigin
	mk := methodKeyOf(fn)
	for _, r := range secretMethods[mk] {
		if r == idx {
			out = append(out, taintOrigin{param: paramNone, src: mk.String(), pos: call.Pos()})
		}
	}
	for _, f := range flowMethods[mk] {
		if f.Result == idx {
			for _, arg := range st.argsForParam(call, fn, f.Param) {
				out = append(out, st.taintOf(arg)...)
			}
		}
	}
	for _, sum := range st.ip.resolveCall(call) {
		for _, r := range sum.SecretResults {
			if r == idx {
				out = append(out, taintOrigin{
					param: paramNone,
					src:   shortName(sum.Name),
					pos:   call.Pos(),
				})
			}
		}
		for _, f := range sum.ParamToResult {
			if f.Result == idx {
				for _, arg := range st.argsForParam(call, fn, f.Param) {
					out = append(out, st.taintOf(arg)...)
				}
			}
		}
	}
	return out
}

// argsForParam maps a callee parameter index (-1 = receiver) back to
// the caller-side expressions feeding it; a variadic tail parameter
// collects every trailing argument.
func (st *taintState) argsForParam(call *ast.CallExpr, fn *types.Func, param int) []ast.Expr {
	if param == -1 {
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			return []ast.Expr{sel.X}
		}
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || param < 0 || param >= sig.Params().Len() {
		return nil
	}
	if sig.Variadic() && param == sig.Params().Len()-1 {
		if param < len(call.Args) {
			return call.Args[param:]
		}
		return nil
	}
	if param < len(call.Args) {
		return []ast.Expr{call.Args[param]}
	}
	return nil
}

// checkCall looks for sink hits: string conversions, intrinsic
// fmt/log/errors/testing sinks, and summarized callees that leak a
// parameter somewhere beneath them.
func (st *taintState) checkCall(call *ast.CallExpr) {
	if tv, ok := st.ip.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
			if origins := st.taintOf(call.Args[0]); len(origins) > 0 {
				st.sinkHit(call.Pos(), "string conversion", origins, nil)
			}
		}
		return
	}
	fn := calleeFunc(st.ip.Info, call)
	if fn == nil {
		return
	}
	if sink := sinkNameFor(fn); sink != "" {
		for _, arg := range call.Args {
			if origins := st.taintOf(arg); len(origins) > 0 {
				st.sinkHit(arg.Pos(), sink, origins, nil)
			}
		}
		return
	}
	for _, sum := range st.ip.resolveCall(call) {
		for _, ps := range sum.ParamSinks {
			for _, arg := range st.argsForParam(call, fn, ps.Param) {
				if origins := st.taintOf(arg); len(origins) > 0 {
					through := extendPath(st.ip.frame(sum.Name, call.Pos()), ps.Path)
					st.sinkHit(call.Pos(), ps.Sink, origins, through)
				}
			}
		}
	}
}

// sinkHit records a tainted value reaching sink: a diagnostic for
// source-rooted origins (in report mode), a ParamSink summary fact
// for parameter-rooted ones. through holds the callee-side frames
// between this call and the actual sink, if the sink is nested.
func (st *taintState) sinkHit(pos token.Pos, sink string, origins []taintOrigin, through []string) {
	for _, o := range origins {
		if o.param == paramNone {
			if !st.report {
				continue
			}
			path := []string{"source: " + st.ip.frame(o.src, o.pos)}
			path = append(path, o.path...)
			path = append(path, through...)
			st.ip.addTaintDiag(Diagnostic{
				Pos:     pos,
				Message: fmt.Sprintf("key material from %s reaches %s", o.src, sink),
				Path:    path,
			})
		} else {
			if st.fs.addSink(o.param, sink, append(append([]string(nil), o.path...), through...)) {
				st.changed = true
			}
		}
	}
}

func (ip *IPContext) addTaintDiag(d Diagnostic) {
	key := fmt.Sprintf("%d|%s", d.Pos, d.Message)
	if ip.taintSeen == nil {
		ip.taintSeen = make(map[string]bool)
	}
	if ip.taintSeen[key] {
		return
	}
	ip.taintSeen[key] = true
	ip.taintDiags = append(ip.taintDiags, d)
}
