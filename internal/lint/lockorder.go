package lint

// lockorder: infer the global acquisition order among the module's
// named locks and flag the two deadlock shapes the per-function
// analyzers cannot see.
//
// Every sync.Mutex/RWMutex acquisition is resolved to a lock CLASS —
// "pkg.Type.field" for struct fields (one class per stripe array, so
// kms.storeShard.mu covers all shards), "pkg.var" for package-level
// locks. A structured walk of each function tracks the ordered set of
// classes held; each acquisition while others are held records a
// held→acquired edge. Edges propagate through FuncSummary facts, so a
// lock taken three calls deep — in another package — still orders
// against the caller's held set. The merged edge graph is then
// checked for:
//
//   - AB/BA cycles (including same-class self-nesting), reported once
//     per cycle across the whole module via the ReportedCycles fact;
//   - any lock held across a blocking operation: channel send/receive,
//     select without default, WaitGroup.Wait, time.Sleep, or a
//     blocking key withdrawal (Consume/Claim with a timeout).
//     sync.Cond.Wait is exempt (it releases its lock).
//
// Deliberate exceptions are annotated in source at the acquisition or
// blocking site:
//
//	//lint:lockorder <reason>
//
// which excludes that site's edges from cycle detection and excuses
// its holder from held-across-blocking reports. A directive without a
// reason does not justify.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// LockOrder reports lock-order cycles and locks held across blocking
// operations.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "acquisition order among named locks (keypool, kms stripes, ipsec SAD, vpn rekeyer, " +
		"flow controller) must be acyclic, and no lock may be held across a channel " +
		"operation, Wait, sleep, or blocking key withdrawal; deliberate exceptions carry " +
		"//lint:lockorder justifications",
	Run: runLockOrder,
}

func runLockOrder(p *Pass) error {
	ip := p.IP
	if ip == nil {
		return nil
	}
	for _, d := range ip.lockDiags {
		p.Report(d)
	}
	reportCycles(ip, p)
	return nil
}

// ---------------------------------------------------------------------
// Lock classification
// ---------------------------------------------------------------------

// lockOpOf recognizes sync.Mutex/RWMutex Lock/RLock/Unlock/RUnlock
// calls and resolves the receiver to a lock class. class is "" when
// the lock is anonymous (a local mutex with no named home).
func (ip *IPContext) lockOpOf(call *ast.CallExpr) (class, op string, ok bool) {
	fn := calleeFunc(ip.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	recv := ""
	if sig, k := fn.Type().(*types.Signature); k && sig.Recv() != nil {
		recv = recvTypeName(sig.Recv().Type())
	}
	if recv != "Mutex" && recv != "RWMutex" {
		return "", "", false
	}
	sel, k := unparen(call.Fun).(*ast.SelectorExpr)
	if !k {
		return "", "", false
	}
	return ip.lockClassOf(sel, recv), fn.Name(), true
}

// lockClassOf names the lock behind a Lock/Unlock selector. mutexType
// is "Mutex" or "RWMutex" (used to name embedded locks).
func (ip *IPContext) lockClassOf(sel *ast.SelectorExpr, mutexType string) string {
	switch x := unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		// r.mu.Lock(), s.shards[i].mu.Lock(): a named field of a named
		// struct is the canonical case.
		if fsel, ok := ip.Info.Selections[x]; ok && fsel.Kind() == types.FieldVal {
			obj := fsel.Obj()
			holder := recvTypeName(fsel.Recv())
			if obj.Pkg() != nil && holder != "" {
				return obj.Pkg().Name() + "." + holder + "." + obj.Name()
			}
			return ""
		}
		// pkg.mu.Lock(): a package-qualified top-level lock.
		if v, ok := ip.Info.Uses[x.Sel].(*types.Var); ok && isPkgLevel(v) {
			return v.Pkg().Name() + "." + v.Name()
		}
	case *ast.Ident:
		v, ok := ip.Info.Uses[x].(*types.Var)
		if !ok {
			return ""
		}
		if isPkgLevel(v) {
			return v.Pkg().Name() + "." + v.Name()
		}
		// t.Lock() on a local whose type embeds the mutex: name the
		// embedding type. A bare local sync.Mutex has no class.
		if msel, ok := ip.Info.Selections[sel]; ok {
			if named := namedOf(msel.Recv()); named != nil && named.Obj().Pkg() != nil &&
				named.Obj().Pkg().Path() != "sync" {
				return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + mutexType
			}
		}
	}
	return ""
}

func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// blockingWithdrawal recognizes the module's blocking key-withdrawal
// APIs by shape: a Consume/Claim-family method in a key-plane package
// taking a timeout.
func blockingWithdrawal(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Name() {
	case "keypool", "kms":
	default:
		return ""
	}
	switch fn.Name() {
	case "Consume", "ConsumeCancelable", "Claim", "Next", "AllocateWait":
	default:
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !hasDurationParam(sig) {
		return ""
	}
	return "blocking " + methodKeyOf(fn).String()
}

func hasDurationParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if named := namedOf(sig.Params().At(i).Type()); named != nil {
			obj := named.Obj()
			if obj.Name() == "Duration" && obj.Pkg() != nil && obj.Pkg().Path() == "time" {
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Held-set walker
// ---------------------------------------------------------------------

type heldLock struct {
	class     string
	pos       token.Pos
	shared    bool // RLock
	justified bool
}

type lockState struct {
	ip     *IPContext
	fi     *funcInfo
	fs     *FuncSummary
	held   []heldLock
	report bool
}

// summarizeLocks folds fi's lock behavior into its FuncSummary;
// called repeatedly by the BuildIP fixpoint.
func summarizeLocks(ip *IPContext, fi *funcInfo) {
	ls := &lockState{ip: ip, fi: fi, fs: ip.Local[fi.key]}
	ls.walkStmt(fi.body)
}

// reportLocks re-walks fi emitting held-across-blocking diagnostics,
// once the summaries have converged.
func reportLocks(ip *IPContext, fi *funcInfo) {
	ls := &lockState{ip: ip, fi: fi, fs: ip.Local[fi.key], report: true}
	ls.walkStmt(fi.body)
}

func (ls *lockState) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			ls.walkStmt(st)
		}
	case *ast.ExprStmt:
		ls.walkExpr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			ls.walkExpr(e)
		}
		for _, e := range s.Lhs {
			ls.walkExpr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						ls.walkExpr(v)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			ls.walkExpr(e)
		}
	case *ast.IfStmt:
		ls.walkStmt(s.Init)
		ls.walkExpr(s.Cond)
		saved := ls.snapshot()
		ls.walkStmt(s.Body)
		ls.restore(saved)
		ls.walkStmt(s.Else)
		ls.restore(saved)
	case *ast.ForStmt:
		ls.walkStmt(s.Init)
		ls.walkExpr(s.Cond)
		saved := ls.snapshot()
		ls.walkStmt(s.Body)
		ls.walkStmt(s.Post)
		ls.restore(saved)
	case *ast.RangeStmt:
		ls.walkExpr(s.X)
		if t, ok := ls.ip.Info.Types[s.X]; ok {
			if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
				ls.blocking("range over channel", s.Pos(), nil)
			}
		}
		saved := ls.snapshot()
		ls.walkStmt(s.Body)
		ls.restore(saved)
	case *ast.SwitchStmt:
		ls.walkStmt(s.Init)
		ls.walkExpr(s.Tag)
		ls.walkCases(s.Body)
	case *ast.TypeSwitchStmt:
		ls.walkStmt(s.Init)
		ls.walkCases(s.Body)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			ls.blocking("select", s.Pos(), nil)
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			saved := ls.snapshot()
			for _, st := range cc.Body {
				ls.walkStmt(st)
			}
			ls.restore(saved)
		}
	case *ast.SendStmt:
		ls.walkExpr(s.Value)
		ls.blocking("channel send", s.Pos(), nil)
	case *ast.LabeledStmt:
		ls.walkStmt(s.Stmt)
	case *ast.GoStmt:
		// The spawned body runs concurrently, not under the current
		// held set; its literal is summarized as its own function.
	case *ast.DeferStmt:
		// `defer mu.Unlock()` keeps mu held for the rest of the body,
		// which is exactly how the walker models "no pop". Other
		// deferred work runs after the body; skip it.
	}
}

func (ls *lockState) walkCases(body *ast.BlockStmt) {
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			ls.walkExpr(e)
		}
		saved := ls.snapshot()
		for _, st := range cc.Body {
			ls.walkStmt(st)
		}
		ls.restore(saved)
	}
}

func (ls *lockState) snapshot() []heldLock {
	return append([]heldLock(nil), ls.held...)
}

func (ls *lockState) restore(saved []heldLock) {
	ls.held = append(ls.held[:0], saved...)
}

// walkExpr scans an expression for calls and channel receives,
// without crossing into function literals (separate funcInfos).
func (ls *lockState) walkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			ls.handleCall(n)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ls.blocking("channel receive", n.Pos(), nil)
			}
		}
		return true
	})
}

func (ls *lockState) handleCall(call *ast.CallExpr) {
	if class, op, ok := ls.ip.lockOpOf(call); ok {
		ls.lockOp(call, class, op)
		return
	}
	fn := calleeFunc(ls.ip.Info, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
		switch {
		case fn.Name() == "Wait" && recvNamed(fn) == "WaitGroup":
			ls.blocking("WaitGroup.Wait", call.Pos(), nil)
		case fn.Name() == "Wait" && recvNamed(fn) == "Cond":
			// Cond.Wait releases its lock while parked; exempt.
		}
		return
	}
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
		ls.blocking("time.Sleep", call.Pos(), nil)
		return
	}
	if op := blockingWithdrawal(fn); op != "" {
		ls.blocking(op, call.Pos(), nil)
		// Fall through: its summary may also carry acquires.
	}
	justifiedHere := ls.ip.lockorderJustifiedAt(call.Pos())
	for _, sum := range ls.ip.resolveCall(call) {
		frame := ls.ip.frame(sum.Name, call.Pos())
		for _, acq := range sum.Acquires {
			ls.fs.addAcquire(acq.Lock, extendPath(frame, acq.Path))
			for _, h := range ls.held {
				// h.class == acq.Lock is kept: holding A while a callee
				// locks A is the self-deadlock only the caller can see.
				ls.fs.addEdge(LockEdge{
					From:      h.class,
					To:        acq.Lock,
					Pos:       ls.posString(call.Pos()),
					Path:      extendPath(frame, acq.Path),
					Justified: h.justified || justifiedHere,
				})
			}
		}
		for _, b := range sum.Blocks {
			ls.fs.addBlock(b.Op, extendPath(frame, b.Path))
			ls.blocking(b.Op, call.Pos(), extendPath(frame, b.Path))
		}
	}
}

func recvNamed(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return recvTypeName(sig.Recv().Type())
	}
	return ""
}

func (ls *lockState) lockOp(call *ast.CallExpr, class, op string) {
	if class == "" {
		return
	}
	switch op {
	case "Lock", "RLock":
		justified := ls.ip.lockorderJustifiedAt(call.Pos())
		ls.fs.addAcquire(class, []string{ls.ip.frame(class+"."+op, call.Pos())})
		for _, h := range ls.held {
			if h.class == class && h.shared && op == "RLock" {
				continue // shared re-acquisition cannot self-deadlock alone
			}
			ls.fs.addEdge(LockEdge{
				From:      h.class,
				To:        class,
				Pos:       ls.posString(call.Pos()),
				Justified: h.justified || justified,
			})
		}
		ls.held = append(ls.held, heldLock{class: class, pos: call.Pos(), shared: op == "RLock", justified: justified})
	case "Unlock", "RUnlock":
		for i := len(ls.held) - 1; i >= 0; i-- {
			if ls.held[i].class == class {
				ls.held = append(ls.held[:i], ls.held[i+1:]...)
				break
			}
		}
	}
}

// blocking handles one blocking operation at pos: the function is
// recorded as blocking, and in report mode any lock held here is a
// diagnostic (unless the hold or the site carries a justification).
func (ls *lockState) blocking(op string, pos token.Pos, path []string) {
	ownPath := path
	if ownPath == nil {
		ownPath = []string{ls.ip.frame(op, pos)}
	}
	ls.fs.addBlock(op, ownPath)
	if !ls.report || len(ls.held) == 0 || ls.ip.lockorderJustifiedAt(pos) {
		return
	}
	for _, h := range ls.held {
		if h.justified {
			continue
		}
		ls.ip.addLockDiag(Diagnostic{
			Pos:     pos,
			Message: fmt.Sprintf("%s held across %s", h.class, op),
			Path:    append([]string{"acquired: " + ls.ip.frame(h.class, h.pos)}, path...),
		})
	}
}

func (ls *lockState) posString(pos token.Pos) string {
	posn := ls.ip.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(posn.Filename), posn.Line)
}

func (ip *IPContext) addLockDiag(d Diagnostic) {
	var key string
	if d.Posn != nil {
		key = fmt.Sprintf("%s:%d|%s", d.Posn.Filename, d.Posn.Line, d.Message)
	} else {
		key = fmt.Sprintf("%d|%s", d.Pos, d.Message)
	}
	if ip.lockSeen == nil {
		ip.lockSeen = make(map[string]bool)
	}
	if ip.lockSeen[key] {
		return
	}
	ip.lockSeen[key] = true
	ip.lockDiags = append(ip.lockDiags, d)
}

// ---------------------------------------------------------------------
// Cycle detection over the merged edge graph
// ---------------------------------------------------------------------

type orderEdge struct {
	e     LockEdge
	local bool
}

// reportCycles merges every known lock edge (dependencies + this
// package), finds self-nesting and AB/BA…/A cycles, and reports each
// once per module run: the ReportedCycles fact marks cycles already
// diagnosed somewhere in the dependency closure.
func reportCycles(ip *IPContext, p *Pass) {
	edges := make(map[string]orderEdge)
	addAll := func(s map[string]*FuncSummary, local bool) {
		names := make([]string, 0, len(s))
		for name := range s {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			for _, e := range s[name].Edges {
				if e.Justified {
					continue
				}
				key := e.From + "|" + e.To
				if have, ok := edges[key]; ok && (have.local || !local) {
					continue
				}
				edges[key] = orderEdge{e: e, local: local}
			}
		}
	}
	addAll(ip.Deps.Funcs, false)
	addAll(ip.Local, true)

	// Self-nesting: a class acquired while already held. Anchored at
	// the inner acquisition. The package that first observed the edge
	// reported it and recorded the signature, so dependents skip it.
	keys := make([]string, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	adj := make(map[string][]string)
	for _, k := range keys {
		oe := edges[k]
		if oe.e.From == oe.e.To {
			sig := oe.e.From + "→" + oe.e.To
			if !ip.reportedCycles[sig] {
				ip.reportedCycles[sig] = true
				p.Report(Diagnostic{
					Posn:    parsePos(oe.e.Pos),
					Message: fmt.Sprintf("lock %s acquired while already held", oe.e.From),
					Path:    oe.e.Path,
				})
			}
			continue
		}
		adj[oe.e.From] = append(adj[oe.e.From], oe.e.To)
	}
	for _, tos := range adj {
		sort.Strings(tos)
	}

	starts := make([]string, 0, len(adj))
	for from := range adj {
		starts = append(starts, from)
	}
	sort.Strings(starts)

	// Enumerate elementary cycles: DFS from each start, restricted to
	// nodes ≥ start so every cycle is found exactly once, rooted at
	// its least node.
	for _, start := range starts {
		var path []string
		onPath := map[string]bool{}
		var dfs func(node string)
		dfs = func(node string) {
			path = append(path, node)
			onPath[node] = true
			for _, next := range adj[node] {
				if next == start {
					reportCycle(ip, p, edges, append(append([]string(nil), path...), start))
					continue
				}
				if next < start || onPath[next] {
					continue
				}
				dfs(next)
			}
			onPath[node] = false
			path = path[:len(path)-1]
		}
		dfs(start)
	}
}

// reportCycle emits one cycle (nodes[0] == nodes[len-1]) unless the
// dependency closure already did. The diagnostic anchors at a
// locally-observed edge when one exists and prints every edge with
// its position and call path.
func reportCycle(ip *IPContext, p *Pass, edges map[string]orderEdge, nodes []string) {
	sig := strings.Join(nodes, "→")
	if ip.reportedCycles[sig] {
		return
	}
	ip.reportedCycles[sig] = true

	// Anchor at a locally-observed edge when one exists (the position
	// is in this package's files); a cycle assembled purely from
	// dependency edges — the AB in one package, the BA in another,
	// merged here for the first time — anchors at its first edge.
	var anchor *token.Position
	var pathOut []string
	for i := 0; i+1 < len(nodes); i++ {
		oe := edges[nodes[i]+"|"+nodes[i+1]]
		if oe.local && anchor == nil {
			anchor = parsePos(oe.e.Pos)
		}
		line := fmt.Sprintf("%s → %s at %s", oe.e.From, oe.e.To, oe.e.Pos)
		pathOut = append(pathOut, line)
		for _, f := range oe.e.Path {
			pathOut = append(pathOut, "\t"+f)
		}
	}
	if anchor == nil {
		anchor = parsePos(edges[nodes[0]+"|"+nodes[1]].e.Pos)
	}
	p.Report(Diagnostic{
		Posn:    anchor,
		Message: "lock-order cycle: " + strings.Join(nodes, " → "),
		Path:    pathOut,
	})
}

// parsePos turns a serialized "file.go:123" back into a Position for
// diagnostics anchored in dependency packages.
func parsePos(s string) *token.Position {
	posn := &token.Position{}
	if i := strings.LastIndexByte(s, ':'); i >= 0 {
		posn.Filename = s[:i]
		if n, err := strconv.Atoi(s[i+1:]); err == nil {
			posn.Line = n
		}
	} else {
		posn.Filename = s
	}
	return posn
}
