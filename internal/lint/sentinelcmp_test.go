package lint_test

import (
	"testing"

	"qkd/internal/lint"
	"qkd/internal/lint/linttest"
)

func TestSentinelCmp(t *testing.T) {
	linttest.Run(t, lint.SentinelCmp, "sentinelcmp")
}
