package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetRand enforces determinism in the packages whose behavior must be
// bit-reproducible from a seed: experiment harnesses replay fault
// schedules, chaos plans slot-partition events, workload generators
// emit byte-identical traces, distillation carves mirrored ledgers,
// and kms splits deposits by pure functions of cumulative state. A
// stray call to the global math/rand state or a raw wall-clock read
// destroys replayability (and, for the mirrored ledgers, bit-exact
// agreement between endpoints). Deterministic packages must draw
// randomness from an injected seeded *rand.Rand and time from an
// injected clock (a `now func() time.Time` wired to time.Now by
// default — referencing time.Now as a value stays legal; calling it
// does not).
//
// Scope: the built-in package list below, plus any package carrying a
// `//lint:deterministic` directive comment. _test.go files are exempt
// (tests measure real deadlines and wall-clock latency).
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "forbid global math/rand and raw time.Now/Since/Until calls in " +
		"deterministic packages (experiments, chaos, workload, core, kms, ipsec " +
		"and //lint:deterministic packages); inject a seeded rng and a clock",
	Run: runDetRand,
}

// detRandScope lists the import paths whose replayability the
// experiments and the mirrored-ledger security argument depend on.
var detRandScope = map[string]bool{
	"qkd/internal/experiments": true,
	"qkd/internal/chaos":       true,
	"qkd/internal/workload":    true,
	"qkd/internal/core":        true,
	"qkd/internal/kms":         true,
	"qkd/internal/ipsec":       true,
}

// randConstructors build an injected generator from an explicit seed or
// source; they are the approved pattern, not a use of global state.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runDetRand(pass *Pass) error {
	if !detRandScope[pass.PkgPath()] && !hasDeterministicDirective(pass) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					pass.Reportf(call.Pos(), "call to time.%s in deterministic package %s; read time through an injected clock (a now func() time.Time field defaulting to time.Now)",
						fn.Name(), pass.PkgPath())
				}
			case "math/rand", "math/rand/v2":
				if fn.Type().(*types.Signature).Recv() != nil {
					return true // methods on an injected *rand.Rand are the approved pattern
				}
				if randConstructors[fn.Name()] {
					return true
				}
				pass.Reportf(call.Pos(), "call to global %s.%s in deterministic package %s; draw from an injected seeded *rand.Rand instead",
					fn.Pkg().Name(), fn.Name(), pass.PkgPath())
			}
			return true
		})
	}
	return nil
}

func hasDeterministicDirective(pass *Pass) bool {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, "//lint:deterministic") {
					return true
				}
			}
		}
	}
	return false
}
