// Package unit implements the `go vet -vettool` wire protocol so the
// qkdlint analyzers can run inside the standard vet pipeline with full
// build-cache integration.
//
// cmd/go drives a vettool in three phases:
//
//  1. `tool -V=full` — a version handshake. The output's second field
//     must be "version"; for non-release builds the last field must be
//     "buildID=<id>". The id keys go's action cache, so it must change
//     when the tool changes: we hash the tool's own executable.
//  2. `tool -flags` — the tool prints a JSON array describing the
//     flags it accepts; cmd/go validates user flags against it.
//  3. `tool [flags] <objdir>/vet.cfg` — one invocation per package.
//     The cfg is a JSON object (see Config) listing the source files
//     and, for every import, the compiled export-data archive produced
//     by the build. Dependency-only invocations set VetxOnly: for
//     module packages we type-check and summarize (interprocedural
//     facts, see lint.Summaries), writing the package's cumulative
//     facts file to VetxOutput; stdlib dependencies get an empty facts
//     file (their calls neither propagate nor sink key material, by
//     design). Real invocations read the facts files of their direct
//     imports (PackageVetx) — cumulative, so they carry the whole
//     dependency closure — and run the analyzers with them.
//
// Diagnostics go to stderr as file:line:col lines and the process
// exits 2, which `go vet` reports as a failure for that package.
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"qkd/internal/lint"
)

// Config mirrors the vetConfig JSON written by cmd/go into
// <objdir>/vet.cfg (cmd/go/internal/work.vetConfig). Unknown fields
// are ignored, so additions on the go side stay compatible.
type Config struct {
	ID            string
	Compiler      string
	Dir           string
	ImportPath    string
	GoFiles       []string
	NonGoFiles    []string
	IgnoredFiles  []string
	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point for vettool mode. It never returns: it
// handles the handshake queries or processes one vet.cfg and exits.
func Main(analyzers []*lint.Analyzer) {
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		printVersion()
		os.Exit(0)
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		printFlagDefs(analyzers)
		os.Exit(0)
	}

	fs := flag.NewFlagSet("qkdlint", flag.ExitOnError)
	selected := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		selected[a.Name] = fs.Bool(a.Name, false, a.Doc)
	}
	fs.Parse(os.Args[1:])
	args := fs.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintln(os.Stderr, "qkdlint (vettool mode): expected a single *.cfg argument from go vet")
		os.Exit(1)
	}
	os.Exit(processCfg(args[0], Enabled(analyzers, selected)))
}

// Enabled applies the multichecker flag convention: if no analyzer
// flag was set, every analyzer runs; otherwise only the named ones do.
func Enabled(analyzers []*lint.Analyzer, selected map[string]*bool) []*lint.Analyzer {
	any := false
	for _, on := range selected {
		if on != nil && *on {
			any = true
			break
		}
	}
	if !any {
		return analyzers
	}
	var out []*lint.Analyzer
	for _, a := range analyzers {
		if on := selected[a.Name]; on != nil && *on {
			out = append(out, a)
		}
	}
	return out
}

// printVersion emits the -V=full handshake line. cmd/go (buildid's
// toolID) requires field 2 to be "version" and, when field 3 is
// "devel", the final field to start with "buildID=". Hashing our own
// binary makes the id — and therefore go's vet cache — change exactly
// when the tool does.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
			f.Close()
		}
	}
	fmt.Printf("qkdlint version devel buildID=%s\n", id)
}

type flagDef struct {
	Name  string
	Bool  bool
	Usage string
}

func printFlagDefs(analyzers []*lint.Analyzer) {
	defs := make([]flagDef, 0, len(analyzers))
	for _, a := range analyzers {
		defs = append(defs, flagDef{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	out, err := json.Marshal(defs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(out)
	fmt.Println()
}

// ParseConfig decodes one vet.cfg. Exported for processCfg and for
// the fuzz target in cmd/qkdlint, which throws malformed JSON, missing
// fields, and oversized inputs at it.
func ParseConfig(data []byte) (*Config, error) {
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, err
	}
	return &cfg, nil
}

func processCfg(path string, analyzers []*lint.Analyzer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qkdlint: reading %s: %v\n", path, err)
		return 1
	}
	cfg, err := ParseConfig(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qkdlint: parsing %s: %v\n", path, err)
		return 1
	}
	if cfg.VetxOnly {
		// Dependency pass: summarize module packages so their
		// interprocedural facts flow to dependents. Stdlib packages
		// are inert by design (ModulePath is empty for them): an
		// empty facts file keeps the pipeline moving.
		if cfg.ModulePath == "" {
			if err := writeVetx(cfg, lint.NewSummaries()); err != nil {
				fmt.Fprintln(os.Stderr, "qkdlint:", err)
				return 1
			}
			return 0
		}
		fset, files, pkg, info, err := loadPackage(cfg)
		out := lint.NewSummaries()
		if err == nil {
			out = lint.Summarize(fset, files, pkg, info, readDepFacts(cfg))
		}
		// A dependency that fails to type-check here will fail its own
		// real vet run with a proper diagnostic; degrade to no facts.
		if err := writeVetx(cfg, out); err != nil {
			fmt.Fprintln(os.Stderr, "qkdlint:", err)
			return 1
		}
		return 0
	}

	fset, files, pkg, info, err := loadPackage(cfg)
	if err != nil {
		return typecheckFailed(cfg, err)
	}

	findings, out, err := lint.CheckWithDeps(fset, files, pkg, info, analyzers, readDepFacts(cfg))
	if err != nil {
		fmt.Fprintln(os.Stderr, "qkdlint:", err)
		return 1
	}
	if err := writeVetx(cfg, out); err != nil {
		fmt.Fprintln(os.Stderr, "qkdlint:", err)
		return 1
	}
	if len(findings) == 0 {
		return 0
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f.String())
	}
	return 2
}

// loadPackage parses and type-checks the unit's files against the
// build's export data.
func loadPackage(cfg *Config) (*token.FileSet, []*ast.File, *types.Package, *types.Info, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	var parseErr error
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil && parseErr == nil {
			parseErr = err
		}
		if f != nil {
			files = append(files, f)
		}
	}
	if parseErr != nil {
		return fset, files, nil, nil, parseErr
	}

	imp := importer.ForCompiler(fset, "gc", func(importPath string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		file, ok := cfg.PackageFile[importPath]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", importPath)
		}
		return os.Open(file)
	})
	info := lint.NewInfo()
	tcfg := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		Error:     func(error) {}, // collect via returned err; keep going
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return fset, files, nil, nil, err
	}
	return fset, files, pkg, info, nil
}

// readDepFacts merges the facts files of every direct import. Each is
// cumulative (a package's facts embed its dependencies'), so direct
// imports suffice for the transitive closure. Unreadable or
// foreign-format files contribute nothing.
func readDepFacts(cfg *Config) *lint.Summaries {
	deps := lint.NewSummaries()
	for _, file := range cfg.PackageVetx {
		data, err := os.ReadFile(file)
		if err != nil {
			continue
		}
		deps.Merge(lint.ParseVetx(data))
	}
	return deps
}

// typecheckFailed honors SucceedOnTypecheckFailure, which cmd/go sets
// when the compiler itself is expected to report the errors (so vet
// should not duplicate them).
func typecheckFailed(cfg *Config, err error) int {
	if cfg.SucceedOnTypecheckFailure {
		if werr := writeVetx(cfg, lint.NewSummaries()); werr != nil {
			fmt.Fprintln(os.Stderr, "qkdlint:", werr)
			return 1
		}
		return 0
	}
	fmt.Fprintf(os.Stderr, "qkdlint: typechecking %s: %v\n", cfg.ImportPath, err)
	return 1
}

func writeVetx(cfg *Config, out *lint.Summaries) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(cfg.VetxOutput, out.MarshalVetx(), 0o666)
}
