package lint_test

import (
	"testing"

	"qkd/internal/lint"
	"qkd/internal/lint/linttest"
)

func TestKeyTaint(t *testing.T) {
	linttest.Run(t, lint.KeyTaint, "keytaint")
}
