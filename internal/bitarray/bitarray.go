// Package bitarray provides packed bit vectors used throughout the QKD
// protocol stack: sifted bits, error-corrected bits, parity subsets,
// pseudo-random masks, and GF(2^n) field elements all live in BitArrays.
//
// A BitArray stores bits LSB-first within 64-bit words: bit i of the
// array is word i/64, bit i%64. The zero value is an empty, ready-to-use
// array.
package bitarray

import (
	"fmt"
	"math/bits"
	"strings"
)

// BitArray is a growable vector of bits.
type BitArray struct {
	words []uint64
	n     int // number of valid bits
}

// New returns a BitArray of n zero bits.
func New(n int) *BitArray {
	if n < 0 {
		panic("bitarray: negative length")
	}
	return &BitArray{words: make([]uint64, (n+63)/64), n: n}
}

// FromBools builds a BitArray from a slice of booleans.
func FromBools(bs []bool) *BitArray {
	a := New(len(bs))
	for i, b := range bs {
		if b {
			a.Set(i, 1)
		}
	}
	return a
}

// FromBytes builds a BitArray of 8*len(p) bits from packed bytes.
// Bit i is (p[i/8] >> (i%8)) & 1, i.e. LSB-first within each byte.
func FromBytes(p []byte) *BitArray {
	a := New(8 * len(p))
	for i, b := range p {
		a.words[i/8] |= uint64(b) << (8 * (i % 8))
	}
	return a
}

// FromWords builds a BitArray over the given words with explicit bit
// length n. The word slice is used directly (not copied).
func FromWords(words []uint64, n int) *BitArray {
	if n > 64*len(words) {
		panic("bitarray: length exceeds words")
	}
	a := &BitArray{words: words, n: n}
	a.trim()
	return a
}

// Len returns the number of bits.
func (a *BitArray) Len() int { return a.n }

// Words exposes the underlying word slice. Bits past Len are zero.
func (a *BitArray) Words() []uint64 { return a.words }

// Get returns bit i (0 or 1).
func (a *BitArray) Get(i int) int {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("bitarray: Get(%d) out of range [0,%d)", i, a.n))
	}
	return int(a.words[i>>6] >> (uint(i) & 63) & 1)
}

// Set assigns bit i to v (0 or 1).
func (a *BitArray) Set(i, v int) {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("bitarray: Set(%d) out of range [0,%d)", i, a.n))
	}
	mask := uint64(1) << (uint(i) & 63)
	if v != 0 {
		a.words[i>>6] |= mask
	} else {
		a.words[i>>6] &^= mask
	}
}

// Flip toggles bit i.
func (a *BitArray) Flip(i int) {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("bitarray: Flip(%d) out of range [0,%d)", i, a.n))
	}
	a.words[i>>6] ^= uint64(1) << (uint(i) & 63)
}

// Append adds bit v at the end.
func (a *BitArray) Append(v int) {
	if a.n%64 == 0 {
		a.words = append(a.words, 0)
	}
	a.n++
	if v != 0 {
		a.words[(a.n-1)>>6] |= uint64(1) << (uint(a.n-1) & 63)
	}
}

// AppendWord appends the low nbits of w (LSB-first), 0 <= nbits <= 64.
func (a *BitArray) AppendWord(w uint64, nbits int) {
	if nbits < 0 || nbits > 64 {
		panic(fmt.Sprintf("bitarray: AppendWord(%d bits) out of [0,64]", nbits))
	}
	if nbits == 0 {
		return
	}
	if nbits < 64 {
		w &= (1 << uint(nbits)) - 1
	}
	for need := (a.n + nbits + 63) / 64; len(a.words) < need; {
		a.words = append(a.words, 0)
	}
	off := uint(a.n) & 63
	a.words[a.n>>6] |= w << off
	if off != 0 && int(off)+nbits > 64 {
		a.words[a.n>>6+1] |= w >> (64 - off)
	}
	a.n += nbits
}

// AppendAll appends every bit of b to a, word-at-a-time.
func (a *BitArray) AppendAll(b *BitArray) {
	full := b.n >> 6
	for i := 0; i < full; i++ {
		a.AppendWord(b.words[i], 64)
	}
	if r := b.n & 63; r != 0 {
		a.AppendWord(b.words[full], r)
	}
}

// Clone returns an independent copy.
func (a *BitArray) Clone() *BitArray {
	w := make([]uint64, len(a.words))
	copy(w, a.words)
	return &BitArray{words: w, n: a.n}
}

// Slice returns a copy of bits [from, to).
func (a *BitArray) Slice(from, to int) *BitArray {
	if from < 0 || to > a.n || from > to {
		panic(fmt.Sprintf("bitarray: Slice(%d,%d) out of range [0,%d]", from, to, a.n))
	}
	if from&63 == 0 {
		out := New(to - from)
		copy(out.words, a.words[from>>6:])
		out.trim()
		return out
	}
	out := New(to - from)
	for i := from; i < to; i++ {
		if a.Get(i) == 1 {
			out.Set(i-from, 1)
		}
	}
	return out
}

// CopyRange sets a to a copy of src's bits [from, to), reusing a's
// storage when capacity allows — the allocation-free counterpart of
// Slice for callers that recycle buffers.
func (a *BitArray) CopyRange(src *BitArray, from, to int) {
	if from < 0 || to > src.n || from > to {
		panic(fmt.Sprintf("bitarray: CopyRange(%d,%d) out of range [0,%d]", from, to, src.n))
	}
	n := to - from
	words := (n + 63) / 64
	if cap(a.words) < words {
		a.words = make([]uint64, words)
	}
	a.words = a.words[:words]
	a.n = n
	off := uint(from) & 63
	w0 := from >> 6
	if off == 0 {
		copy(a.words, src.words[w0:w0+words])
	} else {
		for i := 0; i < words; i++ {
			w := src.words[w0+i] >> off
			if w0+i+1 < len(src.words) {
				w |= src.words[w0+i+1] << (64 - off)
			}
			a.words[i] = w
		}
	}
	a.trim()
}

// Truncate shortens the array to n bits (n must not exceed Len).
func (a *BitArray) Truncate(n int) {
	if n < 0 || n > a.n {
		panic("bitarray: bad Truncate length")
	}
	a.n = n
	a.words = a.words[:(n+63)/64]
	a.trim()
}

// trim zeroes any bits past n in the final word so that word-level
// operations (XOR, popcount) never see stale garbage.
func (a *BitArray) trim() {
	if r := uint(a.n) & 63; r != 0 && len(a.words) > 0 {
		a.words[len(a.words)-1] &= (1 << r) - 1
	}
}

// Xor sets a ^= b. The arrays must be the same length.
func (a *BitArray) Xor(b *BitArray) {
	if a.n != b.n {
		panic("bitarray: Xor length mismatch")
	}
	for i := range a.words {
		a.words[i] ^= b.words[i]
	}
}

// And sets a &= b. The arrays must be the same length.
func (a *BitArray) And(b *BitArray) {
	if a.n != b.n {
		panic("bitarray: And length mismatch")
	}
	for i := range a.words {
		a.words[i] &= b.words[i]
	}
}

// Not flips every bit in place.
func (a *BitArray) Not() {
	for i := range a.words {
		a.words[i] = ^a.words[i]
	}
	a.trim()
}

// Compress returns the bits of a at positions where mask has a 1 bit,
// packed in order (the PEXT of a by mask, extended to bit vectors).
// The arrays must be the same length.
func (a *BitArray) Compress(mask *BitArray) *BitArray {
	if a.n != mask.n {
		panic("bitarray: Compress length mismatch")
	}
	out := New(mask.OnesCount())
	j := 0
	for i, m := range mask.words {
		w := a.words[i]
		for m != 0 {
			b := bits.TrailingZeros64(m)
			m &= m - 1
			if w>>uint(b)&1 == 1 {
				out.words[j>>6] |= 1 << (uint(j) & 63)
			}
			j++
		}
	}
	return out
}

// OnesCount returns the number of set bits.
func (a *BitArray) OnesCount() int {
	c := 0
	for _, w := range a.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Parity returns the XOR of all bits (0 or 1).
func (a *BitArray) Parity() int {
	var x uint64
	for _, w := range a.words {
		x ^= w
	}
	return bits.OnesCount64(x) & 1
}

// ParityMasked returns the parity of a restricted to positions where
// mask has a 1 bit. The mask must be at least as long as a... it may be
// longer; extra mask bits are ignored.
func (a *BitArray) ParityMasked(mask *BitArray) int {
	if mask.n < a.n {
		panic("bitarray: mask shorter than array")
	}
	var x uint64
	for i, w := range a.words {
		x ^= w & mask.words[i]
	}
	return bits.OnesCount64(x) & 1
}

// ParityRange returns the parity of bits [from, to).
func (a *BitArray) ParityRange(from, to int) int {
	if from < 0 || to > a.n || from > to {
		panic("bitarray: ParityRange out of range")
	}
	p := 0
	i := from
	// Head: up to word boundary.
	for ; i < to && i%64 != 0; i++ {
		p ^= a.Get(i)
	}
	// Body: whole words.
	for ; i+64 <= to; i += 64 {
		p ^= bits.OnesCount64(a.words[i>>6]) & 1
	}
	// Tail.
	for ; i < to; i++ {
		p ^= a.Get(i)
	}
	return p
}

// Equal reports whether a and b have identical length and contents.
func (a *BitArray) Equal(b *BitArray) bool {
	if a.n != b.n {
		return false
	}
	for i := range a.words {
		if a.words[i] != b.words[i] {
			return false
		}
	}
	return true
}

// HammingDistance returns the number of positions where a and b differ.
// The arrays must be the same length.
func (a *BitArray) HammingDistance(b *BitArray) int {
	if a.n != b.n {
		panic("bitarray: HammingDistance length mismatch")
	}
	d := 0
	for i := range a.words {
		d += bits.OnesCount64(a.words[i] ^ b.words[i])
	}
	return d
}

// Bytes packs the bits into a byte slice, LSB-first within each byte,
// padding the final byte with zero bits.
func (a *BitArray) Bytes() []byte {
	out := make([]byte, (a.n+7)/8)
	for i := range out {
		out[i] = byte(a.words[i/8] >> (8 * (i % 8)))
	}
	if r := a.n % 8; r != 0 {
		out[len(out)-1] &= (1 << r) - 1
	}
	return out
}

// Select returns the bits of a at the given indices, in order.
func (a *BitArray) Select(idx []int) *BitArray {
	out := New(len(idx))
	for j, i := range idx {
		if a.Get(i) == 1 {
			out.Set(j, 1)
		}
	}
	return out
}

// SelectU32 is Select for uint32 indices (the slot lists the protocol
// stack carries), avoiding a conversion pass.
func (a *BitArray) SelectU32(idx []uint32) *BitArray {
	out := New(len(idx))
	for j, i := range idx {
		if a.Get(int(i)) == 1 {
			out.words[j>>6] |= 1 << (uint(j) & 63)
		}
	}
	return out
}

// SetRange assigns bits [from, to) to v.
func (a *BitArray) SetRange(from, to, v int) {
	for i := from; i < to; i++ {
		a.Set(i, v)
	}
}

// String renders the bits as a 0/1 string, truncated with an ellipsis
// past 128 bits, for debugging.
func (a *BitArray) String() string {
	var sb strings.Builder
	n := a.n
	trunc := false
	if n > 128 {
		n, trunc = 128, true
	}
	for i := 0; i < n; i++ {
		sb.WriteByte('0' + byte(a.Get(i)))
	}
	if trunc {
		fmt.Fprintf(&sb, "...(%d bits)", a.n)
	}
	return sb.String()
}
