package bitarray

import "math/bits"

// This file holds the positional indexes Cascade's dichotomic searches
// run on. A parity subset is a mask over the sifted key; the searches
// ask for the parity of the key restricted to the subset's members with
// *rank* in [lo, hi) — the members in subset order, not bit order. The
// bit-serial answer walks every member with Get; the structures here
// answer from per-word prefix sums in O(log words) lookups.

// Rank indexes the set bits of a mask for rank/select queries. It
// depends only on the mask, so Cascade caches one per subset seed and
// rebinds it to fresh key snapshots with Index as rounds progress.
// The zero value is empty; (re)build with Build.
type Rank struct {
	mask  []uint64
	cum   []int32 // cum[w] = set bits in mask words [0, w)
	count int
}

// NewRank returns an index over the set bits of mask.
func NewRank(mask *BitArray) *Rank {
	r := &Rank{}
	r.Build(mask)
	return r
}

// Build (re)builds r over mask, reusing prior storage when possible.
// The mask's word slice is referenced, not copied.
func (r *Rank) Build(mask *BitArray) {
	r.mask = mask.words
	if cap(r.cum) < len(r.mask)+1 {
		r.cum = make([]int32, len(r.mask)+1)
	}
	r.cum = r.cum[:len(r.mask)+1]
	c := int32(0)
	for i, w := range r.mask {
		r.cum[i] = c
		c += int32(bits.OnesCount64(w))
	}
	r.cum[len(r.mask)] = c
	r.count = int(c)
}

// Count returns the number of set bits (subset members).
func (r *Rank) Count() int { return r.count }

// Select returns the bit position of the k-th set bit, 0-based.
func (r *Rank) Select(k int) int {
	w := r.findWord(k)
	s := k + 1 - int(r.cum[w])
	return w<<6 + selectWord(r.mask[w], s)
}

// findWord returns the word holding the set bit of 0-based rank k.
func (r *Rank) findWord(k int) int {
	// Invariant: cum[lo] <= k < cum[hi].
	lo, hi := 0, len(r.cum)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if int(r.cum[mid]) <= k {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// selectWord returns the position of the s-th (1-based) set bit of w.
func selectWord(w uint64, s int) int {
	base := 0
	for {
		c := bits.OnesCount8(uint8(w))
		if s <= c {
			break
		}
		s -= c
		w >>= 8
		base += 8
	}
	for i := 1; i < s; i++ {
		w &= w - 1
	}
	return base + bits.TrailingZeros64(w)
}

// ParityIndex binds a Rank to a snapshot of a data array, answering
// "parity of the data bits at subset members of rank [lo, hi)" from the
// per-word prefix parities of data AND mask. The snapshot is live by
// reference: after the data array changes, Bind again before querying.
// The zero value is empty; build with Rank.Bind.
type ParityIndex struct {
	rank   *Rank
	data   []uint64
	parCum []uint8 // parCum[w] = parity of data&mask over words [0, w)
}

// Bind builds (or rebuilds, reusing px's storage when non-nil) a
// ParityIndex of data over r's mask. data must be at least as long as
// the mask.
func (r *Rank) Bind(data *BitArray, px *ParityIndex) *ParityIndex {
	if px == nil {
		px = &ParityIndex{}
	}
	px.rank = r
	px.data = data.words
	if cap(px.parCum) < len(r.mask)+1 {
		px.parCum = make([]uint8, len(r.mask)+1)
	}
	px.parCum = px.parCum[:len(r.mask)+1]
	p := uint8(0)
	for i, m := range r.mask {
		px.parCum[i] = p
		p ^= uint8(bits.OnesCount64(px.data[i]&m) & 1)
	}
	px.parCum[len(r.mask)] = p
	return px
}

// ParityRange returns the parity of the data bits at members of rank
// [lo, hi), 0 <= lo <= hi <= Count.
func (p *ParityIndex) ParityRange(lo, hi int) int {
	return p.parityUpTo(hi) ^ p.parityUpTo(lo)
}

// parityUpTo returns the parity of the data bits at the first k members.
func (p *ParityIndex) parityUpTo(k int) int {
	r := p.rank
	if k <= 0 {
		return 0
	}
	if k >= r.count {
		return int(p.parCum[len(r.mask)])
	}
	w := r.findWord(k - 1)
	s := k - int(r.cum[w]) // members of word w to include, >= 1
	pos := selectWord(r.mask[w], s)
	low := r.mask[w] & (uint64(2)<<uint(pos) - 1) // lowest s members
	return int(p.parCum[w]) ^ bits.OnesCount64(p.data[w]&low)&1
}

// PrefixParity answers parity queries over contiguous rank ranges of an
// arbitrary traversal order — Classic Cascade's shuffled passes, where
// the "subset" is a permutation of the whole key. Bit r of the packed
// prefix is the parity of the first r visited bits.
type PrefixParity struct {
	bits []uint64
}

// PrefixParities builds the prefix over a's bits visited in the given
// order (order == nil means natural order, computed word-parallel). pp
// is reused when non-nil. Every element of order must be a valid bit
// index; len(order) need not cover all of a.
func (a *BitArray) PrefixParities(order []int, pp *PrefixParity) *PrefixParity {
	if pp == nil {
		pp = &PrefixParity{}
	}
	n := a.n
	if order != nil {
		n = len(order)
	}
	words := n>>6 + 1
	if cap(pp.bits) < words {
		pp.bits = make([]uint64, words)
	}
	pp.bits = pp.bits[:words]
	if order == nil {
		// Word-parallel: within-word inclusive prefix parity via doubling
		// xor-shifts, then shift to exclusive form and fold the carry in.
		carry := uint64(0) // all-ones when the running parity is odd
		for wd := 0; wd < words; wd++ {
			var w uint64
			if wd < len(a.words) {
				w = a.words[wd]
			}
			x := w
			x ^= x << 1
			x ^= x << 2
			x ^= x << 4
			x ^= x << 8
			x ^= x << 16
			x ^= x << 32
			pp.bits[wd] = (x << 1) ^ carry
			if x>>63 == 1 {
				carry = ^carry
			}
		}
		return pp
	}
	for i := range pp.bits {
		pp.bits[i] = 0
	}
	par := uint64(0)
	for i, pos := range order {
		par ^= a.words[pos>>6] >> (uint(pos) & 63) & 1
		pp.bits[(i+1)>>6] |= par << (uint(i+1) & 63)
	}
	return pp
}

// Range returns the parity of the visited bits with rank [lo, hi).
func (p *PrefixParity) Range(lo, hi int) int {
	return int((p.bits[hi>>6]>>(uint(hi)&63) ^ p.bits[lo>>6]>>(uint(lo)&63)) & 1)
}

// NonzeroWords appends the indices of a's nonzero words to dst (which
// may be nil) and returns it — the sparse iteration set for word-level
// operations over mostly-empty arrays, such as Cascade's post-flip
// subset parity updates.
func (a *BitArray) NonzeroWords(dst []int) []int {
	for i, w := range a.words {
		if w != 0 {
			dst = append(dst, i)
		}
	}
	return dst
}

// ParityMaskedAt returns the parity of a AND mask restricted to the
// listed word indices. With the nonzero words of a sparse array, this
// is ParityMasked at sparse cost.
func (a *BitArray) ParityMaskedAt(mask *BitArray, words []int) int {
	var x uint64
	for _, i := range words {
		x ^= a.words[i] & mask.words[i]
	}
	return bits.OnesCount64(x) & 1
}
