package bitarray

import (
	"testing"
)

// xorshift PRNG; package bitarray cannot import rng (rng imports it).
type prng struct{ s uint64 }

func (p *prng) next() uint64 {
	p.s ^= p.s << 13
	p.s ^= p.s >> 7
	p.s ^= p.s << 17
	return p.s
}

func randArray(p *prng, n int) *BitArray {
	a := New(n)
	for i := range a.words {
		a.words[i] = p.next()
	}
	a.trim()
	return a
}

// members materializes the set-bit positions of mask, the bit-serial
// view the rank index replaces.
func members(mask *BitArray) []int {
	var idx []int
	for i := 0; i < mask.Len(); i++ {
		if mask.Get(i) == 1 {
			idx = append(idx, i)
		}
	}
	return idx
}

func TestRankSelectMatchesNaive(t *testing.T) {
	p := &prng{s: 42}
	for _, n := range []int{1, 63, 64, 65, 500, 4096} {
		mask := randArray(p, n)
		idx := members(mask)
		r := NewRank(mask)
		if r.Count() != len(idx) {
			t.Fatalf("n=%d: Count %d, want %d", n, r.Count(), len(idx))
		}
		for k, want := range idx {
			if got := r.Select(k); got != want {
				t.Fatalf("n=%d: Select(%d) = %d, want %d", n, k, got, want)
			}
		}
	}
}

func TestRankSelectSparseAndDense(t *testing.T) {
	// All-zero mask, all-ones mask, single bit at each word boundary.
	r := NewRank(New(256))
	if r.Count() != 0 {
		t.Error("empty mask has members")
	}
	ones := New(256)
	for i := 0; i < 256; i++ {
		ones.Set(i, 1)
	}
	r.Build(ones)
	for _, k := range []int{0, 63, 64, 255} {
		if got := r.Select(k); got != k {
			t.Errorf("dense Select(%d) = %d", k, got)
		}
	}
	for _, pos := range []int{0, 63, 64, 127, 128, 255} {
		m := New(256)
		m.Set(pos, 1)
		r.Build(m)
		if r.Count() != 1 || r.Select(0) != pos {
			t.Errorf("singleton at %d: Count %d Select %d", pos, r.Count(), r.Select(0))
		}
	}
}

func TestParityIndexMatchesNaive(t *testing.T) {
	p := &prng{s: 77}
	for _, n := range []int{1, 64, 65, 1000, 4096} {
		mask := randArray(p, n)
		data := randArray(p, n)
		idx := members(mask)
		px := NewRank(mask).Bind(data, nil)
		ranges := [][2]int{{0, len(idx)}, {0, 0}, {len(idx), len(idx)}}
		for i := 0; i < 50; i++ {
			lo := int(p.next() % uint64(len(idx)+1))
			hi := lo + int(p.next()%uint64(len(idx)-lo+1))
			ranges = append(ranges, [2]int{lo, hi})
		}
		for _, rg := range ranges {
			lo, hi := rg[0], rg[1]
			want := 0
			for _, pos := range idx[lo:hi] {
				want ^= data.Get(pos)
			}
			if got := px.ParityRange(lo, hi); got != want {
				t.Fatalf("n=%d: ParityRange(%d,%d) = %d, want %d", n, lo, hi, got, want)
			}
		}
	}
}

func TestParityIndexRebind(t *testing.T) {
	// Rebinding after the data changes must reflect the new snapshot,
	// reusing the index storage.
	p := &prng{s: 5}
	mask := randArray(p, 512)
	data := randArray(p, 512)
	r := NewRank(mask)
	px := r.Bind(data, nil)
	before := px.ParityRange(0, r.Count())
	data.Flip(members(mask)[0])
	px = r.Bind(data, px)
	if px.ParityRange(0, r.Count()) == before {
		t.Error("rebound index did not observe the flip")
	}
}

func TestPrefixParitiesIdentity(t *testing.T) {
	p := &prng{s: 9}
	for _, n := range []int{1, 63, 64, 65, 127, 129, 4096} {
		a := randArray(p, n)
		pp := a.PrefixParities(nil, nil)
		par := 0
		for r := 0; r <= n; r++ {
			if got := pp.Range(0, r); got != par%2 && r > 0 {
				t.Fatalf("n=%d: prefix at %d = %d, want %d", n, r, got, par%2)
			}
			if r < n {
				par += a.Get(r)
			}
		}
		// Spot-check interior ranges against ParityRange.
		for i := 0; i < 20; i++ {
			lo := int(p.next() % uint64(n+1))
			hi := lo + int(p.next()%uint64(n-lo+1))
			if got, want := pp.Range(lo, hi), a.ParityRange(lo, hi); got != want {
				t.Fatalf("n=%d: Range(%d,%d) = %d, want %d", n, lo, hi, got, want)
			}
		}
	}
}

func TestPrefixParitiesOrdered(t *testing.T) {
	p := &prng{s: 13}
	n := 1000
	a := randArray(p, n)
	// A fixed pseudo-random permutation.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(p.next() % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
	pp := a.PrefixParities(order, nil)
	for i := 0; i < 50; i++ {
		lo := int(p.next() % uint64(n+1))
		hi := lo + int(p.next()%uint64(n-lo+1))
		want := 0
		for _, pos := range order[lo:hi] {
			want ^= a.Get(pos)
		}
		if got := pp.Range(lo, hi); got != want {
			t.Fatalf("Range(%d,%d) = %d, want %d", lo, hi, got, want)
		}
	}
	// Identity order passed explicitly must agree with the fast path.
	idOrder := make([]int, n)
	for i := range idOrder {
		idOrder[i] = i
	}
	slow := a.PrefixParities(idOrder, nil)
	fast := a.PrefixParities(nil, nil)
	for r := 0; r <= n; r++ {
		if slow.Range(0, r) != fast.Range(0, r) {
			t.Fatalf("identity fast path diverges at %d", r)
		}
	}
}

func TestParityMaskedAtMatchesParityMasked(t *testing.T) {
	p := &prng{s: 21}
	n := 2048
	mask := randArray(p, n)
	// Sparse flip set: a handful of bits.
	flips := New(n)
	for i := 0; i < 10; i++ {
		flips.Set(int(p.next()%uint64(n)), 1)
	}
	nz := flips.NonzeroWords(nil)
	if got, want := flips.ParityMaskedAt(mask, nz), flips.ParityMasked(mask); got != want {
		t.Errorf("sparse parity %d, want %d", got, want)
	}
	if len(nz) > 10 {
		t.Errorf("nonzero words %d for 10 flips", len(nz))
	}
}

func BenchmarkParityIndexQuery4096(b *testing.B) {
	p := &prng{s: 3}
	mask := randArray(p, 4096)
	data := randArray(p, 4096)
	r := NewRank(mask)
	px := r.Bind(data, nil)
	c := r.Count()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		px.ParityRange(c/4, c/2)
	}
}

func BenchmarkRankBind4096(b *testing.B) {
	p := &prng{s: 3}
	mask := randArray(p, 4096)
	data := randArray(p, 4096)
	r := NewRank(mask)
	var px *ParityIndex
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		px = r.Bind(data, px)
	}
}

func TestCopyRangeMatchesSlice(t *testing.T) {
	p := &prng{s: 31}
	src := randArray(p, 1000)
	dst := New(0)
	for _, rg := range [][2]int{{0, 1000}, {0, 0}, {64, 128}, {13, 999}, {63, 65}, {500, 500}} {
		dst.CopyRange(src, rg[0], rg[1])
		if !dst.Equal(src.Slice(rg[0], rg[1])) {
			t.Fatalf("CopyRange(%d,%d) differs from Slice", rg[0], rg[1])
		}
	}
	// Shrinking reuse: residue from a larger copy must not leak.
	dst.CopyRange(src, 0, 1000)
	dst.CopyRange(src, 3, 67)
	if !dst.Equal(src.Slice(3, 67)) {
		t.Fatal("CopyRange reuse leaked stale bits")
	}
}
