package bitarray

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewLen(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		a := New(n)
		if a.Len() != n {
			t.Errorf("New(%d).Len() = %d", n, a.Len())
		}
		for i := 0; i < n; i++ {
			if a.Get(i) != 0 {
				t.Fatalf("New(%d) bit %d not zero", n, i)
			}
		}
	}
}

func TestSetGetFlip(t *testing.T) {
	a := New(130)
	a.Set(0, 1)
	a.Set(63, 1)
	a.Set(64, 1)
	a.Set(129, 1)
	for _, i := range []int{0, 63, 64, 129} {
		if a.Get(i) != 1 {
			t.Errorf("bit %d: want 1", i)
		}
	}
	if a.OnesCount() != 4 {
		t.Errorf("OnesCount = %d, want 4", a.OnesCount())
	}
	a.Flip(63)
	if a.Get(63) != 0 {
		t.Error("Flip(63) did not clear")
	}
	a.Set(0, 0)
	if a.Get(0) != 0 {
		t.Error("Set(0,0) did not clear")
	}
}

func TestGetOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(10).Get(10)
}

func TestAppend(t *testing.T) {
	a := New(0)
	want := make([]int, 0, 200)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		v := int(r.Int63() & 1)
		a.Append(v)
		want = append(want, v)
	}
	if a.Len() != 200 {
		t.Fatalf("Len = %d", a.Len())
	}
	for i, v := range want {
		if a.Get(i) != v {
			t.Fatalf("bit %d = %d, want %d", i, a.Get(i), v)
		}
	}
}

func TestAppendAll(t *testing.T) {
	a := FromBools([]bool{true, false, true})
	b := FromBools([]bool{false, true})
	a.AppendAll(b)
	if a.Len() != 5 {
		t.Fatalf("Len = %d", a.Len())
	}
	got := []int{a.Get(0), a.Get(1), a.Get(2), a.Get(3), a.Get(4)}
	want := []int{1, 0, 1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bit %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := r.Intn(40)
		p := make([]byte, n)
		r.Read(p)
		a := FromBytes(p)
		if a.Len() != 8*n {
			t.Fatalf("Len = %d, want %d", a.Len(), 8*n)
		}
		q := a.Bytes()
		for i := range p {
			if p[i] != q[i] {
				t.Fatalf("byte %d = %#x, want %#x", i, q[i], p[i])
			}
		}
	}
}

func TestBytesPartialByte(t *testing.T) {
	a := New(10)
	a.Set(0, 1)
	a.Set(9, 1)
	b := a.Bytes()
	if len(b) != 2 || b[0] != 0x01 || b[1] != 0x02 {
		t.Fatalf("Bytes() = %v", b)
	}
}

func TestXorParity(t *testing.T) {
	a := FromBools([]bool{true, true, false, true})
	b := FromBools([]bool{true, false, false, true})
	if a.Parity() != 1 {
		t.Error("parity of 1101 should be 1")
	}
	a.Xor(b)
	// 0100
	if a.Get(0) != 0 || a.Get(1) != 1 || a.Get(2) != 0 || a.Get(3) != 0 {
		t.Errorf("Xor result wrong: %s", a.String())
	}
}

func TestParityRangeMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := New(300)
	for i := 0; i < 300; i++ {
		a.Set(i, int(r.Int63()&1))
	}
	for trial := 0; trial < 100; trial++ {
		from := r.Intn(301)
		to := from + r.Intn(301-from)
		want := 0
		for i := from; i < to; i++ {
			want ^= a.Get(i)
		}
		if got := a.ParityRange(from, to); got != want {
			t.Fatalf("ParityRange(%d,%d) = %d, want %d", from, to, got, want)
		}
	}
}

func TestParityMasked(t *testing.T) {
	a := FromBools([]bool{true, true, true, false})
	m := FromBools([]bool{true, false, true, true})
	// masked bits: positions 0,2,3 -> values 1,1,0 -> parity 0.
	if got := a.ParityMasked(m); got != 0 {
		t.Errorf("ParityMasked = %d, want 0", got)
	}
	m.Set(1, 1)
	if got := a.ParityMasked(m); got != 1 {
		t.Errorf("ParityMasked = %d, want 1", got)
	}
}

func TestSliceTruncate(t *testing.T) {
	a := New(100)
	a.Set(10, 1)
	a.Set(50, 1)
	s := a.Slice(10, 60)
	if s.Len() != 50 || s.Get(0) != 1 || s.Get(40) != 1 || s.OnesCount() != 2 {
		t.Fatalf("Slice wrong: %v len=%d ones=%d", s, s.Len(), s.OnesCount())
	}
	a.Truncate(11)
	if a.Len() != 11 || a.OnesCount() != 1 {
		t.Fatalf("Truncate wrong: len=%d ones=%d", a.Len(), a.OnesCount())
	}
}

func TestTruncateClearsTailForXor(t *testing.T) {
	a := New(64)
	a.SetRange(0, 64, 1)
	a.Truncate(10)
	b := New(10)
	b.Xor(a)
	if b.OnesCount() != 10 {
		t.Fatalf("stale bits leaked through Truncate: ones=%d", b.OnesCount())
	}
}

func TestHammingDistance(t *testing.T) {
	a := FromBools([]bool{true, false, true, false})
	b := FromBools([]bool{true, true, true, true})
	if d := a.HammingDistance(b); d != 2 {
		t.Errorf("HammingDistance = %d, want 2", d)
	}
	if d := a.HammingDistance(a); d != 0 {
		t.Errorf("self distance = %d", d)
	}
}

func TestSelect(t *testing.T) {
	a := FromBools([]bool{true, false, false, true, true})
	s := a.Select([]int{4, 0, 1})
	if s.Len() != 3 || s.Get(0) != 1 || s.Get(1) != 1 || s.Get(2) != 0 {
		t.Fatalf("Select wrong: %s", s.String())
	}
}

func TestEqualClone(t *testing.T) {
	a := FromBools([]bool{true, false, true})
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Flip(1)
	if a.Equal(b) {
		t.Fatal("mutated clone still equal")
	}
	if a.Equal(New(4)) {
		t.Fatal("different lengths equal")
	}
}

func TestFromWords(t *testing.T) {
	a := FromWords([]uint64{0xFFFFFFFFFFFFFFFF}, 4)
	if a.OnesCount() != 4 {
		t.Fatalf("FromWords did not trim: ones=%d", a.OnesCount())
	}
}

// Property: parity == OnesCount mod 2 for random arrays.
func TestPropertyParityOnesCount(t *testing.T) {
	f := func(p []byte) bool {
		a := FromBytes(p)
		return a.Parity() == a.OnesCount()%2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Bytes/FromBytes round-trips.
func TestPropertyBytesRoundTrip(t *testing.T) {
	f := func(p []byte) bool {
		a := FromBytes(p)
		q := a.Bytes()
		if len(q) != len(p) {
			return false
		}
		for i := range p {
			if p[i] != q[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: XOR is an involution: (a^b)^b == a.
func TestPropertyXorInvolution(t *testing.T) {
	f := func(p, q []byte) bool {
		n := len(p)
		if len(q) < n {
			n = len(q)
		}
		a := FromBytes(p[:n])
		b := FromBytes(q[:n])
		orig := a.Clone()
		a.Xor(b)
		a.Xor(b)
		return a.Equal(orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: HammingDistance(a,b) == OnesCount(a^b).
func TestPropertyHammingXor(t *testing.T) {
	f := func(p, q []byte) bool {
		n := len(p)
		if len(q) < n {
			n = len(q)
		}
		a := FromBytes(p[:n])
		b := FromBytes(q[:n])
		x := a.Clone()
		x.Xor(b)
		return a.HammingDistance(b) == x.OnesCount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkParityMasked4096(b *testing.B) {
	a := New(4096)
	m := New(4096)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 4096; i++ {
		a.Set(i, int(r.Int63()&1))
		m.Set(i, int(r.Int63()&1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ParityMasked(m)
	}
}

// --- Bulk-op tests (the word-at-a-time fast paths the sifting and
// photonics hot loops depend on) ---

func TestAppendWord(t *testing.T) {
	a := New(0)
	a.AppendWord(0b1011, 4)
	a.AppendWord(0xFFFFFFFFFFFFFFFF, 64)
	a.AppendWord(0, 3)
	if a.Len() != 71 {
		t.Fatalf("Len = %d, want 71", a.Len())
	}
	want := []int{1, 1, 0, 1}
	for i, w := range want {
		if a.Get(i) != w {
			t.Errorf("bit %d = %d, want %d", i, a.Get(i), w)
		}
	}
	for i := 4; i < 68; i++ {
		if a.Get(i) != 1 {
			t.Errorf("bit %d = 0, want 1", i)
		}
	}
	for i := 68; i < 71; i++ {
		if a.Get(i) != 0 {
			t.Errorf("bit %d = 1, want 0", i)
		}
	}
	// Masking: bits of w above nbits must be ignored.
	b := New(0)
	b.AppendWord(^uint64(0), 1)
	if b.Len() != 1 || b.Get(0) != 1 || b.OnesCount() != 1 {
		t.Error("AppendWord did not mask high bits")
	}
}

// Property: AppendWord in random chunk sizes equals per-bit Append.
func TestPropertyAppendWordChunks(t *testing.T) {
	f := func(words []uint64, seed uint8) bool {
		chunked, bitwise := New(0), New(0)
		sz := int(seed)%64 + 1
		for _, w := range words {
			chunked.AppendWord(w, sz)
			for i := 0; i < sz; i++ {
				bitwise.Append(int(w >> uint(i) & 1))
			}
		}
		return chunked.Equal(bitwise)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: word-at-a-time AppendAll equals per-bit appends.
func TestPropertyAppendAll(t *testing.T) {
	f := func(p, q []byte, trim uint8) bool {
		a := FromBytes(p)
		b := FromBytes(q)
		if int(trim) < b.Len() {
			b.Truncate(b.Len() - int(trim))
		}
		got := a.Clone()
		got.AppendAll(b)
		want := a.Clone()
		for i := 0; i < b.Len(); i++ {
			want.Append(b.Get(i))
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNot(t *testing.T) {
	a := FromBools([]bool{true, false, true})
	a.Not()
	if a.Get(0) != 0 || a.Get(1) != 1 || a.Get(2) != 0 {
		t.Error("Not flipped wrong bits")
	}
	if a.OnesCount() != 1 {
		t.Errorf("OnesCount after Not = %d (tail bits not trimmed?)", a.OnesCount())
	}
}

// Property: Compress picks exactly the masked bits, in order.
func TestPropertyCompress(t *testing.T) {
	f := func(p, q []byte) bool {
		n := len(p)
		if len(q) < n {
			n = len(q)
		}
		a := FromBytes(p[:n])
		m := FromBytes(q[:n])
		got := a.Compress(m)
		want := New(0)
		for i := 0; i < a.Len(); i++ {
			if m.Get(i) == 1 {
				want.Append(a.Get(i))
			}
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSelectU32(t *testing.T) {
	a := FromBools([]bool{false, true, false, true, true})
	got := a.SelectU32([]uint32{4, 0, 1})
	if got.Len() != 3 || got.Get(0) != 1 || got.Get(1) != 0 || got.Get(2) != 1 {
		t.Errorf("SelectU32 = %v", got)
	}
}

func TestSliceAlignedFastPath(t *testing.T) {
	a := New(200)
	for i := 0; i < 200; i += 3 {
		a.Set(i, 1)
	}
	for _, c := range [][2]int{{0, 200}, {64, 130}, {128, 128}, {0, 64}} {
		got := a.Slice(c[0], c[1])
		if got.Len() != c[1]-c[0] {
			t.Fatalf("Slice(%d,%d).Len = %d", c[0], c[1], got.Len())
		}
		for i := c[0]; i < c[1]; i++ {
			if got.Get(i-c[0]) != a.Get(i) {
				t.Fatalf("Slice(%d,%d) bit %d differs", c[0], c[1], i-c[0])
			}
		}
	}
}
