package workload

import (
	"sort"
	"testing"
)

func collect(g *Generator, ticks int) []Packet {
	var out []Packet
	for i := 0; i < ticks; i++ {
		out = g.Tick(out)
	}
	return out
}

// Same seed, same trace — the property every chaos replay depends on.
func TestDeterministicPerSeed(t *testing.T) {
	a := collect(New(Config{Seed: 7, Tunnels: 4}), 400)
	b := collect(New(Config{Seed: 7, Tunnels: 4}), 400)
	if len(a) != len(b) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at packet %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := collect(New(Config{Seed: 8, Tunnels: 4}), 400)
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("different seeds produced identical traces")
		}
	}
}

// The size distribution must be heavy-tailed: the bulk tail reaches the
// MTU cap while the median stays small.
func TestHeavyTailedSizes(t *testing.T) {
	pkts := collect(New(Config{Seed: 42, Tunnels: 8}), 2000)
	if len(pkts) < 1000 {
		t.Fatalf("trace too thin: %d packets over 2000 ticks", len(pkts))
	}
	sizes := make([]float64, 0, len(pkts))
	var sum float64
	for _, p := range pkts {
		if p.Bytes < 32 || p.Bytes > 1400 {
			t.Fatalf("packet size %d outside [32, 1400]", p.Bytes)
		}
		sizes = append(sizes, float64(p.Bytes))
		sum += float64(p.Bytes)
	}
	sort.Float64s(sizes)
	p50 := Quantile(sizes, 0.50)
	p99 := Quantile(sizes, 0.99)
	if p99 < 3*p50 {
		t.Fatalf("tail too light: p50=%.0f p99=%.0f", p50, p99)
	}
	mean := sum / float64(len(sizes))
	if p50 > mean {
		t.Fatalf("not right-skewed: median %.0f above mean %.0f", p50, mean)
	}
}

// Both flow classes must contribute, with conferencing dominating the
// packet count and bulk carrying disproportionate bytes per packet.
func TestClassMix(t *testing.T) {
	g := New(Config{Seed: 3, Tunnels: 8})
	collect(g, 3000)
	pkts, bytes := g.Totals()
	if pkts[Conferencing] == 0 || pkts[Bulk] == 0 {
		t.Fatalf("a class went silent: conf=%d bulk=%d", pkts[Conferencing], pkts[Bulk])
	}
	if pkts[Conferencing] < pkts[Bulk] {
		t.Fatalf("conferencing should dominate packet count: conf=%d bulk=%d",
			pkts[Conferencing], pkts[Bulk])
	}
	confAvg := float64(bytes[Conferencing]) / float64(pkts[Conferencing])
	bulkAvg := float64(bytes[Bulk]) / float64(pkts[Bulk])
	if bulkAvg <= confAvg {
		t.Fatalf("bulk packets should be larger on average: bulk=%.0fB conf=%.0fB", bulkAvg, confAvg)
	}
}

// The diurnal swell must actually move the offered rate: the busiest
// quarter-cycle carries well more than the quietest.
func TestDiurnalSwell(t *testing.T) {
	period := 256
	g := New(Config{Seed: 9, Tunnels: 8, DiurnalPeriod: period, FlashEvery: 1 << 30})
	perTick := make([]int, 4*period)
	var out []Packet
	for i := range perTick {
		out = g.Tick(out[:0])
		perTick[i] = len(out)
	}
	quarter := period / 4
	sumQ := func(start int) (s int) {
		for c := 0; c < 4; c++ { // average the same phase across 4 cycles
			for i := 0; i < quarter; i++ {
				s += perTick[c*period+start+i]
			}
		}
		return s
	}
	peak := sumQ(quarter / 2)            // centered on sin max
	trough := sumQ(period/2 + quarter/2) // centered on sin min
	if float64(peak) < 1.5*float64(trough) {
		t.Fatalf("diurnal swell too flat: peak quarter %d vs trough quarter %d", peak, trough)
	}
}

// Flash crowds must occur and multiply the rate while active.
func TestFlashCrowds(t *testing.T) {
	g := New(Config{Seed: 11, Tunnels: 8, DiurnalAmplitude: 0.0001, FlashEvery: 50, FlashFactor: 8})
	var flashSum, flashTicks, calmSum, calmTicks int
	var out []Packet
	for i := 0; i < 2000; i++ {
		flash := g.FlashActive()
		out = g.Tick(out[:0])
		if flash {
			flashSum += len(out)
			flashTicks++
		} else {
			calmSum += len(out)
			calmTicks++
		}
	}
	if flashTicks == 0 {
		t.Fatalf("no flash crowd fired in 2000 ticks with FlashEvery=50")
	}
	flashRate := float64(flashSum) / float64(flashTicks)
	calmRate := float64(calmSum) / float64(calmTicks)
	if flashRate < 3*calmRate {
		t.Fatalf("flash crowds too weak: %.1f pkts/tick vs calm %.1f", flashRate, calmRate)
	}
}

// Every tunnel must see traffic.
func TestTunnelCoverage(t *testing.T) {
	const tunnels = 12
	pkts := collect(New(Config{Seed: 5, Tunnels: tunnels}), 2000)
	seen := make([]bool, tunnels)
	for _, p := range pkts {
		if p.Tunnel < 0 || p.Tunnel >= tunnels {
			t.Fatalf("tunnel index %d out of range", p.Tunnel)
		}
		seen[p.Tunnel] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("tunnel %d never carried a packet", i)
		}
	}
}
