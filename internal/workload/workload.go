// Package workload generates deterministic trace-shaped offered load
// for the chaos soaks. The paper's VPN carried real enterprise traffic
// between campuses; the published follow-on measurement literature
// (DimDim-style web conferencing analyses) shows what that traffic
// looks like: a mix of many small steady conferencing packets and
// bursty heavy-tailed bulk transfers, modulated by a diurnal swell and
// punctuated by flash crowds. A Generator reproduces that shape from a
// single seed so a chaos run replays bit-identically: same seed, same
// packet trace, same fault interleaving.
//
// Time is virtual: one Tick is one scheduling quantum. Each tick the
// generator draws a Poisson packet count whose rate follows
//
//	rate(t) = BaseRate x diurnal(t) x flash(t)
//
// and deals those packets to the currently-bursting flows. Flow
// classes:
//
//   - Conferencing: long-lived, mostly-on flows of small packets
//     (bimodal audio/video-keyframe sizes), the "many small flows"
//     mass of the trace.
//   - Bulk: on/off flows whose packet sizes follow a bounded Pareto —
//     the heavy tail that dominates bytes while being a minority of
//     packets.
package workload

import (
	"math"

	"qkd/internal/rng"
)

// Class labels a flow's traffic shape.
type Class int

const (
	// Conferencing flows send many small packets at a steady clip.
	Conferencing Class = iota
	// Bulk flows send heavy-tailed packet trains in on/off bursts.
	Bulk
)

func (c Class) String() string {
	if c == Conferencing {
		return "conferencing"
	}
	return "bulk"
}

// Packet is one generated packet: which tunnel carries it, the flow
// class it belongs to, and its inner (pre-encapsulation) size.
type Packet struct {
	Tunnel int
	Class  Class
	Bytes  int
}

// Config shapes the generated trace. Zero values select the defaults
// noted on each field.
type Config struct {
	// Seed drives every draw; the same seed reproduces the same trace.
	Seed uint64
	// Tunnels is the number of tunnels load is spread over (default 8).
	Tunnels int
	// Flows is the number of concurrent flows (default 4 per tunnel).
	Flows int
	// ConferencingFraction of flows are Conferencing (default 0.7).
	ConferencingFraction float64
	// BaseRate is the mean packets per tick at the diurnal midpoint
	// with no flash crowd active (default 48).
	BaseRate float64
	// DiurnalPeriod is the tick count of one diurnal cycle
	// (default 256).
	DiurnalPeriod int
	// DiurnalAmplitude scales the sinusoidal swell: rate swings between
	// (1-amp) and (1+amp) of BaseRate (default 0.5).
	DiurnalAmplitude float64
	// FlashEvery is the mean gap in ticks between flash crowds
	// (default 96).
	FlashEvery int
	// FlashFactor multiplies the rate while a flash crowd is active
	// (default 6).
	FlashFactor float64
	// FlashTicks is how long a flash crowd lasts (default 4).
	FlashTicks int
	// MaxBytes truncates the bulk Pareto tail, the wire MTU minus
	// encapsulation overhead (default 1400).
	MaxBytes int
}

func (c Config) withDefaults() Config {
	if c.Tunnels <= 0 {
		c.Tunnels = 8
	}
	if c.Flows <= 0 {
		c.Flows = 4 * c.Tunnels
	}
	if c.ConferencingFraction <= 0 || c.ConferencingFraction > 1 {
		c.ConferencingFraction = 0.7
	}
	if c.BaseRate <= 0 {
		c.BaseRate = 48
	}
	if c.DiurnalPeriod <= 0 {
		c.DiurnalPeriod = 256
	}
	if c.DiurnalAmplitude <= 0 || c.DiurnalAmplitude >= 1 {
		c.DiurnalAmplitude = 0.5
	}
	if c.FlashEvery <= 0 {
		c.FlashEvery = 96
	}
	if c.FlashFactor < 1 {
		c.FlashFactor = 6
	}
	if c.FlashTicks <= 0 {
		c.FlashTicks = 4
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 1400
	}
	return c
}

// Bulk packet sizes follow a bounded Pareto on [paretoMin, MaxBytes].
// alpha just above 1 puts most of the byte volume in the tail, the
// regime every flow-size measurement study reports.
// The floor sits at a typical data-segment size: bulk transfers send
// few tiny packets, and the tail still reaches the MTU cap.
const (
	paretoMin   = 300
	paretoAlpha = 1.2
)

// flow is one traffic source: its class, the tunnel it rides, and its
// on/off burst state (remaining ticks in the current state).
type flow struct {
	class  Class
	tunnel int
	on     bool
	left   int
}

// Generator produces the trace. Not safe for concurrent use; drive it
// from one goroutine and fan the packets out afterwards.
type Generator struct {
	cfg   Config
	rand  *rng.SplitMix64
	flows []flow
	tick  int
	// flash crowd state
	nextFlash  int
	flashUntil int
	// running totals for reporting
	pkts  [2]uint64
	bytes [2]uint64
}

// New builds a Generator from cfg (zero fields take defaults).
func New(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	g := &Generator{
		cfg:  cfg,
		rand: rng.NewSplitMix64(cfg.Seed ^ 0x7A3C_9E15_D00D_F00D),
	}
	nConf := int(math.Round(float64(cfg.Flows) * cfg.ConferencingFraction))
	for i := 0; i < cfg.Flows; i++ {
		f := flow{tunnel: i % cfg.Tunnels, class: Bulk}
		if i < nConf {
			f.class = Conferencing
		}
		// Start each flow at a random point of its on/off cycle so the
		// first tick is not a synchronized burst.
		f.on = g.rand.Float64() < onFraction(f.class)
		f.left = 1 + g.rand.Intn(g.meanTicks(f.class, f.on))
		g.flows = append(g.flows, f)
	}
	g.nextFlash = 1 + g.rand.Intn(2*cfg.FlashEvery)
	return g
}

// onFraction is the steady-state fraction of time a flow of the class
// spends bursting.
func onFraction(c Class) float64 {
	if c == Conferencing {
		return 0.9
	}
	return 0.35
}

// meanTicks is the mean dwell time of a flow state (on or off).
func (g *Generator) meanTicks(c Class, on bool) int {
	if c == Conferencing {
		if on {
			return 60
		}
		return 6
	}
	if on {
		return 7
	}
	return 13
}

// Tick advances virtual time one quantum and appends that tick's
// packets to out, returning the extended slice.
func (g *Generator) Tick(out []Packet) []Packet {
	t := g.tick
	g.tick++

	// Flash crowd process: a renewal process with mean gap FlashEvery.
	if t >= g.nextFlash && t >= g.flashUntil {
		g.flashUntil = t + g.cfg.FlashTicks
		gap := g.cfg.FlashTicks + 1 + g.rand.Poisson(float64(g.cfg.FlashEvery))
		g.nextFlash = t + gap
	}

	// Advance flow burst states.
	for i := range g.flows {
		f := &g.flows[i]
		f.left--
		if f.left <= 0 {
			f.on = !f.on
			f.left = 1 + g.rand.Poisson(float64(g.meanTicks(f.class, f.on)))
		}
	}
	var onIdx []int
	for i := range g.flows {
		if g.flows[i].on {
			onIdx = append(onIdx, i)
		}
	}
	if len(onIdx) == 0 {
		// Never let the trace go fully silent: wake one flow.
		i := g.rand.Intn(len(g.flows))
		g.flows[i].on = true
		g.flows[i].left = 1 + g.rand.Poisson(float64(g.meanTicks(g.flows[i].class, true)))
		onIdx = append(onIdx, i)
	}

	rate := g.cfg.BaseRate * g.diurnal(t)
	if t < g.flashUntil {
		rate *= g.cfg.FlashFactor
	}
	n := g.rand.Poisson(rate)
	for k := 0; k < n; k++ {
		f := &g.flows[onIdx[g.rand.Intn(len(onIdx))]]
		size := g.drawSize(f.class)
		out = append(out, Packet{Tunnel: f.tunnel, Class: f.class, Bytes: size})
		g.pkts[f.class]++
		g.bytes[f.class] += uint64(size)
	}
	return out
}

// diurnal is the sinusoidal rate swell, 1±DiurnalAmplitude over one
// DiurnalPeriod.
func (g *Generator) diurnal(t int) float64 {
	phase := 2 * math.Pi * float64(t%g.cfg.DiurnalPeriod) / float64(g.cfg.DiurnalPeriod)
	return 1 + g.cfg.DiurnalAmplitude*math.Sin(phase)
}

// drawSize samples one packet size for the class.
func (g *Generator) drawSize(c Class) int {
	if c == Conferencing {
		// Bimodal: mostly small audio frames, occasionally a video
		// keyframe near the MTU.
		if g.rand.Float64() < 0.85 {
			return 48 + g.rand.Intn(200)
		}
		hi := g.cfg.MaxBytes
		return hi - g.rand.Intn(hi/3)
	}
	// Bounded Pareto via inverse CDF.
	u := g.rand.Float64()
	xm, xM := float64(paretoMin), float64(g.cfg.MaxBytes)
	ratio := math.Pow(xm/xM, paretoAlpha)
	x := xm / math.Pow(1-u*(1-ratio), 1/paretoAlpha)
	if x > xM {
		x = xM
	}
	return int(x)
}

// TickIndex reports how many ticks have been generated.
func (g *Generator) TickIndex() int { return g.tick }

// FlashActive reports whether a flash crowd covers the NEXT tick.
func (g *Generator) FlashActive() bool { return g.tick < g.flashUntil }

// Totals reports cumulative packet and byte counts per class.
func (g *Generator) Totals() (pkts, bytes [2]uint64) { return g.pkts, g.bytes }

// Quantile returns the q-quantile (0..1) of xs, which MUST be sorted
// ascending. Shared by the workload tests and the E17 SLO gate.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(q * float64(len(xs)-1))
	return xs[i]
}
