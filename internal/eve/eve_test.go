package eve

import (
	"math"
	"testing"

	"qkd/internal/photonics"
	"qkd/internal/qframe"
)

// singlePhotonParams: lossless, noiseless link where (almost) every
// pulse that exists carries exactly one photon, isolating the attack's
// effect from channel noise.
func singlePhotonParams() photonics.Params {
	p := photonics.DefaultParams()
	p.MeanPhotons = 0.2
	p.FiberKm = 0
	p.SystemLossDB = 0
	p.DetectorEff = 1
	p.DarkCountProb = 0
	p.Visibility = 1
	return p
}

// runFrames transmits frames and aggregates sifted/error counts plus
// the sifted slot lists per frame (ground truth, for Eve accounting).
func runFrames(l *photonics.Link, frames, slots int) (sifted, errors int) {
	for f := 0; f < frames; f++ {
		tx, rx := l.TransmitFrame(uint64(f), slots)
		s, e := photonics.MeasuredQBER(tx, rx)
		sifted += s
		errors += e
	}
	return
}

// siftedSlots returns the slots that survive sifting (usable click,
// matched basis) — ground truth for Eve's knowledge accounting.
func siftedSlots(tx *qframe.TxFrame, rx *qframe.RxFrame) []uint32 {
	var out []uint32
	for i := 0; i < rx.Count(); i++ {
		d := rx.At(i)
		if _, ok := d.Value(); !ok {
			continue
		}
		if tx.Basis(int(d.Slot)) == d.Basis {
			out = append(out, d.Slot)
		}
	}
	return out
}

func TestInterceptResendFullInducesQuarterQBER(t *testing.T) {
	l := photonics.NewLink(singlePhotonParams(), 1)
	l.SetTap(NewInterceptResend(1.0, 99))
	sifted, errors := runFrames(l, 30, 5000)
	if sifted < 2000 {
		t.Fatalf("too few sifted bits: %d", sifted)
	}
	qber := float64(errors) / float64(sifted)
	if math.Abs(qber-0.25) > 0.03 {
		t.Errorf("full intercept-resend QBER = %.3f, want ~0.25", qber)
	}
}

func TestInterceptResendPartial(t *testing.T) {
	// Attacking half the pulses should induce ~12.5 % QBER.
	l := photonics.NewLink(singlePhotonParams(), 2)
	l.SetTap(NewInterceptResend(0.5, 7))
	sifted, errors := runFrames(l, 30, 5000)
	qber := float64(errors) / float64(sifted)
	if math.Abs(qber-0.125) > 0.025 {
		t.Errorf("half intercept-resend QBER = %.3f, want ~0.125", qber)
	}
}

func TestInterceptResendZeroProbHarmless(t *testing.T) {
	l := photonics.NewLink(singlePhotonParams(), 3)
	a := NewInterceptResend(0, 7)
	l.SetTap(a)
	sifted, errors := runFrames(l, 10, 5000)
	if errors != 0 {
		t.Errorf("prob-0 attack induced %d errors in %d bits", errors, sifted)
	}
	if a.AttackedCount() != 0 {
		t.Errorf("prob-0 attack measured %d pulses", a.AttackedCount())
	}
}

func TestInterceptResendKnowledgeAccounting(t *testing.T) {
	// Eve's known fraction of sifted bits should approach 1/2 under a
	// full attack (she guesses the right basis half the time).
	l := photonics.NewLink(singlePhotonParams(), 4)
	a := NewInterceptResend(1.0, 5)
	l.SetTap(a)

	totalSifted, totalKnown := 0, 0
	for f := 0; f < 30; f++ {
		tx, rx := l.TransmitFrame(uint64(f), 5000)
		sifted := siftedSlots(tx, rx)
		totalSifted += len(sifted)
		totalKnown += a.KnownBits(tx, sifted)
	}
	frac := float64(totalKnown) / float64(totalSifted)
	if math.Abs(frac-0.5) > 0.05 {
		t.Errorf("Eve knows %.3f of sifted bits, want ~0.5", frac)
	}
}

func TestBeamsplitTransparent(t *testing.T) {
	// Beamsplitting must induce no errors at all.
	p := singlePhotonParams()
	p.MeanPhotons = 0.5 // plenty of multi-photon pulses
	l := photonics.NewLink(p, 5)
	a := NewBeamsplit()
	l.SetTap(a)
	sifted, errors := runFrames(l, 20, 5000)
	if sifted == 0 {
		t.Fatal("no sifted bits")
	}
	if errors != 0 {
		t.Errorf("beamsplit induced %d errors — it must be transparent", errors)
	}
}

func TestBeamsplitKnowledgeScalesWithMu(t *testing.T) {
	// Eve's haul should grow with the multi-photon probability.
	haul := func(mu float64) float64 {
		p := singlePhotonParams()
		p.MeanPhotons = mu
		l := photonics.NewLink(p, 6)
		a := NewBeamsplit()
		l.SetTap(a)
		known, sifted := 0, 0
		for f := 0; f < 10; f++ {
			tx, rx := l.TransmitFrame(uint64(f), 5000)
			sslots := siftedSlots(tx, rx)
			sifted += len(sslots)
			known += a.KnownBits(sslots)
		}
		if sifted == 0 {
			return 0
		}
		return float64(known) / float64(sifted)
	}
	low := haul(0.1)
	high := haul(1.0)
	if high <= low {
		t.Errorf("beamsplit haul did not grow with mu: %.4f (mu=0.1) vs %.4f (mu=1.0)", low, high)
	}
	if low > 0.2 {
		t.Errorf("haul at mu=0.1 suspiciously high: %.4f", low)
	}
}

func TestBeamsplitStealsOnePhotonOnly(t *testing.T) {
	a := NewBeamsplit()
	a.BeginFrame(0)
	p := &photonics.Pulse{Slot: 3, Photons: 5}
	a.Intercept(p, nil)
	if p.Photons != 4 {
		t.Errorf("photons after split = %d, want 4", p.Photons)
	}
	if a.StolenCount() != 1 {
		t.Errorf("StolenCount = %d", a.StolenCount())
	}
	single := &photonics.Pulse{Slot: 4, Photons: 1}
	a.Intercept(single, nil)
	if single.Photons != 1 || a.StolenCount() != 1 {
		t.Error("beamsplit touched a single-photon pulse")
	}
}

func TestCompositeAppliesInOrder(t *testing.T) {
	bs := NewBeamsplit()
	ir := NewInterceptResend(1.0, 11)
	c := &Composite{Taps: []photonics.Tap{bs, ir}}
	c.BeginFrame(0)
	p := &photonics.Pulse{Slot: 0, Photons: 2, Basis: qframe.BasisRect, Value: 1}
	c.Intercept(p, nil)
	if bs.StolenCount() != 1 {
		t.Error("composite did not run beamsplit")
	}
	if ir.AttackedCount() != 1 {
		t.Error("composite did not run intercept-resend")
	}
	if p.Photons != 1 {
		t.Errorf("resent photon count = %d, want 1", p.Photons)
	}
}

func TestFrameAwareResetsState(t *testing.T) {
	a := NewInterceptResend(1.0, 13)
	a.BeginFrame(0)
	a.Intercept(&photonics.Pulse{Slot: 1, Photons: 1}, nil)
	if a.AttackedCount() != 1 {
		t.Fatal("no measurement recorded")
	}
	a.BeginFrame(1)
	if a.AttackedCount() != 0 {
		t.Error("BeginFrame did not clear measurements")
	}
}

func TestResendBoost(t *testing.T) {
	a := NewInterceptResend(1.0, 17)
	a.ResendPhotons = 7
	a.BeginFrame(0)
	p := &photonics.Pulse{Slot: 0, Photons: 1}
	a.Intercept(p, nil)
	if p.Photons != 7 {
		t.Errorf("boosted resend photons = %d, want 7", p.Photons)
	}
}
