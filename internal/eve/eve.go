// Package eve implements the eavesdropping attacks of Section 6 of the
// paper against the simulated quantum channel.
//
// Within the quantum-cryptographic threat model Eve is limited only by
// physics: she detects every dim pulse without loss, fabricates pulses
// indistinguishable from Alice's (up to no-cloning), and reads the
// public channel freely. The two canonical quantum-channel attacks are:
//
//   - intercept-resend (non-transparent): Eve measures each attacked
//     pulse in a random basis and resends her result. When her basis
//     disagrees with Alice's she learns nothing and randomizes Bob's
//     outcome, inducing a 25 % error rate on attacked sifted bits —
//     which is what makes the attack detectable.
//
//   - beamsplitting / photon-number splitting (transparent): on pulses
//     carrying two or more photons Eve steals one and stores it,
//     measuring it only after bases are revealed during sifting. She
//     gains full knowledge of those bits and induces no errors at all,
//     which is why privacy amplification must charge the multi-photon
//     fraction of *transmitted* pulses against the entropy estimate on
//     weak-coherent links (Brassard, Mor, Sanders).
//
// Attacks implement photonics.Tap plus knowledge accounting so
// experiments can compare Eve's actual haul with the entropy estimator's
// allowance.
package eve

import (
	"qkd/internal/photonics"
	"qkd/internal/qframe"
	"qkd/internal/rng"
)

// measurement is Eve's record of one intercepted pulse.
type measurement struct {
	basis qframe.Basis
	value uint8
}

// InterceptResend measures a fraction Prob of pulses in a uniformly
// random basis and retransmits the measured result as a fresh pulse of
// ResendPhotons photons.
//
// The attack tracks its measurements per frame; install it with
// photonics.Link.SetTap and call BeginFrame (the link does this
// automatically) so slots resolve unambiguously.
type InterceptResend struct {
	// Prob is the fraction of pulses Eve attacks, in [0, 1].
	Prob float64
	// ResendPhotons is the photon number of Eve's regenerated pulse.
	// The default 0 is treated as 1. Eve may boost this to compensate
	// for downstream loss (she is allowed lossless delivery).
	ResendPhotons int
	// rand is Eve's private randomness.
	rand *rng.SplitMix64

	frame    uint64
	measured map[uint32]measurement
}

// NewInterceptResend builds the attack with its own seeded randomness.
func NewInterceptResend(prob float64, seed uint64) *InterceptResend {
	return &InterceptResend{
		Prob:     prob,
		rand:     rng.NewSplitMix64(seed),
		measured: make(map[uint32]measurement),
	}
}

// Name implements photonics.Tap.
func (a *InterceptResend) Name() string { return "intercept-resend" }

// BeginFrame clears per-frame measurement state.
func (a *InterceptResend) BeginFrame(id uint64) {
	a.frame = id
	a.measured = make(map[uint32]measurement)
}

// Intercept implements photonics.Tap.
func (a *InterceptResend) Intercept(p *photonics.Pulse, _ *rng.SplitMix64) {
	if p.Photons == 0 || a.rand.Float64() >= a.Prob {
		return
	}
	// Eve measures in a random basis. Axiomatically she detects the
	// pulse with certainty (Section 6: "detect all dim pulses with
	// zero loss").
	eb := qframe.Basis(a.rand.Bit())
	var ev uint8
	if eb == p.Basis {
		ev = p.Value
	} else {
		ev = uint8(a.rand.Bit())
	}
	a.measured[p.Slot] = measurement{basis: eb, value: ev}

	// Resend: the pulse Bob now receives carries Eve's basis and value.
	n := a.ResendPhotons
	if n <= 0 {
		n = 1
	}
	p.Basis = eb
	p.Value = ev
	p.Photons = n
}

// AttackedCount returns how many pulses of the current frame Eve
// measured.
func (a *InterceptResend) AttackedCount() int { return len(a.measured) }

// KnownBits returns the number of sifted bits of the current frame that
// Eve knows with certainty: those she measured in the basis Alice later
// revealed. sifted lists the slot numbers that survived sifting.
func (a *InterceptResend) KnownBits(tx *qframe.TxFrame, sifted []uint32) int {
	known := 0
	for _, slot := range sifted {
		m, ok := a.measured[slot]
		if !ok {
			continue
		}
		if m.basis == tx.Basis(int(slot)) {
			known++
		}
	}
	return known
}

// Beamsplit steals one photon from every multi-photon pulse and stores
// it for measurement after basis revelation. It induces no errors.
type Beamsplit struct {
	frame  uint64
	stolen map[uint32]bool
}

// NewBeamsplit builds the attack.
func NewBeamsplit() *Beamsplit {
	return &Beamsplit{stolen: make(map[uint32]bool)}
}

// Name implements photonics.Tap.
func (a *Beamsplit) Name() string { return "beamsplit" }

// BeginFrame clears per-frame state.
func (a *Beamsplit) BeginFrame(id uint64) {
	a.frame = id
	a.stolen = make(map[uint32]bool)
}

// Intercept implements photonics.Tap.
func (a *Beamsplit) Intercept(p *photonics.Pulse, _ *rng.SplitMix64) {
	if p.Photons >= 2 {
		p.Photons--
		a.stolen[p.Slot] = true
	}
}

// StolenCount returns the number of pulses Eve split this frame.
func (a *Beamsplit) StolenCount() int { return len(a.stolen) }

// KnownBits returns how many sifted bits Eve knows: every sifted slot
// from which she holds a stored photon, since she measures it in the
// publicly announced basis.
func (a *Beamsplit) KnownBits(sifted []uint32) int {
	known := 0
	for _, slot := range sifted {
		if a.stolen[slot] {
			known++
		}
	}
	return known
}

// Composite chains several attacks; each sees the pulse after the
// previous one's modifications (e.g. beamsplit then intercept-resend a
// fraction of the remainder).
type Composite struct {
	Taps []photonics.Tap
}

// Name implements photonics.Tap.
func (c *Composite) Name() string { return "composite" }

// BeginFrame forwards frame boundaries to members that track them.
func (c *Composite) BeginFrame(id uint64) {
	for _, t := range c.Taps {
		if f, ok := t.(photonics.FrameAware); ok {
			f.BeginFrame(id)
		}
	}
}

// Intercept implements photonics.Tap.
func (c *Composite) Intercept(p *photonics.Pulse, r *rng.SplitMix64) {
	for _, t := range c.Taps {
		t.Intercept(p, r)
	}
}
