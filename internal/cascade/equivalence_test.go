package cascade

import (
	"crypto/sha256"
	"encoding/hex"

	"testing"

	"qkd/internal/bitarray"
)

// Wire-transcript pinning: the word-parallel fast paths (rank-indexed
// parity queries, batched LFSR masks, pooled buffers) are pure
// implementation detail — every byte both sides put on the public
// channel must be identical to the original bit-serial engine. These
// hashes were recorded from that engine (with runWave's deterministic
// flip ordering) and must never change without a protocol version bump.

// recordingMessenger wraps a Messenger, folding every message (tagged
// with its direction) into a running SHA-256.
type recordingMessenger struct {
	inner Messenger
	h     interface{ Write(p []byte) (int, error) }
	tag   byte
}

func (r *recordingMessenger) Send(p []byte) error {
	r.h.Write([]byte{r.tag, 0})
	r.h.Write(p)
	return r.inner.Send(p)
}

func (r *recordingMessenger) Recv() ([]byte, error) {
	p, err := r.inner.Recv()
	if err == nil {
		r.h.Write([]byte{r.tag, 1})
		r.h.Write(p)
	}
	return p, err
}

// transcriptHash runs p end to end over an in-memory link and returns
// the hex SHA-256 of the corrector side's send/receive transcript (the
// reference sees the same bytes mirrored, so one side pins both).
func transcriptHash(t *testing.T, p Protocol, ref, noisy *bitarray.BitArray) (string, *Result) {
	t.Helper()
	ma, mb := memPair()
	h := sha256.New()
	rec := &recordingMessenger{inner: mb, h: h, tag: 'C'}
	errCh := make(chan error, 1)
	go func() {
		_, err := p.RunReference(ma, ref)
		errCh <- err
	}()
	res, err := p.RunCorrect(rec, noisy)
	refErr := <-errCh
	if err != nil {
		t.Fatalf("%s corrector: %v", p.Name(), err)
	}
	if refErr != nil {
		t.Fatalf("%s reference: %v", p.Name(), refErr)
	}
	return hex.EncodeToString(h.Sum(nil)), res
}

// transcriptCase pins one protocol/seed/error-burden combination.
type transcriptCase struct {
	name  string
	proto func() Protocol
	seed  uint64
	n     int
	errs  int
	hash  string // recorded from the bit-serial engine
}

var transcriptCases = []transcriptCase{
	{"bbn-clean", func() Protocol { return NewBBN(41) }, 1001, 4096, 0,
		"128e8a232276177fd2faa3cfa65f0a67f5d66a01ce947066cc32f79a625c6396"},
	{"bbn-5pct", func() Protocol { return NewBBN(42) }, 1002, 4096, 204,
		"318e85a50e89e179e9a4a184468689ee878fe4b15dd9c4684714d559891c775d"},
	{"bbn-short", func() Protocol { return NewBBN(43) }, 1003, 1536, 31,
		"315d445b68401d26508e57532a8f812035ca1c2f20eb278b1374cc92ba478d5f"},
	{"classic-5pct", func() Protocol { return NewClassic(0.05, 44) }, 1004, 4096, 204,
		"33dd8687f2c993257b0153ac6744075b914751fbd872ae1f18300ccca57d5d54"},
	{"classic-underest", func() Protocol { return NewClassic(0.01, 45) }, 1005, 2048, 120,
		"d97f7916d5240f72638f390d97e39e1c939cfed68c7f9e9abac8fb822a8e2e38"},
	{"block-parity", func() Protocol { return NewBlockParity(64) }, 1006, 2048, 19,
		"076b090e5b936134b6f138c8703534d34d53b9e56f612945abff85bc5877b1d7"},
}

func TestWireTranscriptsPinned(t *testing.T) {
	for _, tc := range transcriptCases {
		t.Run(tc.name, func(t *testing.T) {
			ref, noisy := noisyPair(tc.seed, tc.n, tc.errs)
			got, res := transcriptHash(t, tc.proto(), ref, noisy)
			if !res.Corrected.Equal(ref) {
				if tc.name != "block-parity" { // baseline may leave paired errors
					t.Errorf("correction failed: %d residual", res.Corrected.HammingDistance(ref))
				}
			}
			if got != tc.hash {
				t.Errorf("wire transcript changed:\n got  %s\n want %s\n"+
					"(the fast path must be bit-identical on the wire)", got, tc.hash)
			}
		})
	}
}

// TestWireTranscriptDeterministic guards the normalization that makes
// the pins meaningful: two runs with identical seeds must produce
// identical bytes (flip application order is sorted, so map iteration
// order cannot leak into Classic's cascade queue).
func TestWireTranscriptDeterministic(t *testing.T) {
	for _, mk := range []func() Protocol{
		func() Protocol { return NewBBN(7) },
		func() Protocol { return NewClassic(0.05, 7) },
	} {
		ref, noisy := noisyPair(555, 4096, 204)
		h1, _ := transcriptHash(t, mk(), ref, noisy.Clone())
		h2, _ := transcriptHash(t, mk(), ref, noisy.Clone())
		if h1 != h2 {
			t.Errorf("%s: transcript differs between identical runs", mk().Name())
		}
	}
}
