// Package cascade implements the error-correction stage of the QKD
// pipeline: interactive protocols that let Alice and Bob find and fix
// the disagreements between their sifted bit strings while revealing —
// and carefully counting — as few parity bits as possible, since every
// disclosed parity must later be paid for during privacy amplification.
//
// Three protocols are provided:
//
//   - BBN: the paper's novel Cascade variant. The reference side defines
//     64 pseudo-random subsets of the sifted bits as LFSR bit strings,
//     identified on the wire by their 32-bit seeds, and discloses each
//     subset's parity. The correcting side locates one error per
//     mismatched subset by dichotomic search, flips it, updates the
//     recorded parities of every subset containing that bit ("this will
//     clear up some discrepancies but may introduce other new ones, and
//     so the process continues"), and rounds repeat with fresh seeds
//     until a round opens clean.
//
//   - Classic: Brassard-Salvail Cascade (Lect. Notes in Comp. Sci. 765),
//     the protocol the paper's variant descends from: multiple passes of
//     doubling block sizes over shared shuffles, with the trademark
//     cascading back-correction across passes.
//
//   - BlockParity: "a conventional parity-checking scheme as widely
//     employed in telecommunications systems" (paper appendix) — one
//     fixed partition, retried; it cannot fix paired errors within a
//     block and serves as the baseline Cascade is measured against.
//
// All protocols run between a *reference* side, whose string is the
// target, and a *correcting* side, whose string converges to it. They
// communicate over the small Messenger interface so they can run over
// the in-memory test harness or the real public channel alike, and all
// parity traffic is batched (see wire.go) so the per-message cost of
// channel authentication stays affordable.
package cascade

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"qkd/internal/bitarray"
	"qkd/internal/rng"
)

// Messenger is the minimal reliable message transport the protocols
// need. Package core adapts channel.Conn to it.
type Messenger interface {
	Send(payload []byte) error
	Recv() ([]byte, error)
}

// Result summarizes a completed correction from the correcting side.
type Result struct {
	// Corrected is the corrector's string after the protocol; with
	// overwhelming probability it equals the reference string.
	Corrected *bitarray.BitArray
	// Disclosed counts parity bits revealed on the public channel.
	// Privacy amplification must subtract this.
	Disclosed int
	// Flips is the number of bit errors found and fixed (the "e" input
	// to entropy estimation).
	Flips int
	// Rounds (BBN) or passes (Classic) executed.
	Rounds int
}

// Protocol is one interactive error-correction scheme.
type Protocol interface {
	// Name identifies the protocol in experiment output.
	Name() string
	// RunReference serves the side whose string is authoritative.
	// It returns the number of parity bits it disclosed.
	RunReference(m Messenger, key *bitarray.BitArray) (disclosed int, err error)
	// RunCorrect runs the side that repairs its string.
	RunCorrect(m Messenger, key *bitarray.BitArray) (*Result, error)
}

// Wire message types. Payloads are little-endian packed.
//
// Parity queries are BATCHED: one query message carries every active
// binary search's current range, and one reply carries all the parity
// bits. This matters twice over: it turns O(errors * log n) round trips
// into O(log n), and — because the Wegman-Carter authentication layer
// pays a fixed pad cost per message — it keeps error correction from
// draining the authentication pool faster than distillation refills it.
const (
	msgHello     = 1 // corrector -> reference: uint32 n
	msgSubsets   = 2 // reference -> corrector: round seeds + parities (BBN)
	msgQuery     = 3 // corrector -> reference: batched parity queries
	msgParity    = 4 // reference -> corrector: parity bitmap
	msgRoundDone = 5 // corrector -> reference: clean flag
	msgFinish    = 6 // corrector -> reference: protocol complete
	msgPassStart = 7 // reference -> corrector: k1, passes, shuffle seeds (Classic)
	msgBlocks    = 8 // reference -> corrector: block parities
)

var errProtocol = errors.New("cascade: protocol violation")

// ---------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------

func sendMsg(m Messenger, typ byte, body []byte) error {
	return m.Send(append([]byte{typ}, body...))
}

func recvMsg(m Messenger, want byte) ([]byte, error) {
	p, err := m.Recv()
	if err != nil {
		return nil, err
	}
	if len(p) == 0 || p[0] != want {
		got := byte(0)
		if len(p) > 0 {
			got = p[0]
		}
		return nil, fmt.Errorf("%w: expected message %d, got %d", errProtocol, want, got)
	}
	return p[1:], nil
}

// recvEither accepts one of two message types.
func recvEither(m Messenger, a, b byte) (byte, []byte, error) {
	p, err := m.Recv()
	if err != nil {
		return 0, nil, err
	}
	if len(p) == 0 || (p[0] != a && p[0] != b) {
		return 0, nil, fmt.Errorf("%w: expected message %d or %d", errProtocol, a, b)
	}
	return p[0], p[1:], nil
}

// subsetState is the word-parallel view of one LFSR parity subset: the
// batched mask, a rank index over its members, and a parity index bound
// to whichever key snapshot the holder last called bind with. States
// are recycled through a sync.Pool — core's engines distill fixed-size
// batches, so after warmup every round's masks, rank tables and parity
// prefixes land in right-sized buffers with no allocation.
type subsetState struct {
	words []uint64
	mask  *bitarray.BitArray
	rank  bitarray.Rank
	px    bitarray.ParityIndex
}

var subsetPool = sync.Pool{New: func() interface{} { return new(subsetState) }}

// getSubset materializes the subset for seed over n bits from pooled
// storage: the LFSR runs 64 bits per step and the rank index is built
// from word popcounts.
func getSubset(seed uint32, n int) *subsetState {
	s := subsetPool.Get().(*subsetState)
	s.words = rng.MaskWords(seed, n, s.words)
	s.mask = bitarray.FromWords(s.words, n)
	s.rank.Build(s.mask)
	return s
}

// bind refreshes the parity index over the given key snapshot.
func (s *subsetState) bind(key *bitarray.BitArray) {
	s.rank.Bind(key, &s.px)
}

func putSubset(s *subsetState) { subsetPool.Put(s) }

// hello exchanges and validates the key length.
func sendHello(m Messenger, n int) error {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, uint32(n))
	return sendMsg(m, msgHello, b)
}

func recvHello(m Messenger, n int) error {
	body, err := recvMsg(m, msgHello)
	if err != nil {
		return err
	}
	if len(body) != 4 || int(binary.LittleEndian.Uint32(body)) != n {
		return fmt.Errorf("%w: key length mismatch in hello", errProtocol)
	}
	return nil
}

// ---------------------------------------------------------------------
// BBN variant
// ---------------------------------------------------------------------

// BBN is the paper's Cascade variant. Construct with NewBBN.
type BBN struct {
	// Subsets per round; the paper uses 64.
	Subsets int
	// MaxRounds caps the protocol; exceeding it means the strings were
	// too different to reconcile (or a protocol bug).
	MaxRounds int
	// seedRand drives the reference side's choice of subset seeds.
	seedRand *rng.SplitMix64
}

// NewBBN returns the paper's configuration: 64 subsets per round.
func NewBBN(seed uint64) *BBN {
	return &BBN{Subsets: 64, MaxRounds: 64, seedRand: rng.NewSplitMix64(seed)}
}

// Name implements Protocol.
func (c *BBN) Name() string { return fmt.Sprintf("bbn-cascade-%d", c.Subsets) }

// RunReference implements Protocol.
func (c *BBN) RunReference(m Messenger, key *bitarray.BitArray) (int, error) {
	n := key.Len()
	if err := recvHello(m, n); err != nil {
		return 0, err
	}
	disclosed := 0
	for round := 0; round < c.MaxRounds; round++ {
		// Announce this round's subsets and our parities. The key never
		// changes on this side, so each subset's parity index is bound
		// once and answers every dichotomic query of the round in O(log)
		// word lookups.
		seeds := make([]uint32, c.Subsets)
		out := make([]byte, 4+c.Subsets*4+(c.Subsets+7)/8)
		binary.LittleEndian.PutUint32(out[0:], uint32(c.Subsets))
		par := bitarray.New(c.Subsets)
		cache := make(map[uint32]*subsetState, c.Subsets)
		for i := range seeds {
			seeds[i] = c.seedRand.Uint32()
			if seeds[i] == 0 {
				seeds[i] = 1
			}
			binary.LittleEndian.PutUint32(out[4+4*i:], seeds[i])
			s, ok := cache[seeds[i]]
			if !ok {
				s = getSubset(seeds[i], n)
				s.bind(key)
				cache[seeds[i]] = s
			}
			if s.px.ParityRange(0, s.rank.Count()) == 1 {
				par.Set(i, 1)
			}
		}
		copy(out[4+4*c.Subsets:], par.Bytes())
		if err := sendMsg(m, msgSubsets, out); err != nil {
			return disclosed, err
		}
		disclosed += c.Subsets

		d, finished, err := serveRound(m, func(seed uint32, lo, hi int) (int, error) {
			s, ok := cache[seed]
			if !ok {
				s = getSubset(seed, n)
				s.bind(key)
				cache[seed] = s
			}
			if lo < 0 || hi > s.rank.Count() || lo >= hi {
				return 0, fmt.Errorf("%w: query range [%d,%d) of %d", errProtocol, lo, hi, s.rank.Count())
			}
			return s.px.ParityRange(lo, hi), nil
		})
		for _, s := range cache {
			putSubset(s)
		}
		disclosed += d
		if err != nil {
			return disclosed, err
		}
		if finished {
			return disclosed, nil
		}
	}
	return disclosed, fmt.Errorf("cascade: reference exceeded %d rounds", c.MaxRounds)
}

// RunCorrect implements Protocol.
func (c *BBN) RunCorrect(m Messenger, key *bitarray.BitArray) (*Result, error) {
	work := key.Clone()
	n := work.Len()
	if err := sendHello(m, n); err != nil {
		return nil, err
	}

	res := &Result{Corrected: work}
	for round := 0; round < c.MaxRounds; round++ {
		res.Rounds = round + 1
		body, err := recvMsg(m, msgSubsets)
		if err != nil {
			return nil, err
		}
		if len(body) < 4 {
			return nil, fmt.Errorf("%w: short subsets message", errProtocol)
		}
		count := int(binary.LittleEndian.Uint32(body))
		if count <= 0 || len(body) < 4+4*count+(count+7)/8 {
			return nil, fmt.Errorf("%w: truncated subsets message", errProtocol)
		}
		seeds := make([]uint32, count)
		subs := make([]*subsetState, count)
		refPar := bitarray.FromBytes(body[4+4*count:])
		res.Disclosed += count
		// diff[i] = our parity XOR reference parity for subset i.
		diff := make([]int, count)
		mismatches := 0
		for i := range seeds {
			seeds[i] = binary.LittleEndian.Uint32(body[4+4*i:])
			subs[i] = getSubset(seeds[i], n)
			diff[i] = work.ParityMasked(subs[i].mask) ^ refPar.Get(i)
			mismatches += diff[i]
		}
		recycle := func() {
			for _, s := range subs {
				putSubset(s)
			}
		}

		if mismatches == 0 {
			// Clean round: declare completion.
			recycle()
			if err := sendMsg(m, msgRoundDone, []byte{1}); err != nil {
				return nil, err
			}
			if err := sendMsg(m, msgFinish, nil); err != nil {
				return nil, err
			}
			return res, nil
		}

		// Fix errors in waves until every subset parity agrees. Each
		// wave rebinds the mismatched subsets' parity indexes to the
		// current work snapshot, then the post-flip bookkeeping updates
		// every subset's diff with one sparse word-parity per subset
		// instead of a per-flip per-subset bit probe.
		flips := bitarray.New(n)
		var nz []int
		for mismatches > 0 {
			var searches []*searchState
			for i, d := range diff {
				if d != 1 {
					continue
				}
				s := subs[i]
				if s.rank.Count() == 0 {
					recycle()
					return nil, fmt.Errorf("%w: mismatched empty subset", errProtocol)
				}
				s.bind(work)
				searches = append(searches, &searchState{
					key:    seeds[i],
					lo:     0,
					hi:     s.rank.Count(),
					parity: s.px.ParityRange,
					member: s.rank.Select,
				})
			}
			bits, d, err := runWave(m, searches)
			if err != nil {
				recycle()
				return nil, err
			}
			res.Disclosed += d
			for _, b := range bits {
				work.Flip(b)
				res.Flips++
				flips.Set(b, 1)
			}
			nz = flips.NonzeroWords(nz[:0])
			mismatches = 0
			for i := range subs {
				diff[i] ^= flips.ParityMaskedAt(subs[i].mask, nz)
				mismatches += diff[i]
			}
			fw := flips.Words()
			for _, w := range nz {
				fw[w] = 0
			}
		}
		recycle()
		if err := sendMsg(m, msgRoundDone, []byte{0}); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("cascade: corrector exceeded %d rounds", c.MaxRounds)
}

// Run executes a protocol end to end over an in-memory transport:
// the reference side serves ref in a goroutine while the corrector
// repairs noisy toward it. It returns the corrector's result and the
// reference side's disclosed-bit count (which must match the
// corrector's own accounting).
func Run(p Protocol, ref, noisy *bitarray.BitArray) (*Result, int, error) {
	ab := make(chan []byte, 64)
	ba := make(chan []byte, 64)
	mRef := &chanMessenger{out: ab, in: ba}
	mCor := &chanMessenger{out: ba, in: ab}
	type refOut struct {
		disclosed int
		err       error
	}
	ch := make(chan refOut, 1)
	go func() {
		d, err := p.RunReference(mRef, ref)
		ch <- refOut{d, err}
	}()
	res, err := p.RunCorrect(mCor, noisy)
	ro := <-ch
	if err != nil {
		return nil, ro.disclosed, err
	}
	if ro.err != nil {
		return nil, ro.disclosed, ro.err
	}
	return res, ro.disclosed, nil
}

// chanMessenger is the minimal in-memory Messenger backing Run.
type chanMessenger struct {
	out chan<- []byte
	in  <-chan []byte
}

func (m *chanMessenger) Send(p []byte) error {
	q := make([]byte, len(p))
	copy(q, p)
	m.out <- q
	return nil
}

func (m *chanMessenger) Recv() ([]byte, error) { return <-m.in, nil }
