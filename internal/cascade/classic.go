package cascade

import (
	"encoding/binary"
	"fmt"

	"qkd/internal/bitarray"
	"qkd/internal/rng"
)

// Classic is Brassard-Salvail Cascade: Passes passes of doubling block
// sizes over shared random shuffles, with back-correction — fixing an
// error in pass p flips the parity of the blocks containing that bit in
// every earlier pass, re-exposing errors that hid in even-sized groups.
//
// The initial block size is chosen from EstimatedQBER as k1 ~ 0.73/e,
// the Brassard-Salvail heuristic. The estimate typically comes from the
// link's running history (the paper: the protocol "will not disclose
// too many bits if the number of errors is low, but ... will accurately
// detect and correct a large number of errors ... even if that number
// is well above the historical average").
type Classic struct {
	// EstimatedQBER sizes the first-pass blocks. The reference's value
	// is transmitted at protocol start, so only its setting matters.
	EstimatedQBER float64
	// Passes is the number of doubling passes; Brassard-Salvail use 4.
	Passes int
	// seedRand drives the reference's choice of shuffle seeds.
	seedRand *rng.SplitMix64
}

// NewClassic returns a four-pass Cascade with the given prior error
// estimate.
func NewClassic(estimatedQBER float64, seed uint64) *Classic {
	return &Classic{
		EstimatedQBER: estimatedQBER,
		Passes:        4,
		seedRand:      rng.NewSplitMix64(seed),
	}
}

// Name implements Protocol.
func (c *Classic) Name() string { return fmt.Sprintf("classic-cascade-%d", c.Passes) }

// blockSize1 computes the first-pass block size from the error estimate.
func (c *Classic) blockSize1(n int) int {
	e := c.EstimatedQBER
	if e < 0.001 {
		e = 0.001
	}
	k := int(0.73/e + 0.5)
	if k < 4 {
		k = 4
	}
	if k > n {
		k = n
	}
	return k
}

// permFor derives the pass permutation: pass 0 is the identity
// (returned as nil so consumers can take word-parallel fast paths),
// later passes are Fisher-Yates shuffles of the given seed.
func permFor(pass int, seed uint64, n int) []int {
	if pass == 0 {
		return nil
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	rng.NewSplitMix64(seed).Shuffle(perm)
	return perm
}

// classicStart is the reference's opening message:
// k1 uint32 | passes uint32 | seed[1..passes-1] uint64 each.
func encodeClassicStart(k1, passes int, seeds []uint64) []byte {
	b := make([]byte, 8+8*len(seeds))
	binary.LittleEndian.PutUint32(b[0:], uint32(k1))
	binary.LittleEndian.PutUint32(b[4:], uint32(passes))
	for i, s := range seeds {
		binary.LittleEndian.PutUint64(b[8+8*i:], s)
	}
	return b
}

// RunReference implements Protocol.
func (c *Classic) RunReference(m Messenger, key *bitarray.BitArray) (int, error) {
	n := key.Len()
	if err := recvHello(m, n); err != nil {
		return 0, err
	}

	k1 := c.blockSize1(n)
	seeds := make([]uint64, c.Passes-1)
	for i := range seeds {
		seeds[i] = c.seedRand.Uint64()
	}
	if err := sendMsg(m, msgPassStart, encodeClassicStart(k1, c.Passes, seeds)); err != nil {
		return 0, err
	}

	// Precompute per-pass prefix parities over the (static) key: every
	// block parity and every dichotomic query then answers in O(1) from
	// two packed prefix bits.
	prefixes := make([]*bitarray.PrefixParity, c.Passes)
	prefixes[0] = key.PrefixParities(nil, nil)
	for p := 1; p < c.Passes; p++ {
		prefixes[p] = key.PrefixParities(permFor(p, seeds[p-1], n), nil)
	}

	disclosed := 0
	for pass := 0; pass < c.Passes; pass++ {
		// Send all block parities for this pass.
		k := k1 << pass
		if k > n {
			k = n
		}
		blocks := (n + k - 1) / k
		par := bitarray.New(blocks)
		for b := 0; b < blocks; b++ {
			lo, hi := b*k, (b+1)*k
			if hi > n {
				hi = n
			}
			if prefixes[pass].Range(lo, hi) == 1 {
				par.Set(b, 1)
			}
		}
		if err := sendMsg(m, msgBlocks, par.Bytes()); err != nil {
			return disclosed, err
		}
		disclosed += blocks

		cur := pass
		d, finished, err := serveRound(m, func(qp uint32, lo, hi int) (int, error) {
			if int(qp) > cur || lo < 0 || hi > n || lo >= hi {
				return 0, fmt.Errorf("%w: classic query out of range", errProtocol)
			}
			return prefixes[qp].Range(lo, hi), nil
		})
		disclosed += d
		if err != nil {
			return disclosed, err
		}
		if finished {
			if pass != c.Passes-1 {
				return disclosed, fmt.Errorf("%w: corrector finished early at pass %d", errProtocol, pass)
			}
			return disclosed, nil
		}
	}
	return disclosed, fmt.Errorf("cascade: classic reference ran past final pass")
}

// passState is the corrector's bookkeeping for one started pass. perm
// and invPerm are nil for pass 0 (the identity); pp caches the pass's
// prefix-parity index, rebuilt whenever a wave needs it against a fresh
// work snapshot.
type passState struct {
	perm    []int
	invPerm []int
	k       int
	diff    []int // per block: our parity XOR reference parity
	pp      *bitarray.PrefixParity
}

// member maps a pass rank to its absolute bit index.
func (st *passState) member(r int) int {
	if st.perm == nil {
		return r
	}
	return st.perm[r]
}

// RunCorrect implements Protocol.
func (c *Classic) RunCorrect(m Messenger, key *bitarray.BitArray) (*Result, error) {
	work := key.Clone()
	n := work.Len()
	if err := sendHello(m, n); err != nil {
		return nil, err
	}
	body, err := recvMsg(m, msgPassStart)
	if err != nil {
		return nil, err
	}
	if len(body) < 8 {
		return nil, fmt.Errorf("%w: short classic start", errProtocol)
	}
	k1 := int(binary.LittleEndian.Uint32(body[0:]))
	passes := int(binary.LittleEndian.Uint32(body[4:]))
	if k1 <= 0 || passes <= 0 || passes > 32 || len(body) < 8+8*(passes-1) {
		return nil, fmt.Errorf("%w: bad classic start", errProtocol)
	}
	seeds := make([]uint64, passes-1)
	for i := range seeds {
		seeds[i] = binary.LittleEndian.Uint64(body[8+8*i:])
	}

	res := &Result{Corrected: work}
	states := make([]*passState, 0, passes)

	type pb struct{ pass, block int }
	var queue []pb

	flip := func(realIdx int) {
		work.Flip(realIdx)
		res.Flips++
		for p, st := range states {
			pos := realIdx
			if st.invPerm != nil {
				pos = st.invPerm[realIdx]
			}
			b := pos / st.k
			st.diff[b] ^= 1
			if st.diff[b] == 1 {
				queue = append(queue, pb{p, b})
			}
		}
	}

	// process drains the queue in waves: every mismatched block's
	// search runs in parallel against the un-flipped work string, then
	// the located errors are applied and their cascading consequences
	// enqueued. Each wave rebuilds the prefix-parity index of every
	// pass it touches against the current work snapshot, so queries
	// inside runWave are O(1) lookups.
	process := func() error {
		for len(queue) > 0 {
			seen := make(map[pb]bool)
			rebound := make(map[int]bool)
			var searches []*searchState
			for _, item := range queue {
				st := states[item.pass]
				if seen[item] || st.diff[item.block] != 1 {
					continue
				}
				seen[item] = true
				if !rebound[item.pass] {
					st.pp = work.PrefixParities(st.perm, st.pp)
					rebound[item.pass] = true
				}
				lo := item.block * st.k
				hi := lo + st.k
				if hi > n {
					hi = n
				}
				searches = append(searches, &searchState{
					key: uint32(item.pass), lo: lo, hi: hi,
					parity: st.pp.Range,
					member: st.member,
				})
			}
			queue = queue[:0]
			if len(searches) == 0 {
				return nil
			}
			bits, d, err := runWave(m, searches)
			if err != nil {
				return err
			}
			res.Disclosed += d
			for _, b := range bits {
				flip(b)
			}
		}
		return nil
	}

	for pass := 0; pass < passes; pass++ {
		res.Rounds = pass + 1
		k := k1 << pass
		if k > n {
			k = n
		}
		var seed uint64
		if pass > 0 {
			seed = seeds[pass-1]
		}
		perm := permFor(pass, seed, n)
		var inv []int
		if perm != nil {
			inv = make([]int, n)
			for pos, r := range perm {
				inv[r] = pos
			}
		}
		blocks := (n + k - 1) / k
		st := &passState{perm: perm, invPerm: inv, k: k, diff: make([]int, blocks)}
		states = append(states, st)

		body, err := recvMsg(m, msgBlocks)
		if err != nil {
			return nil, err
		}
		refPar := bitarray.FromBytes(body)
		if refPar.Len() < blocks {
			return nil, fmt.Errorf("%w: reference sent %d block parities, need %d",
				errProtocol, refPar.Len(), blocks)
		}
		res.Disclosed += blocks
		st.pp = work.PrefixParities(perm, nil)
		for b := 0; b < blocks; b++ {
			lo, hi := b*k, (b+1)*k
			if hi > n {
				hi = n
			}
			st.diff[b] = st.pp.Range(lo, hi) ^ refPar.Get(b)
			if st.diff[b] == 1 {
				queue = append(queue, pb{pass, b})
			}
		}
		if err := process(); err != nil {
			return nil, err
		}
		done := byte(0)
		if pass == passes-1 {
			done = 1
		}
		if err := sendMsg(m, msgRoundDone, []byte{done}); err != nil {
			return nil, err
		}
	}
	if err := sendMsg(m, msgFinish, nil); err != nil {
		return nil, err
	}
	return res, nil
}
