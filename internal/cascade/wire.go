package cascade

import (
	"encoding/binary"
	"fmt"
	"sort"

	"qkd/internal/bitarray"
)

// queryEntry is one active binary search's parity request: the parity
// of positions [Lo, Mid) of the index sequence identified by Key (an
// LFSR subset seed for the BBN protocol, a pass number for Classic,
// zero for the block-parity baseline).
type queryEntry struct {
	Key uint32
	Lo  uint32
	Hi  uint32
}

// encodeQueries packs a batch of entries: count | 12 bytes each.
func encodeQueries(entries []queryEntry) []byte {
	out := make([]byte, 4+12*len(entries))
	binary.LittleEndian.PutUint32(out, uint32(len(entries)))
	for i, e := range entries {
		off := 4 + 12*i
		binary.LittleEndian.PutUint32(out[off:], e.Key)
		binary.LittleEndian.PutUint32(out[off+4:], e.Lo)
		binary.LittleEndian.PutUint32(out[off+8:], e.Hi)
	}
	return out
}

// decodeQueries unpacks a query batch.
func decodeQueries(body []byte) ([]queryEntry, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: short query batch", errProtocol)
	}
	n := int(binary.LittleEndian.Uint32(body))
	if len(body) != 4+12*n {
		return nil, fmt.Errorf("%w: query batch length %d for %d entries", errProtocol, len(body), n)
	}
	entries := make([]queryEntry, n)
	for i := range entries {
		off := 4 + 12*i
		entries[i] = queryEntry{
			Key: binary.LittleEndian.Uint32(body[off:]),
			Lo:  binary.LittleEndian.Uint32(body[off+4:]),
			Hi:  binary.LittleEndian.Uint32(body[off+8:]),
		}
	}
	return entries, nil
}

// answerFunc resolves one parity query on the reference side. It
// returns the reference string's parity over the requested range.
type answerFunc func(key uint32, lo, hi int) (int, error)

// serveRound answers batched parity queries until the corrector sends
// a round-done message. It returns the number of parity bits disclosed
// and whether the corrector declared the protocol complete.
func serveRound(m Messenger, answer answerFunc) (disclosed int, finished bool, err error) {
	for {
		typ, body, err := recvEither(m, msgQuery, msgRoundDone)
		if err != nil {
			return disclosed, false, err
		}
		if typ == msgRoundDone {
			if len(body) != 1 {
				return disclosed, false, fmt.Errorf("%w: bad round-done", errProtocol)
			}
			if body[0] == 1 {
				if _, err := recvMsg(m, msgFinish); err != nil {
					return disclosed, false, err
				}
				return disclosed, true, nil
			}
			return disclosed, false, nil
		}
		entries, err := decodeQueries(body)
		if err != nil {
			return disclosed, false, err
		}
		bitmap := bitarray.New(len(entries))
		for i, e := range entries {
			p, err := answer(e.Key, int(e.Lo), int(e.Hi))
			if err != nil {
				return disclosed, false, err
			}
			if p == 1 {
				bitmap.Set(i, 1)
			}
		}
		if err := sendMsg(m, msgParity, bitmap.Bytes()); err != nil {
			return disclosed, false, err
		}
		disclosed += len(entries)
	}
}

// searchState is one in-flight dichotomic search on the corrector side:
// the parity of the corrector's snapshot over member ranks [lo, hi) is
// known to differ from the reference, so the half-open window homes in
// on a genuinely erroneous bit. Parities and rank-to-index mapping come
// from closures over the protocol's rank/prefix indexes, bound to the
// work string as it stood when the wave began (work is not modified
// while a wave runs, so the snapshot stays truthful).
type searchState struct {
	key    uint32
	lo, hi int
	// parity returns the snapshot's parity over member ranks [lo, hi).
	parity func(lo, hi int) int
	// member maps a member rank to its absolute bit index.
	member func(r int) int
}

// runWave drives a set of parallel searches to completion, one batched
// query message per bisection level. Flips are NOT applied; the caller
// receives the deduplicated set of erroneous bit indices (every index
// is a true disagreement between work and the reference).
func runWave(m Messenger, searches []*searchState) (bits []int, disclosed int, err error) {
	found := make(map[int]bool)
	active := make([]*searchState, 0, len(searches))
	for _, s := range searches {
		if s.hi-s.lo == 1 {
			found[s.member(s.lo)] = true
		} else if s.hi > s.lo {
			active = append(active, s)
		}
	}
	for len(active) > 0 {
		entries := make([]queryEntry, len(active))
		for i, s := range active {
			mid := (s.lo + s.hi) / 2
			entries[i] = queryEntry{Key: s.key, Lo: uint32(s.lo), Hi: uint32(mid)}
		}
		if err := sendMsg(m, msgQuery, encodeQueries(entries)); err != nil {
			return nil, disclosed, err
		}
		body, err := recvMsg(m, msgParity)
		if err != nil {
			return nil, disclosed, err
		}
		bitmap := bitarray.FromBytes(body)
		if bitmap.Len() < len(active) {
			return nil, disclosed, fmt.Errorf("%w: short parity bitmap", errProtocol)
		}
		disclosed += len(active)
		next := active[:0]
		for i, s := range active {
			mid := (s.lo + s.hi) / 2
			if s.parity(s.lo, mid) != bitmap.Get(i) {
				s.hi = mid
			} else {
				s.lo = mid
			}
			if s.hi-s.lo == 1 {
				found[s.member(s.lo)] = true
			} else {
				next = append(next, s)
			}
		}
		active = next
	}
	bits = make([]int, 0, len(found))
	for b := range found {
		bits = append(bits, b)
	}
	// Deterministic order: Classic's cascading back-correction enqueues
	// follow-up searches in flip order, so map iteration order would
	// otherwise leak into the wire transcript.
	sort.Ints(bits)
	return bits, disclosed, nil
}
