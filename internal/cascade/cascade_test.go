package cascade

import (
	"sync"
	"testing"
	"testing/quick"

	"qkd/internal/bitarray"
	"qkd/internal/rng"
)

// memMessenger is a minimal in-memory duplex transport for tests.
type memMessenger struct {
	out chan<- []byte
	in  <-chan []byte
}

func (m *memMessenger) Send(p []byte) error {
	q := make([]byte, len(p))
	copy(q, p)
	m.out <- q
	return nil
}

func (m *memMessenger) Recv() ([]byte, error) { return <-m.in, nil }

func memPair() (Messenger, Messenger) {
	ab := make(chan []byte, 64)
	ba := make(chan []byte, 64)
	return &memMessenger{out: ab, in: ba}, &memMessenger{out: ba, in: ab}
}

// noisyPair builds a random reference string of n bits and a copy with
// exactly errs random single-bit errors.
func noisyPair(seed uint64, n, errs int) (ref, noisy *bitarray.BitArray) {
	r := rng.NewSplitMix64(seed)
	ref = r.Bits(n)
	noisy = ref.Clone()
	flipped := map[int]bool{}
	for len(flipped) < errs {
		i := r.Intn(n)
		if !flipped[i] {
			flipped[i] = true
			noisy.Flip(i)
		}
	}
	return ref, noisy
}

// run executes a protocol end to end, returning the corrector's result
// and the reference's disclosed count.
func run(t *testing.T, p Protocol, ref, noisy *bitarray.BitArray) (*Result, int) {
	t.Helper()
	ma, mb := memPair()
	var refDisclosed int
	var refErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		refDisclosed, refErr = p.RunReference(ma, ref)
	}()
	res, err := p.RunCorrect(mb, noisy)
	wg.Wait()
	if err != nil {
		t.Fatalf("%s corrector: %v", p.Name(), err)
	}
	if refErr != nil {
		t.Fatalf("%s reference: %v", p.Name(), refErr)
	}
	return res, refDisclosed
}

func protocols(qber float64) []Protocol {
	return []Protocol{
		NewBBN(1),
		NewClassic(qber, 2),
		NewBlockParity(64),
	}
}

func TestAllProtocolsCorrectErrors(t *testing.T) {
	for _, errs := range []int{0, 1, 2, 7, 40} {
		for _, p := range protocols(float64(errs+1) / 4096) {
			ref, noisy := noisyPair(uint64(errs)*7+1, 4096, errs)
			res, _ := run(t, p, ref, noisy)
			if p.Name() == NewBlockParity(64).Name() && errs > 1 {
				// The baseline may legitimately leave residual errors;
				// only require it not to diverge.
				continue
			}
			if !res.Corrected.Equal(ref) {
				t.Errorf("%s with %d errors: %d residual",
					p.Name(), errs, res.Corrected.HammingDistance(ref))
			}
		}
	}
}

func TestBBNZeroErrorsLowDisclosure(t *testing.T) {
	// The protocol is adaptive: with no errors it must disclose only
	// one round of subset parities.
	p := NewBBN(3)
	ref, noisy := noisyPair(5, 4096, 0)
	res, _ := run(t, p, ref, noisy)
	if res.Flips != 0 {
		t.Errorf("flipped %d bits on identical strings", res.Flips)
	}
	if res.Disclosed != p.Subsets {
		t.Errorf("disclosed %d bits, want exactly %d (one clean round)", res.Disclosed, p.Subsets)
	}
	if res.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", res.Rounds)
	}
}

func TestBBNFindsExactErrorCount(t *testing.T) {
	// With random (non-adversarial) errors, the number of flips must
	// equal the number of injected errors (otherwise it corrected a
	// non-error, which other flips then must undo — wasteful but legal;
	// net Hamming distance must be zero either way).
	for _, errs := range []int{1, 5, 25} {
		p := NewBBN(uint64(errs))
		ref, noisy := noisyPair(uint64(errs)*13+11, 4096, errs)
		res, _ := run(t, p, ref, noisy)
		if !res.Corrected.Equal(ref) {
			t.Fatalf("%d errors: not corrected", errs)
		}
		if res.Flips < errs {
			t.Errorf("%d errors but only %d flips", errs, res.Flips)
		}
	}
}

func TestBBNHighErrorRate(t *testing.T) {
	// "It will accurately detect and correct a large number of errors
	// (up to some limit) even if that number is well above the
	// historical average": 11 % QBER on 4096 bits = 450 errors.
	p := NewBBN(9)
	ref, noisy := noisyPair(77, 4096, 450)
	res, _ := run(t, p, ref, noisy)
	if !res.Corrected.Equal(ref) {
		t.Errorf("450 errors: %d residual", res.Corrected.HammingDistance(ref))
	}
}

func TestBBNDisclosureGrowsWithErrors(t *testing.T) {
	p1 := NewBBN(11)
	ref1, noisy1 := noisyPair(101, 4096, 4)
	low, _ := run(t, p1, ref1, noisy1)

	p2 := NewBBN(11)
	ref2, noisy2 := noisyPair(102, 4096, 200)
	high, _ := run(t, p2, ref2, noisy2)

	if high.Disclosed <= low.Disclosed {
		t.Errorf("disclosure not adaptive: %d bits for 4 errors, %d for 200",
			low.Disclosed, high.Disclosed)
	}
}

func TestBBNDisclosedMatchesReferenceCount(t *testing.T) {
	// Both sides must account the same number of disclosed parities.
	p := NewBBN(13)
	ref, noisy := noisyPair(103, 2048, 20)
	res, refDisclosed := run(t, p, ref, noisy)
	if res.Disclosed != refDisclosed {
		t.Errorf("corrector counted %d disclosed, reference %d", res.Disclosed, refDisclosed)
	}
}

func TestClassicDisclosedMatchesReferenceCount(t *testing.T) {
	p := NewClassic(0.01, 14)
	ref, noisy := noisyPair(104, 2048, 20)
	res, refDisclosed := run(t, p, ref, noisy)
	if res.Disclosed != refDisclosed {
		t.Errorf("corrector counted %d disclosed, reference %d", res.Disclosed, refDisclosed)
	}
}

func TestClassicCorrectsAtVariousRates(t *testing.T) {
	for _, qber := range []float64{0.01, 0.03, 0.07, 0.11} {
		n := 8192
		errs := int(qber * float64(n))
		p := NewClassic(qber, 15)
		ref, noisy := noisyPair(uint64(errs), n, errs)
		res, _ := run(t, p, ref, noisy)
		if !res.Corrected.Equal(ref) {
			t.Errorf("qber %.2f: %d residual errors", qber,
				res.Corrected.HammingDistance(ref))
		}
	}
}

func TestClassicUnderestimatedPrior(t *testing.T) {
	// Prior says 1 % but the string has 8 %: cascade's later passes must
	// still mop up nearly everything.
	n := 8192
	p := NewClassic(0.01, 16)
	ref, noisy := noisyPair(321, n, n*8/100)
	res, _ := run(t, p, ref, noisy)
	resid := res.Corrected.HammingDistance(ref)
	if resid > 4 {
		t.Errorf("underestimated prior left %d residual errors", resid)
	}
}

func TestBlockParityLeavesPairedErrors(t *testing.T) {
	// Two errors in the same block are invisible to the baseline.
	n := 1024
	ref := rng.NewSplitMix64(55).Bits(n)
	noisy := ref.Clone()
	noisy.Flip(10)
	noisy.Flip(20) // same 64-bit block as 10
	p := NewBlockParity(64)
	res, _ := run(t, p, ref, noisy)
	if res.Corrected.Equal(ref) {
		t.Error("block-parity corrected paired errors — it should not be able to")
	}
	if d := res.Corrected.HammingDistance(ref); d != 2 {
		t.Errorf("expected exactly the 2 paired errors to remain, got %d", d)
	}
}

func TestBlockParityFixesIsolatedErrors(t *testing.T) {
	n := 1024
	ref := rng.NewSplitMix64(56).Bits(n)
	noisy := ref.Clone()
	noisy.Flip(10)
	noisy.Flip(200)
	noisy.Flip(900)
	p := NewBlockParity(64)
	res, _ := run(t, p, ref, noisy)
	if !res.Corrected.Equal(ref) {
		t.Errorf("isolated errors not fixed: %d residual", res.Corrected.HammingDistance(ref))
	}
	if res.Flips != 3 {
		t.Errorf("flips = %d, want 3", res.Flips)
	}
}

func TestCascadeBeatsBaselineOnResidual(t *testing.T) {
	// At equal error burden, Cascade must end with fewer residual
	// errors than the fixed-partition baseline.
	n := 8192
	errs := 200
	ref, noisy := noisyPair(777, n, errs)

	bbnRes, _ := run(t, NewBBN(17), ref, noisy.Clone())
	baseRes, _ := run(t, NewBlockParity(64), ref, noisy.Clone())

	bbnResid := bbnRes.Corrected.HammingDistance(ref)
	baseResid := baseRes.Corrected.HammingDistance(ref)
	if bbnResid != 0 {
		t.Errorf("BBN cascade left %d residual errors", bbnResid)
	}
	if baseResid == 0 {
		t.Logf("note: baseline got lucky (no paired errors) this seed")
	}
	if bbnResid > baseResid {
		t.Errorf("cascade (%d residual) worse than baseline (%d)", bbnResid, baseResid)
	}
}

func TestTinyKeys(t *testing.T) {
	for _, n := range []int{1, 2, 8, 33} {
		ref, noisy := noisyPair(uint64(n), n, 0)
		for _, p := range protocols(0.01) {
			res, _ := run(t, p, ref, noisy)
			if !res.Corrected.Equal(ref) {
				t.Errorf("%s failed on %d-bit identical keys", p.Name(), n)
			}
		}
	}
}

func TestTinyKeysWithError(t *testing.T) {
	for _, n := range []int{2, 8, 33} {
		ref, noisy := noisyPair(uint64(n)+100, n, 1)
		res, _ := run(t, NewBBN(uint64(n)), ref, noisy)
		if !res.Corrected.Equal(ref) {
			t.Errorf("BBN failed on %d-bit key with 1 error", n)
		}
	}
}

// Property test: for random error patterns up to 10 %, BBN cascade
// converges to the reference string.
func TestPropertyBBNConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed uint64, errFrac uint8) bool {
		n := 2048
		errs := int(errFrac) * n / 2550 // 0..10 %
		ref, noisy := noisyPair(seed, n, errs)
		p := NewBBN(seed ^ 0xABCD)
		ma, mb := memPair()
		go p.RunReference(ma, ref)
		res, err := p.RunCorrect(mb, noisy)
		return err == nil && res.Corrected.Equal(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property test: disclosed counts agree between the two sides for the
// classic protocol across error burdens.
func TestPropertyDisclosedSymmetry(t *testing.T) {
	f := func(seed uint64, errCount uint8) bool {
		n := 1024
		errs := int(errCount) % 64
		ref, noisy := noisyPair(seed, n, errs)
		p := NewClassic(0.02, seed)
		ma, mb := memPair()
		type refOut struct {
			d   int
			err error
		}
		ch := make(chan refOut, 1)
		go func() {
			d, err := p.RunReference(ma, ref)
			ch <- refOut{d, err}
		}()
		res, err := p.RunCorrect(mb, noisy)
		ro := <-ch
		if err != nil || ro.err != nil {
			return false
		}
		return res.Disclosed == ro.d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBBN4096QBER5(b *testing.B) {
	n := 4096
	errs := n * 5 / 100
	for i := 0; i < b.N; i++ {
		ref, noisy := noisyPair(uint64(i), n, errs)
		p := NewBBN(uint64(i))
		ma, mb := memPair()
		go p.RunReference(ma, ref)
		if _, err := p.RunCorrect(mb, noisy); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClassic4096QBER5(b *testing.B) {
	n := 4096
	errs := n * 5 / 100
	for i := 0; i < b.N; i++ {
		ref, noisy := noisyPair(uint64(i), n, errs)
		p := NewClassic(0.05, uint64(i))
		ma, mb := memPair()
		go p.RunReference(ma, ref)
		if _, err := p.RunCorrect(mb, noisy); err != nil {
			b.Fatal(err)
		}
	}
}
