package cascade

import (
	"fmt"

	"qkd/internal/bitarray"
)

// BlockParity is the conventional telecom-style parity-check scheme the
// paper's appendix lists as the alternative to Cascade: one fixed
// partition into BlockSize-bit blocks, with mismatched blocks repaired
// by dichotomic search, iterated over the same partition.
//
// Because the partition never changes, a block holding an even number
// of errors always shows matching parity and its errors are never
// found: the scheme converges with residual errors, which is exactly
// the deficiency Cascade's shuffled passes repair. Experiment E4
// quantifies the gap.
type BlockParity struct {
	// BlockSize is the fixed partition width.
	BlockSize int
	// MaxIters caps repetitions over the partition.
	MaxIters int
}

// NewBlockParity returns the baseline with the given block size.
func NewBlockParity(blockSize int) *BlockParity {
	return &BlockParity{BlockSize: blockSize, MaxIters: 32}
}

// Name implements Protocol.
func (c *BlockParity) Name() string { return fmt.Sprintf("block-parity-%d", c.BlockSize) }

func (c *BlockParity) geometry(n int) (k, blocks int) {
	k = c.BlockSize
	if k <= 0 || k > n {
		k = n
	}
	return k, (n + k - 1) / k
}

// RunReference implements Protocol.
func (c *BlockParity) RunReference(m Messenger, key *bitarray.BitArray) (int, error) {
	n := key.Len()
	if err := recvHello(m, n); err != nil {
		return 0, err
	}
	k, blocks := c.geometry(n)
	disclosed := 0
	for iter := 0; iter < c.MaxIters; iter++ {
		par := bitarray.New(blocks)
		for b := 0; b < blocks; b++ {
			lo, hi := b*k, (b+1)*k
			if hi > n {
				hi = n
			}
			if key.ParityRange(lo, hi) == 1 {
				par.Set(b, 1)
			}
		}
		if err := sendMsg(m, msgBlocks, par.Bytes()); err != nil {
			return disclosed, err
		}
		disclosed += blocks

		d, finished, err := serveRound(m, func(_ uint32, lo, hi int) (int, error) {
			if lo < 0 || hi > n || lo >= hi {
				return 0, fmt.Errorf("%w: query out of range", errProtocol)
			}
			return key.ParityRange(lo, hi), nil
		})
		disclosed += d
		if err != nil {
			return disclosed, err
		}
		if finished {
			return disclosed, nil
		}
	}
	return disclosed, fmt.Errorf("cascade: block-parity reference exceeded %d iterations", c.MaxIters)
}

// RunCorrect implements Protocol.
func (c *BlockParity) RunCorrect(m Messenger, key *bitarray.BitArray) (*Result, error) {
	work := key.Clone()
	n := work.Len()
	if err := sendHello(m, n); err != nil {
		return nil, err
	}
	k, blocks := c.geometry(n)
	ident := func(r int) int { return r }
	var pp *bitarray.PrefixParity
	res := &Result{Corrected: work}
	for iter := 0; iter < c.MaxIters; iter++ {
		res.Rounds = iter + 1
		body, err := recvMsg(m, msgBlocks)
		if err != nil {
			return nil, err
		}
		refPar := bitarray.FromBytes(body)
		if refPar.Len() < blocks {
			return nil, fmt.Errorf("%w: short block parities", errProtocol)
		}
		res.Disclosed += blocks

		pp = work.PrefixParities(nil, pp)
		var searches []*searchState
		for b := 0; b < blocks; b++ {
			lo, hi := b*k, (b+1)*k
			if hi > n {
				hi = n
			}
			if pp.Range(lo, hi) != refPar.Get(b) {
				searches = append(searches, &searchState{lo: lo, hi: hi, parity: pp.Range, member: ident})
			}
		}
		if len(searches) == 0 {
			if err := sendMsg(m, msgRoundDone, []byte{1}); err != nil {
				return nil, err
			}
			if err := sendMsg(m, msgFinish, nil); err != nil {
				return nil, err
			}
			return res, nil
		}
		bits, d, err := runWave(m, searches)
		if err != nil {
			return nil, err
		}
		res.Disclosed += d
		for _, bit := range bits {
			work.Flip(bit)
			res.Flips++
		}
		if err := sendMsg(m, msgRoundDone, []byte{0}); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("cascade: block-parity corrector exceeded %d iterations", c.MaxIters)
}
