// Package vpn assembles the full system of Figs. 2 and 11: two private
// enclaves, each behind a gateway that combines an IPsec dataplane, an
// IKE daemon with QKD extensions, and one end of a quantum key
// distribution link. User traffic entering gateway A in the clear
// leaves gateway B in the clear, protected in between by keys that
// exist only because single photons made it down the fiber.
//
//	enclave A -- gwA ==[internet: ESP tunnel]== gwB -- enclave B
//	              \\                             //
//	               ==[quantum channel + QKD protocols]==
package vpn

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"qkd/internal/channel"
	"qkd/internal/core"
	"qkd/internal/ike"
	"qkd/internal/ipsec"
	"qkd/internal/keypool"
	"qkd/internal/kms"
	"qkd/internal/photonics"
	"qkd/internal/qnet"
)

// Config assembles a network.
type Config struct {
	// Photonics configures the quantum link (DefaultParams if zero).
	Photonics photonics.Params
	// QKD configures the protocol engines.
	QKD core.Config
	// IKE configures both daemons.
	IKE ike.Config
	// Suite protects enclave traffic.
	Suite ipsec.CipherSuite
	// Life bounds each negotiated SA.
	Life ipsec.Lifetime
	// OTPBits is the per-direction pad withdrawal for SuiteOTP tunnels.
	OTPBits int
	// FrameSlots is the pulse count per QKD frame.
	FrameSlots int
	// Seed drives all simulation randomness.
	Seed uint64
	// KDS routes all key delivery through a per-site kms.Service: the
	// distillation engines deposit into the KDS, and the IKE daemons
	// withdraw Qblocks and OTP pads as (stream, sequence) ticket claims
	// under the QoS scheduler instead of lockstep pool withdrawals.
	KDS bool
	// KDSConfig tunes the services when KDS is set (zero value = kms
	// defaults with a fully synchronized ledger).
	KDSConfig kms.Config
	// QNet, when set alongside KDS, supplements the direct link with
	// end-to-end key striped across the unified QKD network: PumpQNet
	// transports key over QNetStripes vertex-disjoint paths and
	// deposits it into both sites' services through mirrored "qnet"
	// custody feeds. The two gateways must be registered in the QNet
	// topology as QNetSrc and QNetDst.
	QNet             *qnet.Network
	QNetSrc, QNetDst string
	// QNetStripes is the disjoint-path share count k (default 2: no
	// single relay of the wider network ever holds a delivered key).
	QNetStripes int
	// IKELogA / IKELogB, when non-nil, receive each daemon's
	// racoon-style log lines (Fig. 12).
	IKELogA io.Writer
	IKELogB io.Writer
}

// Site is one end of the VPN: gateway plus its control-plane pieces.
type Site struct {
	GW  *ipsec.Gateway
	IKE *ike.Daemon
	// Pool is the site's distilled-key supply: a raw reservoir, or the
	// KDS-backed view when Config.KDS is set.
	Pool keypool.Pool
	// KDS is the site's key delivery service (nil unless Config.KDS).
	KDS *kms.Service
}

// Network is the assembled two-site system.
type Network struct {
	A, B    *Site
	Session *core.Session

	qnet             *qnet.Network
	qnetSrc, qnetDst string
	qnetK            int
	qnetFeedA        *kms.Feed
	qnetFeedB        *kms.Feed

	polAB *ipsec.Policy
	polBA *ipsec.Policy

	// EveTap, when set, sees every tunnel packet crossing the simulated
	// internet and may drop or rewrite it.
	EveTap func(p *ipsec.Packet) (*ipsec.Packet, bool)

	mu        sync.Mutex
	delivered uint64
	dropped   uint64
}

// Addresses used throughout (mirroring the paper's 192.1.99.x testbed).
var (
	GatewayA = ipsec.MustAddr("192.1.99.34")
	GatewayB = ipsec.MustAddr("192.1.99.35")
	HostA    = ipsec.MustAddr("10.1.0.5")
	HostB    = ipsec.MustAddr("10.2.0.9")
)

// New assembles the network. Call Establish to bring the tunnel up.
func New(cfg Config) (*Network, error) {
	if cfg.Photonics.PulseRateHz == 0 {
		cfg.Photonics = photonics.DefaultParams()
	}
	if cfg.OTPBits == 0 {
		cfg.OTPBits = 64 * 1024
	}

	// With a KDS per site, distillation deposits into the service and
	// quick mode draws (stream, sequence) blocks: "ike/qblocks" for
	// conventional rekeys at ClassRekey, "ike/otp" for pad withdrawal
	// at ClassOTP. Both sites register mirrored streams.
	var kdsA, kdsB *kms.Service
	var qbA, otpA, qbB, otpB *kms.Stream
	poolA, poolB := keypool.Pool(keypool.New()), keypool.Pool(keypool.New())
	if cfg.KDS {
		// kms defaults an unset StreamFraction to 1, so every distilled
		// bit is addressable by ticket unless the caller says otherwise.
		kdsA, kdsB = kms.New(cfg.KDSConfig), kms.New(cfg.KDSConfig)
		var err error
		mk := func(svc *kms.Service) (qb, otp *kms.Stream) {
			if err != nil {
				return nil, nil
			}
			if qb, err = svc.NewStream("ike/qblocks", ike.QblockBits, kms.ClassRekey); err != nil {
				return nil, nil
			}
			otp, err = svc.NewStream("ike/otp", 1024, kms.ClassOTP)
			return qb, otp
		}
		qbA, otpA = mk(kdsA)
		qbB, otpB = mk(kdsB)
		if err != nil {
			return nil, fmt.Errorf("vpn: building KDS streams: %w", err)
		}
		poolA, poolB = kdsA.PoolView(kms.ClassRekey), kdsB.PoolView(kms.ClassRekey)
	}
	session := core.NewSessionWithPools(cfg.Photonics, cfg.QKD, cfg.FrameSlots, cfg.Seed, poolA, poolB)

	polAB := &ipsec.Policy{
		Name: "a-to-b", Action: ipsec.Protect, Suite: cfg.Suite,
		PeerGW: GatewayB, Life: cfg.Life, OTPBits: cfg.OTPBits,
		Sel: ipsec.Selector{Src: ipsec.MustPrefix("10.1.0.0/16"), Dst: ipsec.MustPrefix("10.2.0.0/16")},
	}
	polBA := &ipsec.Policy{
		Name: "b-to-a", Action: ipsec.Protect, Suite: cfg.Suite,
		PeerGW: GatewayA, Life: cfg.Life, OTPBits: cfg.OTPBits,
		Sel: ipsec.Selector{Src: ipsec.MustPrefix("10.2.0.0/16"), Dst: ipsec.MustPrefix("10.1.0.0/16")},
	}
	gwA := ipsec.NewGateway(GatewayA, ipsec.NewSPD(polAB, polBA))
	gwB := ipsec.NewGateway(GatewayB, ipsec.NewSPD(polBA, polAB))

	ikeConnA, ikeConnB := channel.MemPair(64)
	psk := []byte("darpa-quantum-network-psk")
	cfgI := cfg.IKE
	cfgI.Seed = cfg.Seed ^ 0x1CE
	dA := ike.NewDaemon(ike.Initiator, ikeConnA, gwA, session.Alice.Pool(), psk, cfgI, cfg.IKELogA)
	cfgR := cfg.IKE
	cfgR.Seed = cfg.Seed ^ 0x2CE
	dB := ike.NewDaemon(ike.Responder, ikeConnB, gwB, session.Bob.Pool(), psk, cfgR, cfg.IKELogB)
	if cfg.KDS {
		dA.SetKeyStreams(qbA, otpA)
		dB.SetKeyStreams(qbB, otpB)
	}

	n := &Network{
		A:       &Site{GW: gwA, IKE: dA, Pool: session.Alice.Pool(), KDS: kdsA},
		B:       &Site{GW: gwB, IKE: dB, Pool: session.Bob.Pool(), KDS: kdsB},
		Session: session,
		polAB:   polAB,
		polBA:   polBA,
	}
	if cfg.KDS && cfg.QNet != nil {
		if cfg.QNetStripes <= 0 {
			cfg.QNetStripes = 2
		}
		fa, err := kdsA.AttachSource("qnet")
		if err != nil {
			return nil, fmt.Errorf("vpn: attaching qnet feed: %w", err)
		}
		fb, err := kdsB.AttachSource("qnet")
		if err != nil {
			return nil, fmt.Errorf("vpn: attaching qnet feed: %w", err)
		}
		n.qnet = cfg.QNet
		n.qnetSrc, n.qnetDst = cfg.QNetSrc, cfg.QNetDst
		n.qnetK = cfg.QNetStripes
		n.qnetFeedA, n.qnetFeedB = fa, fb
	}
	return n, nil
}

// PumpQNet transports nbits of fresh end-to-end key across the unified
// QKD network as Config.QNetStripes XOR shares over vertex-disjoint
// paths and deposits it into both sites' key delivery services through
// the mirrored "qnet" custody feeds — a second key source beside the
// direct link, with no relay of the wider network ever holding the key.
// Like any multi-source deposit, call it at quiescent points (between
// distillation pumps): mirrored services must observe the same merged
// ingest order.
func (n *Network) PumpQNet(nbits int) error {
	if n.qnet == nil {
		return errors.New("vpn: no QNet configured (set Config.KDS and Config.QNet)")
	}
	tr, err := n.qnet.NewTransport(n.qnetSrc, n.qnetDst, nbits, n.qnetK, qnet.TransportOpts{
		FeedA: n.qnetFeedA, FeedB: n.qnetFeedB,
	})
	if err != nil {
		return fmt.Errorf("vpn: qnet transport: %w", err)
	}
	if err := tr.Run(64); err != nil {
		return fmt.Errorf("vpn: qnet transport: %w", err)
	}
	if _, err := tr.Finish(); err != nil {
		return fmt.Errorf("vpn: qnet transport: %w", err)
	}
	return nil
}

// DistillKeys pumps QKD frames until both reservoirs hold at least
// bits, within maxFrames.
func (n *Network) DistillKeys(bits, maxFrames int) error {
	return n.Session.RunUntilDistilled(bits, maxFrames)
}

// Establish starts both IKE daemons (Phase 1) and negotiates the
// tunnel's first SAs. The reservoirs must hold key material (run
// DistillKeys first, or let the negotiation block on late arrival).
func (n *Network) Establish() error {
	errCh := make(chan error, 1)
	go func() { errCh <- n.B.IKE.Start() }()
	if err := n.A.IKE.Start(); err != nil {
		return fmt.Errorf("vpn: initiator IKE: %w", err)
	}
	if err := <-errCh; err != nil {
		return fmt.Errorf("vpn: responder IKE: %w", err)
	}
	return n.Renegotiate()
}

// Renegotiate rolls the tunnel over to fresh SAs ("key rollover").
func (n *Network) Renegotiate() error {
	return n.A.IKE.Negotiate(n.polAB, "b-to-a")
}

// Close tears the network down.
func (n *Network) Close() {
	n.A.IKE.Stop()
	n.B.IKE.Stop()
	if n.A.KDS != nil {
		n.A.KDS.Close()
	}
	if n.B.KDS != nil {
		n.B.KDS.Close()
	}
}

// Stats reports delivered/dropped user packets.
func (n *Network) Stats() (delivered, dropped uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.delivered, n.dropped
}

// Send pushes one user packet from src enclave to dst enclave through
// the tunnel and returns the payload as received at the far side.
func (n *Network) Send(src, dst ipsec.Addr, id uint32, payload []byte) ([]byte, error) {
	out, in := n.A.GW, n.B.GW
	if n.polBA.Sel.Matches(&ipsec.Packet{Src: src, Dst: dst, Proto: ipsec.ProtoPing}) {
		out, in = n.B.GW, n.A.GW
	}
	inner := &ipsec.Packet{Src: src, Dst: dst, Proto: ipsec.ProtoPing, ID: id, Payload: payload}
	outer, err := out.ProcessOutbound(inner)
	if err != nil {
		n.mu.Lock()
		n.dropped++
		n.mu.Unlock()
		return nil, err
	}
	// Cross the simulated internet, where Eve may interfere.
	if n.EveTap != nil {
		var drop bool
		outer, drop = n.EveTap(outer)
		if drop {
			n.mu.Lock()
			n.dropped++
			n.mu.Unlock()
			return nil, errors.New("vpn: packet lost in transit")
		}
	}
	got, err := in.ProcessInbound(outer)
	if err != nil {
		n.mu.Lock()
		n.dropped++
		n.mu.Unlock()
		return nil, err
	}
	if got.Src != src || got.Dst != dst || got.ID != id {
		return nil, fmt.Errorf("vpn: decapsulated packet headers corrupted")
	}
	n.mu.Lock()
	n.delivered++
	n.mu.Unlock()
	return got.Payload, nil
}

// Ping sends A->B and expects delivery; a convenience for tests.
func (n *Network) Ping(id uint32) error {
	_, err := n.Send(HostA, HostB, id, []byte("ping"))
	return err
}

// SendWithRollover sends, and on SA expiry transparently renegotiates
// with fresh QKD key and retries once — the deployment behaviour where
// "every time the lifetime expires, a new security association must be
// negotiated and it will bring with it fresh key material."
func (n *Network) SendWithRollover(src, dst ipsec.Addr, id uint32, payload []byte) ([]byte, error) {
	got, err := n.Send(src, dst, id, payload)
	if err == nil {
		return got, nil
	}
	if errors.Is(err, ipsec.ErrNoSA) || errors.Is(err, ipsec.ErrExpired) ||
		errors.Is(err, ipsec.ErrPadExhaust) {
		if err := n.Renegotiate(); err != nil {
			return nil, fmt.Errorf("vpn: rollover failed: %w", err)
		}
		return n.Send(src, dst, id, payload)
	}
	return nil, err
}

// KeyRaceResult summarizes a key consumption/production race (E8).
type KeyRaceResult struct {
	Delivered     uint64
	Rollovers     int
	RolloverFails int
	BitsDistilled uint64
	BitsConsumed  uint64
}

// RunKeyRace interleaves user traffic with QKD distillation for the
// given number of rounds: each round pumps qkdFrames frames of quantum
// transmission and then pushes packets user packets through the tunnel,
// rolling SAs over as they expire. It is the "race between the rate at
// which keying material is put into place and the rate at which it is
// consumed" of Section 2, in miniature.
func (n *Network) RunKeyRace(rounds, qkdFrames, packets, payloadBytes int) (KeyRaceResult, error) {
	var res KeyRaceResult
	id := uint32(0)
	for r := 0; r < rounds; r++ {
		if err := n.Session.RunFrames(qkdFrames); err != nil {
			return res, fmt.Errorf("vpn: qkd pump: %w", err)
		}
		for p := 0; p < packets; p++ {
			id++
			_, err := n.Send(HostA, HostB, id, make([]byte, payloadBytes))
			if err == nil {
				res.Delivered++
				continue
			}
			if errors.Is(err, ipsec.ErrNoSA) || errors.Is(err, ipsec.ErrExpired) ||
				errors.Is(err, ipsec.ErrPadExhaust) {
				res.Rollovers++
				if nerr := n.Renegotiate(); nerr != nil {
					res.RolloverFails++
					continue // key starved; traffic drops this round
				}
				if _, err := n.Send(HostA, HostB, id, make([]byte, payloadBytes)); err == nil {
					res.Delivered++
				}
				continue
			}
			return res, err
		}
	}
	am := n.Session.Alice.Metrics()
	res.BitsDistilled = am.DistilledBits
	st := n.A.IKE.Stats()
	res.BitsConsumed = st.QbitsConsumed
	return res, nil
}

// WaitPool blocks until the named site's key supply holds bits or the
// timeout passes.
func WaitPool(pool keypool.Source, bits int, timeout time.Duration) error {
	return ike.WaitAvailable(pool, bits, timeout)
}
